(* End-to-end scenario: deploy ResNet-34 on a server CPU.

   Runs the full unified pipeline — BlockSwap NAS baseline, then the
   unified transformation search — and prints the per-site decisions of the
   winning configuration, its predicted latency, size and Fisher budget,
   mirroring how a user of the paper's system would optimize one network
   for one target.

   Run with:  dune exec examples/resnet_search.exe *)

let ppf = Format.std_formatter

let () =
  let rng = Rng.create 2024 in
  let model = Models.build (Models.resnet34 ()) rng in
  let device = Device.i7 in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
  Format.fprintf ppf "network: %s (%d transformable sites, %d nodes, %.2fM paper-scale conv params)@."
    model.Models.name
    (Array.length model.Models.sites)
    (Graph.node_count model.Models.graph)
    (float_of_int (Pipeline.baseline device model).Pipeline.ev_params /. 1e6);
  Format.fprintf ppf "target:  %a@.@." Device.pp device;

  (* The NAS baseline first. *)
  let bs = Blockswap.search ~samples:80 ~rng:(Rng.split rng) ~probe model in
  let nas_plans = Array.map (fun impl -> Site_plan.make impl) bs.Blockswap.bs_impls in
  let nas = Pipeline.evaluate device model ~plans:nas_plans in
  let baseline = Pipeline.baseline device model in
  Format.fprintf ppf "TVM baseline : %a@." Exp_common.pp_us baseline.Pipeline.ev_latency_s;
  Format.fprintf ppf "NAS baseline : %a (%.2fx)@.@." Exp_common.pp_us
    nas.Pipeline.ev_latency_s
    (baseline.Pipeline.ev_latency_s /. nas.Pipeline.ev_latency_s);

  (* The unified search. *)
  let r = Unified_search.search ~candidates:250 ~rng:(Rng.split rng) ~device ~probe model in
  Format.fprintf ppf "Unified      : %a (%.2fx), %d/%d candidates rejected by Fisher, %a wall@.@."
    Exp_common.pp_us r.Unified_search.r_best.Unified_search.cd_latency_s
    (Unified_search.speedup r) r.r_rejected r.r_explored Timing.pp_seconds r.r_wall_s;

  Format.fprintf ppf "winning configuration (site -> decision):@.";
  Array.iteri
    (fun i (p : Site_plan.t) ->
      let site = model.Models.sites.(i) in
      let scaled = Models.scale_site model site in
      Format.fprintf ppf "  %-16s %3dx%-4d %s@." site.Conv_impl.site_label
        scaled.Conv_impl.in_channels scaled.Conv_impl.out_channels
        (if p.Site_plan.sp_name = "baseline" then "-" else p.Site_plan.sp_name))
    r.r_best.cd_plans;
  Format.fprintf ppf "@.size: %.2fM -> %.2fM conv params (%.2fx compression)@."
    (float_of_int baseline.Pipeline.ev_params /. 1e6)
    (float_of_int r.r_best.cd_params /. 1e6)
    (float_of_int baseline.Pipeline.ev_params /. float_of_int (max 1 r.r_best.cd_params))
