examples/resnet_search.ml: Array Blockswap Conv_impl Device Exp_common Format Graph Models Pipeline Rng Site_plan Timing Unified_search
