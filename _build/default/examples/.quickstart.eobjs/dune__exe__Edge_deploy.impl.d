examples/edge_deploy.ml: Array Device Exp_common Format Hashtbl Models Option Pipeline Rng Site_plan Unified_search
