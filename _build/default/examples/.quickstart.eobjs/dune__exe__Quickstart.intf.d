examples/quickstart.mli:
