examples/spatial_bottleneck.ml: Array Conv_impl Exp_common Fisher Float Format Loop_nest Models Ops Poly Rng Tensor
