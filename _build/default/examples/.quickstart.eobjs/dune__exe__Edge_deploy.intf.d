examples/edge_deploy.mli:
