examples/spatial_bottleneck.mli:
