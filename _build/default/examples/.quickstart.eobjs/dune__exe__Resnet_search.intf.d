examples/resnet_search.mli:
