examples/quickstart.ml: Array Autotune Conv_impl Cost_model Device Exp_common Fisher Format List Loop_nest Models Poly Poly_legality Rng
