(* Quickstart: the library in five minutes.

   1. describe a tensor convolution as a polyhedral loop nest;
   2. apply classical and neural transformations and print the result;
   3. execute the transformed nests and check their semantics;
   4. estimate hardware cost on two devices;
   5. run the Fisher Potential legality check on a real network.

   Run with:  dune exec examples/quickstart.exe *)

let ppf = Format.std_formatter

let () =
  (* -- 1. A convolution as a loop nest -------------------------------- *)
  let nest =
    Loop_nest.conv_nest_of_dims ~co:16 ~ci:16 ~oh:16 ~ow:16 ~k:3 ~stride:1 ~groups:1
  in
  let base = Loop_nest.baseline_schedule nest in
  Format.fprintf ppf "A 16x16x16 3x3 convolution:@.%a@.@." Loop_nest.pp
    (Loop_nest.lower nest base);

  (* -- 2. Transformations --------------------------------------------- *)
  let tiled = Poly.tile base ~pos:3 ~factor:4 in
  Format.fprintf ppf "After tiling ow by 4 (a classical transformation):@.%a@.@."
    Loop_nest.pp (Loop_nest.lower nest tiled);
  let grouped = Poly.group base ~co:"co" ~ci:"ci" ~factor:4 in
  Format.fprintf ppf "After grouping with G=4 (a neural transformation):@.%a@.@."
    Loop_nest.pp (Loop_nest.lower nest grouped);
  Format.fprintf ppf "MACs: %d -> %d (grouping divides the work by G)@.@."
    (Poly.points base) (Poly.points grouped);

  (* -- 3. Semantics ---------------------------------------------------- *)
  let deps = Poly_legality.reduction_dependences [ "ci"; "kh"; "kw" ] in
  Format.fprintf ppf "tiled schedule preserves dependences: %b@."
    (Poly_legality.check tiled deps);
  Format.fprintf ppf "grouped schedule is semantics-preserving: %b (legality -> Fisher)@.@."
    (Poly.is_semantics_preserving grouped);

  (* -- 4. Hardware cost ------------------------------------------------ *)
  List.iter
    (fun dev ->
      let _, tvm = Autotune.tune dev nest in
      let _, grp = Autotune.tune ~base:grouped dev nest in
      Format.fprintf ppf "%-5s autotuned: %a -> grouped %a (%.2fx)@."
        dev.Device.short_name Exp_common.pp_us tvm.Cost_model.total_s Exp_common.pp_us
        grp.Cost_model.total_s
        (tvm.Cost_model.total_s /. grp.Cost_model.total_s))
    [ Device.i7; Device.maxwell_mgpu ];

  (* -- 5. Fisher Potential on a real network --------------------------- *)
  let rng = Rng.create 1 in
  let model = Models.build (Models.resnet34 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let reference = Models.rebuild model (Rng.create 7) full in
  let baseline = Fisher.score reference probe in
  let grouped_net =
    Models.rebuild model (Rng.create 7)
      (Array.map
         (fun s -> if Conv_impl.valid s (Conv_impl.Grouped 8) then Conv_impl.Grouped 8 else Conv_impl.Full)
         model.Models.sites)
  in
  let candidate = Fisher.score grouped_net probe in
  let legal = Fisher.legal_clipped ~baseline candidate in
  Format.fprintf ppf
    "@.ResNet-34 Fisher Potential: baseline %.3f, all-grouped(G=8) retains %.3f -> legal: %b@."
    baseline.Fisher.total
    (Fisher.clipped_total ~baseline candidate)
    legal;
  Format.fprintf ppf
    (if legal then
       "(this instance stayed within the slack; heavier damage is rejected)@."
     else "(the capacity damage exceeds the slack and the change is rejected)@.")
