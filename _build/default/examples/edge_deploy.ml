(* Domain scenario: fit DenseNet-161 under a latency budget on the Jetson
   Nano's Maxwell mGPU — the paper's motivating deployment target, where
   relaxed memory pressure matters most (sec 7.1).

   The script runs the unified search, then walks the Fisher-legal
   candidates to report the full latency/size frontier and the cheapest
   configuration meeting the budget.

   Run with:  dune exec examples/edge_deploy.exe *)

let ppf = Format.std_formatter

let () =
  let rng = Rng.create 31 in
  let model = Models.build (Models.densenet161 ()) rng in
  let device = Device.maxwell_mgpu in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
  let baseline = Pipeline.baseline device model in
  Format.fprintf ppf "deploying %s on %a@." model.Models.name Device.pp device;
  Format.fprintf ppf "baseline latency %a, %.2fM conv params@.@." Exp_common.pp_us
    baseline.Pipeline.ev_latency_s
    (float_of_int baseline.Pipeline.ev_params /. 1e6);

  let budget_s = baseline.Pipeline.ev_latency_s /. 1.5 in
  Format.fprintf ppf "latency budget: %a (1.5x tighter than baseline)@.@."
    Exp_common.pp_us budget_s;

  let r =
    Unified_search.search ~candidates:200 ~rng:(Rng.split rng) ~device ~probe model
  in
  let best = r.Unified_search.r_best in
  Format.fprintf ppf "unified search: best %a (%.2fx), %d/%d rejected by Fisher@."
    Exp_common.pp_us best.Unified_search.cd_latency_s (Unified_search.speedup r)
    r.r_rejected r.r_explored;
  if best.cd_latency_s <= budget_s then
    Format.fprintf ppf "budget met with %.2fx compression.@."
      (float_of_int baseline.Pipeline.ev_params /. float_of_int (max 1 best.cd_params))
  else
    Format.fprintf ppf "budget missed; consider loosening the Fisher slack.@.";

  (* The decision summary a deployment engineer would act on. *)
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun (p : Site_plan.t) ->
      let k = p.Site_plan.sp_name in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    best.cd_plans;
  Format.fprintf ppf "@.chosen operators (count x kind):@.";
  Hashtbl.iter (fun k v -> Format.fprintf ppf "  %3d x %s@." v k) counts
