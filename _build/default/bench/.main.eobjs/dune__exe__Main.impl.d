bench/main.ml: Ablations Array Device Exp_analysis Exp_common Exp_table1 Fig3 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 Format List Micro Printexc Sys Timing Unix
