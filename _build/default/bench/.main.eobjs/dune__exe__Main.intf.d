bench/main.mli:
