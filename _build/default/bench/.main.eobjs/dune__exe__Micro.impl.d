bench/micro.ml: Analyze Autotune Bechamel Benchmark Cost_model Device Exp_common Fisher Format Hashtbl Instance Loop_nest Measure Models Ops Poly Rng Staged Tensor Test Time Toolkit
