(* Utility tests: RNG determinism and distributional sanity, statistics
   against hand-computed values. *)

let t_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let t_rng_split_independent () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  (* The child stream differs from the parent's continuation. *)
  Alcotest.(check bool) "different streams" true (Rng.bits64 child <> Rng.bits64 parent)

let t_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let t_rng_uniform_mean () =
  let r = Rng.create 8 in
  let n = 5000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform r
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.3f near 0.5" mean) true
    (Float.abs (mean -. 0.5) < 0.03)

let t_rng_gauss_moments () =
  let r = Rng.create 9 in
  let n = 5000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gauss r in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.06);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let t_rng_shuffle_permutes () =
  let r = Rng.create 10 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let t_rng_sample_without_replacement () =
  let r = Rng.create 11 in
  let s = Rng.sample r 5 (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "five" 5 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Array.iteri
    (fun i v -> if i > 0 then Alcotest.(check bool) "distinct" true (v <> sorted.(i - 1)))
    sorted

let t_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min xs);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max xs);
  Alcotest.(check int) "argmax" 3 (Stats.argmax xs);
  Alcotest.(check int) "argmin" 0 (Stats.argmin xs)

let t_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 30.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25 interpolated" 20.0 (Stats.percentile xs 25.0)

let t_stats_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "self correlation" 1.0 (Stats.pearson xs xs);
  let neg = Array.map (fun x -> -.x) xs in
  Alcotest.(check (float 1e-9)) "anti correlation" (-1.0) (Stats.pearson xs neg);
  Alcotest.(check (float 1e-9)) "spearman monotone" 1.0
    (Stats.spearman xs [| 1.0; 10.0; 100.0; 1000.0 |])

let t_stats_spearman_ties () =
  (* With ties, ranks are averaged: still well-defined and bounded. *)
  let s = Stats.spearman [| 1.0; 1.0; 2.0 |] [| 2.0; 2.0; 4.0 |] in
  Alcotest.(check bool) "bounded" true (s >= -1.0 && s <= 1.0);
  Alcotest.(check bool) "positive" true (s > 0.0)

let t_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let t_stats_histogram () =
  let h = Stats.histogram [| 0.1; 0.2; 0.6; 0.9; 1.5; -0.5 |] ~bins:2 ~lo:0.0 ~hi:1.0 in
  (* 1.5 clamps to the top bin, -0.5 to the bottom. *)
  Alcotest.(check (array int)) "counts" [| 3; 3 |] h

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"pearson is within [-1, 1]" ~count:100
      (list_of_size (Gen.int_range 2 20) (pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)))
      (fun pairs ->
        let xs = Array.of_list (List.map fst pairs) in
        let ys = Array.of_list (List.map snd pairs) in
        let p = Stats.pearson xs ys in
        p >= -1.0 -. 1e-9 && p <= 1.0 +. 1e-9);
    Test.make ~name:"permutation is a bijection" ~count:100 (int_range 1 50)
      (fun n ->
        let p = Rng.permutation (Rng.create n) n in
        let sorted = Array.copy p in
        Array.sort compare sorted;
        sorted = Array.init n (fun i -> i));
    Test.make ~name:"percentile is monotone in p" ~count:50
      (list_of_size (Gen.int_range 2 20) (float_range 0.0 100.0))
      (fun raw ->
        let xs = Array.of_list raw in
        Stats.percentile xs 25.0 <= Stats.percentile xs 75.0) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "util"
    [ ( "rng",
        [ quick "deterministic" t_rng_deterministic;
          quick "split" t_rng_split_independent;
          quick "int bounds" t_rng_int_bounds;
          quick "uniform mean" t_rng_uniform_mean;
          quick "gauss moments" t_rng_gauss_moments;
          quick "shuffle" t_rng_shuffle_permutes;
          quick "sample" t_rng_sample_without_replacement ] );
      ( "stats",
        [ quick "basics" t_stats_basics;
          quick "percentile" t_stats_percentile;
          quick "correlation" t_stats_correlation;
          quick "spearman ties" t_stats_spearman_ties;
          quick "geomean" t_stats_geomean;
          quick "histogram" t_stats_histogram ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
