(* Neural-network layer-graph tests: graph mechanics, model zoo structure,
   gradient flow, optimizer behaviour, and a real end-to-end training run. *)

let rng () = Rng.create 99

let t_graph_forward_shapes () =
  let model = Models.build (Models.resnet34 ()) (rng ()) in
  let input = Tensor.rand_normal (rng ()) [| 2; 3; 16; 16 |] ~mean:0.0 ~std:1.0 in
  let logits = Models.forward_logits model input in
  Alcotest.(check (array int)) "logit shape" [| 2; 10 |] (Tensor.shape logits)

let t_graph_rejects_bad_topology () =
  let node i inputs = { Graph.id = i; op = Graph.Relu; inputs; label = "x" } in
  Alcotest.(check bool) "forward reference rejected" true
    (try
       ignore (Graph.make [| node 0 [ 1 ]; node 1 [] |] ~output_id:1);
       false
     with Assert_failure _ -> true)

let t_residual_add_gradient () =
  (* Gradient flows through both branches of an Add. *)
  let b = Builder.create (rng ()) in
  let inp = Builder.input b in
  let c1 = Builder.conv_bn_relu b ~label:"a" ~in_channels:2 ~out_channels:2 ~kernel:3 ~stride:1 inp in
  let sum = Builder.add b ~label:"add" Graph.Add [ c1; inp ] in
  let gap = Builder.add b ~label:"gap" Graph.Global_avg_pool [ sum ] in
  let fc = Builder.linear_layer b ~label:"fc" ~in_features:2 ~out_features:3 gap in
  let g = Builder.finish b ~output:fc in
  let images = Tensor.rand_normal (rng ()) [| 2; 2; 4; 4 |] ~mean:0.0 ~std:1.0 in
  let _, loss = Train.forward_backward_graph g { Train.images; labels = [| 0; 1 |] } in
  Alcotest.(check bool) "loss finite" true (Float.is_finite loss);
  let params = Graph.params g in
  let total_grad =
    List.fold_left (fun acc p -> acc +. Tensor.sq_norm p.Layer.p_grad) 0.0 params
  in
  Alcotest.(check bool) "gradients non-zero" true (total_grad > 0.0)

let t_site_counts () =
  (* ResNet-34 basic-block structure: 2 sites per block, 16 blocks. *)
  Alcotest.(check int) "resnet34 sites" 32 (Models.site_count (Models.resnet34 ()));
  Alcotest.(check int) "resnet18 sites" 16 (Models.site_count (Models.resnet18 ()));
  (* ResNeXt-29: 3 stages x 3 blocks, one grouped 3x3 per block. *)
  Alcotest.(check int) "resnext29 sites" 9 (Models.site_count (Models.resnext29 ()));
  (* DenseNet: 2 sites per dense layer. *)
  Alcotest.(check int) "densenet161 sites"
    (2 * (3 + 6 + 12 + 8))
    (Models.site_count (Models.densenet161 ()))

let t_resnext_baseline_grouped () =
  let model = Models.build (Models.resnext29 ()) (rng ()) in
  Array.iter
    (fun site -> Alcotest.(check int) "cardinality" 2 site.Conv_impl.groups)
    model.Models.sites

let t_fisher_nodes_align () =
  let model = Models.build (Models.densenet161 ()) (rng ()) in
  Alcotest.(check int) "one fisher node per site"
    (Array.length model.Models.sites)
    (Array.length model.Models.fisher_node_ids)

let t_rebuild_changes_structure () =
  let model = Models.build (Models.resnet34 ()) (rng ()) in
  let impls = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  impls.(0) <- Conv_impl.Bottleneck 2;
  let m2 = Models.rebuild model (rng ()) impls in
  Alcotest.(check bool) "more nodes (extra 1x1)" true
    (Graph.node_count m2.Models.graph > Graph.node_count model.Models.graph);
  (* Forward still works and shapes are preserved. *)
  let input = Tensor.rand_normal (rng ()) [| 1; 3; 16; 16 |] ~mean:0.0 ~std:1.0 in
  Alcotest.(check (array int)) "logits" [| 1; 10 |]
    (Tensor.shape (Models.forward_logits m2 input))

let t_every_impl_builds_and_runs () =
  let model = Models.build (Models.resnet34 ()) (rng ()) in
  let input = Tensor.rand_normal (rng ()) [| 1; 3; 16; 16 |] ~mean:0.0 ~std:1.0 in
  List.iter
    (fun impl ->
      let impls =
        Array.map
          (fun s -> if Conv_impl.valid s impl then impl else Conv_impl.Full)
          model.Models.sites
      in
      let m = Models.rebuild model (rng ()) impls in
      let logits = Models.forward_logits m input in
      Alcotest.(check (array int))
        (Conv_impl.to_string impl) [| 1; 10 |] (Tensor.shape logits))
    [ Conv_impl.Grouped 2; Conv_impl.Grouped 4; Conv_impl.Bottleneck 2;
      Conv_impl.Depthwise_separable; Conv_impl.Spatial_bottleneck 2;
      Conv_impl.Split_grouped (2, 4) ]

let t_label_addressed_weights () =
  (* Two builds from the same seed share weights of common layers even when
     one site's structure differs. *)
  let config = Models.resnet34 () in
  let a = Models.build config (Rng.create 5) in
  let impls = Array.map (fun _ -> Conv_impl.Full) a.Models.sites in
  impls.(3) <- Conv_impl.Grouped 2;
  let b = Models.build ~impls config (Rng.create 5) in
  let conv_weights m =
    List.filter_map
      (fun p ->
        if String.length p.Layer.p_name > 2 && Tensor.ndim p.Layer.p_value = 4 then
          Some (p.Layer.p_name, p.p_value)
        else None)
      (Graph.params m.Models.graph)
  in
  let wa = conv_weights a and wb = conv_weights b in
  let shared =
    List.filter_map
      (fun (name, va) ->
        match List.assoc_opt name wb with Some vb -> Some (va, vb) | None -> None)
      wa
  in
  Alcotest.(check bool) "some shared layers" true (List.length shared > 20);
  List.iter
    (fun (va, vb) ->
      if Tensor.same_shape va vb then
        Alcotest.(check bool) "identical weights" true (Tensor.approx_equal va vb))
    shared

let t_macs_vs_impl () =
  let model = Models.build (Models.resnet34 ()) (rng ()) in
  let base = Models.total_macs model in
  let grouped =
    Models.rebuild model (rng ())
      (Array.map
         (fun s -> if Conv_impl.valid s (Conv_impl.Grouped 4) then Conv_impl.Grouped 4 else Conv_impl.Full)
         model.Models.sites)
  in
  Alcotest.(check bool) "grouping reduces MACs" true
    (Models.total_macs grouped < (2 * base) / 3)

let t_cost_workloads_scale () =
  let model = Models.build (Models.resnet34 ()) (rng ()) in
  Alcotest.(check int) "channel mult" 8 model.Models.cost_mult_c;
  Alcotest.(check int) "spatial mult" 2 model.Models.cost_mult_s;
  let scaled = Models.scale_site model model.Models.sites.(0) in
  Alcotest.(check int) "scaled channels"
    (model.Models.sites.(0).Conv_impl.in_channels * 8)
    scaled.Conv_impl.in_channels

let t_optimizer_descends () =
  (* One SGD step moves weights against the gradient. *)
  let p = Layer.param "w" (Tensor.of_array [| 2 |] [| 1.0; -1.0 |]) in
  Tensor.set1 p.Layer.p_grad 0 0.5;
  Tensor.set1 p.p_grad 1 (-0.5);
  let opt = Optimizer.sgd ~momentum:0.0 ~weight_decay:0.0 ~lr:0.1 [ p ] in
  Optimizer.step opt;
  Alcotest.(check bool) "w0 decreased" true (Tensor.get1 p.p_value 0 < 1.0);
  Alcotest.(check bool) "w1 increased" true (Tensor.get1 p.p_value 1 > -1.0)

let t_decay_schedule () =
  let lr = Optimizer.decay_schedule ~milestones:[ 10; 20 ] ~gamma:0.1 ~base_lr:1.0 in
  Alcotest.(check (float 1e-9)) "before" 1.0 (lr 5);
  Alcotest.(check (float 1e-9)) "after first" 0.1 (lr 15);
  Alcotest.(check (float 1e-9)) "after both" 0.01 (lr 25)

let t_training_learns () =
  (* A small net must reach well-above-chance accuracy on the synthetic
     task — the substrate every accuracy experiment relies on. *)
  let r = rng () in
  let model = Models.build (Models.resnet18 ~scale:`Train ()) r in
  let data = Synthetic_data.cifar_like_small (Rng.split r) ~n:128 in
  let batch_rng = Rng.split r in
  let _ =
    Train.train model ~steps:60
      ~batch_fn:(fun step -> Synthetic_data.batch_fn batch_rng data ~batch_size:16 step)
      ~base_lr:0.05
  in
  let acc = Train.evaluate model (Synthetic_data.batches data ~batch_size:16) in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f > 0.5" acc)
    true (acc > 0.5)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"workload expansion matches macs accounting" ~count:50
      (pair (int_range 0 31) (int_range 0 5))
      (fun (site_ix, impl_ix) ->
        let model = Models.build (Models.resnet34 ()) (Rng.create 3) in
        let site = model.Models.sites.(site_ix mod Array.length model.Models.sites) in
        let impl =
          List.nth
            [ Conv_impl.Full; Conv_impl.Grouped 2; Conv_impl.Bottleneck 2;
              Conv_impl.Depthwise_separable; Conv_impl.Spatial_bottleneck 2;
              Conv_impl.Split_grouped (2, 4) ]
            impl_ix
        in
        (not (Conv_impl.valid site impl))
        || Conv_impl.macs site impl
           = List.fold_left
               (fun acc w -> acc + Conv_impl.workload_macs w)
               0
               (Conv_impl.workloads site impl));
    Test.make ~name:"param_count consistent with workload weights" ~count:50
      (int_range 0 31)
      (fun site_ix ->
        let model = Models.build (Models.resnet34 ()) (Rng.create 3) in
        let site = model.Models.sites.(site_ix mod Array.length model.Models.sites) in
        List.for_all
          (fun impl ->
            let from_workloads =
              List.fold_left
                (fun acc (w : Conv_impl.workload) ->
                  acc
                  + (w.Conv_impl.w_in_channels * w.w_out_channels * w.w_kernel
                     * w.w_kernel / w.w_groups))
                0
                (Conv_impl.workloads site impl)
            in
            Conv_impl.param_count site impl = from_workloads)
          (Conv_impl.all_options site)) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "nn"
    [ ( "graph",
        [ quick "forward shapes" t_graph_forward_shapes;
          quick "topology validation" t_graph_rejects_bad_topology;
          quick "residual gradient" t_residual_add_gradient ] );
      ( "models",
        [ quick "site counts" t_site_counts;
          quick "resnext cardinality" t_resnext_baseline_grouped;
          quick "fisher nodes align" t_fisher_nodes_align;
          quick "rebuild" t_rebuild_changes_structure;
          quick "every impl builds" t_every_impl_builds_and_runs;
          quick "label-addressed weights" t_label_addressed_weights;
          quick "macs reduction" t_macs_vs_impl;
          quick "cost scaling" t_cost_workloads_scale ] );
      ( "training",
        [ quick "sgd step" t_optimizer_descends;
          quick "decay schedule" t_decay_schedule;
          slow "learns the synthetic task" t_training_learns ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
