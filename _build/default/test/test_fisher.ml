(* Fisher Potential tests: the formula itself, graph-level aggregation,
   clipped legality, and the measure's behaviour on structures with
   obviously different capacities. *)

let rng () = Rng.create 17

let t_channel_score_formula () =
  (* Hand-computed instance of eq. (4): N=1, C=1, 2x1 activation. *)
  let activation = Tensor.of_array [| 1; 1; 2; 1 |] [| 2.0; 3.0 |] in
  let grad = Tensor.of_array [| 1; 1; 2; 1 |] [| 0.5; -1.0 |] in
  (* sum A*g = 1 - 3 = -2; delta = (-2)^2 / (2*1) = 2 *)
  Alcotest.(check (float 1e-9)) "delta_c" 2.0
    (Fisher.channel_score ~activation ~grad ~channel:0)

let t_channel_score_batch_mean () =
  (* Two identical examples double nothing: 1/2N of the summed squares. *)
  let activation = Tensor.of_array [| 2; 1; 1; 1 |] [| 2.0; 2.0 |] in
  let grad = Tensor.of_array [| 2; 1; 1; 1 |] [| 1.0; 1.0 |] in
  (* per-example (2*1)^2 = 4, sum 8, /(2*2) = 2 *)
  Alcotest.(check (float 1e-9)) "batch mean" 2.0
    (Fisher.channel_score ~activation ~grad ~channel:0)

let t_layer_score_sums_channels () =
  let r = rng () in
  let activation = Tensor.rand_normal r [| 2; 3; 2; 2 |] ~mean:0.0 ~std:1.0 in
  let grad = Tensor.rand_normal r [| 2; 3; 2; 2 |] ~mean:0.0 ~std:1.0 in
  let by_hand =
    List.fold_left
      (fun acc c -> acc +. Fisher.channel_score ~activation ~grad ~channel:c)
      0.0 [ 0; 1; 2 ]
  in
  Alcotest.(check (float 1e-9)) "sum" by_hand (Fisher.layer_score ~activation ~grad)

let t_zero_grad_zero_score () =
  let activation = Tensor.ones [| 1; 2; 2; 2 |] in
  let grad = Tensor.zeros [| 1; 2; 2; 2 |] in
  Alcotest.(check (float 1e-12)) "zero" 0.0 (Fisher.layer_score ~activation ~grad)

let t_model_scores_positive () =
  let r = rng () in
  let model = Models.build (Models.resnet18 ()) r in
  let probe = Exp_common.probe_batch (Rng.split r) ~input_size:16 in
  let s = Fisher.score model probe in
  Alcotest.(check int) "per-site count" (Array.length model.Models.sites)
    (Array.length s.Fisher.per_site);
  Alcotest.(check bool) "total positive" true (s.Fisher.total > 0.0);
  Array.iter
    (fun v -> Alcotest.(check bool) "site non-negative" true (v >= 0.0))
    s.Fisher.per_site

let t_deterministic () =
  let model = Models.build (Models.resnet18 ()) (Rng.create 3) in
  let probe = Exp_common.probe_batch (Rng.create 4) ~input_size:16 in
  let a = Fisher.potential model probe in
  let b = Fisher.potential model probe in
  Alcotest.(check (float 1e-12)) "same input, same score" a b

let t_clipped_total () =
  let mk per_site =
    { Fisher.per_site; total = Array.fold_left ( +. ) 0.0 per_site }
  in
  let baseline = mk [| 1.0; 2.0; 3.0 |] in
  let candidate = mk [| 10.0; 1.0; 3.0 |] in
  (* clip: min(10,1) + min(1,2) + min(3,3) = 1 + 1 + 3 = 5 *)
  Alcotest.(check (float 1e-9)) "clipped" 5.0 (Fisher.clipped_total ~baseline candidate);
  Alcotest.(check bool) "5/6 < 0.88: illegal" false
    (Fisher.legal_clipped ~baseline candidate);
  Alcotest.(check bool) "baseline is legal vs itself" true
    (Fisher.legal_clipped ~baseline baseline)

let t_legal_simple () =
  Alcotest.(check bool) "above" true (Fisher.legal ~original:1.0 ~candidate:1.1 ());
  Alcotest.(check bool) "within slack" true (Fisher.legal ~original:1.0 ~candidate:0.96 ());
  Alcotest.(check bool) "below" false (Fisher.legal ~original:1.0 ~candidate:0.5 ())

let t_zeroed_network_scores_lower () =
  (* Grouping damages representational capacity; across the grouping levels
     at least one must measurably lose clipped Fisher Potential against the
     reference with shared weights (individual levels are noisy at this
     scale, so the assertion quantifies over the family). *)
  let model = Models.build (Models.resnet18 ()) (Rng.create 5) in
  let probe = Exp_common.probe_batch (Rng.create 6) ~input_size:16 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let baseline = Fisher.score (Models.rebuild model (Rng.create 7) full) probe in
  let clipped_ratio g =
    let impls =
      Array.map
        (fun s -> if Conv_impl.valid s (Conv_impl.Grouped g) then Conv_impl.Grouped g else Conv_impl.Full)
        model.Models.sites
    in
    let candidate = Fisher.score (Models.rebuild model (Rng.create 7) impls) probe in
    Fisher.clipped_total ~baseline candidate /. baseline.Fisher.total
  in
  let ratios = List.map clipped_ratio [ 2; 4; 8 ] in
  List.iter
    (fun r -> Alcotest.(check bool) "clipped never exceeds 1" true (r <= 1.0 +. 1e-9))
    ratios;
  Alcotest.(check bool) "some level loses capacity" true
    (List.exists (fun r -> r < 0.95) ratios)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"clipped total never exceeds baseline total" ~count:100
      (list_of_size (Gen.return 6) (pair (float_bound_exclusive 10.0) (float_bound_exclusive 10.0)))
      (fun pairs ->
        let pairs = List.map (fun (a, b) -> (a +. 0.01, b +. 0.01)) pairs in
        let baseline_arr = Array.of_list (List.map fst pairs) in
        let cand_arr = Array.of_list (List.map snd pairs) in
        let mk per_site = { Fisher.per_site; total = Array.fold_left ( +. ) 0.0 per_site } in
        let baseline = mk baseline_arr in
        Fisher.clipped_total ~baseline (mk cand_arr) <= baseline.Fisher.total +. 1e-9);
    Test.make ~name:"channel score is scale-quadratic" ~count:30
      (pair (int_range 1 3) (float_range 0.5 2.0))
      (fun (c, k) ->
        let r = Rng.create (c * 100) in
        let activation = Tensor.rand_normal r [| 2; c; 3; 3 |] ~mean:0.0 ~std:1.0 in
        let grad = Tensor.rand_normal r [| 2; c; 3; 3 |] ~mean:0.0 ~std:1.0 in
        let base = Fisher.channel_score ~activation ~grad ~channel:0 in
        let scaled =
          Fisher.channel_score ~activation:(Tensor.scale k activation) ~grad ~channel:0
        in
        Float.abs (scaled -. (k *. k *. base)) < 1e-6 *. (1.0 +. Float.abs scaled)) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "fisher"
    [ ( "formula",
        [ quick "eq. 4 by hand" t_channel_score_formula;
          quick "batch mean" t_channel_score_batch_mean;
          quick "eq. 5 sums channels" t_layer_score_sums_channels;
          quick "zero gradient" t_zero_grad_zero_score ] );
      ( "network",
        [ quick "per-site scores" t_model_scores_positive;
          quick "deterministic" t_deterministic;
          quick "aggressive grouping scores lower" t_zeroed_network_scores_lower ] );
      ( "legality",
        [ quick "clipped total" t_clipped_total;
          quick "simple threshold" t_legal_simple ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
