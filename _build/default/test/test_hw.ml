(* Hardware-model tests: device sanity, cost-model monotonicity and
   directional behaviour, cache simulator mechanics, and autotuner
   improvement. *)

let nest ?(co = 32) ?(ci = 32) ?(hw = 16) ?(k = 3) ?(stride = 1) ?(groups = 1) () =
  Loop_nest.conv_nest_of_dims ~co ~ci ~oh:hw ~ow:hw ~k ~stride ~groups

let t_devices_listed () =
  Alcotest.(check int) "four platforms" 4 (List.length Device.all);
  Alcotest.(check bool) "lookup by short name" true (Device.by_name "mGPU" <> None);
  Alcotest.(check bool) "unknown" true (Device.by_name "TPU" = None)

let t_peak_ordering () =
  (* Server GPU > server CPU > mobile GPU > mobile CPU in peak compute. *)
  let p d = Device.peak_gflops d in
  Alcotest.(check bool) "GPU fastest" true (p Device.gtx1080ti > p Device.i7);
  Alcotest.(check bool) "i7 > mGPU is false (mGPU raw flops close)" true
    (p Device.i7 > p Device.arm_a57);
  Alcotest.(check bool) "mCPU slowest" true
    (p Device.arm_a57 < p Device.maxwell_mgpu)

let t_cost_positive_and_finite () =
  List.iter
    (fun dev ->
      let n = nest () in
      let b = Cost_model.estimate dev n (Loop_nest.baseline_schedule n) in
      Alcotest.(check bool) (dev.Device.short_name ^ " finite") true
        (Float.is_finite b.Cost_model.total_s && b.total_s > 0.0);
      Alcotest.(check bool) "components" true
        (b.compute_s >= 0.0 && b.memory_s >= 0.0 && b.overhead_s > 0.0))
    Device.all

let t_more_work_costs_more () =
  let small = nest ~co:16 ~ci:16 () and big = nest ~co:64 ~ci:64 () in
  List.iter
    (fun dev ->
      let c n = Cost_model.estimate_s dev n (Loop_nest.baseline_schedule n) in
      Alcotest.(check bool) (dev.Device.short_name ^ " monotone") true
        (c big > c small))
    Device.all

let t_grouping_reduces_cost () =
  let n = nest ~co:64 ~ci:64 ~hw:32 () in
  List.iter
    (fun dev ->
      let base = Loop_nest.baseline_schedule n in
      let _, tvm = Autotune.tune dev n in
      let grouped = Poly.group base ~co:"co" ~ci:"ci" ~factor:4 in
      let _, grp = Autotune.tune ~base:grouped dev n in
      Alcotest.(check bool)
        (dev.Device.short_name ^ " grouping helps")
        true
        (grp.Cost_model.total_s < tvm.Cost_model.total_s))
    Device.all

let t_vectorization_helps_cpu () =
  let n = nest () in
  let base = Loop_nest.baseline_schedule n in
  let plain = Cost_model.estimate Device.i7 n base in
  let vec = Poly.vectorize base ~pos:(Poly.loop_count base - 1) in
  (* vectorizing kw (innermost) gives some gain *)
  let v = Cost_model.estimate Device.i7 n vec in
  Alcotest.(check bool) "vector eff greater" true
    (v.Cost_model.vector_eff >= plain.Cost_model.vector_eff)

let t_gpu_unmapped_is_slow () =
  let n = nest () in
  let base = Loop_nest.baseline_schedule n in
  let unmapped = Cost_model.estimate Device.gtx1080ti n base in
  let mapped, _ = Autotune.tune Device.gtx1080ti n in
  let m = Cost_model.estimate Device.gtx1080ti n mapped in
  Alcotest.(check bool) "mapping essential" true
    (m.Cost_model.total_s < unmapped.Cost_model.total_s)

let t_tuning_never_hurts () =
  List.iter
    (fun dev ->
      let n = nest ~co:64 ~ci:64 ~hw:8 () in
      let default = Autotune.default_schedule dev n in
      let d = Cost_model.estimate_s dev n default in
      let _, tuned = Autotune.tune dev n in
      Alcotest.(check bool)
        (dev.Device.short_name ^ " tuned <= default")
        true
        (tuned.Cost_model.total_s <= d +. 1e-12))
    Device.all

let t_hints_change_schedule () =
  let n = nest ~hw:16 () in
  let hints = { Autotune.h_unroll_co = Some 16; h_spatial_split = Some 2 } in
  let s, _ = Autotune.tune ~hints Device.i7 n in
  (* The unroll hint must survive into the tuned schedule. *)
  let has_unroll = List.exists (fun (l : Poly.loop) -> l.Poly.unroll > 1) s.Poly.loops in
  Alcotest.(check bool) "unroll present" true has_unroll

(* --- Cache simulator --------------------------------------------------- *)

let small_cache = { Device.c_size = 256; c_line = 64; c_assoc = 2 }

let t_cache_hit_after_miss () =
  let c = Cache_sim.create small_cache in
  Alcotest.(check bool) "first access misses" false (Cache_sim.access c 0);
  Alcotest.(check bool) "second hits" true (Cache_sim.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache_sim.access c 32)

let t_cache_capacity_eviction () =
  let c = Cache_sim.create small_cache in
  (* 4 lines total; touch 8 distinct lines then re-touch the first. *)
  for i = 0 to 7 do
    ignore (Cache_sim.access c (i * 64))
  done;
  Alcotest.(check bool) "evicted" false (Cache_sim.access c 0)

let t_cache_lru () =
  (* Associativity-2, one set when size=128,line=64. *)
  let c = Cache_sim.create { Device.c_size = 128; c_line = 64; c_assoc = 2 } in
  ignore (Cache_sim.access c 0);
  ignore (Cache_sim.access c 64);
  ignore (Cache_sim.access c 0);
  (* 64 is now LRU; inserting 128 evicts it. *)
  ignore (Cache_sim.access c 128);
  Alcotest.(check bool) "0 kept (MRU)" true (Cache_sim.access c 0);
  Alcotest.(check bool) "64 evicted" false (Cache_sim.access c 64)

let t_cache_program_counts () =
  let n = nest ~co:4 ~ci:4 ~hw:4 () in
  let prog = Loop_nest.lower n (Loop_nest.baseline_schedule n) in
  let stats = Cache_sim.simulate_program small_cache prog in
  Alcotest.(check int) "3 accesses per MAC"
    (3 * Poly.points prog.Loop_nest.schedule)
    stats.Cache_sim.accesses;
  Alcotest.(check bool) "some misses" true (stats.Cache_sim.misses > 0);
  Alcotest.(check bool) "miss rate sane" true (Cache_sim.miss_rate stats <= 1.0)

let t_locality_schedule_fewer_misses () =
  (* A schedule with kw innermost (weight reuse) vs kw outermost. *)
  let n = nest ~co:8 ~ci:8 ~hw:8 () in
  let good = Loop_nest.baseline_schedule n in
  let bad = Poly.reorder good [| 5; 4; 3; 2; 1; 0 |] in
  let cache = { Device.c_size = 1024; c_line = 64; c_assoc = 4 } in
  let m s = (Cache_sim.simulate_program cache (Loop_nest.lower n s)).Cache_sim.misses in
  Alcotest.(check bool) "canonical order has fewer misses" true (m good < m bad)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"cost estimates are deterministic" ~count:20
      (pair (int_range 8 64) (int_range 4 16))
      (fun (c, hw) ->
        let c = c / 4 * 4 and hw = hw / 2 * 2 in
        let c = max 4 c and hw = max 4 hw in
        let n = nest ~co:c ~ci:c ~hw () in
        let s = Autotune.default_schedule Device.i7 n in
        Cost_model.estimate_s Device.i7 n s = Cost_model.estimate_s Device.i7 n s);
    Test.make ~name:"dram traffic bounded below by compulsory misses" ~count:20
      (int_range 4 16)
      (fun hw ->
        let hw = max 4 (hw / 2 * 2) in
        let n = nest ~co:8 ~ci:8 ~hw () in
        let s = Loop_nest.baseline_schedule n in
        let traffic = Cost_model.dram_traffic Device.i7 n s in
        (* At least the output must be written. *)
        traffic >= float_of_int (8 * hw * hw * 4)) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "hw"
    [ ( "devices",
        [ quick "four platforms" t_devices_listed; quick "peak ordering" t_peak_ordering ] );
      ( "cost model",
        [ quick "positive and finite" t_cost_positive_and_finite;
          quick "monotone in work" t_more_work_costs_more;
          quick "grouping reduces cost" t_grouping_reduces_cost;
          quick "vectorization" t_vectorization_helps_cpu;
          quick "gpu mapping essential" t_gpu_unmapped_is_slow ] );
      ( "autotuner",
        [ quick "tuned beats default" t_tuning_never_hurts;
          quick "hints survive" t_hints_change_schedule ] );
      ( "cache sim",
        [ quick "hit after miss" t_cache_hit_after_miss;
          quick "capacity eviction" t_cache_capacity_eviction;
          quick "lru" t_cache_lru;
          quick "program trace" t_cache_program_counts;
          quick "locality ordering" t_locality_schedule_fewer_misses ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
