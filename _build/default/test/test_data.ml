(* Synthetic-dataset tests: structure, determinism, batching, and the key
   property every accuracy experiment relies on — the task is learnable. *)

let t_shapes_and_labels () =
  let d = Synthetic_data.make (Rng.create 1) ~classes:4 ~size:8 ~n:40 () in
  Alcotest.(check int) "count" 40 (Array.length d.Synthetic_data.images);
  Alcotest.(check int) "labels" 40 (Array.length d.labels);
  Array.iter
    (fun img -> Alcotest.(check (array int)) "image shape" [| 3; 8; 8 |] (Tensor.shape img))
    d.images;
  Array.iter
    (fun l -> Alcotest.(check bool) "label range" true (l >= 0 && l < 4))
    d.labels

let t_class_balance () =
  let d = Synthetic_data.make (Rng.create 2) ~classes:5 ~size:8 ~n:50 () in
  let counts = Array.make 5 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) d.Synthetic_data.labels;
  Array.iter (fun c -> Alcotest.(check int) "balanced" 10 c) counts

let t_deterministic () =
  let a = Synthetic_data.make (Rng.create 3) ~classes:3 ~size:8 ~n:12 () in
  let b = Synthetic_data.make (Rng.create 3) ~classes:3 ~size:8 ~n:12 () in
  Array.iteri
    (fun i img ->
      Alcotest.(check bool) "same images" true
        (Tensor.approx_equal img b.Synthetic_data.images.(i)))
    a.Synthetic_data.images

let t_same_class_more_similar () =
  (* Samples of one class correlate more with each other than across
     classes (signal-to-noise sanity). *)
  let d = Synthetic_data.make (Rng.create 4) ~classes:2 ~size:8 ~n:40 ~noise:0.3 () in
  let by_class c =
    Array.to_list d.Synthetic_data.images
    |> List.filteri (fun i _ -> d.labels.(i) = c)
  in
  let dot a b = Tensor.sum (Tensor.mul a b) in
  let zeros = by_class 0 and ones = by_class 1 in
  let a0 = List.nth zeros 0 and a1 = List.nth zeros 1 and b0 = List.nth ones 0 in
  Alcotest.(check bool) "within-class similarity" true (dot a0 a1 > dot a0 b0)

let t_batches () =
  let d = Synthetic_data.make (Rng.create 5) ~classes:2 ~size:8 ~n:35 () in
  let batches = Synthetic_data.batches d ~batch_size:8 in
  Alcotest.(check int) "ragged tail dropped" 4 (List.length batches);
  List.iter
    (fun b ->
      Alcotest.(check (array int)) "batch shape" [| 8; 3; 8; 8 |]
        (Tensor.shape b.Train.images);
      Alcotest.(check int) "labels" 8 (Array.length b.Train.labels))
    batches

let t_batch_contents_match () =
  let d = Synthetic_data.make (Rng.create 6) ~classes:2 ~size:8 ~n:16 () in
  match Synthetic_data.batches d ~batch_size:4 with
  | first :: _ ->
      (* Sample 2 of the first batch equals dataset image 2. *)
      let img2 = d.Synthetic_data.images.(2) in
      let from_batch =
        Tensor.init [| 3; 8; 8 |] (fun idx ->
            Tensor.get first.Train.images [| 2; idx.(0); idx.(1); idx.(2) |])
      in
      Alcotest.(check bool) "stacked correctly" true (Tensor.approx_equal img2 from_batch);
      Alcotest.(check int) "label matches" d.labels.(2) first.Train.labels.(2)
  | [] -> Alcotest.fail "no batches"

let t_fixed_batch_deterministic () =
  let d = Synthetic_data.make (Rng.create 7) ~classes:2 ~size:8 ~n:32 () in
  let a = Synthetic_data.fixed_batch (Rng.create 9) d ~batch_size:8 in
  let b = Synthetic_data.fixed_batch (Rng.create 9) d ~batch_size:8 in
  Alcotest.(check bool) "same probe batch" true
    (Tensor.approx_equal a.Train.images b.Train.images)

let t_linear_model_learns_task () =
  (* Even a linear classifier separates the classes at moderate noise: the
     synthetic task is genuinely learnable. *)
  let rng = Rng.create 8 in
  let d = Synthetic_data.make rng ~classes:4 ~size:8 ~n:128 ~noise:0.5 () in
  let b = Builder.create rng in
  let inp = Builder.input b in
  let gap = Builder.add b ~label:"gap" Graph.Global_avg_pool [ inp ] in
  let fc = Builder.linear_layer b ~label:"fc" ~in_features:3 ~out_features:4 gap in
  ignore fc;
  (* GAP alone loses spatial info; use a conv stem for a fair check. *)
  let b2 = Builder.create rng in
  let inp2 = Builder.input b2 in
  let c = Builder.conv_bn_relu b2 ~label:"c" ~in_channels:3 ~out_channels:8 ~kernel:3 ~stride:1 inp2 in
  let gap2 = Builder.add b2 ~label:"gap" Graph.Global_avg_pool [ c ] in
  let fc2 = Builder.linear_layer b2 ~label:"fc" ~in_features:8 ~out_features:4 gap2 in
  let g = Builder.finish b2 ~output:fc2 in
  let brng = Rng.split rng in
  let _ =
    Train.train_graph g ~steps:80
      ~batch_fn:(fun step -> Synthetic_data.batch_fn brng d ~batch_size:16 step)
      ~base_lr:0.1
  in
  let acc = Train.evaluate_graph g (Synthetic_data.batches d ~batch_size:16) in
  Alcotest.(check bool) (Printf.sprintf "acc %.2f > 0.6" acc) true (acc > 0.6)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "data"
    [ ( "generation",
        [ quick "shapes" t_shapes_and_labels;
          quick "balance" t_class_balance;
          quick "deterministic" t_deterministic;
          quick "class structure" t_same_class_more_similar ] );
      ( "batching",
        [ quick "splits" t_batches;
          quick "contents" t_batch_contents_match;
          quick "fixed probe" t_fixed_batch_deterministic ] );
      ("learnability", [ slow "small net learns" t_linear_model_learns_task ]) ]
