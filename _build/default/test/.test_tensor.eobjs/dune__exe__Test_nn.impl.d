test/test_nn.ml: Alcotest Array Builder Conv_impl Float Graph Layer List Models Optimizer Printf QCheck QCheck_alcotest Rng String Synthetic_data Tensor Test Train
