test/test_fisher.mli:
