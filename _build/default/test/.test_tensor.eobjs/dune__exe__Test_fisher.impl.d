test/test_fisher.ml: Alcotest Array Conv_impl Exp_common Fisher Float Gen List Models QCheck QCheck_alcotest Rng Tensor Test
