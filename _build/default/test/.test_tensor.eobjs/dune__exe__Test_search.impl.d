test/test_search.ml: Alcotest Array Blockswap Conv_impl Device Exp_common Gen List Models Pareto Pipeline QCheck QCheck_alcotest Rng Site_plan Test Unified_search
