test/test_nasbench.ml: Alcotest Array Fisher Float Graph List Nasbench QCheck QCheck_alcotest Rng Synthetic_data Tensor Test
