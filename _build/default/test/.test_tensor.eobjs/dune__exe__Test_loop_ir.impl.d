test/test_loop_ir.ml: Alcotest Array Float Format List Loop_nest Ops Poly QCheck QCheck_alcotest Rng String Tensor Test
