test/test_hw.ml: Alcotest Autotune Cache_sim Cost_model Device Float List Loop_nest Poly QCheck QCheck_alcotest Test
