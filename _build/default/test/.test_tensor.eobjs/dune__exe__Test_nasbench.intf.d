test/test_nasbench.mli:
