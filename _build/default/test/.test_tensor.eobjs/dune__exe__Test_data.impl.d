test/test_data.ml: Alcotest Array Builder Graph List Printf Rng Synthetic_data Tensor Train
