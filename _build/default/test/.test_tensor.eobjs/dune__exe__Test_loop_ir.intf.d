test/test_loop_ir.mli:
