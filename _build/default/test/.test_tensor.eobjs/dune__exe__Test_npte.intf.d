test/test_npte.mli:
