test/test_tensor.ml: Alcotest Array Float List Ops Printf QCheck QCheck_alcotest Rng Tensor Test
