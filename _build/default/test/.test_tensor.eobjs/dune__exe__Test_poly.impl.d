test/test_poly.ml: Alcotest Array List Poly Poly_legality QCheck QCheck_alcotest Test
