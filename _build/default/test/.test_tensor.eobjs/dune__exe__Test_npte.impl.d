test/test_npte.ml: Alcotest Array Autotune Conv_impl Device List Loop_nest Models Pipeline Poly Rng Sequences Site_plan Table1
