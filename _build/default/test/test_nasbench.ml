(* NAS-Bench-201-like cell-space tests: encoding, instantiation, forward
   correctness of special ops, and the Fisher/error evaluation path. *)

let t_space_size () = Alcotest.(check int) "5^6" 15625 Nasbench.space_size

let t_index_roundtrip () =
  List.iter
    (fun i ->
      Alcotest.(check int) (string_of_int i) i (Nasbench.to_index (Nasbench.of_index i)))
    [ 0; 1; 7; 123; 5555; 15624 ]

let t_index_distinct () =
  let a = Nasbench.of_index 0 and b = Nasbench.of_index 15624 in
  Alcotest.(check bool) "all none vs all avgpool" true (a <> b);
  Array.iter (fun op -> Alcotest.(check string) "none" "none" (Nasbench.op_name op)) a

let t_instantiate_runs () =
  let rng = Rng.create 1 in
  let cell = Nasbench.of_index 12345 in
  let net = Nasbench.instantiate rng cell in
  let input = Tensor.rand_normal rng [| 2; 3; 8; 8 |] ~mean:0.0 ~std:1.0 in
  let run = Graph.forward net.Nasbench.nb_graph input in
  Alcotest.(check (array int)) "logits" [| 2; 10 |] (Tensor.shape (Graph.output run))

let t_all_skip_cell_is_identity_like () =
  (* A cell of all skips has no conv edges inside the cells; only stem,
     reductions and the classifier carry parameters. *)
  let rng = Rng.create 2 in
  let all_skip = Array.make 6 Nasbench.Skip in
  let net = Nasbench.instantiate rng all_skip in
  Alcotest.(check int) "no cell fisher nodes (only reductions)" 2
    (Array.length net.Nasbench.nb_fisher_nodes)

let t_conv_cells_have_more_params () =
  let rng = Rng.create 3 in
  let all_skip = Nasbench.instantiate rng (Array.make 6 Nasbench.Skip) in
  let all_conv = Nasbench.instantiate rng (Array.make 6 Nasbench.Conv3x3) in
  Alcotest.(check bool) "conv3x3 cell bigger" true
    (Graph.param_count all_conv.Nasbench.nb_graph
    > Graph.param_count all_skip.Nasbench.nb_graph)

let t_zero_op_blocks_signal () =
  (* With every edge None, the cells contribute nothing: two different
     inputs produce logits that differ only through stem+reductions...
     actually the final node output is Zero, so cells pass zeros and the
     network still runs. *)
  let rng = Rng.create 4 in
  let net = Nasbench.instantiate rng (Array.make 6 Nasbench.None_op) in
  let input = Tensor.rand_normal rng [| 1; 3; 8; 8 |] ~mean:0.0 ~std:1.0 in
  let run = Graph.forward net.Nasbench.nb_graph input in
  Alcotest.(check bool) "finite output" true
    (Array.for_all Float.is_finite (Tensor.data (Graph.output run)))

let t_evaluate_cell_record () =
  let rng = Rng.create 5 in
  let data = Synthetic_data.cifar_like_small (Rng.split rng) ~n:96 in
  let probe = Synthetic_data.fixed_batch (Rng.split rng) data ~batch_size:8 in
  let r = Nasbench.evaluate_cell ~train_steps:5 ~rng ~data ~probe 777 in
  Alcotest.(check int) "index" 777 r.Nasbench.r_index;
  Alcotest.(check bool) "error in range" true (r.r_error >= 0.0 && r.r_error <= 1.0);
  Alcotest.(check bool) "fisher non-negative" true (r.r_fisher >= 0.0);
  Alcotest.(check bool) "params positive" true (r.r_params > 0)

let t_sample_space_distinct () =
  let rng = Rng.create 6 in
  let data = Synthetic_data.cifar_like_small (Rng.split rng) ~n:96 in
  let probe = Synthetic_data.fixed_batch (Rng.split rng) data ~batch_size:8 in
  let records = Nasbench.sample_space ~train_steps:2 ~rng ~data ~probe ~n:5 () in
  let indices = List.map (fun r -> r.Nasbench.r_index) records in
  Alcotest.(check int) "5 distinct cells" 5 (List.length (List.sort_uniq compare indices))

let t_conv_rich_cells_score_higher_fisher () =
  (* The figure-3 mechanism at its extremes: a cell with convolutions on
     every edge has strictly more Fisher Potential than a cell with none. *)
  let rng = Rng.create 7 in
  let data = Synthetic_data.cifar_like_small (Rng.split rng) ~n:96 in
  let probe = Synthetic_data.fixed_batch (Rng.split rng) data ~batch_size:8 in
  let fisher cell =
    let net = Nasbench.instantiate (Rng.create 9) cell in
    (Fisher.score_graph net.Nasbench.nb_graph ~fisher_nodes:net.Nasbench.nb_fisher_nodes probe)
      .Fisher.total
  in
  Alcotest.(check bool) "conv cell > none cell" true
    (fisher (Array.make 6 Nasbench.Conv3x3) > fisher (Array.make 6 Nasbench.None_op))

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"index roundtrip over the space" ~count:100
      (int_range 0 (Nasbench.space_size - 1))
      (fun i -> Nasbench.to_index (Nasbench.of_index i) = i);
    Test.make ~name:"every cell instantiates and runs forward" ~count:10
      (int_range 0 (Nasbench.space_size - 1))
      (fun i ->
        let rng = Rng.create i in
        let net = Nasbench.instantiate rng (Nasbench.of_index i) in
        let input = Tensor.rand_normal rng [| 1; 3; 8; 8 |] ~mean:0.0 ~std:1.0 in
        let run = Graph.forward net.Nasbench.nb_graph input in
        Tensor.shape (Graph.output run) = [| 1; 10 |]) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "nasbench"
    [ ( "encoding",
        [ quick "space size" t_space_size;
          quick "roundtrip" t_index_roundtrip;
          quick "distinct" t_index_distinct ] );
      ( "instantiation",
        [ quick "runs forward" t_instantiate_runs;
          quick "all-skip structure" t_all_skip_cell_is_identity_like;
          quick "conv cells bigger" t_conv_cells_have_more_params;
          quick "zero op" t_zero_op_blocks_signal ] );
      ( "evaluation",
        [ quick "record fields" t_evaluate_cell_record;
          quick "distinct samples" t_sample_space_distinct;
          quick "fisher tracks capacity" t_conv_rich_cells_score_higher_fisher ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
