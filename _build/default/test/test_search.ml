(* Search tests: the unified search, BlockSwap, Pareto utilities and the
   interpolation machinery.  Small candidate pools keep them fast. *)

let setup () =
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  (rng, model, probe)

let t_unified_improves_or_equals_baseline () =
  let rng, model, probe = setup () in
  let r =
    Unified_search.search ~candidates:40 ~rng:(Rng.split rng) ~device:Device.i7
      ~probe model
  in
  Alcotest.(check bool) "speedup >= 1" true (Unified_search.speedup r >= 1.0);
  Alcotest.(check bool) "accounting" true
    (r.Unified_search.r_rejected <= r.r_explored)

let t_unified_deterministic () =
  let run () =
    let rng, model, probe = setup () in
    let r =
      Unified_search.search ~candidates:25 ~rng:(Rng.split rng) ~device:Device.i7
        ~probe model
    in
    r.Unified_search.r_best.Unified_search.cd_latency_s
  in
  Alcotest.(check (float 1e-12)) "same seed, same result" (run ()) (run ())

let t_unified_multi_matches_single_pool () =
  let rng, model, probe = setup () in
  let results =
    Unified_search.search_multi ~candidates:25 ~rng:(Rng.split rng)
      ~devices:[ Device.i7; Device.maxwell_mgpu ] ~probe model
  in
  Alcotest.(check int) "one result per device" 2 (List.length results);
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "baseline >= best" true
        (r.Unified_search.r_baseline.Pipeline.ev_latency_s
        >= r.r_best.Unified_search.cd_latency_s))
    results;
  (* The Fisher-filter statistics are shared between devices. *)
  match results with
  | [ (_, a); (_, b) ] ->
      Alcotest.(check int) "shared rejections" a.Unified_search.r_rejected
        b.Unified_search.r_rejected
  | _ -> ()

let t_winning_plans_are_legal () =
  let rng, model, probe = setup () in
  let r =
    Unified_search.search ~candidates:30 ~rng:(Rng.split rng) ~device:Device.i7
      ~probe model
  in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "valid plan" true
        (Site_plan.valid model.Models.sites.(i) p))
    r.Unified_search.r_best.Unified_search.cd_plans

let t_blockswap_respects_budget () =
  let rng, model, probe = setup () in
  let bs = Blockswap.search ~samples:40 ~budget_ratio:0.5 ~rng:(Rng.split rng) ~probe model in
  (* Either the budget was met or the fallback (original) was returned. *)
  let site_params impls =
    Array.to_list model.Models.sites
    |> List.fold_left
         (fun acc s ->
           acc
           + Conv_impl.param_count (Models.scale_site model s)
               impls.(s.Conv_impl.site_index))
         0
  in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let is_fallback = bs.Blockswap.bs_impls = full in
  Alcotest.(check bool) "budget or fallback" true
    (is_fallback
    || site_params bs.Blockswap.bs_impls
       <= int_of_float (0.5 *. float_of_int (site_params full)))

let t_blockswap_menu_excludes_sequences () =
  let _, model, _ = setup () in
  Array.iter
    (fun site ->
      List.iter
        (fun impl ->
          match impl with
          | Conv_impl.Split_grouped _ | Conv_impl.Spatial_bottleneck _ ->
              Alcotest.fail "sequence operators must not be in the NAS menu"
          | _ -> ())
        (Blockswap.menu site))
    model.Models.sites

(* --- Pareto ------------------------------------------------------------ *)

let pt name l a = { Pareto.pt_name = name; pt_latency_s = l; pt_accuracy = a }

let t_pareto_dominance () =
  Alcotest.(check bool) "strictly better" true
    (Pareto.dominates (pt "a" 1.0 0.9) (pt "b" 2.0 0.8));
  Alcotest.(check bool) "equal does not dominate" false
    (Pareto.dominates (pt "a" 1.0 0.9) (pt "b" 1.0 0.9));
  Alcotest.(check bool) "tradeoff" false
    (Pareto.dominates (pt "a" 1.0 0.7) (pt "b" 2.0 0.9))

let t_pareto_front () =
  let points =
    [ pt "slow-acc" 4.0 0.95; pt "fast-inacc" 1.0 0.7; pt "dominated" 4.5 0.9;
      pt "mid" 2.0 0.85 ]
  in
  let front = Pareto.front points in
  let names = List.map (fun p -> p.Pareto.pt_name) front in
  Alcotest.(check (list string)) "front sorted by latency"
    [ "fast-inacc"; "mid"; "slow-acc" ] names;
  Alcotest.(check bool) "dominated excluded" true
    (not (List.mem "dominated" names));
  Alcotest.(check bool) "membership test" true
    (Pareto.is_pareto_optimal (pt "mid" 2.0 0.85) points)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"pareto front points are mutually non-dominating" ~count:50
      (list_of_size (Gen.int_range 1 12)
         (pair (float_range 0.1 10.0) (float_range 0.0 1.0)))
      (fun raw ->
        let points = List.mapi (fun i (l, a) -> pt (string_of_int i) l a) raw in
        let front = Pareto.front points in
        List.for_all
          (fun p -> not (List.exists (fun q -> q <> p && Pareto.dominates q p) front))
          front);
    Test.make ~name:"random plans are always valid for their sites" ~count:25
      (int_range 0 10000)
      (fun seed ->
        let rng = Rng.create seed in
        let model = Models.build (Models.resnet18 ()) (Rng.create 7) in
        let plans = Unified_search.random_plans rng model ~mutate_prob:0.8 in
        Array.for_all
          (fun ok -> ok)
          (Array.mapi (fun i p -> Site_plan.valid model.Models.sites.(i) p) plans)) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "search"
    [ ( "unified",
        [ quick "improves baseline" t_unified_improves_or_equals_baseline;
          quick "deterministic" t_unified_deterministic;
          quick "multi-device" t_unified_multi_matches_single_pool;
          quick "winner legality" t_winning_plans_are_legal ] );
      ( "blockswap",
        [ quick "budget" t_blockswap_respects_budget;
          quick "menu restricted" t_blockswap_menu_excludes_sequences ] );
      ( "pareto", [ quick "dominance" t_pareto_dominance; quick "front" t_pareto_front ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
