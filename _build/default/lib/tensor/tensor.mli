(** Dense float tensors.

    A tensor is a flat [float array] with a shape.  Indexing is row-major
    (C order); the convolution code uses NCHW layout for activations and
    OIHW for weights.  All operations allocate fresh tensors unless the name
    ends in [_] (in-place). *)

type t = private { shape : int array; data : float array }

val create : int array -> float -> t
(** [create shape v] is a tensor of the given shape filled with [v]. *)

val zeros : int array -> t
val ones : int array -> t

val init : int array -> (int array -> float) -> t
(** [init shape f] fills each cell from its multi-index. *)

val of_array : int array -> float array -> t
(** Wraps a flat array; the length must match the shape product. *)

val scalar : float -> t
(** Rank-0 tensor. *)

val shape : t -> int array
val data : t -> float array
val numel : t -> int
val ndim : t -> int
val dim : t -> int -> int

val same_shape : t -> t -> bool

val get : t -> int array -> float
val set : t -> int array -> float -> unit

val get1 : t -> int -> float
(** Flat-index read. *)

val set1 : t -> int -> float -> unit
(** Flat-index write. *)

val reshape : t -> int array -> t
(** Shares the underlying data; the element count must be preserved. *)

val copy : t -> t
val fill_ : t -> float -> unit
val blit : src:t -> dst:t -> unit

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val iteri_flat : (int -> float -> unit) -> t -> unit

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val add_ : t -> t -> unit
(** [add_ dst src] accumulates [src] into [dst]. *)

val axpy_ : alpha:float -> x:t -> y:t -> unit
(** [axpy_ ~alpha ~x ~y] does y <- y + alpha * x in place. *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val argmax_flat : t -> int

val sq_norm : t -> float
(** Sum of squared entries. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Shape equality plus element-wise comparison within [tol] (default 1e-6). *)

val rand_uniform : Rng.t -> int array -> lo:float -> hi:float -> t
val rand_normal : Rng.t -> int array -> mean:float -> std:float -> t

val kaiming : Rng.t -> int array -> fan_in:int -> t
(** He-normal initialization used for all conv and linear weights. *)

val pp : Format.formatter -> t -> unit
(** Shape and a few leading values, for debugging. *)
