lib/tensor/ops.ml: Array List Tensor
