type t = { shape : int array; data : float array }

let product = Array.fold_left ( * ) 1

let create shape v =
  assert (Array.for_all (fun d -> d > 0) shape);
  { shape = Array.copy shape; data = Array.make (product shape) v }

let zeros shape = create shape 0.0
let ones shape = create shape 1.0

let of_array shape data =
  assert (product shape = Array.length data);
  { shape = Array.copy shape; data }

let scalar v = { shape = [||]; data = [| v |] }
let shape t = t.shape
let data t = t.data
let numel t = Array.length t.data
let ndim t = Array.length t.shape
let dim t i = t.shape.(i)
let same_shape a b = a.shape = b.shape

(* Row-major flat offset of a multi-index. *)
let offset t idx =
  let n = Array.length t.shape in
  assert (Array.length idx = n);
  let off = ref 0 in
  for i = 0 to n - 1 do
    assert (idx.(i) >= 0 && idx.(i) < t.shape.(i));
    off := (!off * t.shape.(i)) + idx.(i)
  done;
  !off

let get t idx = t.data.(offset t idx)
let set t idx v = t.data.(offset t idx) <- v
let get1 t i = t.data.(i)
let set1 t i v = t.data.(i) <- v

let init shape f =
  let t = zeros shape in
  let n = Array.length shape in
  let idx = Array.make n 0 in
  let total = numel t in
  for flat = 0 to total - 1 do
    (* Decode flat index into idx. *)
    let rem = ref flat in
    for i = n - 1 downto 0 do
      idx.(i) <- !rem mod shape.(i);
      rem := !rem / shape.(i)
    done;
    t.data.(flat) <- f idx
  done;
  t

let reshape t shape =
  assert (product shape = Array.length t.data);
  { shape = Array.copy shape; data = t.data }

let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let fill_ t v = Array.fill t.data 0 (Array.length t.data) v

let blit ~src ~dst =
  assert (numel src = numel dst);
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let map2 f a b =
  assert (same_shape a b);
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let iteri_flat f t = Array.iteri f t.data
let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale k t = map (fun x -> k *. x) t

let add_ dst src =
  assert (same_shape dst src);
  let d = dst.data and s = src.data in
  for i = 0 to Array.length d - 1 do
    Array.unsafe_set d i (Array.unsafe_get d i +. Array.unsafe_get s i)
  done

let axpy_ ~alpha ~x ~y =
  assert (same_shape x y);
  let xd = x.data and yd = y.data in
  for i = 0 to Array.length xd - 1 do
    Array.unsafe_set yd i (Array.unsafe_get yd i +. (alpha *. Array.unsafe_get xd i))
  done

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)
let max_value t = Array.fold_left Stdlib.max t.data.(0) t.data

let argmax_flat t =
  let best = ref 0 in
  for i = 1 to Array.length t.data - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  !best

let sq_norm t = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data

let approx_equal ?(tol = 1e-6) a b =
  same_shape a b
  && (let ok = ref true in
      for i = 0 to Array.length a.data - 1 do
        if Float.abs (a.data.(i) -. b.data.(i)) > tol then ok := false
      done;
      !ok)

let rand_uniform rng shape ~lo ~hi =
  let t = zeros shape in
  for i = 0 to numel t - 1 do
    t.data.(i) <- lo +. Rng.float rng (hi -. lo)
  done;
  t

let rand_normal rng shape ~mean ~std =
  let t = zeros shape in
  for i = 0 to numel t - 1 do
    t.data.(i) <- Rng.gauss_scaled rng ~mean ~std
  done;
  t

let kaiming rng shape ~fan_in =
  assert (fan_in > 0);
  let std = sqrt (2.0 /. float_of_int fan_in) in
  rand_normal rng shape ~mean:0.0 ~std

let pp ppf t =
  let dims = Array.to_list t.shape |> List.map string_of_int |> String.concat "x" in
  let n = Stdlib.min 6 (numel t) in
  Format.fprintf ppf "tensor<%s>[" dims;
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf ppf "; ";
    Format.fprintf ppf "%.4g" t.data.(i)
  done;
  if numel t > n then Format.fprintf ppf "; ...";
  Format.fprintf ppf "]"
