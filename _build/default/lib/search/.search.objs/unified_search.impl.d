lib/search/unified_search.ml: Array Conv_impl Fisher Float Hashtbl List Models Pipeline Rng Sequences Site_plan String Unix
