lib/search/fbnet.mli: Conv_impl Device Models Rng Synthetic_data
