lib/search/pareto.mli:
