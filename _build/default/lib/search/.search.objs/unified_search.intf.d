lib/search/unified_search.mli: Device Models Pipeline Rng Site_plan Train
