lib/search/fbnet.ml: Array Blockswap Conv_impl List Models Pipeline Rng Site_plan Synthetic_data Train
