lib/search/blockswap.mli: Conv_impl Models Rng Train
