lib/search/blockswap.ml: Array Conv_impl Fisher List Models Rng
