lib/search/interpolate.ml: Array Conv_impl List Models Pareto Pipeline Rng Site_plan Stats Synthetic_data Train
