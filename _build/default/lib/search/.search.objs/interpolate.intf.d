lib/search/interpolate.mli: Device Models Rng Synthetic_data
