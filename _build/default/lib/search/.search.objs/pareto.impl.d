lib/search/pareto.ml: List
