(** Pareto-front utilities for the accuracy/latency trade-off plots. *)

type point = {
  pt_name : string;
  pt_latency_s : float;  (** lower is better *)
  pt_accuracy : float;  (** higher is better *)
}

val dominates : point -> point -> bool
(** [dominates a b] iff [a] is at least as good on both axes and strictly
    better on one. *)

val front : point list -> point list
(** The non-dominated subset, sorted by latency. *)

val is_pareto_optimal : point -> point list -> bool
