type candidate = {
  cd_plans : Site_plan.t array;
  cd_fisher : float;
  cd_latency_s : float;
  cd_macs : int;
  cd_params : int;
}

type result = {
  r_best : candidate;
  r_baseline : Pipeline.evaluated;
  r_baseline_fisher : float;
  r_explored : int;
  r_rejected : int;
  r_wall_s : float;
}

let random_plans rng model ~mutate_prob =
  Array.map
    (fun site ->
      if Rng.uniform rng < mutate_prob then begin
        match Sequences.standard_menu site with
        | [] -> Site_plan.baseline
        | menu -> Sequences.plan (Rng.choice_list rng menu)
      end
      else Site_plan.baseline)
    model.Models.sites

let plans_signature plans =
  String.concat ";" (Array.to_list (Array.map (fun p -> p.Site_plan.sp_name) plans))

(* One shared rebuild seed per search: candidates share the weights of every
   layer they have in common with the reference network (label-addressed
   initialization), so Fisher differences measure structure, not seed
   noise. *)
type fisher_oracle = {
  fo_reference : Fisher.scores;
  fo_seed : int;
  fo_cache : (string, Fisher.scores) Hashtbl.t;
}

let make_oracle rng model probe =
  let fo_seed = Rng.int rng 1_000_000_000 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let reference = Models.rebuild model (Rng.create fo_seed) full in
  { fo_reference = Fisher.score reference probe;
    fo_seed;
    fo_cache = Hashtbl.create 256 }

let oracle_scores oracle model probe plans =
  let signature = plans_signature plans in
  match Hashtbl.find_opt oracle.fo_cache signature with
  | Some s -> s
  | None ->
      let impls = Array.map (fun p -> p.Site_plan.sp_impl) plans in
      let candidate = Models.rebuild model (Rng.create oracle.fo_seed) impls in
      let s = Fisher.score candidate probe in
      Hashtbl.replace oracle.fo_cache signature s;
      s

(* Aggressiveness varies per candidate, so the pool spans mild touch-ups to
   whole-network rewrites. *)
let draw_mutate_prob rng base = Float.min 1.0 (base +. Rng.float rng 0.8)

(* Directed seed candidates: each named sequence applied uniformly across
   the network (with per-site fallback to baseline when invalid).  These
   cover the corners a modest random pool can miss and subsume the
   single-block NAS configurations. *)
let uniform_candidates model =
  let menu_union =
    Array.fold_left
      (fun acc site ->
        List.fold_left
          (fun acc seq ->
            let name = Sequences.name seq in
            if List.mem_assoc name acc then acc else (name, seq) :: acc)
          acc (Sequences.standard_menu site))
      [] model.Models.sites
  in
  List.map
    (fun (_, seq) ->
      Array.map
        (fun site ->
          if Sequences.valid site seq then Sequences.plan seq else Site_plan.baseline)
        model.Models.sites)
    menu_union

let fallback_candidate model baseline baseline_fisher =
  { cd_plans = Array.map (fun _ -> Site_plan.baseline) model.Models.sites;
    cd_fisher = baseline_fisher;
    cd_latency_s = baseline.Pipeline.ev_latency_s;
    cd_macs = baseline.Pipeline.ev_macs;
    cd_params = baseline.Pipeline.ev_params }

let search ?(candidates = 1000) ?(mutate_prob = 0.25) ?(slack = 0.12) ~rng ~device
    ~probe model =
  let start = Unix.gettimeofday () in
  let baseline = Pipeline.baseline device model in
  let oracle = make_oracle rng model probe in
  let baseline_fisher = oracle.fo_reference.Fisher.total in
  let rejected = ref 0 in
  let best = ref None in
  let seeds = uniform_candidates model in
  let n_random = max 0 (candidates - List.length seeds) in
  let pool =
    seeds
    @ List.init n_random (fun _ ->
          random_plans rng model ~mutate_prob:(draw_mutate_prob rng mutate_prob))
  in
  List.iter
    (fun plans ->
      let scores = oracle_scores oracle model probe plans in
      if Fisher.legal_clipped ~slack ~baseline:oracle.fo_reference scores then begin
        let ev = Pipeline.evaluate device model ~plans in
        let cand =
          { cd_plans = plans;
            cd_fisher = scores.Fisher.total;
            cd_latency_s = ev.Pipeline.ev_latency_s;
            cd_macs = ev.ev_macs;
            cd_params = ev.ev_params }
        in
        match !best with
        | Some b when b.cd_latency_s <= cand.cd_latency_s -> ()
        | _ -> best := Some cand
      end
      else incr rejected)
    pool;
  let best =
    match !best with
    | Some b -> b
    | None -> fallback_candidate model baseline baseline_fisher
  in
  { r_best = best;
    r_baseline = baseline;
    r_baseline_fisher = baseline_fisher;
    r_explored = candidates;
    r_rejected = !rejected;
    r_wall_s = Unix.gettimeofday () -. start }

let speedup r = r.r_baseline.Pipeline.ev_latency_s /. r.r_best.cd_latency_s

let search_multi ?(candidates = 1000) ?(mutate_prob = 0.25) ?(slack = 0.12) ~rng
    ~devices ~probe model =
  let start = Unix.gettimeofday () in
  let oracle = make_oracle rng model probe in
  let baseline_fisher = oracle.fo_reference.Fisher.total in
  (* Phase 1 (device-independent): generate the pool and Fisher-filter it. *)
  let rejected = ref 0 in
  let survivors = ref [] in
  let seeds = uniform_candidates model in
  let n_random = max 0 (candidates - List.length seeds) in
  let pool =
    seeds
    @ List.init n_random (fun _ ->
          random_plans rng model ~mutate_prob:(draw_mutate_prob rng mutate_prob))
  in
  List.iter
    (fun plans ->
      let scores = oracle_scores oracle model probe plans in
      if Fisher.legal_clipped ~slack ~baseline:oracle.fo_reference scores then
        survivors := (plans, scores.Fisher.total) :: !survivors
      else incr rejected)
    pool;
  let wall_shared = Unix.gettimeofday () -. start in
  (* Phase 2 (per device): rank the survivors with the cost model. *)
  List.map
    (fun device ->
      let dev_start = Unix.gettimeofday () in
      let baseline = Pipeline.baseline device model in
      let best = ref None in
      List.iter
        (fun (plans, fisher) ->
          let ev = Pipeline.evaluate device model ~plans in
          let cand =
            { cd_plans = plans;
              cd_fisher = fisher;
              cd_latency_s = ev.Pipeline.ev_latency_s;
              cd_macs = ev.ev_macs;
              cd_params = ev.ev_params }
          in
          match !best with
          | Some b when b.cd_latency_s <= cand.cd_latency_s -> ()
          | _ -> best := Some cand)
        !survivors;
      let best =
        match !best with
        | Some b -> b
        | None -> fallback_candidate model baseline baseline_fisher
      in
      ( device,
        { r_best = best;
          r_baseline = baseline;
          r_baseline_fisher = baseline_fisher;
          r_explored = candidates;
          r_rejected = !rejected;
          r_wall_s = wall_shared +. (Unix.gettimeofday () -. dev_start) } ))
    devices
