type point = {
  pt_name : string;
  pt_latency_s : float;
  pt_accuracy : float;
}

let dominates a b =
  a.pt_latency_s <= b.pt_latency_s
  && a.pt_accuracy >= b.pt_accuracy
  && (a.pt_latency_s < b.pt_latency_s || a.pt_accuracy > b.pt_accuracy)

let front points =
  points
  |> List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
  |> List.sort (fun a b -> compare a.pt_latency_s b.pt_latency_s)

let is_pareto_optimal p points = not (List.exists (fun q -> dominates q p) points)
