(** The paper's unified search (§6): enumerate random interleaved
    transformation sequences, reject capacity-damaging candidates with the
    Fisher Potential legality check (no training), and rank the survivors
    with the autotuned hardware cost model. *)

type candidate = {
  cd_plans : Site_plan.t array;
  cd_fisher : float;
  cd_latency_s : float;
  cd_macs : int;
  cd_params : int;
}

type result = {
  r_best : candidate;
  r_baseline : Pipeline.evaluated;
  r_baseline_fisher : float;
  r_explored : int;  (** configurations generated *)
  r_rejected : int;  (** configurations rejected by the Fisher check *)
  r_wall_s : float;  (** search wall-clock time *)
}

val random_plans :
  Rng.t -> Models.t -> mutate_prob:float -> Site_plan.t array
(** One candidate configuration: each site is left at baseline or assigned a
    random valid sequence from {!Sequences.standard_menu} with probability
    [mutate_prob]. *)

val search :
  ?candidates:int ->
  ?mutate_prob:float ->
  ?slack:float ->
  rng:Rng.t ->
  device:Device.t ->
  probe:Train.batch ->
  Models.t ->
  result
(** Runs the search (default 1000 candidates, as in §6).  [probe] is the
    fixed minibatch used for every Fisher evaluation; [slack] is the Fisher
    legality slack. *)

val speedup : result -> float
(** Baseline latency over best-candidate latency. *)

val search_multi :
  ?candidates:int ->
  ?mutate_prob:float ->
  ?slack:float ->
  rng:Rng.t ->
  devices:Device.t list ->
  probe:Train.batch ->
  Models.t ->
  (Device.t * result) list
(** Like {!search} for several devices at once: the candidate pool and its
    Fisher evaluations (the expensive part) are shared; only the cost
    ranking is per-device. *)
