type category =
  | Program_transformation
  | Neural_transformation
  | Gpu_mapping

type row = {
  opt_name : string;
  category : category;
  description : string;
}

let rows =
  [ { opt_name = "reorder"; category = Program_transformation;
      description = "Interchange nested loops" };
    { opt_name = "tile"; category = Program_transformation;
      description = "Cache and register blocking" };
    { opt_name = "unroll"; category = Program_transformation;
      description = "Loop unrolling" };
    { opt_name = "prefetch"; category = Program_transformation;
      description = "Memory coalescing between threads" };
    { opt_name = "split"; category = Program_transformation;
      description = "Divide iteration into multiple axes" };
    { opt_name = "fuse"; category = Program_transformation;
      description = "Combine two axes into one" };
    { opt_name = "bottleneck"; category = Neural_transformation;
      description = "Reduce domain by factor B" };
    { opt_name = "group"; category = Neural_transformation;
      description = "Slice and offset two loops by factor G" };
    { opt_name = "blockIdx"; category = Gpu_mapping;
      description = "Block-wise parallelism" };
    { opt_name = "threadIdx"; category = Gpu_mapping;
      description = "Threads within blocks" };
    { opt_name = "vthread"; category = Gpu_mapping;
      description = "Striding thread access" } ]

let category_name = function
  | Program_transformation -> "Program Transformations"
  | Neural_transformation -> "Neural Architecture Transformations"
  | Gpu_mapping -> "Mapping to GPU"

let demo_nest =
  Loop_nest.conv_nest_of_dims ~co:8 ~ci:8 ~oh:8 ~ow:8 ~k:3 ~stride:1 ~groups:1

let demonstrate row =
  let base = Loop_nest.baseline_schedule demo_nest in
  let transformed =
    match row.opt_name with
    | "reorder" -> Some (Poly.interchange base 0 1)
    | "tile" -> Some (Poly.tile base ~pos:3 ~factor:4)
    | "unroll" -> Some (Poly.unroll base ~pos:5 ~factor:3)
    | "split" -> Some (Poly.split base ~pos:1 ~factor:4)
    | "fuse" -> Some (Poly.fuse base ~pos:2)
    | "prefetch" -> Some (Poly.prefetch base ~pos:4)
    | "bottleneck" -> Some (Poly.bottleneck base ~iter:"co" ~factor:2)
    | "group" -> Some (Poly.group base ~co:"co" ~ci:"ci" ~factor:4)
    | "blockIdx" -> Some (Poly.bind base ~pos:0 Poly.Block_x)
    | "threadIdx" -> Some (Poly.bind base ~pos:2 Poly.Thread_x)
    | "vthread" -> Some (Poly.bind base ~pos:3 Poly.Vthread)
    | _ -> None
  in
  Option.map
    (fun s ->
      Format.asprintf "@[<v>%a@]" Loop_nest.pp (Loop_nest.lower demo_nest s))
    transformed

let pp_table ppf () =
  Format.fprintf ppf "@[<v>%-12s | %-36s | %s@," "Optimization" "Category" "Description";
  Format.fprintf ppf "%s@," (String.make 100 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s | %-36s | %s@," r.opt_name (category_name r.category)
        r.description)
    rows;
  Format.fprintf ppf "@]"
