type t = {
  sp_impl : Conv_impl.t;
  sp_hints : Autotune.hints;
  sp_name : string;
}

let baseline = { sp_impl = Conv_impl.Full; sp_hints = Autotune.no_hints; sp_name = "baseline" }

let make ?(hints = Autotune.no_hints) ?name impl =
  let name = match name with Some n -> n | None -> Conv_impl.to_string impl in
  { sp_impl = impl; sp_hints = hints; sp_name = name }

let valid site t = Conv_impl.valid site t.sp_impl
let pp ppf t = Format.pp_print_string ppf t.sp_name
