lib/npte/site_plan.ml: Autotune Conv_impl Format
