lib/npte/pipeline.mli: Autotune Conv_impl Device Models Site_plan
