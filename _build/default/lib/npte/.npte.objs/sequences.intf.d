lib/npte/sequences.mli: Conv_impl Loop_nest Poly Site_plan
