lib/npte/table1.mli: Format
