lib/npte/table1.ml: Format List Loop_nest Option Poly String
