lib/npte/sequences.ml: Array Autotune Conv_impl List Loop_nest Poly Printf Site_plan
