lib/npte/pipeline.ml: Array Autotune Conv_impl Cost_model Device Hashtbl List Loop_nest Models Printf Site_plan
