lib/npte/site_plan.mli: Autotune Conv_impl Format
