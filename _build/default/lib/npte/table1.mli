(** Table 1: the autotuning primitives of the unified space. *)

type category =
  | Program_transformation
  | Neural_transformation
  | Gpu_mapping

type row = {
  opt_name : string;
  category : category;
  description : string;
}

val rows : row list
(** The table's rows, in the paper's order. *)

val category_name : category -> string

val demonstrate : row -> string option
(** A rendered before/after loop-nest demonstration of the primitive on a
    small convolution, where one applies ([None] for pure annotations that
    do not change the printed nest). *)

val pp_table : Format.formatter -> unit -> unit
