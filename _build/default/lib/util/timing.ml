let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_unit f = snd (time f)

let pp_seconds ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.1f us" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.1f ms" (s *. 1e3)
  else if s < 120.0 then Format.fprintf ppf "%.2f s" s
  else Format.fprintf ppf "%d min %d s" (int_of_float s / 60) (int_of_float s mod 60)
