(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    experiment is reproducible from a fixed seed.  The generator is
    xoshiro256** seeded through splitmix64, which gives high-quality streams
    and cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val gauss : t -> float
(** Standard normal deviate (Box-Muller). *)

val gauss_scaled : t -> mean:float -> std:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val bool : t -> bool
(** Fair coin flip. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] elements without replacement
    ([k <= Array.length arr]). *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)
