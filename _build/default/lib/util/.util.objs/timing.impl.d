lib/util/timing.ml: Format Unix
