lib/util/stats.mli:
