lib/util/rng.mli:
