type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is used only to expand the integer seed into four well-mixed
   64-bit words for xoshiro256**. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create (seed lxor 0x5DEECE66D)

let int t bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine for our purposes; bias is negligible for
     the small bounds used throughout. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let uniform t =
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let gauss t =
  let rec draw () =
    let u1 = uniform t in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = uniform t in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let gauss_scaled t ~mean ~std = mean +. (std *. gauss t)
let bool t = Int64.logand (bits64 t) 1L = 1L

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choice_list t lst =
  let arr = Array.of_list lst in
  choice t arr

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  assert (k <= Array.length arr);
  let copy = Array.copy arr in
  shuffle t copy;
  Array.sub copy 0 k

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
