let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n

let std xs = sqrt (variance xs)

let stderr_of_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else std xs /. sqrt (float_of_int n)

let sorted xs =
  let copy = Array.copy xs in
  Array.sort compare copy;
  copy

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let s = sorted xs in
    if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let s = sorted xs in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))

let min xs = Array.fold_left Stdlib.min xs.(0) xs
let max xs = Array.fold_left Stdlib.max xs.(0) xs

let pearson xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 1);
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  for i = 0 to n - 1 do
    let a = xs.(i) -. mx and b = ys.(i) -. my in
    num := !num +. (a *. b);
    dx := !dx +. (a *. a);
    dy := !dy +. (b *. b)
  done;
  if !dx = 0.0 || !dy = 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)

(* Average ranks over ties so that the coefficient is exact on tied data. *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let rk = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do incr j done;
    let avg = float_of_int (!i + !j) /. 2.0 in
    for k = !i to !j do
      rk.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  rk

let spearman xs ys = pearson (ranks xs) (ranks ys)

let argmax xs =
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) > xs.(!best) then best := i
  done;
  !best

let argmin xs =
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(!best) then best := i
  done;
  !best

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        assert (x > 0.0);
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let histogram xs ~bins ~lo ~hi =
  assert (bins > 0 && hi > lo);
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts
