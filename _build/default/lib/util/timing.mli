(** Wall-clock timing helpers for the experiment harnesses. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val time_unit : (unit -> unit) -> float
(** Elapsed seconds of a unit-returning thunk. *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-readable duration ("1.2 ms", "3.4 s", "2 min 5 s"). *)
