type gpu_bind = Block_x | Block_y | Thread_x | Thread_y | Vthread

let gpu_bind_to_string = function
  | Block_x -> "blockIdx.x"
  | Block_y -> "blockIdx.y"
  | Thread_x -> "threadIdx.x"
  | Thread_y -> "threadIdx.y"
  | Vthread -> "vthread"

type contrib = { src : string; weight : int }
type digit = { contribs : contrib list; extent : int }

type loop = {
  digits : digit list;
  unroll : int;
  vectorized : bool;
  prefetched : bool;
  parallelized : bool;
  bind : gpu_bind option;
}

type neural_op =
  | N_bottleneck of { iter : string; factor : int }
  | N_group of { factor : int }
  | N_depthwise of { factor : int }

type t = {
  domain : (string * int) list;
  loops : loop list;
  neural_log : neural_op list;
}

exception Illegal of string

let illegal fmt = Format.kasprintf (fun s -> raise (Illegal s)) fmt

let plain_loop digits =
  { digits; unroll = 1; vectorized = false; prefetched = false; parallelized = false;
    bind = None }

let of_domain domain =
  let loops =
    List.map
      (fun (name, extent) ->
        if extent <= 0 then illegal "iterator %s has extent %d" name extent;
        plain_loop [ { contribs = [ { src = name; weight = 1 } ]; extent } ])
      domain
  in
  { domain; loops; neural_log = [] }

let loop_count t = List.length t.loops
let loop_extent l = List.fold_left (fun acc d -> acc * d.extent) 1 l.digits
let points t = List.fold_left (fun acc l -> acc * loop_extent l) 1 t.loops

let iter_extent t name =
  match List.assoc_opt name t.domain with
  | Some e -> e
  | None -> illegal "unknown iterator %s" name

let nth_loop t pos =
  if pos < 0 || pos >= loop_count t then illegal "loop position %d out of range" pos;
  List.nth t.loops pos

let replace_loops t loops = { t with loops }

let update_at pos f loops =
  List.mapi (fun i l -> if i = pos then f l else l) loops

let interchange t a b =
  let n = loop_count t in
  if a < 0 || b < 0 || a >= n || b >= n then illegal "interchange out of range";
  let la = List.nth t.loops a and lb = List.nth t.loops b in
  replace_loops t
    (List.mapi (fun i l -> if i = a then lb else if i = b then la else l) t.loops)

let reorder t perm =
  let n = loop_count t in
  if Array.length perm <> n then illegal "reorder: permutation length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then illegal "reorder: not a permutation";
      seen.(p) <- true)
    perm;
  let arr = Array.of_list t.loops in
  replace_loops t (Array.to_list (Array.map (fun p -> arr.(p)) perm))

let split t ~pos ~factor =
  let l = nth_loop t pos in
  (match l.digits with
  | [ _ ] -> ()
  | _ -> illegal "split: loop %d is fused; split before fusing" pos);
  let d = List.hd l.digits in
  if factor <= 1 then illegal "split: factor must exceed 1";
  if d.extent mod factor <> 0 then
    illegal "split: factor %d does not divide extent %d" factor d.extent;
  let outer =
    { contribs = List.map (fun c -> { c with weight = c.weight * factor }) d.contribs;
      extent = d.extent / factor }
  in
  let inner = { d with extent = factor } in
  let rec insert i = function
    | [] -> illegal "split: position out of range"
    | l0 :: rest ->
        if i = pos then plain_loop [ outer ] :: { l with digits = [ inner ] } :: rest
        else l0 :: insert (i + 1) rest
  in
  replace_loops t (insert 0 t.loops)

let fuse t ~pos =
  let n = loop_count t in
  if pos < 0 || pos + 1 >= n then illegal "fuse: position out of range";
  let la = List.nth t.loops pos and lb = List.nth t.loops (pos + 1) in
  if la.bind <> None || lb.bind <> None then illegal "fuse: cannot fuse bound loops";
  let fused =
    { digits = la.digits @ lb.digits;
      unroll = 1;
      vectorized = la.vectorized && lb.vectorized;
      prefetched = la.prefetched || lb.prefetched;
      parallelized = la.parallelized && lb.parallelized;
      bind = None }
  in
  let rec rebuild i = function
    | [] -> []
    | _ :: rest when i = pos + 1 -> rebuild (i + 1) rest
    | l :: rest -> (if i = pos then fused else l) :: rebuild (i + 1) rest
  in
  replace_loops t (rebuild 0 t.loops)

let tile t ~pos ~factor =
  let t = split t ~pos ~factor in
  (* Sink the freshly created inner loop (now at pos+1) to the innermost
     position. *)
  let n = loop_count t in
  let inner = List.nth t.loops (pos + 1) in
  let without = List.filteri (fun i _ -> i <> pos + 1) t.loops in
  ignore n;
  replace_loops t (without @ [ inner ])

let unroll t ~pos ~factor =
  if factor < 1 then illegal "unroll: factor must be positive";
  let l = nth_loop t pos in
  let f = min factor (loop_extent l) in
  replace_loops t (update_at pos (fun l -> { l with unroll = f }) t.loops)

let vectorize t ~pos =
  ignore (nth_loop t pos);
  replace_loops t (update_at pos (fun l -> { l with vectorized = true }) t.loops)

let prefetch t ~pos =
  ignore (nth_loop t pos);
  replace_loops t (update_at pos (fun l -> { l with prefetched = true }) t.loops)

let parallelize t ~pos =
  ignore (nth_loop t pos);
  replace_loops t (update_at pos (fun l -> { l with parallelized = true }) t.loops)

let bind t ~pos b =
  ignore (nth_loop t pos);
  replace_loops t (update_at pos (fun l -> { l with bind = Some b }) t.loops)

(* --- Neural transformations ------------------------------------------ *)

let scale_iterator t name factor =
  List.map
    (fun (n, e) ->
      if n = name then begin
        if e mod factor <> 0 then
          illegal "bottleneck: %d does not divide extent of %s (%d)" factor name e;
        (n, e / factor)
      end
      else (n, e))
    t.domain

(* The leading digit of an iterator is its highest-weight digit; shrinking
   its extent restricts the iterator's range to a prefix, which is exactly
   the paper's [c_o' < C_o / B] domain restriction. *)
let bottleneck t ~iter ~factor =
  if factor <= 1 then illegal "bottleneck: factor must exceed 1";
  ignore (iter_extent t iter);
  let best = ref None in
  List.iteri
    (fun li l ->
      List.iteri
        (fun di d ->
          List.iter
            (fun c ->
              if c.src = iter then
                match !best with
                | Some (_, _, w) when w >= c.weight -> ()
                | _ -> best := Some (li, di, c.weight))
            d.contribs)
        l.digits)
    t.loops;
  match !best with
  | None -> illegal "bottleneck: iterator %s not scheduled" iter
  | Some (li, di, _) ->
      let l = List.nth t.loops li in
      let d = List.nth l.digits di in
      if List.length d.contribs > 1 then
        illegal "bottleneck: leading digit of %s is shared (grouped)" iter;
      if d.extent mod factor <> 0 then
        illegal "bottleneck: %d does not divide leading extent %d" factor d.extent;
      let d' = { d with extent = d.extent / factor } in
      let l' = { l with digits = List.mapi (fun i x -> if i = di then d' else x) l.digits } in
      { domain = scale_iterator t iter factor;
        loops = update_at li (fun _ -> l') t.loops;
        neural_log = t.neural_log @ [ N_bottleneck { iter; factor } ] }

let whole_loop_of t name =
  (* Position of a loop consisting of exactly the iterator's single digit. *)
  let found = ref None in
  List.iteri
    (fun li l ->
      match l.digits with
      | [ { contribs = [ { src; weight = 1 } ]; extent } ]
        when src = name && extent = iter_extent t name ->
          found := Some li
      | _ -> ())
    t.loops;
  !found

let group t ~co ~ci ~factor =
  if factor <= 1 then illegal "group: factor must exceed 1";
  let eco = iter_extent t co and eci = iter_extent t ci in
  if eco mod factor <> 0 || eci mod factor <> 0 then
    illegal "group: %d must divide both %s (%d) and %s (%d)" factor co eco ci eci;
  let pco =
    match whole_loop_of t co with
    | Some p -> p
    | None -> illegal "group: %s must be a whole un-split loop" co
  in
  let pci =
    match whole_loop_of t ci with
    | Some p -> p
    | None -> illegal "group: %s must be a whole un-split loop" ci
  in
  let slice =
    plain_loop
      [ { contribs =
            [ { src = co; weight = eco / factor }; { src = ci; weight = eci / factor } ];
          extent = factor } ]
  in
  let co_inner = plain_loop [ { contribs = [ { src = co; weight = 1 } ]; extent = eco / factor } ] in
  let ci_inner = plain_loop [ { contribs = [ { src = ci; weight = 1 } ]; extent = eci / factor } ] in
  (* Replace the co loop by [slice; co_inner] and the ci loop by [ci_inner];
     drop degenerate extent-1 loops (the depthwise simplification). *)
  let rebuilt =
    List.concat
      (List.mapi
         (fun i l ->
           if i = pco then
             List.filter (fun l -> loop_extent l > 1) [ slice; co_inner ]
           else if i = pci then
             List.filter (fun l -> loop_extent l > 1) [ ci_inner ]
           else [ l ])
         t.loops)
  in
  { t with loops = rebuilt; neural_log = t.neural_log @ [ N_group { factor } ] }

let depthwise t ~co ~ci =
  let eco = iter_extent t co and eci = iter_extent t ci in
  if eco <> eci then illegal "depthwise: extents of %s and %s differ" co ci;
  let t = group t ~co ~ci ~factor:eco in
  (* Replace the N_group entry that [group] just appended by N_depthwise. *)
  let log =
    match List.rev t.neural_log with
    | N_group { factor } :: rest -> List.rev (N_depthwise { factor } :: rest)
    | _ -> t.neural_log @ [ N_depthwise { factor = eco } ]
  in
  { t with neural_log = log }

let is_semantics_preserving t = t.neural_log = []

(* --- Decoding --------------------------------------------------------- *)

let decode t loop_values =
  if Array.length loop_values <> loop_count t then
    invalid_arg "decode: wrong number of loop values";
  let acc = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace acc name 0) t.domain;
  List.iteri
    (fun li l ->
      (* Mixed-radix decode of the loop value into its digits. *)
      let v = ref loop_values.(li) in
      let rads = List.map (fun d -> d.extent) l.digits in
      let total = List.fold_left ( * ) 1 rads in
      if !v < 0 || !v >= total then invalid_arg "decode: loop value out of range";
      let rec go digits v =
        match digits with
        | [] -> ()
        | d :: rest ->
            let inner = List.fold_left (fun a x -> a * x.extent) 1 rest in
            let dv = v / inner in
            List.iter
              (fun c ->
                Hashtbl.replace acc c.src
                  (Hashtbl.find acc c.src + (dv * c.weight)))
              d.contribs;
            go rest (v mod inner)
      in
      go l.digits !v)
    t.loops;
  List.map (fun (name, _) -> (name, Hashtbl.find acc name)) t.domain

(* --- Printing --------------------------------------------------------- *)

let digit_name d =
  match d.contribs with
  | [] -> "_"
  | [ { src; weight = 1 } ] -> src
  | [ { src; weight } ] -> Printf.sprintf "%s/%d" src weight
  | contribs ->
      String.concat "+" (List.map (fun c -> c.src) contribs)

let loop_name l =
  match l.digits with
  | [ d ] -> digit_name d
  | ds -> String.concat "." (List.map digit_name ds)

let loop_names t = Array.of_list (List.map loop_name t.loops)

let pp ppf t =
  Format.fprintf ppf "@[<v>domain: %s@,"
    (String.concat ", "
       (List.map (fun (n, e) -> Printf.sprintf "%s<%d" n e) t.domain));
  List.iteri
    (fun i l ->
      let annots =
        List.filter_map
          (fun x -> x)
          [ (if l.unroll > 1 then Some (Printf.sprintf "unroll=%d" l.unroll) else None);
            (if l.vectorized then Some "vectorize" else None);
            (if l.prefetched then Some "prefetch" else None);
            (if l.parallelized then Some "parallel" else None);
            Option.map (fun b -> "bind=" ^ gpu_bind_to_string b) l.bind ]
      in
      Format.fprintf ppf "for %s [%d]%s%s@," (loop_name l) (loop_extent l)
        (if annots = [] then "" else " ")
        (String.concat " " annots);
      ignore i)
    t.loops;
  if t.neural_log <> [] then
    Format.fprintf ppf "neural: %s@,"
      (String.concat "; "
         (List.map
            (function
              | N_bottleneck { iter; factor } ->
                  Printf.sprintf "bottleneck(%s,/%d)" iter factor
              | N_group { factor } -> Printf.sprintf "group(G=%d)" factor
              | N_depthwise { factor } -> Printf.sprintf "depthwise(G=%d)" factor)
            t.neural_log));
  Format.fprintf ppf "@]"
