lib/poly/poly.ml: Array Format Hashtbl List Option Printf String
