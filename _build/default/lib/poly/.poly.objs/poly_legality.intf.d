lib/poly/poly_legality.mli: Poly
