lib/poly/poly.mli: Format
