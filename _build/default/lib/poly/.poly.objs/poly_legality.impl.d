lib/poly/poly_legality.ml: Array List Poly
