(** Dependence-based legality of schedules (§4.1).

    A dependence is a constant distance vector over the domain iterators:
    for every point [p] such that both [p] and [p + d] lie in the domain,
    the schedule must execute [p] before [p + d] (lexicographically smaller
    time vector).

    For the constant-bound domains of tensor convolutions this condition is
    decidable by direct evaluation; [check] verifies it exhaustively for
    small domains and by deterministic stratified sampling beyond
    [max_points] (boundary points of every digit are always included, since
    splits only misbehave at strip boundaries). *)

type dependence = {
  distance : (string * int) list;  (** iterators not listed have distance 0 *)
  dep_label : string;
}

val reduction_dependences : string list -> dependence list
(** One unit-distance dependence per reduction iterator — the accumulation
    order constraint of a convolution's [+=] statement. *)

val encode : Poly.t -> (string * int) list -> int array option
(** Inverse of {!Poly.decode}: map a domain point to loop values.  [None]
    when the point is not enumerated by the schedule (outside a bottlenecked
    range, or inconsistent with a shared group digit). *)

val check : ?max_points:int -> Poly.t -> dependence list -> bool
(** True iff every sampled dependence pair is executed in order. *)

val violations :
  ?max_points:int -> Poly.t -> dependence list -> ((string * int) list * string) list
(** The sampled points at which some dependence is violated (for tests and
    diagnostics); empty iff {!check}. *)
