type op = None_op | Skip | Conv1x1 | Conv3x3 | Avg_pool3

let op_name = function
  | None_op -> "none"
  | Skip -> "skip"
  | Conv1x1 -> "conv1x1"
  | Conv3x3 -> "conv3x3"
  | Avg_pool3 -> "avgpool3"

let all_ops = [ None_op; Skip; Conv1x1; Conv3x3; Avg_pool3 ]
let op_of_code = [| None_op; Skip; Conv1x1; Conv3x3; Avg_pool3 |]

let code_of_op = function
  | None_op -> 0
  | Skip -> 1
  | Conv1x1 -> 2
  | Conv3x3 -> 3
  | Avg_pool3 -> 4

type cell = op array

let edges = 6
let space_size = 5 * 5 * 5 * 5 * 5 * 5

let of_index i =
  assert (i >= 0 && i < space_size);
  let cell = Array.make edges None_op in
  let rem = ref i in
  for e = 0 to edges - 1 do
    cell.(e) <- op_of_code.(!rem mod 5);
    rem := !rem / 5
  done;
  cell

let to_index cell =
  assert (Array.length cell = edges);
  let idx = ref 0 in
  for e = edges - 1 downto 0 do
    idx := (!idx * 5) + code_of_op cell.(e)
  done;
  !idx

let random_cell rng = of_index (Rng.int rng space_size)

let pp_cell ppf cell =
  let names = Array.to_list (Array.map op_name cell) in
  Format.fprintf ppf "|%s|" (String.concat "|" names)

type net = {
  nb_graph : Graph.t;
  nb_fisher_nodes : int array;
  nb_cell : cell;
}

(* Edge order (src, dst) for the 4-node DAG. *)
let edge_ends = [| (0, 1); (0, 2); (1, 2); (0, 3); (1, 3); (2, 3) |]

(* One cell: node 0 is the input; nodes 1..3 sum their incoming edges. *)
let add_cell b cell ~channels ~prefix input_node =
  let node_acts = Array.make 4 input_node in
  let fisher = ref [] in
  for node = 1 to 3 do
    let incoming = ref [] in
    Array.iteri
      (fun e (src, dst) ->
        if dst = node then begin
          let src_act = node_acts.(src) in
          let label = Printf.sprintf "%s.e%d.%s" prefix e (op_name cell.(e)) in
          let out =
            match cell.(e) with
            | None_op -> Builder.add b ~label Graph.Zero [ src_act ]
            | Skip -> Builder.add b ~label Graph.Identity [ src_act ]
            | Conv1x1 ->
                let o =
                  Builder.conv_bn_relu b ~label ~in_channels:channels
                    ~out_channels:channels ~kernel:1 ~stride:1 src_act
                in
                fisher := o :: !fisher;
                o
            | Conv3x3 ->
                let o =
                  Builder.conv_bn_relu b ~label ~in_channels:channels
                    ~out_channels:channels ~kernel:3 ~stride:1 src_act
                in
                fisher := o :: !fisher;
                o
            | Avg_pool3 ->
                Builder.add b ~label
                  (Graph.Avg_pool { size = 3; stride = 1; pad = 1 })
                  [ src_act ]
          in
          incoming := out :: !incoming
        end)
      edge_ends;
    node_acts.(node) <-
      (match !incoming with
      | [] -> node_acts.(0) (* fully disconnected node: pass the input through *)
      | [ single ] -> single
      | several ->
          Builder.add b ~label:(Printf.sprintf "%s.n%d.sum" prefix node) Graph.Add
            several)
  done;
  (node_acts.(3), List.rev !fisher)

let instantiate ?(channels = 8) ?(input_size = 8) ?(num_classes = 10) rng cell =
  let b = Builder.create rng in
  let inp = Builder.input b in
  let stem =
    Builder.conv_bn_relu b ~label:"stem" ~in_channels:3 ~out_channels:channels
      ~kernel:3 ~stride:1 inp
  in
  let fisher = ref [] in
  let cur = ref stem in
  let chans = ref channels in
  for stage = 0 to 2 do
    let out, cell_fisher =
      add_cell b cell ~channels:!chans ~prefix:(Printf.sprintf "s%d" stage) !cur
    in
    fisher := !fisher @ cell_fisher;
    cur := out;
    if stage < 2 then begin
      (* Reduction block: stride-2 convolution doubling the channels. *)
      let red =
        Builder.conv_bn_relu b
          ~label:(Printf.sprintf "red%d" stage)
          ~in_channels:!chans
          ~out_channels:(2 * !chans)
          ~kernel:3 ~stride:2 !cur
      in
      fisher := !fisher @ [ red ];
      cur := red;
      chans := 2 * !chans
    end
  done;
  let gap = Builder.add b ~label:"gap" Graph.Global_avg_pool [ !cur ] in
  let out = Builder.linear_layer b ~label:"fc" ~in_features:!chans ~out_features:num_classes gap in
  ignore input_size;
  { nb_graph = Builder.finish b ~output:out;
    nb_fisher_nodes = Array.of_list !fisher;
    nb_cell = cell }

type record = {
  r_index : int;
  r_fisher : float;
  r_error : float;
  r_params : int;
}

let evaluate_cell ?(train_steps = 30) ~rng ~data ~probe index =
  let cell = of_index index in
  let net = instantiate (Rng.split rng) cell in
  let fisher =
    (Fisher.score_graph net.nb_graph ~fisher_nodes:net.nb_fisher_nodes probe)
      .Fisher.total
  in
  let batch_rng = Rng.split rng in
  let _ =
    Train.train_graph net.nb_graph ~steps:train_steps
      ~batch_fn:(fun step -> Synthetic_data.batch_fn batch_rng data ~batch_size:16 step)
      ~base_lr:0.05
  in
  let val_batches =
    List.filteri (fun i _ -> i < 4) (Synthetic_data.batches data ~batch_size:16)
  in
  let acc = Train.evaluate_graph net.nb_graph val_batches in
  { r_index = index;
    r_fisher = fisher;
    r_error = 1.0 -. acc;
    r_params = Graph.param_count net.nb_graph }

let sample_space ?train_steps ~rng ~data ~probe ~n () =
  let seen = Hashtbl.create n in
  let records = ref [] in
  while Hashtbl.length seen < n do
    let index = Rng.int rng space_size in
    if not (Hashtbl.mem seen index) then begin
      Hashtbl.replace seen index ();
      records := evaluate_cell ?train_steps ~rng ~data ~probe index :: !records
    end
  done;
  List.rev !records
