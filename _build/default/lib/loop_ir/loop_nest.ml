type conv_nest = {
  nc_co : int;
  nc_ci : int;
  nc_oh : int;
  nc_ow : int;
  nc_kh : int;
  nc_kw : int;
  nc_stride : int;
  nc_groups : int;
}

let conv_nest_of_dims ~co ~ci ~oh ~ow ~k ~stride ~groups =
  { nc_co = co; nc_ci = ci; nc_oh = oh; nc_ow = ow; nc_kh = k; nc_kw = k;
    nc_stride = stride; nc_groups = groups }

let domain nest =
  [ ("co", nest.nc_co); ("ci", nest.nc_ci); ("oh", nest.nc_oh); ("ow", nest.nc_ow);
    ("kh", nest.nc_kh); ("kw", nest.nc_kw) ]

let baseline_schedule nest =
  let s = Poly.of_domain (domain nest) in
  if nest.nc_groups > 1 then Poly.group s ~co:"co" ~ci:"ci" ~factor:nest.nc_groups
  else s

type term = { t_loop : int; t_div : int; t_mod : int; t_mul : int }
type index = { terms : term list; i_const : int }

type lir_loop = {
  ll_name : string;
  ll_extent : int;
  ll_unroll : int;
  ll_vectorized : bool;
  ll_bind : Poly.gpu_bind option;
}

type program = {
  loops : lir_loop array;
  dst : index;
  acc_w : index;
  acc_i : index;
  out_numel : int;
  w_numel : int;
  in_numel : int;
  nest : conv_nest;
  schedule : Poly.t;
}

let effective_groups (s : Poly.t) (_nest : conv_nest) =
  List.fold_left
    (fun acc op ->
      match op with
      | Poly.N_group { factor } -> acc * factor
      | Poly.N_depthwise { factor } -> acc * factor
      | Poly.N_bottleneck _ -> acc)
    1 s.Poly.neural_log
(* Baseline grouping is applied through the schedule's neural log by
   [baseline_schedule], so it is already included in the product. *)

(* Builds the quasi-affine index for a target linear combination of
   iterators.  [coeff it] is the multiplier of iterator [it] in the flat
   index; [modulus it] is an optional positional cut: digits with weight >=
   modulus are dropped (used for the grouped weight layout, where the array
   stores only the within-group channel index). *)
let build_index (s : Poly.t) ~coeff ~modulus ~const =
  let terms = ref [] in
  List.iteri
    (fun li (l : Poly.loop) ->
      (* inner.(di) = product of extents of digits after di in this loop *)
      let digits = Array.of_list l.Poly.digits in
      let n = Array.length digits in
      let inner = Array.make n 1 in
      for di = n - 2 downto 0 do
        inner.(di) <- inner.(di + 1) * digits.(di + 1).Poly.extent
      done;
      Array.iteri
        (fun di (d : Poly.digit) ->
          List.iter
            (fun (c : Poly.contrib) ->
              let keep =
                match modulus c.Poly.src with
                | Some m -> c.Poly.weight < m
                | None -> true
              in
              let k = coeff c.Poly.src in
              if keep && k <> 0 && d.Poly.extent > 1 then
                terms :=
                  { t_loop = li;
                    t_div = inner.(di);
                    t_mod = (if n = 1 then 0 else d.Poly.extent);
                    t_mul = c.Poly.weight * k }
                  :: !terms)
            d.Poly.contribs)
        digits)
    s.Poly.loops;
  { terms = List.rev !terms; i_const = const }

let lower nest (s : Poly.t) =
  let ext name = Poly.iter_extent s name in
  let co = ext "co" and ci = ext "ci" and oh = ext "oh" and ow = ext "ow" in
  let kh = ext "kh" and kw = ext "kw" in
  let stride = nest.nc_stride in
  let groups = effective_groups s nest in
  if ci mod groups <> 0 || co mod groups <> 0 then
    raise (Poly.Illegal "lower: grouping does not divide channel extents");
  let cig = ci / groups in
  let ihp = ((oh - 1) * stride) + kh in
  let iwp = ((ow - 1) * stride) + kw in
  let dst =
    build_index s
      ~coeff:(function "co" -> oh * ow | "oh" -> ow | "ow" -> 1 | _ -> 0)
      ~modulus:(fun _ -> None)
      ~const:0
  in
  let acc_w =
    build_index s
      ~coeff:(function
        | "co" -> cig * kh * kw
        | "ci" -> kh * kw
        | "kh" -> kw
        | "kw" -> 1
        | _ -> 0)
      ~modulus:(function "ci" -> Some cig | _ -> None)
      ~const:0
  in
  let acc_i =
    build_index s
      ~coeff:(function
        | "ci" -> ihp * iwp
        | "oh" -> stride * iwp
        | "kh" -> iwp
        | "ow" -> stride
        | "kw" -> 1
        | _ -> 0)
      ~modulus:(fun _ -> None)
      ~const:0
  in
  let names = Poly.loop_names s in
  let loops =
    Array.of_list
      (List.mapi
         (fun i (l : Poly.loop) ->
           { ll_name = names.(i);
             ll_extent = Poly.loop_extent l;
             ll_unroll = l.Poly.unroll;
             ll_vectorized = l.Poly.vectorized;
             ll_bind = l.Poly.bind })
         s.Poly.loops)
  in
  { loops;
    dst;
    acc_w;
    acc_i;
    out_numel = co * oh * ow;
    w_numel = co * cig * kh * kw;
    in_numel = ci * ihp * iwp;
    nest;
    schedule = s }

let eval_index idx values =
  List.fold_left
    (fun acc t ->
      let v = values.(t.t_loop) / t.t_div in
      let v = if t.t_mod = 0 then v else v mod t.t_mod in
      acc + (v * t.t_mul))
    idx.i_const idx.terms

let run prog ~output ~weight ~input =
  if Tensor.numel output <> prog.out_numel then invalid_arg "run: output size";
  if Tensor.numel weight <> prog.w_numel then invalid_arg "run: weight size";
  if Tensor.numel input <> prog.in_numel then invalid_arg "run: input size";
  let od = Tensor.data output and wd = Tensor.data weight and id = Tensor.data input in
  let n = Array.length prog.loops in
  let values = Array.make n 0 in
  let rec go depth =
    if depth = n then begin
      let d = eval_index prog.dst values in
      let a = eval_index prog.acc_w values in
      let b = eval_index prog.acc_i values in
      od.(d) <- od.(d) +. (wd.(a) *. id.(b))
    end
    else
      for v = 0 to prog.loops.(depth).ll_extent - 1 do
        values.(depth) <- v;
        go (depth + 1)
      done
  in
  go 0

let iter_accesses prog ~f =
  let n = Array.length prog.loops in
  let values = Array.make n 0 in
  let rec go depth =
    if depth = n then
      f ~out_idx:(eval_index prog.dst values) ~w_idx:(eval_index prog.acc_w values)
        ~in_idx:(eval_index prog.acc_i values)
    else
      for v = 0 to prog.loops.(depth).ll_extent - 1 do
        values.(depth) <- v;
        go (depth + 1)
      done
  in
  go 0

let pp_index names ppf idx =
  if idx.terms = [] then Format.pp_print_string ppf (string_of_int idx.i_const)
  else begin
    List.iteri
      (fun i t ->
        if i > 0 then Format.pp_print_string ppf " + ";
        let base = names.(t.t_loop) in
        let divved = if t.t_div = 1 then base else Printf.sprintf "(%s/%d)" base t.t_div in
        let modded =
          if t.t_mod = 0 then divved else Printf.sprintf "(%s%%%d)" divved t.t_mod
        in
        if t.t_mul = 1 then Format.pp_print_string ppf modded
        else Format.fprintf ppf "%s*%d" modded t.t_mul)
      idx.terms;
    if idx.i_const <> 0 then Format.fprintf ppf " + %d" idx.i_const
  end

let pp ppf prog =
  let names = Array.map (fun l -> l.ll_name) prog.loops in
  (* Make names unique and C-friendly. *)
  let seen = Hashtbl.create 8 in
  let names =
    Array.map
      (fun raw ->
        let base =
          String.map (fun c -> if c = '+' || c = '/' || c = '.' then '_' else c) raw
        in
        let count = try Hashtbl.find seen base with Not_found -> 0 in
        Hashtbl.replace seen base (count + 1);
        if count = 0 then base else Printf.sprintf "%s_%d" base count)
      names
  in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i l ->
      let annots =
        List.filter_map
          (fun x -> x)
          [ (if l.ll_unroll > 1 then Some (Printf.sprintf "#unroll %d" l.ll_unroll)
             else None);
            (if l.ll_vectorized then Some "#vectorize" else None);
            Option.map (fun b -> "#bind " ^ Poly.gpu_bind_to_string b) l.ll_bind ]
      in
      Format.fprintf ppf "%sfor (%s = 0; %s < %d; %s++)%s@,"
        (String.make (2 * i) ' ')
        names.(i) names.(i) l.ll_extent names.(i)
        (if annots = [] then "" else "  // " ^ String.concat " " annots))
    prog.loops;
  Format.fprintf ppf "%sO[%a] += W[%a] * I[%a];@]"
    (String.make (2 * Array.length prog.loops) ' ')
    (pp_index names) prog.dst (pp_index names) prog.acc_w (pp_index names) prog.acc_i

let pad_input t ~pad =
  if pad = 0 then t
  else begin
    let s = Tensor.shape t in
    let c = s.(0) and h = s.(1) and w = s.(2) in
    let out = Tensor.zeros [| c; h + (2 * pad); w + (2 * pad) |] in
    for ci = 0 to c - 1 do
      for hi = 0 to h - 1 do
        for wi = 0 to w - 1 do
          Tensor.set out [| ci; hi + pad; wi + pad |] (Tensor.get t [| ci; hi; wi |])
        done
      done
    done;
    out
  end
