lib/nn/builder.ml: Array Conv_impl Graph Hashtbl Int64 Layer List Rng
