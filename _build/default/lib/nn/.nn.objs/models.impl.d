lib/nn/models.ml: Array Builder Conv_impl Graph List Printf Rng
