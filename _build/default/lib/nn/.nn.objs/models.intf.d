lib/nn/models.mli: Conv_impl Graph Rng Tensor
