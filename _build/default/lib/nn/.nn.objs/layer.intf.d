lib/nn/layer.mli: Rng Tensor
