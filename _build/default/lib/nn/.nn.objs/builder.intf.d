lib/nn/builder.mli: Conv_impl Graph Rng
