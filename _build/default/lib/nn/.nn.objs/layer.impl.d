lib/nn/layer.ml: Tensor
