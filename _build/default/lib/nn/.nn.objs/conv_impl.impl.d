lib/nn/conv_impl.ml: Format List Printf
