lib/nn/conv_impl.mli: Format
