lib/nn/train.ml: Array Graph List Models Ops Optimizer Tensor
