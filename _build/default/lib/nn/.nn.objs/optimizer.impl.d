lib/nn/optimizer.ml: Array Layer List Tensor
