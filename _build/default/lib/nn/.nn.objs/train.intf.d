lib/nn/train.mli: Graph Models Tensor
