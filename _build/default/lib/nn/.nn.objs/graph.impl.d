lib/nn/graph.ml: Array Layer List Ops Option Printf Tensor
