lib/nn/graph.mli: Layer Tensor
