(** Training and evaluation loops. *)

type batch = {
  images : Tensor.t;  (** NCHW *)
  labels : int array;
}

val forward_backward_graph : Graph.t -> batch -> Graph.run * float
(** Graph-level variant, used by networks outside the model zoo (e.g. the
    NAS-bench cells). *)

val forward_backward : Models.t -> batch -> Graph.run * float
(** One forward and backward pass, accumulating parameter gradients;
    returns the run (with per-node activation gradients, as needed by the
    Fisher pass) and the batch loss. *)

type report = {
  final_loss : float;
  steps_run : int;
}

val train_graph :
  ?momentum:float ->
  ?weight_decay:float ->
  ?lr_schedule:(int -> float) ->
  ?log:(int -> float -> unit) ->
  Graph.t ->
  steps:int ->
  batch_fn:(int -> batch) ->
  base_lr:float ->
  report
(** Graph-level training loop. *)

val train :
  ?momentum:float ->
  ?weight_decay:float ->
  ?lr_schedule:(int -> float) ->
  ?log:(int -> float -> unit) ->
  Models.t ->
  steps:int ->
  batch_fn:(int -> batch) ->
  base_lr:float ->
  report
(** SGD training for [steps] minibatches drawn from [batch_fn].  The default
    schedule is the paper's step decay (x0.1 at 30%, 60%, 80% of the run). *)

val evaluate_graph : Graph.t -> batch list -> float
(** Graph-level top-1 accuracy. *)

val evaluate : Models.t -> batch list -> float
(** Mean top-1 accuracy over the batches. *)

val evaluate_loss : Models.t -> batch list -> float
(** Mean cross-entropy over the batches (no gradient accumulation). *)
