type slot = { p : Layer.param; velocity : Tensor.t }

type t = {
  slots : slot list;
  momentum : float;
  weight_decay : float;
  mutable current_lr : float;
}

let sgd ?(momentum = 0.9) ?(weight_decay = 0.0) ~lr params =
  let slots =
    List.map (fun p -> { p; velocity = Tensor.zeros (Tensor.shape p.Layer.p_value) })
      params
  in
  { slots; momentum; weight_decay; current_lr = lr }

let set_lr t lr = t.current_lr <- lr
let lr t = t.current_lr

let step t =
  List.iter
    (fun { p; velocity } ->
      let v = Tensor.data velocity in
      let g = Tensor.data p.Layer.p_grad in
      let w = Tensor.data p.p_value in
      for i = 0 to Array.length v - 1 do
        let grad = g.(i) +. (t.weight_decay *. w.(i)) in
        v.(i) <- (t.momentum *. v.(i)) +. grad;
        w.(i) <- w.(i) -. (t.current_lr *. v.(i))
      done)
    t.slots

let decay_schedule ~milestones ~gamma ~base_lr step =
  let passed = List.length (List.filter (fun m -> step >= m) milestones) in
  base_lr *. (gamma ** float_of_int passed)
