type batch = { images : Tensor.t; labels : int array }

let forward_backward_graph graph batch =
  let run = Graph.forward graph batch.images in
  let logits = Graph.output run in
  let loss, grad = Ops.softmax_cross_entropy ~logits ~labels:batch.labels in
  Graph.backward graph run ~loss_grad:grad;
  (run, loss)

let forward_backward model batch = forward_backward_graph model.Models.graph batch

type report = { final_loss : float; steps_run : int }

let default_schedule ~steps ~base_lr step =
  let milestones =
    [ int_of_float (0.3 *. float_of_int steps);
      int_of_float (0.6 *. float_of_int steps);
      int_of_float (0.8 *. float_of_int steps) ]
  in
  Optimizer.decay_schedule ~milestones ~gamma:0.1 ~base_lr step

let train_graph ?(momentum = 0.9) ?(weight_decay = 5e-4) ?lr_schedule ?log graph
    ~steps ~batch_fn ~base_lr =
  let schedule =
    match lr_schedule with
    | Some f -> f
    | None -> default_schedule ~steps ~base_lr
  in
  let opt = Optimizer.sgd ~momentum ~weight_decay ~lr:base_lr (Graph.params graph) in
  let last_loss = ref 0.0 in
  for step = 0 to steps - 1 do
    Graph.zero_grads graph;
    let batch = batch_fn step in
    let _, loss = forward_backward_graph graph batch in
    Optimizer.set_lr opt (schedule step);
    Optimizer.step opt;
    last_loss := loss;
    match log with None -> () | Some f -> f step loss
  done;
  { final_loss = !last_loss; steps_run = steps }

let train ?momentum ?weight_decay ?lr_schedule ?log model ~steps ~batch_fn ~base_lr =
  train_graph ?momentum ?weight_decay ?lr_schedule ?log model.Models.graph ~steps
    ~batch_fn ~base_lr

let evaluate_graph graph batches =
  match batches with
  | [] -> 0.0
  | _ ->
      let total = ref 0.0 and count = ref 0 in
      List.iter
        (fun b ->
          let run = Graph.forward graph b.images in
          let logits = Graph.output run in
          let n = Array.length b.labels in
          total := !total +. (Ops.accuracy ~logits ~labels:b.labels *. float_of_int n);
          count := !count + n)
        batches;
      !total /. float_of_int !count

let evaluate model batches =
  match batches with
  | [] -> 0.0
  | _ ->
      let total = ref 0.0 and count = ref 0 in
      List.iter
        (fun b ->
          let logits = Models.forward_logits model b.images in
          let n = Array.length b.labels in
          total := !total +. (Ops.accuracy ~logits ~labels:b.labels *. float_of_int n);
          count := !count + n)
        batches;
      !total /. float_of_int !count

let evaluate_loss model batches =
  match batches with
  | [] -> 0.0
  | _ ->
      let total = ref 0.0 and count = ref 0 in
      List.iter
        (fun b ->
          let logits = Models.forward_logits model b.images in
          let loss, _ = Ops.softmax_cross_entropy ~logits ~labels:b.labels in
          total := !total +. (loss *. float_of_int (Array.length b.labels));
          count := !count + Array.length b.labels)
        batches;
      !total /. float_of_int !count
