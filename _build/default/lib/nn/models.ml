type config =
  | Resnet of {
      name : string;
      blocks : int array;
      base_width : int;
      input_size : int;
      num_classes : int;
      stem_stride : int;
    }
  | Resnext of {
      name : string;
      blocks_per_stage : int;
      cardinality : int;
      base_width : int;
      input_size : int;
      num_classes : int;
    }
  | Densenet of {
      name : string;
      blocks : int array;
      growth : int;
      input_size : int;
      num_classes : int;
    }

let config_name = function
  | Resnet { name; _ } | Resnext { name; _ } | Densenet { name; _ } -> name

type t = {
  config : config;
  name : string;
  graph : Graph.t;
  sites : Conv_impl.site array;
  impls : Conv_impl.t array;
  fisher_node_ids : int array;
  fixed_workloads : Conv_impl.workload list;
  num_classes : int;
  input_size : int;
  input_channels : int;
  cost_mult_c : int;
  cost_mult_s : int;
}

(* Multipliers mapping the scaled-down model back to the original network's
   dimensions (ResNet/ResNeXt base width 64, DenseNet-161 growth 48, CIFAR
   input 32, ImageNet input 224). *)
let cost_mults = function
  | Resnet { base_width; input_size; stem_stride; _ } ->
      ( max 1 (64 / base_width),
        max 1 ((if stem_stride > 1 then 224 else 32) / input_size) )
  | Resnext { base_width; input_size; _ } ->
      (max 1 (64 / base_width), max 1 (32 / input_size))
  | Densenet { name; growth; input_size; num_classes; _ } ->
      let real_growth = if name = "densenet161" then 48 else 32 in
      ( max 1 (real_growth / growth),
        max 1 ((if num_classes > 10 then 224 else 32) / input_size) )

(* Build-time context threading the site counter, the chosen implementation
   per site and the fixed (non-transformable) workload accumulator. *)
type ctx = {
  b : Builder.t;
  rng : Rng.t;
  impls_in : Conv_impl.t array option;
  mutable sites_rev : Conv_impl.site list;
  mutable used_rev : Conv_impl.t list;
  mutable fixed_rev : Conv_impl.workload list;
  mutable next_site : int;
}

let fresh_ctx b rng impls_in =
  { b; rng; impls_in; sites_rev = []; used_rev = []; fixed_rev = []; next_site = 0 }

let impl_for ctx site =
  match ctx.impls_in with
  | None -> Conv_impl.Full
  | Some arr ->
      let impl = arr.(site.Conv_impl.site_index) in
      if not (Conv_impl.valid site impl) then
        invalid_arg
          (Printf.sprintf "invalid impl %s for site %s" (Conv_impl.to_string impl)
             site.Conv_impl.site_label);
      impl

(* Appends a transformable site with its selected implementation. *)
let site ctx ~label ~in_channels ~out_channels ~kernel ~stride ?(groups = 1)
    ~spatial src =
  let s =
    { Conv_impl.site_index = ctx.next_site; in_channels; out_channels; kernel;
      stride; groups; spatial_in = spatial; site_label = label }
  in
  ctx.next_site <- ctx.next_site + 1;
  let impl = impl_for ctx s in
  ctx.sites_rev <- s :: ctx.sites_rev;
  ctx.used_rev <- impl :: ctx.used_rev;
  Builder.realize_site ctx.b s impl src

(* Appends a fixed (non-transformable) conv-bn[-relu] and records its
   workload. *)
let fixed ctx ~label ~in_channels ~out_channels ~kernel ~stride ?(groups = 1)
    ?(relu = true) ~spatial src =
  ctx.fixed_rev <-
    { Conv_impl.w_in_channels = in_channels; w_out_channels = out_channels;
      w_kernel = kernel; w_stride = stride; w_groups = groups; w_spatial = spatial;
      w_label = label }
    :: ctx.fixed_rev;
  Builder.conv_bn_relu ctx.b ~label ~in_channels ~out_channels ~kernel ~stride
    ~groups ~relu src

let classifier ctx ~in_features ~num_classes src =
  ctx.fixed_rev <-
    { Conv_impl.w_in_channels = in_features; w_out_channels = num_classes;
      w_kernel = 1; w_stride = 1; w_groups = 1; w_spatial = 1; w_label = "fc" }
    :: ctx.fixed_rev;
  let gap = Builder.add ctx.b ~label:"gap" Graph.Global_avg_pool [ src ] in
  Builder.linear_layer ctx.b ~label:"fc" ~in_features ~out_features:num_classes gap

(* --- ResNet (basic blocks) ------------------------------------------- *)

let build_resnet ctx ~blocks ~base_width ~input_size ~num_classes ~stem_stride =
  let b = ctx.b in
  let inp = Builder.input b in
  let spatial = ref input_size in
  let cur =
    ref
      (fixed ctx ~label:"stem" ~in_channels:3 ~out_channels:base_width ~kernel:3
         ~stride:stem_stride ~spatial:!spatial inp)
  in
  spatial := !spatial / stem_stride;
  let channels = ref base_width in
  Array.iteri
    (fun stage n_blocks ->
      let out_c = base_width * (1 lsl stage) in
      for blk = 0 to n_blocks - 1 do
        let stride = if stage > 0 && blk = 0 then 2 else 1 in
        let in_c = !channels in
        let label = Printf.sprintf "s%d.b%d" stage blk in
        let c1 =
          site ctx ~label:(label ^ ".conv1") ~in_channels:in_c ~out_channels:out_c
            ~kernel:3 ~stride ~spatial:!spatial !cur
        in
        let post_spatial = !spatial / stride in
        let c2 =
          site ctx ~label:(label ^ ".conv2") ~in_channels:out_c ~out_channels:out_c
            ~kernel:3 ~stride:1 ~spatial:post_spatial c1
        in
        let shortcut =
          if stride = 1 && in_c = out_c then !cur
          else
            fixed ctx ~label:(label ^ ".down") ~in_channels:in_c ~out_channels:out_c
              ~kernel:1 ~stride ~relu:false ~spatial:!spatial !cur
        in
        let sum = Builder.add b ~label:(label ^ ".add") Graph.Add [ c2; shortcut ] in
        cur := Builder.add b ~label:(label ^ ".out") Graph.Relu [ sum ];
        spatial := post_spatial;
        channels := out_c
      done)
    blocks;
  classifier ctx ~in_features:!channels ~num_classes !cur

(* --- ResNeXt (aggregated bottleneck blocks) --------------------------- *)

let build_resnext ctx ~blocks_per_stage ~cardinality ~base_width ~input_size
    ~num_classes =
  let b = ctx.b in
  let inp = Builder.input b in
  let spatial = ref input_size in
  let cur =
    ref
      (fixed ctx ~label:"stem" ~in_channels:3 ~out_channels:base_width ~kernel:3
         ~stride:1 ~spatial:!spatial inp)
  in
  let channels = ref base_width in
  for stage = 0 to 2 do
    let out_c = base_width * 4 * (1 lsl stage) in
    let inner = out_c / 2 in
    for blk = 0 to blocks_per_stage - 1 do
      let stride = if stage > 0 && blk = 0 then 2 else 1 in
      let in_c = !channels in
      let label = Printf.sprintf "s%d.b%d" stage blk in
      let reduce =
        fixed ctx ~label:(label ^ ".reduce") ~in_channels:in_c ~out_channels:inner
          ~kernel:1 ~stride:1 ~spatial:!spatial !cur
      in
      let grouped =
        site ctx ~label:(label ^ ".conv3x3") ~in_channels:inner ~out_channels:inner
          ~kernel:3 ~stride ~groups:cardinality ~spatial:!spatial reduce
      in
      let post_spatial = !spatial / stride in
      let expand =
        fixed ctx ~label:(label ^ ".expand") ~in_channels:inner ~out_channels:out_c
          ~kernel:1 ~stride:1 ~relu:false ~spatial:post_spatial grouped
      in
      let shortcut =
        if stride = 1 && in_c = out_c then !cur
        else
          fixed ctx ~label:(label ^ ".down") ~in_channels:in_c ~out_channels:out_c
            ~kernel:1 ~stride ~relu:false ~spatial:!spatial !cur
      in
      let sum = Builder.add b ~label:(label ^ ".add") Graph.Add [ expand; shortcut ] in
      cur := Builder.add b ~label:(label ^ ".out") Graph.Relu [ sum ];
      spatial := post_spatial;
      channels := out_c
    done
  done;
  classifier ctx ~in_features:!channels ~num_classes !cur

(* --- DenseNet-BC ------------------------------------------------------ *)

let build_densenet ctx ~blocks ~growth ~input_size ~num_classes =
  let b = ctx.b in
  let inp = Builder.input b in
  let spatial = ref input_size in
  let cur =
    ref
      (fixed ctx ~label:"stem" ~in_channels:3 ~out_channels:(2 * growth) ~kernel:3
         ~stride:1 ~spatial:!spatial inp)
  in
  let channels = ref (2 * growth) in
  let n_dense_blocks = Array.length blocks in
  Array.iteri
    (fun bi n_layers ->
      for li = 0 to n_layers - 1 do
        let label = Printf.sprintf "d%d.l%d" bi li in
        let c = !channels in
        let mid = 4 * growth in
        let reduce =
          site ctx ~label:(label ^ ".conv1x1") ~in_channels:c ~out_channels:mid
            ~kernel:1 ~stride:1 ~spatial:!spatial !cur
        in
        let grown =
          site ctx ~label:(label ^ ".conv3x3") ~in_channels:mid ~out_channels:growth
            ~kernel:3 ~stride:1 ~spatial:!spatial reduce
        in
        cur := Builder.add b ~label:(label ^ ".cat") Graph.Concat [ !cur; grown ];
        channels := c + growth
      done;
      if bi < n_dense_blocks - 1 then begin
        let c = !channels in
        let half = c / 2 in
        let trans =
          fixed ctx
            ~label:(Printf.sprintf "t%d.conv" bi)
            ~in_channels:c ~out_channels:half ~kernel:1 ~stride:1 ~spatial:!spatial
            !cur
        in
        cur :=
          Builder.add b
            ~label:(Printf.sprintf "t%d.pool" bi)
            (Graph.Avg_pool { size = 2; stride = 2; pad = 0 })
            [ trans ];
        channels := half;
        spatial := !spatial / 2
      end)
    blocks;
  classifier ctx ~in_features:!channels ~num_classes !cur

(* --- Assembly --------------------------------------------------------- *)

let build ?impls config rng =
  let b = Builder.create rng in
  let ctx = fresh_ctx b rng impls in
  let output =
    match config with
    | Resnet { blocks; base_width; input_size; num_classes; stem_stride; _ } ->
        build_resnet ctx ~blocks ~base_width ~input_size ~num_classes ~stem_stride
    | Resnext { blocks_per_stage; cardinality; base_width; input_size; num_classes; _ }
      ->
        build_resnext ctx ~blocks_per_stage ~cardinality ~base_width ~input_size
          ~num_classes
    | Densenet { blocks; growth; input_size; num_classes; _ } ->
        build_densenet ctx ~blocks ~growth ~input_size ~num_classes
  in
  let graph = Builder.finish b ~output in
  let sites = Array.of_list (List.rev ctx.sites_rev) in
  (match impls with
  | None -> ()
  | Some arr ->
      if Array.length arr <> Array.length sites then
        invalid_arg
          (Printf.sprintf "build %s: expected %d impls, got %d" (config_name config)
             (Array.length sites) (Array.length arr)));
  let input_size =
    match config with
    | Resnet { input_size; _ } | Resnext { input_size; _ } | Densenet { input_size; _ }
      ->
        input_size
  in
  let num_classes =
    match config with
    | Resnet { num_classes; _ }
    | Resnext { num_classes; _ }
    | Densenet { num_classes; _ } ->
        num_classes
  in
  let cost_mult_c, cost_mult_s = cost_mults config in
  { config;
    name = config_name config;
    graph;
    sites;
    impls = Array.of_list (List.rev ctx.used_rev);
    fisher_node_ids = Array.of_list (Builder.fisher_nodes b);
    fixed_workloads = List.rev ctx.fixed_rev;
    num_classes;
    input_size;
    input_channels = 3;
    cost_mult_c;
    cost_mult_s }

let rebuild t rng impls = build ~impls t.config rng

let site_count config =
  let probe = build config (Rng.create 1) in
  Array.length probe.sites

let forward_logits t input =
  let run = Graph.forward t.graph input in
  Graph.output run

let all_workloads t =
  let site_workloads =
    Array.to_list t.sites
    |> List.concat_map (fun s -> Conv_impl.workloads s t.impls.(s.Conv_impl.site_index))
  in
  t.fixed_workloads @ site_workloads

let total_macs t =
  List.fold_left (fun acc w -> acc + Conv_impl.workload_macs w) 0 (all_workloads t)

let scale_site t (s : Conv_impl.site) =
  { s with
    Conv_impl.in_channels = s.Conv_impl.in_channels * t.cost_mult_c;
    out_channels = s.out_channels * t.cost_mult_c;
    spatial_in = s.spatial_in * t.cost_mult_s }

let scale_fixed_workload t (w : Conv_impl.workload) =
  let mc = t.cost_mult_c and ms = t.cost_mult_s in
  { w with
    Conv_impl.w_in_channels =
      (if w.Conv_impl.w_label = "stem" then w.w_in_channels else w.w_in_channels * mc);
    w_out_channels = (if w.w_label = "fc" then w.w_out_channels else w.w_out_channels * mc);
    w_spatial = (if w.w_label = "fc" then 1 else w.w_spatial * ms) }

let cost_workloads t =
  let fixed = List.map (scale_fixed_workload t) t.fixed_workloads in
  let site_workloads =
    Array.to_list t.sites
    |> List.concat_map (fun s ->
           Conv_impl.workloads (scale_site t s) t.impls.(s.Conv_impl.site_index))
  in
  fixed @ site_workloads

let conv_params t =
  List.fold_left
    (fun acc w ->
      acc
      + (w.Conv_impl.w_in_channels * w.w_out_channels * w.w_kernel * w.w_kernel
        / w.w_groups))
    0 (all_workloads t)

(* --- Presets ----------------------------------------------------------

   Scaled-down variants: block structure and channel progressions match the
   originals; widths and spatial extents are divided so that Fisher passes
   and SGD training run in seconds on one core. *)

type scale = [ `Search | `Train | `Imagenet ]

let resnet_cfg name blocks scale =
  match scale with
  | `Search ->
      Resnet { name; blocks; base_width = 8; input_size = 16; num_classes = 10;
               stem_stride = 1 }
  | `Train ->
      Resnet { name; blocks; base_width = 8; input_size = 8; num_classes = 10;
               stem_stride = 1 }
  | `Imagenet ->
      Resnet { name; blocks; base_width = 8; input_size = 32; num_classes = 20;
               stem_stride = 2 }

let resnet18 ?(scale = `Search) () = resnet_cfg "resnet18" [| 2; 2; 2; 2 |] scale
let resnet34 ?(scale = `Search) () = resnet_cfg "resnet34" [| 3; 4; 6; 3 |] scale

let resnext29 ?(scale = `Search) () =
  match scale with
  | `Search ->
      Resnext { name = "resnext29"; blocks_per_stage = 3; cardinality = 2;
                base_width = 8; input_size = 16; num_classes = 10 }
  | `Train ->
      Resnext { name = "resnext29"; blocks_per_stage = 3; cardinality = 2;
                base_width = 8; input_size = 8; num_classes = 10 }
  | `Imagenet ->
      Resnext { name = "resnext29"; blocks_per_stage = 3; cardinality = 2;
                base_width = 8; input_size = 32; num_classes = 20 }

let densenet_cfg name blocks growth scale =
  match scale with
  | `Search -> Densenet { name; blocks; growth; input_size = 16; num_classes = 10 }
  | `Train -> Densenet { name; blocks; growth; input_size = 8; num_classes = 10 }
  | `Imagenet -> Densenet { name; blocks; growth; input_size = 32; num_classes = 20 }

let densenet161 ?(scale = `Search) () =
  densenet_cfg "densenet161" [| 3; 6; 12; 8 |] 8 scale

let densenet169 ?(scale = `Search) () =
  densenet_cfg "densenet169" [| 3; 6; 8; 8 |] 6 scale

let densenet201 ?(scale = `Search) () =
  densenet_cfg "densenet201" [| 3; 6; 12; 8 |] 6 scale
