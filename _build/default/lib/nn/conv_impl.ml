type site = {
  site_index : int;
  in_channels : int;
  out_channels : int;
  kernel : int;
  stride : int;
  groups : int;  (* baseline grouping of the original convolution *)
  spatial_in : int;
  site_label : string;
}

type t =
  | Full
  | Grouped of int
  | Bottleneck of int
  | Depthwise_separable
  | Spatial_bottleneck of int
  | Split_grouped of int * int

let to_string = function
  | Full -> "full"
  | Grouped g -> Printf.sprintf "grouped(g=%d)" g
  | Bottleneck b -> Printf.sprintf "bottleneck(b=%d)" b
  | Depthwise_separable -> "depthwise-separable"
  | Spatial_bottleneck b -> Printf.sprintf "spatial-bottleneck(b=%d)" b
  | Split_grouped (g1, g2) -> Printf.sprintf "split-grouped(g=%d|%d)" g1 g2

let pp ppf t = Format.pp_print_string ppf (to_string t)

let spatial_out site = site.spatial_in / site.stride

let valid site = function
  | Full -> true
  | Grouped g ->
      g > site.groups && site.in_channels mod g = 0 && site.out_channels mod g = 0
  | Bottleneck b ->
      b > 1 && site.out_channels mod b = 0
      && (site.out_channels / b) mod site.groups = 0
      && site.out_channels / b >= site.groups
  | Depthwise_separable -> site.kernel > 1 && site.groups = 1
  | Spatial_bottleneck b ->
      b > 1
      && spatial_out site mod b = 0
      && spatial_out site / b >= 1
      && site.spatial_in mod (site.stride * b) = 0
  | Split_grouped (g1, g2) ->
      let half = site.out_channels / 2 in
      site.out_channels mod 2 = 0
      && g1 >= site.groups && g2 >= site.groups && g1 <> g2
      && site.in_channels mod g1 = 0
      && site.in_channels mod g2 = 0
      && half mod g1 = 0
      && half mod g2 = 0

(* MAC counts mirror exactly what the builder materializes so that budget
   accounting matches the real networks. *)
let macs site impl =
  let so = spatial_out site in
  let plane = so * so in
  let k2 = site.kernel * site.kernel in
  let ci = site.in_channels and co = site.out_channels in
  let g0 = site.groups in
  match impl with
  | Full -> ci * co * k2 * plane / g0
  | Grouped g -> ci * co * k2 * plane / g
  | Bottleneck b ->
      let mid = co / b in
      (ci * mid * k2 * plane / g0) + (mid * co * plane)
  | Depthwise_separable -> (ci * k2 * plane) + (ci * co * plane)
  | Spatial_bottleneck b ->
      (* convolution on the b-times smaller plane; the upsample is free of
         multiply-accumulates. *)
      ci * co * k2 * (plane / (b * b)) / g0
  | Split_grouped (g1, g2) ->
      let half = co / 2 in
      (ci * half * k2 * plane / g1) + (ci * half * k2 * plane / g2)

let param_count site impl =
  let k2 = site.kernel * site.kernel in
  let ci = site.in_channels and co = site.out_channels in
  let g0 = site.groups in
  match impl with
  | Full -> ci * co * k2 / g0
  | Grouped g -> ci * co * k2 / g
  | Bottleneck b ->
      let mid = co / b in
      (ci * mid * k2 / g0) + (mid * co)
  | Depthwise_separable -> (ci * k2) + (ci * co)
  | Spatial_bottleneck _ -> ci * co * k2 / g0
  | Split_grouped (g1, g2) ->
      let half = co / 2 in
      (ci * half * k2 / g1) + (ci * half * k2 / g2)

let all_options site =
  let candidates =
    [ Full; Grouped 2; Grouped 4; Grouped 8; Grouped 16;
      Bottleneck 2; Bottleneck 4; Depthwise_separable;
      Spatial_bottleneck 2; Split_grouped (2, 4); Split_grouped (2, 8) ]
  in
  List.filter (valid site) candidates

let reduction_factor site impl =
  float_of_int (macs site Full) /. float_of_int (macs site impl)

type workload = {
  w_in_channels : int;
  w_out_channels : int;
  w_kernel : int;
  w_stride : int;
  w_groups : int;
  w_spatial : int;
  w_label : string;
}

let workload ~ci ~co ~k ~stride ~groups ~spatial label =
  { w_in_channels = ci; w_out_channels = co; w_kernel = k; w_stride = stride;
    w_groups = groups; w_spatial = spatial; w_label = label }

let workload_out_spatial w = w.w_spatial / w.w_stride

let workload_macs w =
  let so = workload_out_spatial w in
  w.w_in_channels * w.w_out_channels * w.w_kernel * w.w_kernel * so * so / w.w_groups

(* Must mirror Builder.realize_site exactly: budget accounting and the
   hardware cost model both trust this expansion. *)
let workloads site impl =
  let ci = site.in_channels and co = site.out_channels in
  let k = site.kernel and stride = site.stride and g0 = site.groups in
  let sp = site.spatial_in in
  let so = spatial_out site in
  let lbl = site.site_label in
  match impl with
  | Full -> [ workload ~ci ~co ~k ~stride ~groups:g0 ~spatial:sp lbl ]
  | Grouped g -> [ workload ~ci ~co ~k ~stride ~groups:g ~spatial:sp lbl ]
  | Bottleneck b ->
      let mid = co / b in
      [ workload ~ci ~co:mid ~k ~stride ~groups:g0 ~spatial:sp (lbl ^ ".narrow");
        workload ~ci:mid ~co ~k:1 ~stride:1 ~groups:1 ~spatial:so (lbl ^ ".expand") ]
  | Depthwise_separable ->
      [ workload ~ci ~co:ci ~k ~stride ~groups:ci ~spatial:sp (lbl ^ ".dw");
        workload ~ci ~co ~k:1 ~stride:1 ~groups:1 ~spatial:so (lbl ^ ".pw") ]
  | Spatial_bottleneck b ->
      [ workload ~ci ~co ~k ~stride:(stride * b) ~groups:g0 ~spatial:sp
          (lbl ^ ".spatial") ]
  | Split_grouped (g1, g2) ->
      let half = co / 2 in
      [ workload ~ci ~co:half ~k ~stride ~groups:g1 ~spatial:sp (lbl ^ ".lo");
        workload ~ci ~co:half ~k ~stride ~groups:g2 ~spatial:sp (lbl ^ ".hi") ]
