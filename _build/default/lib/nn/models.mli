(** Model zoo: scaled-down but structurally faithful variants of the three
    network families evaluated in the paper (ResNet, ResNeXt, DenseNet).

    Every model carries the array of its transformable convolution
    {!Conv_impl.site}s.  [build] materializes the computation graph for a
    given per-site implementation assignment; the default assignment is the
    original network ([Full] everywhere). *)

type config =
  | Resnet of {
      name : string;
      blocks : int array;  (** residual blocks per stage *)
      base_width : int;
      input_size : int;
      num_classes : int;
      stem_stride : int;  (** 1 for CIFAR-style stems, 2 for ImageNet-style *)
    }
  | Resnext of {
      name : string;
      blocks_per_stage : int;
      cardinality : int;
      base_width : int;
      input_size : int;
      num_classes : int;
    }
  | Densenet of {
      name : string;
      blocks : int array;  (** dense layers per dense block *)
      growth : int;
      input_size : int;
      num_classes : int;
    }

val config_name : config -> string

type t = {
  config : config;
  name : string;
  graph : Graph.t;
  sites : Conv_impl.site array;
  impls : Conv_impl.t array;
  fisher_node_ids : int array;
  fixed_workloads : Conv_impl.workload list;
      (** non-transformable convolutions (stem, shortcuts, reductions,
          transitions) plus the classifier, for cost accounting *)
  num_classes : int;
  input_size : int;
  input_channels : int;
  cost_mult_c : int;
      (** channel multiplier mapping the scaled model back to the original
          network's dimensions, used for hardware-cost accounting *)
  cost_mult_s : int;  (** spatial multiplier, same purpose *)
}

val build : ?impls:Conv_impl.t array -> config -> Rng.t -> t
(** Builds the graph.  [impls], when given, must have one entry per site and
    each entry must be valid for its site. *)

val rebuild : t -> Rng.t -> Conv_impl.t array -> t
(** Same configuration with a different implementation assignment (fresh
    initialization, as the paper searches at initialization). *)

val site_count : config -> int

val forward_logits : t -> Tensor.t -> Tensor.t

val total_macs : t -> int
(** MACs of one inference at batch 1 under the current assignment. *)

val conv_params : t -> int
(** Convolution + classifier weight count under the current assignment. *)

val all_workloads : t -> Conv_impl.workload list
(** Fixed workloads plus the expansion of every site, in network order. *)

val scale_site : t -> Conv_impl.site -> Conv_impl.site
(** The site at the original (paper-scale) network dimensions: channels
    multiplied by [cost_mult_c], spatial extent by [cost_mult_s]. *)

val cost_workloads : t -> Conv_impl.workload list
(** Like {!all_workloads} but at paper-scale dimensions.  Training and the
    Fisher pass run on the scaled network; hardware-cost accounting uses
    these full-size convolutions so that cache pressure and arithmetic
    intensity match the real workloads. *)

(** {2 Presets} *)

(** Presets use a [scale] knob: [`Search] is the default size used by the
    performance experiments (Fisher + cost model only), [`Train] is smaller
    so that full SGD training stays cheap, and [`Imagenet] is the larger
    input / more classes variant used by the Figure 8 experiments. *)
type scale = [ `Search | `Train | `Imagenet ]

val resnet18 : ?scale:scale -> unit -> config
val resnet34 : ?scale:scale -> unit -> config
val resnext29 : ?scale:scale -> unit -> config
val densenet161 : ?scale:scale -> unit -> config
val densenet169 : ?scale:scale -> unit -> config
val densenet201 : ?scale:scale -> unit -> config
