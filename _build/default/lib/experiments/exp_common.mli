(** Shared setup for the experiment harnesses.

    Every experiment is deterministic given its seed and runs in one of two
    modes: [Quick] (the default for `dune exec bench/main.exe`; smaller
    candidate pools and training budgets) and [Full] (paper-scale pool
    sizes: 1000 configurations, more cells, longer training).  Set
    [NPTE_MODE=full] to select [Full]. *)

type mode = Quick | Full

val mode_of_env : unit -> mode
val mode_name : mode -> string

val candidates : mode -> int
(** Unified-search pool size (1000 in Full, as in §6). *)

val blockswap_samples : mode -> int
val nasbench_cells : mode -> int
val train_steps : mode -> int
val seeds : mode -> int
val fbnet_rounds : mode -> int
val fbnet_population : mode -> int

val master_seed : int

val cifar_configs : unit -> Models.config list
(** The three CIFAR-10 networks of Figure 4 (search scale). *)

val probe_batch : Rng.t -> input_size:int -> Train.batch
(** The fixed Fisher probe minibatch for a given input size (one per
    experiment, deterministic). *)

val train_data : Rng.t -> input_size:int -> classes:int -> Synthetic_data.t

val section : Format.formatter -> string -> unit
(** Prints a figure/table banner. *)

val pp_us : Format.formatter -> float -> unit
(** Latency in convenient units. *)

val bar : float -> string
(** A crude textual bar for relative-performance "plots". *)
