type data = {
  records : Nasbench.record list;
  spearman_fisher_error : float;
  rejected_fraction : float;
  rejected_mean_error : float;
  kept_mean_error : float;
}

let compute mode =
  let rng = Rng.create (Exp_common.master_seed + 3) in
  let data = Synthetic_data.cifar_like_small rng ~n:256 in
  let probe = Synthetic_data.fixed_batch rng data ~batch_size:4 in
  let n = Exp_common.nasbench_cells mode in
  let train_steps = match mode with Exp_common.Quick -> 60 | Exp_common.Full -> 150 in
  let records = Nasbench.sample_space ~train_steps ~rng ~data ~probe ~n () in
  let fishers = Array.of_list (List.map (fun r -> r.Nasbench.r_fisher) records) in
  let errors = Array.of_list (List.map (fun r -> r.Nasbench.r_error) records) in
  let spearman = Stats.spearman fishers errors in
  (* The paper rejects candidates scoring below the original; as a space-
     level summary we split at the median Fisher Potential. *)
  let threshold = Stats.median fishers in
  let rejected, kept =
    List.partition (fun r -> r.Nasbench.r_fisher < threshold) records
  in
  let mean_error rs =
    Stats.mean (Array.of_list (List.map (fun r -> r.Nasbench.r_error) rs))
  in
  { records;
    spearman_fisher_error = spearman;
    rejected_fraction = float_of_int (List.length rejected) /. float_of_int (List.length records);
    rejected_mean_error = mean_error rejected;
    kept_mean_error = mean_error kept }

let print ppf d =
  Exp_common.section ppf
    "Figure 3: Fisher Potential filters the NAS-Bench-201 cell space";
  Format.fprintf ppf "cells evaluated: %d (of %d in the space)@."
    (List.length d.records) Nasbench.space_size;
  (* Scatter rendered as a binned table: Fisher quintile vs mean error. *)
  let records = Array.of_list d.records in
  let fishers = Array.map (fun r -> r.Nasbench.r_fisher) records in
  let sorted = Array.copy fishers in
  Array.sort compare sorted;
  let quintile f =
    let n = Array.length sorted in
    let rec rank i = if i >= n || sorted.(i) >= f then i else rank (i + 1) in
    min 4 (5 * rank 0 / n)
  in
  let sums = Array.make 5 0.0 and counts = Array.make 5 0 in
  Array.iter
    (fun r ->
      let q = quintile r.Nasbench.r_fisher in
      sums.(q) <- sums.(q) +. r.Nasbench.r_error;
      counts.(q) <- counts.(q) + 1)
    records;
  Format.fprintf ppf "@.%-28s %-10s %s@." "Fisher-Potential quintile" "cells"
    "mean top-1 error";
  Array.iteri
    (fun q s ->
      if counts.(q) > 0 then
        Format.fprintf ppf "Q%d (%s)%-18s %-10d %.3f@." (q + 1)
          (if q = 0 then "lowest" else if q = 4 then "highest" else "mid")
          "" counts.(q)
          (s /. float_of_int counts.(q)))
    sums;
  Format.fprintf ppf
    "@.Spearman rank correlation (Fisher vs error): %+.3f (paper: strongly negative)@."
    d.spearman_fisher_error;
  Format.fprintf ppf
    "Rejecting below-median Fisher discards %.0f%% of cells: mean error %.3f (rejected) vs %.3f (kept)@."
    (100.0 *. d.rejected_fraction)
    d.rejected_mean_error d.kept_mean_error

let to_csv d =
  Csv_out.write ~name:"fig3_cells"
    ~header:[ "cell_index"; "fisher_potential"; "top1_error"; "params" ]
    (List.map
       (fun (r : Nasbench.record) ->
         [ Csv_out.int_cell r.Nasbench.r_index; Csv_out.float_cell r.r_fisher;
           Csv_out.float_cell r.r_error; Csv_out.int_cell r.r_params ])
       d.records)

let run mode ppf =
  let d = compute mode in
  print ppf d;
  ignore (to_csv d);
  d
