type row = {
  network : string;
  seq1 : int;
  seq2 : int;
  seq3 : int;
  other : int;
  untouched : int;
}

type data = { rows : row list }

let has_prefix prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let compute (fig4 : Fig4.data) =
  let networks =
    List.sort_uniq compare (List.map (fun r -> r.Fig4.network) fig4.Fig4.rows)
  in
  let rows =
    List.map
      (fun network ->
        let mine = List.filter (fun r -> r.Fig4.network = network) fig4.Fig4.rows in
        let counts = Array.make 5 0 in
        List.iter
          (fun r ->
            Array.iter
              (fun (p : Site_plan.t) ->
                let name = p.Site_plan.sp_name in
                let k =
                  if has_prefix "seq1" name then 0
                  else if has_prefix "seq2" name then 1
                  else if has_prefix "seq3" name then 2
                  else if name = "baseline" then 4
                  else 3
                in
                counts.(k) <- counts.(k) + 1)
              r.Fig4.ours_plans)
          mine;
        { network;
          seq1 = counts.(0);
          seq2 = counts.(1);
          seq3 = counts.(2);
          other = counts.(3);
          untouched = counts.(4) })
      networks
  in
  { rows }

let print ppf d =
  Exp_common.section ppf
    "Figure 5: frequency of the dominant sequences in the best networks";
  Format.fprintf ppf "%-14s %6s %6s %6s %6s %10s@." "network" "seq1" "seq2" "seq3"
    "other" "untouched";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %6d %6d %6d %6d %10d@." r.network r.seq1 r.seq2
        r.seq3 r.other r.untouched)
    d.rows

let to_csv d =
  Csv_out.write ~name:"fig5_sequence_frequency"
    ~header:[ "network"; "seq1"; "seq2"; "seq3"; "other"; "untouched" ]
    (List.map
       (fun r ->
         [ r.network; Csv_out.int_cell r.seq1; Csv_out.int_cell r.seq2;
           Csv_out.int_cell r.seq3; Csv_out.int_cell r.other;
           Csv_out.int_cell r.untouched ])
       d.rows)

let run fig4 ppf =
  let d = compute fig4 in
  print ppf d;
  ignore (to_csv d);
  d
