type data = { points : Interpolate.point list }

let compute mode =
  let rng = Rng.create (Exp_common.master_seed + 9) in
  let model = Models.build (Models.resnet34 ~scale:`Train ()) rng in
  let data =
    Exp_common.train_data (Rng.split rng) ~input_size:model.Models.input_size
      ~classes:10
  in
  let points =
    Interpolate.run ~seeds:(Exp_common.seeds mode)
      ~train_steps:(Exp_common.train_steps mode)
      ~rng:(Rng.split rng) ~device:Device.i7 ~data model
  in
  { points }

let print ppf d =
  Exp_common.section ppf "Figure 9: interpolating between NAS models (ResNet-34)";
  Format.fprintf ppf "%-20s %-6s | %12s | %18s@." "point" "kind" "latency"
    "accuracy (mean+-se)";
  List.iter
    (fun (p : Interpolate.point) ->
      Format.fprintf ppf "%-20s %-6s | %a | %6.1f%% +- %.1f%%%s@." p.Interpolate.ip_name
        (match p.ip_kind with `Nas -> "NAS" | `Ours -> "ours")
        Exp_common.pp_us p.ip_latency_s (100.0 *. p.ip_acc_mean)
        (100.0 *. p.ip_acc_err)
        (if p.ip_pareto then "  [pareto-optimal]" else ""))
    d.points;
  let ours_pareto =
    List.exists
      (fun (p : Interpolate.point) -> p.Interpolate.ip_kind = `Ours && p.ip_pareto)
      d.points
  in
  Format.fprintf ppf
    "@.interpolated operators reach points unavailable to menu-based NAS%s@."
    (if ours_pareto then "; at least one is Pareto-optimal" else "")

let to_csv d =
  Csv_out.write ~name:"fig9_interpolation"
    ~header:[ "point"; "kind"; "latency_s"; "acc_mean"; "acc_stderr"; "pareto" ]
    (List.map
       (fun (p : Interpolate.point) ->
         [ p.Interpolate.ip_name;
           (match p.ip_kind with `Nas -> "nas" | `Ours -> "ours");
           Csv_out.float_cell p.ip_latency_s; Csv_out.float_cell p.ip_acc_mean;
           Csv_out.float_cell p.ip_acc_err; string_of_bool p.ip_pareto ])
       d.points)

let run mode ppf =
  let d = compute mode in
  print ppf d;
  ignore (to_csv d);
  d
