type fisher_ablation = {
  fa_candidates : int;
  fa_best_cost_illegal : bool;
  fa_illegal_in_top10 : int;
  fa_pool_illegal_frac : float;
  fa_fisher_wall_s : float;
  fa_train_wall_estimate_s : float;
}

type cache_validation = {
  cv_schedules : int;
  cv_pearson : float;
  cv_order_agreement : float;
}

type interleave_ablation = {
  ia_nas_only_speedup : float;
  ia_unified_speedup : float;
}

type data = {
  fisher : fisher_ablation;
  cache : cache_validation;
  interleave : interleave_ablation;
}

(* --- 1. Fisher filtering ---------------------------------------------- *)

let fisher_ablation mode =
  let rng = Rng.create (Exp_common.master_seed + 201) in
  let model = Models.build (Models.resnet34 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
  let device = Device.i7 in
  let n = Exp_common.candidates mode / 2 in
  let seed = Rng.int rng 1_000_000_000 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let baseline_scores =
    Fisher.score (Models.rebuild model (Rng.create seed) full) probe
  in
  let pool =
    List.init n (fun _ -> Unified_search.random_plans rng model ~mutate_prob:0.5)
  in
  (* Cost-only ranking (the "no legality check" compiler view). *)
  let costed =
    List.map
      (fun plans ->
        (plans, (Pipeline.evaluate device model ~plans).Pipeline.ev_latency_s))
      pool
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) costed in
  let fisher_wall = ref 0.0 in
  let is_illegal plans =
    let impls = Array.map (fun p -> p.Site_plan.sp_impl) plans in
    let candidate = Models.rebuild model (Rng.create seed) impls in
    let f, dt = Timing.time (fun () -> Fisher.score candidate probe) in
    fisher_wall := !fisher_wall +. dt;
    not (Fisher.legal_clipped ~baseline:baseline_scores f)
  in
  let all_flags = List.map (fun (plans, _) -> is_illegal plans) sorted in
  let illegal_flags = List.filteri (fun i _ -> i < 10) all_flags in
  let per_check = !fisher_wall /. float_of_int (List.length all_flags) in
  let pool_illegal = List.length (List.filter (fun b -> b) all_flags) in
  (* Training-based legality would cost a short proxy training per
     candidate; measure one to extrapolate. *)
  let one_training =
    Timing.time_unit (fun () ->
        let data = Exp_common.train_data (Rng.split rng) ~input_size:16 ~classes:10 in
        let m = Models.rebuild model (Rng.split rng) (Array.map (fun _ -> Conv_impl.Full) model.Models.sites) in
        ignore
          (Train.train m ~steps:10
             ~batch_fn:(fun step -> Synthetic_data.batch_fn (Rng.split rng) data ~batch_size:16 step)
             ~base_lr:0.05))
  in
  { fa_candidates = n;
    fa_best_cost_illegal = (match illegal_flags with b :: _ -> b | [] -> false);
    fa_illegal_in_top10 = List.length (List.filter (fun b -> b) illegal_flags);
    fa_pool_illegal_frac = float_of_int pool_illegal /. float_of_int n;
    fa_fisher_wall_s = per_check *. float_of_int n;
    fa_train_wall_estimate_s = one_training *. float_of_int n *. 10.0
    (* a 10x longer budget than our 10-step probe would still be a very
       optimistic training check *) }

(* --- 2. Analytic vs trace-driven memory model ------------------------- *)

let cache_validation () =
  let nest = Loop_nest.conv_nest_of_dims ~co:16 ~ci:16 ~oh:12 ~ow:12 ~k:3 ~stride:1 ~groups:1 in
  let base = Loop_nest.baseline_schedule nest in
  let schedules =
    [ base;
      Poly.interchange base 0 1;
      Poly.tile base ~pos:2 ~factor:4;
      Poly.tile (Poly.tile base ~pos:2 ~factor:4) ~pos:0 ~factor:4;
      Poly.reorder base [| 4; 5; 0; 1; 2; 3 |];
      Poly.fuse base ~pos:2 ]
  in
  (* A small cache so the 12x12x16 nest actually exercises capacity. *)
  let cache = { Device.c_size = 4 * 1024; c_line = 64; c_assoc = 4 } in
  let small_dev =
    { Device.i7 with
      Device.kind =
        (match Device.i7.Device.kind with
        | Device.Cpu c -> Device.Cpu { c with Device.caches = [ cache ] }
        | k -> k) }
  in
  let predicted =
    List.map (fun s -> Cost_model.dram_traffic small_dev nest s) schedules
  in
  let simulated =
    List.map
      (fun s ->
        let prog = Loop_nest.lower nest s in
        (Cache_sim.simulate_program cache prog).Cache_sim.miss_bytes)
      schedules
  in
  let p = Array.of_list predicted and m = Array.of_list simulated in
  (* Order agreement over pairs the model actually distinguishes (>=20%
     predicted difference); near-ties carry no ranking information. *)
  let pairs = ref 0 and agree = ref 0 in
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          if i < j && Float.abs (p.(i) -. p.(j)) > 0.2 *. Float.max p.(i) p.(j) then begin
            incr pairs;
            if compare p.(i) p.(j) = compare m.(i) m.(j) then incr agree
          end)
        p)
    p;
  let pairs = if !pairs = 0 then ref 1 else pairs in
  { cv_schedules = List.length schedules;
    cv_pearson = Stats.pearson p m;
    cv_order_agreement = float_of_int !agree /. float_of_int !pairs }

(* --- 3. Interleaving -------------------------------------------------- *)

let interleave_ablation mode =
  let rng = Rng.create (Exp_common.master_seed + 203) in
  let model = Models.build (Models.resnet34 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
  let device = Device.i7 in
  let n = Exp_common.candidates mode / 2 in
  let unified =
    Unified_search.search ~candidates:n ~rng:(Rng.split rng) ~device ~probe model
  in
  (* NAS-only: restrict each mutated site to the menu-block plans (no
     interleaved sequences, no schedule hints). *)
  let nas_rng = Rng.split rng in
  let seed = Rng.int nas_rng 1_000_000_000 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let baseline_scores =
    Fisher.score (Models.rebuild model (Rng.create seed) full) probe
  in
  let best = ref None in
  for _ = 1 to n do
    let impls =
      Array.map
        (fun site ->
          if Rng.uniform nas_rng < 0.7 then Rng.choice_list nas_rng (Blockswap.menu site)
          else Conv_impl.Full)
        model.Models.sites
    in
    let candidate = Models.rebuild model (Rng.create seed) impls in
    let scores = Fisher.score candidate probe in
    if Fisher.legal_clipped ~baseline:baseline_scores scores then begin
      let plans = Array.map (fun impl -> Site_plan.make impl) impls in
      let lat = (Pipeline.evaluate device model ~plans).Pipeline.ev_latency_s in
      match !best with
      | Some b when b <= lat -> ()
      | _ -> best := Some lat
    end
  done;
  let baseline = unified.Unified_search.r_baseline.Pipeline.ev_latency_s in
  let nas_only = match !best with Some b -> b | None -> baseline in
  { ia_nas_only_speedup = baseline /. nas_only;
    ia_unified_speedup = Unified_search.speedup unified }

let compute mode =
  { fisher = fisher_ablation mode;
    cache = cache_validation ();
    interleave = interleave_ablation mode }

let print ppf d =
  Exp_common.section ppf "Ablations";
  Format.fprintf ppf "1. Fisher legality filter (vs cost-only / train-to-check):@.";
  Format.fprintf ppf
    "   cost-only winner capacity-damaging: %b; %d of top-10 cost-ranked configs are illegal@."
    d.fisher.fa_best_cost_illegal d.fisher.fa_illegal_in_top10;
  Format.fprintf ppf "   %.0f%% of the random pool is capacity-damaging@."
    (100.0 *. d.fisher.fa_pool_illegal_frac);
  Format.fprintf ppf "   Fisher-checking %d configs: %a;  train-checking them: >= %a@."
    d.fisher.fa_candidates Timing.pp_seconds d.fisher.fa_fisher_wall_s
    Timing.pp_seconds d.fisher.fa_train_wall_estimate_s;
  Format.fprintf ppf "@.2. Analytic cost model vs trace-driven cache simulator:@.";
  Format.fprintf ppf
    "   %d schedules: traffic correlation %.2f, pairwise order agreement %.0f%%@."
    d.cache.cv_schedules d.cache.cv_pearson (100.0 *. d.cache.cv_order_agreement);
  Format.fprintf ppf "@.3. Interleaving transformations (the central claim):@.";
  Format.fprintf ppf
    "   NAS-only menu: %.2fx speedup; unified interleaved space: %.2fx speedup@."
    d.interleave.ia_nas_only_speedup d.interleave.ia_unified_speedup

let run mode ppf =
  let d = compute mode in
  print ppf d;
  d
