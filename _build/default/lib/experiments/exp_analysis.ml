type accuracy_row = {
  network : string;
  orig_acc : float;
  ours_acc : float;
}

type data = {
  accuracy : accuracy_row list;
  size : (string * int * int) list;
  search : (string * int * int * float) list;
}

(* Implementations chosen at search scale may be spatially invalid at the
   smaller training scale; fall back to Full there. *)
let sanitize model impls =
  Array.mapi
    (fun i site ->
      if Conv_impl.valid site impls.(i) then impls.(i) else Conv_impl.Full)
    model.Models.sites

let compute mode (fig4 : Fig4.data) =
  let cpu_rows =
    List.filter (fun r -> r.Fig4.device.Device.short_name = "CPU") fig4.Fig4.rows
  in
  let steps = Exp_common.train_steps mode in
  let accuracy =
    List.map
      (fun (r : Fig4.row) ->
        let rng = Rng.create (Exp_common.master_seed + 100 + String.length r.network) in
        let config =
          List.find
            (fun c -> Models.config_name c = r.Fig4.network)
            (List.map
               (fun c ->
                 (* train-scale twins of the Figure-4 networks *)
                 match Models.config_name c with
                 | "resnet34" -> Models.resnet34 ~scale:`Train ()
                 | "resnext29" -> Models.resnext29 ~scale:`Train ()
                 | _ -> Models.densenet161 ~scale:`Train ())
               (Exp_common.cifar_configs ()))
        in
        let model = Models.build config rng in
        let data =
          Exp_common.train_data (Rng.split rng) ~input_size:model.Models.input_size
            ~classes:10
        in
        let train_and_eval m =
          let batch_rng = Rng.split rng in
          let _ =
            Train.train m ~steps
              ~batch_fn:(fun step ->
                Synthetic_data.batch_fn batch_rng data ~batch_size:16 step)
              ~base_lr:0.05
          in
          Train.evaluate m
            (List.filteri (fun i _ -> i < 4) (Synthetic_data.batches data ~batch_size:16))
        in
        let orig_acc = train_and_eval model in
        let impls =
          sanitize model
            (Array.map (fun p -> p.Site_plan.sp_impl) r.Fig4.ours_plans)
        in
        let ours = Models.rebuild model (Rng.split rng) impls in
        let ours_acc = train_and_eval ours in
        { network = r.network; orig_acc; ours_acc })
      cpu_rows
  in
  let size =
    List.map
      (fun (r : Fig4.row) -> (r.Fig4.network, r.baseline_params, r.ours_params))
      cpu_rows
  in
  let search =
    List.map
      (fun (r : Fig4.row) ->
        (r.Fig4.network, r.explored, r.fisher_rejected, r.search_wall_s))
      cpu_rows
  in
  { accuracy; size; search }

let print ppf d =
  Exp_common.section ppf "Analysis (sec 7.2): accuracy, size, search time";
  Format.fprintf ppf "Accuracy (same training budget):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s original %5.1f%%  ours %5.1f%%  delta %+5.1f%%@."
        r.network (100.0 *. r.orig_acc) (100.0 *. r.ours_acc)
        (100.0 *. (r.ours_acc -. r.orig_acc)))
    d.accuracy;
  Format.fprintf ppf "@.Size (paper-scale convolution weights):@.";
  List.iter
    (fun (network, baseline, ours) ->
      Format.fprintf ppf "  %-14s %8.2fM -> %8.2fM  (%.2fx compression)@." network
        (float_of_int baseline /. 1e6)
        (float_of_int ours /. 1e6)
        (float_of_int baseline /. float_of_int (max 1 ours)))
    d.size;
  Format.fprintf ppf "@.Search time (Fisher Potential legality check, no training):@.";
  List.iter
    (fun (network, explored, rejected, wall) ->
      Format.fprintf ppf
        "  %-14s %4d configurations, %3.0f%% rejected for free, %a wall@." network
        explored
        (100.0 *. float_of_int rejected /. float_of_int explored)
        Timing.pp_seconds wall)
    d.search

let run mode fig4 ppf =
  let d = compute mode fig4 in
  print ppf d;
  d
