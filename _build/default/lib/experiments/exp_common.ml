type mode = Quick | Full

let mode_of_env () =
  match Sys.getenv_opt "NPTE_MODE" with
  | Some ("full" | "FULL" | "Full") -> Full
  | Some _ | None -> Quick

let mode_name = function Quick -> "quick" | Full -> "full"
let candidates = function Quick -> 120 | Full -> 1000
let blockswap_samples = function Quick -> 60 | Full -> 200
let nasbench_cells = function Quick -> 60 | Full -> 400
let train_steps = function Quick -> 150 | Full -> 300
let seeds = function Quick -> 2 | Full -> 3
let fbnet_rounds = function Quick -> 2 | Full -> 4
let fbnet_population = function Quick -> 3 | Full -> 6
let master_seed = 20210419 (* the conference dates *)

let cifar_configs () =
  [ Models.resnet34 (); Models.resnext29 (); Models.densenet161 () ]

let probe_batch rng ~input_size =
  let data = Synthetic_data.make rng ~classes:10 ~size:input_size ~n:64 () in
  Synthetic_data.fixed_batch rng data ~batch_size:16

let train_data rng ~input_size ~classes =
  Synthetic_data.make rng ~classes ~size:input_size ~n:256 ()

let section ppf title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '=')

let pp_us ppf s =
  if s < 1e-3 then Format.fprintf ppf "%8.1f us" (s *. 1e6)
  else Format.fprintf ppf "%8.2f ms" (s *. 1e3)

let bar speedup =
  let n = max 0 (min 60 (int_of_float (speedup *. 5.0))) in
  String.make n '#'
