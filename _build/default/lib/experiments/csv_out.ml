let results_dir = ref "results"

let escape field =
  let needs_quotes =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if not needs_quotes then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let write ~name ~header rows =
  if not (Sys.file_exists !results_dir) then Unix.mkdir !results_dir 0o755;
  let path = Filename.concat !results_dir (name ^ ".csv") in
  let oc = open_out path in
  let emit cells = output_string oc (String.concat "," (List.map escape cells) ^ "\n") in
  emit header;
  List.iter emit rows;
  close_out oc;
  path

let float_cell f = Printf.sprintf "%.9g" f
let int_cell = string_of_int
