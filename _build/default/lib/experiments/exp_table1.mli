(** Table 1: the unified transformation menu, with a rendered loop-nest
    demonstration of each primitive. *)

val run : Format.formatter -> unit
