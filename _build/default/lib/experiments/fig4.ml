type row = {
  network : string;
  device : Device.t;
  tvm_s : float;
  nas_s : float;
  ours_s : float;
  ours_plans : Site_plan.t array;
  ours_params : int;
  baseline_params : int;
  fisher_rejected : int;
  explored : int;
  search_wall_s : float;
}

type data = {
  rows : row list;
  nas_impls : (string * Conv_impl.t array) list;
}

let nas_speedup r = r.tvm_s /. r.nas_s
let ours_speedup r = r.tvm_s /. r.ours_s

let compute mode =
  let rows = ref [] and nas_impls = ref [] in
  List.iteri
    (fun i config ->
      let rng = Rng.create (Exp_common.master_seed + 40 + i) in
      let model = Models.build config rng in
      let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
      (* NAS baseline: BlockSwap under a parameter budget, then compile. *)
      let bs =
        Blockswap.search
          ~samples:(Exp_common.blockswap_samples mode)
          ~rng:(Rng.split rng) ~probe model
      in
      nas_impls := (model.Models.name, bs.Blockswap.bs_impls) :: !nas_impls;
      let nas_plans = Array.map (fun impl -> Site_plan.make impl) bs.Blockswap.bs_impls in
      (* Ours: the unified search, sharing Fisher evaluations across devices. *)
      let results =
        Unified_search.search_multi
          ~candidates:(Exp_common.candidates mode)
          ~rng:(Rng.split rng) ~devices:Device.all ~probe model
      in
      List.iter
        (fun (device, r) ->
          let nas_ev = Pipeline.evaluate device model ~plans:nas_plans in
          rows :=
            { network = model.Models.name;
              device;
              tvm_s = r.Unified_search.r_baseline.Pipeline.ev_latency_s;
              nas_s = nas_ev.Pipeline.ev_latency_s;
              ours_s = r.Unified_search.r_best.Unified_search.cd_latency_s;
              ours_plans = r.r_best.cd_plans;
              ours_params = r.r_best.cd_params;
              baseline_params = r.r_baseline.Pipeline.ev_params;
              fisher_rejected = r.r_rejected;
              explored = r.r_explored;
              search_wall_s = r.r_wall_s }
            :: !rows)
        results)
    (Exp_common.cifar_configs ());
  { rows = List.rev !rows; nas_impls = List.rev !nas_impls }

let print ppf d =
  Exp_common.section ppf
    "Figure 4: end-to-end CIFAR-10 performance (TVM vs NAS vs Ours)";
  Format.fprintf ppf "%-14s %-5s | %12s %12s %12s | %8s %8s@." "network" "dev"
    "TVM" "NAS" "Ours" "NASx" "Oursx";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %-5s | %a %a %a | %7.2fx %7.2fx  %s@." r.network
        r.device.Device.short_name Exp_common.pp_us r.tvm_s Exp_common.pp_us r.nas_s
        Exp_common.pp_us r.ours_s (nas_speedup r) (ours_speedup r)
        (Exp_common.bar (ours_speedup r)))
    d.rows;
  (* Per-device geometric means, the figure's headline. *)
  Format.fprintf ppf "@.geomean speedup over TVM:@.";
  List.iter
    (fun dev ->
      let mine =
        List.filter (fun r -> r.device.Device.short_name = dev.Device.short_name) d.rows
      in
      if mine <> [] then begin
        let g f = Stats.geomean (Array.of_list (List.map f mine)) in
        Format.fprintf ppf "  %-5s NAS %5.2fx   Ours %5.2fx@." dev.Device.short_name
          (g nas_speedup) (g ours_speedup)
      end)
    Device.all

let to_csv d =
  Csv_out.write ~name:"fig4_end_to_end"
    ~header:
      [ "network"; "device"; "tvm_s"; "nas_s"; "ours_s"; "nas_speedup";
        "ours_speedup"; "baseline_params"; "ours_params"; "explored"; "rejected";
        "search_wall_s" ]
    (List.map
       (fun r ->
         [ r.network; r.device.Device.short_name; Csv_out.float_cell r.tvm_s;
           Csv_out.float_cell r.nas_s; Csv_out.float_cell r.ours_s;
           Csv_out.float_cell (nas_speedup r); Csv_out.float_cell (ours_speedup r);
           Csv_out.int_cell r.baseline_params; Csv_out.int_cell r.ours_params;
           Csv_out.int_cell r.explored; Csv_out.int_cell r.fisher_rejected;
           Csv_out.float_cell r.search_wall_s ])
       d.rows)

let run mode ppf =
  let d = compute mode in
  print ppf d;
  ignore (to_csv d);
  d
