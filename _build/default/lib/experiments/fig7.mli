(** Figure 7: comparison against FBNet on the Intel i7.

    FBNet selects blocks from the same menu as the NAS baseline but trains
    while searching; it improves over BlockSwap at a simulated cost of ~3
    GPU-days per network, and the unified approach beats it with no
    training at all. *)

type row = {
  network : string;
  tvm_s : float;
  nas_s : float;
  fbnet_s : float;
  ours_s : float;
  fbnet_gpu_days : float;
  fbnet_trainings : int;
}

type data = { rows : row list }

val compute : Exp_common.mode -> Fig4.data -> data
val print : Format.formatter -> data -> unit
val run : Exp_common.mode -> Fig4.data -> Format.formatter -> data
