let run ppf =
  Exp_common.section ppf "Table 1: autotuning primitives of the unified space";
  Table1.pp_table ppf ();
  Format.fprintf ppf "@.Demonstrations (8x8x8 conv, k=3):@.";
  List.iter
    (fun row ->
      match Table1.demonstrate row with
      | None -> ()
      | Some text ->
          Format.fprintf ppf "@.-- %s --@.%s@." row.Table1.opt_name text)
    Table1.rows
