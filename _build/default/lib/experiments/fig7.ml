type row = {
  network : string;
  tvm_s : float;
  nas_s : float;
  fbnet_s : float;
  ours_s : float;
  fbnet_gpu_days : float;
  fbnet_trainings : int;
}

type data = { rows : row list }

let compute mode (fig4 : Fig4.data) =
  let device = Device.i7 in
  let rows =
    List.filter_map
      (fun (r : Fig4.row) ->
        if r.Fig4.device.Device.short_name <> "CPU" then None
        else begin
          let rng = Rng.create (Exp_common.master_seed + 70 + String.length r.network) in
          (* Rebuild the (train-scale) model for FBNet's proxy trainings. *)
          let config =
            List.find
              (fun c -> Models.config_name c = r.Fig4.network)
              (Exp_common.cifar_configs ())
          in
          let model = Models.build config rng in
          let data =
            Exp_common.train_data (Rng.split rng) ~input_size:model.Models.input_size
              ~classes:10
          in
          let fb =
            Fbnet.search ~rounds:(Exp_common.fbnet_rounds mode)
              ~population:(Exp_common.fbnet_population mode)
              ~train_steps:(match mode with Exp_common.Quick -> 20 | Exp_common.Full -> 60)
              ~rng:(Rng.split rng) ~device ~data model
          in
          Some
            { network = r.Fig4.network;
              tvm_s = r.Fig4.tvm_s;
              nas_s = r.Fig4.nas_s;
              fbnet_s = fb.Fbnet.fb_latency_s;
              ours_s = r.Fig4.ours_s;
              fbnet_gpu_days = fb.Fbnet.fb_simulated_gpu_days;
              fbnet_trainings = fb.Fbnet.fb_trainings }
        end)
      fig4.Fig4.rows
  in
  { rows }

let print ppf d =
  Exp_common.section ppf "Figure 7: FBNet comparison on the Intel i7 (CIFAR-10)";
  Format.fprintf ppf "%-14s | %8s %8s %8s %8s | %s@." "network" "TVM" "NASx"
    "FBNetx" "Oursx" "FBNet cost";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s | %a %7.2fx %7.2fx %7.2fx | ~%.1f GPU-days (%d trainings)@."
        r.network Exp_common.pp_us r.tvm_s (r.tvm_s /. r.nas_s) (r.tvm_s /. r.fbnet_s)
        (r.tvm_s /. r.ours_s) r.fbnet_gpu_days r.fbnet_trainings)
    d.rows;
  Format.fprintf ppf
    "@.Ours requires no training during search; FBNet pays a training step per evaluation.@."

let to_csv d =
  Csv_out.write ~name:"fig7_fbnet"
    ~header:[ "network"; "tvm_s"; "nas_s"; "fbnet_s"; "ours_s"; "fbnet_gpu_days" ]
    (List.map
       (fun r ->
         [ r.network; Csv_out.float_cell r.tvm_s; Csv_out.float_cell r.nas_s;
           Csv_out.float_cell r.fbnet_s; Csv_out.float_cell r.ours_s;
           Csv_out.float_cell r.fbnet_gpu_days ])
       d.rows)

let run mode fig4 ppf =
  let d = compute mode fig4 in
  print ppf d;
  ignore (to_csv d);
  d
