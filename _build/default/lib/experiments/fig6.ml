type layer = {
  index : int;
  label : string;
  shape : Conv_impl.workload;
  tvm_s : float;
  nas_s : float option;
  seq1_s : float option;
  seq2_s : float option;
  seq3_s : float option;
  sensitive : bool;
}

type data = { layers : layer list }

let workload_dims (w : Conv_impl.workload) =
  (w.Conv_impl.w_in_channels, w.w_out_channels, w.w_kernel, w.w_stride, w.w_groups,
   w.w_spatial)

(* Reconstructs a site record from a workload so the sequence plans can be
   applied to the distinct layer shapes. *)
let site_of_workload index (w : Conv_impl.workload) =
  { Conv_impl.site_index = index;
    in_channels = w.Conv_impl.w_in_channels;
    out_channels = w.w_out_channels;
    kernel = w.w_kernel;
    stride = w.w_stride;
    groups = w.w_groups;
    spatial_in = w.w_spatial;
    site_label = w.w_label }

let compute mode =
  ignore mode;
  let rng = Rng.create (Exp_common.master_seed + 6) in
  let model = Models.build (Models.resnet34 ~scale:`Imagenet ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
  let device = Device.i7 in
  (* Distinct conv shapes of the network, at paper scale. *)
  let unique =
    List.fold_left
      (fun acc w -> if List.exists (fun u -> workload_dims u = workload_dims w) acc then acc else acc @ [ w ])
      [] (Models.cost_workloads model)
  in
  let unique = List.filteri (fun _ w -> w.Conv_impl.w_label <> "fc") unique in
  (* Per-layer Fisher sensitivity: group (g=2) every site of this shape and
     test clipped legality against the original network (the same standard
     and shared-seed rebuild as the searches).  Shapes whose compression
     collapses the Fisher Potential receive no neural transformation. *)
  let seed = Rng.int rng 1_000_000_000 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let baseline_scores =
    Fisher.score (Models.rebuild model (Rng.create seed) full) probe
  in
  let shape_of_site s =
    let scaled = Models.scale_site model s in
    ( scaled.Conv_impl.in_channels, scaled.out_channels, scaled.kernel, scaled.stride,
      scaled.groups, scaled.spatial_in )
  in
  let sensitive_for w =
    let dims = workload_dims w in
    let impls =
      Array.map
        (fun site ->
          if shape_of_site site = dims && Conv_impl.valid site (Conv_impl.Grouped 2)
          then Conv_impl.Grouped 2
          else Conv_impl.Full)
        model.Models.sites
    in
    if Array.for_all (fun i -> i = Conv_impl.Full) impls then
      (* No transformable site has this shape (stem / downsample 1x1s):
         treated as sensitive, exactly the paper's untouched layers. *)
      true
    else begin
      let candidate = Models.rebuild model (Rng.create seed) impls in
      let scores = Fisher.score candidate probe in
      not (Fisher.legal_clipped ~slack:0.06 ~baseline:baseline_scores scores)
    end
  in
  let layers =
    List.mapi
      (fun index w ->
        let site = site_of_workload index w in
        let tvm_s = Pipeline.workload_cost device w in
        let sensitive = sensitive_for w in
        let cost seq =
          if sensitive || not (Sequences.valid site seq) then None
          else Some (Pipeline.site_cost device site (Sequences.plan seq))
        in
        { index;
          label = w.Conv_impl.w_label;
          shape = w;
          tvm_s;
          nas_s = cost (Sequences.Plain_group 2);
          seq1_s = cost (Sequences.Seq1 { g = 2; split = 2 });
          seq2_s = cost (Sequences.Seq2 { g = 2; unroll = 16 });
          seq3_s = cost (Sequences.Seq3 { g1 = 2; g2 = 4 });
          sensitive })
      unique
  in
  { layers }

let print ppf d =
  Exp_common.section ppf
    "Figure 6: layer-wise sequences for ResNet-34 on the Intel i7";
  Format.fprintf ppf "%d distinct convolution layers@." (List.length d.layers);
  Format.fprintf ppf "%-4s %-14s %-22s | %9s | %7s %7s %7s %7s@." "L" "site"
    "shape (ci->co kxk s g sp)" "TVM" "NASx" "seq1x" "seq2x" "seq3x";
  List.iter
    (fun l ->
      let w = l.shape in
      let shape =
        Printf.sprintf "%d->%d %dx%d s%d g%d %d" w.Conv_impl.w_in_channels
          w.w_out_channels w.w_kernel w.w_kernel w.w_stride w.w_groups w.w_spatial
      in
      let speed = function
        | None -> "   -  "
        | Some s -> Printf.sprintf "%5.2fx" (l.tvm_s /. s)
      in
      Format.fprintf ppf "L%-3d %-14s %-22s | %a | %7s %7s %7s %7s%s@."
        (l.index + 1) l.label shape Exp_common.pp_us l.tvm_s (speed l.nas_s)
        (speed l.seq1_s) (speed l.seq2_s) (speed l.seq3_s)
        (if l.sensitive then "  [fisher-sensitive]" else ""))
    d.layers;
  let sensitive = List.length (List.filter (fun l -> l.sensitive) d.layers) in
  Format.fprintf ppf
    "@.%d of %d layers are Fisher-sensitive and keep their original convolution (paper: 4 of 11)@."
    sensitive (List.length d.layers)

let to_csv d =
  let cell = function None -> "" | Some s -> Csv_out.float_cell s in
  Csv_out.write ~name:"fig6_layerwise"
    ~header:
      [ "layer"; "label"; "in_c"; "out_c"; "kernel"; "stride"; "spatial"; "tvm_s";
        "nas_s"; "seq1_s"; "seq2_s"; "seq3_s"; "fisher_sensitive" ]
    (List.map
       (fun l ->
         let w = l.shape in
         [ Csv_out.int_cell (l.index + 1); l.label;
           Csv_out.int_cell w.Conv_impl.w_in_channels;
           Csv_out.int_cell w.w_out_channels; Csv_out.int_cell w.w_kernel;
           Csv_out.int_cell w.w_stride; Csv_out.int_cell w.w_spatial;
           Csv_out.float_cell l.tvm_s; cell l.nas_s; cell l.seq1_s; cell l.seq2_s;
           cell l.seq3_s; string_of_bool l.sensitive ])
       d.layers)

let run mode ppf =
  let d = compute mode in
  print ppf d;
  ignore (to_csv d);
  d
