type row = {
  network : string;
  orig_s : float;
  ours_s : float;
  orig_acc : float;
  ours_acc : float;
}

type data = { rows : row list }

let configs () =
  [ Models.resnet18 ~scale:`Imagenet ();
    Models.resnet34 ~scale:`Imagenet ();
    Models.densenet161 ~scale:`Imagenet ();
    Models.densenet169 ~scale:`Imagenet ();
    Models.densenet201 ~scale:`Imagenet () ]

let compute mode =
  let device = Device.i7 in
  let steps = (2 * Exp_common.train_steps mode) / 5 in
  let rows =
    List.mapi
      (fun i config ->
        let rng = Rng.create (Exp_common.master_seed + 80 + i) in
        let model = Models.build config rng in
        let probe =
          Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size
        in
        let result =
          Unified_search.search
            ~candidates:(Exp_common.candidates mode / 4)
            ~rng:(Rng.split rng) ~device ~probe model
        in
        let best = result.Unified_search.r_best in
        let data =
          Exp_common.train_data (Rng.split rng) ~input_size:model.Models.input_size
            ~classes:model.Models.num_classes
        in
        let train_and_eval m =
          let batch_rng = Rng.split rng in
          let _ =
            Train.train m ~steps
              ~batch_fn:(fun step ->
                Synthetic_data.batch_fn batch_rng data ~batch_size:8 step)
              ~base_lr:0.05
          in
          Train.evaluate m
            (List.filteri (fun i _ -> i < 4) (Synthetic_data.batches data ~batch_size:8))
        in
        let orig_acc = train_and_eval model in
        let ours_impls =
          Array.map (fun p -> p.Site_plan.sp_impl) best.Unified_search.cd_plans
        in
        let ours_model = Models.rebuild model (Rng.split rng) ours_impls in
        let ours_acc = train_and_eval ours_model in
        { network = model.Models.name;
          orig_s = result.Unified_search.r_baseline.Pipeline.ev_latency_s;
          ours_s = best.Unified_search.cd_latency_s;
          orig_acc;
          ours_acc })
      (configs ())
  in
  { rows }

let print ppf d =
  Exp_common.section ppf
    "Figure 8: ImageNet accuracy vs inference time (Original+TVM vs Ours, i7)";
  Format.fprintf ppf "%-14s | %12s %12s %8s | %8s %8s %8s@." "network" "orig time"
    "ours time" "speedup" "orig acc" "ours acc" "delta";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s | %a %a %7.2fx | %7.1f%% %7.1f%% %+6.1f%%@."
        r.network Exp_common.pp_us r.orig_s Exp_common.pp_us r.ours_s
        (r.orig_s /. r.ours_s) (100.0 *. r.orig_acc) (100.0 *. r.ours_acc)
        (100.0 *. (r.ours_acc -. r.orig_acc)))
    d.rows;
  let max_drop =
    List.fold_left (fun acc r -> Float.max acc (r.orig_acc -. r.ours_acc)) 0.0 d.rows
  in
  Format.fprintf ppf "@.largest accuracy drop: %.1f%% (paper: within 2%%)@."
    (100.0 *. max_drop)

let to_csv d =
  Csv_out.write ~name:"fig8_imagenet"
    ~header:[ "network"; "orig_s"; "ours_s"; "orig_acc"; "ours_acc" ]
    (List.map
       (fun r ->
         [ r.network; Csv_out.float_cell r.orig_s; Csv_out.float_cell r.ours_s;
           Csv_out.float_cell r.orig_acc; Csv_out.float_cell r.ours_acc ])
       d.rows)

let run mode ppf =
  let d = compute mode in
  print ppf d;
  ignore (to_csv d);
  d
