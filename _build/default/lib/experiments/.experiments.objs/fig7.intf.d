lib/experiments/fig7.mli: Exp_common Fig4 Format
