lib/experiments/exp_common.ml: Format Models String Synthetic_data Sys
