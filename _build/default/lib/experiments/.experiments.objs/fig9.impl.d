lib/experiments/fig9.ml: Csv_out Device Exp_common Format Interpolate List Models Rng
