lib/experiments/exp_table1.mli: Format
