lib/experiments/fig5.mli: Fig4 Format
