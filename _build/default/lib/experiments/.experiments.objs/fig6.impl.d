lib/experiments/fig6.ml: Array Conv_impl Csv_out Device Exp_common Fisher Format List Models Pipeline Printf Rng Sequences
