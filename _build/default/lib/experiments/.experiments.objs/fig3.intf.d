lib/experiments/fig3.mli: Exp_common Format Nasbench
