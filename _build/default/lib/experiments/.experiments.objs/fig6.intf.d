lib/experiments/fig6.mli: Conv_impl Exp_common Format
