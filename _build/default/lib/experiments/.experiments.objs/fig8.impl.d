lib/experiments/fig8.ml: Array Csv_out Device Exp_common Float Format List Models Pipeline Rng Site_plan Synthetic_data Train Unified_search
