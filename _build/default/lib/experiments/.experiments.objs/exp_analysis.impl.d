lib/experiments/exp_analysis.ml: Array Conv_impl Device Exp_common Fig4 Format List Models Rng Site_plan String Synthetic_data Timing Train
