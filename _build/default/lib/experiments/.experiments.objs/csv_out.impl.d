lib/experiments/csv_out.ml: Buffer Filename List Printf String Sys Unix
