lib/experiments/fig4.mli: Conv_impl Device Exp_common Format Site_plan
