lib/experiments/exp_analysis.mli: Exp_common Fig4 Format
