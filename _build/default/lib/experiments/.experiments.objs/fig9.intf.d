lib/experiments/fig9.mli: Exp_common Format Interpolate
