lib/experiments/fig4.ml: Array Blockswap Conv_impl Csv_out Device Exp_common Format List Models Pipeline Rng Site_plan Stats Unified_search
