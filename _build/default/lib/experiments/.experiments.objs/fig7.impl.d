lib/experiments/fig7.ml: Csv_out Device Exp_common Fbnet Fig4 Format List Models Rng String
