lib/experiments/fig5.ml: Array Csv_out Exp_common Fig4 Format List Site_plan String
