lib/experiments/exp_common.mli: Format Models Rng Synthetic_data Train
