lib/experiments/exp_table1.ml: Exp_common Format List Table1
