lib/experiments/fig3.ml: Array Csv_out Exp_common Format List Nasbench Rng Stats Synthetic_data
