type t = {
  images : Tensor.t array;
  labels : int array;
  classes : int;
  size : int;
}

(* A smooth template: coarse Gaussian noise upsampled to full resolution so
   that class evidence has spatial structure a convolution can exploit. *)
let template rng ~size =
  let coarse_size = max 2 (size / 4) in
  let coarse = Tensor.rand_normal rng [| 3; coarse_size; coarse_size |] ~mean:0.0 ~std:1.0 in
  Tensor.init [| 3; size; size |] (fun idx ->
      let c = idx.(0) and h = idx.(1) and w = idx.(2) in
      let ch = min (coarse_size - 1) (h * coarse_size / size) in
      let cw = min (coarse_size - 1) (w * coarse_size / size) in
      Tensor.get coarse [| c; ch; cw |])

let make rng ~classes ~size ~n ?(signal = 1.0) ?(noise = 0.6) () =
  let templates = Array.init classes (fun _ -> template rng ~size) in
  let labels = Array.init n (fun i -> i mod classes) in
  let images =
    Array.map
      (fun label ->
        let base = templates.(label) in
        Tensor.init [| 3; size; size |] (fun idx ->
            (signal *. Tensor.get base idx) +. Rng.gauss_scaled rng ~mean:0.0 ~std:noise))
      labels
  in
  (* Shuffle example order so batches mix classes. *)
  let order = Rng.permutation rng n in
  { images = Array.map (fun i -> images.(i)) order;
    labels = Array.map (fun i -> labels.(i)) order;
    classes;
    size }

let cifar_like rng ~n = make rng ~classes:10 ~size:16 ~n ()
let cifar_like_small rng ~n = make rng ~classes:10 ~size:8 ~n ()
let imagenet_like rng ~n = make rng ~classes:20 ~size:32 ~n ()

let stack t indices =
  let k = Array.length indices in
  let size = t.size in
  let images = Tensor.zeros [| k; 3; size; size |] in
  let plane = 3 * size * size in
  Array.iteri
    (fun bi i ->
      Array.blit (Tensor.data t.images.(i)) 0 (Tensor.data images) (bi * plane) plane)
    indices;
  { Train.images; labels = Array.map (fun i -> t.labels.(i)) indices }

let batches t ~batch_size =
  let n = Array.length t.images / batch_size in
  List.init n (fun b -> stack t (Array.init batch_size (fun i -> (b * batch_size) + i)))

let batch_fn rng t ~batch_size _step =
  let n = Array.length t.images in
  stack t (Array.init batch_size (fun _ -> Rng.int rng n))

let fixed_batch rng t ~batch_size =
  let n = Array.length t.images in
  stack t (Array.init batch_size (fun _ -> Rng.int rng n))
