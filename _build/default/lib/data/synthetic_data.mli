(** Synthetic, class-structured image data.

    The container has no CIFAR-10/ImageNet files, so the experiments train on
    generated data designed to preserve the two properties every figure
    relies on: networks can be trained to separate the classes, and damaging
    a network's representational capacity measurably hurts its accuracy.

    Each class [c] owns a smooth random template image; a sample is
    [signal * template_c + noise * N(0,1)], so class information is spread
    across all channels and spatial positions (as in natural images) and the
    task difficulty is controlled by the signal-to-noise ratio. *)

type t = {
  images : Tensor.t array;  (** each [3; size; size] *)
  labels : int array;
  classes : int;
  size : int;
}

val make :
  Rng.t -> classes:int -> size:int -> n:int -> ?signal:float -> ?noise:float ->
  unit -> t
(** Generates [n] labelled images. *)

val cifar_like : Rng.t -> n:int -> t
(** 10 classes, 16x16 (the search-scale input). *)

val cifar_like_small : Rng.t -> n:int -> t
(** 10 classes, 8x8 (the train-scale input). *)

val imagenet_like : Rng.t -> n:int -> t
(** 20 classes, 32x32. *)

val batches : t -> batch_size:int -> Train.batch list
(** Splits the dataset into consecutive batches (drops the ragged tail). *)

val batch_fn : Rng.t -> t -> batch_size:int -> int -> Train.batch
(** Step-indexed random minibatch sampler for training loops. *)

val fixed_batch : Rng.t -> t -> batch_size:int -> Train.batch
(** One deterministic minibatch — the Fisher Potential probe batch. *)
