lib/hw/cache_sim.mli: Device Loop_nest
