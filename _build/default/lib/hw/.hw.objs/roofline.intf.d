lib/hw/roofline.mli: Device Format Loop_nest Poly
