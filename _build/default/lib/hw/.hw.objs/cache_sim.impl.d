lib/hw/cache_sim.ml: Array Device Loop_nest
