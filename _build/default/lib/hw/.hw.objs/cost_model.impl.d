lib/hw/cost_model.ml: Array Device Float List Loop_nest Poly
