lib/hw/roofline.ml: Cost_model Device Float Format Poly
