lib/hw/cost_model.mli: Device Loop_nest Poly
