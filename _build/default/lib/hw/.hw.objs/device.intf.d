lib/hw/device.mli: Format
