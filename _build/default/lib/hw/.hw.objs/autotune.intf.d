lib/hw/autotune.mli: Cost_model Device Loop_nest Poly
