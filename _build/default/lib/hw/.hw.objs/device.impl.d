lib/hw/device.ml: Format List
