lib/hw/autotune.ml: Array Cost_model Device List Loop_nest Poly
