type bound = Compute_bound | Memory_bound | Overhead_bound

type t = {
  rf_intensity : float;
  rf_ridge : float;
  rf_bound : bound;
  rf_attainable_macs_per_s : float;
  rf_achieved_macs_per_s : float;
}

let bound_name = function
  | Compute_bound -> "compute-bound"
  | Memory_bound -> "memory-bound"
  | Overhead_bound -> "overhead-bound"

let bandwidth_gbs dev =
  match dev.Device.kind with
  | Device.Cpu c -> c.Device.mem_bw_gbs
  | Device.Gpu g -> g.Device.g_mem_bw_gbs

let analyze dev nest schedule =
  let breakdown = Cost_model.estimate dev nest schedule in
  let macs = float_of_int (Poly.points schedule) in
  let bytes = Float.max 1.0 breakdown.Cost_model.dram_bytes in
  let intensity = macs /. bytes in
  let peak = Device.peak_gflops dev /. 2.0 *. 1e9 (* MACs/s *) in
  let bw = bandwidth_gbs dev *. 1e9 in
  let ridge = peak /. bw in
  let attainable = Float.min peak (bw *. intensity) in
  let bound =
    if breakdown.overhead_s > Float.max breakdown.compute_s breakdown.memory_s then
      Overhead_bound
    else if breakdown.memory_s > breakdown.compute_s then Memory_bound
    else Compute_bound
  in
  { rf_intensity = intensity;
    rf_ridge = ridge;
    rf_bound = bound;
    rf_attainable_macs_per_s = attainable;
    rf_achieved_macs_per_s = macs /. breakdown.total_s }

let pp ppf t =
  Format.fprintf ppf
    "intensity %.1f MAC/B (ridge %.1f) -> %s; attainable %.1f GMAC/s, achieved %.1f GMAC/s"
    t.rf_intensity t.rf_ridge (bound_name t.rf_bound)
    (t.rf_attainable_macs_per_s /. 1e9)
    (t.rf_achieved_macs_per_s /. 1e9)
