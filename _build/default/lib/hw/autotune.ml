type hints = {
  h_unroll_co : int option;
  h_spatial_split : int option;
}

let no_hints = { h_unroll_co = None; h_spatial_split = None }

(* Index of the first loop (with extent > 1) whose digits contribute to
   [iter]. *)
let find_loop (s : Poly.t) iter =
  let found = ref None in
  List.iteri
    (fun li (l : Poly.loop) ->
      if !found = None && Poly.loop_extent l > 1 then
        if
          List.exists
            (fun (d : Poly.digit) ->
              List.exists (fun (c : Poly.contrib) -> c.Poly.src = iter) d.Poly.contribs)
            l.Poly.digits
        then found := Some li)
    s.Poly.loops;
  !found

(* Priority used to canonicalize loop order: parallel iterators outermost,
   reduction iterators innermost. *)
let loop_priority (l : Poly.loop) =
  let iter_priority = function
    | "co" -> 0
    | "oh" -> 1
    | "ow" -> 2
    | "ci" -> 3
    | "kh" -> 4
    | "kw" -> 5
    | _ -> 6
  in
  List.fold_left
    (fun acc (d : Poly.digit) ->
      List.fold_left
        (fun acc (c : Poly.contrib) -> min acc (iter_priority c.Poly.src))
        acc d.Poly.contribs)
    10 l.Poly.digits

let canonicalize (s : Poly.t) =
  let indexed = List.mapi (fun i l -> (i, loop_priority l)) s.Poly.loops in
  let sorted = List.stable_sort (fun (_, a) (_, b) -> compare a b) indexed in
  Poly.reorder s (Array.of_list (List.map fst sorted))

let try_transform s f = try f s with Poly.Illegal _ -> s

let divisor_or_none extent factor = factor > 1 && extent mod factor = 0

let extent_of_loop (s : Poly.t) pos = Poly.loop_extent (List.nth s.Poly.loops pos)

(* --- CPU template ------------------------------------------------------ *)

let cpu_template ~tile_ow ~tile_oh ~unroll_f s =
  let s = canonicalize s in
  (* Tile ow: the inner tile lands innermost, ready for vectorization. *)
  let s =
    match find_loop s "ow" with
    | Some pos when divisor_or_none (extent_of_loop s pos) tile_ow ->
        try_transform s (fun s -> Poly.tile s ~pos ~factor:tile_ow)
    | _ -> s
  in
  let s =
    match find_loop s "oh" with
    | Some pos when divisor_or_none (extent_of_loop s pos) tile_oh ->
        try_transform s (fun s -> Poly.tile s ~pos ~factor:tile_oh)
    | _ -> s
  in
  let n = Poly.loop_count s in
  let s = Poly.vectorize s ~pos:(n - 1) in
  let s = if n >= 2 then Poly.prefetch s ~pos:(n - 2) else s in
  if unroll_f > 1 then Poly.unroll s ~pos:(n - 1) ~factor:unroll_f else s

(* --- GPU template ------------------------------------------------------ *)

(* Positions of every loop (extent > 1) contributing to [iter]. *)
let loops_touching (s : Poly.t) iter =
  List.filteri (fun _ _ -> true) s.Poly.loops
  |> List.mapi (fun li l -> (li, l))
  |> List.filter_map (fun (li, (l : Poly.loop)) ->
         if
           Poly.loop_extent l > 1
           && List.exists
                (fun (d : Poly.digit) ->
                  List.exists (fun (c : Poly.contrib) -> c.Poly.src = iter) d.Poly.contribs)
                l.Poly.digits
         then Some li
         else None)

let gpu_template ~threads ~unroll_f s =
  let s = canonicalize s in
  (* Map every output-channel loop onto the grid: the first (the group slice
     after a grouping transformation) to blockIdx.x, the second to
     blockIdx.y. *)
  let s =
    match loops_touching s "co" with
    | [] -> s
    | [ p ] -> Poly.bind s ~pos:p Poly.Block_x
    | p1 :: p2 :: _ ->
        let s = Poly.bind s ~pos:p1 Poly.Block_x in
        Poly.bind s ~pos:p2 Poly.Block_y
  in
  (* Fuse the spatial loops into the thread dimension; large extents spill
     into an extra block split, small ones recruit channel threads. *)
  let s =
    match (find_loop s "oh", find_loop s "ow") with
    | Some ph, Some pw when pw = ph + 1 -> (
        let s = try_transform s (fun s -> Poly.fuse s ~pos:ph) in
        let fused_extent = extent_of_loop s ph in
        if fused_extent > threads && divisor_or_none fused_extent threads then
          (* Fused loops cannot be split directly; bind the whole fused loop
             when splitting is unavailable. *)
          try_transform s (fun s -> Poly.bind s ~pos:ph Poly.Thread_x)
        else Poly.bind s ~pos:ph Poly.Thread_x)
    | Some ph, _ -> Poly.bind s ~pos:ph Poly.Thread_x
    | None, Some pw -> Poly.bind s ~pos:pw Poly.Thread_x
    | None, None -> s
  in
  (* Small spatial planes under-fill the warps: recruit output channels from
     blockIdx.y as threadIdx.y instead. *)
  let spatial_threads =
    List.fold_left
      (fun acc (l : Poly.loop) ->
        match l.Poly.bind with
        | Some Poly.Thread_x -> acc * Poly.loop_extent l
        | _ -> acc)
      1 s.Poly.loops
  in
  let s =
    if spatial_threads < 64 then begin
      let rebound = ref false in
      let loops =
        List.map
          (fun (l : Poly.loop) ->
            if (not !rebound) && l.Poly.bind = Some Poly.Block_y
               && Poly.loop_extent l <= 64
            then begin
              rebound := true;
              { l with Poly.bind = Some Poly.Thread_y }
            end
            else l)
          s.Poly.loops
      in
      { s with Poly.loops }
    end
    else s
  in
  let n = Poly.loop_count s in
  if unroll_f > 1 then Poly.unroll s ~pos:(n - 1) ~factor:unroll_f else s

(* --- Hints (the schedule part of the §7.3 sequences) ------------------ *)

let apply_hints hints s =
  let s =
    match hints.h_spatial_split with
    | Some f -> (
        match find_loop s "oh" with
        | Some pos when divisor_or_none (extent_of_loop s pos) f ->
            (* Split the spatial domain and rotate the chunk loop outermost:
               split -> interchange, the schedule skeleton of sequence 1. *)
            let s = try_transform s (fun s -> Poly.split s ~pos ~factor:f) in
            let n = Poly.loop_count s in
            let perm = Array.init n (fun i -> if i = 0 then pos else if i <= pos then i - 1 else i) in
            try_transform s (fun s -> Poly.reorder s perm)
        | _ -> s)
    | None -> s
  in
  match hints.h_unroll_co with
  | Some f -> (
      match find_loop s "co" with
      | Some pos -> Poly.unroll s ~pos ~factor:f
      | None -> s)
  | None -> s

(* --- Parameter grids --------------------------------------------------- *)

let cpu_grid = [ 1; 4; 8 ]
let cpu_oh_grid = [ 1; 2; 4 ]
let cpu_unroll_grid = [ 1; 4; 16 ]
let gpu_threads_grid = [ 32; 64; 128; 256 ]
let gpu_unroll_grid = [ 1; 4 ]

let configurations_tried dev _nest =
  match dev.Device.kind with
  | Device.Cpu _ ->
      List.length cpu_grid * List.length cpu_oh_grid * List.length cpu_unroll_grid
  | Device.Gpu _ -> List.length gpu_threads_grid * List.length gpu_unroll_grid

let default_schedule dev nest =
  let base = Loop_nest.baseline_schedule nest in
  match dev.Device.kind with
  | Device.Cpu _ -> cpu_template ~tile_ow:4 ~tile_oh:1 ~unroll_f:4 base
  | Device.Gpu _ -> gpu_template ~threads:64 ~unroll_f:1 base

let tune ?(hints = no_hints) ?base dev nest =
  let base =
    match base with Some b -> b | None -> Loop_nest.baseline_schedule nest
  in
  let base = apply_hints hints base in
  let candidates =
    match dev.Device.kind with
    | Device.Cpu _ ->
        List.concat_map
          (fun tw ->
            List.concat_map
              (fun th ->
                List.map
                  (fun u -> cpu_template ~tile_ow:tw ~tile_oh:th ~unroll_f:u base)
                  cpu_unroll_grid)
              cpu_oh_grid)
          cpu_grid
    | Device.Gpu _ ->
        List.concat_map
          (fun threads ->
            List.map (fun u -> gpu_template ~threads ~unroll_f:u base) gpu_unroll_grid)
          gpu_threads_grid
  in
  let best = ref None in
  List.iter
    (fun s ->
      let b = Cost_model.estimate dev nest s in
      match !best with
      | Some (_, bb) when bb.Cost_model.total_s <= b.Cost_model.total_s -> ()
      | _ -> best := Some (s, b))
    candidates;
  match !best with
  | Some result -> result
  | None -> (base, Cost_model.estimate dev nest base)
