type t = {
  line : int;
  sets : int;
  assoc : int;
  tags : int array;  (* sets * assoc, -1 = empty *)
  ages : int array;  (* LRU stamps *)
  mutable clock : int;
  mutable n_accesses : int;
  mutable n_misses : int;
}

let create (c : Device.cache) =
  let lines = max 1 (c.Device.c_size / c.c_line) in
  let assoc = max 1 c.c_assoc in
  let sets = max 1 (lines / assoc) in
  { line = c.c_line;
    sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    ages = Array.make (sets * assoc) 0;
    clock = 0;
    n_accesses = 0;
    n_misses = 0 }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.n_accesses <- 0;
  t.n_misses <- 0

let access t addr =
  t.n_accesses <- t.n_accesses + 1;
  t.clock <- t.clock + 1;
  let block = addr / t.line in
  let set = block mod t.sets in
  let base = set * t.assoc in
  let hit = ref false in
  let victim = ref base in
  let oldest = ref max_int in
  for way = base to base + t.assoc - 1 do
    if t.tags.(way) = block then begin
      hit := true;
      t.ages.(way) <- t.clock
    end
    else if t.ages.(way) < !oldest then begin
      oldest := t.ages.(way);
      victim := way
    end
  done;
  if not !hit then begin
    t.n_misses <- t.n_misses + 1;
    t.tags.(!victim) <- block;
    t.ages.(!victim) <- t.clock
  end;
  !hit

type stats = { accesses : int; misses : int; miss_bytes : float }

let stats t =
  { accesses = t.n_accesses;
    misses = t.n_misses;
    miss_bytes = float_of_int (t.n_misses * t.line) }

let simulate_program cache prog =
  let sim = create cache in
  let out_base = 0 in
  let w_base = prog.Loop_nest.out_numel * 4 in
  let in_base = w_base + (prog.w_numel * 4) in
  Loop_nest.iter_accesses prog ~f:(fun ~out_idx ~w_idx ~in_idx ->
      ignore (access sim (out_base + (out_idx * 4)));
      ignore (access sim (w_base + (w_idx * 4)));
      ignore (access sim (in_base + (in_idx * 4))));
  stats sim

let miss_rate s =
  if s.accesses = 0 then 0.0 else float_of_int s.misses /. float_of_int s.accesses
