type cache = { c_size : int; c_line : int; c_assoc : int }

type cpu = {
  cores : int;
  vector_width : int;
  fma_per_cycle : int;
  freq_ghz : float;
  caches : cache list;
  mem_bw_gbs : float;
  op_overhead_us : float;
}

type gpu = {
  sms : int;
  cores_per_sm : int;
  g_freq_ghz : float;
  warp : int;
  max_threads_per_sm : int;
  l2 : cache;
  g_mem_bw_gbs : float;
  launch_overhead_us : float;
}

type kind = Cpu of cpu | Gpu of gpu
type t = { dev_name : string; short_name : string; kind : kind }

let i7 =
  { dev_name = "Intel Core i7 (server CPU)";
    short_name = "CPU";
    kind =
      Cpu
        { cores = 4;
          vector_width = 8;  (* AVX2 *)
          fma_per_cycle = 2;
          freq_ghz = 4.0;
          caches =
            [ { c_size = 32 * 1024; c_line = 64; c_assoc = 8 };
              { c_size = 256 * 1024; c_line = 64; c_assoc = 8 };
              { c_size = 8 * 1024 * 1024; c_line = 64; c_assoc = 16 } ];
          mem_bw_gbs = 34.0;
          op_overhead_us = 1.5 } }

let gtx1080ti =
  { dev_name = "Nvidia GTX 1080 Ti (server GPU)";
    short_name = "GPU";
    kind =
      Gpu
        { sms = 28;
          cores_per_sm = 128;
          g_freq_ghz = 1.58;
          warp = 32;
          max_threads_per_sm = 2048;
          l2 = { c_size = 2816 * 1024; c_line = 128; c_assoc = 16 };
          g_mem_bw_gbs = 484.0;
          launch_overhead_us = 7.0 } }

let arm_a57 =
  { dev_name = "ARM Cortex-A57 (mobile CPU, Jetson Nano)";
    short_name = "mCPU";
    kind =
      Cpu
        { cores = 4;
          vector_width = 4;  (* NEON *)
          fma_per_cycle = 1;
          freq_ghz = 1.43;
          caches =
            [ { c_size = 32 * 1024; c_line = 64; c_assoc = 2 };
              { c_size = 2 * 1024 * 1024; c_line = 64; c_assoc = 16 } ];
          mem_bw_gbs = 10.0;
          op_overhead_us = 4.0 } }

let maxwell_mgpu =
  { dev_name = "Nvidia 128-core Maxwell (mobile GPU, Jetson Nano)";
    short_name = "mGPU";
    kind =
      Gpu
        { sms = 1;
          cores_per_sm = 128;
          g_freq_ghz = 0.92;
          warp = 32;
          max_threads_per_sm = 2048;
          l2 = { c_size = 256 * 1024; c_line = 128; c_assoc = 16 };
          g_mem_bw_gbs = 12.0;  (* LPDDR4, shared with the CPU *)
          launch_overhead_us = 20.0 } }

let all = [ i7; gtx1080ti; arm_a57; maxwell_mgpu ]

let by_name name =
  List.find_opt (fun d -> d.short_name = name || d.dev_name = name) all

let peak_gflops t =
  match t.kind with
  | Cpu c ->
      float_of_int (c.cores * c.vector_width * c.fma_per_cycle) *. c.freq_ghz *. 2.0
  | Gpu g -> float_of_int (g.sms * g.cores_per_sm) *. g.g_freq_ghz *. 2.0

let pp ppf t =
  match t.kind with
  | Cpu c ->
      Format.fprintf ppf "%s: %d cores @@ %.2f GHz, %d-wide SIMD, %.0f GB/s (%.0f GFLOP/s peak)"
        t.dev_name c.cores c.freq_ghz c.vector_width c.mem_bw_gbs (peak_gflops t)
  | Gpu g ->
      Format.fprintf ppf "%s: %d SMs x %d cores @@ %.2f GHz, %.0f GB/s (%.0f GFLOP/s peak)"
        t.dev_name g.sms g.cores_per_sm g.g_freq_ghz g.g_mem_bw_gbs (peak_gflops t)
