(* Typed-vs-oracle differential fuzzer CLI: fuzz seeded cases and fail
   (exit 1) when the plan type system disagrees with the linter or the
   sampling oracle in either direction — a well-typed plan that lints
   dirty / fails legality, or a lint-clean survivor the judgment rejects.
   Wired into CI through the @typecheck-fuzz alias. *)

let () =
  let plans = ref 1000 and seed = ref 2026 and max_unknown = ref 0.2 in
  let max_points = ref 400 in
  let usage =
    "typecheck_diff [--plans N] [--seed S] [--max-unknown R] [--max-points P]"
  in
  Arg.parse
    [ ("--plans", Arg.Set_int plans, "N number of fuzzed cases (default 1000)");
      ("--seed", Arg.Set_int seed, "S corpus seed (default 2026)");
      ( "--max-unknown",
        Arg.Set_float max_unknown,
        "R maximum tolerated Unknown rate (default 0.2)" );
      ( "--max-points",
        Arg.Set_int max_points,
        "P sampling budget forwarded to the legality oracle (default 400)" ) ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let report = Sanitizer.run_typed ~max_points:!max_points ~seed:!seed ~n:!plans () in
  Format.printf "%a@." Sanitizer.pp_typed_report report;
  if Sanitizer.typed_passed ~max_unknown_rate:!max_unknown report then exit 0
  else begin
    if report.Sanitizer.tt_disagreements <> [] then
      Format.eprintf "typecheck_diff: type system and linter/oracle disagree@."
    else
      Format.eprintf "typecheck_diff: Unknown rate %.1f%% exceeds the %.1f%% bound@."
        (100.0 *. Sanitizer.typed_unknown_rate report)
        (100.0 *. !max_unknown);
    exit 1
  end
