(* Differential sanitizer CLI: fuzz seeded random plans and fail (exit 1)
   when the static direction-vector analyzer disagrees with the sampling
   oracle, or when the static analyzer declines too often to be useful.
   Wired into CI through the @sanitize alias. *)

let () =
  let plans = ref 200 and seed = ref 2026 and max_unknown = ref 0.2 in
  let usage = "legality_diff [--plans N] [--seed S] [--max-unknown R]" in
  Arg.parse
    [ ("--plans", Arg.Set_int plans, "N number of fuzzed plans (default 200)");
      ("--seed", Arg.Set_int seed, "S corpus seed (default 2026)");
      ( "--max-unknown",
        Arg.Set_float max_unknown,
        "R maximum tolerated Unknown rate (default 0.2)" ) ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let report = Sanitizer.run ~seed:!seed ~n:!plans () in
  Format.printf "%a@." Sanitizer.pp_report report;
  if Sanitizer.passed ~max_unknown_rate:!max_unknown report then exit 0
  else begin
    if report.Sanitizer.rs_disagreements <> [] then
      Format.eprintf "legality_diff: static analyzer and sampling oracle disagree@."
    else
      Format.eprintf "legality_diff: Unknown rate %.1f%% exceeds the %.1f%% bound@."
        (100.0 *. Sanitizer.unknown_rate report)
        (100.0 *. !max_unknown);
    exit 1
  end
