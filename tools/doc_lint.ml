(* Doc-comment coverage lint.

   odoc is not part of the pinned toolchain image, so `dune build @doc`
   alone cannot enforce documentation in CI.  This lint closes the gap:
   it walks the given directories and requires every exported [val] in
   every `.mli` to carry a doc comment — either `(** ... *)` immediately
   above the declaration or anywhere between the declaration and the next
   top-level item (the two styles used in this repo).  Exit 1 lists every
   undocumented export.

     doc_lint DIR...          (wired into `dune build @ci` from the root) *)

let decl_re_matches line =
  (* A top-level item boundary: val/type/module/exception/include/external
     at the start of the line (tolerating leading spaces inside sigs). *)
  let t = String.trim line in
  List.exists
    (fun kw ->
      String.length t >= String.length kw
      && String.sub t 0 (String.length kw) = kw)
    [ "val "; "type "; "module "; "exception "; "include "; "external " ]

let is_val line =
  let t = String.trim line in
  String.length t >= 4 && String.sub t 0 4 = "val "

let contains_doc_open line =
  let n = String.length line in
  let rec go i = i + 3 <= n && (String.sub line i 3 = "(**" || go (i + 1)) in
  go 0

let ends_doc_close line =
  let t = String.trim line in
  let n = String.length t in
  n >= 2 && String.sub t (n - 2) 2 = "*)"

let val_name line =
  let t = String.trim line in
  let rest = String.sub t 4 (String.length t - 4) in
  let rest = String.trim rest in
  let rest = if String.length rest > 0 && rest.[0] = '(' then rest else rest in
  match String.index_opt rest ' ' with
  | Some i -> String.sub rest 0 i
  | None -> ( match String.index_opt rest ':' with
              | Some i -> String.sub rest 0 i
              | None -> rest)

let check_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = Array.of_list (List.rev !lines) in
  let n = Array.length lines in
  let undocumented = ref [] in
  for i = 0 to n - 1 do
    if is_val lines.(i) then begin
      (* Documented above: nearest preceding non-blank line closes a
         comment block. *)
      let doc_above =
        let j = ref (i - 1) in
        while !j >= 0 && String.trim lines.(!j) = "" do decr j done;
        !j >= 0 && ends_doc_close lines.(!j)
      in
      (* Documented below: a doc comment opens somewhere between this
         declaration and the next top-level item. *)
      let doc_below =
        let found = ref false in
        let j = ref i in
        let stop = ref false in
        while not !stop do
          if contains_doc_open lines.(!j) then begin
            found := true;
            stop := true
          end
          else begin
            incr j;
            if !j >= n || (decl_re_matches lines.(!j) && !j > i) then stop := true
          end
        done;
        !found
      in
      if not (doc_above || doc_below) then
        undocumented := (i + 1, val_name lines.(i)) :: !undocumented
    end
  done;
  List.rev !undocumented

let mli_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mli")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let () =
  let dirs =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "." ] | _ :: rest -> rest
  in
  let failures = ref 0 in
  let checked = ref 0 in
  List.iter
    (fun dir ->
      List.iter
        (fun path ->
          incr checked;
          List.iter
            (fun (line, name) ->
              incr failures;
              Printf.eprintf "%s:%d: undocumented val %s\n" path line name)
            (check_file path))
        (mli_files dir))
    dirs;
  if !failures > 0 then begin
    Printf.eprintf "doc_lint: %d undocumented export(s)\n" !failures;
    exit 1
  end
  else Printf.printf "doc_lint: %d .mli files fully documented\n" !checked
