(* Registry gate behind the @zoo alias: builds every preset registered in
   Zoo at every scale, validates its spec and sites, cross-checks the static
   analyzer against Conv_impl.valid on every site, and fails on drift from
   the recorded structural snapshots.

     zoo_check            check everything, exit 1 on any failure
     zoo_check --print    also print snapshot lines (for updating Zoo)
     zoo_check --markdown print the generated README network table *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.eprintf "zoo_check: %s\n" m)
    fmt

(* Implementation menu probed for analyzer equivalence: the searchable
   options plus deliberately invalid factors. *)
let impl_menu =
  [ Conv_impl.Full; Grouped 2; Grouped 3; Grouped 4; Grouped 8; Grouped 16;
    Bottleneck 2; Bottleneck 3; Bottleneck 4; Depthwise_separable;
    Spatial_bottleneck 2; Spatial_bottleneck 3; Split_grouped (2, 4);
    Split_grouped (2, 8); Split_grouped (3, 5); Split_grouped (2, 2) ]

let check_entry (e : Zoo.entry) =
  List.iter
    (fun scale ->
      let spec = e.Zoo.ze_spec scale in
      List.iter
        (fun p -> fail "%s: invalid spec: %s" e.Zoo.ze_name p)
        (Block.validate spec);
      let m = Models.build spec (Rng.create 42) in
      Array.iter
        (fun s ->
          List.iter
            (fun d ->
              fail "%s: site %s: %s" e.Zoo.ze_name s.Conv_impl.site_label
                (Diagnostic.to_string d))
            (Shape_infer.check_site s);
          List.iter
            (fun impl ->
              let valid = Conv_impl.valid s impl in
              let diags = Shape_infer.check_impl s impl in
              if valid <> (diags = []) then
                fail "%s: site %s: analyzer disagrees with valid on %s"
                  e.Zoo.ze_name s.Conv_impl.site_label
                  (Conv_impl.to_string impl))
            impl_menu)
        m.Models.sites;
      ignore
        (Models.forward_logits m
           (Tensor.rand_normal (Rng.create 7)
              [| 1; m.Models.input_channels; m.Models.input_size;
                 m.Models.input_size |]
              ~mean:0.0 ~std:1.0)))
    [ `Search; `Train; `Imagenet ];
  (* Snapshot pinning happens at `Search scale, build seed 42. *)
  let m = Models.build (e.Zoo.ze_spec `Search) (Rng.create 42) in
  let sites = Array.length m.Models.sites in
  let macs = Models.total_macs m in
  let nodes = Graph.node_count m.Models.graph in
  let digest = Models.graph_digest m in
  (match e.Zoo.ze_snapshot with
  | None -> fail "%s: registry entry has no recorded snapshot" e.Zoo.ze_name
  | Some s ->
      if s.Zoo.zs_sites <> sites then
        fail "%s: site count drifted (recorded %d, built %d)" e.Zoo.ze_name
          s.Zoo.zs_sites sites;
      if s.Zoo.zs_macs <> macs then
        fail "%s: MACs drifted (recorded %d, built %d)" e.Zoo.ze_name s.Zoo.zs_macs
          macs;
      if s.Zoo.zs_nodes <> nodes then
        fail "%s: node count drifted (recorded %d, built %d)" e.Zoo.ze_name
          s.Zoo.zs_nodes nodes;
      if s.Zoo.zs_digest <> digest then
        fail "%s: graph digest drifted (recorded %s, built %s)" e.Zoo.ze_name
          s.Zoo.zs_digest digest);
  (m, sites, macs, nodes, digest)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "--check" in
  let rows =
    List.map
      (fun e ->
        let m, sites, macs, nodes, digest = check_entry e in
        (e, m, sites, macs, nodes, digest))
      Zoo.all
  in
  (match mode with
  | "--print" ->
      List.iter
        (fun ((e : Zoo.entry), _, sites, macs, nodes, digest) ->
          Printf.printf "%s: snap %d %d %d \"%s\"\n" e.ze_name sites macs nodes
            digest)
        rows
  | "--markdown" ->
      print_string
        "| network | family | paper | sites | MACs (search) | params | description |\n";
      print_string "|---|---|---|---|---|---|---|\n";
      List.iter
        (fun ((e : Zoo.entry), m, sites, macs, _, _) ->
          Printf.printf "| `%s` | %s | %s | %d | %d | %d | %s |\n" e.ze_name
            e.ze_family
            (if e.ze_paper then "yes" else "no")
            sites macs (Models.conv_params m) e.ze_doc)
        rows
  | "--check" -> ()
  | other -> fail "unknown mode %s (expected --check, --print or --markdown)" other);
  if !failures > 0 then begin
    Printf.eprintf "zoo_check: %d failure(s) across %d entries\n" !failures
      (List.length rows);
    exit 1
  end
  else if mode = "--check" then
    Printf.printf "zoo_check: %d entries OK (specs, sites, analyzer, snapshots)\n"
      (List.length rows)
