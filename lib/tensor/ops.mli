(** Neural-network kernels over {!Tensor}.

    Activations are NCHW, convolution weights are OIHW (with the I dimension
    equal to [C_i / groups] for grouped convolution).  Every forward kernel
    has a matching backward kernel returning gradients with respect to each
    input, which powers both SGD training and the Fisher Potential pass. *)

type conv_params = {
  stride : int;
  pad : int;
  groups : int;
  dilation : int;  (** spacing between kernel taps; 1 is a dense kernel *)
}

val conv_out_dim : ?dilation:int -> int -> k:int -> stride:int -> pad:int -> int
(** Spatial output extent of a convolution ([dilation] defaults to 1). *)

val conv2d :
  input:Tensor.t -> weight:Tensor.t -> bias:Tensor.t option -> conv_params -> Tensor.t
(** [conv2d ~input ~weight ~bias p] computes a (possibly grouped, possibly
    dilated) 2-D convolution.  Input [N;Ci;H;W], weight [Co;Ci/g;Kh;Kw],
    output [N;Co;Ho;Wo].  [Ci] and [Co] must be divisible by [p.groups]. *)

val conv2d_backward :
  input:Tensor.t ->
  weight:Tensor.t ->
  gout:Tensor.t ->
  conv_params ->
  Tensor.t * Tensor.t * Tensor.t
(** Gradients (w.r.t. input, weight, bias) of {!conv2d}. *)

val relu : Tensor.t -> Tensor.t
(** Elementwise max(x, 0). *)

val relu_backward : input:Tensor.t -> gout:Tensor.t -> Tensor.t
(** Gradient of {!relu} w.r.t. its input. *)

val sigmoid : Tensor.t -> Tensor.t
(** Elementwise logistic function, used by squeeze-excite gates. *)

val sigmoid_backward : out:Tensor.t -> gout:Tensor.t -> Tensor.t
(** Gradient of {!sigmoid} w.r.t. its input, computed from the forward
    output ([g * out * (1 - out)]). *)

val scale_channels : input:Tensor.t -> gate:Tensor.t -> Tensor.t
(** [scale_channels ~input ~gate] multiplies every spatial plane of the NCHW
    [input] by the matching per-channel gate value ([gate] is [N;C]).  This
    is the broadcast product a squeeze-excite block applies. *)

val scale_channels_backward :
  input:Tensor.t -> gate:Tensor.t -> gout:Tensor.t -> Tensor.t * Tensor.t
(** Gradients of {!scale_channels} (w.r.t. input and gate); the gate
    gradient sums [gout * input] over each spatial plane. *)

val max_pool2d : Tensor.t -> size:int -> stride:int -> pad:int -> Tensor.t * int array
(** Returns the pooled tensor and the flat argmax index of each output cell
    (or -1 where the window saw only padding), consumed by the backward
    pass. *)

val max_pool2d_backward :
  input:Tensor.t -> gout:Tensor.t -> indices:int array -> Tensor.t

val avg_pool2d : Tensor.t -> size:int -> stride:int -> pad:int -> Tensor.t
(** Padding cells count as zeros in the average (count-include-pad). *)

val avg_pool2d_backward :
  input:Tensor.t -> gout:Tensor.t -> size:int -> stride:int -> pad:int -> Tensor.t

val upsample_nearest : Tensor.t -> int -> Tensor.t
(** [upsample_nearest t f] repeats every spatial cell [f] times along both
    spatial axes. *)

val upsample_nearest_backward : input:Tensor.t -> gout:Tensor.t -> int -> Tensor.t

val global_avg_pool : Tensor.t -> Tensor.t
(** [N;C;H;W] -> [N;C]. *)

val global_avg_pool_backward : input:Tensor.t -> gout:Tensor.t -> Tensor.t

val linear : input:Tensor.t -> weight:Tensor.t -> bias:Tensor.t -> Tensor.t
(** Input [N;F], weight [Out;F], bias [Out] -> [N;Out]. *)

val linear_backward :
  input:Tensor.t -> weight:Tensor.t -> gout:Tensor.t -> Tensor.t * Tensor.t * Tensor.t

type bn_cache
(** Values saved by the batch-norm forward pass for its backward pass. *)

val batch_norm :
  input:Tensor.t -> gamma:Tensor.t -> beta:Tensor.t -> eps:float -> Tensor.t * bn_cache
(** Per-channel normalization over the N, H, W axes (training statistics). *)

val batch_norm_backward :
  gout:Tensor.t -> cache:bn_cache -> Tensor.t * Tensor.t * Tensor.t
(** Gradients (w.r.t. input, gamma, beta). *)

val concat_channels : Tensor.t list -> Tensor.t
(** Concatenates NCHW tensors along the channel axis. *)

val split_channels_backward : gout:Tensor.t -> parts:int list -> Tensor.t list
(** Inverse of {!concat_channels} for gradients: splits [gout] into chunks of
    [parts] channels. *)

val softmax_cross_entropy : logits:Tensor.t -> labels:int array -> float * Tensor.t
(** Mean cross-entropy loss over the batch and its gradient w.r.t. logits. *)

val accuracy : logits:Tensor.t -> labels:int array -> float
(** Top-1 accuracy in [0,1]. *)

val pad_channels : Tensor.t -> int -> Tensor.t
(** [pad_channels t c] zero-pads the channel axis of an NCHW tensor up to [c]
    channels (used by downsampling shortcuts). *)
