type conv_params = { stride : int; pad : int; groups : int; dilation : int }

let conv_out_dim ?(dilation = 1) d ~k ~stride ~pad =
  ((d + (2 * pad) - (dilation * (k - 1)) - 1) / stride) + 1

(* The convolution kernels are the hot path of the whole project (training,
   Fisher passes and NAS-bench evaluation all funnel through them), so they
   use unsafe flat-array access with incrementally maintained offsets. *)

let conv2d ~input ~weight ~bias params =
  let ishape = Tensor.shape input and wshape = Tensor.shape weight in
  let n = ishape.(0) and ci = ishape.(1) and h = ishape.(2) and w = ishape.(3) in
  let co = wshape.(0) and cig = wshape.(1) and kh = wshape.(2) and kw = wshape.(3) in
  let { stride; pad; groups; dilation } = params in
  assert (ci mod groups = 0 && co mod groups = 0);
  assert (cig = ci / groups);
  assert (dilation >= 1);
  let ho = conv_out_dim h ~k:kh ~stride ~pad ~dilation in
  let wo = conv_out_dim w ~k:kw ~stride ~pad ~dilation in
  assert (ho > 0 && wo > 0);
  let output = Tensor.zeros [| n; co; ho; wo |] in
  let id = Tensor.data input and wd = Tensor.data weight and od = Tensor.data output in
  let cog = co / groups in
  for ni = 0 to n - 1 do
    for g = 0 to groups - 1 do
      for cog_i = 0 to cog - 1 do
        let co_i = (g * cog) + cog_i in
        let wbase_co = co_i * cig * kh * kw in
        let obase_co = ((ni * co) + co_i) * ho * wo in
        for cig_i = 0 to cig - 1 do
          let ci_i = (g * cig) + cig_i in
          let ibase_ci = ((ni * ci) + ci_i) * h * w in
          let wbase_ci = wbase_co + (cig_i * kh * kw) in
          for khi = 0 to kh - 1 do
            let wbase_kh = wbase_ci + (khi * kw) in
            for kwi = 0 to kw - 1 do
              let wv = Array.unsafe_get wd (wbase_kh + kwi) in
              if wv <> 0.0 then
                for hoi = 0 to ho - 1 do
                  let hi = (hoi * stride) + (khi * dilation) - pad in
                  if hi >= 0 && hi < h then begin
                    let irow = ibase_ci + (hi * w) in
                    let orow = obase_co + (hoi * wo) in
                    for woi = 0 to wo - 1 do
                      let wi = (woi * stride) + (kwi * dilation) - pad in
                      if wi >= 0 && wi < w then
                        Array.unsafe_set od (orow + woi)
                          (Array.unsafe_get od (orow + woi)
                          +. (Array.unsafe_get id (irow + wi) *. wv))
                    done
                  end
                done
            done
          done
        done
      done
    done
  done;
  (match bias with
  | None -> ()
  | Some b ->
      let bd = Tensor.data b in
      for ni = 0 to n - 1 do
        for co_i = 0 to co - 1 do
          let bv = bd.(co_i) in
          if bv <> 0.0 then begin
            let base = ((ni * co) + co_i) * ho * wo in
            for i = 0 to (ho * wo) - 1 do
              Array.unsafe_set od (base + i) (Array.unsafe_get od (base + i) +. bv)
            done
          end
        done
      done);
  output

let conv2d_backward ~input ~weight ~gout params =
  let ishape = Tensor.shape input and wshape = Tensor.shape weight in
  let n = ishape.(0) and ci = ishape.(1) and h = ishape.(2) and w = ishape.(3) in
  let co = wshape.(0) and cig = wshape.(1) and kh = wshape.(2) and kw = wshape.(3) in
  let { stride; pad; groups; dilation } = params in
  let oshape = Tensor.shape gout in
  let ho = oshape.(2) and wo = oshape.(3) in
  let ginput = Tensor.zeros ishape in
  let gweight = Tensor.zeros wshape in
  let gbias = Tensor.zeros [| co |] in
  let id = Tensor.data input
  and wd = Tensor.data weight
  and god = Tensor.data gout
  and gid = Tensor.data ginput
  and gwd = Tensor.data gweight
  and gbd = Tensor.data gbias in
  let cog = co / groups in
  for ni = 0 to n - 1 do
    for g = 0 to groups - 1 do
      for cog_i = 0 to cog - 1 do
        let co_i = (g * cog) + cog_i in
        let wbase_co = co_i * cig * kh * kw in
        let obase_co = ((ni * co) + co_i) * ho * wo in
        (* Bias gradient: sum of gout over the spatial plane. *)
        let bacc = ref 0.0 in
        for i = 0 to (ho * wo) - 1 do
          bacc := !bacc +. Array.unsafe_get god (obase_co + i)
        done;
        gbd.(co_i) <- gbd.(co_i) +. !bacc;
        for cig_i = 0 to cig - 1 do
          let ci_i = (g * cig) + cig_i in
          let ibase_ci = ((ni * ci) + ci_i) * h * w in
          let wbase_ci = wbase_co + (cig_i * kh * kw) in
          for khi = 0 to kh - 1 do
            let wbase_kh = wbase_ci + (khi * kw) in
            for kwi = 0 to kw - 1 do
              let widx = wbase_kh + kwi in
              let wv = Array.unsafe_get wd widx in
              let wacc = ref 0.0 in
              for hoi = 0 to ho - 1 do
                let hi = (hoi * stride) + (khi * dilation) - pad in
                if hi >= 0 && hi < h then begin
                  let irow = ibase_ci + (hi * w) in
                  let orow = obase_co + (hoi * wo) in
                  for woi = 0 to wo - 1 do
                    let wi = (woi * stride) + (kwi * dilation) - pad in
                    if wi >= 0 && wi < w then begin
                      let gov = Array.unsafe_get god (orow + woi) in
                      wacc := !wacc +. (gov *. Array.unsafe_get id (irow + wi));
                      Array.unsafe_set gid (irow + wi)
                        (Array.unsafe_get gid (irow + wi) +. (gov *. wv))
                    end
                  done
                end
              done;
              Array.unsafe_set gwd widx (Array.unsafe_get gwd widx +. !wacc)
            done
          done
        done
      done
    done
  done;
  (ginput, gweight, gbias)

let relu t = Tensor.map (fun x -> if x > 0.0 then x else 0.0) t

let relu_backward ~input ~gout =
  Tensor.map2 (fun x g -> if x > 0.0 then g else 0.0) input gout

let sigmoid t = Tensor.map (fun x -> 1.0 /. (1.0 +. exp (-.x))) t

let sigmoid_backward ~out ~gout =
  Tensor.map2 (fun o g -> g *. o *. (1.0 -. o)) out gout

let scale_channels ~input ~gate =
  let s = Tensor.shape input in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let gs = Tensor.shape gate in
  assert (Array.length gs = 2 && gs.(0) = n && gs.(1) = c);
  let out = Tensor.zeros s in
  let id = Tensor.data input and gd = Tensor.data gate and od = Tensor.data out in
  let plane = h * w in
  for nc = 0 to (n * c) - 1 do
    let g = gd.(nc) in
    let base = nc * plane in
    for i = 0 to plane - 1 do
      Array.unsafe_set od (base + i) (Array.unsafe_get id (base + i) *. g)
    done
  done;
  out

let scale_channels_backward ~input ~gate ~gout =
  let s = Tensor.shape input in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let ginput = Tensor.zeros s in
  let ggate = Tensor.zeros [| n; c |] in
  let id = Tensor.data input
  and gd = Tensor.data gate
  and god = Tensor.data gout
  and gid = Tensor.data ginput
  and ggd = Tensor.data ggate in
  let plane = h * w in
  for nc = 0 to (n * c) - 1 do
    let g = gd.(nc) in
    let base = nc * plane in
    let acc = ref 0.0 in
    for i = 0 to plane - 1 do
      let go = Array.unsafe_get god (base + i) in
      Array.unsafe_set gid (base + i) (go *. g);
      acc := !acc +. (go *. Array.unsafe_get id (base + i))
    done;
    ggd.(nc) <- !acc
  done;
  (ginput, ggate)

let max_pool2d t ~size ~stride ~pad =
  let s = Tensor.shape t in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let ho = conv_out_dim h ~k:size ~stride ~pad in
  let wo = conv_out_dim w ~k:size ~stride ~pad in
  let out = Tensor.zeros [| n; c; ho; wo |] in
  let indices = Array.make (Tensor.numel out) (-1) in
  let td = Tensor.data t and od = Tensor.data out in
  let oi = ref 0 in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * h * w in
      for hoi = 0 to ho - 1 do
        for woi = 0 to wo - 1 do
          let best = ref neg_infinity and best_idx = ref (-1) in
          for dh = 0 to size - 1 do
            let hi = (hoi * stride) + dh - pad in
            if hi >= 0 && hi < h then
              for dw = 0 to size - 1 do
                let wi = (woi * stride) + dw - pad in
                if wi >= 0 && wi < w then begin
                  let idx = base + (hi * w) + wi in
                  let v = Array.unsafe_get td idx in
                  if v > !best then begin
                    best := v;
                    best_idx := idx
                  end
                end
              done
          done;
          od.(!oi) <- (if !best_idx >= 0 then !best else 0.0);
          indices.(!oi) <- !best_idx;
          incr oi
        done
      done
    done
  done;
  (out, indices)

let max_pool2d_backward ~input ~gout ~indices =
  let gin = Tensor.zeros (Tensor.shape input) in
  let gd = Tensor.data gin and god = Tensor.data gout in
  Array.iteri (fun oi idx -> if idx >= 0 then gd.(idx) <- gd.(idx) +. god.(oi)) indices;
  gin

let avg_pool2d t ~size ~stride ~pad =
  let s = Tensor.shape t in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let ho = conv_out_dim h ~k:size ~stride ~pad in
  let wo = conv_out_dim w ~k:size ~stride ~pad in
  let out = Tensor.zeros [| n; c; ho; wo |] in
  let td = Tensor.data t and od = Tensor.data out in
  let inv = 1.0 /. float_of_int (size * size) in
  let oi = ref 0 in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * h * w in
      for hoi = 0 to ho - 1 do
        for woi = 0 to wo - 1 do
          let acc = ref 0.0 in
          for dh = 0 to size - 1 do
            let hi = (hoi * stride) + dh - pad in
            if hi >= 0 && hi < h then
              for dw = 0 to size - 1 do
                let wi = (woi * stride) + dw - pad in
                if wi >= 0 && wi < w then
                  acc := !acc +. Array.unsafe_get td (base + (hi * w) + wi)
              done
          done;
          od.(!oi) <- !acc *. inv;
          incr oi
        done
      done
    done
  done;
  out

let avg_pool2d_backward ~input ~gout ~size ~stride ~pad =
  let s = Tensor.shape input in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let os = Tensor.shape gout in
  let ho = os.(2) and wo = os.(3) in
  let gin = Tensor.zeros s in
  let gd = Tensor.data gin and god = Tensor.data gout in
  let inv = 1.0 /. float_of_int (size * size) in
  let oi = ref 0 in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * h * w in
      for hoi = 0 to ho - 1 do
        for woi = 0 to wo - 1 do
          let g = god.(!oi) *. inv in
          for dh = 0 to size - 1 do
            let hi = (hoi * stride) + dh - pad in
            if hi >= 0 && hi < h then
              for dw = 0 to size - 1 do
                let wi = (woi * stride) + dw - pad in
                if wi >= 0 && wi < w then begin
                  let idx = base + (hi * w) + wi in
                  gd.(idx) <- gd.(idx) +. g
                end
              done
          done;
          incr oi
        done
      done
    done
  done;
  gin

let upsample_nearest t f =
  assert (f >= 1);
  let s = Tensor.shape t in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let out = Tensor.zeros [| n; c; h * f; w * f |] in
  let td = Tensor.data t and od = Tensor.data out in
  let wf = w * f in
  for nc = 0 to (n * c) - 1 do
    let ibase = nc * h * w and obase = nc * h * f * wf in
    for ho = 0 to (h * f) - 1 do
      let irow = ibase + (ho / f * w) and orow = obase + (ho * wf) in
      for wo = 0 to wf - 1 do
        Array.unsafe_set od (orow + wo) (Array.unsafe_get td (irow + (wo / f)))
      done
    done
  done;
  out

let upsample_nearest_backward ~input ~gout f =
  let s = Tensor.shape input in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let gin = Tensor.zeros s in
  let gd = Tensor.data gin and god = Tensor.data gout in
  let wf = w * f in
  for nc = 0 to (n * c) - 1 do
    let ibase = nc * h * w and obase = nc * h * f * wf in
    for ho = 0 to (h * f) - 1 do
      let irow = ibase + (ho / f * w) and orow = obase + (ho * wf) in
      for wo = 0 to wf - 1 do
        let idx = irow + (wo / f) in
        gd.(idx) <- gd.(idx) +. Array.unsafe_get god (orow + wo)
      done
    done
  done;
  gin

let global_avg_pool t =
  let s = Tensor.shape t in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let out = Tensor.zeros [| n; c |] in
  let td = Tensor.data t and od = Tensor.data out in
  let inv = 1.0 /. float_of_int (h * w) in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * h * w in
      let acc = ref 0.0 in
      for i = 0 to (h * w) - 1 do
        acc := !acc +. Array.unsafe_get td (base + i)
      done;
      od.((ni * c) + ci) <- !acc *. inv
    done
  done;
  out

let global_avg_pool_backward ~input ~gout =
  let s = Tensor.shape input in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let gin = Tensor.zeros s in
  let gd = Tensor.data gin and god = Tensor.data gout in
  let inv = 1.0 /. float_of_int (h * w) in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let g = god.((ni * c) + ci) *. inv in
      let base = ((ni * c) + ci) * h * w in
      for i = 0 to (h * w) - 1 do
        gd.(base + i) <- g
      done
    done
  done;
  gin

let linear ~input ~weight ~bias =
  let is = Tensor.shape input and ws = Tensor.shape weight in
  let n = is.(0) and f = is.(1) in
  let out_dim = ws.(0) in
  assert (ws.(1) = f);
  let out = Tensor.zeros [| n; out_dim |] in
  let id = Tensor.data input
  and wd = Tensor.data weight
  and bd = Tensor.data bias
  and od = Tensor.data out in
  for ni = 0 to n - 1 do
    let ibase = ni * f in
    for oi = 0 to out_dim - 1 do
      let wbase = oi * f in
      let acc = ref bd.(oi) in
      for fi = 0 to f - 1 do
        acc := !acc +. (Array.unsafe_get id (ibase + fi) *. Array.unsafe_get wd (wbase + fi))
      done;
      od.((ni * out_dim) + oi) <- !acc
    done
  done;
  out

let linear_backward ~input ~weight ~gout =
  let is = Tensor.shape input and ws = Tensor.shape weight in
  let n = is.(0) and f = is.(1) in
  let out_dim = ws.(0) in
  let ginput = Tensor.zeros is in
  let gweight = Tensor.zeros ws in
  let gbias = Tensor.zeros [| out_dim |] in
  let id = Tensor.data input
  and wd = Tensor.data weight
  and god = Tensor.data gout
  and gid = Tensor.data ginput
  and gwd = Tensor.data gweight
  and gbd = Tensor.data gbias in
  for ni = 0 to n - 1 do
    let ibase = ni * f in
    for oi = 0 to out_dim - 1 do
      let g = god.((ni * out_dim) + oi) in
      gbd.(oi) <- gbd.(oi) +. g;
      let wbase = oi * f in
      for fi = 0 to f - 1 do
        Array.unsafe_set gid (ibase + fi)
          (Array.unsafe_get gid (ibase + fi) +. (g *. Array.unsafe_get wd (wbase + fi)));
        Array.unsafe_set gwd (wbase + fi)
          (Array.unsafe_get gwd (wbase + fi) +. (g *. Array.unsafe_get id (ibase + fi)))
      done
    done
  done;
  (ginput, gweight, gbias)

type bn_cache = {
  bn_input : Tensor.t;
  bn_gamma : Tensor.t;
  bn_mean : float array;
  bn_inv_std : float array;
  bn_xhat : Tensor.t;
}

let batch_norm ~input ~gamma ~beta ~eps =
  let s = Tensor.shape input in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let count = float_of_int (n * h * w) in
  let mean = Array.make c 0.0 and var = Array.make c 0.0 in
  let id = Tensor.data input in
  for ci = 0 to c - 1 do
    let acc = ref 0.0 in
    for ni = 0 to n - 1 do
      let base = ((ni * c) + ci) * h * w in
      for i = 0 to (h * w) - 1 do
        acc := !acc +. Array.unsafe_get id (base + i)
      done
    done;
    mean.(ci) <- !acc /. count
  done;
  for ci = 0 to c - 1 do
    let m = mean.(ci) in
    let acc = ref 0.0 in
    for ni = 0 to n - 1 do
      let base = ((ni * c) + ci) * h * w in
      for i = 0 to (h * w) - 1 do
        let d = Array.unsafe_get id (base + i) -. m in
        acc := !acc +. (d *. d)
      done
    done;
    var.(ci) <- !acc /. count
  done;
  let inv_std = Array.map (fun v -> 1.0 /. sqrt (v +. eps)) var in
  let xhat = Tensor.zeros s in
  let out = Tensor.zeros s in
  let xd = Tensor.data xhat and od = Tensor.data out in
  let gd = Tensor.data gamma and bd = Tensor.data beta in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * h * w in
      let m = mean.(ci) and is = inv_std.(ci) in
      let g = gd.(ci) and b = bd.(ci) in
      for i = 0 to (h * w) - 1 do
        let xh = (Array.unsafe_get id (base + i) -. m) *. is in
        Array.unsafe_set xd (base + i) xh;
        Array.unsafe_set od (base + i) ((g *. xh) +. b)
      done
    done
  done;
  (out, { bn_input = input; bn_gamma = gamma; bn_mean = mean; bn_inv_std = inv_std; bn_xhat = xhat })

let batch_norm_backward ~gout ~cache =
  let s = Tensor.shape cache.bn_input in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let count = float_of_int (n * h * w) in
  let ginput = Tensor.zeros s in
  let ggamma = Tensor.zeros [| c |] in
  let gbeta = Tensor.zeros [| c |] in
  let god = Tensor.data gout
  and xd = Tensor.data cache.bn_xhat
  and gid = Tensor.data ginput
  and ggd = Tensor.data ggamma
  and gbd = Tensor.data gbeta
  and gd = Tensor.data cache.bn_gamma in
  (* Standard batch-norm backward: per channel compute sum(g) and
     sum(g * xhat), then
     dx = gamma * inv_std / m * (m*g - sum(g) - xhat * sum(g*xhat)). *)
  for ci = 0 to c - 1 do
    let sum_g = ref 0.0 and sum_gx = ref 0.0 in
    for ni = 0 to n - 1 do
      let base = ((ni * c) + ci) * h * w in
      for i = 0 to (h * w) - 1 do
        let g = Array.unsafe_get god (base + i) in
        sum_g := !sum_g +. g;
        sum_gx := !sum_gx +. (g *. Array.unsafe_get xd (base + i))
      done
    done;
    ggd.(ci) <- !sum_gx;
    gbd.(ci) <- !sum_g;
    let coeff = gd.(ci) *. cache.bn_inv_std.(ci) /. count in
    for ni = 0 to n - 1 do
      let base = ((ni * c) + ci) * h * w in
      for i = 0 to (h * w) - 1 do
        let g = Array.unsafe_get god (base + i) in
        let xh = Array.unsafe_get xd (base + i) in
        Array.unsafe_set gid (base + i)
          (coeff *. ((count *. g) -. !sum_g -. (xh *. !sum_gx)))
      done
    done
  done;
  (ginput, ggamma, gbeta)

let concat_channels parts =
  match parts with
  | [] -> invalid_arg "concat_channels: empty"
  | first :: _ ->
      let s = Tensor.shape first in
      let n = s.(0) and h = s.(2) and w = s.(3) in
      let total_c = List.fold_left (fun acc t -> acc + (Tensor.shape t).(1)) 0 parts in
      let out = Tensor.zeros [| n; total_c; h; w |] in
      let od = Tensor.data out in
      let plane = h * w in
      for ni = 0 to n - 1 do
        let coff = ref 0 in
        List.iter
          (fun t ->
            let c = (Tensor.shape t).(1) in
            let td = Tensor.data t in
            Array.blit td (ni * c * plane) od (((ni * total_c) + !coff) * plane) (c * plane);
            coff := !coff + c)
          parts
      done;
      out

let split_channels_backward ~gout ~parts =
  let s = Tensor.shape gout in
  let n = s.(0) and total_c = s.(1) and h = s.(2) and w = s.(3) in
  assert (List.fold_left ( + ) 0 parts = total_c);
  let plane = h * w in
  let god = Tensor.data gout in
  let offsets =
    List.fold_left (fun (acc, off) c -> ((off, c) :: acc, off + c)) ([], 0) parts
    |> fst |> List.rev
  in
  List.map
    (fun (off, c) ->
      let g = Tensor.zeros [| n; c; h; w |] in
      let gd = Tensor.data g in
      for ni = 0 to n - 1 do
        Array.blit god (((ni * total_c) + off) * plane) gd (ni * c * plane) (c * plane)
      done;
      g)
    offsets

let softmax_cross_entropy ~logits ~labels =
  let s = Tensor.shape logits in
  let n = s.(0) and k = s.(1) in
  assert (Array.length labels = n);
  let ld = Tensor.data logits in
  let grad = Tensor.zeros s in
  let gd = Tensor.data grad in
  let loss = ref 0.0 in
  for ni = 0 to n - 1 do
    let base = ni * k in
    let mx = ref ld.(base) in
    for ki = 1 to k - 1 do
      if ld.(base + ki) > !mx then mx := ld.(base + ki)
    done;
    let denom = ref 0.0 in
    for ki = 0 to k - 1 do
      denom := !denom +. exp (ld.(base + ki) -. !mx)
    done;
    let log_denom = log !denom in
    let label = labels.(ni) in
    loss := !loss -. (ld.(base + label) -. !mx -. log_denom);
    for ki = 0 to k - 1 do
      let p = exp (ld.(base + ki) -. !mx -. log_denom) in
      gd.(base + ki) <- (p -. (if ki = label then 1.0 else 0.0)) /. float_of_int n
    done
  done;
  (!loss /. float_of_int n, grad)

let accuracy ~logits ~labels =
  let s = Tensor.shape logits in
  let n = s.(0) and k = s.(1) in
  let ld = Tensor.data logits in
  let correct = ref 0 in
  for ni = 0 to n - 1 do
    let base = ni * k in
    let best = ref 0 in
    for ki = 1 to k - 1 do
      if ld.(base + ki) > ld.(base + !best) then best := ki
    done;
    if !best = labels.(ni) then incr correct
  done;
  float_of_int !correct /. float_of_int n

let pad_channels t c =
  let s = Tensor.shape t in
  let n = s.(0) and c0 = s.(1) and h = s.(2) and w = s.(3) in
  assert (c >= c0);
  if c = c0 then t
  else begin
    let out = Tensor.zeros [| n; c; h; w |] in
    let td = Tensor.data t and od = Tensor.data out in
    let plane = h * w in
    for ni = 0 to n - 1 do
      Array.blit td (ni * c0 * plane) od (ni * c * plane) (c0 * plane)
    done;
    out
  end
