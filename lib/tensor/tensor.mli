(** Dense float tensors.

    A tensor is a flat [float array] with a shape.  Indexing is row-major
    (C order); the convolution code uses NCHW layout for activations and
    OIHW for weights.  All operations allocate fresh tensors unless the name
    ends in [_] (in-place). *)

type t = private { shape : int array; data : float array }

val create : int array -> float -> t
(** [create shape v] is a tensor of the given shape filled with [v]. *)

val zeros : int array -> t
(** [create shape 0.0]. *)

val ones : int array -> t
(** [create shape 1.0]. *)

val init : int array -> (int array -> float) -> t
(** [init shape f] fills each cell from its multi-index. *)

val of_array : int array -> float array -> t
(** Wraps a flat array; the length must match the shape product. *)

val scalar : float -> t
(** Rank-0 tensor. *)

val shape : t -> int array
(** The dimension sizes (do not mutate the returned array). *)

val data : t -> float array
(** The flat row-major backing store (shared, not a copy). *)

val numel : t -> int
(** Total element count (the shape product). *)

val ndim : t -> int
(** Rank: number of dimensions. *)

val dim : t -> int -> int
(** [dim t i] is the size of dimension [i]. *)

val same_shape : t -> t -> bool
(** Whether two tensors have identical shapes (element-wise). *)

val get : t -> int array -> float
(** Read one cell by multi-index (row-major). *)

val set : t -> int array -> float -> unit
(** Write one cell by multi-index (row-major). *)

val get1 : t -> int -> float
(** Flat-index read. *)

val set1 : t -> int -> float -> unit
(** Flat-index write. *)

val reshape : t -> int array -> t
(** Shares the underlying data; the element count must be preserved. *)

val copy : t -> t
(** Fresh tensor with its own copy of the data. *)

val fill_ : t -> float -> unit
(** Overwrite every cell in place. *)

val blit : src:t -> dst:t -> unit
(** Copy [src]'s data into [dst] (shapes must match). *)

val map : (float -> float) -> t -> t
(** Element-wise transform into a fresh tensor. *)

val map2 : (float -> float -> float) -> t -> t -> t
(** Element-wise combination of two same-shape tensors. *)

val iteri_flat : (int -> float -> unit) -> t -> unit
(** Iterate cells with their flat (row-major) index. *)

val add : t -> t -> t
(** Element-wise sum (fresh tensor; shapes must match). *)

val sub : t -> t -> t
(** Element-wise difference (fresh tensor; shapes must match). *)

val mul : t -> t -> t
(** Element-wise (Hadamard) product (fresh tensor; shapes must match). *)

val scale : float -> t -> t
(** Multiply every cell by a scalar (fresh tensor). *)

val add_ : t -> t -> unit
(** [add_ dst src] accumulates [src] into [dst]. *)

val axpy_ : alpha:float -> x:t -> y:t -> unit
(** [axpy_ ~alpha ~x ~y] does y <- y + alpha * x in place. *)

val sum : t -> float
val mean : t -> float
(** Arithmetic mean over all cells (0 on an empty tensor). *)

val max_value : t -> float
(** Largest cell value. *)

val argmax_flat : t -> int
(** Flat (row-major) index of the largest cell — the classifier's
    predicted label when applied to a logit vector. *)

val sq_norm : t -> float
(** Sum of squared entries. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Shape equality plus element-wise comparison within [tol] (default 1e-6). *)

val rand_uniform : Rng.t -> int array -> lo:float -> hi:float -> t
val rand_normal : Rng.t -> int array -> mean:float -> std:float -> t
(** Gaussian-filled tensor (Box–Muller draws from the given [Rng.t]). *)

val kaiming : Rng.t -> int array -> fan_in:int -> t
(** He-normal initialization used for all conv and linear weights. *)

val pp : Format.formatter -> t -> unit
(** Shape and a few leading values, for debugging. *)
