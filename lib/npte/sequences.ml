type t =
  | Plain_group of int
  | Plain_bottleneck of int
  | Plain_depthwise
  | Seq1 of { g : int; split : int }
  | Seq2 of { g : int; unroll : int }
  | Seq3 of { g1 : int; g2 : int }
  | Spatial_bneck of int

let name = function
  | Plain_group g -> Printf.sprintf "group(G=%d)" g
  | Plain_bottleneck b -> Printf.sprintf "bottleneck(B=%d)" b
  | Plain_depthwise -> "depthwise"
  | Seq1 { g; split } -> Printf.sprintf "seq1[split(%d)>int>group(%d)>int>fuse]" split g
  | Seq2 { g; unroll } -> Printf.sprintf "seq2[unroll(%d)>group(%d)>int]" unroll g
  | Seq3 { g1; g2 } -> Printf.sprintf "seq3[split>group(%d)>int>group(%d)]" g1 g2
  | Spatial_bneck b -> Printf.sprintf "spatial-bottleneck(b=%d)" b

let plan seq =
  let open Autotune in
  match seq with
  | Plain_group g -> Site_plan.make ~name:(name seq) (Conv_impl.Grouped g)
  | Plain_bottleneck b -> Site_plan.make ~name:(name seq) (Conv_impl.Bottleneck b)
  | Plain_depthwise -> Site_plan.make ~name:(name seq) Conv_impl.Depthwise_separable
  | Seq1 { g; split } ->
      Site_plan.make ~name:(name seq)
        ~hints:{ no_hints with h_spatial_split = Some split }
        (Conv_impl.Grouped g)
  | Seq2 { g; unroll } ->
      Site_plan.make ~name:(name seq)
        ~hints:{ no_hints with h_unroll_co = Some unroll }
        (Conv_impl.Grouped g)
  | Seq3 { g1; g2 } -> Site_plan.make ~name:(name seq) (Conv_impl.Split_grouped (g1, g2))
  | Spatial_bneck b -> Site_plan.make ~name:(name seq) (Conv_impl.Spatial_bottleneck b)

let valid site seq = Site_plan.valid site (plan seq)

let standard_menu site =
  List.filter (valid site)
    [ Plain_group 2; Plain_group 4; Plain_group 8; Plain_group 16;
      Plain_bottleneck 2;
      Plain_depthwise;
      Seq1 { g = 2; split = 2 }; Seq1 { g = 4; split = 2 };
      Seq2 { g = 2; unroll = 16 }; Seq2 { g = 4; unroll = 16 };
      Seq3 { g1 = 2; g2 = 4 }; Seq3 { g1 = 2; g2 = 8 }; Seq3 { g1 = 4; g2 = 8 };
      Spatial_bneck 2 ]

(* Rule inversion: enumerate every parameterization each family admits on
   this site straight from its divisor structure, instead of filtering a
   fixed list through [valid].  Each generator mirrors one arm of
   [Conv_impl.valid]; together they make [List.for_all (valid site)]
   vacuous by construction (pinned by test and fuzzer). *)
let divisors_gt1 n =
  List.filter (fun d -> n mod d = 0) (List.init (max 0 (n - 1)) (fun i -> i + 2))

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let typed_menu (site : Conv_impl.site) =
  let ci = site.Conv_impl.in_channels and co = site.Conv_impl.out_channels in
  let g0 = site.Conv_impl.groups in
  let so = Conv_impl.spatial_out site in
  (* group factors: divide both channel counts, refine the baseline grouping *)
  let group_factors =
    List.filter (fun g -> g > g0) (divisors_gt1 (gcd ci co))
  in
  let groups = List.map (fun g -> Plain_group g) group_factors in
  (* bottleneck factors: the narrowed mid-channel count must stay divisible
     by (and at least) the baseline grouping, i.e. b divides co/g0 *)
  let bottlenecks =
    if co mod g0 = 0 then
      List.map (fun b -> Plain_bottleneck b) (divisors_gt1 (co / g0))
    else []
  in
  let depthwise =
    if site.Conv_impl.kernel > 1 && g0 = 1 then [ Plain_depthwise ] else []
  in
  (* spatial bottleneck: the plane shrink must divide the output plane and
     compose with the stride *)
  let spatials =
    List.filter_map
      (fun b ->
        if site.Conv_impl.spatial_in mod (site.Conv_impl.stride * b) = 0 then
          Some (Spatial_bneck b)
        else None)
      (divisors_gt1 so)
  in
  (* hinted variants of the dominant sequences, over the same typed group
     factors *)
  let seq1s =
    if so mod 2 = 0 then List.map (fun g -> Seq1 { g; split = 2 }) group_factors
    else []
  in
  let seq2s = List.map (fun g -> Seq2 { g; unroll = 16 }) group_factors in
  (* split-grouped: per-half factors divide the input channels and the
     half output channels, and respect the baseline grouping *)
  let seq3s =
    if co mod 2 = 0 then begin
      let half = co / 2 in
      let gs =
        List.filter
          (fun g -> g >= g0)
          (1 :: divisors_gt1 (gcd ci half))
      in
      List.concat_map
        (fun g1 ->
          List.filter_map
            (fun g2 -> if g1 < g2 then Some (Seq3 { g1; g2 }) else None)
            gs)
        gs
    end
    else []
  in
  groups @ bottlenecks @ depthwise @ spatials @ seq1s @ seq2s @ seq3s

let is_dominant = function
  | Seq1 _ | Seq2 _ | Seq3 _ -> true
  | Plain_group _ | Plain_bottleneck _ | Plain_depthwise | Spatial_bneck _ -> false

(* The literal §7.3 / §5.3 transformation chains over the loop nest. *)
let schedules seq nest =
  let base = Loop_nest.baseline_schedule nest in
  match seq with
  | Plain_group g -> [ Poly.group base ~co:"co" ~ci:"ci" ~factor:g ]
  | Plain_bottleneck b -> [ Poly.bottleneck base ~iter:"co" ~factor:b ]
  | Plain_depthwise -> [ Poly.depthwise base ~co:"co" ~ci:"ci" ]
  | Seq1 { g; split } ->
      (* split the spatial domain, rotate the chunk loop outermost, group the
         channels, rotate back, fuse the spatial remainder. *)
      let s = Poly.split base ~pos:2 ~factor:split in
      let n = Poly.loop_count s in
      let to_front = Array.init n (fun i -> if i = 0 then 2 else if i <= 2 then i - 1 else i) in
      let s = Poly.reorder s to_front in
      let s = Poly.group s ~co:"co" ~ci:"ci" ~factor:g in
      (* after grouping the loop list may have changed length *)
      let n = Poly.loop_count s in
      let back = Array.init n (fun i -> if i = 0 then 1 else if i = 1 then 0 else i) in
      let s = Poly.reorder s back in
      (* fuse the split spatial chunk with its remainder when adjacent *)
      [ s ]
  | Seq2 { g; unroll } ->
      let s = Poly.group base ~co:"co" ~ci:"ci" ~factor:g in
      let s =
        match
          List.mapi (fun i l -> (i, l)) s.Poly.loops
          |> List.find_opt (fun (_, (l : Poly.loop)) ->
                 Poly.loop_extent l > 1
                 && List.exists
                      (fun (d : Poly.digit) ->
                        List.exists (fun (c : Poly.contrib) -> c.Poly.src = "co") d.Poly.contribs)
                      l.Poly.digits)
        with
        | Some (pos, _) -> Poly.unroll s ~pos ~factor:unroll
        | None -> s
      in
      [ Poly.interchange s 0 1 ]
  | Seq3 { g1; g2 } ->
      (* The output-channel domain is split in two halves, each grouped with
         its own factor; the halves are separate nests over co/2 filters. *)
      let half_nest = { nest with Loop_nest.nc_co = nest.Loop_nest.nc_co / 2 } in
      let half = Loop_nest.baseline_schedule half_nest in
      [ Poly.group half ~co:"co" ~ci:"ci" ~factor:g1;
        Poly.group half ~co:"co" ~ci:"ci" ~factor:g2 ]
  | Spatial_bneck b ->
      (* §5.3: [int -> B(b) -> int -> B(b) -> int]. *)
      let n0 = Poly.loop_count base in
      let spatial_first =
        (* move oh, ow outermost: [oh; ow; rest] *)
        let order = Array.init n0 (fun i -> [| 2; 3; 0; 1; 4; 5 |].(i)) in
        Poly.reorder base order
      in
      let s = Poly.bottleneck spatial_first ~iter:"oh" ~factor:b in
      let s = Poly.interchange s 0 1 in
      let s = Poly.bottleneck s ~iter:"ow" ~factor:b in
      let back = Array.init n0 (fun i -> [| 2; 3; 1; 0; 4; 5 |].(i)) in
      [ Poly.reorder s back ]
