type site_eval = {
  se_site : Conv_impl.site;
  se_plan : Site_plan.t;
  se_cost_s : float;
}

type evaluated = {
  ev_latency_s : float;
  ev_macs : int;
  ev_params : int;
  ev_sites : site_eval array;
  ev_fixed_cost_s : float;
}

type cache_stats = Bounded_cache.stats = {
  cs_hits : int;
  cs_misses : int;
  cs_size : int;
  cs_capacity : int;
  cs_evictions : int;
}

(* All memoization lives in the evaluation context; the wrappers below
   default to the process-wide context so legacy callers keep their exact
   behavior, and explicit-context callers (e.g. per-domain workers) get
   fully isolated caches. *)
let ctx_or_default = function Some c -> c | None -> Eval_ctx.default ()

let clear_cache () = Bounded_cache.clear (Eval_ctx.cost_cache (Eval_ctx.default ()))

let set_cache_capacity n =
  Bounded_cache.set_capacity (Eval_ctx.cost_cache (Eval_ctx.default ())) n

let cache_stats () = Bounded_cache.stats (Eval_ctx.cost_cache (Eval_ctx.default ()))

let hints_key (h : Autotune.hints) =
  Printf.sprintf "u%s.s%s"
    (match h.Autotune.h_unroll_co with None -> "-" | Some f -> string_of_int f)
    (match h.h_spatial_split with None -> "-" | Some f -> string_of_int f)

let workload_key dev (w : Conv_impl.workload) hints =
  Printf.sprintf "%s|%d.%d.%d.%d.%d.%d|%s" dev.Device.short_name
    w.Conv_impl.w_in_channels w.w_out_channels w.w_kernel w.w_stride w.w_groups
    w.w_spatial (hints_key hints)

let workload_cost ?ctx ?(hints = Autotune.no_hints) dev w =
  let ctx = ctx_or_default ctx in
  let key = workload_key dev w hints in
  Bounded_cache.remember (Eval_ctx.cost_cache ctx) key (fun () ->
      (* Only memo misses pay the autotuner sweep, so this is the
         cost-model latency worth observing; clock reads are no-ops on a
         disabled recorder. *)
      let obs = Eval_ctx.obs ctx in
      let t0 = Obs.now obs in
      let out_sp = Conv_impl.workload_out_spatial w in
      let nest =
        Loop_nest.conv_nest_of_dims ~co:w.Conv_impl.w_out_channels
          ~ci:w.w_in_channels ~oh:out_sp ~ow:out_sp ~k:w.w_kernel ~stride:w.w_stride
          ~groups:w.w_groups
      in
      let _, breakdown = Autotune.tune ~hints dev nest in
      Eval_ctx.note_tune ctx (Autotune.configurations_tried dev nest);
      if not (Cost_model.is_finite breakdown) then
        Nas_error.fail (Nas_error.Non_finite Nas_error.Cost_model);
      let elems = w.w_out_channels * out_sp * out_sp in
      let cost = breakdown.Cost_model.total_s +. Cost_model.elementwise_time dev ~elems in
      let cost = Guard.check_float ~source:Nas_error.Cost_model cost in
      Obs.incr obs "pipeline.cost_evals";
      Obs.observe obs "time.cost_model_s" (Obs.now obs -. t0);
      cost)

let site_cost ?ctx dev site (plan : Site_plan.t) =
  let ctx = ctx_or_default ctx in
  if not (Site_plan.valid site plan) then
    Nas_error.invalid_plan "site_cost: plan %s invalid for %s" plan.Site_plan.sp_name
      site.Conv_impl.site_label;
  List.fold_left
    (fun acc w -> acc +. workload_cost ~ctx ~hints:plan.Site_plan.sp_hints dev w)
    0.0
    (Conv_impl.workloads site plan.Site_plan.sp_impl)

(* Candidate-independent evaluation state, built once per search instead
   of once per candidate: the paper-scaled sites and the fixed (untrans-
   formable) workload list with its MAC/param totals.  Only the plan-
   dependent parts remain in the per-candidate path. *)
type prepared = {
  pp_sites : Conv_impl.site array;
  pp_fixed : Conv_impl.workload list;
  pp_fixed_macs : int;
  pp_fixed_params : int;
}

let prepare model =
  let pp_sites = Array.map (Models.scale_site model) model.Models.sites in
  (* Paper-scale fixed workloads = the fixed prefix of cost_workloads. *)
  let pp_fixed =
    let n_fixed = List.length model.Models.fixed_workloads in
    List.filteri (fun i _ -> i < n_fixed) (Models.cost_workloads model)
  in
  { pp_sites;
    pp_fixed;
    pp_fixed_macs =
      List.fold_left (fun acc w -> acc + Conv_impl.workload_macs w) 0 pp_fixed;
    pp_fixed_params =
      List.fold_left
        (fun acc w ->
          acc
          + (w.Conv_impl.w_in_channels * w.w_out_channels * w.w_kernel * w.w_kernel
            / w.w_groups))
        0 pp_fixed }

let evaluate_prepared ?ctx dev prep ~plans =
  let ctx = ctx_or_default ctx in
  if Array.length plans <> Array.length prep.pp_sites then
    Nas_error.shape_mismatch "evaluate: %d plans for %d sites (one plan per site)"
      (Array.length plans) (Array.length prep.pp_sites);
  let fixed_cost =
    List.fold_left (fun acc w -> acc +. workload_cost ~ctx dev w) 0.0 prep.pp_fixed
  in
  let site_evals =
    Array.mapi
      (fun i site ->
        { se_site = site;
          se_plan = plans.(i);
          se_cost_s = site_cost ~ctx dev site plans.(i) })
      prep.pp_sites
  in
  let latency =
    fixed_cost +. Array.fold_left (fun acc se -> acc +. se.se_cost_s) 0.0 site_evals
  in
  let macs =
    Array.fold_left
      (fun acc se -> acc + Conv_impl.macs se.se_site se.se_plan.Site_plan.sp_impl)
      prep.pp_fixed_macs site_evals
  in
  let params =
    Array.fold_left
      (fun acc se -> acc + Conv_impl.param_count se.se_site se.se_plan.Site_plan.sp_impl)
      prep.pp_fixed_params site_evals
  in
  { ev_latency_s = latency;
    ev_macs = macs;
    ev_params = params;
    ev_sites = site_evals;
    ev_fixed_cost_s = fixed_cost }

let evaluate ?ctx dev model ~plans = evaluate_prepared ?ctx dev (prepare model) ~plans

let baseline ?ctx dev model =
  evaluate ?ctx dev model
    ~plans:(Array.map (fun _ -> Site_plan.baseline) model.Models.sites)

let of_impls model = Array.map (fun impl -> Site_plan.make impl) model.Models.impls
