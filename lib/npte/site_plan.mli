(** A per-site optimization decision of the unified search.

    A plan couples the *neural* side of a transformation sequence (the
    structural {!Conv_impl.t} the site is rewritten to) with the *schedule*
    side (the {!Autotune.hints} that seed the autotuner's template, e.g. the
    pre-unroll of sequence 2 or the spatial split of sequence 1). *)

type t = {
  sp_impl : Conv_impl.t;
  sp_hints : Autotune.hints;
  sp_name : string;
}

val baseline : t
(** The untransformed site: [Full], no hints. *)

val make : ?hints:Autotune.hints -> ?name:string -> Conv_impl.t -> t

val valid : Conv_impl.site -> t -> bool
(** Whether the plan's implementation satisfies {!Conv_impl.valid} at the
    site — the dynamic counterpart of [Shape_infer.check_impl]. *)

val pp : Format.formatter -> t -> unit
(** Prints the plan's name. *)
