(** The unified compile pipeline: network + per-site plans -> predicted
    hardware latency (and size/MAC accounting) on a device.

    Every convolution workload of the (paper-scale) network is lowered to a
    loop nest, the plan's schedule hints are applied, the autotuner sweeps
    its parameter grid under the analytic cost model, and the best schedule's
    latency is kept.  Results are memoized on workload dimensions in the
    {!Eval_ctx.t} the caller passes; without one, the process-wide default
    context is used, so the legacy (context-free) arity behaves exactly as
    before.  Because all memoization lives in the context, evaluation is
    reentrant and safe to run on per-domain context forks. *)

type site_eval = {
  se_site : Conv_impl.site;  (** paper-scale dimensions *)
  se_plan : Site_plan.t;
  se_cost_s : float;
}

type evaluated = {
  ev_latency_s : float;  (** whole-network latency, batch 1 *)
  ev_macs : int;  (** paper-scale MACs under the plans *)
  ev_params : int;  (** paper-scale convolution weights under the plans *)
  ev_sites : site_eval array;
  ev_fixed_cost_s : float;
}

val workload_cost :
  ?ctx:Eval_ctx.t -> ?hints:Autotune.hints -> Device.t -> Conv_impl.workload -> float
(** Autotuned latency of one convolution plus its fused elementwise
    (batch-norm + ReLU) pass.  Memoized in [ctx] (default: the process
    default context).  A non-finite cost-model output raises
    {!Nas_error.Fail}[ (Non_finite Cost_model)] (and is never cached). *)

val site_cost : ?ctx:Eval_ctx.t -> Device.t -> Conv_impl.site -> Site_plan.t -> float
(** Cost of one (paper-scale) site under a plan: the sum over the plan's
    realized convolutions.  Raises {!Nas_error.Fail}[ (Invalid_plan _)] on
    a plan inapplicable to the site. *)

type prepared
(** Candidate-independent evaluation state: the paper-scaled sites and the
    fixed-workload list with its MAC/param totals.  Building it is pure
    per-model work — hoist it out of a candidate loop with {!prepare} and
    reuse it for every {!evaluate_prepared} call. *)

val prepare : Models.t -> prepared
(** Precompute the model's scaled sites and fixed workloads once.  The
    result is immutable and safe to share across worker domains. *)

val evaluate_prepared :
  ?ctx:Eval_ctx.t -> Device.t -> prepared -> plans:Site_plan.t array -> evaluated
(** {!evaluate} against a {!prepared} model — bit-identical results, but
    the per-model setup is paid once instead of once per candidate.
    Raises {!Nas_error.Fail}[ (Shape_mismatch _)] unless there is exactly
    one plan per site. *)

val evaluate :
  ?ctx:Eval_ctx.t -> Device.t -> Models.t -> plans:Site_plan.t array -> evaluated
(** Evaluate the model with one plan per transformable site (a {!prepare}
    plus {!evaluate_prepared} in one call).  Raises
    {!Nas_error.Fail}[ (Shape_mismatch _)] unless there is exactly one plan
    per site. *)

val baseline : ?ctx:Eval_ctx.t -> Device.t -> Models.t -> evaluated
(** [evaluate] with every site at {!Site_plan.baseline}. *)

val of_impls : Models.t -> Site_plan.t array
(** Plans matching the model's current implementation assignment (used to
    cost a BlockSwap/FBNet-mutated model, which carries no schedule
    hints). *)

(* --- legacy cache controls (operate on the default context) ------------ *)

val clear_cache : unit -> unit

type cache_stats = Bounded_cache.stats = {
  cs_hits : int;
  cs_misses : int;
  cs_size : int;
  cs_capacity : int;
  cs_evictions : int;
}

val cache_stats : unit -> cache_stats
(** Hit/miss/size/eviction counters of the default context's workload memo
    cache, for the supervisor's report.  Explicit-context callers should
    use {!Eval_ctx.cost_stats} instead. *)

val set_cache_capacity : int -> unit
(** Bound the default context's memo cache (entries beyond the cap are
    evicted FIFO).  Default 8192; clamped to at least 1. *)
