(** The named transformation sequences of the paper.

    §7.3 identifies three interleaved sequences that dominate the best
    networks, and §5.3 derives the spatial bottleneck from primitive
    transformations.  Each sequence is given here twice over:

    - [plan] — the {!Site_plan.t} the search and the compile pipeline use
      (structural rewrite + schedule hints);
    - [schedules] — the literal chain of {!Poly} transformations applied to
      a convolution's loop nest, so the derivation itself is executable and
      testable (the loop-IR test-suite checks the semantics of each). *)

type t =
  | Plain_group of int  (** the NAS grouping operation *)
  | Plain_bottleneck of int
  | Plain_depthwise
  | Seq1 of { g : int; split : int }
      (** [split -> interchange -> group -> interchange -> fuse]: grouping
          over a split spatial domain *)
  | Seq2 of { g : int; unroll : int }
      (** [unroll -> group -> interchange]: output channels unrolled, the
          remaining domain grouped *)
  | Seq3 of { g1 : int; g2 : int }
      (** [split -> group -> interchange -> group]: different grouping
          factors on the two halves of the output-channel domain *)
  | Spatial_bneck of int
      (** §5.3: interchange/bottleneck chain over the spatial iterators *)

val name : t -> string

val plan : t -> Site_plan.t
(** The {!Site_plan.t} realising the sequence: the structural rewrite
    plus the schedule hints it seeds the autotuner with. *)

val valid : Conv_impl.site -> t -> bool
(** Whether the sequence's structural rewrite is applicable to the site
    (delegates to {!Site_plan.valid} on {!plan}). *)

val standard_menu : Conv_impl.site -> t list
(** Every named sequence, with its standard parameters (§7.3 uses g=2,
    unroll=16, g1=2/g2=4), filtered to those valid for the site. *)

val typed_menu : Conv_impl.site -> t list
(** The site's full typed choice space, by rule inversion: every factor a
    family admits is enumerated directly from the site's divisor structure
    (group factors over divisors of gcd(ci,co) refining the baseline
    grouping, bottleneck factors over divisors of co/groups, spatial
    shrinks over divisors of the output plane, split-grouped pairs over
    per-half divisors), so every entry is valid by construction — no
    rejection filtering.  Strictly contains the [valid] subset of
    {!standard_menu}'s fixed parameterizations. *)

val schedules : t -> Loop_nest.conv_nest -> Poly.t list
(** The literal transformation chain applied to the nest's baseline
    schedule.  [Seq3] returns two schedules (one per output-channel half);
    every other sequence returns one. *)

val is_dominant : t -> bool
(** True for the three §7.3 sequences. *)
