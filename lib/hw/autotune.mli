(** Schedule templates and parameter auto-tuning (the stand-in for TVM's
    default schedules + auto-tuning, §6).

    A template turns a base schedule (which may already carry neural
    transformations and the Table-1 hint annotations of the §7.3 sequences)
    into a device-appropriate concrete schedule: CPU templates reorder the
    nest parallel-loops-outermost, tile the spatial loops, vectorize the
    innermost loop and unroll; GPU templates additionally map loops onto the
    block/thread grid.  [tune] sweeps the template's parameter grid under
    the cost model and keeps the best configuration. *)

type hints = {
  h_unroll_co : int option;
      (** §7.3 sequence 2: pre-unroll the output-channel loop *)
  h_spatial_split : int option;
      (** §7.3 sequence 1: split the spatial domain and expose the chunk
          loop as an extra outer parallel loop *)
}

val no_hints : hints
(** Both hints absent — the plain template without the §7.3 annotations. *)

val default_schedule : Device.t -> Loop_nest.conv_nest -> Poly.t
(** The fixed "TVM default schedule" template instantiated with middle-of-
    the-road parameters (no tuning). *)

val tune :
  ?hints:hints ->
  ?base:Poly.t ->
  Device.t ->
  Loop_nest.conv_nest ->
  Poly.t * Cost_model.breakdown
(** Sweeps tile / unroll / thread-count parameters on top of [base]
    (default: the nest's baseline schedule) and returns the best schedule
    with its predicted cost.  The base schedule's neural transformations are
    preserved. *)

val configurations_tried : Device.t -> Loop_nest.conv_nest -> int
(** Size of the parameter grid [tune] sweeps (for the search-time
    accounting of §7.2). *)
