(** Parameterized models of the paper's four evaluation platforms (§6.1):
    an Intel Core i7 (CPU), an Nvidia GTX 1080 Ti (GPU), an ARM Cortex-A57
    (mCPU) and the Jetson Nano's 128-core Maxwell (mGPU).

    The container has no such hardware, so the experiments run against these
    analytic descriptions.  The parameters are taken from public spec sheets;
    what the experiments rely on is the *relative* behaviour they induce
    (compute-bound vs memory-bound, kernel-launch overheads dominating small
    convolutions on the mGPU, narrow vectors on the A57, ...). *)

type cache = {
  c_size : int;  (** bytes *)
  c_line : int;  (** bytes *)
  c_assoc : int;
}

type cpu = {
  cores : int;
  vector_width : int;  (** floats per SIMD lane group *)
  fma_per_cycle : int;  (** vector FMAs issued per cycle per core *)
  freq_ghz : float;
  caches : cache list;  (** L1 first *)
  mem_bw_gbs : float;
  op_overhead_us : float;  (** per-operator dispatch overhead *)
}

type gpu = {
  sms : int;
  cores_per_sm : int;
  g_freq_ghz : float;
  warp : int;
  max_threads_per_sm : int;
  l2 : cache;
  g_mem_bw_gbs : float;
  launch_overhead_us : float;  (** per-kernel launch cost *)
}

type kind = Cpu of cpu | Gpu of gpu

type t = {
  dev_name : string;
  short_name : string;
  kind : kind;
}

val i7 : t
(** The desktop CPU (Intel Core i7-6700K class): 4 wide-vector cores, a
    three-level cache hierarchy — short name ["CPU"]. *)

val gtx1080ti : t
(** The desktop GPU (Nvidia GTX 1080 Ti): 28 SMs, high bandwidth, and a
    per-kernel launch overhead — short name ["GPU"]. *)

val arm_a57 : t
(** The mobile CPU (ARM Cortex-A57): narrow vectors, small caches and
    modest memory bandwidth — short name ["mCPU"]. *)

val maxwell_mgpu : t
(** The mobile GPU (Jetson Nano's 128-core Maxwell): one SM, shared DRAM,
    launch overhead dominating small kernels — short name ["mGPU"]. *)

val all : t list
(** The four platforms, in the paper's (CPU, GPU, mCPU, mGPU) order. *)

val by_name : string -> t option

val peak_gflops : t -> float
(** Peak single-precision MAC throughput, in GFLOP/s (2 flops per MAC). *)

val pp : Format.formatter -> t -> unit
