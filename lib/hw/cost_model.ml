type breakdown = {
  compute_s : float;
  memory_s : float;
  overhead_s : float;
  total_s : float;
  dram_bytes : float;
  parallel_speedup : float;
  vector_eff : float;
}

let is_finite b =
  Float.is_finite b.total_s && Float.is_finite b.compute_s
  && Float.is_finite b.memory_s && Float.is_finite b.overhead_s
  && Float.is_finite b.dram_bytes

(* A level is one digit of the schedule, flattened outermost-first, carrying
   its owning loop's annotations. *)
type level = {
  lv_iters : (string * int) list;  (* (iterator, weight) *)
  lv_extent : int;
  lv_unroll : int;
  lv_vectorized : bool;
  lv_prefetched : bool;
  lv_bind : Poly.gpu_bind option;
}

let levels_of (s : Poly.t) =
  List.concat_map
    (fun (l : Poly.loop) ->
      List.map
        (fun (d : Poly.digit) ->
          { lv_iters = List.map (fun (c : Poly.contrib) -> (c.Poly.src, c.Poly.weight)) d.Poly.contribs;
            lv_extent = d.Poly.extent;
            lv_unroll = l.Poly.unroll;
            lv_vectorized = l.Poly.vectorized;
            lv_prefetched = l.Poly.prefetched;
            lv_bind = l.Poly.bind })
        l.Poly.digits)
    s.Poly.loops

let touches level iter = List.mem_assoc iter level.lv_iters
let reduction_iters = [ "ci"; "kh"; "kw" ]
let output_iters = [ "co"; "oh"; "ow" ]

(* A level carries a reduction (is not parallelizable) when it advances a
   reduction iterator without also partitioning the output: the shared
   slice digit of a grouped convolution advances both [ci] and [co], and
   distinct slices write disjoint output channels, so it is parallel. *)
let is_reduction_level level =
  List.exists (touches level) reduction_iters
  && not (List.exists (touches level) output_iters)

(* Iteration extent of [iter] covered by levels at depth >= d. *)
let covered levels d iter =
  let total = ref 1 in
  List.iteri
    (fun i lv -> if i >= d && touches lv iter then total := !total * lv.lv_extent)
    levels;
  !total

let float_bytes = 4.0

(* Footprints (bytes) of the three arrays over the levels at depth >= d. *)
let footprints nest (s : Poly.t) levels d =
  let stride = nest.Loop_nest.nc_stride in
  let cig =
    Poly.iter_extent s "ci" / Loop_nest.effective_groups s nest
  in
  let co = covered levels d "co"
  and ci = covered levels d "ci"
  and oh = covered levels d "oh"
  and ow = covered levels d "ow"
  and kh = covered levels d "kh"
  and kw = covered levels d "kw" in
  let fo = float_of_int (co * oh * ow) *. float_bytes in
  let fw = float_of_int (co * min ci cig * kh * kw) *. float_bytes in
  let fi =
    float_of_int (ci * (((oh - 1) * stride) + kh) * (((ow - 1) * stride) + kw))
    *. float_bytes
  in
  (fo, fw, fi)

(* Bytes moved from beyond a cache of capacity [cap]: find the shallowest
   depth whose footprint fits, then charge one footprint per iteration of
   the loops above that depth. *)
let traffic_beyond ?(max_restream = infinity) nest s levels cap =
  let n = List.length levels in
  let extents = Array.of_list (List.map (fun lv -> lv.lv_extent) levels) in
  let pick select =
    let best = ref None in
    for d = 0 to n do
      if !best = None then begin
        let fo, fw, fi = footprints nest s levels d in
        if select (fo, fw, fi) <= cap then best := Some d
      end
    done;
    let d = match !best with Some d -> d | None -> n in
    let outer = ref 1.0 in
    for i = 0 to d - 1 do
      outer := !outer *. float_of_int extents.(i)
    done;
    let fo, fw, fi = footprints nest s levels d in
    let full = select (footprints nest s levels 0) in
    (* Concurrently resident consumers (GPU thread blocks) share the cache,
       so the per-iteration restream model is capped. *)
    Float.min (!outer *. select (fo, fw, fi)) (max_restream *. full)
  in
  let o = pick (fun (fo, _, _) -> fo)
  and w = pick (fun (_, fw, _) -> fw)
  and i = pick (fun (_, _, fi) -> fi) in
  (* The output is written as well as read. *)
  (1.5 *. o) +. w +. i

(* Vector efficiency of the innermost level on a CPU. *)
let cpu_vector_eff (c : Device.cpu) nest levels =
  match List.rev levels with
  | [] -> 1.0
  | inner :: _ ->
      if not inner.lv_vectorized then 1.0
      else begin
        let vw = float_of_int c.vector_width in
        let unit_stride_gain =
          if touches inner "ow" then
            if nest.Loop_nest.nc_stride = 1 then 0.85 else 0.55
          else if touches inner "kw" then 0.6
          else if touches inner "co" then 0.5 (* needs a transpose/shuffle *)
          else 0.0
        in
        if unit_stride_gain = 0.0 then 1.0
        else begin
          let extent = float_of_int inner.lv_extent in
          let fill = min 1.0 (extent /. float_of_int c.vector_width) in
          Float.max 1.0 (vw *. unit_stride_gain *. fill)
        end
      end

let cpu_parallel_speedup (c : Device.cpu) levels parallel_extra =
  (* Parallelizable prefix: outer levels free of reduction iterators. *)
  let rec prefix acc = function
    | lv :: rest when not (is_reduction_level lv) ->
        if acc >= c.cores * 16 then acc else prefix (acc * lv.lv_extent) rest
    | _ -> acc
  in
  let par = max (prefix 1 levels) parallel_extra in
  if par <= 1 then 1.0
  else begin
    let cores = c.cores in
    let chunks = (par + cores - 1) / cores in
    let speedup = float_of_int par /. float_of_int chunks in
    Float.min (float_of_int cores) speedup
  end

let cpu_loop_overhead levels points =
  (* Branch/index overhead per innermost iteration, amortized by unrolling
     and vectorization (the unroll of the two innermost levels counts). *)
  match List.rev levels with
  | [] -> 0.0
  | inner :: rest ->
      let unroll =
        match rest with
        | next :: _ -> max inner.lv_unroll next.lv_unroll
        | [] -> inner.lv_unroll
      in
      let per_iter = if unroll >= 4 then 0.3 else 1.2 in
      let per_iter = if inner.lv_vectorized then per_iter /. 2.0 else per_iter in
      points *. per_iter

(* Unrolling an output-channel loop keeps a block of accumulators in
   registers (register blocking), improving issue efficiency. *)
let register_blocking_gain levels =
  if
    List.exists
      (fun lv -> lv.lv_unroll >= 8 && touches lv "co")
      levels
  then 0.92
  else 1.0

(* Depthwise-style nests (one input channel per group) have no reduction
   dimension to amortize loads over; real kernels reach a fraction of peak. *)
let depthwise_penalty (s : Poly.t) nest =
  let groups = Loop_nest.effective_groups s nest in
  let ci = Poly.iter_extent s "ci" in
  if groups >= ci && ci > 1 then 2.5 else 1.0

let estimate_cpu (dev : Device.t) (c : Device.cpu) nest s =
  let levels = levels_of s in
  let points = float_of_int (Poly.points s) in
  let vec = cpu_vector_eff c nest levels in
  let parallel_extra =
    List.fold_left
      (fun acc (l : Poly.loop) ->
        if l.Poly.parallelized then acc * Poly.loop_extent l else acc)
      1 s.Poly.loops
  in
  let par = cpu_parallel_speedup c levels parallel_extra in
  let issue_cycles =
    points /. (vec *. float_of_int c.fma_per_cycle)
    *. register_blocking_gain levels *. depthwise_penalty s nest
  in
  let cycles = issue_cycles +. cpu_loop_overhead levels points in
  let compute_s = cycles /. (c.freq_ghz *. 1e9) /. par in
  (* Last-level cache decides DRAM traffic; inner levels add smaller terms. *)
  let caches = Array.of_list c.caches in
  let llc = caches.(Array.length caches - 1) in
  let dram = traffic_beyond nest s levels (float_of_int llc.c_size *. 0.5) in
  let l1 = caches.(0) in
  let l1_traffic = traffic_beyond nest s levels (float_of_int l1.c_size *. 0.5) in
  let l2_bw = c.mem_bw_gbs *. 6.0 (* on-chip bandwidth *) in
  (* Software prefetching hides part of the DRAM latency, raising the
     achieved fraction of peak bandwidth. *)
  let bw_eff =
    if List.exists (fun lv -> lv.lv_prefetched) levels then 1.0 else 0.8
  in
  let memory_s =
    (dram /. (c.mem_bw_gbs *. 1e9 *. bw_eff))
    +. (l1_traffic /. (l2_bw *. 1e9) /. par)
  in
  let overhead_s = c.op_overhead_us *. 1e-6 in
  ignore dev;
  { compute_s;
    memory_s;
    overhead_s;
    total_s = Float.max compute_s memory_s +. overhead_s;
    dram_bytes = dram;
    parallel_speedup = par;
    vector_eff = vec }

let estimate_gpu (dev : Device.t) (g : Device.gpu) nest s =
  let levels = levels_of s in
  let points = float_of_int (Poly.points s) in
  let product pred =
    List.fold_left
      (fun acc lv -> if pred lv.lv_bind then acc * lv.lv_extent else acc)
      1 levels
  in
  let blocks =
    product (function Some (Poly.Block_x | Poly.Block_y) -> true | _ -> false)
  in
  let threads =
    product (function Some (Poly.Thread_x | Poly.Thread_y) -> true | _ -> false)
  in
  let vthreads = product (function Some Poly.Vthread -> true | _ -> false) in
  let total_threads = blocks * threads * vthreads in
  let cores = g.sms * g.cores_per_sm in
  (* Latency hiding needs several resident warps per core group. *)
  let util =
    if total_threads <= 1 then 1.0 /. float_of_int cores
    else Float.min 1.0 (float_of_int total_threads /. (float_of_int cores *. 4.0))
  in
  (* Under-populated blocks waste warp lanes. *)
  let warp_eff =
    if threads <= 1 then 0.25
    else Float.min 1.0 (float_of_int threads /. float_of_int g.warp)
  in
  let eff_cores = float_of_int cores *. util *. warp_eff in
  let compute_s =
    points *. depthwise_penalty s nest /. (eff_cores *. g.g_freq_ghz *. 1e9)
  in
  (* Coalescing: the thread-bound level must advance unit-stride in memory. *)
  let coalesce =
    let thread_levels =
      List.filter
        (fun lv ->
          match lv.lv_bind with
          | Some (Poly.Thread_x | Poly.Thread_y) -> true
          | _ -> false)
        levels
    in
    if thread_levels = [] then 0.25
    else if List.exists (fun lv -> touches lv "ow" || touches lv "oh") thread_levels
    then 1.0
    else 0.35
  in
  let dram =
    traffic_beyond ~max_restream:16.0 nest s levels (float_of_int g.l2.c_size *. 0.5)
  in
  let memory_s = dram /. (g.g_mem_bw_gbs *. 1e9 *. coalesce) in
  let overhead_s = g.launch_overhead_us *. 1e-6 in
  ignore dev;
  { compute_s;
    memory_s;
    overhead_s;
    total_s = Float.max compute_s memory_s +. overhead_s;
    dram_bytes = dram;
    parallel_speedup = float_of_int (min total_threads cores);
    vector_eff = warp_eff }

let estimate dev nest s =
  match dev.Device.kind with
  | Device.Cpu c -> estimate_cpu dev c nest s
  | Device.Gpu g -> estimate_gpu dev g nest s

let estimate_s dev nest s = (estimate dev nest s).total_s

let elementwise_time dev ~elems =
  let bytes = float_of_int elems *. float_bytes *. 3.0 in
  match dev.Device.kind with
  | Device.Cpu c -> (bytes /. (c.mem_bw_gbs *. 1e9)) +. (c.op_overhead_us *. 0.3e-6)
  | Device.Gpu g -> (bytes /. (g.g_mem_bw_gbs *. 1e9)) +. (g.launch_overhead_us *. 0.3e-6)

let dram_traffic dev nest s =
  let levels = levels_of s in
  match dev.Device.kind with
  | Device.Cpu c ->
      let caches = Array.of_list c.caches in
      let llc = caches.(Array.length caches - 1) in
      traffic_beyond nest s levels (float_of_int llc.c_size *. 0.5)
  | Device.Gpu g ->
      traffic_beyond ~max_restream:16.0 nest s levels (float_of_int g.l2.c_size *. 0.5)
