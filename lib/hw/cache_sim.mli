(** Trace-driven set-associative LRU cache simulator.

    Used to cross-validate the analytic cost model's footprint-based traffic
    predictions on small loop nests: the simulator replays the exact access
    stream of a lowered program ({!Loop_nest.iter_accesses}) through a cache
    and counts misses. *)

type t

val create : Device.cache -> t
(** A cold cache with the given geometry (size, line, associativity). *)

val reset : t -> unit
(** Empties every set and zeroes the counters (back to the cold state). *)

val access : t -> int -> bool
(** [access t byte_address] touches one 4-byte element; returns [true] on a
    hit. *)

type stats = {
  accesses : int;
  misses : int;
  miss_bytes : float;
}

val stats : t -> stats
(** Access/miss counters accumulated since {!create} or the last {!reset}. *)

val simulate_program : Device.cache -> Loop_nest.program -> stats
(** Replays the program's full access trace (output, weight and input
    arrays laid out contiguously in that order) through a fresh cache. *)

val miss_rate : stats -> float
