(** Analytic performance model for scheduled convolution loop nests.

    This plays the role of the real hardware in the paper's evaluation: it
    turns (device, convolution, schedule) into an estimated latency.  The
    model combines

    - {b compute}: MAC count over effective issue width — SIMD vector
      efficiency (unit-stride innermost loops), FMA throughput, loop
      overhead amortized by unrolling, multi-core speedup from the
      parallelizable outer-loop prefix (or GPU grid/block occupancy);
    - {b memory}: working-set (footprint) analysis per array at every loop
      depth, giving per-cache-level traffic and hence DRAM time, with a
      coalescing penalty for badly mapped GPU accesses;
    - {b overhead}: per-operator dispatch / kernel-launch cost, which
      dominates small convolutions on the mobile GPU.

    The absolute numbers are synthetic; the experiments only consume
    ratios between schedules on a fixed device, which is what a footprint
    model captures faithfully (it is the same family of models used by
    TVM/Ansor's analytical cost estimators).  The trace-driven
    {!Cache_sim} cross-validates the footprint-derived traffic on small
    nests. *)

type breakdown = {
  compute_s : float;
  memory_s : float;
  overhead_s : float;
  total_s : float;
  dram_bytes : float;
  parallel_speedup : float;
  vector_eff : float;
}

val is_finite : breakdown -> bool
(** Whether every time/traffic component is finite — a degenerate schedule
    or device description can otherwise surface NaN/Inf that would corrupt
    candidate ranking downstream. *)

val estimate : Device.t -> Loop_nest.conv_nest -> Poly.t -> breakdown
(** Latency of one execution of the scheduled nest (batch 1). *)

val estimate_s : Device.t -> Loop_nest.conv_nest -> Poly.t -> float
(** [ (estimate d n s).total_s ]. *)

val elementwise_time : Device.t -> elems:int -> float
(** Cost of one fused elementwise pass (batch-norm + ReLU) over a tensor —
    a bandwidth-bound sweep plus dispatch overhead. *)

val dram_traffic : Device.t -> Loop_nest.conv_nest -> Poly.t -> float
(** Estimated DRAM bytes, exposed for the cache-simulator validation. *)
