(** Roofline analysis of scheduled convolutions.

    Classifies a (device, nest, schedule) triple as compute- or memory-bound
    by comparing its arithmetic intensity (MACs per DRAM byte, as predicted
    by the cost model's traffic analysis) against the device's ridge point
    (peak MACs/s over peak bytes/s).  Used by the reporting tools and by the
    documentation examples to explain *why* a transformation pays off on one
    platform and not another. *)

type bound = Compute_bound | Memory_bound | Overhead_bound

type t = {
  rf_intensity : float;  (** MACs per DRAM byte *)
  rf_ridge : float;  (** device ridge point, MACs per byte *)
  rf_bound : bound;
  rf_attainable_macs_per_s : float;
      (** min(peak, bandwidth * intensity), in MACs/s *)
  rf_achieved_macs_per_s : float;  (** MACs over predicted latency *)
}

val bound_name : bound -> string
(** ["compute"], ["memory"] or ["overhead"] (for reports and JSON keys). *)

val analyze : Device.t -> Loop_nest.conv_nest -> Poly.t -> t
(** Rooflines the scheduled nest on the device: intensity and ridge point
    from the cost model's traffic analysis, bound classification from
    their comparison (overhead-bound when dispatch/launch cost dominates
    the predicted latency). *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable summary (bound class, intensity vs. ridge). *)
