(** A NAS-Bench-201-like cell space (Dong & Yang 2020), used by the
    Figure 3 experiment.

    A cell is a DAG on four nodes (A, B, C, D); each of the six forward
    edges carries one of five operations, giving 5^6 = 15625 cells.  Cells
    are instantiated into a small trainable network (stem, three stages
    separated by reduction blocks, classifier) so that both the Fisher
    Potential at initialization and a trained error can be computed
    genuinely. *)

type op = None_op | Skip | Conv1x1 | Conv3x3 | Avg_pool3

val op_name : op -> string
(** The benchmark's spelling, e.g. ["nor_conv_3x3"], ["skip_connect"]. *)

val all_ops : op list
(** The five operations in index order (the base-5 digit encoding). *)

type cell = op array
(** Length 6; edges in the order (0,1) (0,2) (1,2) (0,3) (1,3) (2,3). *)

val space_size : int
(** 15625. *)

val of_index : int -> cell
(** The cell with that base-5 encoding, for indices in [0, {!space_size}). *)

val to_index : cell -> int
(** Inverse of {!of_index}. *)

val random_cell : Rng.t -> cell
(** A uniform draw from the whole cell space. *)

val pp_cell : Format.formatter -> cell -> unit
(** NAS-Bench-201 arch-string notation,
    [|op~0|+|op~0|op~1|+|op~0|op~1|op~2|]. *)

type net = {
  nb_graph : Graph.t;
  nb_fisher_nodes : int array;
  nb_cell : cell;
}

val instantiate :
  ?channels:int -> ?input_size:int -> ?num_classes:int -> Rng.t -> cell -> net
(** Builds the cell network (defaults: 8 channels, 8x8 input, 10 classes). *)

type record = {
  r_index : int;
  r_fisher : float;
  r_error : float;  (** top-1 error in [0,1] after budgeted training *)
  r_params : int;
}

val evaluate_cell :
  ?train_steps:int ->
  rng:Rng.t ->
  data:Synthetic_data.t ->
  probe:Train.batch ->
  int ->
  record
(** Fisher Potential at initialization plus error after a short training
    budget, for the indexed cell. *)

val sample_space :
  ?train_steps:int ->
  rng:Rng.t ->
  data:Synthetic_data.t ->
  probe:Train.batch ->
  n:int ->
  unit ->
  record list
(** Evaluates [n] distinct random cells. *)
