(** The daemon's wire protocol: line-oriented JSON.

    One flat JSON object per line in each direction.  Every request line
    carries an ["op"] field: ["search"] names a workload ([network],
    [device]), a [seed], a [candidates] pool size and the per-request
    robustness knobs ([budget], [deadline_ms], [fault_rate], ...);
    ["ping"], ["stats"] and ["shutdown"] are control lines.  A missing
    [op] or an unrecognized search field is a parse error — a bare [{}]
    or a typo'd key must never default into real work.  Responses are
    discriminated by their ["status"] field: ["ok"] (a search result,
    possibly [degraded] to best-so-far by a deadline), ["overloaded"]
    (admission rejection, with a retry-after hint), ["unavailable"]
    (circuit breaker open), ["error"], ["pong"] and ["stats"].

    The codec is dependency-free (same spirit as [Obs_event]) and only
    accepts the protocol's shape — flat objects of scalars; nested values
    are a parse error, never undefined behavior.  See DESIGN.md §10 for
    the grammar. *)

type request = {
  rq_id : string;  (** client-chosen correlation id, echoed in responses *)
  rq_network : string;
      (** model-zoo name, e.g. ["resnet18"]; must be registered in {!Zoo}
          (parsing rejects unknown names, listing the registry) *)
  rq_device : string;  (** device short name, e.g. ["CPU"] *)
  rq_candidates : int;  (** candidate pool size *)
  rq_seed : int;  (** search seed; equal seeds give bit-identical results *)
  rq_mutate_prob : float option;  (** per-site mutation probability *)
  rq_budget : int option;  (** cap on candidate evaluations *)
  rq_deadline_ms : float option;  (** per-request deadline (milliseconds) *)
  rq_fault_rate : float;  (** search-level fault injection rate, [0,1] *)
  rq_fault_seed : int option;  (** fault draw seed (default: the seed) *)
  rq_workers : int;  (** evaluation domains inside this session *)
  rq_strategy : Strategy.t option;
      (** candidate-generation strategy; [None] defers to the server's
          configured default, and parsing rejects names outside
          {!Strategy.names_doc} *)
}

val request :
  ?network:string ->
  ?device:string ->
  ?candidates:int ->
  ?seed:int ->
  ?mutate_prob:float ->
  ?budget:int ->
  ?deadline_ms:float ->
  ?fault_rate:float ->
  ?fault_seed:int ->
  ?workers:int ->
  ?strategy:Strategy.t ->
  string ->
  request
(** [request id] with defaults: resnet18 on CPU, 40 candidates, seed 42,
    no budget, no deadline, no faults, 1 worker, the server's default
    strategy. *)

type msg =
  | Search of request  (** a search request (["op": "search"]) *)
  | Ping  (** liveness probe *)
  | Stats  (** ask for the server's counter snapshot *)
  | Shutdown  (** drain the queue and exit cleanly *)

val parse : string -> (msg, string) result
(** Parse one request line.  Malformed JSON, non-scalar fields, a
    missing or unknown [op], unrecognized search fields, and
    out-of-range knob values (e.g. [fault_rate] outside [0,1]) all come
    back as [Error] with a one-line reason — the daemon answers them
    with a ["status":"error"] response and keeps serving. *)

val request_to_json : request -> string
(** One request line, ["op": "search"] included (no trailing newline);
    defaulted fields are omitted. *)

type result_payload = {
  rs_id : string;
  rs_best_plan : string;  (** winning per-site plan signature *)
  rs_best_latency_us : float;
  rs_baseline_latency_us : float;
  rs_speedup : float;
  rs_explored : int;
  rs_rejected : int;  (** Fisher-rejected candidates *)
  rs_quarantined : int;  (** candidates that failed and were set aside *)
  rs_evaluated : int;  (** candidates actually processed *)
  rs_complete : bool;  (** false iff stopped early (budget or deadline) *)
  rs_degraded : bool;  (** true iff the deadline degraded it to best-so-far *)
  rs_retries : int;  (** transient-failure retries this request consumed *)
  rs_cache_hits : int;  (** memo hits this session (warm-cache benefit) *)
  rs_wall_ms : float;  (** session wall time *)
}

type response =
  | Result of result_payload  (** ["status":"ok"] *)
  | Overloaded of { ov_id : string; ov_retry_after_ms : float }
      (** admission rejection: try again after the hinted delay *)
  | Unavailable of { un_id : string; un_reason : string; un_retry_after_ms : float }
      (** refused without queuing, e.g. ["breaker_open"] *)
  | Error_resp of { er_id : string; er_class : string; er_message : string }
      (** the session failed; [er_class] is a {!Nas_error.class_name} or
          ["bad-request"] / ["shutting-down"] / ["internal"] *)
  | Pong  (** answer to {!Ping} *)
  | Stats_resp of (string * float) list  (** counter snapshot, sorted *)

val response_to_json : response -> string
(** One response line (no trailing newline). *)

val response_of_json : string -> (response, string) result
(** Parse one response line (for clients, tests and the bench). *)
