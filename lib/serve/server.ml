type config = {
  cf_workers : int;
  cf_max_queue : int;
  cf_default_deadline_ms : float option;
  cf_retry : Retry.policy;
  cf_breaker_threshold : int;
  cf_breaker_cooldown_s : float;
  cf_storm_fraction : float;
  cf_cache_file : string option;
  cf_cache_save_every : int;
  cf_cache_capacity : int;
  cf_fisher_capacity : int;
  cf_fault : Fault.t;
  cf_trace_dir : string option;
  cf_max_candidates : int;
  cf_max_session_workers : int;
  cf_schedule : Parallel_eval.schedule;
  cf_strategy : Strategy.t;
}

let default_config =
  { cf_workers = 4;
    cf_max_queue = 16;
    cf_default_deadline_ms = None;
    cf_retry = Retry.default;
    cf_breaker_threshold = 5;
    cf_breaker_cooldown_s = 30.0;
    cf_storm_fraction = 0.5;
    cf_cache_file = None;
    cf_cache_save_every = 1;
    cf_cache_capacity = 8192;
    cf_fisher_capacity = 4096;
    cf_fault = Fault.none;
    cf_trace_dir = None;
    cf_max_candidates = 512;
    cf_max_session_workers = 4;
    cf_schedule = Parallel_eval.Dynamic;
    cf_strategy = Strategy.Random }

type job = {
  jb_req : Protocol.request;
  jb_deadline : Deadline.t;
      (* stamped at submit, so queue wait counts against the budget *)
  jb_reply : Protocol.response -> unit;
}

(* Per-session wall times kept for stats: a bounded ring of the most
   recent sessions, so a long-lived daemon's memory and stats cost stay
   flat. *)
let session_times_cap = 4096

type t = {
  sv_cfg : config;
  sv_clock : Deadline.clock;
  sv_lock : Mutex.t;
  sv_cond : Condition.t;
  sv_queue : job Queue.t;
  sv_admission : Admission.t;
  sv_breaker : Breaker.t;
  sv_shared : Eval_ctx.t;
  sv_obs : Obs.t;
  sv_times : float array;  (* ring of the last [session_times_cap] durations *)
  mutable sv_times_len : int;
  mutable sv_times_pos : int;  (* next write index *)
  mutable sv_warm_entries : int;
  mutable sv_cache_error : Nas_error.t option;
  mutable sv_sessions_done : int;
  mutable sv_stopping : bool;
  mutable sv_domains : unit Domain.t list;
}

(* Deterministic per-request keys: the retry backoff jitter and the
   server-level fault draws are pure functions of the request id (and
   attempt), so a replayed request is refused/faulted/delayed identically.
   [Hashtbl.hash] is deterministic for strings within a build. *)
let request_seed id = Hashtbl.hash id land 0x3FFFFFFF

let fault_key ~id ~attempt = (request_seed id * 31) + attempt

let workload_key (rq : Protocol.request) = rq.rq_network ^ "|" ^ rq.rq_device

(* Served networks are exactly the zoo registry, same as the CLI. *)
let network_of_name name =
  Option.map (fun e -> e.Zoo.ze_spec `Search) (Zoo.find name)

(* --- locked helpers ----------------------------------------------------- *)

let locked t f =
  Mutex.lock t.sv_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sv_lock) f

let save_caches_locked t =
  match t.sv_cfg.cf_cache_file with
  | None -> ()
  | Some path -> (
      match Eval_ctx.save_caches ~path t.sv_shared with
      | Ok () -> Obs.incr t.sv_obs "serve.cache_saves"
      | Error e ->
          t.sv_cache_error <- Some e;
          Obs.incr t.sv_obs "serve.cache_save_errors")

(* --- one session -------------------------------------------------------- *)

let sanitize_id id =
  let b = Bytes.of_string (if id = "" then "anon" else id) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

(* Runs entirely on the worker domain; takes the server lock only for the
   short shared-cache and telemetry sections, never across a search.
   [probe] says this session is its workload's half-open breaker probe:
   an outcome that is neither a success nor a workload failure must then
   hand the key back to Open (see the [Error] branch below). *)
let run_search_session t (rq : Protocol.request) ~deadline ~probe config device =
  let cfg = t.sv_cfg in
  let seed = request_seed rq.rq_id in
  let attempt_session ~attempt =
    Deadline.guard deadline ~label:("session " ^ rq.rq_id);
    (* Server-level transient fault injection: a tripped draw aborts this
       attempt with a (retryable) Injected_fault before any work is done.
       Draws are pure in (request, attempt), so retries can recover. *)
    let server_fault = Fault.copy cfg.cf_fault in
    if Fault.trip server_fault ~key:(fault_key ~id:rq.rq_id ~attempt) Fault.Plan_gen
    then Nas_error.fail (Nas_error.Injected_fault ("session attempt " ^ string_of_int attempt));
    (* Replicate the one-shot CLI exactly: same rng threading, same probe
       — a served request is bit-identical to `nas_pte search` with the
       same seed (the warm caches only change hit rates, never values). *)
    let rng = Rng.create rq.rq_seed in
    let model = Models.build config rng in
    let probe =
      Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size
    in
    let session_obs =
      match cfg.cf_trace_dir with
      | Some dir ->
          Obs.create
            ~trace_file:(Filename.concat dir (sanitize_id rq.rq_id ^ ".jsonl"))
            ()
      | None -> Obs.disabled
    in
    let session_fault =
      if rq.rq_fault_rate <= 0.0 then Fault.none
      else
        Fault.make
          ~seed:(Option.value rq.rq_fault_seed ~default:rq.rq_seed)
          ~rate:rq.rq_fault_rate ()
    in
    let ctx =
      Eval_ctx.create ~cache_capacity:cfg.cf_cache_capacity
        ~fisher_capacity:cfg.cf_fisher_capacity ~fault:session_fault ~device
        ~obs:session_obs ()
    in
    ignore (locked t (fun () -> Eval_ctx.warm_from ctx ~src:t.sv_shared));
    let wall0 = t.sv_clock () in
    let r =
      Unified_search.search ~candidates:(min rq.rq_candidates cfg.cf_max_candidates)
        ?mutate_prob:rq.rq_mutate_prob ?budget:rq.rq_budget
        ~stop:(fun () -> Deadline.expired deadline)
        ~workers:(min rq.rq_workers cfg.cf_max_session_workers)
        ~schedule:cfg.cf_schedule
        ~strategy:(Option.value rq.rq_strategy ~default:cfg.cf_strategy) ~ctx ~rng:(Rng.split rng) ~device ~probe model
    in
    let wall_ms = 1000.0 *. (t.sv_clock () -. wall0) in
    let cs = Eval_ctx.cost_stats ctx and fs = Eval_ctx.fisher_stats ctx in
    locked t (fun () -> Eval_ctx.absorb_full t.sv_shared ctx);
    Obs.close session_obs;
    let degraded = (not r.Unified_search.r_complete) && Deadline.expired deadline in
    let quarantined = List.length r.Unified_search.r_quarantined in
    let storm =
      float_of_int quarantined
      >= cfg.cf_storm_fraction *. float_of_int (max 1 r.Unified_search.r_explored)
    in
    let payload =
      { Protocol.rs_id = rq.rq_id;
        rs_best_plan = Unified_search.plans_signature r.r_best.Unified_search.cd_plans;
        rs_best_latency_us = 1e6 *. r.r_best.Unified_search.cd_latency_s;
        rs_baseline_latency_us = 1e6 *. r.r_baseline.Pipeline.ev_latency_s;
        rs_speedup = Unified_search.speedup r;
        rs_explored = r.r_explored;
        rs_rejected = r.r_rejected;
        rs_quarantined = quarantined;
        rs_evaluated = r.r_evaluated;
        rs_complete = r.r_complete;
        rs_degraded = degraded;
        rs_retries = 0 (* patched by the caller *);
        rs_cache_hits = cs.Bounded_cache.cs_hits + fs.Bounded_cache.cs_hits;
        rs_wall_ms = wall_ms }
    in
    (payload, storm)
  in
  let outcome, retries =
    Retry.run ~policy:cfg.cf_retry ~deadline ~seed
      ~on_retry:(fun ~attempt:_ ~delay_s:_ _e ->
        locked t (fun () -> Obs.incr t.sv_obs "serve.retried"))
      (fun ~attempt -> attempt_session ~attempt)
  in
  let key = workload_key rq in
  match outcome with
  | Ok (payload, storm) ->
      locked t (fun () ->
          Obs.incr t.sv_obs "serve.completed";
          if payload.Protocol.rs_degraded then
            Obs.incr t.sv_obs "serve.deadline_expired";
          if storm then begin
            Obs.incr t.sv_obs "serve.quarantine_storms";
            Breaker.failure t.sv_breaker ~key
          end
          else Breaker.success t.sv_breaker ~key);
      Protocol.Result { payload with Protocol.rs_retries = retries }
  | Error e ->
      locked t (fun () ->
          Obs.incr t.sv_obs "serve.errors";
          (* A client's deadline says nothing about the workload's health,
             so Timed_out does not count toward tripping its breaker — but
             a probe ending this way has no verdict either, and must not
             leave the key wedged Half_open: abandon restarts the
             cooldown, so the workload is re-probed later. *)
          match e with
          | Nas_error.Timed_out _ ->
              Obs.incr t.sv_obs "serve.deadline_expired";
              if probe then Breaker.abandon t.sv_breaker ~key
          | _ -> Breaker.failure t.sv_breaker ~key);
      Protocol.Error_resp
        { er_id = rq.rq_id;
          er_class = Nas_error.class_name e;
          er_message = Nas_error.to_string e }

let run_session t (rq : Protocol.request) ~deadline =
  (* Validate before consulting the breaker, so a malformed request can
     neither trip a workload's breaker nor consume its half-open probe. *)
  match network_of_name rq.rq_network, Device.by_name rq.rq_device with
  | None, _ ->
      Protocol.Error_resp
        { er_id = rq.rq_id;
          er_class = "bad-request";
          er_message =
            "unknown network " ^ rq.rq_network ^ " (valid: " ^ Zoo.names_doc ^ ")" }
  | _, None ->
      Protocol.Error_resp
        { er_id = rq.rq_id;
          er_class = "bad-request";
          er_message = "unknown device " ^ rq.rq_device }
  | Some config, Some device ->
      let key = workload_key rq in
      let allowed, probe, retry_after =
        locked t (fun () ->
            let a = Breaker.allow t.sv_breaker ~key in
            if not a then Obs.incr t.sv_obs "serve.breaker_open";
            ( a,
              a && Breaker.state t.sv_breaker ~key = Breaker.Half_open,
              Breaker.retry_after_s t.sv_breaker ~key ))
      in
      if not allowed then
        Protocol.Unavailable
          { un_id = rq.rq_id;
            un_reason = "breaker_open";
            un_retry_after_ms = 1000.0 *. retry_after }
      else
        try run_search_session t rq ~deadline ~probe config device
        with e ->
          (* An escape the taxonomy cannot classify gives the probe no
             verdict: hand the key back to Open (fresh cooldown) before
             the worker's catch-all answers, or it stays Half_open — and
             refused — forever. *)
          if probe then locked t (fun () -> Breaker.abandon t.sv_breaker ~key);
          raise e

(* --- the worker pool ---------------------------------------------------- *)

let rec worker_loop t =
  Mutex.lock t.sv_lock;
  while Queue.is_empty t.sv_queue && not t.sv_stopping do
    Condition.wait t.sv_cond t.sv_lock
  done;
  if Queue.is_empty t.sv_queue then Mutex.unlock t.sv_lock (* stopping: drain done *)
  else begin
    let job = Queue.pop t.sv_queue in
    Admission.started t.sv_admission;
    Mutex.unlock t.sv_lock;
    let t0 = t.sv_clock () in
    (* Fault containment: whatever one session does — including escapes
       the taxonomy cannot classify — it answers its own request and the
       daemon keeps serving the others. *)
    let resp =
      try run_session t job.jb_req ~deadline:job.jb_deadline
      with e ->
        Protocol.Error_resp
          { er_id = job.jb_req.Protocol.rq_id;
            er_class = "internal";
            er_message = Printexc.to_string e }
    in
    let dur = t.sv_clock () -. t0 in
    (try job.jb_reply resp with _ -> ());
    Mutex.lock t.sv_lock;
    Admission.finished t.sv_admission ~dur_s:dur;
    t.sv_sessions_done <- t.sv_sessions_done + 1;
    t.sv_times.(t.sv_times_pos) <- dur;
    t.sv_times_pos <- (t.sv_times_pos + 1) mod session_times_cap;
    if t.sv_times_len < session_times_cap then
      t.sv_times_len <- t.sv_times_len + 1;
    Obs.observe t.sv_obs "serve.session_s" dur;
    if
      t.sv_cfg.cf_cache_save_every > 0
      && t.sv_sessions_done mod t.sv_cfg.cf_cache_save_every = 0
    then save_caches_locked t;
    Mutex.unlock t.sv_lock;
    worker_loop t
  end

let create ?(clock = Deadline.monotonic) ?(config = default_config) () =
  let shared =
    Eval_ctx.create ~cache_capacity:config.cf_cache_capacity
      ~fisher_capacity:config.cf_fisher_capacity ()
  in
  (* Warm start: a snapshot from a previous (possibly kill -9'd) daemon is
     merged in; a truncated or foreign file is reported and ignored — the
     daemon cold-starts instead of crashing. *)
  let warm, cache_error =
    match config.cf_cache_file with
    | Some path when Sys.file_exists path -> (
        match Eval_ctx.load_caches ~path shared with
        | Ok n -> (n, None)
        | Error e -> (0, Some e))
    | Some _ | None -> (0, None)
  in
  let workers = max 1 config.cf_workers in
  let t =
    { sv_cfg = { config with cf_workers = workers };
      sv_clock = clock;
      sv_lock = Mutex.create ();
      sv_cond = Condition.create ();
      sv_queue = Queue.create ();
      sv_admission =
        Admission.create ~max_inflight:workers ~max_queue:config.cf_max_queue ();
      sv_breaker =
        Breaker.create ~clock ~threshold:config.cf_breaker_threshold
          ~cooldown_s:config.cf_breaker_cooldown_s ();
      sv_shared = shared;
      sv_obs = Obs.create ~clock ();
      sv_times = Array.make session_times_cap 0.0;
      sv_times_len = 0;
      sv_times_pos = 0;
      sv_warm_entries = warm;
      sv_cache_error = cache_error;
      sv_sessions_done = 0;
      sv_stopping = false;
      sv_domains = [] }
  in
  if warm > 0 then Obs.set t.sv_obs "serve.cache_warm_entries" warm;
  if cache_error <> None then Obs.incr t.sv_obs "serve.cache_load_errors";
  t.sv_domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit_async t req ~reply =
  (* The deadline clock starts here, not at dequeue: time spent waiting
     in the admission queue counts against the client's budget, and a job
     already expired when a worker picks it up fails fast on its first
     guard. *)
  let deadline =
    match req.Protocol.rq_deadline_ms, t.sv_cfg.cf_default_deadline_ms with
    | Some ms, _ | None, Some ms ->
        Deadline.make ~clock:t.sv_clock ~after_s:(ms /. 1000.0) ()
    | None, None -> Deadline.none
  in
  let decision =
    locked t (fun () ->
        if t.sv_stopping then `Stopping
        else
          match Admission.admit t.sv_admission with
          | Admission.Rejected retry_after ->
              Obs.incr t.sv_obs "serve.rejected";
              `Rejected retry_after
          | Admission.Admitted ->
              Obs.incr t.sv_obs "serve.admitted";
              Queue.push
                { jb_req = req; jb_deadline = deadline; jb_reply = reply }
                t.sv_queue;
              Condition.signal t.sv_cond;
              `Admitted)
  in
  match decision with
  | `Admitted -> ()
  | `Rejected retry_after ->
      reply
        (Protocol.Overloaded
           { ov_id = req.Protocol.rq_id; ov_retry_after_ms = 1000.0 *. retry_after })
  | `Stopping ->
      reply
        (Protocol.Error_resp
           { er_id = req.Protocol.rq_id;
             er_class = "shutting-down";
             er_message = "server is draining" })

let submit t req =
  let m = Mutex.create () in
  let c = Condition.create () in
  let slot = ref None in
  submit_async t req ~reply:(fun resp ->
      Mutex.lock m;
      slot := Some resp;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Option.get !slot

(* --- introspection ------------------------------------------------------ *)

type stats = {
  st_admitted : int;
  st_rejected : int;
  st_completed : int;
  st_errors : int;
  st_degraded : int;
  st_deadline_expired : int;
  st_retried : int;
  st_breaker_open : int;
  st_breaker_trips : int;
  st_quarantine_storms : int;
  st_inflight : int;
  st_queued : int;
  st_warm_entries : int;
  st_cache_error : Nas_error.t option;
  st_session_times_s : float array;
  st_cost : Bounded_cache.stats;
  st_fisher : Bounded_cache.stats;
}

let stats t =
  locked t (fun () ->
      let c name = Metrics.counter (Obs.metrics t.sv_obs) name in
      { st_admitted = Admission.admitted_total t.sv_admission;
        st_rejected = Admission.rejected_total t.sv_admission;
        st_completed = c "serve.completed";
        st_errors = c "serve.errors";
        st_degraded = c "serve.deadline_expired";
        st_deadline_expired = c "serve.deadline_expired";
        st_retried = c "serve.retried";
        st_breaker_open = c "serve.breaker_open";
        st_breaker_trips = Breaker.trips t.sv_breaker;
        st_quarantine_storms = c "serve.quarantine_storms";
        st_inflight = Admission.inflight t.sv_admission;
        st_queued = Admission.queued t.sv_admission;
        st_warm_entries = t.sv_warm_entries;
        st_cache_error = t.sv_cache_error;
        st_session_times_s =
          (if t.sv_times_len < session_times_cap then
             Array.sub t.sv_times 0 t.sv_times_len
           else
             Array.init session_times_cap (fun i ->
                 t.sv_times.((t.sv_times_pos + i) mod session_times_cap)));
        st_cost = Eval_ctx.cost_stats t.sv_shared;
        st_fisher = Eval_ctx.fisher_stats t.sv_shared })

let cache_hit_rate st =
  let hits = st.st_cost.Bounded_cache.cs_hits + st.st_fisher.Bounded_cache.cs_hits in
  let misses =
    st.st_cost.Bounded_cache.cs_misses + st.st_fisher.Bounded_cache.cs_misses
  in
  if hits + misses = 0 then 0.0
  else float_of_int hits /. float_of_int (hits + misses)

let stats_fields st =
  [ ("admitted", float_of_int st.st_admitted);
    ("rejected", float_of_int st.st_rejected);
    ("completed", float_of_int st.st_completed);
    ("errors", float_of_int st.st_errors);
    ("deadline_expired", float_of_int st.st_deadline_expired);
    ("retried", float_of_int st.st_retried);
    ("breaker_open", float_of_int st.st_breaker_open);
    ("breaker_trips", float_of_int st.st_breaker_trips);
    ("quarantine_storms", float_of_int st.st_quarantine_storms);
    ("inflight", float_of_int st.st_inflight);
    ("queued", float_of_int st.st_queued);
    ("cache_warm_entries", float_of_int st.st_warm_entries);
    ("cache_hit_rate", cache_hit_rate st) ]

let obs t = t.sv_obs

let shared_ctx t = t.sv_shared

let shutdown t =
  locked t (fun () ->
      t.sv_stopping <- true;
      Condition.broadcast t.sv_cond);
  List.iter Domain.join t.sv_domains;
  t.sv_domains <- [];
  (* Final snapshot so the next boot warm-starts even when the periodic
     cadence missed the last sessions. *)
  locked t (fun () -> save_caches_locked t);
  stats t
