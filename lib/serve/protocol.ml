(* Line-oriented JSON protocol: one flat JSON object per line in, one per
   line out.  The parser below handles exactly that shape — an object of
   scalar fields — with a proper string lexer, so no external JSON
   dependency is needed (mirroring Obs_event's dependency-free codec). *)

type value = Null | Bool of bool | Num of float | Str of string

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let parse_flat_object (s : string) : (string * value) list =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then parse_error "unexpected end of input"
    else begin
      let c = s.[!pos] in
      incr pos;
      c
    end
  in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    let g = next () in
    if g <> c then parse_error "expected '%c', got '%c'" c g
  in
  let utf8_of_code buf code =
    (* Basic-multilingual-plane escapes only; lone surrogates map to '?'. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code >= 0xD800 && code <= 0xDFFF then Buffer.add_char buf '?'
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then parse_error "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with Failure _ -> parse_error "bad \\u escape %s" hex
              in
              utf8_of_code buf code
          | c -> parse_error "bad escape \\%c" c);
          go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some ('t' | 'f' | 'n') ->
        let kw stop v =
          let l = String.length stop in
          if !pos + l <= n && String.sub s !pos l = stop then begin
            pos := !pos + l;
            v
          end
          else parse_error "bad literal at offset %d" !pos
        in
        if s.[!pos] = 't' then kw "true" (Bool true)
        else if s.[!pos] = 'f' then kw "false" (Bool false)
        else kw "null" Null
    | Some ('{' | '[') -> parse_error "nested values are not part of the protocol"
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr pos
        done;
        if !pos = start then parse_error "expected a value at offset %d" start;
        let tok = String.sub s start (!pos - start) in
        (try Num (float_of_string tok) with Failure _ -> parse_error "bad number %s" tok)
    | None -> parse_error "unexpected end of input"
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  (match peek () with
  | Some '}' -> incr pos
  | _ ->
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        let v = parse_scalar () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | c -> parse_error "expected ',' or '}', got '%c'" c
      in
      members ());
  skip_ws ();
  if !pos <> n then parse_error "trailing garbage after object";
  List.rev !fields

(* --- field accessors ---------------------------------------------------- *)

let find fields key = List.assoc_opt key fields

let str_field fields key =
  match find fields key with
  | Some (Str s) -> Some s
  | Some _ -> parse_error "field %s must be a string" key
  | None -> None

let num_field fields key =
  match find fields key with
  | Some (Num x) -> Some x
  | Some _ -> parse_error "field %s must be a number" key
  | None -> None

let int_field fields key =
  match num_field fields key with
  | Some x ->
      let i = int_of_float x in
      if float_of_int i <> x then parse_error "field %s must be an integer" key;
      Some i
  | None -> None

(* --- requests ----------------------------------------------------------- *)

type request = {
  rq_id : string;
  rq_network : string;
  rq_device : string;
  rq_candidates : int;
  rq_seed : int;
  rq_mutate_prob : float option;
  rq_budget : int option;
  rq_deadline_ms : float option;
  rq_fault_rate : float;
  rq_fault_seed : int option;
  rq_workers : int;
  rq_strategy : Strategy.t option;
}

let request ?(network = "resnet18") ?(device = "CPU") ?(candidates = 40)
    ?(seed = 42) ?mutate_prob ?budget ?deadline_ms ?(fault_rate = 0.0) ?fault_seed
    ?(workers = 1) ?strategy id =
  { rq_id = id;
    rq_network = network;
    rq_device = device;
    rq_candidates = candidates;
    rq_seed = seed;
    rq_mutate_prob = mutate_prob;
    rq_budget = budget;
    rq_deadline_ms = deadline_ms;
    rq_fault_rate = fault_rate;
    rq_fault_seed = fault_seed;
    rq_workers = workers;
    rq_strategy = strategy }

type msg = Search of request | Ping | Stats | Shutdown

let validated rq =
  (* The registry is the single source of servable networks; a typo'd name
     is a parse-time error listing the valid ones, same as the CLI. *)
  if Zoo.find rq.rq_network = None then
    parse_error "unknown network %s (valid: %s)" rq.rq_network Zoo.names_doc;
  if rq.rq_candidates < 1 then parse_error "candidates must be >= 1";
  if rq.rq_workers < 1 then parse_error "workers must be >= 1";
  if rq.rq_fault_rate < 0.0 || rq.rq_fault_rate > 1.0 then
    parse_error "fault_rate must be in [0,1]";
  (match rq.rq_deadline_ms with
  | Some d when d <= 0.0 -> parse_error "deadline_ms must be positive"
  | _ -> ());
  (match rq.rq_budget with
  | Some b when b < 1 -> parse_error "budget must be >= 1"
  | _ -> ());
  (match rq.rq_mutate_prob with
  | Some p when p < 0.0 || p > 1.0 -> parse_error "mutate_prob must be in [0,1]"
  | _ -> ());
  rq

(* Every key a search request may carry.  Anything else is rejected: a
   typo'd knob ("candidats") must come back as an error, not be silently
   ignored in favor of its default. *)
let search_keys =
  [ "op"; "id"; "network"; "device"; "candidates"; "seed"; "mutate_prob";
    "budget"; "deadline_ms"; "fault_rate"; "fault_seed"; "workers"; "strategy" ]

let parse line =
  match parse_flat_object line with
  | exception Parse m -> Error m
  | fields -> (
      match str_field fields "op" with
      | exception Parse m -> Error m
      | Some "ping" -> Ok Ping
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some "search" -> (
          try
            List.iter
              (fun (k, _) ->
                if not (List.mem k search_keys) then
                  parse_error "unknown field %s in search request" k)
              fields;
            let dflt = request "" in
            let get_s key d = Option.value ~default:d (str_field fields key) in
            let get_i key d = Option.value ~default:d (int_field fields key) in
            Ok
              (Search
                 (validated
                    { rq_id = get_s "id" "";
                      rq_network = get_s "network" dflt.rq_network;
                      rq_device = get_s "device" dflt.rq_device;
                      rq_candidates = get_i "candidates" dflt.rq_candidates;
                      rq_seed = get_i "seed" dflt.rq_seed;
                      rq_mutate_prob = num_field fields "mutate_prob";
                      rq_budget = int_field fields "budget";
                      rq_deadline_ms = num_field fields "deadline_ms";
                      rq_fault_rate =
                        Option.value ~default:0.0 (num_field fields "fault_rate");
                      rq_fault_seed = int_field fields "fault_seed";
                      rq_workers = get_i "workers" dflt.rq_workers;
                      rq_strategy =
                        (match str_field fields "strategy" with
                        | None -> None
                        | Some s -> (
                            match Strategy.of_string s with
                            | Some t -> Some t
                            | None ->
                                parse_error "unknown strategy %s (valid: %s)" s
                                  Strategy.names_doc)) }))
          with Parse m -> Error m)
      | Some other -> Error (Printf.sprintf "unknown op %s" other)
      | None ->
          (* Defaulting a bare '{}' (or a typo'd "opp" key) into a full
             search would silently launch real work; demand intent. *)
          Error "missing op field (search | ping | stats | shutdown)")

(* --- wire writing ------------------------------------------------------- *)

let jstr = Obs_event.json_string

(* Protocol floats favor readability over bit-exact round-trips: %.6g is
   plenty for latencies and rates, and keeps response lines short. *)
let jnum x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let jbool b = if b then "true" else "false"

let request_to_json rq =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"op\": \"search\", \"id\": %s" (jstr rq.rq_id));
  Buffer.add_string b (Printf.sprintf ", \"network\": %s" (jstr rq.rq_network));
  Buffer.add_string b (Printf.sprintf ", \"device\": %s" (jstr rq.rq_device));
  Buffer.add_string b (Printf.sprintf ", \"candidates\": %d" rq.rq_candidates);
  Buffer.add_string b (Printf.sprintf ", \"seed\": %d" rq.rq_seed);
  Option.iter
    (fun p -> Buffer.add_string b (Printf.sprintf ", \"mutate_prob\": %s" (jnum p)))
    rq.rq_mutate_prob;
  Option.iter
    (fun n -> Buffer.add_string b (Printf.sprintf ", \"budget\": %d" n))
    rq.rq_budget;
  Option.iter
    (fun d -> Buffer.add_string b (Printf.sprintf ", \"deadline_ms\": %s" (jnum d)))
    rq.rq_deadline_ms;
  if rq.rq_fault_rate > 0.0 then
    Buffer.add_string b (Printf.sprintf ", \"fault_rate\": %s" (jnum rq.rq_fault_rate));
  Option.iter
    (fun s -> Buffer.add_string b (Printf.sprintf ", \"fault_seed\": %d" s))
    rq.rq_fault_seed;
  if rq.rq_workers <> 1 then
    Buffer.add_string b (Printf.sprintf ", \"workers\": %d" rq.rq_workers);
  Option.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf ", \"strategy\": %s" (jstr (Strategy.to_string t))))
    rq.rq_strategy;
  Buffer.add_string b "}";
  Buffer.contents b

(* --- responses ---------------------------------------------------------- *)

type result_payload = {
  rs_id : string;
  rs_best_plan : string;
  rs_best_latency_us : float;
  rs_baseline_latency_us : float;
  rs_speedup : float;
  rs_explored : int;
  rs_rejected : int;
  rs_quarantined : int;
  rs_evaluated : int;
  rs_complete : bool;
  rs_degraded : bool;
  rs_retries : int;
  rs_cache_hits : int;
  rs_wall_ms : float;
}

type response =
  | Result of result_payload
  | Overloaded of { ov_id : string; ov_retry_after_ms : float }
  | Unavailable of { un_id : string; un_reason : string; un_retry_after_ms : float }
  | Error_resp of { er_id : string; er_class : string; er_message : string }
  | Pong
  | Stats_resp of (string * float) list

let response_to_json = function
  | Result r ->
      Printf.sprintf
        "{\"id\": %s, \"status\": \"ok\", \"best_plan\": %s, \
         \"best_latency_us\": %s, \"baseline_latency_us\": %s, \"speedup\": %s, \
         \"explored\": %d, \"rejected\": %d, \"quarantined\": %d, \
         \"evaluated\": %d, \"complete\": %s, \"degraded\": %s, \"retries\": %d, \
         \"cache_hits\": %d, \"wall_ms\": %s}"
        (jstr r.rs_id) (jstr r.rs_best_plan)
        (jnum r.rs_best_latency_us)
        (jnum r.rs_baseline_latency_us)
        (jnum r.rs_speedup) r.rs_explored r.rs_rejected r.rs_quarantined
        r.rs_evaluated (jbool r.rs_complete) (jbool r.rs_degraded) r.rs_retries
        r.rs_cache_hits (jnum r.rs_wall_ms)
  | Overloaded o ->
      Printf.sprintf
        "{\"id\": %s, \"status\": \"overloaded\", \"retry_after_ms\": %s}"
        (jstr o.ov_id) (jnum o.ov_retry_after_ms)
  | Unavailable u ->
      Printf.sprintf
        "{\"id\": %s, \"status\": \"unavailable\", \"reason\": %s, \
         \"retry_after_ms\": %s}"
        (jstr u.un_id) (jstr u.un_reason)
        (jnum u.un_retry_after_ms)
  | Error_resp e ->
      Printf.sprintf "{\"id\": %s, \"status\": \"error\", \"class\": %s, \"message\": %s}"
        (jstr e.er_id) (jstr e.er_class) (jstr e.er_message)
  | Pong -> "{\"status\": \"pong\"}"
  | Stats_resp kvs ->
      let b = Buffer.create 128 in
      Buffer.add_string b "{\"status\": \"stats\"";
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf ", %s: %s" (jstr k) (jnum v)))
        kvs;
      Buffer.add_string b "}";
      Buffer.contents b

let response_of_json line =
  match parse_flat_object line with
  | exception Parse m -> Error m
  | fields -> (
      try
        let id () = Option.value ~default:"" (str_field fields "id") in
        let num key = match num_field fields key with Some x -> x | None -> 0.0 in
        let int key = match int_field fields key with Some i -> i | None -> 0 in
        let bool key =
          match find fields key with Some (Bool b) -> b | _ -> false
        in
        match str_field fields "status" with
        | Some "ok" ->
            Ok
              (Result
                 { rs_id = id ();
                   rs_best_plan =
                     Option.value ~default:"" (str_field fields "best_plan");
                   rs_best_latency_us = num "best_latency_us";
                   rs_baseline_latency_us = num "baseline_latency_us";
                   rs_speedup = num "speedup";
                   rs_explored = int "explored";
                   rs_rejected = int "rejected";
                   rs_quarantined = int "quarantined";
                   rs_evaluated = int "evaluated";
                   rs_complete = bool "complete";
                   rs_degraded = bool "degraded";
                   rs_retries = int "retries";
                   rs_cache_hits = int "cache_hits";
                   rs_wall_ms = num "wall_ms" })
        | Some "overloaded" ->
            Ok
              (Overloaded
                 { ov_id = id (); ov_retry_after_ms = num "retry_after_ms" })
        | Some "unavailable" ->
            Ok
              (Unavailable
                 { un_id = id ();
                   un_reason = Option.value ~default:"" (str_field fields "reason");
                   un_retry_after_ms = num "retry_after_ms" })
        | Some "error" ->
            Ok
              (Error_resp
                 { er_id = id ();
                   er_class = Option.value ~default:"" (str_field fields "class");
                   er_message = Option.value ~default:"" (str_field fields "message") })
        | Some "pong" -> Ok Pong
        | Some "stats" ->
            Ok
              (Stats_resp
                 (List.filter_map
                    (fun (k, v) ->
                      match v with Num x when k <> "status" -> Some (k, x) | _ -> None)
                    fields))
        | Some other -> Error (Printf.sprintf "unknown status %s" other)
        | None -> Error "missing status field"
      with Parse m -> Error m)
