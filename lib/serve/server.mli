(** The serving core: a worker pool of domains multiplexing concurrent
    search sessions, wrapped in the [lib/robust] resilience layer.

    Every request flows through the same gauntlet: {!Admission} (bounded
    in-flight + bounded queue, immediate [Overloaded] rejection),
    {!Breaker} per (network, device) workload, a {!Deadline} watchdog
    installed as the search's [?stop] hook (expiry degrades the session
    to its best-so-far incumbent), and {!Retry} with exponential backoff
    for transient failures.  Sessions share one crash-safe content-hashed
    cost/Fisher cache pair: each session warms its private context from
    the shared one ({!Eval_ctx.warm_from}) and folds its fresh entries
    back ({!Eval_ctx.absorb_full}); the shared caches persist through the
    atomic {!Checkpoint} writer so a kill -9 restart warm-starts.

    Determinism: a served request's search result is bit-identical to the
    one-shot CLI with the same seed — the warm caches only change hit
    counts, never values, and retry jitter / fault draws are pure in the
    request id.  See DESIGN.md §10. *)

type config = {
  cf_workers : int;  (** worker domains = max in-flight sessions *)
  cf_max_queue : int;  (** admitted-but-waiting bound *)
  cf_default_deadline_ms : float option;
      (** deadline applied when a request names none *)
  cf_retry : Retry.policy;  (** transient-failure retry policy *)
  cf_breaker_threshold : int;  (** consecutive failures before tripping *)
  cf_breaker_cooldown_s : float;  (** open-state cooldown *)
  cf_storm_fraction : float;
      (** quarantined/explored ratio at or above which a completed session
          still counts as a breaker failure (a quarantine storm) *)
  cf_cache_file : string option;  (** shared-cache snapshot path *)
  cf_cache_save_every : int;  (** sessions between snapshots; 0 = never *)
  cf_cache_capacity : int;  (** shared workload-cost memo bound *)
  cf_fisher_capacity : int;  (** shared Fisher memo bound *)
  cf_fault : Fault.t;  (** server-level transient fault injection *)
  cf_trace_dir : string option;  (** per-session JSONL trace directory *)
  cf_max_candidates : int;  (** per-request candidate-pool cap *)
  cf_max_session_workers : int;  (** per-request worker-domain cap *)
  cf_schedule : Parallel_eval.schedule;
      (** how multi-worker sessions assign candidates to their domains
          (results are bit-identical either way) *)
  cf_strategy : Strategy.t;
      (** candidate-generation strategy for requests that do not pick one
          themselves (the request's [strategy] field wins) *)
}

val default_config : config
(** 4 workers, queue 16, no default deadline, {!Retry.default}, breaker
    5/30s, storm fraction 0.5, no persistence, no faults, no traces,
    candidate cap 512, session-worker cap 4, dynamic scheduling, random
    strategy. *)

type t
(** A running server (the worker domains are live). *)

val create : ?clock:Deadline.clock -> ?config:config -> unit -> t
(** Boot the pool.  When [config.cf_cache_file] names an existing
    snapshot it is merged into the shared caches (warm start); a
    truncated, corrupt or foreign file is recorded in {!stats} and
    ignored — the server cold-starts instead of crashing. *)

val submit_async : t -> Protocol.request -> reply:(Protocol.response -> unit) -> unit
(** Enqueue one request.  The admission decision is taken immediately:
    a rejection invokes [reply] with [Overloaded] before returning,
    otherwise [reply] is invoked from a worker domain when the session
    finishes.  The request's deadline ([deadline_ms], or the configured
    default) starts counting here — queue wait spends the client's
    budget, and an already-expired job fails fast at dequeue.  [reply]
    must be domain-safe. *)

val submit : t -> Protocol.request -> Protocol.response
(** {!submit_async} and block for the response (test/bench convenience). *)

val request_seed : string -> int
(** The deterministic per-request seed derived from the request id —
    drives retry jitter and the server-level fault draws. *)

val fault_key : id:string -> attempt:int -> int
(** The fault-plan key for (request, attempt): tests pick ids whose
    draw trips at attempt 0 and recovers at attempt 1 to exercise the
    retry path deterministically. *)

type stats = {
  st_admitted : int;
  st_rejected : int;  (** admission rejections *)
  st_completed : int;  (** sessions answered with a result *)
  st_errors : int;  (** sessions answered with an error *)
  st_degraded : int;  (** deadline-degraded best-so-far results *)
  st_deadline_expired : int;  (** sessions that hit their deadline *)
  st_retried : int;  (** transient-failure retries across all sessions *)
  st_breaker_open : int;  (** requests refused by an open breaker *)
  st_breaker_trips : int;  (** breaker open-transitions *)
  st_quarantine_storms : int;  (** completed sessions counted as failures *)
  st_inflight : int;  (** sessions running right now *)
  st_queued : int;  (** sessions admitted and waiting *)
  st_warm_entries : int;  (** cache entries restored at boot *)
  st_cache_error : Nas_error.t option;
      (** the boot-time cache-load or latest save failure, if any *)
  st_session_times_s : float array;
      (** wall times of the most recent sessions (bounded ring of 4096,
          oldest first) — enough for p50/p99 without unbounded growth *)
  st_cost : Bounded_cache.stats;  (** shared workload-cost memo counters *)
  st_fisher : Bounded_cache.stats;  (** shared Fisher memo counters *)
}

val stats : t -> stats
(** A consistent snapshot of the counters (taken under the server lock). *)

val cache_hit_rate : stats -> float
(** Shared-cache hits over (hits + misses), both memos combined; 0 when
    nothing was looked up. *)

val stats_fields : stats -> (string * float) list
(** The snapshot flattened for a ["stats"] protocol response. *)

val obs : t -> Obs.t
(** The server's observability recorder (counters and histograms above
    live here). *)

val shared_ctx : t -> Eval_ctx.t
(** The shared parent context (for tests asserting cache sharing). *)

val shutdown : t -> stats
(** Stop admitting, drain the queue, join every worker domain, write a
    final cache snapshot, and return the closing stats.  Idempotent-ish:
    a second call returns fresh stats without joining anything. *)
