(** BlockSwap [69], the paper's NAS baseline: Fisher-guided substitution of
    each transformable block from a fixed menu of cheaper convolutions,
    under a parameter budget.  Configurations are sampled at random within
    the budget and ranked by one-minibatch Fisher Potential — no training. *)

type result = {
  bs_impls : Conv_impl.t array;
  bs_model : Models.t;  (** rebuilt with the selected implementations *)
  bs_fisher : float;
  bs_params : int;  (** paper-scale parameter count *)
  bs_sampled : int;
}

val menu : Conv_impl.site -> Conv_impl.t list
(** The block menu of the NAS baseline: standard, grouped (2/4/8/16),
    bottlenecked (B=2) and depthwise-separable convolutions — no
    interleaved-sequence operators.  (Bottleneck factors beyond 2 measurably
    damage trained accuracy at our scale and are excluded from both menus;
    see DESIGN.md.) *)

val search :
  ?samples:int ->
  ?budget_ratio:float ->
  ?slack:float ->
  ?ctx:Eval_ctx.t ->
  rng:Rng.t ->
  probe:Train.batch ->
  Models.t ->
  result
(** [search ~rng ~probe model] samples configurations whose transformable
    parameter count is at most [budget_ratio] (default 0.45) of the
    original's and returns the Fisher-legal one with the highest clipped
    Fisher Potential (the same legality standard as the unified search).
    Fisher scores are memoized in [ctx] (default: the process default
    context), so resampled configurations pay neither a rebuild nor a
    probe pass. *)
