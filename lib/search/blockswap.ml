type result = {
  bs_impls : Conv_impl.t array;
  bs_model : Models.t;
  bs_fisher : float;
  bs_params : int;
  bs_sampled : int;
}

let menu site =
  List.filter (Conv_impl.valid site)
    [ Conv_impl.Full; Conv_impl.Grouped 2; Conv_impl.Grouped 4; Conv_impl.Grouped 8;
      Conv_impl.Grouped 16; Conv_impl.Bottleneck 2;
      Conv_impl.Depthwise_separable ]

let paper_scale_params model impls =
  let fixed =
    List.fold_left
      (fun acc w ->
        acc
        + (w.Conv_impl.w_in_channels * w.w_out_channels * w.w_kernel * w.w_kernel
          / w.w_groups))
      0
      (let n = List.length model.Models.fixed_workloads in
       List.filteri (fun i _ -> i < n) (Models.cost_workloads model))
  in
  Array.to_list model.Models.sites
  |> List.fold_left
       (fun acc site ->
         acc
         + Conv_impl.param_count (Models.scale_site model site)
             impls.(site.Conv_impl.site_index))
       fixed

let site_params model impls =
  Array.to_list model.Models.sites
  |> List.fold_left
       (fun acc site ->
         acc
         + Conv_impl.param_count (Models.scale_site model site)
             impls.(site.Conv_impl.site_index))
       0

(* Fisher scores are memoized in the evaluation context keyed on
   (rebuild seed, impl assignment): random sampling revisits configurations,
   and a memo hit skips both the rebuild and the probe pass. *)
let impls_signature seed impls =
  Printf.sprintf "bs|%d|%s" seed
    (String.concat ";" (Array.to_list (Array.map Conv_impl.to_string impls)))

let search ?(samples = 200) ?(budget_ratio = 0.45) ?(slack = 0.12) ?ctx ~rng ~probe
    model =
  let ctx = match ctx with Some c -> c | None -> Eval_ctx.default () in
  let obs = Eval_ctx.obs ctx in
  Obs.with_span obs "blockswap" @@ fun () ->
  let baseline_impls = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  (* The budget constrains the transformable convolutions; the fixed
     backbone (stems, shortcuts, transitions) is not substitutable. *)
  let budget =
    int_of_float (budget_ratio *. float_of_int (site_params model baseline_impls))
  in
  (* Shared rebuild seed: candidates share the weights of common layers, so
     Fisher comparisons measure structure (same device as Unified_search). *)
  let seed = Rng.int rng 1_000_000_000 in
  let score_of impls =
    Bounded_cache.remember (Eval_ctx.fisher_cache ctx) (impls_signature seed impls)
      (fun () -> Fisher.score (Models.rebuild model (Rng.create seed) impls) probe)
  in
  let baseline_scores = score_of baseline_impls in
  let best = ref None in
  let sampled = ref 0 in
  for _ = 1 to samples do
    let impls =
      Array.map
        (fun site ->
          match menu site with
          | [] -> Conv_impl.Full
          | options -> Rng.choice_list rng options)
        model.Models.sites
    in
    if site_params model impls <= budget then begin
      incr sampled;
      Obs.incr obs "blockswap.sampled";
      let scores = score_of impls in
      if Fisher.legal_clipped ~slack ~baseline:baseline_scores scores then begin
        let fisher = Fisher.clipped_total ~baseline:baseline_scores scores in
        match !best with
        | Some (_, f) when f >= fisher -> ()
        | _ -> best := Some (impls, fisher)
      end
      else Obs.incr obs "blockswap.fisher_rejected"
    end
    else Obs.incr obs "blockswap.budget_skipped"
  done;
  let impls, bs_fisher =
    match !best with
    | Some r -> r
    | None ->
        (* Budget unreachable within the legality constraint: keep the
           original network (the paper's ResNeXt case). *)
        (baseline_impls, baseline_scores.Fisher.total)
  in
  (* The winner's model is rebuilt once at the end (deterministic in the
     shared seed), so memo hits during the sweep never pay a rebuild. *)
  let bs_model =
    if impls == baseline_impls then model
    else Models.rebuild model (Rng.create seed) impls
  in
  { bs_impls = impls;
    bs_model;
    bs_fisher;
    bs_params = paper_scale_params model impls;
    bs_sampled = !sampled }
