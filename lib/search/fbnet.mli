(** FBNet [77], re-implemented over our block menu as in §7.5: a
    differentiable-style NAS that *trains* while searching.

    The original trains a supernet with Gumbel-softmax over per-layer block
    choices and a latency-aware loss.  Our substitute keeps the essential
    structure — per-site categorical logits, a latency-regularized reward,
    and gradient-free logit updates from short proxy trainings (a
    cross-entropy-method estimator of the same objective) — and charges the
    simulated training cost that the paper quotes (~3 GPU-days per
    network). *)

type result = {
  fb_impls : Conv_impl.t array;
  fb_model : Models.t;
  fb_latency_s : float;
  fb_accuracy : float;  (** proxy validation accuracy of the selected net *)
  fb_trainings : int;  (** number of proxy trainings performed *)
  fb_simulated_gpu_days : float;
}

(** Run the FBNet-style search: [rounds] cross-entropy updates of the
    per-site logits, sampling [population] networks per round and scoring
    each with a [train_steps]-step proxy training against [data], with
    latency on [device] weighted into the reward by [latency_weight].
    Spans and counters land on [ctx]'s observability recorder under the
    ["fbnet"] span. *)
val search :
  ?rounds:int ->
  ?population:int ->
  ?train_steps:int ->
  ?latency_weight:float ->
  ?ctx:Eval_ctx.t ->
  rng:Rng.t ->
  device:Device.t ->
  data:Synthetic_data.t ->
  Models.t ->
  result
