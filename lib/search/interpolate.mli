(** §7.7: interpolating between NAS models.

    NAS can only jump between the discrete blocks in its menu (here the
    grouped blocks g=2 — "NAS-A" — and g=4 — "NAS-B"); the unified
    transformation framework generates operators in between by applying
    parametrized split/group chains (realized as [Split_grouped] and mixed
    per-site assignments).  Each point is trained from scratch a few times
    to give mean accuracy with error bars, and the Pareto-optimal points are
    flagged. *)

type point = {
  ip_name : string;
  ip_kind : [ `Nas | `Ours ];
  ip_latency_s : float;
  ip_acc_mean : float;
  ip_acc_err : float;  (** standard error over training runs *)
  ip_pareto : bool;
}

val run :
  ?seeds:int ->
  ?train_steps:int ->
  ?ctx:Eval_ctx.t ->
  rng:Rng.t ->
  device:Device.t ->
  data:Synthetic_data.t ->
  Models.t ->
  point list
(** Returns NAS-A, NAS-B and the interpolated operators with trained
    accuracies and predicted latencies. *)
