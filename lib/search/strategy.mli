(** Candidate-generation strategies for {!Unified_search.search}.

    [Random] is the historical default: rejection-sampled per-site coin
    flips over {!Sequences.standard_menu}, filtered downstream by the
    static/dynamic legality sweep and the Fisher gate.  [Typed] draws
    candidates from the rule-inverted {!Sequences.typed_menu}, so every
    generated plan is structurally valid by construction and mutation
    counts stay mild.  [Guided] grows candidates beam-wise from the
    Pareto front of already-evaluated survivors (see
    {!Unified_search.search}), extending one typed site edit per round. *)

type t =
  | Random  (** historical rejection-sampled pool; bit-identical to pre-strategy runs *)
  | Typed  (** well-typed-by-construction pool from the rule-inverted menus *)
  | Guided  (** beam search over the Pareto front of typed candidates *)

val all : t list
(** Every strategy, in documentation order. *)

val to_string : t -> string
(** Wire/CLI name: ["random"], ["typed"] or ["guided"]. *)

val of_string : string -> t option
(** Parse a wire/CLI name (trimmed, case-insensitive); [None] when the
    name is not one of {!names_doc}. *)

val names_doc : string
(** The accepted spellings, ["random|typed|guided"], for usage strings. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)

val typed_site_plan : Rng.t -> Conv_impl.site -> Site_plan.t
(** One uniform draw from the mild slice of the site's
    {!Sequences.typed_menu} — entries whose compute reduction is at most
    8x, the whole menu when none qualify, baseline when the menu is
    empty.  Valid for the site by construction; the mildness cap keeps
    generated candidates inside the clipped Fisher gate's tolerance. *)

val typed_plans : Rng.t -> Models.t -> Site_plan.t array
(** A typed candidate: every site redrawn with {!typed_site_plan} — a
    coherent whole-network rewrite, valid at every site by construction.
    Full coverage is deliberate: the clipped Fisher gate penalizes the
    downstream perturbation of partially-mutated networks, so sparse
    edits survive it far less often than whole rewrites. *)

val extend_plans : Rng.t -> Models.t -> Site_plan.t array -> Site_plan.t array option
(** One guided beam step: resample a uniformly-chosen site with a typed
    draw, leaving the rest of the candidate intact — a local move in the
    typed space.  [None] only for models without sites. *)
