type t = Random | Typed | Guided

let all = [ Random; Typed; Guided ]

let to_string = function
  | Random -> "random"
  | Typed -> "typed"
  | Guided -> "guided"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "random" -> Some Random
  | "typed" -> Some Typed
  | "guided" -> Some Guided
  | _ -> None

let names_doc = "random|typed|guided"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- typed candidate generation ---------------------------------------- *)

(* The full rule-inverted menu runs all the way to degenerate factors
   (bottleneck to a single mid channel, grouping to depthwise); those are
   well-typed but capacity-destroying, so the clipped Fisher gate rejects
   them almost surely.  Generation samples the mild slice — compute
   reduction at most 8x — falling back to the whole menu when a site has
   no gentle option. *)
let mild_menu site =
  let menu = Sequences.typed_menu site in
  let mild seq =
    Conv_impl.reduction_factor site (Sequences.plan seq).Site_plan.sp_impl <= 8.0
  in
  match List.filter mild menu with [] -> menu | ms -> ms

let typed_site_plan rng site =
  match mild_menu site with
  | [] -> Site_plan.baseline
  | menu -> Sequences.plan (Rng.choice_list rng menu)

(* Full coverage, not sparse edits: the clipped Fisher gate compares
   per-site scores against the reference, and a partially-mutated network
   perturbs the activations of every *unmutated* downstream site — their
   clipped shortfalls add up.  A coherent whole-network rewrite (every
   site redrawn, mildly) keeps the per-site profile close to the
   reference's shape and survives the gate far more often than the same
   rewrite applied to a few sites (measured: ~78% vs ~40% at the pinned
   bench seed). *)
let typed_plans rng model =
  Array.map (fun site -> typed_site_plan rng site) model.Models.sites

let extend_plans rng model plans =
  let sites = model.Models.sites in
  let n = Array.length sites in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let next = Array.copy plans in
    next.(i) <- typed_site_plan rng sites.(i);
    Some next
  end
