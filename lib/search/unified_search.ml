type candidate = {
  cd_plans : Site_plan.t array;
  cd_fisher : float;
  cd_latency_s : float;
  cd_macs : int;
  cd_params : int;
}

type result = {
  r_best : candidate;
  r_baseline : Pipeline.evaluated;
  r_baseline_fisher : float;
  r_explored : int;
  r_rejected : int;
  r_quarantined : (string * Nas_error.t) list;
  r_evaluated : int;
  r_complete : bool;
  r_checkpoint_error : Nas_error.t option;
  r_wall_s : float;
}

let random_plans rng model ~mutate_prob =
  Array.map
    (fun site ->
      if Rng.uniform rng < mutate_prob then begin
        match Sequences.standard_menu site with
        | [] -> Site_plan.baseline
        | menu -> Sequences.plan (Rng.choice_list rng menu)
      end
      else Site_plan.baseline)
    model.Models.sites

let plans_signature plans =
  String.concat ";" (Array.to_list (Array.map (fun p -> p.Site_plan.sp_name) plans))

(* Quarantine output is sorted by plan signature so failure attribution is
   deterministic and diffable across runs and worker counts. *)
let sort_quarantine q = List.sort (fun (a, _) (b, _) -> compare a b) q

(* One shared rebuild seed per search: candidates share the weights of every
   layer they have in common with the reference network (label-addressed
   initialization), so Fisher differences measure structure, not seed
   noise.  The score memo lives in the evaluation context (bounded, FIFO);
   the key embeds the rebuild seed so searches sharing a context never
   collide. *)
type fisher_oracle = {
  fo_reference : Fisher.scores;
  fo_seed : int;
}

let make_oracle rng model probe =
  let fo_seed = Rng.int rng 1_000_000_000 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let reference = Models.rebuild model (Rng.create fo_seed) full in
  { fo_reference = Fisher.score reference probe; fo_seed }

let oracle_scores ctx oracle model probe plans =
  let key = Printf.sprintf "%d|%s" oracle.fo_seed (plans_signature plans) in
  Bounded_cache.remember (Eval_ctx.fisher_cache ctx) key (fun () ->
      let impls = Array.map (fun p -> p.Site_plan.sp_impl) plans in
      let candidate = Models.rebuild model (Rng.create oracle.fo_seed) impls in
      Fisher.score candidate probe)

(* Aggressiveness varies per candidate, so the pool spans mild touch-ups to
   whole-network rewrites. *)
let draw_mutate_prob rng base = Float.min 1.0 (base +. Rng.float rng 0.8)

(* Directed seed candidates: each named sequence applied uniformly across
   the network (with per-site fallback to baseline when invalid).  These
   cover the corners a modest random pool can miss and subsume the
   single-block NAS configurations. *)
let uniform_candidates model =
  let menu_union =
    Array.fold_left
      (fun acc site ->
        List.fold_left
          (fun acc seq ->
            let name = Sequences.name seq in
            if List.mem_assoc name acc then acc else (name, seq) :: acc)
          acc (Sequences.standard_menu site))
      [] model.Models.sites
  in
  List.map
    (fun (_, seq) ->
      Array.map
        (fun site ->
          if Sequences.valid site seq then Sequences.plan seq else Site_plan.baseline)
        model.Models.sites)
    menu_union

let fallback_candidate model baseline baseline_fisher =
  { cd_plans = Array.map (fun _ -> Site_plan.baseline) model.Models.sites;
    cd_fisher = baseline_fisher;
    cd_latency_s = baseline.Pipeline.ev_latency_s;
    cd_macs = baseline.Pipeline.ev_macs;
    cd_params = baseline.Pipeline.ev_params }

let generate_pool rng model ~candidates ~mutate_prob =
  let seeds = uniform_candidates model in
  let n_random = max 0 (candidates - List.length seeds) in
  Array.of_list
    (seeds
    @ List.init n_random (fun _ ->
          random_plans rng model ~mutate_prob:(draw_mutate_prob rng mutate_prob)))

(* The typed pool keeps the directed seeds (they cover the uniform corners
   both strategies need) and fills the rest with well-typed-by-construction
   candidates instead of rejection-sampled coin flips. *)
let typed_pool rng model ~candidates =
  let seeds = uniform_candidates model in
  let n_typed = max 0 (candidates - List.length seeds) in
  Array.of_list (seeds @ List.init n_typed (fun _ -> Strategy.typed_plans rng model))

(* Evaluate one candidate under guards and (optional) injected faults.
   [Some cand] = survivor, [None] = Fisher-rejected (a healthy outcome);
   every failure mode raises a structured {!Nas_error.Fail} for the
   caller to quarantine. *)
let eval_candidate ~ctx ~fault ~index ~slack ~static_filter ~oracle ~device ~probe
    ~prepared model plans =
  let obs = Eval_ctx.obs ctx in
  if Fault.trip fault ~key:index Fault.Plan_gen then
    Nas_error.fail (Nas_error.Injected_fault "plan generation");
  Obs.with_span obs "legality" (fun () ->
      if static_filter then begin
        (* Static pre-Fisher filter: [Static_check.candidate] finds the same
           first-invalid site as the dynamic sweep below (the two predicates
           are equivalence-tested), so switching the filter on or off never
           changes the search result — only where illegality is detected.
           Both counters are per-index integer adds, hence deterministic
           across worker counts. *)
        Obs.incr obs "analysis.static_checked";
        match Static_check.candidate model plans with
        | Some (i, _diags) ->
            Obs.incr obs "analysis.static_reject";
            Nas_error.invalid_plan "candidate %d: plan %s invalid for %s" index
              plans.(i).Site_plan.sp_name model.Models.sites.(i).Conv_impl.site_label
        | None -> ()
      end
      else
        Array.iteri
          (fun i p ->
            if not (Site_plan.valid model.Models.sites.(i) p) then
              Nas_error.invalid_plan "candidate %d: plan %s invalid for %s" index
                p.Site_plan.sp_name model.Models.sites.(i).Conv_impl.site_label)
          plans);
  let legal_total =
    Obs.with_span obs "fisher" (fun () ->
        let scores = oracle_scores ctx oracle model probe plans in
        let total =
          Fault.corrupt_float fault ~key:index Fault.Fisher_oracle scores.Fisher.total
        in
        let total = Guard.check_float ~source:Nas_error.Fisher_score total in
        ignore (Guard.check_array ~source:Nas_error.Fisher_score scores.Fisher.per_site);
        if Fisher.legal_clipped ~slack ~baseline:oracle.fo_reference scores then
          Some total
        else None)
  in
  match legal_total with
  | None -> None
  | Some total ->
      Obs.with_span obs "cost" (fun () ->
          let ev = Pipeline.evaluate_prepared ~ctx device prepared ~plans in
          let latency =
            Fault.corrupt_float fault ~key:index Fault.Cost_oracle
              ev.Pipeline.ev_latency_s
          in
          let latency = Guard.check_float ~source:Nas_error.Cost_model latency in
          Some
            { cd_plans = plans;
              cd_fisher = total;
              cd_latency_s = latency;
              cd_macs = ev.ev_macs;
              cd_params = ev.ev_params })

(* The ways one candidate evaluation can end.  The first three are pure
   per-index values, so replaying them in index order merges to the same
   incumbent / rejection count / quarantine set no matter how many worker
   domains produced them.  [O_skipped] only appears when a [?stop] hook
   fired — a stopped run returns its best-so-far and makes no determinism
   claim beyond that. *)
type outcome =
  | O_survivor of candidate
  | O_rejected
  | O_failed of string * Nas_error.t
  | O_skipped

(* Telemetry is recorded on [ctx]'s recorder — the worker's fork in a
   parallel run — right here, next to the candidate's spans: counters
   merge exactly (integer adds) and quarantine notes ride between the
   spans, so the merged trace and the [search.*] counters are identical
   for every worker count. *)
let eval_outcome ~ctx ~fault ~slack ~static_filter ~oracle ~device ~probe ~prepared
    model index plans =
  let obs = Eval_ctx.obs ctx in
  match
    Nas_error.guard (fun () ->
        eval_candidate ~ctx ~fault ~index ~slack ~static_filter ~oracle ~device ~probe
          ~prepared model plans)
  with
  | Ok (Some cand) ->
      Obs.incr obs "search.cost_ranked";
      O_survivor cand
  | Ok None ->
      Obs.incr obs "search.fisher_rejected";
      O_rejected
  | Error e ->
      Obs.incr obs "search.quarantined";
      Obs.note obs ~detail:(Nas_error.class_name e) "quarantine";
      O_failed (plans_signature plans, e)

(* --- checkpoint/resume -------------------------------------------------- *)

(* The pool is regenerated deterministically from the caller's RNG on
   resume, so the checkpoint only carries progress: the next pool index,
   the counters, the incumbent and the quarantine list.  [ck_key] rejects
   checkpoints from a different configuration. *)
type ckpt_state = {
  ck_key : string;
  ck_done : int;
  ck_rejected : int;
  ck_best : candidate option;
  ck_quarantine : (string * Nas_error.t) list;  (* newest first *)
}

let ckpt_key strategy model device ~pool_size ~slack =
  Printf.sprintf "%s|%s|%s|%d|%g" (Strategy.to_string strategy) model.Models.name
    device.Device.short_name pool_size slack

let load_checkpoint path key =
  match Checkpoint.load ~path with
  | Ok st when st.ck_key = key -> Some st
  | Ok _ | Error _ -> None

(* End-of-search snapshots of the engine's own accumulators.  These are
   [set], not [incr]: a context reused across searches reports its
   cumulative state.  The [cache.*] values depend on how workers split the
   pool (each fork starts with cold caches), so they are deliberately
   outside the deterministic [search.*] namespace. *)
let snapshot_engine_counters ctx =
  let obs = Eval_ctx.obs ctx in
  if Obs.enabled obs then begin
    let cs = Eval_ctx.cost_stats ctx in
    Obs.set obs "cache.cost.hits" cs.Bounded_cache.cs_hits;
    Obs.set obs "cache.cost.misses" cs.cs_misses;
    Obs.set obs "cache.cost.evictions" cs.cs_evictions;
    Obs.set obs "cache.cost.size" cs.cs_size;
    let fs = Eval_ctx.fisher_stats ctx in
    Obs.set obs "cache.fisher.hits" fs.Bounded_cache.cs_hits;
    Obs.set obs "cache.fisher.misses" fs.cs_misses;
    Obs.set obs "cache.fisher.evictions" fs.cs_evictions;
    Obs.set obs "cache.fisher.size" fs.cs_size;
    Obs.set obs "engine.tune_configs" (Eval_ctx.tune_configs ctx);
    Obs.set obs "engine.faults_injected" (Fault.injected (Eval_ctx.fault ctx))
  end

(* --- guided beam search ------------------------------------------------- *)

(* How many candidates a guided round evaluates, and how many Pareto-front
   members seed the next round.  Small rounds keep the front fresh (later
   rounds see more evaluated survivors); eight extensions per round keeps
   a worker pool busy without outrunning the front. *)
let guided_round_size = 8
let guided_beam_width = 4

(* Next guided round: extend the Pareto front of everything that survived
   so far by one typed site edit each, then top the round up with fresh
   mild typed candidates.  All RNG draws happen here on the main domain,
   so the round sequence is a pure function of the evaluation outcomes —
   deterministic for every worker count. *)
let guided_next_round rng model ~seen ~survivors ~room =
  let fresh plans =
    let s = plans_signature plans in
    if Hashtbl.mem seen s then false
    else begin
      Hashtbl.add seen s ();
      true
    end
  in
  let points =
    List.mapi
      (fun j c ->
        { Pareto.pt_name = string_of_int j;
          pt_latency_s = c.cd_latency_s;
          pt_accuracy = c.cd_fisher })
      survivors
  in
  let front = Pareto.front points in
  let beam =
    List.filteri (fun k _ -> k < guided_beam_width) front
    |> List.map (fun (p : Pareto.point) ->
           (List.nth survivors (int_of_string p.Pareto.pt_name)).cd_plans)
  in
  let extensions =
    List.concat_map
      (fun plans ->
        List.filter_map
          (fun () ->
            match Strategy.extend_plans rng model plans with
            | Some next when fresh next -> Some next
            | Some _ | None -> None)
          [ (); () ])
      beam
  in
  let target = min room guided_round_size in
  let rec top_up acc need attempts =
    if need <= 0 || attempts <= 0 then List.rev acc
    else
      let plans = Strategy.typed_plans rng model in
      if fresh plans then top_up (plans :: acc) (need - 1) (attempts - 1)
      else top_up acc need (attempts - 1)
  in
  let extensions = List.filteri (fun k _ -> k < target) extensions in
  extensions @ top_up [] (target - List.length extensions) (8 * target)

(* The guided evaluation loop.  Rounds alternate generation (main domain,
   RNG-ordered) with evaluation (serial or parallel; outcomes merge in
   index order), so the result is deterministic for every worker count.
   Checkpointing is not supported — the round state is cheap to recompute
   and a guided run is budget-capped anyway. *)
let guided_run ~ctx ~fault ~slack ~static_filter ~oracle ~device ~probe ~prepared
    ~stop ~workers ~schedule ~on_sched_stats ~rng ~limit model =
  let explored = ref 0 in
  let rejected = ref 0 in
  let processed = ref 0 in
  let best = ref None in
  let quarantine_rev = ref [] in
  let survivors_rev = ref [] in
  let skipped = ref false in
  let seen = Hashtbl.create 64 in
  let seeds = uniform_candidates model in
  List.iter (fun plans -> Hashtbl.replace seen (plans_signature plans) ()) seeds;
  let round = ref (List.filteri (fun k _ -> k < limit) seeds) in
  if !round = [] then
    round := guided_next_round rng model ~seen ~survivors:[] ~room:limit;
  while !round <> [] && !explored < limit && not !skipped do
    let room = limit - !explored in
    let arr = Array.of_list (List.filteri (fun k _ -> k < room) !round) in
    let base = !explored in
    let eval wctx i =
      if stop () then O_skipped
      else
        eval_outcome ~ctx:wctx ~fault:(Eval_ctx.fault wctx) ~slack ~static_filter
          ~oracle ~device ~probe ~prepared model (base + i) arr.(i)
    in
    let outcomes =
      if workers <= 1 || Array.length arr <= 1 then
        Array.mapi (fun i _ -> eval ctx i) arr
      else
        Parallel_eval.map_range ~schedule ?on_stats:on_sched_stats ~workers ~ctx
          ~first:0 ~limit:(Array.length arr) eval
    in
    Array.iter
      (function
        | O_survivor cand ->
            incr processed;
            survivors_rev := cand :: !survivors_rev;
            (match !best with
            | Some b when b.cd_latency_s <= cand.cd_latency_s -> ()
            | _ -> best := Some cand)
        | O_rejected ->
            incr processed;
            incr rejected
        | O_failed (label, e) ->
            incr processed;
            quarantine_rev := (label, e) :: !quarantine_rev
        | O_skipped -> skipped := true)
      outcomes;
    explored := !explored + Array.length arr;
    if !explored < limit && not !skipped then
      round :=
        guided_next_round rng model ~seen
          ~survivors:(List.rev !survivors_rev)
          ~room:(limit - !explored)
    else round := []
  done;
  ignore fault;
  (!best, !explored, !rejected, !quarantine_rev, !processed, !skipped)

let search ?(candidates = 1000) ?(mutate_prob = 0.25) ?(slack = 0.12)
    ?(static_filter = true) ?(stop = fun () -> false) ?fault ?budget ?checkpoint
    ?checkpoint_every ?(workers = 1) ?(schedule = Parallel_eval.Dynamic)
    ?on_sched_stats ?(strategy = Strategy.Random) ?ctx ~rng ~device ~probe model =
  let start = Unix.gettimeofday () in
  (* Resolve the context: explicit knob arguments override the context's,
     which override the defaults. *)
  let ctx =
    Eval_ctx.with_knobs ?fault ?budget ?checkpoint ?checkpoint_every
      (Eval_ctx.with_device
         (match ctx with Some c -> c | None -> Eval_ctx.default ())
         device)
  in
  let fault = Eval_ctx.fault ctx in
  let budget = Eval_ctx.budget ctx in
  let checkpoint = Eval_ctx.checkpoint ctx in
  let checkpoint_every = Eval_ctx.checkpoint_every ctx in
  let obs = Eval_ctx.obs ctx in
  Obs.with_span obs "search" @@ fun () ->
  (* Candidate-independent setup, hoisted out of the per-candidate hot
     loop: scaled sites and fixed workload dims are computed once per
     search and shared (immutably) by every worker domain. *)
  let prepared = Pipeline.prepare model in
  let baseline =
    Obs.with_span obs "baseline" (fun () ->
        Pipeline.evaluate_prepared ~ctx device prepared
          ~plans:(Array.map (fun _ -> Site_plan.baseline) model.Models.sites))
  in
  let oracle, pool =
    Obs.with_span obs "generate" (fun () ->
        let oracle = make_oracle rng model probe in
        let pool =
          match strategy with
          | Strategy.Random -> generate_pool rng model ~candidates ~mutate_prob
          | Strategy.Typed -> typed_pool rng model ~candidates
          | Strategy.Guided -> [||] (* rounds are generated during evaluation *)
        in
        (oracle, pool))
  in
  let baseline_fisher = oracle.fo_reference.Fisher.total in
  if strategy = Strategy.Guided then begin
    let limit = match budget with Some b -> min candidates b | None -> candidates in
    let best, explored, rejected, quarantine_rev, processed, skipped =
      Obs.with_span obs "evaluate" (fun () ->
          guided_run ~ctx ~fault ~slack ~static_filter ~oracle ~device ~probe
            ~prepared ~stop ~workers ~schedule ~on_sched_stats ~rng ~limit model)
    in
    Obs.set obs "search.generated" explored;
    Obs.set obs "search.resumed" 0;
    let best_cand =
      Obs.with_span obs "select" (fun () ->
          match best with
          | Some b -> b
          | None -> fallback_candidate model baseline baseline_fisher)
    in
    snapshot_engine_counters ctx;
    { r_best = best_cand;
      r_baseline = baseline;
      r_baseline_fisher = baseline_fisher;
      r_explored = explored;
      r_rejected = rejected;
      r_quarantined = sort_quarantine quarantine_rev;
      r_evaluated = processed;
      r_complete = not skipped;
      r_checkpoint_error = None;
      r_wall_s = Unix.gettimeofday () -. start }
  end
  else begin
  let n = Array.length pool in
  let key = ckpt_key strategy model device ~pool_size:n ~slack in
  let resumed =
    match checkpoint with Some path -> load_checkpoint path key | None -> None
  in
  let first, rejected0, best0, quarantine0 =
    match resumed with
    | Some st -> (min st.ck_done n, st.ck_rejected, st.ck_best, st.ck_quarantine)
    | None -> (0, 0, None, [])
  in
  let rejected = ref rejected0 in
  let best = ref best0 in
  let quarantine_rev = ref quarantine0 in
  let checkpoint_error = ref None in
  let save_checkpoint done_ =
    match checkpoint with
    | None -> ()
    | Some path -> (
        match
          Checkpoint.save ~path
            { ck_key = key;
              ck_done = done_;
              ck_rejected = !rejected;
              ck_best = !best;
              ck_quarantine = !quarantine_rev }
        with
        | Ok () -> ()
        | Error e -> if !checkpoint_error = None then checkpoint_error := Some e)
  in
  (* The budget caps cumulative evaluations (resumed progress included), so
     the range of indices to process this run is known up front — which is
     what lets a worker pool split it deterministically. *)
  let limit = match budget with Some b -> min n (max first b) | None -> n in
  let stopped = limit < n in
  (* The [search.*] counters are the deterministic namespace: every value
     below is a pure function of the search configuration, so they are
     bit-identical across worker counts (unlike [cache.*] hit rates, which
     depend on how the pool was split). *)
  Obs.set obs "search.generated" n;
  Obs.set obs "search.resumed" first;
  let processed = ref 0 in
  let first_skip = ref None in
  let merge_outcome i = function
    | O_survivor cand ->
        incr processed;
        (match !best with
        | Some b when b.cd_latency_s <= cand.cd_latency_s -> ()
        | _ -> best := Some cand)
    | O_rejected ->
        incr processed;
        incr rejected
    | O_failed (label, e) ->
        incr processed;
        quarantine_rev := (label, e) :: !quarantine_rev
    | O_skipped -> if !first_skip = None then first_skip := Some i
  in
  Obs.with_span obs "evaluate" (fun () ->
      if workers <= 1 then begin
        (* Sequential path: shared caches across the whole pool, periodic
           checkpoints.  The [stop] hook is polled between candidates: a
           fired hook ends the run at the current index, which the final
           checkpoint records so a resume continues exactly there. *)
        let i = ref first in
        let stopping = ref false in
        while !i < limit && not !stopping do
          if stop () then begin
            stopping := true;
            first_skip := Some !i
          end
          else begin
            merge_outcome !i
              (eval_outcome ~ctx ~fault ~slack ~static_filter ~oracle ~device ~probe
                 ~prepared model !i pool.(!i));
            incr i;
            if checkpoint <> None && !i mod checkpoint_every = 0 && !i < n then
              save_checkpoint !i
          end
        done
      end
      else
        (* Parallel path: per-domain context forks pull candidates under
           the chosen schedule (dynamic by default — idle domains claim
           the next unclaimed index); outcomes come back in index order,
           so the sequential merge below reproduces the workers=1 result
           exactly for either schedule.  Workers poll [stop] per candidate
           (the hook must be domain-safe), so a deadline cancels in-flight
           work at candidate granularity. *)
        Array.iteri
          (fun off o -> merge_outcome (first + off) o)
          (Parallel_eval.map_range ~schedule ?on_stats:on_sched_stats ~workers ~ctx
             ~first ~limit (fun wctx i ->
               if stop () then O_skipped
               else
                 eval_outcome ~ctx:wctx ~fault:(Eval_ctx.fault wctx) ~slack
                   ~static_filter ~oracle ~device ~probe ~prepared model i pool.(i))));
  (* Resume point: the first unprocessed index.  When the stop hook fired
     mid-pool, candidates past it that a parallel worker already finished
     are simply re-evaluated on resume (they are deterministic). *)
  let reached =
    match !first_skip with Some i -> i | None -> if stopped then limit else n
  in
  save_checkpoint reached;
  let best_cand =
    Obs.with_span obs "select" (fun () ->
        match !best with
        | Some b -> b
        | None -> fallback_candidate model baseline baseline_fisher)
  in
  snapshot_engine_counters ctx;
  { r_best = best_cand;
    r_baseline = baseline;
    r_baseline_fisher = baseline_fisher;
    r_explored = n;
    r_rejected = !rejected;
    r_quarantined = sort_quarantine !quarantine_rev;
    r_evaluated = !processed;
    r_complete = (not stopped) && !first_skip = None;
    r_checkpoint_error = !checkpoint_error;
    r_wall_s = Unix.gettimeofday () -. start }
  end

let speedup r = r.r_baseline.Pipeline.ev_latency_s /. r.r_best.cd_latency_s

let quarantine_counts r = Nas_error.count_classes r.r_quarantined

let search_multi ?(candidates = 1000) ?(mutate_prob = 0.25) ?(slack = 0.12) ?ctx ~rng
    ~devices ~probe model =
  let ctx = match ctx with Some c -> c | None -> Eval_ctx.default () in
  let start = Unix.gettimeofday () in
  let oracle = make_oracle rng model probe in
  let baseline_fisher = oracle.fo_reference.Fisher.total in
  (* Phase 1 (device-independent): generate the pool and Fisher-filter it,
     quarantining candidates whose scores fail the guards. *)
  let supervisor = Supervisor.create () in
  let rejected = ref 0 in
  let survivors = ref [] in
  let pool = generate_pool rng model ~candidates ~mutate_prob in
  Array.iter
    (fun plans ->
      match
        Supervisor.run supervisor ~label:(plans_signature plans) (fun () ->
            let scores = oracle_scores ctx oracle model probe plans in
            let total =
              Guard.check_float ~source:Nas_error.Fisher_score scores.Fisher.total
            in
            ignore
              (Guard.check_array ~source:Nas_error.Fisher_score scores.Fisher.per_site);
            if Fisher.legal_clipped ~slack ~baseline:oracle.fo_reference scores then
              Some (plans, total)
            else None)
      with
      | Ok (Some survivor) -> survivors := survivor :: !survivors
      | Ok None -> incr rejected
      | Error _ -> ())
    pool;
  let quarantined = Supervisor.quarantined supervisor in
  let wall_shared = Unix.gettimeofday () -. start in
  (* Phase 2 (per device): rank the survivors with the cost model.  A
     candidate whose cost blows up on one device stays rankable on the
     others. *)
  List.map
    (fun device ->
      let dev_start = Unix.gettimeofday () in
      let baseline = Pipeline.baseline ~ctx device model in
      let dev_supervisor = Supervisor.create () in
      let best = ref None in
      List.iter
        (fun (plans, fisher) ->
          match
            Supervisor.run dev_supervisor ~label:(plans_signature plans) (fun () ->
                let ev = Pipeline.evaluate ~ctx device model ~plans in
                let latency =
                  Guard.check_float ~source:Nas_error.Cost_model
                    ev.Pipeline.ev_latency_s
                in
                { cd_plans = plans;
                  cd_fisher = fisher;
                  cd_latency_s = latency;
                  cd_macs = ev.ev_macs;
                  cd_params = ev.ev_params })
          with
          | Ok cand -> (
              match !best with
              | Some b when b.cd_latency_s <= cand.cd_latency_s -> ()
              | _ -> best := Some cand)
          | Error _ -> ())
        !survivors;
      let best =
        match !best with
        | Some b -> b
        | None -> fallback_candidate model baseline baseline_fisher
      in
      ( device,
        { r_best = best;
          r_baseline = baseline;
          r_baseline_fisher = baseline_fisher;
          r_explored = Array.length pool;
          r_rejected = !rejected;
          r_quarantined =
            sort_quarantine (quarantined @ Supervisor.quarantined dev_supervisor);
          r_evaluated = Array.length pool;
          r_complete = true;
          r_checkpoint_error = None;
          r_wall_s = wall_shared +. (Unix.gettimeofday () -. dev_start) } ))
    devices
