type result = {
  fb_impls : Conv_impl.t array;
  fb_model : Models.t;
  fb_latency_s : float;
  fb_accuracy : float;
  fb_trainings : int;
  fb_simulated_gpu_days : float;
}

let softmax_sample rng logits =
  let mx = Array.fold_left max neg_infinity logits in
  let exps = Array.map (fun l -> exp (l -. mx)) logits in
  let total = Array.fold_left ( +. ) 0.0 exps in
  let u = Rng.uniform rng *. total in
  let acc = ref 0.0 and choice = ref 0 in
  Array.iteri
    (fun i e ->
      if !acc <= u then choice := i;
      acc := !acc +. e)
    exps;
  !choice

let latency_of ?ctx device model impls =
  let plans = Array.map (fun impl -> Site_plan.make impl) impls in
  (Pipeline.evaluate ?ctx device model ~plans).Pipeline.ev_latency_s

let search ?(rounds = 4) ?(population = 6) ?(train_steps = 40)
    ?(latency_weight = 0.35) ?ctx ~rng ~device ~data model =
  let ctx = match ctx with Some c -> c | None -> Eval_ctx.default () in
  let obs = Eval_ctx.obs ctx in
  Obs.with_span obs "fbnet" @@ fun () ->
  let menus = Array.map Blockswap.menu model.Models.sites in
  let menus = Array.map Array.of_list menus in
  let logits = Array.map (fun m -> Array.make (max 1 (Array.length m)) 0.0) menus in
  let baseline_latency = latency_of ~ctx device model (Array.map (fun _ -> Conv_impl.Full) model.Models.sites) in
  let trainings = ref 0 in
  let eval_config impls =
    (* Short proxy training: the expensive step FBNet pays at every
       evaluation and the unified approach avoids entirely. *)
    incr trainings;
    Obs.incr obs "fbnet.trainings";
    let candidate = Models.rebuild model (Rng.split rng) impls in
    let batch_rng = Rng.split rng in
    let steps = train_steps in
    let _ =
      Train.train candidate ~steps
        ~batch_fn:(fun step -> Synthetic_data.batch_fn batch_rng data ~batch_size:16 step)
        ~base_lr:0.05
    in
    let val_batches =
      List.filteri (fun i _ -> i < 4) (Synthetic_data.batches data ~batch_size:16)
    in
    let acc = Train.evaluate candidate val_batches in
    let lat = latency_of ~ctx device model impls in
    let reward = acc -. (latency_weight *. (lat /. baseline_latency)) in
    (reward, acc, lat, candidate)
  in
  let best = ref None in
  for _round = 1 to rounds do
    let scored =
      List.init population (fun _ ->
          let choices = Array.mapi (fun i m -> if Array.length m = 0 then 0 else softmax_sample rng logits.(i) mod Array.length m) menus in
          let impls = Array.mapi (fun i m -> if Array.length m = 0 then Conv_impl.Full else m.(choices.(i))) menus in
          let reward, acc, lat, candidate = eval_config impls in
          (match !best with
          | Some (r, _, _, _, _) when r >= reward -> ()
          | _ -> best := Some (reward, impls, candidate, acc, lat));
          (reward, choices))
    in
    (* Cross-entropy update: push logits towards the elite half. *)
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored in
    let elite = List.filteri (fun i _ -> i < max 1 (population / 2)) sorted in
    List.iter
      (fun (_, choices) ->
        Array.iteri
          (fun site choice ->
            if Array.length logits.(site) > 0 then
              logits.(site).(choice) <- logits.(site).(choice) +. 0.5)
          choices)
      elite
  done;
  match !best with
  | None -> failwith "fbnet: empty search"
  | Some (_, impls, candidate, acc, lat) ->
      (* The paper charges FBNet ~3 GPU-days of search training per network;
         we scale that by the fraction of proxy trainings actually run. *)
      let gpu_days = 3.0 *. float_of_int !trainings /. float_of_int (rounds * population) in
      { fb_impls = impls;
        fb_model = candidate;
        fb_latency_s = lat;
        fb_accuracy = acc;
        fb_trainings = !trainings;
        fb_simulated_gpu_days = gpu_days }
