type point = {
  ip_name : string;
  ip_kind : [ `Nas | `Ours ];
  ip_latency_s : float;
  ip_acc_mean : float;
  ip_acc_err : float;
  ip_pareto : bool;
}

(* The interpolated configurations: per-site assignments stepping from
   all-g=2 to all-g=4 through mixtures and the split-grouped operator the
   framework synthesizes. *)
let configurations model =
  let sites = model.Models.sites in
  let g g_factor site = if Conv_impl.valid site (Conv_impl.Grouped g_factor) then Conv_impl.Grouped g_factor else Conv_impl.Full in
  let sg site =
    if Conv_impl.valid site (Conv_impl.Split_grouped (2, 4)) then
      Conv_impl.Split_grouped (2, 4)
    else if Conv_impl.valid site (Conv_impl.Grouped 2) then Conv_impl.Grouped 2
    else Conv_impl.Full
  in
  let all f = Array.map f sites in
  [ ("NAS-A (g=2)", `Nas, all (g 2));
    ("NAS-B (g=4)", `Nas, all (g 4));
    ( "ours 1/4",
      `Ours,
      Array.mapi (fun i site -> if i mod 4 = 0 then g 4 site else g 2 site) sites );
    ("ours split-group", `Ours, all sg);
    ( "ours 3/4",
      `Ours,
      Array.mapi (fun i site -> if i mod 4 = 0 then g 2 site else g 4 site) sites );
    ( "ours alternating",
      `Ours,
      Array.mapi (fun i site -> if i mod 2 = 0 then sg site else g 4 site) sites ) ]

let run ?(seeds = 3) ?(train_steps = 60) ?ctx ~rng ~device ~data model =
  let ctx = match ctx with Some c -> c | None -> Eval_ctx.default () in
  let obs = Eval_ctx.obs ctx in
  Obs.with_span obs "interpolate" @@ fun () ->
  let val_batches =
    List.filteri (fun i _ -> i < 4) (Synthetic_data.batches data ~batch_size:16)
  in
  let evaluate_config (name, kind, impls) =
    Obs.incr obs "interpolate.configs";
    let accs =
      Array.init seeds (fun _ ->
          let candidate = Models.rebuild model (Rng.split rng) impls in
          let batch_rng = Rng.split rng in
          let _ =
            Train.train candidate ~steps:train_steps
              ~batch_fn:(fun step ->
                Synthetic_data.batch_fn batch_rng data ~batch_size:16 step)
              ~base_lr:0.05
          in
          Train.evaluate candidate val_batches)
    in
    let plans = Array.map (fun impl -> Site_plan.make impl) impls in
    let latency = (Pipeline.evaluate ~ctx device model ~plans).Pipeline.ev_latency_s in
    { ip_name = name;
      ip_kind = kind;
      ip_latency_s = latency;
      ip_acc_mean = Stats.mean accs;
      ip_acc_err = Stats.stderr_of_mean accs;
      ip_pareto = false }
  in
  let points = List.map evaluate_config (configurations model) in
  let as_pareto =
    List.map
      (fun p ->
        { Pareto.pt_name = p.ip_name;
          pt_latency_s = p.ip_latency_s;
          pt_accuracy = p.ip_acc_mean })
      points
  in
  List.map
    (fun p ->
      { p with
        ip_pareto =
          Pareto.is_pareto_optimal
            { Pareto.pt_name = p.ip_name;
              pt_latency_s = p.ip_latency_s;
              pt_accuracy = p.ip_acc_mean }
            as_pareto })
    points
