(** The paper's unified search (§6): enumerate random interleaved
    transformation sequences, reject capacity-damaging candidates with the
    Fisher Potential legality check (no training), and rank the survivors
    with the autotuned hardware cost model.

    Candidate evaluation is supervised: a malformed plan, a non-finite
    Fisher score or a cost-model divergence quarantines that one candidate
    (recorded with a structured {!Nas_error.t}) and the search continues to
    a valid survivor.  A deterministic fault-injection layer ({!Fault}) and
    checkpoint/resume make the degradation path testable and an
    interrupted search resumable. *)

type candidate = {
  cd_plans : Site_plan.t array;
  cd_fisher : float;
  cd_latency_s : float;
  cd_macs : int;
  cd_params : int;
}

type result = {
  r_best : candidate;
  r_baseline : Pipeline.evaluated;
  r_baseline_fisher : float;
  r_explored : int;  (** configurations generated *)
  r_rejected : int;  (** configurations rejected by the Fisher check *)
  r_quarantined : (string * Nas_error.t) list;
      (** failed candidates: (plan signature, structured error), sorted by
          signature so the attribution output is deterministic and
          diffable across runs and worker counts *)
  r_evaluated : int;  (** configurations processed in this run *)
  r_complete : bool;  (** false iff the run stopped on its work budget *)
  r_checkpoint_error : Nas_error.t option;
      (** first checkpoint-write failure, if any — the search itself is
          unaffected, but resume will not be possible *)
  r_wall_s : float;  (** search wall-clock time *)
}

val random_plans :
  Rng.t -> Models.t -> mutate_prob:float -> Site_plan.t array
(** One candidate configuration: each site is left at baseline or assigned a
    random valid sequence from {!Sequences.standard_menu} with probability
    [mutate_prob]. *)

val plans_signature : Site_plan.t array -> string
(** The per-site plan names joined with [";"] — the key used for Fisher
    memoization, quarantine attribution and checkpointing. *)

val search :
  ?candidates:int ->
  ?mutate_prob:float ->
  ?slack:float ->
  ?static_filter:bool ->
  ?stop:(unit -> bool) ->
  ?fault:Fault.t ->
  ?budget:int ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?workers:int ->
  ?schedule:Parallel_eval.schedule ->
  ?on_sched_stats:(Parallel_eval.run_stats -> unit) ->
  ?strategy:Strategy.t ->
  ?ctx:Eval_ctx.t ->
  rng:Rng.t ->
  device:Device.t ->
  probe:Train.batch ->
  Models.t ->
  result
(** Runs the search (default 1000 candidates, as in §6).  [probe] is the
    fixed minibatch used for every Fisher evaluation; [slack] is the Fisher
    legality slack.

    [static_filter] (default true) vets each candidate's per-site plans
    with the static analyzer ([Static_check.candidate]) instead of the
    dynamic [Site_plan.valid] sweep.  The two predicates are equivalent
    (asserted by a test), so the search result is bit-identical either
    way for any [workers] count; the filter adds the deterministic
    [analysis.static_checked] / [analysis.static_reject] counters that
    {!Report} surfaces as the static-vs-Fisher rejection split.

    [stop] (default: never) is a cooperative cancellation hook polled
    between candidate evaluations — the daemon installs a deadline
    watchdog here.  Once it returns true the run stops, returns its
    best-so-far incumbent with [r_complete = false], and saves a resumable
    checkpoint at the first unprocessed index.  With [workers > 1] the
    hook is polled from every worker domain, so it must be domain-safe
    (e.g. {!Deadline.expired} on the shared monotonic clock); cancellation
    is at candidate granularity.  A run whose hook never fires is
    bit-identical to one without a hook.

    [ctx] (default: the process default context) owns the memo caches and
    the default evaluation knobs; an explicit [fault] / [budget] /
    [checkpoint] / [checkpoint_every] argument overrides the context's.

    [workers] (default 1) evaluates the candidate pool on that many OCaml 5
    domains, each against its own context fork.  Outcomes are merged in
    candidate-index order, so any worker count returns the identical best
    candidate, rejection count and (sorted) quarantine list; per-worker
    cache and fault telemetry is folded back into [ctx].  [workers = 1]
    routes through the sequential path with zero scheduling overhead.

    [schedule] (default {!Parallel_eval.Dynamic}) picks how candidates are
    assigned to worker domains: [Dynamic] has idle domains pull the next
    unclaimed index (skewed per-candidate costs rebalance automatically),
    [Static] assigns fixed contiguous chunks.  Results, [search.*]
    counters and trace content are bit-identical for either schedule.

    [on_sched_stats] (parallel runs only) receives the scheduler's
    per-worker item/steal/busy accounting after the evaluation phase —
    timing-dependent telemetry, deliberately outside the deterministic
    result; BENCH_search.json records it as per-worker utilization.

    [fault] (default {!Fault.none}) injects deterministic faults into the
    Fisher oracle / cost model / plan generation; the corrupted candidates
    are quarantined and the search still completes.

    [budget] caps cumulative candidate evaluations; on exhaustion the
    search saves a checkpoint (if [checkpoint] is set), returns its
    incumbent and reports [r_complete = false].

    [checkpoint] names a snapshot file: progress is saved every
    [checkpoint_every] candidates (default 25; parallel runs snapshot on
    completion) and an existing compatible snapshot is resumed instead of
    restarting.  The candidate pool is regenerated deterministically from
    [rng], so a resumed search reproduces the uninterrupted run's best
    candidate.

    [strategy] (default {!Strategy.Random}) picks the candidate
    generator.  [Random] keeps the historical pool — directed seeds plus
    rejection-sampled coin flips — bit-identical to runs predating this
    argument for any [workers] count or [schedule] (asserted by a test).
    [Typed] keeps the seeds and fills the pool with
    well-typed-by-construction candidates drawn from the rule-inverted
    {!Sequences.typed_menu}; the pool is still deterministic in [rng], so
    checkpointing and parallel evaluation behave exactly as for [Random].
    [Guided] replaces the precomputed pool with beam rounds: directed
    seeds first, then each round resamples one site of each Pareto-front
    member (latency vs. Fisher, {!Pareto.front}) of the survivors so far,
    topping up with fresh typed candidates; rounds stop at [candidates]
    (or [budget]) cumulative evaluations.  Guided runs honor
    [stop], [budget], [workers] and [schedule] (deterministic merge as
    above) but ignore [checkpoint] — [r_checkpoint_error] is always
    [None]. *)

val speedup : result -> float
(** Baseline latency over best-candidate latency. *)

val quarantine_counts : result -> (string * int) list
(** Per-error-class quarantine counts (see {!Nas_error.class_name}). *)

val search_multi :
  ?candidates:int ->
  ?mutate_prob:float ->
  ?slack:float ->
  ?ctx:Eval_ctx.t ->
  rng:Rng.t ->
  devices:Device.t list ->
  probe:Train.batch ->
  Models.t ->
  (Device.t * result) list
(** Like {!search} for several devices at once: the candidate pool and its
    Fisher evaluations (the expensive part) are shared; only the cost
    ranking is per-device.  Guarded like {!search} (shared-phase
    quarantines appear in every device's [r_quarantined]); fault injection
    and checkpointing are single-device features. *)
