type t = {
  mutable sv_evaluated : int;
  mutable sv_quarantine : (string * Nas_error.t) list;  (* newest first *)
  sv_budget : int option;
  mutable sv_budget_hit : bool;
}

let create ?budget () =
  { sv_evaluated = 0; sv_quarantine = []; sv_budget = budget; sv_budget_hit = false }

let restore t ~evaluated ~quarantine =
  t.sv_evaluated <- evaluated;
  t.sv_quarantine <- quarantine

let budget_exhausted t =
  match t.sv_budget with Some b -> t.sv_evaluated >= b | None -> false

let budget_hit t = t.sv_budget_hit

let run t ~label f =
  if budget_exhausted t then begin
    t.sv_budget_hit <- true;
    Error (Nas_error.Budget_exceeded label)
  end
  else begin
    t.sv_evaluated <- t.sv_evaluated + 1;
    match f () with
    | v -> Ok v
    | exception e -> (
        match Nas_error.of_exn e with
        | Some err ->
            t.sv_quarantine <- (label, err) :: t.sv_quarantine;
            Error err
        | None -> raise e)
  end

let evaluated t = t.sv_evaluated
let quarantined t = List.rev t.sv_quarantine
let raw_quarantine t = t.sv_quarantine
let class_counts t = Nas_error.count_classes t.sv_quarantine

let pp_report ppf t =
  let q = List.length t.sv_quarantine in
  Format.fprintf ppf "candidates evaluated: %d, quarantined: %d" t.sv_evaluated q;
  if budget_hit t then Format.fprintf ppf " (budget exhausted)";
  if q > 0 then begin
    Format.fprintf ppf "@.failure attribution:";
    List.iter
      (fun (cls, n) -> Format.fprintf ppf "@.  %-28s %d" cls n)
      (class_counts t)
  end
