(** Structured error taxonomy for candidate evaluation.

    The search treats a failed candidate as data, not as a crash: every
    failure mode that used to escape as a raw [Invalid_argument] or
    [Failure] is classified here, so the supervisor can quarantine the
    candidate, attribute the failure, and continue to a valid survivor. *)

type source =
  | Fisher_score  (** the Fisher Potential oracle ({!Fisher.score}) *)
  | Cost_model  (** the analytic hardware cost model *)
  | Plan_gen  (** candidate plan generation *)
  | Tensor_data  (** raw tensor contents *)

type t =
  | Invalid_plan of string  (** a plan inapplicable to its site *)
  | Shape_mismatch of string  (** arity / dimension disagreement *)
  | Non_finite of source  (** a NaN or infinity reached a ranking value *)
  | Budget_exceeded of string  (** the supervisor's work budget ran out *)
  | Injected_fault of string  (** a deliberate test-harness fault *)
  | Checkpoint_error of string  (** checkpoint serialization / IO failure *)
  | Io_error of string  (** an operating-system I/O failure (e.g. [Unix_error]) *)
  | Timed_out of string  (** a deadline expired before the work finished *)
  | Eval_failure of string  (** anything else recoverable *)

exception Fail of t
(** The exception carrying a structured error across evaluation code. *)

val fail : t -> 'a
(** [fail e] raises {!Fail}[ e]. *)

val invalid_plan : ('a, unit, string, 'b) format4 -> 'a
(** [invalid_plan fmt ...] fails with a formatted {!Invalid_plan}. *)

val shape_mismatch : ('a, unit, string, 'b) format4 -> 'a
(** [shape_mismatch fmt ...] fails with a formatted {!Shape_mismatch}. *)

val source_to_string : source -> string
(** Stable label for a failure source ("fisher-score", "cost-model", ...). *)

val class_name : t -> string
(** Short stable label for failure attribution ("invalid-plan",
    "non-finite:fisher-score", ...); the payload message is dropped. *)

val to_string : t -> string
(** Human-readable rendering: class label plus the payload message. *)

val pp : Format.formatter -> t -> unit
(** Formatter version of {!to_string}. *)

val of_exn : exn -> t option
(** Classify an exception: structured errors pass through, operating-system
    failures ([Unix.Unix_error], [Sys_error]) become {!Io_error}, the
    legacy stdlib escapes ([Invalid_argument], [Failure],
    [Division_by_zero], [Assert_failure]) are mapped into the taxonomy,
    anything else (e.g. [Out_of_memory], [Stack_overflow]) returns [None]
    and should keep propagating.  Classifying I/O failures is what lets a
    daemon quarantine one session instead of dying with it. *)

val transient : t -> bool
(** Whether a retry with backoff has a chance of succeeding: true for
    environmental failures ({!Io_error}, {!Injected_fault},
    {!Checkpoint_error}), false for deterministic candidate/request
    failures — and false for {!Timed_out}, whose deadline has already
    passed. *)

val guard : (unit -> 'a) -> ('a, t) result
(** [guard f] runs [f], catching every exception {!of_exn} can classify.
    Unclassified exceptions propagate. *)

val count_classes : ('a * t) list -> (string * int) list
(** Failure attribution: per-{!class_name} counts over a quarantine list,
    sorted by descending count then name. *)
