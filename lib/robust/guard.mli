(** Numeric guards.

    A NaN propagating into a ranking comparison is worse than a crash: in
    OCaml every [<=] against NaN is [false], so a NaN-scored candidate can
    silently rank as best (or shield the true best).  These guards convert
    any non-finite value into a structured {!Nas_error.Non_finite} rejection
    at the point where it is produced. *)

val finite : float -> bool
(** [true] iff the value is neither NaN nor infinite. *)

val all_finite : float array -> bool
(** {!finite} on every element. *)

val check_float : source:Nas_error.source -> float -> float
(** Identity on finite floats; {!Nas_error.fail}s with [Non_finite source]
    on NaN or infinity. *)

val check_array : source:Nas_error.source -> float array -> float array
(** Checks every element. *)

val check_tensor : source:Nas_error.source -> Tensor.t -> Tensor.t
(** Checks every element of the tensor's data. *)

val float_result : source:Nas_error.source -> float -> (float, Nas_error.t) result
(** Non-raising variant of {!check_float}. *)
