type state = Closed | Open | Half_open

type entry = {
  mutable en_state : state;
  mutable en_failures : int;  (* consecutive failures while Closed *)
  mutable en_opened_at : float;
}

type t = {
  br_clock : Deadline.clock;
  br_threshold : int;
  br_cooldown_s : float;
  br_tbl : (string, entry) Hashtbl.t;
  mutable br_trips : int;
}

let create ?(clock = Deadline.monotonic) ?(threshold = 5) ?(cooldown_s = 30.0) () =
  { br_clock = clock;
    br_threshold = max 1 threshold;
    br_cooldown_s = Float.max 0.0 cooldown_s;
    br_tbl = Hashtbl.create 8;
    br_trips = 0 }

let entry t key =
  match Hashtbl.find_opt t.br_tbl key with
  | Some e -> e
  | None ->
      let e = { en_state = Closed; en_failures = 0; en_opened_at = neg_infinity } in
      Hashtbl.replace t.br_tbl key e;
      e

let state t ~key =
  match Hashtbl.find_opt t.br_tbl key with None -> Closed | Some e -> e.en_state

let allow t ~key =
  let e = entry t key in
  match e.en_state with
  | Closed -> true
  | Half_open ->
      (* [en_opened_at] is the outstanding probe's start.  A probe whose
         outcome is never reported (a crashed caller) must not wedge the
         key: after a full cooldown with no verdict, let a new probe in. *)
      if t.br_clock () -. e.en_opened_at >= t.br_cooldown_s then begin
        e.en_opened_at <- t.br_clock ();
        true (* the old probe is presumed lost; this caller replaces it *)
      end
      else false
  | Open ->
      if t.br_clock () -. e.en_opened_at >= t.br_cooldown_s then begin
        e.en_state <- Half_open;
        e.en_opened_at <- t.br_clock ();
        true (* this caller is the probe *)
      end
      else false

let trip t e =
  e.en_state <- Open;
  e.en_failures <- 0;
  e.en_opened_at <- t.br_clock ();
  t.br_trips <- t.br_trips + 1

let success t ~key =
  let e = entry t key in
  e.en_failures <- 0;
  e.en_state <- Closed

let failure t ~key =
  let e = entry t key in
  match e.en_state with
  | Half_open -> trip t e (* failed probe: straight back to Open *)
  | Open -> ()
  | Closed ->
      e.en_failures <- e.en_failures + 1;
      if e.en_failures >= t.br_threshold then trip t e

let abandon t ~key =
  let e = entry t key in
  match e.en_state with
  | Half_open ->
      (* The probe ended without a verdict (timeout, unclassified escape):
         neither a recovery nor evidence of workload failure, so back to
         Open with a fresh cooldown — and no trip counted. *)
      e.en_state <- Open;
      e.en_failures <- 0;
      e.en_opened_at <- t.br_clock ()
  | Open | Closed -> ()

let retry_after_s t ~key =
  match Hashtbl.find_opt t.br_tbl key with
  | Some e when e.en_state = Open || e.en_state = Half_open ->
      Float.max 0.0 (t.br_cooldown_s -. (t.br_clock () -. e.en_opened_at))
  | _ -> 0.0

let trips t = t.br_trips

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
