type t = {
  ad_max_inflight : int;
  ad_max_queue : int;
  mutable ad_inflight : int;
  mutable ad_queued : int;
  mutable ad_admitted : int;
  mutable ad_rejected : int;
  mutable ad_ewma_s : float;
}

type decision = Admitted | Rejected of float

let create ?(session_estimate_s = 0.5) ~max_inflight ~max_queue () =
  { ad_max_inflight = max 1 max_inflight;
    ad_max_queue = max 0 max_queue;
    ad_inflight = 0;
    ad_queued = 0;
    ad_admitted = 0;
    ad_rejected = 0;
    ad_ewma_s = Float.max 1e-3 session_estimate_s }

(* Conservative drain estimate: everyone ahead of (or alongside) this
   request, at the smoothed session time, spread over the worker slots. *)
let retry_after t =
  let outstanding = t.ad_inflight + t.ad_queued in
  t.ad_ewma_s *. float_of_int (max 1 outstanding)
  /. float_of_int t.ad_max_inflight

let admit t =
  if t.ad_inflight + t.ad_queued >= t.ad_max_inflight + t.ad_max_queue then begin
    t.ad_rejected <- t.ad_rejected + 1;
    Rejected (retry_after t)
  end
  else begin
    t.ad_admitted <- t.ad_admitted + 1;
    t.ad_queued <- t.ad_queued + 1;
    Admitted
  end

let started t =
  t.ad_queued <- max 0 (t.ad_queued - 1);
  t.ad_inflight <- t.ad_inflight + 1

let finished t ~dur_s =
  t.ad_inflight <- max 0 (t.ad_inflight - 1);
  if dur_s >= 0.0 then t.ad_ewma_s <- (0.8 *. t.ad_ewma_s) +. (0.2 *. dur_s)

let abandoned t = t.ad_queued <- max 0 (t.ad_queued - 1)

let inflight t = t.ad_inflight
let queued t = t.ad_queued
let admitted_total t = t.ad_admitted
let rejected_total t = t.ad_rejected
