(** Deterministic fault injection.

    A fault plan corrupts one of the search's three oracles with a seeded
    per-candidate probability.  Draws are counter-based — each
    (candidate index, target) pair hashes its own generator — so whether
    candidate [i] is faulted does not depend on evaluation order or on how
    many candidates ran before it.  A checkpoint-resumed search therefore
    sees exactly the faults the uninterrupted run would have seen.

    Disabled ({!none}) everywhere by default; enabled only via
    configuration or the [--fault-rate] CLI flag, and by the test-suite to
    prove the search completes under injected faults. *)

type target =
  | Fisher_oracle  (** corrupt the Fisher Potential of a candidate *)
  | Cost_oracle  (** corrupt the predicted latency of a candidate *)
  | Plan_gen  (** abort plan generation for a candidate *)

type t

val all_targets : target list
(** Every injectable target, in declaration order. *)

val none : t
(** The disabled plan: never trips, costs nothing. *)

val make : ?targets:target list -> seed:int -> rate:float -> unit -> t
(** A plan tripping each of [targets] (default: all) independently with
    probability [rate] per candidate. *)

val enabled : t -> bool
(** [false] exactly for {!none}-equivalent plans (rate 0 or no targets). *)

val trip : t -> key:int -> target -> bool
(** Deterministic draw for (candidate [key], [target]); counts trips. *)

val corrupt_float : t -> key:int -> target -> float -> float
(** Returns NaN when the draw trips, the value unchanged otherwise. *)

val injected : t -> int
(** Trips recorded so far (across all targets). *)

val copy : t -> t
(** The same plan with a fresh trip counter.  Draws are pure in
    (seed, key, target), so a copy trips exactly the faults the original
    would — hand one to each worker domain and {!add_injected} the counts
    back after the join. *)

val add_injected : t -> int -> unit
(** Fold a worker copy's trip count into this plan's counter. *)

val target_name : target -> string
(** Stable label for logs and failure attribution ("fisher-oracle", ...). *)
