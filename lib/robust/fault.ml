type target = Fisher_oracle | Cost_oracle | Plan_gen

type t = {
  f_seed : int option;  (* None = disabled *)
  f_rate : float;
  f_targets : target list;
  mutable f_injected : int;
}

let all_targets = [ Fisher_oracle; Cost_oracle; Plan_gen ]
let none = { f_seed = None; f_rate = 0.0; f_targets = []; f_injected = 0 }

let make ?(targets = all_targets) ~seed ~rate () =
  { f_seed = Some seed; f_rate = rate; f_targets = targets; f_injected = 0 }

(* Same plan, fresh trip counter: the deterministic draws are pure in
   (seed, key, target), so a copy handed to a worker domain trips exactly
   the faults the original would, without racing on the counter. *)
let copy t =
  { f_seed = t.f_seed; f_rate = t.f_rate; f_targets = t.f_targets; f_injected = 0 }

let add_injected t n = t.f_injected <- t.f_injected + n

let enabled t = t.f_seed <> None && t.f_rate > 0.0

let target_index = function Fisher_oracle -> 0 | Cost_oracle -> 1 | Plan_gen -> 2
let target_name = function
  | Fisher_oracle -> "fisher-oracle"
  | Cost_oracle -> "cost-oracle"
  | Plan_gen -> "plan-gen"

let trip t ~key target =
  match t.f_seed with
  | None -> false
  | Some seed ->
      if t.f_rate <= 0.0 || not (List.mem target t.f_targets) then false
      else begin
        (* One throwaway generator per (candidate, target): the draw is a
           pure function of the plan's seed, so evaluation order and resume
           points cannot shift which candidates are faulted. *)
        let rng =
          Rng.create (seed + (key * 0x9E3779B1) + (target_index target * 0x85EBCA77))
        in
        let hit = Rng.uniform rng < t.f_rate in
        if hit then t.f_injected <- t.f_injected + 1;
        hit
      end

let corrupt_float t ~key target x = if trip t ~key target then Float.nan else x

let injected t = t.f_injected
