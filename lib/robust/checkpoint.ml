let magic = "NASPTE-CKPT1"
let version = 1

let err fmt = Printf.ksprintf (fun m -> Error (Nas_error.Checkpoint_error m)) fmt

let save ~path v =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        output_binary_int oc version;
        Marshal.to_channel oc v []);
    Sys.rename tmp path;
    Ok ()
  with Sys_error m -> err "save %s: %s" path m

let load ~path =
  if not (Sys.file_exists path) then err "load %s: no such file" path
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m =
            try really_input_string ic (String.length magic)
            with End_of_file -> ""
          in
          if m <> magic then err "load %s: bad magic" path
          else
            let v = input_binary_int ic in
            if v <> version then err "load %s: version %d, expected %d" path v version
            else Ok (Marshal.from_channel ic))
    with
    | Sys_error m -> err "load %s: %s" path m
    | End_of_file | Failure _ -> err "load %s: truncated or corrupt" path

let remove ~path = if Sys.file_exists path then Sys.remove path
