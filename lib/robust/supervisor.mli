(** Per-candidate evaluation supervisor.

    Wraps each candidate evaluation, converts classifiable exceptions into
    quarantine entries (label × {!Nas_error.t}), enforces a deterministic
    work budget, and renders the failure-attribution report.  A search
    using the supervisor degrades gracefully: one bad candidate costs one
    quarantine entry, never the run. *)

type t

val create : ?budget:int -> unit -> t
(** [budget] caps the number of evaluations this supervisor will run;
    further {!run} calls return [Error (Budget_exceeded _)] without
    executing. *)

val restore : t -> evaluated:int -> quarantine:(string * Nas_error.t) list -> unit
(** Reload state from a checkpoint ([quarantine] newest-first, as returned
    by {!raw_quarantine}). *)

val run : t -> label:string -> (unit -> 'a) -> ('a, Nas_error.t) result
(** Evaluate one candidate.  Exceptions classified by {!Nas_error.of_exn}
    quarantine the candidate under [label]; unclassifiable exceptions
    propagate.  Budget exhaustion is reported but not quarantined (the
    candidate was never attempted). *)

val evaluated : t -> int
(** Evaluations attempted (successes + quarantines, not budget refusals). *)

val budget_exhausted : t -> bool
val budget_hit : t -> bool
(** Whether some {!run} call was actually refused. *)

val quarantined : t -> (string * Nas_error.t) list
(** Quarantine entries in evaluation order. *)

val raw_quarantine : t -> (string * Nas_error.t) list
(** Newest-first internal order, for checkpointing with {!restore}. *)

val class_counts : t -> (string * int) list

val pp_report : Format.formatter -> t -> unit
(** The failure-attribution table. *)
