(** Monotonic-clock deadlines.

    A deadline is an absolute expiry instant on an injectable clock.  The
    default {!monotonic} clock is the wall clock latched to never run
    backwards, shared across domains, so a watchdog polling [expired] from
    a worker can cancel work started on another domain.  Expiry is
    cooperative: long-running loops poll {!expired} (or install it as a
    search [?stop] hook) between units of work and degrade to their
    best-so-far result. *)

type clock = unit -> float
(** Seconds on some monotone axis; only differences are meaningful. *)

val monotonic : clock
(** The process-wide monotone clock: wall time latched to its maximum
    observed reading, safe to share across domains. *)

type t
(** An immutable deadline. *)

val none : t
(** The deadline that never expires. *)

val make : ?clock:clock -> after_s:float -> unit -> t
(** A deadline [after_s] seconds (clamped to at least 0) from now on
    [clock] (default {!monotonic}). *)

val never : t -> bool
(** Whether this is {!none} (or any never-expiring deadline). *)

val expired : t -> bool
(** Whether the expiry instant has been reached. *)

val remaining_s : t -> float
(** Seconds until expiry: 0 once expired, [infinity] for {!none}. *)

val guard : t -> label:string -> unit
(** Raise {!Nas_error.Fail}[ (Timed_out label)] if the deadline has
    expired; a no-op otherwise. *)
