(** Retry with exponential backoff and deterministic jitter.

    The daemon's answer to transient failures: an attempt that raises a
    {!Nas_error.transient} error is retried after a capped exponential
    delay, jittered by a draw that is a pure function of (seed, attempt) —
    so a replayed request backs off through the identical schedule, and a
    fleet of concurrent sessions with distinct seeds de-synchronizes
    instead of thundering back together. *)

type policy = {
  rp_max_attempts : int;  (** total attempts, clamped to at least 1 *)
  rp_base_delay_s : float;  (** delay after the first failure *)
  rp_multiplier : float;  (** per-attempt growth factor *)
  rp_max_delay_s : float;  (** delay cap *)
  rp_jitter : float;
      (** fraction of the delay randomized away, in [0,1]: the slept delay
          is uniform in [(1-jitter)*d, d] *)
}

val default : policy
(** 3 attempts, 50ms base, doubling, 2s cap, 0.5 jitter. *)

val no_retry : policy
(** A single attempt — retries disabled. *)

val delay_s : policy -> seed:int -> attempt:int -> float
(** The (jittered) backoff slept after failed attempt number [attempt]
    (0-based).  Deterministic in (policy, seed, attempt). *)

val run :
  ?policy:policy ->
  ?retryable:(Nas_error.t -> bool) ->
  ?sleep:(float -> unit) ->
  ?deadline:Deadline.t ->
  ?on_retry:(attempt:int -> delay_s:float -> Nas_error.t -> unit) ->
  seed:int ->
  (attempt:int -> 'a) ->
  ('a, Nas_error.t) result * int
(** [run ~seed f] calls [f ~attempt:0]; on a classified failure that
    [retryable] accepts (default {!Nas_error.transient}) it sleeps the
    jittered backoff and tries again, up to [policy.rp_max_attempts] total
    attempts.  Retries stop early once [deadline] expires, and a backoff
    is clipped to the deadline's remaining time.  [on_retry] observes each
    retry decision (for telemetry).  Returns the final outcome paired with
    the index of the last attempt made — i.e. the number of retries used.
    Unclassifiable exceptions propagate, as in {!Nas_error.guard}. *)
