(** Checkpoint files: versioned snapshots with atomic replace.

    A snapshot is written to [path ^ ".tmp"] and renamed into place, so a
    kill mid-write leaves the previous checkpoint intact.  Files carry a
    magic string and format version; a stale or foreign file loads as a
    structured {!Nas_error.Checkpoint_error}, never a crash.

    Values are serialized with [Marshal] (no closures allowed), which is
    safe here because checkpoints are only ever read back by the same
    binary that wrote them; the caller guards against schema drift by
    embedding its own compatibility key in the saved value. *)

val save : path:string -> 'a -> (unit, Nas_error.t) result
(** Atomically replace the checkpoint at [path] with a snapshot of the
    value; IO failures come back as {!Nas_error.Checkpoint_error}. *)

val load : path:string -> ('a, Nas_error.t) result
(** Read a snapshot back.  Missing, truncated, stale-versioned or foreign
    files all load as {!Nas_error.Checkpoint_error}. *)

val remove : path:string -> unit
(** Delete the checkpoint if present (no error if missing). *)
