type policy = {
  rp_max_attempts : int;
  rp_base_delay_s : float;
  rp_multiplier : float;
  rp_max_delay_s : float;
  rp_jitter : float;
}

let default =
  { rp_max_attempts = 3;
    rp_base_delay_s = 0.05;
    rp_multiplier = 2.0;
    rp_max_delay_s = 2.0;
    rp_jitter = 0.5 }

let no_retry = { default with rp_max_attempts = 1 }

let delay_s p ~seed ~attempt =
  let attempt = max 0 attempt in
  let raw = p.rp_base_delay_s *. (p.rp_multiplier ** float_of_int attempt) in
  let capped = Float.min p.rp_max_delay_s raw in
  if p.rp_jitter <= 0.0 then capped
  else
    (* One throwaway generator per (seed, attempt): the jitter draw is a
       pure function of the pair, so a replayed request backs off through
       the identical delays — retries stay as reproducible as the faults
       that trigger them. *)
    let rng = Rng.create (seed + (attempt * 0x9E3779B1)) in
    capped *. (1.0 -. (p.rp_jitter *. Rng.uniform rng))

let run ?(policy = default) ?(retryable = Nas_error.transient)
    ?(sleep = Unix.sleepf) ?(deadline = Deadline.none) ?on_retry ~seed f =
  let max_attempts = max 1 policy.rp_max_attempts in
  let rec go attempt =
    match Nas_error.guard (fun () -> f ~attempt) with
    | Ok v -> (Ok v, attempt)
    | Error e ->
        let last = attempt >= max_attempts - 1 in
        if last || (not (retryable e)) || Deadline.expired deadline then
          (Error e, attempt)
        else begin
          let d = delay_s policy ~seed ~attempt in
          (* Never sleep past the deadline: a backoff that would expire it
             anyway is cut short so the caller degrades promptly. *)
          let d = Float.min d (Deadline.remaining_s deadline) in
          (match on_retry with
          | Some k -> k ~attempt ~delay_s:d e
          | None -> ());
          if d > 0.0 then sleep d;
          go (attempt + 1)
        end
  in
  go 0
