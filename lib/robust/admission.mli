(** Admission control: bounded in-flight sessions plus a bounded queue.

    The controller tracks how many sessions are running and how many are
    admitted but waiting; a request arriving when both bounds are full is
    rejected immediately with a retry-after estimate, which keeps the
    daemon's latency bounded under overload instead of letting the queue
    grow without limit.

    The controller is plain mutable state with no lock of its own — the
    owner (the server) already serializes every call under its mutex. *)

type t

type decision =
  | Admitted  (** counted into the queue; call {!started} when it runs *)
  | Rejected of float
      (** turned away; the payload is the suggested retry-after in seconds *)

val create :
  ?session_estimate_s:float -> max_inflight:int -> max_queue:int -> unit -> t
(** A controller allowing [max_inflight] running sessions (clamped to at
    least 1; normally the worker-pool size) plus [max_queue] waiting ones.
    [session_estimate_s] (default 0.5) seeds the smoothed session-time
    estimate behind the retry-after hint until real sessions update it. *)

val admit : t -> decision
(** Decide one arriving request and update the counters. *)

val started : t -> unit
(** A queued request began running (queue down, inflight up). *)

val finished : t -> dur_s:float -> unit
(** A running session ended after [dur_s] seconds (inflight down; the
    duration updates the retry-after estimate). *)

val abandoned : t -> unit
(** A queued request was dropped without running (e.g. shutdown drain). *)

val inflight : t -> int
(** Sessions currently running. *)

val queued : t -> int
(** Sessions admitted and waiting. *)

val admitted_total : t -> int
(** Requests admitted since creation. *)

val rejected_total : t -> int
(** Requests rejected since creation. *)
