type clock = unit -> float

(* [Unix.gettimeofday] can step backwards under clock adjustment; latching
   the maximum observed reading makes the shared process clock monotone,
   which is all a deadline needs.  The latch is an [Atomic.t] so watchdog
   reads from worker domains never tear. *)
let latch = Atomic.make neg_infinity

let monotonic () =
  let t = Unix.gettimeofday () in
  let rec bump () =
    let prev = Atomic.get latch in
    if t > prev then if Atomic.compare_and_set latch prev t then t else bump ()
    else prev
  in
  bump ()

type t = {
  dl_clock : clock;
  dl_at : float;  (* infinity = never expires *)
}

let none = { dl_clock = (fun () -> 0.0); dl_at = infinity }

let make ?(clock = monotonic) ~after_s () =
  { dl_clock = clock; dl_at = clock () +. Float.max 0.0 after_s }

let never t = t.dl_at = infinity

let expired t = (not (never t)) && t.dl_clock () >= t.dl_at

let remaining_s t =
  if never t then infinity else Float.max 0.0 (t.dl_at -. t.dl_clock ())

let guard t ~label =
  if expired t then Nas_error.fail (Nas_error.Timed_out label)
