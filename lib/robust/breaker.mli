(** A per-key circuit breaker.

    Each key (the daemon keys on [network|device]) runs the classic
    three-state machine: [Closed] (requests flow; consecutive failures are
    counted), [Open] (requests are refused until a cooldown elapses), and
    [Half_open] (exactly one probe request is let through — its outcome
    either closes the breaker or re-opens it).  Tripping after repeated
    failures stops a workload that reliably ends in quarantine storms from
    monopolizing the session pool.

    Like {!Admission}, the breaker carries no lock of its own: the owning
    server serializes calls under its mutex. *)

type state = Closed | Open | Half_open

type t

val create :
  ?clock:Deadline.clock -> ?threshold:int -> ?cooldown_s:float -> unit -> t
(** A breaker tripping a key after [threshold] (default 5, clamped to at
    least 1) consecutive failures, refusing it for [cooldown_s] seconds
    (default 30) before allowing a half-open probe.  [clock] defaults to
    {!Deadline.monotonic}. *)

val allow : t -> key:string -> bool
(** Whether a request for [key] may proceed.  In [Open] state this flips
    the key to [Half_open] and returns true once the cooldown has elapsed
    — the caller becomes the probe; until then (and while a probe is
    outstanding) it returns false.  A probe whose verdict never arrives
    cannot wedge the key: once a further cooldown passes with the key
    still [Half_open], the next caller replaces the lost probe. *)

val success : t -> key:string -> unit
(** Report a successful session: resets the failure count and closes the
    breaker (a half-open probe that succeeds recovers the key). *)

val failure : t -> key:string -> unit
(** Report a failed session: counts toward the threshold when [Closed],
    re-opens immediately when [Half_open]. *)

val abandon : t -> key:string -> unit
(** Report that a half-open probe ended without a verdict (deadline
    expiry, an unclassified escape): the key returns to [Open] and the
    cooldown restarts, so the workload is re-probed later instead of
    being refused forever.  Not counted in {!trips}; a no-op unless the
    key is [Half_open]. *)

val state : t -> key:string -> state
(** The key's current state ([Closed] if never seen). *)

val retry_after_s : t -> key:string -> float
(** Remaining cooldown for an [Open] key, or time until a [Half_open]
    key's outstanding probe is presumed lost; 0 for [Closed]. *)

val trips : t -> int
(** Times any key transitioned to [Open] on failure (abandoned probes
    re-open the key without counting here). *)

val state_name : state -> string
(** Stable label: ["closed"], ["open"] or ["half-open"]. *)
