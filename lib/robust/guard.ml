let finite = Float.is_finite

let all_finite a =
  let n = Array.length a in
  let rec go i = i >= n || (Float.is_finite (Array.unsafe_get a i) && go (i + 1)) in
  go 0

let check_float ~source x =
  if Float.is_finite x then x else Nas_error.fail (Nas_error.Non_finite source)

let check_array ~source a =
  if all_finite a then a else Nas_error.fail (Nas_error.Non_finite source)

let check_tensor ~source t =
  ignore (check_array ~source (Tensor.data t));
  t

let float_result ~source x =
  if Float.is_finite x then Ok x else Error (Nas_error.Non_finite source)
