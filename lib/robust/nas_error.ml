type source = Fisher_score | Cost_model | Plan_gen | Tensor_data

type t =
  | Invalid_plan of string
  | Shape_mismatch of string
  | Non_finite of source
  | Budget_exceeded of string
  | Injected_fault of string
  | Checkpoint_error of string
  | Io_error of string
  | Timed_out of string
  | Eval_failure of string

exception Fail of t

let fail e = raise (Fail e)
let invalid_plan fmt = Printf.ksprintf (fun m -> fail (Invalid_plan m)) fmt
let shape_mismatch fmt = Printf.ksprintf (fun m -> fail (Shape_mismatch m)) fmt

let source_to_string = function
  | Fisher_score -> "fisher-score"
  | Cost_model -> "cost-model"
  | Plan_gen -> "plan-gen"
  | Tensor_data -> "tensor-data"

let class_name = function
  | Invalid_plan _ -> "invalid-plan"
  | Shape_mismatch _ -> "shape-mismatch"
  | Non_finite s -> "non-finite:" ^ source_to_string s
  | Budget_exceeded _ -> "budget-exceeded"
  | Injected_fault _ -> "injected-fault"
  | Checkpoint_error _ -> "checkpoint-error"
  | Io_error _ -> "io-error"
  | Timed_out _ -> "timed-out"
  | Eval_failure _ -> "eval-failure"

let to_string = function
  | Invalid_plan m -> "invalid plan: " ^ m
  | Shape_mismatch m -> "shape mismatch: " ^ m
  | Non_finite s -> "non-finite value from " ^ source_to_string s
  | Budget_exceeded m -> "budget exceeded: " ^ m
  | Injected_fault m -> "injected fault: " ^ m
  | Checkpoint_error m -> "checkpoint error: " ^ m
  | Io_error m -> "I/O error: " ^ m
  | Timed_out m -> "timed out: " ^ m
  | Eval_failure m -> "evaluation failure: " ^ m

let pp ppf e = Format.pp_print_string ppf (to_string e)

let of_exn = function
  | Fail e -> Some e
  | Unix.Unix_error (ue, fn, arg) ->
      let what = if arg = "" then fn else fn ^ " " ^ arg in
      Some (Io_error (what ^ ": " ^ Unix.error_message ue))
  | Sys_error m -> Some (Io_error m)
  | Invalid_argument m -> Some (Eval_failure ("invalid argument: " ^ m))
  | Failure m -> Some (Eval_failure m)
  | Division_by_zero -> Some (Eval_failure "division by zero")
  | Assert_failure (file, line, _) ->
      Some (Eval_failure (Printf.sprintf "assertion at %s:%d" file line))
  | _ -> None

(* Worth retrying with backoff: failures of the environment, not of the
   candidate or the request.  A timed-out session must NOT be transient —
   its deadline has already passed, retrying can only waste the pool. *)
let transient = function
  | Io_error _ | Injected_fault _ | Checkpoint_error _ -> true
  | Invalid_plan _ | Shape_mismatch _ | Non_finite _ | Budget_exceeded _
  | Timed_out _ | Eval_failure _ ->
      false

let guard f =
  try Ok (f ())
  with e -> ( match of_exn e with Some t -> Error t | None -> raise e)

let count_classes quarantine =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, e) ->
      let c = class_name e in
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    quarantine;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (c1, n1) (c2, n2) ->
         if n1 <> n2 then compare n2 n1 else compare c1 c2)
