(** Imperative graph-construction helper used by the model zoo.

    Nodes are appended in topological order; [realize_site] materializes a
    transformable convolution site under a chosen {!Conv_impl.t} and records
    the node whose activation the Fisher Potential pass should score.

    Weight initialization is {e label-addressed}: every layer's weights are
    drawn from an RNG seeded by (build seed, layer label).  Two networks
    built from the same seed therefore share identical weights in every
    layer they have in common, which makes Fisher Potential comparisons
    between candidate structures measure the {e structural} difference
    rather than initialization noise (the same device is used by
    weight-sharing NAS supernets). *)

type t

val create : Rng.t -> t
(** Draws the build seed from the given generator. *)

val input : t -> int
(** Adds the input node (must be first). *)

val add : t -> ?label:string -> Graph.op -> int list -> int
(** Appends an operation node and returns its id. *)

val layer_rng : t -> string -> Rng.t
(** The label-addressed generator for a layer's weights. *)

val conv_bn_relu :
  t ->
  label:string ->
  in_channels:int ->
  out_channels:int ->
  kernel:int ->
  stride:int ->
  ?pad:int ->
  ?groups:int ->
  ?dilation:int ->
  ?relu:bool ->
  int ->
  int
(** Convenience: conv -> batch norm -> (optional) relu chain from the given
    input node; default padding is [dilation * (kernel / 2)], which preserves
    the spatial extent for odd kernels at stride 1. *)

val linear_layer : t -> label:string -> in_features:int -> out_features:int -> int -> int
(** Appends a fully connected layer. *)

val realize_site : t -> Conv_impl.site -> Conv_impl.t -> int -> int
(** [realize_site b site impl input] appends the subgraph implementing the
    site under [impl] (conv/bn/relu structure as described in
    {!Conv_impl}) and returns its output node.  The block's output node is
    recorded as a Fisher-scored node. *)

val fisher_nodes : t -> int list
(** Fisher-scored node ids, in realization order. *)

val finish : t -> output:int -> Graph.t
