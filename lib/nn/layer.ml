type param = { p_name : string; p_value : Tensor.t; p_grad : Tensor.t }

let param p_name p_value =
  { p_name; p_value; p_grad = Tensor.zeros (Tensor.shape p_value) }

let zero_grad p = Tensor.fill_ p.p_grad 0.0

type conv = {
  cv_w : param;
  cv_b : param option;
  cv_stride : int;
  cv_pad : int;
  cv_groups : int;
  cv_dilation : int;
}

let conv rng ~name ~in_channels ~out_channels ~kernel ~stride ~dilation ~pad
    ~groups =
  assert (in_channels mod groups = 0 && out_channels mod groups = 0);
  assert (dilation >= 1);
  let cig = in_channels / groups in
  let fan_in = cig * kernel * kernel in
  let w = Tensor.kaiming rng [| out_channels; cig; kernel; kernel |] ~fan_in in
  { cv_w = param (name ^ ".w") w;
    cv_b = None;
    cv_stride = stride;
    cv_pad = pad;
    cv_groups = groups;
    cv_dilation = dilation }

type bn = { bn_gamma : param; bn_beta : param; bn_eps : float }

let bn ~name ~channels =
  { bn_gamma = param (name ^ ".gamma") (Tensor.ones [| channels |]);
    bn_beta = param (name ^ ".beta") (Tensor.zeros [| channels |]);
    bn_eps = 1e-5 }

type linear = { ln_w : param; ln_b : param }

let linear rng ~name ~in_features ~out_features =
  let w = Tensor.kaiming rng [| out_features; in_features |] ~fan_in:in_features in
  { ln_w = param (name ^ ".w") w;
    ln_b = param (name ^ ".b") (Tensor.zeros [| out_features |]) }

let conv_param_count c =
  Tensor.numel c.cv_w.p_value
  + (match c.cv_b with None -> 0 | Some b -> Tensor.numel b.p_value)

let bn_param_count b =
  Tensor.numel b.bn_gamma.p_value + Tensor.numel b.bn_beta.p_value

let linear_param_count l = Tensor.numel l.ln_w.p_value + Tensor.numel l.ln_b.p_value
