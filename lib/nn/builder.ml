type t = {
  mutable nodes_rev : Graph.node list;
  mutable next_id : int;
  mutable fisher_rev : int list;
  base_seed : int;
}

let create rng =
  { nodes_rev = [];
    next_id = 0;
    fisher_rev = [];
    base_seed = Int64.to_int (Rng.bits64 rng) }

(* Label-addressed weight generator: identical labels (and build seed) give
   identical weights, so structural candidates share every common layer. *)
let layer_rng t label = Rng.create (t.base_seed lxor Hashtbl.hash label)

let add t ?(label = "") op inputs =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.nodes_rev <- { Graph.id; op; inputs; label } :: t.nodes_rev;
  id

let input t =
  assert (t.next_id = 0);
  add t ~label:"input" Graph.Input []

let conv_bn_relu t ~label ~in_channels ~out_channels ~kernel ~stride ?pad
    ?(groups = 1) ?(dilation = 1) ?(relu = true) src =
  let pad = match pad with Some p -> p | None -> dilation * (kernel / 2) in
  let conv =
    Layer.conv (layer_rng t label) ~name:label ~in_channels ~out_channels ~kernel
      ~stride ~dilation ~pad ~groups
  in
  let c = add t ~label (Graph.Conv conv) [ src ] in
  let bn_layer = Layer.bn ~name:(label ^ ".bn") ~channels:out_channels in
  let b = add t ~label:(label ^ ".bn") (Graph.Batch_norm bn_layer) [ c ] in
  if relu then add t ~label:(label ^ ".relu") Graph.Relu [ b ] else b

let linear_layer t ~label ~in_features ~out_features src =
  let fc = Layer.linear (layer_rng t label) ~name:label ~in_features ~out_features in
  add t ~label (Graph.Linear fc) [ src ]

let mark_fisher t id = t.fisher_rev <- id :: t.fisher_rev

let realize_site t (site : Conv_impl.site) impl src =
  assert (Conv_impl.valid site impl);
  let { Conv_impl.in_channels; out_channels; kernel; stride; groups; site_label; _ } =
    site
  in
  let cbr = conv_bn_relu t in
  let out =
    match impl with
    | Conv_impl.Full ->
        cbr ~label:site_label ~in_channels ~out_channels ~kernel ~stride ~groups src
    | Conv_impl.Grouped g ->
        cbr ~label:site_label ~in_channels ~out_channels ~kernel ~stride ~groups:g src
    | Conv_impl.Bottleneck b ->
        let mid = out_channels / b in
        let narrow =
          cbr ~label:(site_label ^ ".narrow") ~in_channels ~out_channels:mid ~kernel
            ~stride ~groups src
        in
        cbr ~label:(site_label ^ ".expand") ~in_channels:mid ~out_channels ~kernel:1
          ~stride:1 narrow
    | Conv_impl.Depthwise_separable ->
        let dw =
          cbr ~label:(site_label ^ ".dw") ~in_channels ~out_channels:in_channels
            ~kernel ~stride ~groups:in_channels src
        in
        cbr ~label:(site_label ^ ".pw") ~in_channels ~out_channels ~kernel:1 ~stride:1
          dw
    | Conv_impl.Spatial_bottleneck b ->
        let small =
          cbr ~label:(site_label ^ ".spatial") ~in_channels ~out_channels ~kernel
            ~stride:(stride * b) ~groups src
        in
        add t ~label:(site_label ^ ".upsample") (Graph.Upsample b) [ small ]
    | Conv_impl.Split_grouped (g1, g2) ->
        let half = out_channels / 2 in
        let lo =
          cbr ~label:(site_label ^ ".lo") ~in_channels ~out_channels:half ~kernel
            ~stride ~groups:g1 src
        in
        let hi =
          cbr ~label:(site_label ^ ".hi") ~in_channels ~out_channels:half ~kernel
            ~stride ~groups:g2 src
        in
        add t ~label:(site_label ^ ".concat") Graph.Concat [ lo; hi ]
  in
  mark_fisher t out;
  out

let fisher_nodes t = List.rev t.fisher_rev

let finish t ~output =
  Graph.make (Array.of_list (List.rev t.nodes_rev)) ~output_id:output
