(** Trainable parameters and layer records used by {!Graph} nodes. *)

type param = {
  p_name : string;
  p_value : Tensor.t;
  p_grad : Tensor.t;
}
(** A trainable tensor with its gradient accumulator.  The tensors are fixed
    objects whose contents are mutated by the optimizer / backward pass. *)

val param : string -> Tensor.t -> param
(** Wraps a freshly initialized value with a zero gradient buffer. *)

val zero_grad : param -> unit

type conv = {
  cv_w : param;  (** OIHW weight, I = in_channels / groups *)
  cv_b : param option;
  cv_stride : int;
  cv_pad : int;
  cv_groups : int;
  cv_dilation : int;  (** kernel-tap spacing; 1 is a dense kernel *)
}

val conv :
  Rng.t ->
  name:string ->
  in_channels:int ->
  out_channels:int ->
  kernel:int ->
  stride:int ->
  dilation:int ->
  pad:int ->
  groups:int ->
  conv
(** Kaiming-initialized convolution without bias (batch norm follows it). *)

type bn = {
  bn_gamma : param;
  bn_beta : param;
  bn_eps : float;
}

val bn : name:string -> channels:int -> bn
(** Identity-initialized batch norm over [channels]. *)

type linear = {
  ln_w : param;
  ln_b : param;
}

val linear : Rng.t -> name:string -> in_features:int -> out_features:int -> linear
(** Fully connected layer, Kaiming-initialized from the label-addressed RNG. *)

val conv_param_count : conv -> int
(** Scalar parameters of a convolution (weights only). *)

val bn_param_count : bn -> int
(** Scalar parameters of a batch norm (gamma and beta). *)

val linear_param_count : linear -> int
(** Scalar parameters of a linear layer (weights and bias). *)
