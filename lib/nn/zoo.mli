(** The family registry: the single source of truth for which networks
    exist.

    Every model the CLI, the serving daemon, the experiments and the
    benchmarks can name is an {!entry} here, mapping a name to a
    {!Block.spec} per {!Block.scale}.  Paper presets carry a recorded
    structural snapshot (site count, MACs, node count, graph digest at
    [`Search] scale, build seed 42) so refactors of the block algebra are
    pinned to bit-identical graphs by the [@zoo] alias and the registry
    tests. *)

type snapshot = {
  zs_sites : int;  (** transformable site count at [`Search] scale *)
  zs_macs : int;  (** total MACs of one inference at [`Search] scale *)
  zs_nodes : int;  (** graph node count at [`Search] scale *)
  zs_digest : string;
      (** {!Models.graph_digest} of the [`Search]-scale build at seed 42 *)
}
(** Recorded structure of a registered preset, asserted by tests and the
    [@zoo] alias to catch drift. *)

type entry = {
  ze_name : string;  (** the name accepted by [--network] and the protocol *)
  ze_family : string;  (** family tag: ["resnet"], ["densenet"], ... *)
  ze_doc : string;  (** one-line description used for generated docs *)
  ze_paper : bool;  (** one of the six presets the paper evaluates *)
  ze_spec : Block.scale -> Block.spec;  (** the spec at a given scale *)
  ze_snapshot : snapshot option;  (** recorded structure, when pinned *)
}

val all : entry list
(** Every registered family, in presentation order (paper presets first). *)

val names : string list
(** The names of {!all}, in the same order. *)

val names_doc : string
(** The registry's names joined with [", "], for error messages listing the
    valid networks. *)

val find : string -> entry option
(** Looks a network up by name. *)

val spec : ?scale:Block.scale -> string -> Block.spec option
(** The spec of a registered network at [scale] (default [`Search]), or
    [None] for unknown names. *)
