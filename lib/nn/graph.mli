(** Computation graphs for feed-forward convolutional networks.

    A graph is a topologically ordered array of nodes; node [i] may only read
    from nodes with smaller ids, so forward is a single left-to-right sweep
    and backward a single right-to-left sweep.  Activation gradients are kept
    per node, which is exactly what the Fisher Potential pass consumes. *)

type op =
  | Input
  | Conv of Layer.conv
  | Batch_norm of Layer.bn
  | Relu
  | Max_pool of { size : int; stride : int; pad : int }
  | Avg_pool of { size : int; stride : int; pad : int }
  | Global_avg_pool
  | Linear of Layer.linear
  | Add  (** n-ary elementwise sum *)
  | Concat  (** channel concatenation *)
  | Identity
  | Zero  (** shape-preserving zero map (NAS-bench "none" op) *)
  | Upsample of int  (** nearest-neighbour spatial upsampling *)
  | Sigmoid  (** elementwise logistic gate (squeeze-excite) *)
  | Scale_channels
      (** two inputs [main; gate]: multiplies each channel plane of the NCHW
          [main] activation by the matching [N;C] gate value *)

type node = {
  id : int;
  op : op;
  inputs : int list;
  label : string;
}

type t = private {
  nodes : node array;
  output_id : int;
}

val make : node array -> output_id:int -> t
(** Validates topological ordering of the node array. *)

type run
(** State of one forward (and optionally backward) pass. *)

val forward : t -> Tensor.t -> run
(** Runs the graph on a batch (NCHW input tensor). *)

val output : run -> Tensor.t
(** Activation of the output node. *)

val activation : run -> int -> Tensor.t
(** Activation of an arbitrary node. *)

val backward : t -> run -> loss_grad:Tensor.t -> unit
(** Back-propagates a gradient of the loss w.r.t. the output node,
    accumulating parameter gradients into their [p_grad] buffers and storing
    per-node activation gradients in the run. *)

val activation_grad : run -> int -> Tensor.t
(** Gradient of the loss w.r.t. a node's activation.  Only valid after
    {!backward}; raises [Invalid_argument] if the node received no
    gradient. *)

val params : t -> Layer.param list
(** All trainable parameters, in node order. *)

val param_count : t -> int
(** Total scalar parameter count. *)

val zero_grads : t -> unit
(** Zeroes every parameter gradient in place. *)

val node_count : t -> int
(** Number of nodes in the graph. *)

val node : t -> int -> node
(** The node with the given id. *)
