type snapshot = { zs_sites : int; zs_macs : int; zs_nodes : int; zs_digest : string }

type entry = {
  ze_name : string;
  ze_family : string;
  ze_doc : string;
  ze_paper : bool;
  ze_spec : Block.scale -> Block.spec;
  ze_snapshot : snapshot option;
}

(* Scaled-down dimensions shared by every family: block structure and
   channel progressions match the originals; widths and spatial extents are
   divided so that Fisher passes and SGD training run in seconds on one
   core. *)
let scale_dims = function
  | `Search -> (16, 10)
  | `Train -> (8, 10)
  | `Imagenet -> (32, 20)

let residual ~name ~blocks ?(width_mult = 1) ?(expansion = 1) ?(kind = Block.Basic)
    ?(attention = Block.No_attention) ?(dilation = 1) ?(drop_path = 0.0)
    ?(stem_stride = fun _ -> 1) ~paper_width ?(paper_input = fun _ -> 32) () scale =
  let input_size, num_classes = scale_dims scale in
  { Block.sp_name = name;
    sp_family =
      Block.Residual
        { Block.rs_blocks = blocks; rs_base_width = 8; rs_width_mult = width_mult;
          rs_expansion = expansion; rs_kind = kind; rs_attention = attention;
          rs_stem_kernel = 3; rs_stem_stride = stem_stride scale;
          rs_dilation = dilation; rs_drop_path = drop_path };
    sp_input_size = input_size;
    sp_num_classes = num_classes;
    sp_paper_width = paper_width;
    sp_paper_input = paper_input scale }

let imagenet_values ~cifar ~imagenet = function
  | `Imagenet -> imagenet
  | `Search | `Train -> cifar

let resnet name blocks =
  residual ~name ~blocks ~paper_width:64
    ~stem_stride:(imagenet_values ~cifar:1 ~imagenet:2)
    ~paper_input:(imagenet_values ~cifar:32 ~imagenet:224)
    ()

let resnext name ~cardinality =
  residual ~name ~blocks:[| 3; 3; 3 |] ~expansion:4
    ~kind:(Block.Aggregated { cardinality; reduce_num = 1; reduce_den = 2 })
    ~paper_width:64 ()

let densenet name blocks ~growth ~paper_growth scale =
  let input_size, num_classes = scale_dims scale in
  { Block.sp_name = name;
    sp_family = Block.Dense { Block.dn_blocks = blocks; dn_growth = growth };
    sp_input_size = input_size;
    sp_num_classes = num_classes;
    sp_paper_width = paper_growth;
    sp_paper_input = imagenet_values ~cifar:32 ~imagenet:224 scale }

let snap zs_sites zs_macs zs_nodes zs_digest =
  Some { zs_sites; zs_macs; zs_nodes; zs_digest }

let all =
  [ { ze_name = "resnet18";
      ze_family = "resnet";
      ze_doc = "ResNet-18: basic residual blocks, stages [2;2;2;2]";
      ze_paper = true;
      ze_spec = resnet "resnet18" [| 2; 2; 2; 2 |];
      ze_snapshot = snap 16 2218624 76 "07439b892cb62769d072e1bee72185c3" };
    { ze_name = "resnet34";
      ze_family = "resnet";
      ze_doc = "ResNet-34: basic residual blocks, stages [3;4;6;3]";
      ze_paper = true;
      ze_spec = resnet "resnet34" [| 3; 4; 6; 3 |];
      ze_snapshot = snap 32 4577920 140 "b76a7231a11b5754b66e079325560b28" };
    { ze_name = "resnext29";
      ze_family = "resnext";
      ze_doc = "ResNeXt-29: aggregated bottlenecks, cardinality 2";
      ze_paper = true;
      ze_spec = resnext "resnext29" ~cardinality:2;
      ze_snapshot = snap 9 5561600 102 "0f357d592289bbb7165d3c8281e17130" };
    { ze_name = "densenet161";
      ze_family = "densenet";
      ze_doc = "DenseNet-161 (BC): growth 48 at paper scale";
      ze_paper = true;
      ze_spec = densenet "densenet161" [| 3; 6; 12; 8 |] ~growth:8 ~paper_growth:48;
      ze_snapshot = snap 58 5425962 221 "04c75c8969a5ca6c2e88c4ae4c105a83" };
    { ze_name = "densenet169";
      ze_family = "densenet";
      ze_doc = "DenseNet-169 (BC): growth 32 at paper scale";
      ze_paper = true;
      ze_spec = densenet "densenet169" [| 3; 6; 8; 8 |] ~growth:6 ~paper_growth:32;
      ze_snapshot = snap 50 2816328 193 "7bbbbbb9dc4b7e7eab8123f8be334766" };
    { ze_name = "densenet201";
      ze_family = "densenet";
      ze_doc = "DenseNet-201 (BC): growth 32 at paper scale";
      ze_paper = true;
      ze_spec = densenet "densenet201" [| 3; 6; 12; 8 |] ~growth:6 ~paper_growth:32;
      ze_snapshot = snap 58 3067008 221 "c35cffbbdc91c3a446d45c2a3ff4bb02" };
    { ze_name = "wideresnet16_4";
      ze_family = "wideresnet";
      ze_doc = "WideResNet-16-4: basic blocks widened 4x, stages [2;2;2]";
      ze_paper = false;
      ze_spec =
        residual ~name:"wideresnet16_4" ~blocks:[| 2; 2; 2 |] ~width_mult:4
          ~paper_width:16 ();
      ze_snapshot = snap 12 24567040 60 "a5af001d3e62d9afb6435351b50daff9" };
    { ze_name = "mobilenet_small";
      ze_family = "mobilenet";
      ze_doc = "MobileNet-style: inverted depthwise residuals, expansion 4";
      ze_paper = false;
      ze_spec =
        residual ~name:"mobilenet_small" ~blocks:[| 1; 2; 2 |]
          ~kind:(Block.Inverted { expand_ratio = 4 })
          ~paper_width:32 ();
      ze_snapshot = snap 10 802112 54 "8a395ec2fd0579ab23e8fe432a1432f2" };
    { ze_name = "resnext29_c4";
      ze_family = "resnext";
      ze_doc = "ResNeXt-29 variant: aggregated bottlenecks, cardinality 4";
      ze_paper = false;
      ze_spec = resnext "resnext29_c4" ~cardinality:4;
      ze_snapshot = snap 9 4234496 102 "09628cb8d37501f61bcee2d38f5895a4" };
    { ze_name = "se_resnet14";
      ze_family = "se-resnet";
      ze_doc = "SE-ResNet-14: basic blocks with squeeze-excite gates (r=4)";
      ze_paper = false;
      ze_spec =
        residual ~name:"se_resnet14" ~blocks:[| 2; 2; 2 |]
          ~attention:(Block.Squeeze_excite { se_ratio = 4 })
          ~paper_width:64 ();
      ze_snapshot = snap 12 1695360 94 "c1250ebeb50dba05de201b9693506629" };
    { ze_name = "resnet14_dil2";
      ze_family = "resnet";
      ze_doc = "Dilated ResNet-14: final stage uses fixed dilation-2 convs";
      ze_paper = false;
      ze_spec =
        residual ~name:"resnet14_dil2" ~blocks:[| 2; 2; 2 |] ~dilation:2
          ~paper_width:64 ();
      ze_snapshot = snap 8 1694016 58 "28be80eb7969ce4758ce3b529f38d6ac" } ]

let names = List.map (fun e -> e.ze_name) all
let names_doc = String.concat ", " names
let find name = List.find_opt (fun e -> e.ze_name = name) all

let spec ?(scale = `Search) name =
  Option.map (fun e -> e.ze_spec scale) (find name)
