type scale = [ `Search | `Train | `Imagenet ]

type attention = No_attention | Squeeze_excite of { se_ratio : int }

type kind =
  | Basic
  | Aggregated of { cardinality : int; reduce_num : int; reduce_den : int }
  | Inverted of { expand_ratio : int }

type residual = {
  rs_blocks : int array;
  rs_base_width : int;
  rs_width_mult : int;
  rs_expansion : int;
  rs_kind : kind;
  rs_attention : attention;
  rs_stem_kernel : int;
  rs_stem_stride : int;
  rs_dilation : int;
  rs_drop_path : float;
}

type dense = { dn_blocks : int array; dn_growth : int }
type family = Residual of residual | Dense of dense

type spec = {
  sp_name : string;
  sp_family : family;
  sp_input_size : int;
  sp_num_classes : int;
  sp_paper_width : int;
  sp_paper_input : int;
}

let scaled_width spec =
  match spec.sp_family with
  | Residual r -> r.rs_base_width
  | Dense d -> d.dn_growth

let cost_mults spec =
  ( max 1 (spec.sp_paper_width / scaled_width spec),
    max 1 (spec.sp_paper_input / spec.sp_input_size) )

(* Output width of a residual stage. *)
let stage_width r stage =
  r.rs_base_width * r.rs_width_mult * r.rs_expansion * (1 lsl stage)

let validate spec =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  if spec.sp_name = "" then err "spec has an empty name";
  if spec.sp_input_size < 1 then err "input size %d is degenerate" spec.sp_input_size;
  if spec.sp_num_classes < 1 then
    err "class count %d is degenerate" spec.sp_num_classes;
  if spec.sp_paper_width < scaled_width spec then
    err "paper width %d is below the scaled width %d" spec.sp_paper_width
      (scaled_width spec);
  if spec.sp_paper_input < spec.sp_input_size then
    err "paper input %d is below the scaled input %d" spec.sp_paper_input
      spec.sp_input_size;
  (match spec.sp_family with
  | Residual r ->
      let stages = Array.length r.rs_blocks in
      if stages = 0 then err "residual family has no stages";
      Array.iteri
        (fun i n -> if n < 1 then err "stage %d has %d blocks" i n)
        r.rs_blocks;
      if r.rs_base_width < 1 then err "base width %d is degenerate" r.rs_base_width;
      if r.rs_width_mult < 1 then
        err "width multiplier %d is degenerate" r.rs_width_mult;
      if r.rs_expansion < 1 then err "expansion %d is degenerate" r.rs_expansion;
      if r.rs_stem_kernel < 1 || r.rs_stem_kernel mod 2 = 0 then
        err "stem kernel %d must be odd and positive" r.rs_stem_kernel;
      if r.rs_stem_stride < 1 then
        err "stem stride %d is degenerate" r.rs_stem_stride;
      if r.rs_dilation < 1 then err "dilation %d is degenerate" r.rs_dilation;
      if r.rs_drop_path < 0.0 || r.rs_drop_path >= 1.0 then
        err "drop-path rate %g is outside [0, 1)" r.rs_drop_path;
      if r.rs_stem_stride >= 1 && spec.sp_input_size mod r.rs_stem_stride <> 0 then
        err "stem stride %d does not divide the input plane %d" r.rs_stem_stride
          spec.sp_input_size;
      if stages > 0 && r.rs_stem_stride >= 1 then begin
        let after_stem = spec.sp_input_size / r.rs_stem_stride in
        let downsamples = 1 lsl (stages - 1) in
        if after_stem mod downsamples <> 0 || after_stem / downsamples < 1 then
          err "input plane %d does not survive %d stage downsamplings" after_stem
            (stages - 1)
      end;
      (match r.rs_kind with
      | Basic -> ()
      | Aggregated { cardinality; reduce_num; reduce_den } ->
          if cardinality < 1 then err "cardinality %d is degenerate" cardinality;
          if reduce_num < 1 || reduce_den < 1 then
            err "reduction ratio %d/%d is degenerate" reduce_num reduce_den;
          for stage = 0 to stages - 1 do
            let out_c = stage_width r stage in
            let scaled = out_c * reduce_num in
            if reduce_den >= 1 && scaled mod reduce_den <> 0 then
              err "stage %d inner width %d*%d/%d is fractional" stage out_c
                reduce_num reduce_den
            else if reduce_den >= 1 && cardinality >= 1 then begin
              let inner = scaled / reduce_den in
              if inner mod cardinality <> 0 || inner < cardinality then
                err "stage %d inner width %d is not divisible by cardinality %d"
                  stage inner cardinality
            end
          done
      | Inverted { expand_ratio } ->
          if expand_ratio < 1 then
            err "expansion ratio %d is degenerate" expand_ratio);
      (match r.rs_attention with
      | No_attention -> ()
      | Squeeze_excite { se_ratio } ->
          if se_ratio < 1 then err "squeeze-excite ratio %d is degenerate" se_ratio)
  | Dense d ->
      let n_blocks = Array.length d.dn_blocks in
      if n_blocks = 0 then err "dense family has no blocks";
      Array.iteri
        (fun i n -> if n < 1 then err "dense block %d has %d layers" i n)
        d.dn_blocks;
      if d.dn_growth < 1 then err "growth rate %d is degenerate" d.dn_growth;
      if n_blocks > 1 then begin
        let downsamples = 1 lsl (n_blocks - 1) in
        if spec.sp_input_size mod downsamples <> 0
           || spec.sp_input_size / downsamples < 1
        then
          err "input plane %d does not survive %d transition poolings"
            spec.sp_input_size (n_blocks - 1)
      end;
      (* Transition convolutions halve the channel count (truncating, as in
         the reference networks); the halved width must stay positive. *)
      let channels = ref (2 * d.dn_growth) in
      Array.iteri
        (fun bi n_layers ->
          channels := !channels + (n_layers * d.dn_growth);
          if bi < n_blocks - 1 then begin
            if !channels / 2 < 1 then
              err "channel count %d entering transition %d collapses" !channels bi;
            channels := !channels / 2
          end)
        d.dn_blocks);
  List.rev !problems

(* --- Build context ----------------------------------------------------- *)

type ctx = {
  b : Builder.t;
  impls_in : Conv_impl.t array option;
  mutable sites_rev : Conv_impl.site list;
  mutable used_rev : Conv_impl.t list;
  mutable fixed_rev : Conv_impl.workload list;
  mutable next_site : int;
}

let fresh_ctx ?impls b =
  { b; impls_in = impls; sites_rev = []; used_rev = []; fixed_rev = [];
    next_site = 0 }

let ctx_sites ctx = Array.of_list (List.rev ctx.sites_rev)
let ctx_impls ctx = Array.of_list (List.rev ctx.used_rev)
let ctx_fixed ctx = List.rev ctx.fixed_rev

let impl_for ctx site =
  match ctx.impls_in with
  | None -> Conv_impl.Full
  | Some arr ->
      let impl = arr.(site.Conv_impl.site_index) in
      if not (Conv_impl.valid site impl) then
        invalid_arg
          (Printf.sprintf "invalid impl %s for site %s" (Conv_impl.to_string impl)
             site.Conv_impl.site_label);
      impl

(* Appends a transformable site with its selected implementation. *)
let site ctx ~label ~in_channels ~out_channels ~kernel ~stride ?(groups = 1)
    ~spatial src =
  let s =
    { Conv_impl.site_index = ctx.next_site; in_channels; out_channels; kernel;
      stride; groups; spatial_in = spatial; site_label = label }
  in
  ctx.next_site <- ctx.next_site + 1;
  let impl = impl_for ctx s in
  ctx.sites_rev <- s :: ctx.sites_rev;
  ctx.used_rev <- impl :: ctx.used_rev;
  Builder.realize_site ctx.b s impl src

(* Appends a fixed (non-transformable) conv-bn[-relu] and records its
   workload.  Dilation does not change the workload's MAC count (same tap
   count, same output plane under the matching padding), so the record needs
   no dilation field. *)
let fixed ctx ~label ~in_channels ~out_channels ~kernel ~stride ?(groups = 1)
    ?(dilation = 1) ?(relu = true) ~spatial src =
  ctx.fixed_rev <-
    { Conv_impl.w_in_channels = in_channels; w_out_channels = out_channels;
      w_kernel = kernel; w_stride = stride; w_groups = groups; w_spatial = spatial;
      w_label = label }
    :: ctx.fixed_rev;
  Builder.conv_bn_relu ctx.b ~label ~in_channels ~out_channels ~kernel ~stride
    ~groups ~dilation ~relu src

let classifier ctx ~in_features ~num_classes src =
  ctx.fixed_rev <-
    { Conv_impl.w_in_channels = in_features; w_out_channels = num_classes;
      w_kernel = 1; w_stride = 1; w_groups = 1; w_spatial = 1; w_label = "fc" }
    :: ctx.fixed_rev;
  let gap = Builder.add ctx.b ~label:"gap" Graph.Global_avg_pool [ src ] in
  Builder.linear_layer ctx.b ~label:"fc" ~in_features ~out_features:num_classes gap

(* Squeeze-excite gate on the main branch: gap -> FC reduce -> relu -> FC
   expand -> sigmoid -> per-channel scale.  The two FCs are recorded as 1x1
   spatial-1 workloads so parameter and MAC accounting stay exact. *)
let squeeze_excite ctx ~label ~channels ~ratio src =
  let b = ctx.b in
  let mid = max 1 (channels / ratio) in
  ctx.fixed_rev <-
    { Conv_impl.w_in_channels = mid; w_out_channels = channels; w_kernel = 1;
      w_stride = 1; w_groups = 1; w_spatial = 1; w_label = label ^ ".fc2" }
    :: { Conv_impl.w_in_channels = channels; w_out_channels = mid; w_kernel = 1;
         w_stride = 1; w_groups = 1; w_spatial = 1; w_label = label ^ ".fc1" }
    :: ctx.fixed_rev;
  let gap = Builder.add b ~label:(label ^ ".gap") Graph.Global_avg_pool [ src ] in
  let fc1 =
    Builder.linear_layer b ~label:(label ^ ".fc1") ~in_features:channels
      ~out_features:mid gap
  in
  let r = Builder.add b ~label:(label ^ ".relu") Graph.Relu [ fc1 ] in
  let fc2 =
    Builder.linear_layer b ~label:(label ^ ".fc2") ~in_features:mid
      ~out_features:channels r
  in
  let gate = Builder.add b ~label:(label ^ ".sigmoid") Graph.Sigmoid [ fc2 ] in
  Builder.add b ~label:(label ^ ".scale") Graph.Scale_channels [ src; gate ]

(* A 3x3 block convolution: a transformable site normally, a fixed dilated
   convolution in a dilated final stage. *)
let conv3 ctx ~label ~in_channels ~out_channels ~stride ~groups ~dil ~spatial src =
  if dil = 1 then
    site ctx ~label ~in_channels ~out_channels ~kernel:3 ~stride ~groups ~spatial
      src
  else
    fixed ctx ~label ~in_channels ~out_channels ~kernel:3 ~stride ~groups
      ~dilation:dil ~spatial src

(* --- Residual families ------------------------------------------------- *)

let emit_residual ctx spec r =
  let b = ctx.b in
  let inp = Builder.input b in
  let spatial = ref spec.sp_input_size in
  let cur =
    ref
      (fixed ctx ~label:"stem" ~in_channels:3 ~out_channels:r.rs_base_width
         ~kernel:r.rs_stem_kernel ~stride:r.rs_stem_stride ~spatial:!spatial inp)
  in
  spatial := !spatial / r.rs_stem_stride;
  let channels = ref r.rs_base_width in
  let last_stage = Array.length r.rs_blocks - 1 in
  Array.iteri
    (fun stage n_blocks ->
      let out_c = stage_width r stage in
      let dil = if stage = last_stage then r.rs_dilation else 1 in
      for blk = 0 to n_blocks - 1 do
        let stride = if stage > 0 && blk = 0 then 2 else 1 in
        let in_c = !channels in
        let label = Printf.sprintf "s%d.b%d" stage blk in
        let post_spatial = !spatial / stride in
        let main =
          match r.rs_kind with
          | Basic ->
              let c1 =
                conv3 ctx ~label:(label ^ ".conv1") ~in_channels:in_c
                  ~out_channels:out_c ~stride ~groups:1 ~dil ~spatial:!spatial !cur
              in
              conv3 ctx ~label:(label ^ ".conv2") ~in_channels:out_c
                ~out_channels:out_c ~stride:1 ~groups:1 ~dil ~spatial:post_spatial
                c1
          | Aggregated { cardinality; reduce_num; reduce_den } ->
              let inner = out_c * reduce_num / reduce_den in
              let reduce =
                fixed ctx ~label:(label ^ ".reduce") ~in_channels:in_c
                  ~out_channels:inner ~kernel:1 ~stride:1 ~spatial:!spatial !cur
              in
              let grouped =
                conv3 ctx ~label:(label ^ ".conv3x3") ~in_channels:inner
                  ~out_channels:inner ~stride ~groups:cardinality ~dil
                  ~spatial:!spatial reduce
              in
              fixed ctx ~label:(label ^ ".expand") ~in_channels:inner
                ~out_channels:out_c ~kernel:1 ~stride:1 ~relu:false
                ~spatial:post_spatial grouped
          | Inverted { expand_ratio } ->
              let mid = in_c * expand_ratio in
              let expand =
                site ctx ~label:(label ^ ".expand") ~in_channels:in_c
                  ~out_channels:mid ~kernel:1 ~stride:1 ~spatial:!spatial !cur
              in
              let dw =
                fixed ctx ~label:(label ^ ".dw") ~in_channels:mid
                  ~out_channels:mid ~kernel:3 ~stride ~groups:mid ~dilation:dil
                  ~spatial:!spatial expand
              in
              site ctx ~label:(label ^ ".project") ~in_channels:mid
                ~out_channels:out_c ~kernel:1 ~stride:1 ~spatial:post_spatial dw
        in
        let main =
          match r.rs_attention with
          | No_attention -> main
          | Squeeze_excite { se_ratio } ->
              squeeze_excite ctx ~label:(label ^ ".se") ~channels:out_c
                ~ratio:se_ratio main
        in
        (match r.rs_kind with
        | Basic | Aggregated _ ->
            let shortcut =
              if stride = 1 && in_c = out_c then !cur
              else
                fixed ctx ~label:(label ^ ".down") ~in_channels:in_c
                  ~out_channels:out_c ~kernel:1 ~stride ~relu:false
                  ~spatial:!spatial !cur
            in
            let sum =
              Builder.add b ~label:(label ^ ".add") Graph.Add [ main; shortcut ]
            in
            cur := Builder.add b ~label:(label ^ ".out") Graph.Relu [ sum ]
        | Inverted _ ->
            (* MobileNet-style joins: identity shortcut when the interface
               matches, otherwise the projection output stands alone. *)
            if stride = 1 && in_c = out_c then
              cur := Builder.add b ~label:(label ^ ".add") Graph.Add [ main; !cur ]
            else cur := main);
        spatial := post_spatial;
        channels := out_c
      done)
    r.rs_blocks;
  classifier ctx ~in_features:!channels ~num_classes:spec.sp_num_classes !cur

(* --- DenseNet-BC ------------------------------------------------------- *)

let emit_dense ctx spec d =
  let b = ctx.b in
  let growth = d.dn_growth in
  let inp = Builder.input b in
  let spatial = ref spec.sp_input_size in
  let cur =
    ref
      (fixed ctx ~label:"stem" ~in_channels:3 ~out_channels:(2 * growth) ~kernel:3
         ~stride:1 ~spatial:!spatial inp)
  in
  let channels = ref (2 * growth) in
  let n_dense_blocks = Array.length d.dn_blocks in
  Array.iteri
    (fun bi n_layers ->
      for li = 0 to n_layers - 1 do
        let label = Printf.sprintf "d%d.l%d" bi li in
        let c = !channels in
        let mid = 4 * growth in
        let reduce =
          site ctx ~label:(label ^ ".conv1x1") ~in_channels:c ~out_channels:mid
            ~kernel:1 ~stride:1 ~spatial:!spatial !cur
        in
        let grown =
          site ctx ~label:(label ^ ".conv3x3") ~in_channels:mid ~out_channels:growth
            ~kernel:3 ~stride:1 ~spatial:!spatial reduce
        in
        cur := Builder.add b ~label:(label ^ ".cat") Graph.Concat [ !cur; grown ];
        channels := c + growth
      done;
      if bi < n_dense_blocks - 1 then begin
        let c = !channels in
        let half = c / 2 in
        let trans =
          fixed ctx
            ~label:(Printf.sprintf "t%d.conv" bi)
            ~in_channels:c ~out_channels:half ~kernel:1 ~stride:1 ~spatial:!spatial
            !cur
        in
        cur :=
          Builder.add b
            ~label:(Printf.sprintf "t%d.pool" bi)
            (Graph.Avg_pool { size = 2; stride = 2; pad = 0 })
            [ trans ];
        channels := half;
        spatial := !spatial / 2
      end)
    d.dn_blocks;
  classifier ctx ~in_features:!channels ~num_classes:spec.sp_num_classes !cur

let emit ctx spec =
  match spec.sp_family with
  | Residual r -> emit_residual ctx spec r
  | Dense d -> emit_dense ctx spec d
