(** Model zoo: scaled-down but structurally faithful variants of the network
    families evaluated in the paper, plus the additional families registered
    in {!Zoo}.

    A configuration is a {!Block.spec}; {!build} lowers it through the block
    algebra.  Every model carries the array of its transformable convolution
    {!Conv_impl.site}s.  [build] materializes the computation graph for a
    given per-site implementation assignment; the default assignment is the
    original network ([Full] everywhere). *)

type config = Block.spec
(** A network family description from the block algebra (see {!Zoo} for the
    registry of named presets). *)

val config_name : config -> string
(** The family name carried by the spec. *)

type t = {
  config : config;
  name : string;
  graph : Graph.t;
  sites : Conv_impl.site array;
  impls : Conv_impl.t array;
  fisher_node_ids : int array;
  fixed_workloads : Conv_impl.workload list;
      (** non-transformable convolutions (stem, shortcuts, reductions,
          transitions, squeeze-excite FCs) plus the classifier, for cost
          accounting *)
  num_classes : int;
  input_size : int;
  input_channels : int;
  cost_mult_c : int;
      (** channel multiplier mapping the scaled model back to the original
          network's dimensions, used for hardware-cost accounting *)
  cost_mult_s : int;  (** spatial multiplier, same purpose *)
}

val cost_mults : config -> int * int
(** [(channel, spatial)] cost multipliers of a spec, computed from its
    explicit paper-scale dimensions (see {!Block.cost_mults}). *)

val build : ?impls:Conv_impl.t array -> config -> Rng.t -> t
(** Builds the graph.  [impls], when given, must have one entry per site and
    each entry must be valid for its site. *)

val rebuild : t -> Rng.t -> Conv_impl.t array -> t
(** Same configuration with a different implementation assignment (fresh
    initialization, as the paper searches at initialization). *)

val site_count : config -> int
(** Number of transformable sites a build of this config exposes. *)

val forward_logits : t -> Tensor.t -> Tensor.t
(** One forward pass returning the classifier logits. *)

val total_macs : t -> int
(** MACs of one inference at batch 1 under the current assignment. *)

val conv_params : t -> int
(** Convolution + classifier weight count under the current assignment. *)

val all_workloads : t -> Conv_impl.workload list
(** Fixed workloads plus the expansion of every site, in network order. *)

val scale_site : t -> Conv_impl.site -> Conv_impl.site
(** The site at the original (paper-scale) network dimensions: channels
    multiplied by [cost_mult_c], spatial extent by [cost_mult_s]. *)

val cost_workloads : t -> Conv_impl.workload list
(** Like {!all_workloads} but at paper-scale dimensions.  Training and the
    Fisher pass run on the scaled network; hardware-cost accounting uses
    these full-size convolutions so that cache pressure and arithmetic
    intensity match the real workloads. *)

val graph_digest : t -> string
(** Canonical MD5 fingerprint of the built model: per-node structure
    (operator, static parameters, weight shapes, wiring, labels) and
    per-parameter value checksums.  Two builds with identical digests have
    bit-identical graphs; {!Zoo.snapshot}s pin presets to these digests. *)

(** {2 Presets}

    The named presets delegate to the {!Zoo} registry; the functions below
    are kept for the six paper networks used throughout the experiments. *)

(** Presets use a [scale] knob: [`Search] is the default size used by the
    performance experiments (Fisher + cost model only), [`Train] is smaller
    so that full SGD training stays cheap, and [`Imagenet] is the larger
    input / more classes variant used by the Figure 8 experiments. *)
type scale = Block.scale

val resnet18 : ?scale:scale -> unit -> config
(** ResNet-18: basic residual blocks, [2;2;2;2] per stage. *)

val resnet34 : ?scale:scale -> unit -> config
(** ResNet-34: basic residual blocks, [3;4;6;3] per stage. *)

val resnext29 : ?scale:scale -> unit -> config
(** ResNeXt-29 (2x64d): aggregated residual blocks, grouped 3x3s. *)

val densenet161 : ?scale:scale -> unit -> config
(** DenseNet-BC-161: growth 48 at paper scale. *)

val densenet169 : ?scale:scale -> unit -> config
(** DenseNet-BC-169: growth 32 at paper scale. *)

val densenet201 : ?scale:scale -> unit -> config
(** DenseNet-BC-201: growth 32 at paper scale. *)
