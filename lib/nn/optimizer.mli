(** SGD with momentum, weight decay and a step-decay schedule — the training
    recipe from §6.1 of the paper, scaled down. *)

type t

val sgd :
  ?momentum:float -> ?weight_decay:float -> lr:float -> Layer.param list -> t
(** [sgd ~lr params] with momentum 0.9 and weight decay 5e-4 by default. *)

val set_lr : t -> float -> unit
(** Overrides the learning rate (the step-decay schedule uses this). *)

val lr : t -> float
(** Current learning rate. *)

val step : t -> unit
(** Applies one update from the accumulated gradients, then leaves the
    gradients untouched (call {!Graph.zero_grads} before the next pass). *)

val decay_schedule : milestones:int list -> gamma:float -> base_lr:float -> int -> float
(** [decay_schedule ~milestones ~gamma ~base_lr step] is the learning rate at
    [step]: [base_lr] multiplied by [gamma] for every milestone passed. *)
