type op =
  | Input
  | Conv of Layer.conv
  | Batch_norm of Layer.bn
  | Relu
  | Max_pool of { size : int; stride : int; pad : int }
  | Avg_pool of { size : int; stride : int; pad : int }
  | Global_avg_pool
  | Linear of Layer.linear
  | Add
  | Concat
  | Identity
  | Zero
  | Upsample of int
  | Sigmoid
  | Scale_channels

type node = { id : int; op : op; inputs : int list; label : string }
type t = { nodes : node array; output_id : int }

let make nodes ~output_id =
  Array.iteri
    (fun i n ->
      assert (n.id = i);
      List.iter (fun j -> assert (j < i)) n.inputs)
    nodes;
  assert (output_id >= 0 && output_id < Array.length nodes);
  { nodes; output_id }

type cache =
  | C_none
  | C_bn of Ops.bn_cache
  | C_pool of int array

type run = {
  graph : t;
  acts : Tensor.t array;
  grads : Tensor.t option array;
  caches : cache array;
}

let one_input n =
  match n.inputs with
  | [ i ] -> i
  | _ -> invalid_arg (Printf.sprintf "node %s: expected one input" n.label)

let forward g input =
  let n = Array.length g.nodes in
  let acts = Array.make n (Tensor.scalar 0.0) in
  let caches = Array.make n C_none in
  Array.iter
    (fun node ->
      let i = node.id in
      let act =
        match node.op with
        | Input -> input
        | Conv c ->
            Ops.conv2d ~input:acts.(one_input node) ~weight:c.Layer.cv_w.p_value
              ~bias:(Option.map (fun b -> b.Layer.p_value) c.cv_b)
              { Ops.stride = c.cv_stride; pad = c.cv_pad; groups = c.cv_groups;
                dilation = c.cv_dilation }
        | Batch_norm b ->
            let out, cache =
              Ops.batch_norm ~input:acts.(one_input node) ~gamma:b.Layer.bn_gamma.p_value
                ~beta:b.bn_beta.p_value ~eps:b.bn_eps
            in
            caches.(i) <- C_bn cache;
            out
        | Relu -> Ops.relu acts.(one_input node)
        | Max_pool { size; stride; pad } ->
            let out, idx = Ops.max_pool2d acts.(one_input node) ~size ~stride ~pad in
            caches.(i) <- C_pool idx;
            out
        | Avg_pool { size; stride; pad } ->
            Ops.avg_pool2d acts.(one_input node) ~size ~stride ~pad
        | Global_avg_pool -> Ops.global_avg_pool acts.(one_input node)
        | Linear l ->
            Ops.linear ~input:acts.(one_input node) ~weight:l.Layer.ln_w.p_value
              ~bias:l.ln_b.p_value
        | Add -> begin
            match node.inputs with
            | [] -> invalid_arg "Add: no inputs"
            | first :: rest ->
                let acc = Tensor.copy acts.(first) in
                List.iter (fun j -> Tensor.add_ acc acts.(j)) rest;
                acc
          end
        | Concat -> Ops.concat_channels (List.map (fun j -> acts.(j)) node.inputs)
        | Identity -> acts.(one_input node)
        | Zero -> Tensor.zeros (Tensor.shape acts.(one_input node))
        | Upsample f -> Ops.upsample_nearest acts.(one_input node) f
        | Sigmoid -> Ops.sigmoid acts.(one_input node)
        | Scale_channels -> begin
            match node.inputs with
            | [ main; gate ] ->
                Ops.scale_channels ~input:acts.(main) ~gate:acts.(gate)
            | _ -> invalid_arg (node.label ^ ": scale_channels expects [main; gate]")
          end
      in
      acts.(i) <- act)
    g.nodes;
  { graph = g; acts; grads = Array.make n None; caches }

let output run = run.acts.(run.graph.output_id)
let activation run i = run.acts.(i)

let accumulate grads i g =
  match grads.(i) with
  | None -> grads.(i) <- Some (Tensor.copy g)
  | Some acc -> Tensor.add_ acc g

let backward g run ~loss_grad =
  let grads = run.grads in
  grads.(g.output_id) <- Some (Tensor.copy loss_grad);
  for i = Array.length g.nodes - 1 downto 0 do
    match grads.(i) with
    | None -> () (* node does not influence the loss *)
    | Some gout ->
        let node = g.nodes.(i) in
        (match node.op with
        | Input -> ()
        | Conv c ->
            let input = run.acts.(one_input node) in
            let gin, gw, gb =
              Ops.conv2d_backward ~input ~weight:c.Layer.cv_w.p_value ~gout
                { Ops.stride = c.cv_stride; pad = c.cv_pad; groups = c.cv_groups;
                  dilation = c.cv_dilation }
            in
            Tensor.add_ c.cv_w.p_grad gw;
            (match c.cv_b with
            | None -> ()
            | Some b -> Tensor.add_ b.p_grad gb);
            accumulate grads (one_input node) gin
        | Batch_norm b ->
            let cache =
              match run.caches.(i) with
              | C_bn c -> c
              | C_none | C_pool _ -> assert false
            in
            let gin, ggamma, gbeta = Ops.batch_norm_backward ~gout ~cache in
            Tensor.add_ b.Layer.bn_gamma.p_grad ggamma;
            Tensor.add_ b.bn_beta.p_grad gbeta;
            accumulate grads (one_input node) gin
        | Relu ->
            let input = run.acts.(one_input node) in
            accumulate grads (one_input node) (Ops.relu_backward ~input ~gout)
        | Max_pool _ ->
            let indices =
              match run.caches.(i) with
              | C_pool idx -> idx
              | C_none | C_bn _ -> assert false
            in
            let input = run.acts.(one_input node) in
            accumulate grads (one_input node)
              (Ops.max_pool2d_backward ~input ~gout ~indices)
        | Avg_pool { size; stride; pad } ->
            let input = run.acts.(one_input node) in
            accumulate grads (one_input node)
              (Ops.avg_pool2d_backward ~input ~gout ~size ~stride ~pad)
        | Global_avg_pool ->
            let input = run.acts.(one_input node) in
            accumulate grads (one_input node)
              (Ops.global_avg_pool_backward ~input ~gout)
        | Linear l ->
            let input = run.acts.(one_input node) in
            let gin, gw, gb =
              Ops.linear_backward ~input ~weight:l.Layer.ln_w.p_value ~gout
            in
            Tensor.add_ l.ln_w.p_grad gw;
            Tensor.add_ l.ln_b.p_grad gb;
            accumulate grads (one_input node) gin
        | Add -> List.iter (fun j -> accumulate grads j gout) node.inputs
        | Concat ->
            let parts =
              List.map (fun j -> (Tensor.shape run.acts.(j)).(1)) node.inputs
            in
            let gs = Ops.split_channels_backward ~gout ~parts in
            List.iter2 (fun j gpart -> accumulate grads j gpart) node.inputs gs
        | Identity -> accumulate grads (one_input node) gout
        | Zero -> ()
        | Upsample f ->
            let input = run.acts.(one_input node) in
            accumulate grads (one_input node)
              (Ops.upsample_nearest_backward ~input ~gout f)
        | Sigmoid ->
            accumulate grads (one_input node)
              (Ops.sigmoid_backward ~out:run.acts.(i) ~gout)
        | Scale_channels -> begin
            match node.inputs with
            | [ main; gate ] ->
                let gmain, ggate =
                  Ops.scale_channels_backward ~input:run.acts.(main)
                    ~gate:run.acts.(gate) ~gout
                in
                accumulate grads main gmain;
                accumulate grads gate ggate
            | _ -> assert false
          end)
  done

let activation_grad run i =
  match run.grads.(i) with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "activation_grad: node %d has no gradient" i)

let params g =
  Array.to_list g.nodes
  |> List.concat_map (fun n ->
         match n.op with
         | Conv c -> (
             c.Layer.cv_w :: (match c.cv_b with None -> [] | Some b -> [ b ]))
         | Batch_norm b -> [ b.Layer.bn_gamma; b.bn_beta ]
         | Linear l -> [ l.Layer.ln_w; l.ln_b ]
         | Input | Relu | Max_pool _ | Avg_pool _ | Global_avg_pool | Add | Concat
         | Identity | Zero | Upsample _ | Sigmoid | Scale_channels ->
             [])

let param_count g =
  List.fold_left (fun acc p -> acc + Tensor.numel p.Layer.p_value) 0 (params g)

let zero_grads g = List.iter Layer.zero_grad (params g)
let node_count g = Array.length g.nodes
let node g i = g.nodes.(i)
