(** Parameterized block algebra underlying the model zoo.

    A network family is a {!spec}: a stem description, a stage/block layout
    and a block kind drawn from a small algebra (basic residual, aggregated
    grouped bottleneck, inverted depthwise-separable), optionally decorated
    with squeeze-excite attention, dilation in the final stage and a
    drop-path rate.  {!emit} lowers a spec onto a {!Builder} while recording
    every transformable convolution {!Conv_impl.site} and every fixed
    workload, so whole families (ResNet, WideResNet, ResNeXt, DenseNet,
    MobileNet-style...) become one-line entries in {!Zoo} instead of
    hand-written builder functions. *)

(** Model scales shared by every family: [`Search] is the size used by the
    performance experiments, [`Train] is smaller so SGD training stays
    cheap, [`Imagenet] is the larger-input / more-classes variant. *)
type scale = [ `Search | `Train | `Imagenet ]

(** Channel-attention decoration of a residual block. *)
type attention =
  | No_attention
  | Squeeze_excite of { se_ratio : int }
      (** global-average-pool -> FC reduce by [se_ratio] -> relu -> FC
          expand -> sigmoid gate multiplied back onto the block output *)

(** The block kinds of the algebra. *)
type kind =
  | Basic
      (** two 3x3 convolution sites (ResNet / WideResNet basic block) *)
  | Aggregated of { cardinality : int; reduce_num : int; reduce_den : int }
      (** 1x1 reduce to [out_c * reduce_num / reduce_den] channels, grouped
          3x3 site with [cardinality] groups, 1x1 expand (ResNeXt) *)
  | Inverted of { expand_ratio : int }
      (** 1x1 expand site to [in_c * expand_ratio], fixed depthwise 3x3,
          1x1 project site (MobileNet-style inverted residual) *)

type residual = {
  rs_blocks : int array;  (** residual blocks per stage *)
  rs_base_width : int;  (** stem width; stage widths grow from it *)
  rs_width_mult : int;  (** WideResNet widening factor *)
  rs_expansion : int;  (** block output expansion factor *)
  rs_kind : kind;
  rs_attention : attention;
  rs_stem_kernel : int;
  rs_stem_stride : int;  (** 1 for CIFAR-style stems, 2 for ImageNet-style *)
  rs_dilation : int;
      (** when > 1, the final stage's 3x3 convolutions are dilated by this
          factor and emitted as fixed workloads rather than sites (the
          transformation catalogue targets dense convolutions) *)
  rs_drop_path : float;
      (** stochastic-depth rate in [0,1); recorded for trainers that apply
          it, structurally inert at build time *)
}
(** A residual family: stage [s] has
    [rs_base_width * rs_width_mult * rs_expansion * 2^s] output channels and
    downsamples by 2 at its first block (except stage 0). *)

type dense = {
  dn_blocks : int array;  (** dense layers per dense block *)
  dn_growth : int;  (** growth rate k of DenseNet-BC *)
}

type family = Residual of residual | Dense of dense

type spec = {
  sp_name : string;
  sp_family : family;
  sp_input_size : int;
  sp_num_classes : int;
  sp_paper_width : int;
      (** the real network's base width / growth rate; with the scaled width
          it determines the channel cost multiplier *)
  sp_paper_input : int;
      (** the real network's input resolution; with the scaled input it
          determines the spatial cost multiplier *)
}
(** A complete, buildable family description.  The [sp_paper_*] fields carry
    the paper-scale dimensions explicitly so cost accounting never infers
    them from the family name. *)

val cost_mults : spec -> int * int
(** [(channel, spatial)] multipliers mapping the scaled-down model back to
    the paper-scale network, computed from the explicit [sp_paper_*]
    dimensions: [max 1 (paper_width / scaled_width)] and
    [max 1 (paper_input / input_size)]. *)

val validate : spec -> string list
(** Structural problems with the spec (empty when well-formed): degenerate
    dimensions, stage layouts whose strides do not divide the input plane,
    aggregated widths not divisible by the cardinality, out-of-range
    drop-path and the like. *)

type ctx
(** Build context threading the site counter, the chosen implementation per
    site and the fixed-workload accumulator through {!emit}. *)

val fresh_ctx : ?impls:Conv_impl.t array -> Builder.t -> ctx
(** A context realizing each site with [impls.(site_index)] (validated
    against {!Conv_impl.valid}), or with [Full] everywhere when omitted. *)

val emit : ctx -> spec -> int
(** Lowers the spec onto the context's builder (input node, stem, stages,
    classifier) and returns the output node id. *)

val ctx_sites : ctx -> Conv_impl.site array
(** Transformable sites recorded by {!emit}, in network order. *)

val ctx_impls : ctx -> Conv_impl.t array
(** The implementation chosen for each site, aligned with {!ctx_sites}. *)

val ctx_fixed : ctx -> Conv_impl.workload list
(** Fixed (non-transformable) workloads recorded by {!emit}: stem,
    shortcuts, reductions, transitions, squeeze-excite FCs, classifier. *)
