type config = Block.spec

let config_name (c : config) = c.Block.sp_name

type t = {
  config : config;
  name : string;
  graph : Graph.t;
  sites : Conv_impl.site array;
  impls : Conv_impl.t array;
  fisher_node_ids : int array;
  fixed_workloads : Conv_impl.workload list;
  num_classes : int;
  input_size : int;
  input_channels : int;
  cost_mult_c : int;
  cost_mult_s : int;
}

let cost_mults = Block.cost_mults

(* --- Assembly --------------------------------------------------------- *)

let build ?impls config rng =
  let b = Builder.create rng in
  let ctx = Block.fresh_ctx ?impls b in
  let output = Block.emit ctx config in
  let graph = Builder.finish b ~output in
  let sites = Block.ctx_sites ctx in
  (match impls with
  | None -> ()
  | Some arr ->
      if Array.length arr <> Array.length sites then
        invalid_arg
          (Printf.sprintf "build %s: expected %d impls, got %d" (config_name config)
             (Array.length sites) (Array.length arr)));
  let cost_mult_c, cost_mult_s = cost_mults config in
  { config;
    name = config_name config;
    graph;
    sites;
    impls = Block.ctx_impls ctx;
    fisher_node_ids = Array.of_list (Builder.fisher_nodes b);
    fixed_workloads = Block.ctx_fixed ctx;
    num_classes = config.Block.sp_num_classes;
    input_size = config.Block.sp_input_size;
    input_channels = 3;
    cost_mult_c;
    cost_mult_s }

let rebuild t rng impls = build ~impls t.config rng

let site_count config =
  let probe = build config (Rng.create 1) in
  Array.length probe.sites

let forward_logits t input =
  let run = Graph.forward t.graph input in
  Graph.output run

let all_workloads t =
  let site_workloads =
    Array.to_list t.sites
    |> List.concat_map (fun s -> Conv_impl.workloads s t.impls.(s.Conv_impl.site_index))
  in
  t.fixed_workloads @ site_workloads

let total_macs t =
  List.fold_left (fun acc w -> acc + Conv_impl.workload_macs w) 0 (all_workloads t)

let scale_site t (s : Conv_impl.site) =
  { s with
    Conv_impl.in_channels = s.Conv_impl.in_channels * t.cost_mult_c;
    out_channels = s.out_channels * t.cost_mult_c;
    spatial_in = s.spatial_in * t.cost_mult_s }

let scale_fixed_workload t (w : Conv_impl.workload) =
  let mc = t.cost_mult_c and ms = t.cost_mult_s in
  { w with
    Conv_impl.w_in_channels =
      (if w.Conv_impl.w_label = "stem" then w.w_in_channels else w.w_in_channels * mc);
    w_out_channels = (if w.w_label = "fc" then w.w_out_channels else w.w_out_channels * mc);
    w_spatial = (if w.w_label = "fc" then 1 else w.w_spatial * ms) }

let cost_workloads t =
  let fixed = List.map (scale_fixed_workload t) t.fixed_workloads in
  let site_workloads =
    Array.to_list t.sites
    |> List.concat_map (fun s ->
           Conv_impl.workloads (scale_site t s) t.impls.(s.Conv_impl.site_index))
  in
  fixed @ site_workloads

let conv_params t =
  List.fold_left
    (fun acc w ->
      acc
      + (w.Conv_impl.w_in_channels * w.w_out_channels * w.w_kernel * w.w_kernel
        / w.w_groups))
    0 (all_workloads t)

(* --- Structural digest ------------------------------------------------- *)

(* Canonical fingerprint of a built model: one line per node (id, operator
   with its static parameters and weight shape, inputs, label) followed by
   one line per parameter (name, value sum, squared norm).  Dilation is only
   printed when it differs from 1 so that digests of pre-dilation builds are
   preserved verbatim. *)
let graph_digest (m : t) =
  let b = Buffer.create 4096 in
  let g = m.graph in
  let shape_str t =
    String.concat "x" (Array.to_list (Array.map string_of_int (Tensor.shape t)))
  in
  for i = 0 to Graph.node_count g - 1 do
    let n = Graph.node g i in
    let op_desc =
      match n.Graph.op with
      | Graph.Input -> "input"
      | Graph.Conv c ->
          Printf.sprintf "conv[s%d,p%d,g%d%s,w%s]" c.Layer.cv_stride c.cv_pad
            c.cv_groups
            (if c.cv_dilation = 1 then ""
             else Printf.sprintf ",d%d" c.cv_dilation)
            (shape_str c.cv_w.Layer.p_value)
      | Graph.Batch_norm bn ->
          Printf.sprintf "bn[%d]" (Tensor.numel bn.Layer.bn_gamma.Layer.p_value)
      | Graph.Relu -> "relu"
      | Graph.Max_pool { size; stride; pad } ->
          Printf.sprintf "maxpool[%d,%d,%d]" size stride pad
      | Graph.Avg_pool { size; stride; pad } ->
          Printf.sprintf "avgpool[%d,%d,%d]" size stride pad
      | Graph.Global_avg_pool -> "gap"
      | Graph.Linear l ->
          Printf.sprintf "linear[w%s]" (shape_str l.Layer.ln_w.Layer.p_value)
      | Graph.Add -> "add"
      | Graph.Concat -> "concat"
      | Graph.Identity -> "identity"
      | Graph.Zero -> "zero"
      | Graph.Upsample f -> Printf.sprintf "upsample[%d]" f
      | Graph.Sigmoid -> "sigmoid"
      | Graph.Scale_channels -> "scalech"
    in
    Buffer.add_string b
      (Printf.sprintf "%d|%s|%s|%s\n" n.Graph.id op_desc
         (String.concat "," (List.map string_of_int n.Graph.inputs))
         n.Graph.label)
  done;
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "%s|%.12e|%.12e\n" p.Layer.p_name
           (Tensor.sum p.Layer.p_value)
           (Tensor.sq_norm p.Layer.p_value)))
    (Graph.params g);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- Presets ----------------------------------------------------------- *)

type scale = Block.scale

let of_zoo name scale =
  match Zoo.spec ~scale name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "unknown zoo entry %s" name)

let resnet18 ?(scale = `Search) () = of_zoo "resnet18" scale
let resnet34 ?(scale = `Search) () = of_zoo "resnet34" scale
let resnext29 ?(scale = `Search) () = of_zoo "resnext29" scale
let densenet161 ?(scale = `Search) () = of_zoo "densenet161" scale
let densenet169 ?(scale = `Search) () = of_zoo "densenet169" scale
let densenet201 ?(scale = `Search) () = of_zoo "densenet201" scale
