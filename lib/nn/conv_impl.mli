(** Structural alternatives for a convolution site.

    A network's transformable convolutions are described by {!site} records;
    the search assigns each site an implementation drawn from this type.  The
    classical program transformations (interchange, tiling, unrolling...)
    live in the [Npte] core library and only change the *schedule* of a
    site's loop nest; the constructors here are the *neural* transformations
    (and compositions of both families from §7.3 of the paper) that change
    the computation itself. *)

type site = {
  site_index : int;  (** position in the model's site array *)
  in_channels : int;
  out_channels : int;
  kernel : int;
  stride : int;
  groups : int;  (* baseline grouping of the original convolution *)
  spatial_in : int;  (** square input feature-map extent at this site *)
  site_label : string;
}

type t =
  | Full
      (** the original dense convolution *)
  | Grouped of int
      (** channel grouping with factor G (depthwise when G = C_i = C_o) *)
  | Bottleneck of int
      (** C_o reduced by factor B, restored by a trailing 1x1 convolution *)
  | Depthwise_separable
      (** depthwise k*k followed by pointwise 1x1 *)
  | Spatial_bottleneck of int
      (** §5.3: bottleneck applied to the spatial iterators — implemented as a
          stride-b convolution followed by nearest-neighbour upsampling *)
  | Split_grouped of int * int
      (** §7.3 sequence 3: the output-channel domain is split in two halves
          convolved with different grouping factors and concatenated *)

val pp : Format.formatter -> t -> unit
(** Short human-readable name, e.g. ["grouped(g=4)"]. *)

val to_string : t -> string
(** String form of {!pp}. *)

val spatial_out : site -> int
(** Square output feature-map extent ([spatial_in / stride]). *)

val valid : site -> t -> bool
(** Divisibility and spatial-extent constraints; mirrors the paper's
    [C mod G = 0] / [C_o mod B = 0] side conditions.  The static analyzer's
    [Shape_infer.check_impl] returns the diagnostic form of this predicate;
    the two are kept equivalent by a test. *)

val macs : site -> t -> int
(** Multiply-accumulate count of the site under the implementation. *)

val param_count : site -> t -> int
(** Weight count of the site under the implementation (conv weights only). *)

val all_options : site -> t list
(** Every valid implementation for the site (used by the NAS baselines). *)

val reduction_factor : site -> t -> float
(** MAC reduction versus [Full] (>= 1). *)

type workload = {
  w_in_channels : int;
  w_out_channels : int;
  w_kernel : int;
  w_stride : int;
  w_groups : int;
  w_spatial : int;  (** square input extent seen by this convolution *)
  w_label : string;
}
(** One concrete convolution of the realized structure, as consumed by the
    hardware cost model. *)

val workloads : site -> t -> workload list
(** The convolutions that {!Builder.realize_site} materializes for the
    implementation, in execution order. *)

val workload_macs : workload -> int
(** Multiply-accumulates of one workload at batch 1. *)

val workload_out_spatial : workload -> int
(** Square output feature-map extent of a workload. *)

