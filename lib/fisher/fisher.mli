(** Fisher Potential (§5.2): a train-free legality check for neural
    transformations.

    For one probe minibatch at initialization, the channel saliency of an
    activation A with loss gradient g is (eq. 4)

      delta_c = 1/(2N) * sum_n ( sum_{ij} A_nij * g_nij )^2

    a layer's score is the sum over its channels (eq. 5) and the network's
    Fisher Potential is the sum over its scored blocks.  A candidate network
    is legal iff its potential is not below the original's (up to a small
    slack). *)

type scores = {
  per_site : float array;  (** one score per transformable site, eq. 5 *)
  total : float;  (** network Fisher Potential *)
}

val channel_score : activation:Tensor.t -> grad:Tensor.t -> channel:int -> float
(** [delta_c] of one channel of an [N;C;H;W] activation (eq. 4). *)

val layer_score : activation:Tensor.t -> grad:Tensor.t -> float
(** Sum of {!channel_score} over the channels (eq. 5). *)

val score_graph : Graph.t -> fisher_nodes:int array -> Train.batch -> scores
(** Graph-level variant for networks outside the model zoo. *)

val score : Models.t -> Train.batch -> scores
(** Runs one forward/backward pass at the model's current (initialization)
    weights and aggregates the per-site scores.  Parameter gradients
    accumulated by the pass are cleared before returning. *)

val potential : Models.t -> Train.batch -> float
(** [ (score m b).total ]. *)

val finite : scores -> bool
(** Whether the total and every per-site score are finite.  A NaN score
    must be rejected explicitly: NaN compares false under [>=], so an
    unguarded candidate would silently pass or fail the legality check. *)

val clipped_total : baseline:scores -> scores -> float
(** Per-site scores clipped at the original's before summation — a
    one-sided test of capacity {e loss}.  At our scale, realizations that
    deepen a block (bottleneck trios, depthwise-separable pairs) inflate
    their site's raw score; clipping makes the totals comparable across
    structures and is strictly more conservative than the paper's
    unclipped comparison.  Both site arrays must be index-aligned. *)

val legal : ?slack:float -> original:float -> candidate:float -> unit -> bool
(** [legal ~original ~candidate] accepts iff
    [candidate >= (1 - slack) * original]; default slack is 0.05. *)

val legal_clipped : ?slack:float -> baseline:scores -> scores -> bool
(** Clipped-total legality: the candidate is legal iff its
    {!clipped_total} retains at least [(1 - slack)] of the baseline's total
    (default slack 0.12). *)
