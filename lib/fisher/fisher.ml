type scores = { per_site : float array; total : float }

let channel_score ~activation ~grad ~channel =
  let s = Tensor.shape activation in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  if channel >= c then
    Nas_error.shape_mismatch "channel_score: channel %d of %d" channel c;
  let ad = Tensor.data activation and gd = Tensor.data grad in
  let plane = h * w in
  let acc = ref 0.0 in
  for ni = 0 to n - 1 do
    let base = ((ni * c) + channel) * plane in
    let inner = ref 0.0 in
    for i = 0 to plane - 1 do
      inner := !inner +. (Array.unsafe_get ad (base + i) *. Array.unsafe_get gd (base + i))
    done;
    acc := !acc +. (!inner *. !inner)
  done;
  !acc /. (2.0 *. float_of_int n)

let layer_score ~activation ~grad =
  let c = (Tensor.shape activation).(1) in
  let total = ref 0.0 in
  for channel = 0 to c - 1 do
    total := !total +. channel_score ~activation ~grad ~channel
  done;
  !total

let score_graph graph ~fisher_nodes batch =
  Graph.zero_grads graph;
  let run, _loss = Train.forward_backward_graph graph batch in
  let per_site =
    Array.map
      (fun node_id ->
        let activation = Graph.activation run node_id in
        match Graph.activation_grad run node_id with
        | grad -> layer_score ~activation ~grad
        | exception Invalid_argument _ -> 0.0)
      fisher_nodes
  in
  Graph.zero_grads graph;
  { per_site; total = Array.fold_left ( +. ) 0.0 per_site }

let score model batch =
  score_graph model.Models.graph ~fisher_nodes:model.Models.fisher_node_ids batch

let potential model batch = (score model batch).total

let finite scores =
  Float.is_finite scores.total && Guard.all_finite scores.per_site

let clipped_total ~baseline scores =
  let n = Array.length baseline.per_site in
  if Array.length scores.per_site <> n then
    Nas_error.shape_mismatch "clipped_total: %d site scores against %d baseline"
      (Array.length scores.per_site) n;
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.min scores.per_site.(i) baseline.per_site.(i)
  done;
  !acc

let legal ?(slack = 0.05) ~original ~candidate () =
  candidate >= ((1.0 -. slack) *. original)

let legal_clipped ?(slack = 0.12) ~baseline scores =
  clipped_total ~baseline scores >= ((1.0 -. slack) *. baseline.total)
