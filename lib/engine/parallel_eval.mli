(** Domain-parallel candidate evaluation.

    A fixed pool of OCaml 5 domains maps an evaluation function over a
    contiguous index range.  Each worker runs against its own {!Eval_ctx}
    fork (fresh caches, an independent copy of the fault plan), so no
    evaluation state is shared between domains; the per-index results come
    back in index order, which makes the merge deterministic — the same
    best candidate, rejection count and quarantine set regardless of the
    worker count, because every per-index value is a pure function of the
    index and the merge replays them in order.

    The evaluation function must confine failures to its result type
    (e.g. an outcome variant) — an exception escaping a worker is
    re-raised at the join. *)

val available_workers : unit -> int
(** The runtime's recommended domain count for this machine. *)

val map_range :
  workers:int ->
  ctx:Eval_ctx.t ->
  first:int ->
  limit:int ->
  (Eval_ctx.t -> int -> 'a) ->
  'a array
(** [map_range ~workers ~ctx ~first ~limit f] evaluates
    [f worker_ctx i] for every [i] in [first, limit) and returns the
    results in index order.  The range is split into [workers] contiguous
    chunks (clamped to the range size and at most 64); chunk 0 runs on the
    calling domain.  With [workers <= 1] this degenerates to a sequential
    map over [ctx] itself with no fork.  After the join, every worker's
    cache/fault telemetry is absorbed into [ctx]. *)
