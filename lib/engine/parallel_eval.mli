(** Domain-parallel candidate evaluation.

    A pool of OCaml 5 domains maps an evaluation function over a
    contiguous index range.  Each worker runs against its own {!Eval_ctx}
    fork (fresh caches, an independent copy of the fault plan), built once
    per worker and reused for every item the worker evaluates.  Per-index
    results land in their index's slot regardless of which domain computed
    them, which makes the merge deterministic — the same best candidate,
    rejection count and quarantine set for any worker count and either
    schedule, because every per-index value is a pure function of the
    index and the caller replays the slots in order.

    Two schedules are available: {!Static} assigns each worker one
    contiguous chunk up front (predictable, but one expensive chunk
    serializes the run), and {!Dynamic} (the default) has idle domains
    pull the next unclaimed index from a shared atomic counter, so skewed
    per-item costs rebalance automatically.

    The evaluation function must confine failures to its result type
    (e.g. an outcome variant) — an exception escaping a worker is
    re-raised at the join. *)

val available_workers : unit -> int
(** The runtime's recommended domain count for this machine. *)

type schedule =
  | Static   (** fixed contiguous chunks, one per worker *)
  | Dynamic  (** idle workers pull the next index from a shared atomic counter *)

val schedule_name : schedule -> string
(** ["static"] or ["dynamic"] — the spelling used by CLI flags and
    BENCH_search.json. *)

val schedule_of_string : string -> schedule option
(** Inverse of {!schedule_name}; [None] on anything else. *)

type worker_stat = {
  ws_items : int;  (** items this worker evaluated *)
  ws_steals : int;
      (** items evaluated outside the worker's static fair-share chunk —
          the work the dynamic scheduler moved between domains (always 0
          under {!Static}) *)
  ws_busy_s : float;  (** wall time spent inside the evaluation function *)
}

type run_stats = {
  rs_schedule : schedule;  (** schedule this run used *)
  rs_workers : int;  (** workers actually spawned (after clamping) *)
  rs_wall_s : float;  (** wall time of the whole map *)
  rs_worker : worker_stat array;  (** one entry per worker, in worker order *)
}

val utilization : run_stats -> float array
(** Per-worker busy fraction ([ws_busy_s / rs_wall_s], clamped to 1.0) —
    the number BENCH_search.json records per worker.  Scheduling works
    when the minimum stays near 1.0 under skewed item costs. *)

val map_range :
  ?schedule:schedule ->
  ?on_stats:(run_stats -> unit) ->
  workers:int ->
  ctx:Eval_ctx.t ->
  first:int ->
  limit:int ->
  (Eval_ctx.t -> int -> 'a) ->
  'a array
(** [map_range ~workers ~ctx ~first ~limit f] evaluates
    [f worker_ctx i] for every [i] in [first, limit) and returns the
    results in index order.  [workers] is clamped to the range size and at
    most 64; worker 0 runs on the calling domain.  [schedule] (default
    {!Dynamic}) picks how indices are assigned to workers; the results,
    counters and trace content are bit-identical either way.

    With [workers <= 1] this degenerates to a sequential map over [ctx]
    itself — no fork, no atomics, no per-item timing — so a serial run
    pays strictly zero scheduling overhead (and, when [on_stats] is
    given, one clock pair for the whole map).

    After the join, every worker's cache/fault telemetry is absorbed into
    [ctx]; per-item trace events and counters are absorbed in index
    order, so the merged trace is identical to the serial run's.
    [on_stats] (if given) then receives the per-worker item/steal/busy
    accounting — timing-dependent numbers, deliberately outside the
    deterministic result. *)
