let available_workers () = Domain.recommended_domain_count ()

let max_workers = 64

type schedule = Static | Dynamic

let schedule_name = function Static -> "static" | Dynamic -> "dynamic"

let schedule_of_string = function
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | _ -> None

type worker_stat = {
  ws_items : int;
  ws_steals : int;
  ws_busy_s : float;
}

type run_stats = {
  rs_schedule : schedule;
  rs_workers : int;
  rs_wall_s : float;
  rs_worker : worker_stat array;
}

let utilization stats =
  Array.map
    (fun w ->
      if stats.rs_wall_s <= 0.0 then 1.0
      else Float.min 1.0 (w.ws_busy_s /. stats.rs_wall_s))
    stats.rs_worker

(* The parallel path.  Results land in slot [i - first] no matter which
   domain computed them, so the caller's sequential merge replays index
   order exactly — the merge-by-index contract is schedule-independent.

   Trace determinism: when the parent recorder is live, each item runs
   against a per-item [Obs] fork (sharing the worker's caches and fault
   plan through [Eval_ctx.with_obs]) and the item recorders are absorbed
   into the parent in index order after the join.  Which worker evaluated
   an item is timing-dependent under [Dynamic], but the merged trace
   content never is. *)
let run_parallel ~schedule ~on_stats ~workers ~ctx ~first ~limit ~total f =
  (* Per-worker setup is hoisted out of the item loop: one context fork
     (caches, fault plan, recorder) per domain for the whole run. *)
  let worker_ctxs = Array.init workers (fun _ -> Eval_ctx.fork ctx) in
  let parent_obs = Eval_ctx.obs ctx in
  let obs_enabled = Obs.enabled parent_obs in
  let results = Array.make total None in
  let item_obs = if obs_enabled then Array.make total None else [||] in
  let items = Array.make workers 0 in
  let steals = Array.make workers 0 in
  let busy = Array.make workers 0.0 in
  let chunk = (total + workers - 1) / workers in
  let eval d wctx i =
    let t0 = Obs_clock.wall () in
    let v =
      if obs_enabled then begin
        let iobs = Obs.fork (Eval_ctx.obs wctx) in
        let r = f (Eval_ctx.with_obs wctx iobs) i in
        item_obs.(i - first) <- Some iobs;
        r
      end
      else f wctx i
    in
    results.(i - first) <- Some v;
    items.(d) <- items.(d) + 1;
    (* A steal = an item outside the worker's static fair-share chunk:
       the work the dynamic scheduler moved to keep this domain busy. *)
    let off = i - first in
    if off < d * chunk || off >= (d + 1) * chunk then
      steals.(d) <- steals.(d) + 1;
    busy.(d) <- busy.(d) +. (Obs_clock.wall () -. t0)
  in
  let next = Atomic.make first in
  let run d =
    let wctx = worker_ctxs.(d) in
    match schedule with
    | Static ->
        let lo = first + (d * chunk) in
        let hi = min limit (lo + chunk) in
        for i = lo to hi - 1 do
          eval d wctx i
        done
    | Dynamic ->
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i < limit then eval d wctx i else continue := false
        done
  in
  let t0 = Obs_clock.wall () in
  let domains =
    Array.init (workers - 1) (fun d -> Domain.spawn (fun () -> run (d + 1)))
  in
  let head_exn = (try run 0; None with e -> Some e) in
  let tail_exn =
    Array.fold_left
      (fun acc d -> try Domain.join d; acc with e -> if acc = None then Some e else acc)
      None domains
  in
  (match head_exn, tail_exn with Some e, _ | None, Some e -> raise e | None, None -> ());
  let wall = Obs_clock.wall () -. t0 in
  (* Deterministic merge: per-item telemetry in index order first, then
     each worker's cache/fault accounting in worker order. *)
  if obs_enabled then
    Array.iter
      (function Some o -> Obs.absorb parent_obs o | None -> ())
      item_obs;
  Array.iter (fun w -> Eval_ctx.absorb ctx w) worker_ctxs;
  (match on_stats with
  | None -> ()
  | Some k ->
      k
        { rs_schedule = schedule;
          rs_workers = workers;
          rs_wall_s = wall;
          rs_worker =
            Array.init workers (fun d ->
                { ws_items = items.(d); ws_steals = steals.(d); ws_busy_s = busy.(d) }) });
  Array.map (function Some v -> v | None -> assert false) results

let map_range ?(schedule = Dynamic) ?on_stats ~workers ~ctx ~first ~limit f =
  let total = max 0 (limit - first) in
  if total = 0 then begin
    (match on_stats with
    | None -> ()
    | Some k ->
        k { rs_schedule = schedule; rs_workers = 0; rs_wall_s = 0.0; rs_worker = [||] });
    [||]
  end
  else
    let workers = max 1 (min (min workers total) max_workers) in
    match workers, on_stats with
    | 1, None ->
        (* Scheduling-overhead guard: one worker is the plain sequential
           map over [ctx] itself — no fork, no atomics, no timing. *)
        Array.init total (fun i -> f ctx (first + i))
    | 1, Some k ->
        let t0 = Obs_clock.wall () in
        let out = Array.init total (fun i -> f ctx (first + i)) in
        let wall = Obs_clock.wall () -. t0 in
        k
          { rs_schedule = schedule;
            rs_workers = 1;
            rs_wall_s = wall;
            rs_worker = [| { ws_items = total; ws_steals = 0; ws_busy_s = wall } |] };
        out
    | _ -> run_parallel ~schedule ~on_stats ~workers ~ctx ~first ~limit ~total f
