let available_workers () = Domain.recommended_domain_count ()

let max_workers = 64

let map_range ~workers ~ctx ~first ~limit f =
  let total = max 0 (limit - first) in
  if total = 0 then [||]
  else
    let workers = max 1 (min (min workers total) max_workers) in
    if workers = 1 then Array.init total (fun i -> f ctx (first + i))
    else begin
      let chunk = (total + workers - 1) / workers in
      let worker_ctxs = Array.init workers (fun _ -> Eval_ctx.fork ctx) in
      let run d =
        let lo = first + (d * chunk) in
        let hi = min limit (lo + chunk) in
        Array.init (max 0 (hi - lo)) (fun i -> f worker_ctxs.(d) (lo + i))
      in
      let domains =
        Array.init (workers - 1) (fun d -> Domain.spawn (fun () -> run (d + 1)))
      in
      let head = run 0 in
      let tails = Array.map Domain.join domains in
      Array.iter (fun w -> Eval_ctx.absorb ctx w) worker_ctxs;
      Array.concat (head :: Array.to_list tails)
    end
