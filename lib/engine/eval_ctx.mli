(** The explicit evaluation context.

    Everything candidate evaluation used to keep in module-level mutable
    state lives here instead: the bounded workload-cost memo (formerly a
    global in [Pipeline]), the Fisher-score memo (formerly the per-search
    [fo_cache] in [Unified_search]), the target device, autotuner
    accounting, and the supervisor/fault/checkpoint knobs.  Because a
    context owns all of that, evaluation is reentrant: two contexts never
    observe each other's cache hits, and a worker pool can evaluate
    candidate chunks against per-domain forks of one parent context.

    Legacy entry points (e.g. [Pipeline.evaluate dev model ~plans] without
    a [?ctx]) route through the process-wide {!default} context, so
    existing callers keep their exact behavior. *)

type t

val create :
  ?cache_capacity:int ->
  ?fisher_capacity:int ->
  ?fault:Fault.t ->
  ?budget:int ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?device:Device.t ->
  ?obs:Obs.t ->
  unit ->
  t
(** A fresh context.  [cache_capacity] bounds the workload-cost memo
    (default 8192) and [fisher_capacity] the Fisher-score memo (default
    4096); both evict FIFO.  [fault] (default {!Fault.none}), [budget],
    [checkpoint] and [checkpoint_every] (default 25) are the evaluation
    knobs a search resolves when no explicit argument overrides them.
    [device] (default {!Device.i7}) is the target the context evaluates
    against.  [obs] (default {!Obs.disabled}) is the observability
    recorder every evaluation through this context reports to. *)

val default : unit -> t
(** The process-wide default context backing the legacy wrappers.  Created
    lazily on first use; shared by every caller that does not pass its own
    context. *)

val with_device : t -> Device.t -> t
(** The same context (sharing caches, counters and knobs) retargeted at
    another device.  Safe because every memo key embeds the device name. *)

val with_obs : t -> Obs.t -> t
(** The same context (sharing caches, the fault plan and the autotuner
    counter) reporting to a different observability recorder.  This is
    how the parallel evaluator gives each item its own trace buffer while
    keeping the worker's memo caches warm across items. *)

val with_knobs :
  ?fault:Fault.t ->
  ?budget:int ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  t ->
  t
(** Override the evaluation knobs that are given, keep the rest (caches
    stay shared with the original). *)

val fork : t -> t
(** A per-domain worker context: same device, capacities and knobs, fresh
    empty caches and counters, an independent copy of the fault plan
    (fault draws are pure in (seed, key, target), so a fork trips exactly
    the faults the parent would), and a forked observability recorder
    whose spans open at the parent's current depth.  Use {!absorb} after
    joining to fold the worker's telemetry back into the parent. *)

val absorb : t -> t -> unit
(** [absorb parent worker] adds the worker's cache hit/miss/eviction
    counters, autotuner accounting and injected-fault count into the
    parent's, and merges the worker's observability recorder (metrics
    added, trace events appended after the parent's). *)

val warm_from : t -> src:t -> int
(** Copy [src]'s cached cost and Fisher entries into this context's memos
    (existing keys win; FIFO eviction applies); returns the number of
    entries inserted.  Entries are deterministic functions of their keys,
    so warming a context can only add hits, never change a result — this
    is how daemon sessions start hot from the shared parent context. *)

val absorb_full : t -> t -> unit
(** {!absorb} plus {!warm_from}: fold the worker's telemetry {e and} its
    freshly computed cache entries back into the parent, so the next
    session forked from the parent reuses them (cross-session cache
    sharing). *)

val save_caches : path:string -> t -> (unit, Nas_error.t) result
(** Persist both memo caches through the atomic {!Checkpoint} writer (a
    kill mid-save leaves the previous snapshot intact).  Failures come
    back as {!Nas_error.Checkpoint_error}. *)

val load_caches : path:string -> t -> (int, Nas_error.t) result
(** Merge a snapshot written by {!save_caches} into this context's memos
    and return the number of entries restored.  A missing, truncated,
    corrupt or foreign file is a structured {!Nas_error.Checkpoint_error}
    — the caller logs it and cold-starts; it never crashes. *)

val reset : t -> unit
(** Clear both memo caches and the autotuner counter. *)

(* --- accessors --------------------------------------------------------- *)

val device : t -> Device.t
(** The target device this context evaluates against. *)

val obs : t -> Obs.t
(** The context's observability recorder ({!Obs.disabled} unless one was
    passed to {!create}). *)

val fault : t -> Fault.t
(** The fault-injection plan ({!Fault.none} by default). *)

val budget : t -> int option
(** The default evaluation budget, if any. *)

val checkpoint : t -> string option
(** The default checkpoint path, if any. *)

val checkpoint_every : t -> int
(** Candidates between checkpoint snapshots. *)

val cost_cache : t -> float Bounded_cache.t
(** The workload-cost memo: key = device|workload-dims|schedule-hints. *)

val fisher_cache : t -> Fisher.scores Bounded_cache.t
(** The Fisher-score memo: key = rebuild-seed|plan-signature. *)

val cost_stats : t -> Bounded_cache.stats
(** Hit/miss/eviction snapshot of the workload-cost memo. *)

val fisher_stats : t -> Bounded_cache.stats
(** Hit/miss/eviction snapshot of the Fisher-score memo. *)

val note_tune : t -> int -> unit
(** Record that an autotuner sweep tried this many configurations (called
    by the pipeline on every workload-cost miss, for §7.2 accounting). *)

val tune_configs : t -> int
(** Autotuner configurations swept through this context so far. *)
