(** A string-keyed memo table with a FIFO eviction bound and hit/miss/
    eviction counters.

    Both evaluation memos (the workload-cost cache and the Fisher-score
    cache) are instances of this structure, owned by an {!Eval_ctx.t}
    rather than by any module, so two contexts never share state and a
    long search cannot grow a memo without limit.  Values must be
    recomputable: eviction is value-transparent because every entry is a
    deterministic function of its key. *)

type 'a t

type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_size : int;
  cs_capacity : int;
  cs_evictions : int;
}

val create : ?capacity:int -> unit -> 'a t
(** Fresh cache bounded to [capacity] entries (default 8192, clamped to at
    least 1), evicting oldest-inserted first. *)

val remember : 'a t -> string -> (unit -> 'a) -> 'a
(** [remember t key f] returns the cached value for [key], or computes
    [f ()], caches it and returns it.  An exception raised by [f] counts
    as a miss and caches nothing. *)

val find_opt : 'a t -> string -> 'a option
(** Lookup without touching the hit/miss counters. *)

val clear : 'a t -> unit
(** Drop every entry and reset the counters (capacity unchanged). *)

val set_capacity : 'a t -> int -> unit
(** Rebound the cache (clamped to at least 1), evicting FIFO down to the
    new bound immediately. *)

val capacity : 'a t -> int
(** Current entry bound. *)

val stats : 'a t -> stats
(** Snapshot of the hit/miss/eviction counters and current size — the
    source for the [cache.*] observability counters. *)

val absorb : 'a t -> stats -> unit
(** Fold another cache's hit/miss/eviction counters into this one's (size
    and capacity are untouched) — used to aggregate per-worker cache
    telemetry into the parent context after a parallel evaluation. *)

val entries : 'a t -> (string * 'a) list
(** Every cached binding in FIFO insertion order (oldest first) — the
    exportable content of the memo, for cross-session sharing and
    persistence.  Safe because entries are deterministic functions of
    their keys. *)

val merge_entries : 'a t -> (string * 'a) list -> int
(** Insert the bindings whose keys are absent (present keys win — both
    sides computed the same value), evicting FIFO to stay within
    capacity; returns the number inserted.  Counters are untouched: a
    merged entry is neither a hit nor a miss. *)
