type 'a t = {
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;
  mutable capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_size : int;
  cs_capacity : int;
  cs_evictions : int;
}

let create ?(capacity = 8192) () =
  { table = Hashtbl.create 1024;
    order = Queue.create ();
    capacity = max 1 capacity;
    hits = 0;
    misses = 0;
    evictions = 0 }

let evict_to t cap =
  while Hashtbl.length t.table >= cap && not (Queue.is_empty t.order) do
    Hashtbl.remove t.table (Queue.pop t.order);
    t.evictions <- t.evictions + 1
  done

let remember t key f =
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      let v = f () in
      evict_to t t.capacity;
      Hashtbl.replace t.table key v;
      Queue.push key t.order;
      v

let find_opt t key = Hashtbl.find_opt t.table key

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let set_capacity t n =
  t.capacity <- max 1 n;
  evict_to t (t.capacity + 1)

let capacity t = t.capacity

let stats t =
  { cs_hits = t.hits;
    cs_misses = t.misses;
    cs_size = Hashtbl.length t.table;
    cs_capacity = t.capacity;
    cs_evictions = t.evictions }

let absorb t (s : stats) =
  t.hits <- t.hits + s.cs_hits;
  t.misses <- t.misses + s.cs_misses;
  t.evictions <- t.evictions + s.cs_evictions

let entries t =
  Queue.fold
    (fun acc key ->
      match Hashtbl.find_opt t.table key with
      | Some v -> (key, v) :: acc
      | None -> acc)
    [] t.order
  |> List.rev

let merge_entries t kvs =
  List.fold_left
    (fun inserted (key, v) ->
      if Hashtbl.mem t.table key then inserted
      else begin
        evict_to t t.capacity;
        Hashtbl.replace t.table key v;
        Queue.push key t.order;
        inserted + 1
      end)
    0 kvs
