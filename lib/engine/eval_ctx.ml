type t = {
  ec_device : Device.t;
  ec_cost_cache : float Bounded_cache.t;
  ec_fisher_cache : Fisher.scores Bounded_cache.t;
  ec_fault : Fault.t;
  ec_budget : int option;
  ec_checkpoint : string option;
  ec_checkpoint_every : int;
  ec_obs : Obs.t;
  (* A shared ref, not a mutable field: derived views ([with_device],
     [with_knobs], [with_obs]) are record copies that must keep feeding
     the same accumulator. *)
  ec_tune_configs : int ref;
}

let create ?(cache_capacity = 8192) ?(fisher_capacity = 4096) ?(fault = Fault.none)
    ?budget ?checkpoint ?(checkpoint_every = 25) ?(device = Device.i7)
    ?(obs = Obs.disabled) () =
  { ec_device = device;
    ec_cost_cache = Bounded_cache.create ~capacity:cache_capacity ();
    ec_fisher_cache = Bounded_cache.create ~capacity:fisher_capacity ();
    ec_fault = fault;
    ec_budget = budget;
    ec_checkpoint = checkpoint;
    ec_checkpoint_every = checkpoint_every;
    ec_obs = obs;
    ec_tune_configs = ref 0 }

(* The one piece of module-level mutable state left in the system: the
   context behind the legacy (context-free) wrappers.  Workers never touch
   it — parallel evaluation always runs on explicit forks. *)
let default_ctx : t option ref = ref None

let default () =
  match !default_ctx with
  | Some c -> c
  | None ->
      let c = create () in
      default_ctx := Some c;
      c

let with_device t device = { t with ec_device = device }

let with_obs t obs = { t with ec_obs = obs }

let with_knobs ?fault ?budget ?checkpoint ?checkpoint_every t =
  { t with
    ec_fault = (match fault with Some f -> f | None -> t.ec_fault);
    ec_budget = (match budget with Some _ -> budget | None -> t.ec_budget);
    ec_checkpoint =
      (match checkpoint with Some _ -> checkpoint | None -> t.ec_checkpoint);
    ec_checkpoint_every =
      (match checkpoint_every with Some n -> n | None -> t.ec_checkpoint_every) }

let fork t =
  { ec_device = t.ec_device;
    ec_cost_cache = Bounded_cache.create ~capacity:(Bounded_cache.capacity t.ec_cost_cache) ();
    ec_fisher_cache =
      Bounded_cache.create ~capacity:(Bounded_cache.capacity t.ec_fisher_cache) ();
    ec_fault = Fault.copy t.ec_fault;
    ec_budget = t.ec_budget;
    ec_checkpoint = t.ec_checkpoint;
    ec_checkpoint_every = t.ec_checkpoint_every;
    ec_obs = Obs.fork t.ec_obs;
    ec_tune_configs = ref 0 }

let absorb parent worker =
  Bounded_cache.absorb parent.ec_cost_cache (Bounded_cache.stats worker.ec_cost_cache);
  Bounded_cache.absorb parent.ec_fisher_cache
    (Bounded_cache.stats worker.ec_fisher_cache);
  parent.ec_tune_configs := !(parent.ec_tune_configs) + !(worker.ec_tune_configs);
  Fault.add_injected parent.ec_fault (Fault.injected worker.ec_fault);
  Obs.absorb parent.ec_obs worker.ec_obs

let warm_from t ~src =
  Bounded_cache.merge_entries t.ec_cost_cache (Bounded_cache.entries src.ec_cost_cache)
  + Bounded_cache.merge_entries t.ec_fisher_cache
      (Bounded_cache.entries src.ec_fisher_cache)

let absorb_full parent worker =
  absorb parent worker;
  ignore (warm_from parent ~src:worker)

(* --- crash-safe cache persistence -------------------------------------- *)

(* The snapshot rides the atomic Checkpoint writer, so a kill mid-save
   leaves the previous snapshot intact.  [cs_schema] is the compatibility
   key: it is the first field, so a foreign checkpoint (e.g. a search
   snapshot, whose first field is also a string) is recognized and refused
   before any other field is touched. *)
type cache_snapshot = {
  cs_schema : string;
  cs_cost : (string * float) list;
  cs_fisher : (string * Fisher.scores) list;
}

let cache_schema = "nas-pte-shared-caches-v1"

let save_caches ~path t =
  Checkpoint.save ~path
    { cs_schema = cache_schema;
      cs_cost = Bounded_cache.entries t.ec_cost_cache;
      cs_fisher = Bounded_cache.entries t.ec_fisher_cache }

let load_caches ~path t =
  match Checkpoint.load ~path with
  | Error e -> Error e
  | Ok (sn : cache_snapshot) ->
      if sn.cs_schema <> cache_schema then
        Error
          (Nas_error.Checkpoint_error
             (Printf.sprintf "load %s: foreign cache snapshot" path))
      else
        Ok
          (Bounded_cache.merge_entries t.ec_cost_cache sn.cs_cost
          + Bounded_cache.merge_entries t.ec_fisher_cache sn.cs_fisher)

let reset t =
  Bounded_cache.clear t.ec_cost_cache;
  Bounded_cache.clear t.ec_fisher_cache;
  t.ec_tune_configs := 0

let device t = t.ec_device
let obs t = t.ec_obs
let fault t = t.ec_fault
let budget t = t.ec_budget
let checkpoint t = t.ec_checkpoint
let checkpoint_every t = t.ec_checkpoint_every
let cost_cache t = t.ec_cost_cache
let fisher_cache t = t.ec_fisher_cache
let cost_stats t = Bounded_cache.stats t.ec_cost_cache
let fisher_stats t = Bounded_cache.stats t.ec_fisher_cache

let note_tune t n = t.ec_tune_configs := !(t.ec_tune_configs) + n
let tune_configs t = !(t.ec_tune_configs)
