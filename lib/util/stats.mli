(** Small statistics toolbox used by the experiment harnesses. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Population variance; 0 for arrays shorter than 2. *)

val std : float array -> float
(** Population standard deviation. *)

val stderr_of_mean : float array -> float
(** Standard error of the mean (std / sqrt n). *)

val median : float array -> float
(** Median (does not mutate the input). *)

val percentile : float array -> float -> float
(** [percentile xs p] for p in [0,100], linear interpolation. *)

val min : float array -> float
(** Smallest element; raises on the empty array. *)

val max : float array -> float
(** Largest element; raises on the empty array. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length arrays. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation coefficient. *)

val argmax : float array -> int
(** Index of the maximum element (first on ties). *)

val argmin : float array -> int
(** Index of the minimum element (first on ties). *)

val geomean : float array -> float
(** Geometric mean of positive values. *)

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
(** Fixed-width histogram; values outside [lo,hi] are clamped to end bins. *)
