type dependence = {
  distance : (string * int) list;
  dep_label : string;
}

let reduction_dependences iters =
  List.map
    (fun it -> { distance = [ (it, 1) ]; dep_label = "reduction over " ^ it })
    iters

(* A reference to one digit occurrence: loop index, digit index within the
   loop, and the digit itself. *)
let digit_refs (t : Poly.t) =
  List.concat
    (List.mapi
       (fun li (l : Poly.loop) ->
         List.mapi (fun di d -> (li, di, d)) l.Poly.digits)
       t.Poly.loops)

let encode t point =
  let refs = digit_refs t in
  let value name =
    match List.assoc_opt name point with
    | Some v -> v
    | None -> Nas_error.shape_mismatch "encode: missing iterator %s" name
  in
  (* dv.(li).(di) = decoded digit value, or -1 if not yet assigned. *)
  let loops = Array.of_list t.Poly.loops in
  let dv = Array.map (fun (l : Poly.loop) -> Array.make (List.length l.digits) (-1)) loops in
  let consistent = ref true in
  List.iter
    (fun (name, _extent) ->
      if !consistent then begin
        (* Digits of this iterator, most significant first. *)
        let mine =
          List.filter_map
            (fun (li, di, (d : Poly.digit)) ->
              match List.find_opt (fun c -> c.Poly.src = name) d.contribs with
              | Some c -> Some (li, di, d, c.Poly.weight)
              | None -> None)
            refs
          |> List.sort (fun (_, _, _, w1) (_, _, _, w2) -> compare w2 w1)
        in
        let remaining = ref (value name) in
        List.iter
          (fun (li, di, (d : Poly.digit), w) ->
            if !consistent then begin
              if d.extent = 1 then
                (* Degenerate digit: its value is always 0 and it must not
                   absorb weight that belongs to an equal-weight live digit. *)
                (if dv.(li).(di) < 0 then dv.(li).(di) <- 0)
              else begin
              let assigned = dv.(li).(di) in
              if assigned >= 0 then begin
                (* Shared (group) digit: its value must agree. *)
                if !remaining / w <> assigned then consistent := false
                else remaining := !remaining - (assigned * w)
              end
              else begin
                let v = !remaining / w in
                if v >= d.extent then consistent := false
                else begin
                  dv.(li).(di) <- v;
                  remaining := !remaining - (v * w)
                end
              end
              end
            end)
          mine;
        if !remaining <> 0 then consistent := false
      end)
    t.Poly.domain;
  if not !consistent then None
  else begin
    (* Compose each loop's digit values mixed-radix. *)
    let values =
      Array.mapi
        (fun li (l : Poly.loop) ->
          let v = ref 0 in
          List.iteri
            (fun di (d : Poly.digit) ->
              let x = dv.(li).(di) in
              let x = if x < 0 then 0 else x in
              v := (!v * d.extent) + x)
            l.digits;
          !v)
        loops
    in
    Some values
  end

let lex_compare a b =
  let n = Array.length a in
  let rec go i = if i = n then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i + 1) in
  go 0

(* Candidate values for an iterator: boundaries of the whole range, plus +-1
   around every digit-weight multiple boundary reachable in the range.
   Splits only change execution order at strip boundaries, so these points
   witness every possible violation for constant-distance dependences. *)
let candidate_values t name extent =
  let weights =
    List.concat_map
      (fun (_, _, (d : Poly.digit)) ->
        List.filter_map
          (fun c -> if c.Poly.src = name then Some c.Poly.weight else None)
          d.contribs)
      (digit_refs t)
  in
  let base = [ 0; 1; extent - 2; extent - 1 ] in
  let around =
    List.concat_map
      (fun w -> if w <= 1 then [] else [ w - 2; w - 1; w; w + 1; (2 * w) - 1; 2 * w ])
      weights
  in
  List.sort_uniq compare
    (List.filter (fun v -> v >= 0 && v < extent) (base @ around))

let enumerate_points t max_points =
  let extents = List.map snd t.Poly.domain in
  let total = List.fold_left ( * ) 1 extents in
  let names = List.map fst t.Poly.domain in
  if total <= max_points then begin
    (* Exhaustive enumeration. *)
    let acc = ref [] in
    let rec go prefix = function
      | [] -> acc := List.rev prefix :: !acc
      | (name, extent) :: rest ->
          for v = 0 to extent - 1 do
            go ((name, v) :: prefix) rest
          done
    in
    go [] t.Poly.domain;
    ignore names;
    !acc
  end
  else begin
    let candidates =
      List.map (fun (name, extent) -> (name, candidate_values t name extent)) t.Poly.domain
    in
    let acc = ref [] in
    let rec go prefix = function
      | [] -> acc := List.rev prefix :: !acc
      | (name, values) :: rest ->
          List.iter (fun v -> go ((name, v) :: prefix) rest) values
    in
    go [] candidates;
    !acc
  end

let violations ?(max_points = 65536) t deps =
  let points = enumerate_points t max_points in
  let bad = ref [] in
  List.iter
    (fun point ->
      match encode t point with
      | None -> ()
      | Some time ->
          List.iter
            (fun dep ->
              let shifted =
                List.map
                  (fun (name, v) ->
                    match List.assoc_opt name dep.distance with
                    | Some d -> (name, v + d)
                    | None -> (name, v))
                  point
              in
              let in_domain =
                List.for_all
                  (fun (name, v) -> v >= 0 && v < Poly.iter_extent t name)
                  shifted
              in
              if in_domain then
                match encode t shifted with
                | None -> ()
                | Some time' ->
                    if lex_compare time time' >= 0 then
                      bad := (point, dep.dep_label) :: !bad)
            deps)
    points;
  List.rev !bad

let check ?max_points t deps = violations ?max_points t deps = []
