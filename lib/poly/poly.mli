(** A compact polyhedral schedule representation for constant-bound loop
    nests (§4 of the paper).

    The {b domain} is a list of named iterators with constant extents.  The
    {b schedule} is an ordered list of loops; each loop enumerates one or
    more {e digits}.  A digit carries contributions [(iterator, weight)]: the
    value of a domain iterator is the weighted sum of its digits' values.
    This mixed-radix view expresses the classical transformations exactly:

    - {e interchange / reorder} permute loops;
    - {e split (strip-mine)} replaces a digit of weight [w] and extent [n]
      with an outer digit of weight [w*f] (extent [n/f]) and an inner digit
      of weight [w] (extent [f]);
    - {e fuse} concatenates the digit lists of two adjacent loops;
    - {e tile} is split followed by interchange;
    - {e unroll / vectorize / GPU binding} are per-loop annotations.

    The paper's neural transformations extend the same algebra:

    - {e bottleneck} shrinks the extent of an iterator's leading digit
      (a domain restriction, §5.1);
    - {e group} tiles two iterators by a common factor [G] and keeps a
      single shared slice digit contributing to both (§5.1), which is why a
      [contrib] list can mention two iterators;
    - {e depthwise} is grouping with [G = C_o = C_i].

    Neural transformations are flagged in [neural_log]: they do not preserve
    program semantics and their legality is delegated to the Fisher
    Potential check. *)

type gpu_bind = Block_x | Block_y | Thread_x | Thread_y | Vthread

val gpu_bind_to_string : gpu_bind -> string
(** CUDA-style spelling of a binding target ("blockIdx.x", "vthread", ...). *)

type contrib = {
  src : string;  (** domain iterator *)
  weight : int;
}

type digit = {
  contribs : contrib list;
  extent : int;
}

type loop = {
  digits : digit list;  (** outermost digit first (mixed radix) *)
  unroll : int;  (** 1 = no unrolling *)
  vectorized : bool;
  prefetched : bool;  (** software-prefetch annotation (Table 1) *)
  parallelized : bool;  (** explicit CPU-thread parallel annotation *)
  bind : gpu_bind option;
}

type neural_op =
  | N_bottleneck of { iter : string; factor : int }
  | N_group of { factor : int }
  | N_depthwise of { factor : int }

type t = {
  domain : (string * int) list;
      (** iterator extents after neural transformations *)
  loops : loop list;  (** outermost first *)
  neural_log : neural_op list;  (** applied neural transformations, in order *)
}

exception Illegal of string
(** Raised when a transformation's side conditions fail (divisibility,
    fused-loop splitting, unknown iterator...). *)

val of_domain : (string * int) list -> t
(** Identity schedule: one single-digit loop per iterator, in domain order. *)

val loop_count : t -> int
val loop_extent : loop -> int
(** Product of the digit extents. *)

val points : t -> int
(** Total number of statement instances the schedule enumerates. *)

val iter_extent : t -> string -> int

(** {2 Classical (semantics-preserving) transformations} *)

val interchange : t -> int -> int -> t
(** Swap the loops at two positions. *)

val reorder : t -> int array -> t
(** Apply a permutation to the loop list. *)

val split : t -> pos:int -> factor:int -> t
(** Strip-mine the single-digit loop at [pos]; the factor must divide its
    extent.  The new outer loop stays at [pos], the inner at [pos+1]. *)

val fuse : t -> pos:int -> t
(** Fuse the loops at [pos] and [pos+1] into one. *)

val tile : t -> pos:int -> factor:int -> t
(** Split at [pos] and sink the inner loop to the innermost position. *)

val unroll : t -> pos:int -> factor:int -> t
(** Annotate the loop at [pos] with an unroll factor (the factor must
    divide its extent). *)

val vectorize : t -> pos:int -> t
(** Mark the loop at [pos] for SIMD execution. *)

val prefetch : t -> pos:int -> t
(** Annotates the loop with software prefetching of its streamed operands
    (Table 1's [prefetch] primitive); rewarded by the cost model with a
    higher effective-bandwidth fraction. *)

val parallelize : t -> pos:int -> t
(** Marks the loop as explicitly multi-threaded; the cost model treats it
    as the head of the parallel prefix regardless of position. *)

val bind : t -> pos:int -> gpu_bind -> t

(** {2 Neural (capacity-preserving) transformations} *)

val bottleneck : t -> iter:string -> factor:int -> t
(** Shrink iterator [iter] by [factor] (must divide the leading digit's
    extent). *)

val group : t -> co:string -> ci:string -> factor:int -> t
(** Joint tiling of [co] and [ci] by [factor] keeping the shared slice
    digit.  Both iterators must currently be whole (un-split) loops. *)

val depthwise : t -> co:string -> ci:string -> t
(** Grouping with [G = extent co = extent ci]; requires equal extents. *)

val is_semantics_preserving : t -> bool
(** True iff no neural transformation has been applied. *)

(** {2 Decoding} *)

val decode : t -> int array -> (string * int) list
(** [decode t loop_values] maps one point of the loop space (one value per
    loop, outermost first) to domain-iterator values. *)

val loop_names : t -> string array
(** Synthesized printable names, e.g. ["co.o"; "co.i"; "g"]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable schedule, in a TVM-like notation. *)
