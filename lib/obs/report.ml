type phase = {
  ph_name : string;
  ph_count : int;
  ph_total_s : float;
  ph_mean_s : float;
}

type t = {
  rp_generated : int;
  rp_static_checked : int;
  rp_static_rejected : int;
  rp_fisher_rejected : int;
  rp_quarantined : int;
  rp_cost_ranked : int;
  rp_rejection_fraction : float;
  rp_paper_fraction : float;
  rp_phases : phase list;
  rp_wall_s : float;
  rp_counters : (string * int) list;
}

let paper_rejection_fraction = 0.90

let span_prefix = "span."

let of_metrics ?(wall_s = 0.0) m =
  let generated = Metrics.counter m "search.generated" in
  let fisher_rejected = Metrics.counter m "search.fisher_rejected" in
  let phases =
    List.filter_map
      (fun (name, (h : Metrics.histogram)) ->
        if String.length name > String.length span_prefix
           && String.sub name 0 (String.length span_prefix) = span_prefix
        then
          Some
            { ph_name =
                String.sub name (String.length span_prefix)
                  (String.length name - String.length span_prefix);
              ph_count = h.Metrics.h_count;
              ph_total_s = h.h_sum_s;
              ph_mean_s = (if h.h_count = 0 then 0.0 else h.h_sum_s /. float_of_int h.h_count) }
        else None)
      (Metrics.histograms m)
  in
  (* Most interesting phase first: order by total time spent. *)
  let phases =
    List.sort (fun a b -> compare (b.ph_total_s, b.ph_name) (a.ph_total_s, a.ph_name)) phases
  in
  { rp_generated = generated;
    rp_static_checked = Metrics.counter m "analysis.static_checked";
    rp_static_rejected = Metrics.counter m "analysis.static_reject";
    rp_fisher_rejected = fisher_rejected;
    rp_quarantined = Metrics.counter m "search.quarantined";
    rp_cost_ranked = Metrics.counter m "search.cost_ranked";
    rp_rejection_fraction =
      (if generated = 0 then 0.0
       else float_of_int fisher_rejected /. float_of_int generated);
    rp_paper_fraction = paper_rejection_fraction;
    rp_phases = phases;
    rp_wall_s = wall_s;
    rp_counters = Metrics.counters m }

let pp ppf r =
  Format.fprintf ppf "observability report@.";
  Format.fprintf ppf
    "  candidates: %d generated, %d fisher-rejected, %d quarantined, %d cost-ranked@."
    r.rp_generated r.rp_fisher_rejected r.rp_quarantined r.rp_cost_ranked;
  Format.fprintf ppf
    "  rejected for free by Fisher: %.1f%%  (paper claims ~%.0f%%)@."
    (100.0 *. r.rp_rejection_fraction)
    (100.0 *. r.rp_paper_fraction);
  if r.rp_static_checked > 0 then
    Format.fprintf ppf
      "  rejection split: %d static (pre-Fisher, of %d checked), %d Fisher@."
      r.rp_static_rejected r.rp_static_checked r.rp_fisher_rejected;
  if r.rp_phases <> [] then begin
    Format.fprintf ppf "  phase breakdown:@.";
    List.iter
      (fun p ->
        Format.fprintf ppf "    %-12s %6d spans  %10.4fs total  %10.6fs mean@."
          p.ph_name p.ph_count p.ph_total_s p.ph_mean_s)
      r.rp_phases
  end;
  if r.rp_wall_s > 0.0 then Format.fprintf ppf "  wall: %.3fs@." r.rp_wall_s;
  Format.fprintf ppf "  counters:@.";
  List.iter (fun (k, n) -> Format.fprintf ppf "    %-28s %d@." k n) r.rp_counters

let to_json r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"generated\":%d,\"static_checked\":%d,\"static_rejected\":%d,\"fisher_rejected\":%d,\"quarantined\":%d,\"cost_ranked\":%d"
    r.rp_generated r.rp_static_checked r.rp_static_rejected r.rp_fisher_rejected
    r.rp_quarantined r.rp_cost_ranked;
  Printf.bprintf b ",\"rejection_fraction\":%s"
    (Obs_event.json_float r.rp_rejection_fraction);
  Printf.bprintf b ",\"paper_rejection_fraction\":%s"
    (Obs_event.json_float r.rp_paper_fraction);
  Printf.bprintf b ",\"wall_s\":%s" (Obs_event.json_float r.rp_wall_s);
  Buffer.add_string b ",\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"name\":%s,\"count\":%d,\"total_s\":%s,\"mean_s\":%s}"
        (Obs_event.json_string p.ph_name)
        p.ph_count
        (Obs_event.json_float p.ph_total_s)
        (Obs_event.json_float p.ph_mean_s))
    r.rp_phases;
  Buffer.add_string b "],\"counters\":{";
  List.iteri
    (fun i (k, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%s:%d" (Obs_event.json_string k) n)
    r.rp_counters;
  Buffer.add_string b "}}";
  Buffer.contents b
