(** Injectable time sources.

    Every timestamp and duration in the observability layer is read
    through one of these, so tests can drive spans with a deterministic
    clock and assert exact durations instead of sleeping. *)

type t = unit -> float
(** A clock: each call returns the current time in seconds.  Only
    differences between readings are meaningful. *)

val wall : t
(** The system clock ([Unix.gettimeofday]).  Readings are not guaranteed
    monotonic across clock adjustments, but span durations are taken from
    paired readings microseconds-to-seconds apart, where it behaves as
    one. *)

val manual : ?start:float -> ?step:float -> unit -> t
(** A deterministic test clock: the first reading is [start] (default 0)
    and every subsequent reading advances by [step] (default 1).  Not
    domain-safe — use one per domain. *)
