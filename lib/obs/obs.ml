type t = {
  ob_enabled : bool;
  ob_clock : Obs_clock.t;
  ob_metrics : Metrics.t;
  ob_sink : Trace_sink.t;
  ob_span : Span.t;
}

let make ?(base_depth = 0) ~enabled ~clock ~sink () =
  let metrics = Metrics.create () in
  { ob_enabled = enabled;
    ob_clock = clock;
    ob_metrics = metrics;
    ob_sink = sink;
    ob_span = Span.create ~base_depth ~clock ~sink ~metrics () }

(* One shared disabled recorder: every operation guards on [ob_enabled],
   so its internals are never mutated and sharing it is safe (including
   across domains). *)
let disabled = make ~enabled:false ~clock:(fun () -> 0.0) ~sink:(Trace_sink.memory ()) ()

let create ?(clock = Obs_clock.wall) ?trace_file () =
  let sink =
    match trace_file with Some p -> Trace_sink.file p | None -> Trace_sink.memory ()
  in
  make ~enabled:true ~clock ~sink ()

let enabled t = t.ob_enabled
let metrics t = t.ob_metrics
let sink t = t.ob_sink
let events t = Trace_sink.events t.ob_sink
let now t = if t.ob_enabled then t.ob_clock () else 0.0
let incr t name = if t.ob_enabled then Metrics.incr t.ob_metrics name
let add t name n = if t.ob_enabled then Metrics.add t.ob_metrics name n
let set t name n = if t.ob_enabled then Metrics.set t.ob_metrics name n
let observe t name v = if t.ob_enabled then Metrics.observe t.ob_metrics name v

let with_span t name f =
  if t.ob_enabled then Span.with_ t.ob_span name f else f ()

let note t ?detail name = if t.ob_enabled then Span.note t.ob_span ?detail name

let fork t =
  if not t.ob_enabled then t
  else
    make ~base_depth:(Span.depth t.ob_span) ~enabled:true ~clock:t.ob_clock
      ~sink:(Trace_sink.memory ()) ()

let absorb t worker =
  if t.ob_enabled && worker.ob_enabled && t != worker then begin
    Metrics.merge t.ob_metrics worker.ob_metrics;
    Trace_sink.append t.ob_sink worker.ob_sink
  end

let close t = if t.ob_enabled then Trace_sink.write t.ob_sink
