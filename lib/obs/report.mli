(** Per-search summary reports.

    Renders the telemetry a traced search accumulated — the Fisher
    rejection fraction next to the paper's ~90% claim, the per-phase time
    breakdown derived from the ["span.*"] histograms, and the full counter
    dump — as text (the CLI's [--metrics] output) and as JSON (embedded in
    [BENCH_search.json]). *)

type phase = {
  ph_name : string;  (** span name, e.g. ["fisher"] *)
  ph_count : int;  (** spans recorded *)
  ph_total_s : float;  (** summed duration *)
  ph_mean_s : float;  (** mean duration per span *)
}
(** One row of the phase-time breakdown. *)

type t = {
  rp_generated : int;  (** candidates generated (["search.generated"]) *)
  rp_static_checked : int;
      (** candidates vetted by the static analyzer (["analysis.static_checked"]) *)
  rp_static_rejected : int;
      (** rejected before Fisher by the static analyzer
          (["analysis.static_reject"]) *)
  rp_fisher_rejected : int;  (** rejected for free by Fisher Potential *)
  rp_quarantined : int;  (** failed and set aside *)
  rp_cost_ranked : int;  (** survivors ranked by the cost model *)
  rp_rejection_fraction : float;  (** fisher_rejected / generated *)
  rp_paper_fraction : float;  (** the paper's claim, {!paper_rejection_fraction} *)
  rp_phases : phase list;  (** sorted by total time, descending *)
  rp_wall_s : float;  (** search wall time (0 when not supplied) *)
  rp_counters : (string * int) list;  (** full counter dump, sorted *)
}
(** A rendered summary. *)

val paper_rejection_fraction : float
(** The paper's headline claim: ~90% of candidates rejected without
    training (§6). *)

val of_metrics : ?wall_s:float -> Metrics.t -> t
(** Build the summary from a recorder's metrics registry (the [search.*]
    counters and [span.*] histograms written by [Unified_search]). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)

val to_json : t -> string
(** The summary as one JSON object. *)
