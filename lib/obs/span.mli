(** Nestable timed spans.

    A span tracker owns a stack of open spans.  Opening a span emits a
    {!Obs_event.Span_begin} at the current depth; closing it emits the
    matching [Span_end] with the measured duration and feeds that duration
    into the ["span.<name>"] histogram of the attached metrics registry —
    which is where the per-phase time breakdown in {!Report} comes from.

    Trackers are single-domain.  A worker fork starts with an empty stack
    but inherits the parent's current depth as [base_depth], so spans
    recorded inside a worker nest at the same depth they would have in a
    sequential run — a precondition for traces being content-identical
    across worker counts. *)

type t
(** A span tracker (clock + sink + metrics + open-span stack). *)

val create :
  ?base_depth:int ->
  clock:Obs_clock.t ->
  sink:Trace_sink.t ->
  metrics:Metrics.t ->
  unit ->
  t
(** A tracker with an empty stack whose first span opens at depth
    [base_depth] (default 0). *)

val depth : t -> int
(** The depth the next span would open at: [base_depth] + open spans. *)

val enter : t -> string -> unit
(** Open a span named [name]. *)

val leave : t -> unit
(** Close the innermost open span (no-op on an empty stack), emitting its
    duration and observing it in the ["span.<name>"] histogram. *)

val with_ : t -> string -> (unit -> 'a) -> 'a
(** [with_ t name f] runs [f] inside a span; the span is closed even when
    [f] raises. *)

val note : t -> ?detail:string -> string -> unit
(** Emit a point event at the current depth. *)
