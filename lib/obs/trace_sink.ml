type t = {
  mutable rev_events : Obs_event.t list;  (* newest first *)
  mutable count : int;
  dest : string option;
}

let memory () = { rev_events = []; count = 0; dest = None }
let file path = { rev_events = []; count = 0; dest = Some path }

let emit t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let length t = t.count
let events t = List.rev t.rev_events
let dest t = t.dest

let append t other =
  (* Keep amortized cost linear in the child's size: the child's events
     (already newest-first) go in front of the parent's reversed list. *)
  t.rev_events <- other.rev_events @ t.rev_events;
  t.count <- t.count + other.count

let write_to t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Obs_event.to_json e);
          output_char oc '\n')
        (events t))

let write t = match t.dest with Some path -> write_to t path | None -> ()

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line when String.trim line = "" -> go acc
        | line -> (
            match Obs_event.of_json line with
            | Some e -> go (e :: acc)
            | None -> go acc)
      in
      go [])
