(** Trace events and their JSONL encoding.

    An event is one line of a trace: a span boundary or a point-in-time
    note.  The JSON encoding is canonical (fixed field order, [%.17g]
    floats) so that encoding is deterministic and a round trip through
    {!to_json}/{!of_json} reproduces the event bit-for-bit — which is what
    lets tests diff whole traces across worker counts. *)

type kind =
  | Span_begin  (** a nested timed region opened *)
  | Span_end  (** the region closed; carries its duration *)
  | Note  (** a point event (e.g. a quarantined candidate) *)

type t = {
  e_kind : kind;
  e_name : string;  (** span or note name, e.g. ["fisher"] *)
  e_depth : int;  (** nesting depth of the span (0 = top level) *)
  e_t : float;  (** clock reading when the event was emitted *)
  e_dur_s : float option;  (** [Span_end] only: seconds inside the span *)
  e_detail : string option;  (** [Note] only: free-form payload *)
}

val span_begin : name:string -> depth:int -> t:float -> t
(** A span-open event. *)

val span_end : name:string -> depth:int -> t:float -> dur_s:float -> t
(** A span-close event carrying the span's duration. *)

val note : ?detail:string -> name:string -> depth:int -> t:float -> unit -> t
(** A point event at the current span depth. *)

val kind_name : kind -> string
(** Stable wire name: ["span_begin"], ["span_end"] or ["note"]. *)

val strip_times : t -> t
(** The event with [e_t] and [e_dur_s] zeroed — the worker-count-invariant
    "content" of the event, used to compare traces across runs. *)

val to_json : t -> string
(** One canonical JSON object, no trailing newline. *)

val of_json : string -> t option
(** Parse one line as produced by {!to_json} (tolerating whitespace and
    field reordering); [None] on anything malformed. *)

val json_string : string -> string
(** A JSON string literal with the standard escapes (shared by the other
    JSON writers in this library). *)

val json_float : float -> string
(** A JSON number that round-trips through [float_of_string] exactly. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner, indented two spaces per nesting level. *)
