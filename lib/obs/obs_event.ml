type kind = Span_begin | Span_end | Note

type t = {
  e_kind : kind;
  e_name : string;
  e_depth : int;
  e_t : float;
  e_dur_s : float option;
  e_detail : string option;
}

let span_begin ~name ~depth ~t =
  { e_kind = Span_begin; e_name = name; e_depth = depth; e_t = t; e_dur_s = None;
    e_detail = None }

let span_end ~name ~depth ~t ~dur_s =
  { e_kind = Span_end; e_name = name; e_depth = depth; e_t = t;
    e_dur_s = Some dur_s; e_detail = None }

let note ?detail ~name ~depth ~t () =
  { e_kind = Note; e_name = name; e_depth = depth; e_t = t; e_dur_s = None;
    e_detail = detail }

let kind_name = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Note -> "note"

let kind_of_name = function
  | "span_begin" -> Some Span_begin
  | "span_end" -> Some Span_end
  | "note" -> Some Note
  | _ -> None

let strip_times e =
  { e with e_t = 0.0; e_dur_s = (match e.e_dur_s with None -> None | Some _ -> Some 0.0) }

(* --- JSON rendering ----------------------------------------------------- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* %.17g keeps enough significant digits that float_of_string reads back
   the identical bit pattern, so a JSONL round-trip is lossless. *)
let json_float f = Printf.sprintf "%.17g" f

let to_json e =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"kind\":\"%s\",\"name\":%s,\"depth\":%d,\"t\":%s"
    (kind_name e.e_kind) (json_string e.e_name) e.e_depth (json_float e.e_t);
  (match e.e_dur_s with
  | Some d -> Printf.bprintf b ",\"dur_s\":%s" (json_float d)
  | None -> ());
  (match e.e_detail with
  | Some d -> Printf.bprintf b ",\"detail\":%s" (json_string d)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

(* --- JSON parsing (the subset this module emits) ------------------------ *)

exception Bad

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws s i =
  let n = String.length s in
  let i = ref i in
  while !i < n && is_ws s.[!i] do incr i done;
  !i

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise Bad

let parse_string s i =
  let n = String.length s in
  if i >= n || s.[i] <> '"' then raise Bad;
  let b = Buffer.create 16 in
  let i = ref (i + 1) in
  let stop = ref (-1) in
  while !stop < 0 do
    if !i >= n then raise Bad;
    (match s.[!i] with
    | '"' -> stop := !i + 1
    | '\\' ->
        if !i + 1 >= n then raise Bad;
        (match s.[!i + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !i + 5 >= n then raise Bad;
            let code =
              (hex_digit s.[!i + 2] * 4096) + (hex_digit s.[!i + 3] * 256)
              + (hex_digit s.[!i + 4] * 16) + hex_digit s.[!i + 5]
            in
            (* We only emit \u for control characters; anything wider is
               someone else's JSON and degrades to '?'. *)
            Buffer.add_char b (if code < 256 then Char.chr code else '?')
        | _ -> raise Bad);
        i := !i + (if s.[!i + 1] = 'u' then 6 else 2)
    | c ->
        Buffer.add_char b c;
        incr i)
  done;
  (Buffer.contents b, !stop)

type field = F_string of string | F_raw of string

let parse_fields line =
  let n = String.length line in
  let i = skip_ws line 0 in
  if i >= n || line.[i] <> '{' then raise Bad;
  let fields = ref [] in
  let i = ref (skip_ws line (i + 1)) in
  let stop = ref false in
  if !i < n && line.[!i] = '}' then stop := true;
  while not !stop do
    let key, j = parse_string line !i in
    let j = skip_ws line j in
    if j >= n || line.[j] <> ':' then raise Bad;
    let j = skip_ws line (j + 1) in
    let value, j =
      if j < n && line.[j] = '"' then
        let v, j = parse_string line j in
        (F_string v, j)
      else begin
        let k = ref j in
        while !k < n && line.[!k] <> ',' && line.[!k] <> '}' do incr k done;
        (F_raw (String.trim (String.sub line j (!k - j))), !k)
      end
    in
    fields := (key, value) :: !fields;
    let j = skip_ws line j in
    if j < n && line.[j] = ',' then i := skip_ws line (j + 1)
    else if j < n && line.[j] = '}' then stop := true
    else raise Bad
  done;
  List.rev !fields

let of_json line =
  match parse_fields line with
  | exception Bad -> None
  | exception _ -> None
  | fields -> (
      let str k =
        match List.assoc_opt k fields with Some (F_string s) -> Some s | _ -> None
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (F_raw r) -> float_of_string_opt r
        | _ -> None
      in
      match (Option.bind (str "kind") kind_of_name, str "name", num "depth", num "t")
      with
      | Some kind, Some name, Some depth, Some t ->
          Some
            { e_kind = kind;
              e_name = name;
              e_depth = int_of_float depth;
              e_t = t;
              e_dur_s = num "dur_s";
              e_detail = str "detail" }
      | _ -> None)

let pp ppf e =
  let indent = String.make (2 * e.e_depth) ' ' in
  match e.e_kind with
  | Span_begin -> Format.fprintf ppf "%s> %s" indent e.e_name
  | Span_end ->
      Format.fprintf ppf "%s< %s  (%.6fs)" indent e.e_name
        (match e.e_dur_s with Some d -> d | None -> 0.0)
  | Note ->
      Format.fprintf ppf "%s* %s%s" indent e.e_name
        (match e.e_detail with Some d -> ": " ^ d | None -> "")
