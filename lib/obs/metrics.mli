(** Named counters and histograms.

    A registry of integer counters (candidates generated, rejected,
    quarantined, cache hits, ...) and fixed-bucket duration histograms
    (per-phase span times, cost-model latency).  Registries are cheap,
    mutable and single-domain; a parallel evaluation gives each worker its
    own registry and {!merge}s them back in a deterministic order.

    Determinism contract: counter values are exact integers, so any merge
    order yields the same totals — counters whose increments are
    themselves deterministic (the [search.*] namespace) are bit-identical
    across worker counts.  Histogram counts, bucket counts, min and max
    merge exactly too; only [h_sum_s] (a float sum) may differ in the last
    ulp with merge order, and of course measured durations vary run to
    run. *)

type t
(** A metrics registry. *)

type histogram = {
  h_count : int;  (** observations recorded *)
  h_sum_s : float;  (** sum of observed values (seconds) *)
  h_min_s : float;  (** smallest observation ([infinity] when empty) *)
  h_max_s : float;  (** largest observation ([neg_infinity] when empty) *)
  h_buckets : int array;  (** per-bucket counts, see {!bucket_bounds} *)
}
(** An immutable histogram snapshot. *)

val bucket_bounds : float array
(** Upper bounds (seconds) of the histogram buckets: nine decades from
    1µs; the final bucket of {!histogram.h_buckets} is overflow. *)

val create : unit -> t
(** A fresh, empty registry. *)

val incr : t -> string -> unit
(** Add one to a counter (created at zero on first touch). *)

val add : t -> string -> int -> unit
(** Add [n] to a counter. *)

val set : t -> string -> int -> unit
(** Overwrite a counter — for end-of-run snapshots of externally
    accumulated values (cache stats, autotuner sweeps). *)

val counter : t -> string -> int
(** Current counter value; 0 if never touched. *)

val counters : t -> (string * int) list
(** Every counter, sorted by name. *)

val observe : t -> string -> float -> unit
(** Record one duration (seconds) into a histogram. *)

val histogram : t -> string -> histogram option
(** Snapshot of one histogram, if any observation was recorded. *)

val histograms : t -> (string * histogram) list
(** Every histogram snapshot, sorted by name. *)

val merge : t -> t -> unit
(** [merge t other] folds [other]'s counters and histograms into [t]
    (leaving [other] untouched) — the absorb path for per-worker
    registries. *)

val clear : t -> unit
(** Drop every counter and histogram. *)

val to_json : t -> string
(** The whole registry as one JSON object
    [{"counters":{...},"histograms":{...}}] with keys sorted. *)
