(** Trace event sinks: an in-memory buffer, optionally flushed to JSONL.

    Events are buffered in memory rather than streamed so that a parallel
    search can give each worker domain its own sink and {!append} them
    back in worker order after the join — the merged trace then lists
    events in candidate-index order, identical in content to a
    single-worker run.  The file (if any) is written once, at
    {!write}/[Obs.close] time. *)

type t
(** A sink: an append-only event buffer plus an optional JSONL
    destination. *)

val memory : unit -> t
(** A buffer-only sink (used by tests and worker forks). *)

val file : string -> t
(** A sink that {!write} will flush to [path] as JSONL, one event per
    line. *)

val emit : t -> Obs_event.t -> unit
(** Append one event. *)

val length : t -> int
(** Events buffered so far. *)

val events : t -> Obs_event.t list
(** The buffered events, oldest first. *)

val dest : t -> string option
(** The configured JSONL path, if any. *)

val append : t -> t -> unit
(** [append t other] adds [other]'s events after [t]'s — the absorb path
    for per-worker sinks ([other] is left untouched). *)

val write_to : t -> string -> unit
(** Write the buffer to an explicit path as JSONL (overwrites). *)

val write : t -> unit
(** Write to the sink's configured destination; no-op for memory sinks. *)

val load : string -> Obs_event.t list
(** Read a JSONL trace back, skipping blank or unparseable lines. *)
