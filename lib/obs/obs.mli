(** The observability recorder: one handle tying together a clock, a
    metrics registry, a trace sink and a span tracker.

    Evaluation code takes a recorder (via [Eval_ctx]) and calls the
    operations below unconditionally; on the shared {!disabled} recorder
    every operation is a guarded no-op, so un-instrumented runs pay one
    branch per call and allocate nothing.  A recorder is single-domain:
    parallel evaluation {!fork}s one per worker and {!absorb}s them back
    in worker order, which keeps merged trace content and deterministic
    counters identical to a single-worker run (see DESIGN.md §7). *)

type t
(** A recorder. *)

val disabled : t
(** The inert recorder: records nothing, [now] returns 0.  Shared and
    domain-safe; [fork disabled == disabled]. *)

val create : ?clock:Obs_clock.t -> ?trace_file:string -> unit -> t
(** An enabled recorder.  [clock] defaults to {!Obs_clock.wall};
    [trace_file] makes {!close} write the buffered trace there as
    JSONL. *)

val enabled : t -> bool
(** Whether this recorder records anything. *)

val metrics : t -> Metrics.t
(** The recorder's metrics registry. *)

val sink : t -> Trace_sink.t
(** The recorder's trace sink. *)

val events : t -> Obs_event.t list
(** The buffered trace, oldest first. *)

val now : t -> float
(** A clock reading (0 when disabled). *)

val incr : t -> string -> unit
(** Add one to a counter. *)

val add : t -> string -> int -> unit
(** Add [n] to a counter. *)

val set : t -> string -> int -> unit
(** Overwrite a counter (end-of-run snapshots). *)

val observe : t -> string -> float -> unit
(** Record a duration (seconds) into a histogram. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a named span (just the thunk when disabled);
    exception-safe. *)

val note : t -> ?detail:string -> string -> unit
(** Emit a point event at the current span depth. *)

val fork : t -> t
(** A worker recorder: same clock, fresh metrics and memory sink, spans
    opening at the parent's current depth.  {!disabled} forks to itself. *)

val absorb : t -> t -> unit
(** [absorb parent worker] merges the worker's metrics and appends its
    events after the parent's.  Absorbing workers in worker-index order
    (as [Parallel_eval] does) makes the merged event order equal to the
    sequential evaluation order. *)

val close : t -> unit
(** Flush the trace to its configured file, if any. *)
