type t = {
  sp_clock : Obs_clock.t;
  sp_sink : Trace_sink.t;
  sp_metrics : Metrics.t;
  sp_base_depth : int;
  mutable sp_stack : (string * float) list;
}

let create ?(base_depth = 0) ~clock ~sink ~metrics () =
  { sp_clock = clock;
    sp_sink = sink;
    sp_metrics = metrics;
    sp_base_depth = base_depth;
    sp_stack = [] }

let depth t = t.sp_base_depth + List.length t.sp_stack

let enter t name =
  let now = t.sp_clock () in
  Trace_sink.emit t.sp_sink (Obs_event.span_begin ~name ~depth:(depth t) ~t:now);
  t.sp_stack <- (name, now) :: t.sp_stack

let leave t =
  match t.sp_stack with
  | [] -> ()
  | (name, t0) :: rest ->
      t.sp_stack <- rest;
      let now = t.sp_clock () in
      let dur = now -. t0 in
      Trace_sink.emit t.sp_sink
        (Obs_event.span_end ~name ~depth:(depth t) ~t:now ~dur_s:dur);
      Metrics.observe t.sp_metrics ("span." ^ name) dur

let with_ t name f =
  enter t name;
  Fun.protect ~finally:(fun () -> leave t) f

let note t ?detail name =
  Trace_sink.emit t.sp_sink
    (Obs_event.note ?detail ~name ~depth:(depth t) ~t:(t.sp_clock ()) ())
