(* Bucket upper bounds in seconds: nine decades from 1µs up, plus an
   overflow bucket.  Fixed globally so histograms from different workers
   merge bucket-by-bucket. *)
let bucket_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; 100.0 |]

let n_buckets = Array.length bucket_bounds + 1

let bucket_of v =
  let i = ref 0 in
  while !i < Array.length bucket_bounds && v > bucket_bounds.(!i) do incr i done;
  !i

type histogram = {
  h_count : int;
  h_sum_s : float;
  h_min_s : float;
  h_max_s : float;
  h_buckets : int array;
}

type hist_state = {
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
  hs_buckets : int array;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, hist_state) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; histograms = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)
let add t name n = counter_ref t name := !(counter_ref t name) + n
let set t name n = counter_ref t name := n
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let hist_state t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h =
        { hs_count = 0;
          hs_sum = 0.0;
          hs_min = infinity;
          hs_max = neg_infinity;
          hs_buckets = Array.make n_buckets 0 }
      in
      Hashtbl.replace t.histograms name h;
      h

let observe t name v =
  let h = hist_state t name in
  h.hs_count <- h.hs_count + 1;
  h.hs_sum <- h.hs_sum +. v;
  if v < h.hs_min then h.hs_min <- v;
  if v > h.hs_max then h.hs_max <- v;
  let b = h.hs_buckets.(bucket_of v) in
  h.hs_buckets.(bucket_of v) <- b + 1

let snapshot h =
  { h_count = h.hs_count;
    h_sum_s = h.hs_sum;
    h_min_s = h.hs_min;
    h_max_s = h.hs_max;
    h_buckets = Array.copy h.hs_buckets }

let histogram t name = Option.map snapshot (Hashtbl.find_opt t.histograms name)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters)
let histograms t = List.map (fun (k, h) -> (k, snapshot h)) (sorted_bindings t.histograms)

let merge t other =
  List.iter (fun (k, n) -> add t k n) (counters other);
  Hashtbl.iter
    (fun k oh ->
      let h = hist_state t k in
      h.hs_count <- h.hs_count + oh.hs_count;
      h.hs_sum <- h.hs_sum +. oh.hs_sum;
      if oh.hs_min < h.hs_min then h.hs_min <- oh.hs_min;
      if oh.hs_max > h.hs_max then h.hs_max <- oh.hs_max;
      Array.iteri (fun i n -> h.hs_buckets.(i) <- h.hs_buckets.(i) + n) oh.hs_buckets)
    other.histograms

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (k, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%s:%d" (Obs_event.json_string k) n)
    (counters t);
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i (k, h) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%s:{\"count\":%d,\"sum_s\":%s,\"min_s\":%s,\"max_s\":%s}"
        (Obs_event.json_string k) h.h_count
        (Obs_event.json_float h.h_sum_s)
        (Obs_event.json_float (if h.h_count = 0 then 0.0 else h.h_min_s))
        (Obs_event.json_float (if h.h_count = 0 then 0.0 else h.h_max_s)))
    (histograms t);
  Buffer.add_string b "}}";
  Buffer.contents b
