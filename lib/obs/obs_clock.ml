type t = unit -> float

let wall = Unix.gettimeofday

let manual ?(start = 0.0) ?(step = 1.0) () =
  let now = ref (start -. step) in
  fun () ->
    now := !now +. step;
    !now
