(** Executable loop nests for tensor convolutions.

    A {!program} is the lowering of a convolution domain under a
    {!Poly.t} schedule: an ordered list of loops (with unroll / vectorize /
    GPU-bind annotations, which do not affect semantics here) around a single
    multiply-accumulate statement with quasi-affine accesses

      O[dst] += W[a] * I[b]

    The interpreter executes programs directly against tensors, which lets
    the test-suite check that semantics-preserving schedules compute exactly
    the reference convolution and that neural transformations change it in
    the intended structured way. *)

type conv_nest = {
  nc_co : int;  (** output channels *)
  nc_ci : int;  (** input channels *)
  nc_oh : int;
  nc_ow : int;
  nc_kh : int;
  nc_kw : int;
  nc_stride : int;
  nc_groups : int;  (** baseline grouping (weight laid out [Co][Ci/G][Kh][Kw]) *)
}

val conv_nest_of_dims :
  co:int -> ci:int -> oh:int -> ow:int -> k:int -> stride:int -> groups:int ->
  conv_nest
(** Build a nest from labelled dimensions ([k] is used for both kernel
    extents, square output assumed). *)

val domain : conv_nest -> (string * int) list
(** The canonical iteration domain [co, ci, oh, ow, kh, kw] (for a baseline
    grouped convolution the [co]/[ci] extents are still the full channel
    counts; the baseline grouping is applied as a schedule construction,
    see {!baseline_schedule}). *)

val baseline_schedule : conv_nest -> Poly.t
(** The identity schedule of the domain, with the baseline grouping already
    applied when [nc_groups > 1]. *)

type term = {
  t_loop : int;  (** index into the program's loop list *)
  t_div : int;
  t_mod : int;  (** 0 means no modulus *)
  t_mul : int;
}
(** One quasi-affine term: [((v / t_div) mod t_mod) * t_mul]. *)

type index = { terms : term list; i_const : int }

type lir_loop = {
  ll_name : string;
  ll_extent : int;
  ll_unroll : int;
  ll_vectorized : bool;
  ll_bind : Poly.gpu_bind option;
}

type program = {
  loops : lir_loop array;  (** outermost first *)
  dst : index;  (** flat index into the output *)
  acc_w : index;  (** flat index into the weights *)
  acc_i : index;  (** flat index into the (padded) input *)
  out_numel : int;
  w_numel : int;
  in_numel : int;
  nest : conv_nest;
  schedule : Poly.t;
}

val lower : conv_nest -> Poly.t -> program
(** Lowers the convolution under the schedule.  The input is expected
    pre-padded on each spatial border (its padded extent is
    [(oh-1)*stride + kh]).  The effective channel
    extents and total grouping are read off the schedule's domain and
    neural log, so bottlenecked / grouped schedules lower to programs over
    correspondingly smaller tensors.

    @raise Poly.Illegal if the schedule does not cover the domain. *)

val effective_groups : Poly.t -> conv_nest -> int
(** Product of the grouping factors in the schedule's neural log (the
    baseline grouping of the nest is included, since {!baseline_schedule}
    applies it through the same mechanism). *)

val run : program -> output:Tensor.t -> weight:Tensor.t -> input:Tensor.t -> unit
(** Interprets the program, accumulating into [output] (callers zero it
    first).  Tensor element counts must match the program's. *)

val eval_index : index -> int array -> int
(** Value of a quasi-affine index at the given loop values. *)

val iter_accesses : program -> f:(out_idx:int -> w_idx:int -> in_idx:int -> unit) -> unit
(** Enumerates the flat array indices touched by every dynamic instance of
    the statement, in schedule order — the access trace consumed by the
    cache simulator. *)

val pp : Format.formatter -> program -> unit
(** C-like rendering of the nest. *)

val pad_input : Tensor.t -> pad:int -> Tensor.t
(** Zero-pads a [C;H;W] tensor on both spatial borders. *)
