(** Ablation benches for the design decisions called out in DESIGN.md.

    1. {b Fisher filtering}: run the search without the legality check and
       measure how many cost-best configurations are capacity-damaging, and
       what the train-to-check alternative would cost.
    2. {b Analytic vs trace-driven memory model}: compare the cost model's
       DRAM-traffic prediction against the cache simulator's measured miss
       bytes on small nests, reporting rank agreement.
    3. {b Interleaving}: restrict the search space to the NAS-only menu
       (no interleaved sequences, no schedule hints) and compare the best
       latency against the full unified space. *)

type fisher_ablation = {
  fa_candidates : int;
  fa_best_cost_illegal : bool;
      (** is the cost-only winner rejected by the Fisher check? *)
  fa_illegal_in_top10 : int;
  fa_pool_illegal_frac : float;
      (** fraction of the random pool rejected by the Fisher check *)
  fa_fisher_wall_s : float;  (** time to Fisher-check the pool *)
  fa_train_wall_estimate_s : float;
      (** estimated time to train-check the pool instead *)
}

type cache_validation = {
  cv_schedules : int;
  cv_pearson : float;  (** correlation between predicted and simulated bytes *)
  cv_order_agreement : float;
      (** fraction of schedule pairs ranked identically *)
}

type interleave_ablation = {
  ia_nas_only_speedup : float;
  ia_unified_speedup : float;
}

type data = {
  fisher : fisher_ablation;
  cache : cache_validation;
  interleave : interleave_ablation;
}

val compute : Exp_common.mode -> data
(** Run all three ablations at the mode's budgets. *)

val print : Format.formatter -> data -> unit
(** Render the ablation tables. *)

val run : Exp_common.mode -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV exports. *)
