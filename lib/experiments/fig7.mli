(** Figure 7: comparison against FBNet on the Intel i7.

    FBNet selects blocks from the same menu as the NAS baseline but trains
    while searching; it improves over BlockSwap at a simulated cost of ~3
    GPU-days per network, and the unified approach beats it with no
    training at all. *)

type row = {
  network : string;
  tvm_s : float;
  nas_s : float;
  fbnet_s : float;
  ours_s : float;
  fbnet_gpu_days : float;
  fbnet_trainings : int;
}

type data = { rows : row list }

val compute : Exp_common.mode -> Fig4.data -> data
(** Run the FBNet simulation against the Figure-4 baselines. *)

val print : Format.formatter -> data -> unit
(** Render the comparison table with the simulated GPU-day costs. *)

val run : Exp_common.mode -> Fig4.data -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV export. *)
