(** CSV export of experiment data.

    Every figure's [run] writes its rows under [results/] (created on
    demand) so the numbers can be re-plotted outside the harness.  Fields
    are escaped per RFC 4180. *)

val results_dir : string ref
(** Output directory; default ["results"]. *)

val write : name:string -> header:string list -> string list list -> string
(** [write ~name ~header rows] writes [results/<name>.csv] and returns the
    path. *)

val float_cell : float -> string
val int_cell : int -> string
(** Integer rendered as a CSV cell. *)
