(** Figure 3: Fisher Potential as a rejection filter over the
    NAS-Bench-201-like cell space.

    Samples cells, computes their Fisher Potential at initialization and
    their top-1 error after budgeted training, and reports the scatter plus
    the filtering statistics the figure illustrates: low-Fisher cells have
    high final error, so rejecting them discards bad architectures without
    any training. *)

type data = {
  records : Nasbench.record list;
  spearman_fisher_error : float;
      (** rank correlation between Fisher Potential and final error
          (negative: higher potential, lower error) *)
  rejected_fraction : float;  (** cells below the median-Fisher threshold *)
  rejected_mean_error : float;
  kept_mean_error : float;
}

val compute : Exp_common.mode -> data
(** Sample, train and score the cell population at the mode's budgets. *)

val print : Format.formatter -> data -> unit
(** Render the scatter summary and filtering statistics. *)

val run : Exp_common.mode -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV export. *)
