(** Figure 9: interpolating between two NAS models (grouped g=2 and g=4
    ResNet-34 variants) with parametrized transformation chains; each point
    is trained several times (mean with error bars) and Pareto-optimal
    points are flagged. *)

type data = { points : Interpolate.point list }

val compute : Exp_common.mode -> data
(** Train every interpolation point (several seeds each). *)

val print : Format.formatter -> data -> unit
(** Render the accuracy/latency frontier with Pareto flags. *)

val run : Exp_common.mode -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV export. *)
