(* Figure-4-style sweep over the families the registry adds beyond the six
   paper presets: for each non-paper zoo entry, run the unified search on
   every modelled device and report baseline vs searched latency.  The point
   of the block algebra is that new families are one registry line away from
   being searchable workloads; this section exercises exactly that path. *)

type row = {
  network : string;
  family : string;
  sites : int;
  device : Device.t;
  baseline_s : float;
  ours_s : float;
  ours_params : int;
  baseline_params : int;
  fisher_rejected : int;
  explored : int;
}

let speedup r = r.baseline_s /. r.ours_s

let new_families () =
  List.filter (fun e -> not e.Zoo.ze_paper) Zoo.all

let compute mode =
  let rows = ref [] in
  List.iteri
    (fun i (e : Zoo.entry) ->
      let rng = Rng.create (Exp_common.master_seed + 70 + i) in
      let model = Models.build (e.ze_spec `Search) rng in
      let probe =
        Exp_common.probe_batch (Rng.split rng)
          ~input_size:model.Models.input_size
      in
      let results =
        Unified_search.search_multi
          ~candidates:(Exp_common.candidates mode)
          ~rng:(Rng.split rng) ~devices:Device.all ~probe model
      in
      List.iter
        (fun (device, r) ->
          rows :=
            { network = e.ze_name;
              family = e.ze_family;
              sites = Array.length model.Models.sites;
              device;
              baseline_s = r.Unified_search.r_baseline.Pipeline.ev_latency_s;
              ours_s = r.Unified_search.r_best.Unified_search.cd_latency_s;
              ours_params = r.r_best.cd_params;
              baseline_params = r.r_baseline.Pipeline.ev_params;
              fisher_rejected = r.r_rejected;
              explored = r.r_explored }
            :: !rows)
        results)
    (new_families ());
  List.rev !rows

let print ppf rows =
  Exp_common.section ppf
    "Zoo: transformation search on the registry's new families";
  Format.fprintf ppf "%-16s %-5s | %5s | %12s %12s | %8s@." "network" "dev"
    "sites" "baseline" "ours" "speedup";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %-5s | %5d | %a %a | %7.2fx  %s@." r.network
        r.device.Device.short_name r.sites Exp_common.pp_us r.baseline_s
        Exp_common.pp_us r.ours_s (speedup r)
        (Exp_common.bar (speedup r)))
    rows;
  Format.fprintf ppf "@.geomean speedup per family:@.";
  List.iter
    (fun (e : Zoo.entry) ->
      let mine = List.filter (fun r -> r.network = e.ze_name) rows in
      if mine <> [] then begin
        let g = Stats.geomean (Array.of_list (List.map speedup mine)) in
        Format.fprintf ppf "  %-16s %5.2fx@." e.ze_name g
      end)
    (new_families ())

let to_csv rows =
  Csv_out.write ~name:"zoo_new_families"
    ~header:
      [ "network"; "family"; "device"; "sites"; "baseline_s"; "ours_s";
        "speedup"; "baseline_params"; "ours_params"; "explored"; "rejected" ]
    (List.map
       (fun r ->
         [ r.network; r.family; r.device.Device.short_name;
           Csv_out.int_cell r.sites; Csv_out.float_cell r.baseline_s;
           Csv_out.float_cell r.ours_s; Csv_out.float_cell (speedup r);
           Csv_out.int_cell r.baseline_params; Csv_out.int_cell r.ours_params;
           Csv_out.int_cell r.explored; Csv_out.int_cell r.fisher_rejected ])
       rows)

let run mode ppf =
  let rows = compute mode in
  print ppf rows;
  ignore (to_csv rows);
  rows
