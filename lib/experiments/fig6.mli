(** Figure 6: layer-wise exploration of transformation sequences for
    ResNet-34 on the Intel i7.

    The network's distinct convolution shapes ("layers", 11 for the
    ImageNet-style ResNet-34, matching the TVM paper's per-layer
    experiment) are each optimized with: plain NAS grouping (g=2) and the
    three §7.3 sequences.  Layers whose Fisher Potential collapses under
    compression are marked sensitive and receive no neural transformation
    (4 of the 11 in the paper). *)

type layer = {
  index : int;
  label : string;
  shape : Conv_impl.workload;  (** paper-scale dims *)
  tvm_s : float;
  nas_s : float option;  (** None when the layer is Fisher-sensitive *)
  seq1_s : float option;
  seq2_s : float option;
  seq3_s : float option;
  sensitive : bool;
}

type data = { layers : layer list }

val compute : Exp_common.mode -> data
(** Optimize every distinct layer shape under each sequence. *)

val print : Format.formatter -> data -> unit
(** Render the per-layer comparison table. *)

val run : Exp_common.mode -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV export. *)
