(** Shared setup for the experiment harnesses.

    Every experiment is deterministic given its seed and runs in one of two
    modes: [Quick] (the default for `dune exec bench/main.exe`; smaller
    candidate pools and training budgets) and [Full] (paper-scale pool
    sizes: 1000 configurations, more cells, longer training).  Set
    [NPTE_MODE=full] to select [Full]. *)

type mode = Quick | Full

val mode_of_env : unit -> mode
(** [Full] when [NPTE_MODE=full] is set, [Quick] otherwise. *)

val mode_name : mode -> string
(** ["quick"] or ["full"], for banners and CSV filenames. *)

val candidates : mode -> int
(** Unified-search pool size (1000 in Full, as in §6). *)

val blockswap_samples : mode -> int
val nasbench_cells : mode -> int
(** Cells sampled for the Figure-3 NAS-Bench-201-like scatter. *)

val train_steps : mode -> int
(** Per-network training budget (steps) for the accuracy experiments. *)

val seeds : mode -> int
(** Independent training seeds per measured point (Figure 9 error bars). *)

val fbnet_rounds : mode -> int
(** Evolution rounds of the simulated FBNet baseline (Figure 7). *)

val fbnet_population : mode -> int
(** Population size of the simulated FBNet baseline (Figure 7). *)

val master_seed : int
(** The one seed every experiment derives its streams from. *)

val cifar_configs : unit -> Models.config list
(** The three CIFAR-10 networks of Figure 4 (search scale). *)

val probe_batch : Rng.t -> input_size:int -> Train.batch
(** The fixed Fisher probe minibatch for a given input size (one per
    experiment, deterministic). *)

val train_data : Rng.t -> input_size:int -> classes:int -> Synthetic_data.t

val section : Format.formatter -> string -> unit
(** Prints a figure/table banner. *)

val pp_us : Format.formatter -> float -> unit
(** Latency in convenient units. *)

val bar : float -> string
(** A crude textual bar for relative-performance "plots". *)
