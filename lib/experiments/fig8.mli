(** Figure 8: accuracy vs inference time on the ImageNet-like dataset for
    ResNet-18/34 and DenseNet-161/169/201 — the original network compiled
    with TVM against the unified approach's transformed network.  Both
    members of each pair are trained under the same budget; inference time
    is the i7 cost-model latency at paper-scale dimensions. *)

type row = {
  network : string;
  orig_s : float;
  ours_s : float;
  orig_acc : float;
  ours_acc : float;
}

type data = { rows : row list }

val compute : Exp_common.mode -> data
(** Train each original/transformed pair under the same budget. *)

val print : Format.formatter -> data -> unit
(** Render the accuracy-vs-latency table. *)

val run : Exp_common.mode -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV export. *)
