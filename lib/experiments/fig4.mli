(** Figure 4: end-to-end CIFAR-10 performance of the three networks on the
    four platforms, comparing TVM (autotuned default schedules), NAS
    (BlockSwap-compressed then compiled) and Ours (the unified search). *)

type row = {
  network : string;
  device : Device.t;
  tvm_s : float;
  nas_s : float;
  ours_s : float;
  ours_plans : Site_plan.t array;
  ours_params : int;
  baseline_params : int;
  fisher_rejected : int;
  explored : int;
  search_wall_s : float;
}

type data = {
  rows : row list;
  nas_impls : (string * Conv_impl.t array) list;  (** per network *)
}

val nas_speedup : row -> float
(** TVM latency over the NAS baseline's latency. *)

val ours_speedup : row -> float
(** TVM latency over the unified search winner's latency. *)

val compute : Exp_common.mode -> data
(** Run all three systems on every (network, device) pair. *)

val print : Format.formatter -> data -> unit
(** Render the per-platform comparison bars. *)

val run : Exp_common.mode -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV export. *)
