(** Zoo sweep: the unified transformation search run end-to-end on every
    family the registry adds beyond the six paper presets, on every
    modelled device.  Demonstrates that a one-line {!Zoo} entry is a fully
    searchable workload. *)

type row = {
  network : string;
  family : string;
  sites : int;  (** transformable sites the search optimizes over *)
  device : Device.t;
  baseline_s : float;
  ours_s : float;
  ours_params : int;
  baseline_params : int;
  fisher_rejected : int;
  explored : int;
}

val speedup : row -> float
(** Baseline latency over searched latency. *)

val new_families : unit -> Zoo.entry list
(** The registry entries this section sweeps (the non-paper ones). *)

val compute : Exp_common.mode -> row list
(** Search every new family on every modelled device. *)

val print : Format.formatter -> row list -> unit
(** Render the sweep table. *)

val run : Exp_common.mode -> Format.formatter -> row list
(** {!compute}, {!print}, and write the CSV export. *)
