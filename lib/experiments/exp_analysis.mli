(** §7.2 Analysis: accuracy, size and search-time accounting.

    - Accuracy: each CIFAR network and its Figure-4 winner are trained under
      the same budget; absolute accuracy deltas should be small (<1% in the
      paper).
    - Size: paper-scale parameter compression of the winners (2-3x in the
      paper; ImageNet ResNet-34 22M -> 9M).
    - Search time: configurations explored, fraction rejected for free by
      the Fisher check (~90%), and wall-clock search time (<5 min). *)

type accuracy_row = {
  network : string;
  orig_acc : float;
  ours_acc : float;
}

type data = {
  accuracy : accuracy_row list;
  size : (string * int * int) list;  (** network, baseline params, ours params *)
  search : (string * int * int * float) list;
      (** network, explored, rejected, wall seconds (CPU rows) *)
}

val compute : Exp_common.mode -> Fig4.data -> data
(** Train the Figure-4 winners and collect the accuracy/size/search rows. *)

val print : Format.formatter -> data -> unit
(** Render the three §7.2 tables. *)

val run : Exp_common.mode -> Fig4.data -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV exports. *)
