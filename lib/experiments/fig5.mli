(** Figure 5: how often each of the three dominant §7.3 sequences appears in
    the best networks found by the unified search (counted over the
    Figure 4 winners, across all platforms). *)

type row = {
  network : string;
  seq1 : int;
  seq2 : int;
  seq3 : int;
  other : int;  (** plain group/bottleneck/depthwise/spatial sites *)
  untouched : int;
}

type data = { rows : row list }

val compute : Fig4.data -> data
(** Classify every winning site plan of the Figure-4 results. *)

val print : Format.formatter -> data -> unit
(** Render the sequence-frequency table. *)

val run : Fig4.data -> Format.formatter -> data
(** {!compute}, {!print}, and write the CSV export. *)
