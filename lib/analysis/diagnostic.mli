(** The diagnostic taxonomy shared by the static analyzers.

    Every analyzer in [lib/analysis] reports findings as values of {!t}
    instead of raising: an [Error] means the analyzed plan is definitely
    wrong (an illegal transformation, a violated dependence, an
    out-of-range access), a [Warn] flags something suspicious but
    harmless (a no-op transformation, an unroll factor beyond the loop
    extent).  The [d_code] slug is stable across releases so tests and
    tooling can match on it; [d_loop] and [d_dep] carry the schedule
    dimension and dependence label when the finding concerns one. *)

type severity = Error | Warn

type t = {
  d_severity : severity;
  d_code : string;  (** stable machine-readable slug, e.g. ["dependence-violation"] *)
  d_loop : int option;  (** schedule dimension (loop index, outermost = 0) *)
  d_dep : string option;  (** dependence label, for legality findings *)
  d_msg : string;  (** human-readable explanation *)
}

val error : ?loop:int -> ?dep:string -> code:string -> ('a, unit, string, t) format4 -> 'a
(** An [Error] diagnostic with a formatted message. *)

val warn : ?loop:int -> ?dep:string -> code:string -> ('a, unit, string, t) format4 -> 'a
(** A [Warn] diagnostic with a formatted message. *)

val is_error : t -> bool
(** True for [Error]-severity diagnostics. *)

val errors : t list -> t list
(** The [Error]-severity subset, in order. *)

val warnings : t list -> t list
(** The [Warn]-severity subset, in order. *)

val severity_to_string : severity -> string
(** ["error"] or ["warn"]. *)

val to_string : t -> string
(** One-line rendering: severity, code, context, message. *)

val pp : Format.formatter -> t -> unit
(** Formatter version of {!to_string}. *)

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line (inside an open vertical box). *)
