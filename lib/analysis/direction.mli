(** Static dependence-direction legality of schedules.

    This is the analytical counterpart of the sampling oracle in
    {!Poly_legality}: instead of executing the schedule at (a stratified
    sample of) domain points, it reasons symbolically about how a constant
    distance vector moves through the schedule's mixed-radix digits.

    For every iterator the schedule's digits form a positional number
    system (weight 1 at the bottom, each weight the previous radix step —
    the invariant all [Poly] transformations maintain).  Adding a constant
    distance to an iterator then decomposes into per-digit quotients plus
    a carry/borrow chain, and each feasible carry assignment yields an
    {e exact} per-loop time delta — a classical dependence direction
    vector.  A dependence is preserved iff every feasible direction vector
    is lexicographically positive.  Shared group digits are joined across
    their contributing iterators (agreeing deltas, intersecting value
    intervals); an inconsistent join means the shifted point is not
    enumerated and the pair is vacuously ordered, which is exactly the
    behaviour of {!Poly_legality.encode} returning [None].

    The analysis is exact — [Legal]/[Illegal], never a guess — for every
    schedule whose digit chains are canonical, and answers [Unknown] (fall
    back to the sampling oracle) otherwise.  The differential sanitizer
    ({!Sanitizer}) cross-checks the two implementations continuously. *)

type verdict =
  | Legal  (** every dependence is preserved under the schedule *)
  | Illegal of Diagnostic.t list
      (** at least one dependence is reversed; the diagnostics name the
          dependence, the schedule dimension and the direction vector *)
  | Unknown of string
      (** outside the analyzer's theory (reason attached): the caller must
          fall back to {!Poly_legality.check} *)

val check_dep : Poly.t -> Poly_legality.dependence -> verdict
(** Verdict for a single dependence. *)

val check : Poly.t -> Poly_legality.dependence list -> verdict
(** Verdict for a dependence set: [Illegal] dominates (a definite
    violation stands regardless of other dependences), then [Unknown],
    then [Legal]. *)

val to_bool : verdict -> bool option
(** [Some legal?] for decisive verdicts, [None] for [Unknown]. *)

val agrees : verdict -> bool -> bool
(** Whether a verdict is consistent with the sampling oracle's boolean
    answer ([Unknown] is consistent with anything) — the differential
    sanitizer's acceptance predicate. *)

val pp : Format.formatter -> verdict -> unit
(** Human-readable verdict, with diagnostics when illegal. *)
