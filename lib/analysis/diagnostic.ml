type severity = Error | Warn

type t = {
  d_severity : severity;
  d_code : string;
  d_loop : int option;
  d_dep : string option;
  d_msg : string;
}

let make ?loop ?dep severity code fmt =
  Printf.ksprintf
    (fun msg ->
      { d_severity = severity; d_code = code; d_loop = loop; d_dep = dep; d_msg = msg })
    fmt

let error ?loop ?dep ~code fmt = make ?loop ?dep Error code fmt
let warn ?loop ?dep ~code fmt = make ?loop ?dep Warn code fmt

let is_error d = d.d_severity = Error
let errors ds = List.filter is_error ds
let warnings ds = List.filter (fun d -> not (is_error d)) ds

let severity_to_string = function Error -> "error" | Warn -> "warn"

let to_string d =
  let ctx =
    (match d.d_loop with Some l -> Printf.sprintf " [dim %d]" l | None -> "")
    ^ match d.d_dep with Some dep -> Printf.sprintf " [dep %s]" dep | None -> ""
  in
  Printf.sprintf "%s(%s)%s: %s" (severity_to_string d.d_severity) d.d_code ctx d.d_msg

let pp ppf d = Format.pp_print_string ppf (to_string d)

let pp_list ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) ds
