(** A static type system for the plan language.

    Assigns every {!Plan_lint.step} a typing rule over an abstract
    schedule state: the iteration domain (channel extents, kept current
    across neural transformations) plus the mixed-radix digit structure
    of every loop — exactly the part of a {!Poly.t} that decides whether
    a step is applicable, with the per-loop annotations erased.

    The judgment is {e strict}: a step is well-typed iff {!Plan_lint.lint}
    would record {e nothing} for it — no error (the step would be rejected
    or raise {!Poly.Illegal}) and no warning (the step would apply but be a
    no-op).  This gives an exact characterization in both directions:

    - soundness — [check env steps = Ok _] implies [Plan_lint.lint]
      applies the whole plan and reports zero diagnostics;
    - completeness — a plan that lints clean is well-typed.

    Both directions are fuzzed continuously by {!Sanitizer.run_typed} and
    pinned exhaustively at small sizes by the test-suite.  Inverting the
    rules yields a generator ({!choices}, {!enumerate}, {!sample_plan})
    that emits only well-typed plans by construction — no rejection
    sampling. *)

type env = {
  te_domain : (string * int) list;
      (** iterator extents — the channel/shape state; neural steps
          ([bottleneck]) shrink these *)
  te_loops : Poly.digit list list;
      (** one digit list per loop, outermost first; weight-1 single-digit
          loops are plain iterators, multi-digit loops are fused, shared
          digits come from grouping *)
}

val env_of_schedule : Poly.t -> env
(** Abstract a schedule: keep domain and digits, erase annotations. *)

val env_of_nest : Loop_nest.conv_nest -> env
(** The typing environment of a nest's baseline schedule. *)

val schedule_of_env : env -> Poly.t
(** Concretize an environment back into a schedule with default
    annotations and an empty neural log ([env_of_schedule] is its left
    inverse). *)

val loop_count : env -> int
(** Number of loops in the abstract schedule. *)

val loop_extent : Poly.digit list -> int
(** Trip count of one abstract loop (product of its digit extents). *)

val equal : env -> env -> bool
(** Structural equality of environments. *)

val rule_name : Plan_lint.step -> string
(** The typing rule governing a step ([T-Split], [T-Group], ...), used to
    name the violated rule in diagnostics and in the CLI's [--typecheck]
    output. *)

val pp : Format.formatter -> env -> unit
(** One-line rendering: the domain, a turnstile, then each loop as
    [digits[extent]]. *)

val infer : env -> Plan_lint.step -> (env, Diagnostic.t list) result
(** One-step judgment: [Ok env'] with the successor state when the step
    is well-typed, [Error diags] naming the violated rule otherwise.  The
    successor mirrors {!Plan_lint.apply} exactly:
    [infer (env_of_schedule s) step = Ok (env_of_schedule (apply s step))]
    whenever the step is well-typed (fuzzed by {!Sanitizer.run_typed}). *)

val check :
  ?deps:Poly_legality.dependence list ->
  env ->
  Plan_lint.step list ->
  (env, Diagnostic.t list) result
(** Fold {!infer} over a plan, stopping at the first ill-typed step.
    With [?deps], additionally require the final schedule to preserve the
    dependences (rule [T-Legal], decided by {!Direction.check}); an
    [Unknown] direction verdict is conservatively rejected with code
    ["legality-unknown"]. *)

val divisors_gt1 : int -> int list
(** Divisors of [e] greater than 1, ascending — the inverted image of
    every divisibility side condition. *)

val choices : env -> Plan_lint.step list
(** Every well-typed step at [env], by rule inversion: factors range over
    divisor sets, dimensions over the loop range, iterators over the
    domain.  Complete — a step is well-typed iff it is in [choices env]
    (up to the argument bounds that make the set finite: unroll factors
    never exceed the loop extent).  Beware: contains all non-identity
    permutations for [Reorder], so it is factorial in the loop count —
    meant for small environments (tests, enumeration); use
    {!sample_step} for generation. *)

val enumerate : max_len:int -> env -> Plan_lint.step list list
(** All well-typed plans of length 1..[max_len], by depth-first expansion
    of {!choices} — exactly the plans that lint clean over the same
    bounded argument universe (the exhaustiveness test pins this). *)

val sample_step : Rng.t -> env -> Plan_lint.step option
(** One uniformly-kinded well-typed step: draw a step kind among those
    with at least one well-typed instantiation, then arguments within the
    kind (permutations are sampled, not materialized).  [None] only for
    environments admitting no step at all. *)

val sample_plan :
  Rng.t -> max_len:int -> env -> Plan_lint.step list * env
(** A random well-typed plan of length 1..[max_len] (shorter only if some
    intermediate env admits no step), with its final environment.  Every
    prefix is well-typed by construction. *)
