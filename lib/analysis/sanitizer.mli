(** Differential sanitizer: static analyzer vs. the sampling oracle.

    Fuzzes seeded random transformation plans over random convolution
    nests and checks that {!Direction.check} agrees with
    {!Poly_legality.check} whenever the static verdict is decisive.  The
    contract gating CI ({!passed}): zero disagreements and an [Unknown]
    rate below 20%.  A disagreement means one of the two independent
    legality implementations is wrong — the report carries the exact plan
    and dependence set to replay it. *)

type case = {
  cs_index : int;  (** corpus position, for replay *)
  cs_plan : string;  (** the plan, in {!Plan_lint.of_string} syntax *)
  cs_deps : string;  (** rendered dependence set *)
  cs_static : Direction.verdict;
  cs_oracle : bool;
}

type report = {
  rs_total : int;
  rs_agree_legal : int;  (** both verdicts legal *)
  rs_agree_illegal : int;  (** both verdicts illegal *)
  rs_unknown : int;  (** static verdict [Unknown], oracle skipped *)
  rs_disagreements : case list;  (** decisive static verdicts the oracle contradicts *)
  rs_static_time : float;  (** CPU seconds in the static analyzer *)
  rs_oracle_time : float;  (** CPU seconds in the sampling oracle *)
}

val run : ?max_points:int -> seed:int -> n:int -> unit -> report
(** Fuzz [n] seeded plans; [max_points] is forwarded to the oracle. *)

val unknown_rate : report -> float
(** Fraction of the corpus the static analyzer declined to decide. *)

val passed : ?max_unknown_rate:float -> report -> bool
(** The CI gate: no disagreements and [unknown_rate] below the bound
    (default 0.2). *)

val pp_report : Format.formatter -> report -> unit
(** Summary line plus one replayable line per disagreement. *)

(** {1 Typed-vs-oracle differential fuzzer}

    Fuzzes both directions of {!Plan_types}'s exactness contract on the
    same seeded corpus of random convolution nests: a plan emitted by the
    typed generator must lint clean ({!Plan_lint.lint} applies it with
    zero diagnostics), must predict the applied schedule's abstraction
    digit-for-digit, and its [T-Legal] verdict must agree with the
    sampling oracle {!Poly_legality.check}; conversely a rejection-sampled
    random plan must be well-typed exactly when its lint is clean.  The CI
    gate ({!typed_passed}): zero disagreements, [Unknown] rate below
    20%. *)

type typed_case = {
  tp_index : int;  (** corpus position, for replay *)
  tp_plan : string;  (** the plan, in {!Plan_lint.of_string} syntax *)
  tp_kind : string;  (** which exactness direction broke *)
  tp_detail : string;  (** human-readable evidence *)
}

type typed_report = {
  tt_total : int;  (** corpus cases (each fuzzes one typed + one random plan) *)
  tt_typed_lint_clean : int;  (** typed-generated plans that linted clean *)
  tt_env_agree : int;  (** typed plans whose predicted env matched the schedule *)
  tt_legal_agree : int;  (** decisive [T-Legal] verdicts agreeing with the oracle *)
  tt_unknown : int;  (** [T-Legal] undecided (direction analysis [Unknown]) *)
  tt_survivors_typed : int;  (** lint-clean random plans that typed *)
  tt_dirty_rejected : int;  (** linted-dirty random plans correctly rejected *)
  tt_disagreements : typed_case list;  (** exactness violations, in corpus order *)
}

val run_typed : ?max_points:int -> seed:int -> n:int -> unit -> typed_report
(** Fuzz [n] seeded cases; [max_points] is forwarded to the oracle. *)

val typed_unknown_rate : typed_report -> float
(** Fraction of cases where [T-Legal] declined to decide. *)

val typed_passed : ?max_unknown_rate:float -> typed_report -> bool
(** The CI gate: no disagreements and {!typed_unknown_rate} below the
    bound (default 0.2). *)

val pp_typed_report : Format.formatter -> typed_report -> unit
(** Summary line plus one replayable line per disagreement. *)
