(** Differential sanitizer: static analyzer vs. the sampling oracle.

    Fuzzes seeded random transformation plans over random convolution
    nests and checks that {!Direction.check} agrees with
    {!Poly_legality.check} whenever the static verdict is decisive.  The
    contract gating CI ({!passed}): zero disagreements and an [Unknown]
    rate below 20%.  A disagreement means one of the two independent
    legality implementations is wrong — the report carries the exact plan
    and dependence set to replay it. *)

type case = {
  cs_index : int;  (** corpus position, for replay *)
  cs_plan : string;  (** the plan, in {!Plan_lint.of_string} syntax *)
  cs_deps : string;  (** rendered dependence set *)
  cs_static : Direction.verdict;
  cs_oracle : bool;
}

type report = {
  rs_total : int;
  rs_agree_legal : int;  (** both verdicts legal *)
  rs_agree_illegal : int;  (** both verdicts illegal *)
  rs_unknown : int;  (** static verdict [Unknown], oracle skipped *)
  rs_disagreements : case list;  (** decisive static verdicts the oracle contradicts *)
  rs_static_time : float;  (** CPU seconds in the static analyzer *)
  rs_oracle_time : float;  (** CPU seconds in the sampling oracle *)
}

val run : ?max_points:int -> seed:int -> n:int -> unit -> report
(** Fuzz [n] seeded plans; [max_points] is forwarded to the oracle. *)

val unknown_rate : report -> float
(** Fraction of the corpus the static analyzer declined to decide. *)

val passed : ?max_unknown_rate:float -> report -> bool
(** The CI gate: no disagreements and [unknown_rate] below the bound
    (default 0.2). *)

val pp_report : Format.formatter -> report -> unit
(** Summary line plus one replayable line per disagreement. *)
