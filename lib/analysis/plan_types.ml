(* A static type system for the plan language.

   The typing environment mirrors exactly the part of a [Poly.t] schedule
   that decides whether a [Plan_lint.step] is applicable and useful: the
   iteration domain (channel state) and the mixed-radix digit structure of
   every loop.  Per-loop annotations (unroll, vectorize, parallelize) are
   erased — they never influence applicability — which makes the judgment
   a pure fold over abstract states and keeps the enumerator's state space
   small.

   The judgment is deliberately *strict*: a step is well-typed iff the
   linter finds nothing at all — neither an error (the step would be
   rejected or would raise [Poly.Illegal]) nor a warning (the step would
   apply but change nothing).  Strictness buys an exact characterization,
   [check] succeeds ⇔ [Plan_lint.lint] is clean, which the differential
   fuzzer in {!Sanitizer} holds in both directions. *)

type env = {
  te_domain : (string * int) list;
  te_loops : Poly.digit list list;
}

let env_of_schedule (t : Poly.t) =
  { te_domain = t.Poly.domain;
    te_loops = List.map (fun (l : Poly.loop) -> l.Poly.digits) t.Poly.loops }

let env_of_nest nest = env_of_schedule (Loop_nest.baseline_schedule nest)

let schedule_of_env env : Poly.t =
  { Poly.domain = env.te_domain;
    loops =
      List.map
        (fun digits ->
          { Poly.digits; unroll = 1; vectorized = false; prefetched = false;
            parallelized = false; bind = None })
        env.te_loops;
    neural_log = [] }

let loop_count env = List.length env.te_loops

let loop_extent digits =
  List.fold_left (fun acc (d : Poly.digit) -> acc * d.Poly.extent) 1 digits

let equal a b = a.te_domain = b.te_domain && a.te_loops = b.te_loops

let rule_name = function
  | Plan_lint.Interchange _ -> "T-Interchange"
  | Plan_lint.Reorder _ -> "T-Reorder"
  | Plan_lint.Split _ -> "T-Split"
  | Plan_lint.Tile _ -> "T-Tile"
  | Plan_lint.Fuse _ -> "T-Fuse"
  | Plan_lint.Unroll _ -> "T-Unroll"
  | Plan_lint.Vectorize _ -> "T-Vectorize"
  | Plan_lint.Parallelize _ -> "T-Parallelize"
  | Plan_lint.Group _ -> "T-Group"
  | Plan_lint.Bottleneck _ -> "T-Bottleneck"
  | Plan_lint.Depthwise -> "T-Depthwise"

(* --- printing ---------------------------------------------------------- *)

let digit_name (d : Poly.digit) =
  match d.Poly.contribs with
  | [] -> "_"
  | [ { Poly.src; weight = 1 } ] -> src
  | [ { Poly.src; weight } ] -> Printf.sprintf "%s/%d" src weight
  | contribs -> String.concat "+" (List.map (fun (c : Poly.contrib) -> c.Poly.src) contribs)

let pp ppf env =
  Format.fprintf ppf "@[<h>%s ⊢ %s@]"
    (String.concat " "
       (List.map (fun (n, e) -> Printf.sprintf "%s<%d" n e) env.te_domain))
    (String.concat " "
       (List.map
          (fun digits ->
            Printf.sprintf "%s[%d]"
              (String.concat "." (List.map digit_name digits))
              (loop_extent digits))
          env.te_loops))

(* --- helpers mirroring the Poly transformations ------------------------ *)

let update_at pos f loops = List.mapi (fun i l -> if i = pos then f l else l) loops

(* Position of a loop consisting of exactly the iterator's single
   weight-1 digit at full domain extent; the *last* match, as in
   [Poly.whole_loop_of]. *)
let whole_loop_of env name =
  match List.assoc_opt name env.te_domain with
  | None -> None
  | Some extent ->
      let found = ref None in
      List.iteri
        (fun li digits ->
          match digits with
          | [ { Poly.contribs = [ { Poly.src; weight = 1 } ]; extent = e } ]
            when src = name && e = extent ->
              found := Some li
          | _ -> ())
        env.te_loops;
      !found

(* The leading (highest-weight) digit of an iterator: first occurrence of
   the maximal weight in loop-then-digit order, as in [Poly.bottleneck]. *)
let leading_digit env name =
  let best = ref None in
  List.iteri
    (fun li digits ->
      List.iteri
        (fun di (d : Poly.digit) ->
          List.iter
            (fun (c : Poly.contrib) ->
              if c.Poly.src = name then
                match !best with
                | Some (_, _, w) when w >= c.Poly.weight -> ()
                | _ -> best := Some (li, di, c.Poly.weight))
            d.Poly.contribs)
        digits)
    env.te_loops;
  match !best with
  | None -> None
  | Some (li, di, _) -> Some (li, di, List.nth (List.nth env.te_loops li) di)

(* Mirror of [Poly.group]'s loop surgery; all preconditions already
   checked by the caller. *)
let group_loops env ~co ~ci ~factor ~pco ~pci =
  let eco = List.assoc co env.te_domain and eci = List.assoc ci env.te_domain in
  let slice =
    [ { Poly.contribs =
          [ { Poly.src = co; weight = eco / factor };
            { Poly.src = ci; weight = eci / factor } ];
        extent = factor } ]
  in
  let co_inner = [ { Poly.contribs = [ { Poly.src = co; weight = 1 } ]; extent = eco / factor } ] in
  let ci_inner = [ { Poly.contribs = [ { Poly.src = ci; weight = 1 } ]; extent = eci / factor } ] in
  let keep = List.filter (fun l -> loop_extent l > 1) in
  List.concat
    (List.mapi
       (fun i l ->
         if i = pco then keep [ slice; co_inner ]
         else if i = pci then keep [ ci_inner ]
         else [ l ])
       env.te_loops)

(* --- the judgment ------------------------------------------------------ *)

let infer env step =
  let n = loop_count env in
  let rule = rule_name step in
  let bad_dim i =
    if i < 0 || i >= n then
      [ Diagnostic.error ~loop:i ~code:"bad-dimension"
          "%s: dimension %d is out of range (env has %d loops)" rule i n ]
    else []
  in
  let split_like i f =
    match bad_dim i with
    | _ :: _ as ds -> Error ds
    | [] -> (
        let digits = List.nth env.te_loops i in
        if f = 1 then
          Error
            [ Diagnostic.error ~loop:i ~code:"useless-step"
                "%s: factor 1 leaves the schedule unchanged" rule ]
        else
          match digits with
          | [ d ] ->
              if f <= 0 || d.Poly.extent mod f <> 0 then
                Error
                  [ Diagnostic.error ~loop:i ~code:"indivisible-tile"
                      "%s: factor %d does not divide the loop extent %d" rule f
                        d.Poly.extent ]
              else
                let outer =
                  [ { Poly.contribs =
                        List.map
                          (fun (c : Poly.contrib) -> { c with Poly.weight = c.Poly.weight * f })
                          d.Poly.contribs;
                      extent = d.Poly.extent / f } ]
                in
                let inner = [ { d with Poly.extent = f } ] in
                Ok (outer, inner)
          | _ ->
              Error
                [ Diagnostic.error ~loop:i ~code:"fused-loop"
                    "%s: loop %d is fused; split before fusing" rule i ])
  in
  let group_like ~co ~ci ~factor =
    match (List.assoc_opt co env.te_domain, List.assoc_opt ci env.te_domain) with
    | None, _ | _, None ->
        Error
          [ Diagnostic.error ~code:"unknown-iterator"
              "%s: needs %s and %s iterators in the domain" rule co ci ]
    | Some eco, Some eci ->
        if factor <= 1 then
          Error
            [ Diagnostic.error ~code:"degenerate-groups"
                "%s: group count %d is degenerate (must exceed 1)" rule factor ]
        else if eco mod factor <> 0 || eci mod factor <> 0 then
          Error
            [ Diagnostic.error ~code:"indivisible-channel"
                "%s: group count %d must divide both %s (%d) and %s (%d)" rule
                  factor co eco ci eci ]
        else
          match (whole_loop_of env co, whole_loop_of env ci) with
          | Some pco, Some pci ->
              Ok { env with te_loops = group_loops env ~co ~ci ~factor ~pco ~pci }
          | None, _ ->
              Error
                [ Diagnostic.error ~code:"not-whole-loop"
                    "%s: %s must be a whole un-split loop" rule co ]
          | _, None ->
              Error
                [ Diagnostic.error ~code:"not-whole-loop"
                    "%s: %s must be a whole un-split loop" rule ci ]
  in
  match step with
  | Plan_lint.Interchange (i, j) -> (
      match bad_dim i @ bad_dim j with
      | _ :: _ as ds -> Error ds
      | [] ->
          if i = j then
            Error
              [ Diagnostic.error ~loop:i ~code:"useless-step"
                  "%s: interchange of dimension %d with itself is a no-op" rule i ]
          else
            let li = List.nth env.te_loops i and lj = List.nth env.te_loops j in
            Ok
              { env with
                te_loops =
                  List.mapi
                    (fun k l -> if k = i then lj else if k = j then li else l)
                    env.te_loops })
  | Plan_lint.Reorder p ->
      if List.length p <> n || List.sort_uniq compare p <> List.init n (fun i -> i)
      then
        Error
          [ Diagnostic.error ~code:"bad-dimension"
              "%s: reorder must be a permutation of 0..%d, got [%s]" rule (n - 1)
                (String.concat "," (List.map string_of_int p)) ]
      else if p = List.init n (fun i -> i) then
        Error
          [ Diagnostic.error ~code:"useless-step"
              "%s: reorder by the identity permutation is a no-op" rule ]
      else
        let arr = Array.of_list env.te_loops in
        Ok { env with te_loops = List.map (fun i -> arr.(i)) p }
  | Plan_lint.Split (i, f) -> (
      match split_like i f with
      | Error ds -> Error ds
      | Ok (outer, inner) ->
          let rec insert k = function
            | [] -> []
            | l :: rest ->
                if k = i then outer :: inner :: rest else l :: insert (k + 1) rest
          in
          Ok { env with te_loops = insert 0 env.te_loops })
  | Plan_lint.Tile (i, f) -> (
      match split_like i f with
      | Error ds -> Error ds
      | Ok (outer, inner) ->
          (* As [Poly.tile]: split, then sink the fresh inner loop innermost. *)
          let rec insert k = function
            | [] -> []
            | l :: rest -> if k = i then outer :: rest else l :: insert (k + 1) rest
          in
          Ok { env with te_loops = insert 0 env.te_loops @ [ inner ] })
  | Plan_lint.Fuse i -> (
      match bad_dim i with
      | _ :: _ as ds -> Error ds
      | [] ->
          if i + 1 >= n then
            Error
              [ Diagnostic.error ~loop:i ~code:"bad-dimension"
                  "%s: fuse needs a loop below dimension %d" rule i ]
          else
            let fused = List.nth env.te_loops i @ List.nth env.te_loops (i + 1) in
            let rec rebuild k = function
              | [] -> []
              | _ :: rest when k = i + 1 -> rebuild (k + 1) rest
              | l :: rest -> (if k = i then fused else l) :: rebuild (k + 1) rest
            in
            Ok { env with te_loops = rebuild 0 env.te_loops })
  | Plan_lint.Unroll (i, f) -> (
      match bad_dim i with
      | _ :: _ as ds -> Error ds
      | [] ->
          if f <= 1 then
            Error
              [ Diagnostic.error ~loop:i ~code:"useless-step"
                  "%s: unroll by %d leaves the loop rolled" rule f ]
          else
            let e = loop_extent (List.nth env.te_loops i) in
            if f > e then
              Error
                [ Diagnostic.error ~loop:i ~code:"unroll-overflow"
                    "%s: unroll factor %d exceeds the loop extent %d" rule f e ]
            else Ok env)
  | Plan_lint.Vectorize i | Plan_lint.Parallelize i -> (
      match bad_dim i with _ :: _ as ds -> Error ds | [] -> Ok env)
  | Plan_lint.Group f -> group_like ~co:"co" ~ci:"ci" ~factor:f
  | Plan_lint.Bottleneck (it, f) -> (
      match List.assoc_opt it env.te_domain with
      | None ->
          Error
            [ Diagnostic.error ~code:"unknown-iterator"
                "%s: bottleneck names unknown iterator %s" rule it ]
      | Some e ->
          if f <= 1 then
            Error
              [ Diagnostic.error ~code:"degenerate-factor"
                  "%s: bottleneck factor %d is degenerate (must exceed 1)" rule f ]
          else if e mod f <> 0 then
            Error
              [ Diagnostic.error ~code:"indivisible-extent"
                  "%s: bottleneck factor %d does not divide the %s extent %d" rule
                    f it e ]
          else
            match leading_digit env it with
            | None ->
                Error
                  [ Diagnostic.error ~code:"unscheduled-iterator"
                      "%s: iterator %s is not scheduled" rule it ]
            | Some (li, di, d) ->
                if List.length d.Poly.contribs > 1 then
                  Error
                    [ Diagnostic.error ~loop:li ~code:"shared-digit"
                        "%s: leading digit of %s is shared (grouped)" rule it ]
                else if d.Poly.extent mod f <> 0 then
                  Error
                    [ Diagnostic.error ~loop:li ~code:"indivisible-digit"
                        "%s: factor %d does not divide the leading extent %d" rule
                          f d.Poly.extent ]
                else
                  let d' = { d with Poly.extent = d.Poly.extent / f } in
                  Ok
                    { te_domain =
                        List.map
                          (fun (name, ex) -> if name = it then (name, ex / f) else (name, ex))
                          env.te_domain;
                      te_loops =
                        update_at li
                          (fun digits ->
                            List.mapi (fun k x -> if k = di then d' else x) digits)
                          env.te_loops })
  | Plan_lint.Depthwise -> (
      match (List.assoc_opt "co" env.te_domain, List.assoc_opt "ci" env.te_domain) with
      | None, _ | _, None ->
          Error
            [ Diagnostic.error ~code:"unknown-iterator"
                "%s: depthwise needs co and ci iterators in the domain" rule ]
      | Some eco, Some eci ->
          if eco <> eci then
            Error
              [ Diagnostic.error ~code:"depthwise-mismatch"
                  "%s: depthwise requires equal channel extents, got co=%d ci=%d"
                    rule eco eci ]
          else group_like ~co:"co" ~ci:"ci" ~factor:eco)

let check ?(deps = []) env steps =
  let rec go env = function
    | [] -> Ok env
    | s :: rest -> (
        match infer env s with Ok e -> go e rest | Error _ as e -> e)
  in
  match go env steps with
  | Error _ as e -> e
  | Ok final ->
      if deps = [] then Ok final
      else (
        match Direction.check (schedule_of_env final) deps with
        | Direction.Legal -> Ok final
        | Direction.Illegal ds ->
            Error
              (Diagnostic.error ~code:"illegal-dependence"
                 "T-Legal: the composed schedule reverses a dependence"
              :: ds)
        | Direction.Unknown why ->
            Error
              [ Diagnostic.error ~code:"legality-unknown"
                  "T-Legal: direction analysis is undecided: %s" why ])

(* --- rule inversion ----------------------------------------------------- *)

let divisors_gt1 e = List.filter (fun d -> e mod d = 0) (List.init (max 0 (e - 1)) (fun i -> i + 2))

let well_typed env s = match infer env s with Ok _ -> true | Error _ -> false

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

(* Candidate argument sets per step kind, derived from the env (divisor
   sets, dimension ranges, domain iterators) and kept only when [infer]
   accepts them.  The generators are complete — every well-typed
   instantiation of the kind is produced — so [choices] is exactly the
   set of steps the judgment accepts, which the exhaustiveness test pins
   against a brute-force syntactic universe. *)
let choices_by_kind env =
  let n = loop_count env in
  let dims = List.init n (fun i -> i) in
  let extents = List.map loop_extent env.te_loops in
  let keep = List.filter (well_typed env) in
  let interchanges =
    keep
      (List.concat_map
         (fun i -> List.filter_map (fun j -> if i <> j then Some (Plan_lint.Interchange (i, j)) else None) dims)
         dims)
  in
  let splits mk =
    keep
      (List.concat_map
         (fun i -> List.map (fun f -> mk i f) (divisors_gt1 (List.nth extents i)))
         dims)
  in
  let fuses = keep (List.map (fun i -> Plan_lint.Fuse i) dims) in
  let unrolls =
    keep
      (List.concat_map
         (fun i ->
           List.init
             (max 0 (List.nth extents i - 1))
             (fun k -> Plan_lint.Unroll (i, k + 2)))
         dims)
  in
  let vectorizes = keep (List.map (fun i -> Plan_lint.Vectorize i) dims) in
  let parallelizes = keep (List.map (fun i -> Plan_lint.Parallelize i) dims) in
  let groups =
    match (List.assoc_opt "co" env.te_domain, List.assoc_opt "ci" env.te_domain) with
    | Some eco, Some eci ->
        keep (List.map (fun f -> Plan_lint.Group f) (divisors_gt1 (min eco eci)))
    | _ -> []
  in
  let bottlenecks =
    keep
      (List.concat_map
         (fun (it, e) -> List.map (fun f -> Plan_lint.Bottleneck (it, f)) (divisors_gt1 e))
         env.te_domain)
  in
  let depthwises = keep [ Plan_lint.Depthwise ] in
  [ interchanges; splits (fun i f -> Plan_lint.Split (i, f));
    splits (fun i f -> Plan_lint.Tile (i, f)); fuses; unrolls; vectorizes;
    parallelizes; groups; bottlenecks; depthwises ]

let reorder_choices env =
  let n = loop_count env in
  let identity = List.init n (fun i -> i) in
  List.filter_map
    (fun p -> if p = identity then None else Some (Plan_lint.Reorder p))
    (permutations identity)

let choices env =
  match choices_by_kind env with
  | interchanges :: rest -> interchanges @ reorder_choices env @ List.concat rest
  | [] -> reorder_choices env

let enumerate ~max_len env =
  let rec go env len =
    if len <= 0 then []
    else
      List.concat_map
        (fun s ->
          match infer env s with
          | Error _ -> []
          | Ok env' -> [ s ] :: List.map (fun p -> s :: p) (go env' (len - 1)))
        (choices env)
  in
  go env max_len

let sample_step rng env =
  let n = loop_count env in
  let kinds =
    List.filter (fun l -> l <> []) (choices_by_kind env)
    |> List.map (fun l () -> Rng.choice_list rng l)
  in
  let kinds =
    if n >= 2 then
      (fun () ->
        let p = Array.to_list (Rng.permutation rng n) in
        let p =
          if p = List.init n (fun i -> i) then
            (* derange the identity deterministically: swap the outer pair *)
            List.mapi (fun i x -> if i = 0 then 1 else if i = 1 then 0 else x) p
          else p
        in
        Plan_lint.Reorder p)
      :: kinds
    else kinds
  in
  match kinds with [] -> None | ks -> Some ((Rng.choice_list rng ks) ())

let sample_plan rng ~max_len env =
  let len = 1 + Rng.int rng (max 1 max_len) in
  let rec go env acc k =
    if k = 0 then (List.rev acc, env)
    else
      match sample_step rng env with
      | None -> (List.rev acc, env)
      | Some s -> (
          match infer env s with
          | Ok env' -> go env' (s :: acc) (k - 1)
          | Error _ -> (List.rev acc, env))
  in
  go env [] len
