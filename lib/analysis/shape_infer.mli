(** Static shape and channel inference for convolution plans.

    Propagates the dimensions of a {!Loop_nest.conv_nest} through the
    neural transformations a schedule applies (bottleneck, group,
    depthwise) and through {!Conv_impl.t} replacements, flagging channel
    and group divisibility violations before anything is lowered or run.
    Also bounds-checks the quasi-affine accesses of a lowered program by
    interval arithmetic on its index terms. *)

type t = {
  sh_co : int;
  sh_ci : int;
  sh_oh : int;
  sh_ow : int;
  sh_kh : int;
  sh_kw : int;
  sh_groups : int;  (** effective group count, baseline times applied factors *)
}

val of_nest : Loop_nest.conv_nest -> t
(** The untransformed shape of a convolution nest. *)

val extent_of : t -> string -> int option
(** Extent of a convolution iterator ([co], [ci], [oh], [ow], [kh], [kw]),
    [None] for other names. *)

val apply : t -> Poly.neural_op -> (t, Diagnostic.t) result
(** One neural transformation: the transformed shape, or the diagnostic
    explaining why the transformation is ill-formed on this shape. *)

val of_log : Loop_nest.conv_nest -> Poly.neural_op list -> t * Diagnostic.t list
(** Fold {!apply} over a neural log; ill-formed steps contribute their
    diagnostic and leave the shape unchanged. *)

val check_schedule : Loop_nest.conv_nest -> Poly.t -> Diagnostic.t list
(** Replay a schedule's neural log on the nest and cross-check the
    inferred extents against the schedule's own domain ([shape-drift]
    would indicate an internal inconsistency). *)

val check_site : Conv_impl.site -> Diagnostic.t list
(** Internal consistency of a site record itself, independent of any
    implementation choice: positive extents, baseline grouping dividing
    both channel counts, stride tiling the input plane.  The zoo gate runs
    this over every site of every registered family. *)

val check_impl : Conv_impl.site -> Conv_impl.t -> Diagnostic.t list
(** Diagnostic form of {!Conv_impl.valid}: empty exactly when the
    implementation choice is valid for the site, otherwise one diagnostic
    per violated side condition (divisibility, degenerate group counts,
    bottleneck width vs. baseline grouping). *)

val index_max : Loop_nest.lir_loop array -> Loop_nest.index -> int
(** Tight upper bound of a quasi-affine index over the loop space. *)

val bounds_check : Loop_nest.program -> Diagnostic.t list
(** Flag accesses whose {!index_max} reaches past the tensor's element
    count ([out-of-range]), for output, weight and input. *)
