type verdict =
  | Legal
  | Illegal of Diagnostic.t list
  | Unknown of string

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* One digit occurrence in the schedule, with its place in the time vector:
   loop index and radix multiplier inside the loop's mixed-radix value. *)
type dref = {
  r_id : int;
  r_loop : int;
  r_radix : int;
  r_extent : int;
  r_contribs : Poly.contrib list;
}

let digit_refs (t : Poly.t) =
  let refs = ref [] in
  let id = ref 0 in
  List.iteri
    (fun li (l : Poly.loop) ->
      let digits = Array.of_list l.Poly.digits in
      let n = Array.length digits in
      let radix = Array.make n 1 in
      for di = n - 2 downto 0 do
        radix.(di) <- radix.(di + 1) * digits.(di + 1).Poly.extent
      done;
      Array.iteri
        (fun di (d : Poly.digit) ->
          refs :=
            { r_id = !id;
              r_loop = li;
              r_radix = radix.(di);
              r_extent = d.Poly.extent;
              r_contribs = d.Poly.contribs }
            :: !refs;
          incr id)
        digits)
    t.Poly.loops;
  Array.of_list (List.rev !refs)

(* The mixed-radix digit chain of one iterator: its digits sorted by
   ascending weight, extent-1 digits dropped (their value is pinned to 0).
   Every schedule [Poly] can construct keeps chains canonical — weight 1 at
   the bottom, each weight equal to the previous positional step, total
   product equal to the iterator's domain extent — so a non-canonical chain
   is outside the analyzer's theory and yields [Unknown]. *)
let chain_of refs t name =
  let entries =
    Array.to_list refs
    |> List.filter_map (fun r ->
           if r.r_extent <= 1 then None
           else
             match
               List.find_opt (fun (c : Poly.contrib) -> c.Poly.src = name) r.r_contribs
             with
             | Some c -> Some (r, c.Poly.weight)
             | None -> None)
    |> List.sort (fun (_, w1) (_, w2) -> compare w1 w2)
  in
  let extent = Poly.iter_extent t name in
  let expected = ref 1 in
  List.iter
    (fun (r, w) ->
      if w <> !expected then
        unsupported "iterator %s: digit weight %d where %d was expected (non-canonical chain)"
          name w !expected;
      expected := w * r.r_extent)
    entries;
  if !expected <> extent then
    unsupported "iterator %s: digit chain covers %d of extent %d" name !expected extent;
  entries

(* One digit's possible behaviours when the iterator moves by its distance:
   [(carry_out, value_delta, vlo, vhi)] where [vlo..vhi] is the interval of
   ORIGINAL digit values realizing that behaviour (used to join shared
   group digits).  [q] is this digit of |distance| in the chain's radix,
   [cin] the incoming carry (addition) or borrow (subtraction). *)
let digit_cases ~negative ~extent:n ~q ~cin =
  if negative then
    (if q + cin <= n - 1 then [ (0, -(q + cin), q + cin, n - 1) ] else [])
    @ (if q + cin >= 1 then [ (1, n - (q + cin), 0, q + cin - 1) ] else [])
  else
    (if q + cin <= n - 1 then [ (0, q + cin, 0, n - 1 - (q + cin)) ] else [])
    @ (if q + cin >= 1 then [ (1, (q + cin) - n, n - (q + cin), n - 1) ] else [])

(* All carry configurations of one iterator's chain for distance [dx].
   Each configuration is the exact per-digit delta (with its realizing
   value interval) for source points whose shifted image stays inside the
   iterator's extent: the final carry/borrow must be 0, because an
   overflowing pair leaves the domain and is vacuously ordered. *)
let iter_configs chain ~dx =
  let negative = dx < 0 in
  let a = abs dx in
  let qs = List.map (fun ((r : dref), w) -> (r, a / w mod r.r_extent)) chain in
  let rec go cin = function
    | [] -> if cin = 0 then [ [] ] else []
    | (r, q) :: rest ->
        List.concat_map
          (fun (cout, delta, vlo, vhi) ->
            List.map (fun tail -> (r, delta, vlo, vhi) :: tail) (go cout rest))
          (digit_cases ~negative ~extent:r.r_extent ~q ~cin)
  in
  go 0 qs

(* Guard against pathological blowup; real schedules have 2-4 digits per
   iterator and dependences move 1-2 iterators, well under this. *)
let max_configs = 4096

let rec product = function
  | [] -> [ [] ]
  | cs :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun tail -> c :: tail) tails) cs

let check_dep (t : Poly.t) (dep : Poly_legality.dependence) =
  let refs = digit_refs t in
  let label = dep.Poly_legality.dep_label in
  try
    (* Restrict the distance vector to domain iterators with a nonzero
       move; the sampling oracle ignores unknown names the same way. *)
    let moved =
      List.filter_map
        (fun (name, _) ->
          match List.assoc_opt name dep.Poly_legality.distance with
          | Some d when d <> 0 -> Some (name, d)
          | _ -> None)
        t.Poly.domain
    in
    if moved = [] then
      Illegal
        [ Diagnostic.error ~dep:label ~code:"zero-distance"
            "distance vector is zero on this domain: no schedule can order a point \
             strictly after itself" ]
    else if List.exists (fun (name, d) -> abs d >= Poly.iter_extent t name) moved then
      (* The shift always leaves the domain: no dependent pair exists. *)
      Legal
    else begin
      let chains = List.map (fun (name, d) -> (name, d, chain_of refs t name)) moved in
      let moved_names = List.map (fun (n, _, _) -> n) chains in
      let per_iter = List.map (fun (_, d, chain) -> iter_configs chain ~dx:d) chains in
      let total = List.fold_left (fun acc l -> acc * List.length l) 1 per_iter in
      if total > max_configs then
        unsupported "dependence %s: %d carry configurations exceed the analyzer's bound"
          label total;
      (* Join one combined carry configuration into per-digit deltas; [None]
         when infeasible (a shared group digit cannot satisfy both of its
         iterators' chains at once, so no such point pair is enumerated). *)
      let eval_config config =
        let tbl = Hashtbl.create 16 in
        let feasible = ref true in
        List.iter
          (List.iter (fun ((r : dref), delta, vlo, vhi) ->
               if !feasible then
                 match Hashtbl.find_opt tbl r.r_id with
                 | None ->
                     (* A contributor outside the moved set keeps its share of
                        the digit fixed, pinning the digit's delta to 0. *)
                     let pinned =
                       List.exists
                         (fun (c : Poly.contrib) -> not (List.mem c.Poly.src moved_names))
                         r.r_contribs
                     in
                     if pinned && delta <> 0 then feasible := false
                     else Hashtbl.add tbl r.r_id (r, delta, vlo, vhi)
                 | Some (_, delta', vlo', vhi') ->
                     let lo = max vlo vlo' and hi = min vhi vhi' in
                     if delta <> delta' || lo > hi then feasible := false
                     else Hashtbl.replace tbl r.r_id (r, delta, lo, hi)))
          config;
        if not !feasible then None
        else begin
          let dt = Array.make (Poly.loop_count t) 0 in
          Hashtbl.iter
            (fun _ ((r : dref), delta, _, _) ->
              dt.(r.r_loop) <- dt.(r.r_loop) + (delta * r.r_radix))
            tbl;
          Some dt
        end
      in
      let names = Poly.loop_names t in
      let dir_string dt =
        String.concat ","
          (Array.to_list
             (Array.map (fun d -> if d > 0 then "<" else if d = 0 then "=" else ">") dt))
      in
      let diags = ref [] in
      List.iter
        (fun config ->
          match eval_config config with
          | None -> ()
          | Some dt -> (
              let rec first i =
                if i = Array.length dt then None
                else if dt.(i) <> 0 then Some i
                else first (i + 1)
              in
              match first 0 with
              | Some i when dt.(i) > 0 -> ()
              | Some i ->
                  diags :=
                    Diagnostic.error ~loop:i ~dep:label ~code:"dependence-violation"
                      "dependence '%s' is reversed at schedule dimension %d (loop %s): \
                       direction vector (%s)"
                      label i names.(i) (dir_string dt)
                    :: !diags
              | None ->
                  diags :=
                    Diagnostic.error ~dep:label ~code:"time-equal"
                      "dependence '%s' maps dependent points to the same time vector"
                      label
                    :: !diags))
        (product per_iter);
      match List.sort_uniq compare (List.rev !diags) with
      | [] -> Legal
      | ds -> Illegal ds
    end
  with Unsupported msg -> Unknown msg

let check t deps =
  let illegal = ref [] in
  let unknown = ref None in
  List.iter
    (fun dep ->
      match check_dep t dep with
      | Legal -> ()
      | Illegal ds -> illegal := !illegal @ ds
      | Unknown m -> if !unknown = None then unknown := Some m)
    deps;
  if !illegal <> [] then Illegal !illegal
  else match !unknown with Some m -> Unknown m | None -> Legal

let to_bool = function
  | Legal -> Some true
  | Illegal _ -> Some false
  | Unknown _ -> None

let agrees verdict oracle =
  match to_bool verdict with None -> true | Some b -> b = oracle

let pp ppf = function
  | Legal -> Format.pp_print_string ppf "legal"
  | Unknown m -> Format.fprintf ppf "unknown (%s)" m
  | Illegal ds ->
      Format.fprintf ppf "@[<v>illegal:@,%a@]" Diagnostic.pp_list ds
