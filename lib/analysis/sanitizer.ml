type case = {
  cs_index : int;
  cs_plan : string;
  cs_deps : string;
  cs_static : Direction.verdict;
  cs_oracle : bool;
}

type report = {
  rs_total : int;
  rs_agree_legal : int;
  rs_agree_illegal : int;
  rs_unknown : int;
  rs_disagreements : case list;
  rs_static_time : float;
  rs_oracle_time : float;
}

let unknown_rate r =
  if r.rs_total = 0 then 0.0 else float_of_int r.rs_unknown /. float_of_int r.rs_total

let passed ?(max_unknown_rate = 0.2) r =
  r.rs_disagreements = [] && unknown_rate r < max_unknown_rate

(* Divisor-friendly extents keep most random factors applicable, so the
   corpus exercises deep transformation chains rather than dying on the
   first indivisible split. *)
let random_nest rng =
  let ch = [| 4; 8; 16 |] and sp = [| 4; 6; 8 |] and k = [| 1; 3 |] in
  Loop_nest.conv_nest_of_dims ~co:(Rng.choice rng ch) ~ci:(Rng.choice rng ch)
    ~oh:(Rng.choice rng sp) ~ow:(Rng.choice rng sp) ~k:(Rng.choice rng k) ~stride:1
    ~groups:1
  |> fun n -> { n with Loop_nest.nc_ow = n.Loop_nest.nc_oh }

let divisors n = List.filter (fun d -> n mod d = 0) [ 2; 3; 4; 8 ]

(* One random transformation applicable to the current schedule, [None]
   when the dice land on something inapplicable (caller just retries). *)
let random_step rng (s : Poly.t) =
  let n = Poly.loop_count s in
  let pos () = Rng.int rng n in
  match Rng.int rng 8 with
  | 0 ->
      let i = pos () and j = pos () in
      if i = j then None else Some (Plan_lint.Interchange (i, j))
  | 1 -> Some (Plan_lint.Reorder (Array.to_list (Rng.permutation rng n)))
  | 2 | 3 -> (
      let p = pos () in
      let e = Poly.loop_extent (List.nth s.Poly.loops p) in
      match divisors e with
      | [] -> None
      | ds ->
          let f = Rng.choice_list rng ds in
          Some (if Rng.bool rng then Plan_lint.Split (p, f) else Plan_lint.Tile (p, f)))
  | 4 ->
      let p = pos () in
      Some (Plan_lint.Unroll (p, Rng.choice rng [| 2; 4 |]))
  | 5 -> (
      let eco = Poly.iter_extent s "co" and eci = Poly.iter_extent s "ci" in
      match List.filter (fun d -> eci mod d = 0) (divisors eco) with
      | [] -> None
      | ds -> Some (Plan_lint.Group (Rng.choice_list rng ds)))
  | 6 -> (
      let it = Rng.choice rng [| "co"; "ci"; "oh" |] in
      match divisors (Poly.iter_extent s it) with
      | [] -> None
      | ds -> Some (Plan_lint.Bottleneck (it, Rng.choice_list rng ds)))
  | _ ->
      if Poly.iter_extent s "co" = Poly.iter_extent s "ci" then
        Some Plan_lint.Depthwise
      else None

let random_plan rng s =
  let steps = 1 + Rng.int rng 4 in
  let rec build s acc tries remaining =
    if remaining = 0 || tries > 20 then (s, List.rev acc)
    else
      match random_step rng s with
      | None -> build s acc (tries + 1) remaining
      | Some step -> (
          match Plan_lint.apply s step with
          | s' -> build s' (step :: acc) tries (remaining - 1)
          | exception Poly.Illegal _ -> build s acc (tries + 1) remaining)
  in
  build s [] 0 steps

(* Dependence sets mix the convolution's real accumulation constraints
   with adversarial distances (stencil-like mixed signs, occasional zero
   vectors) to probe both verdict polarities. *)
let random_deps rng =
  let reductions =
    List.filter (fun _ -> Rng.bool rng) [ "ci"; "kh"; "kw" ]
    |> Poly_legality.reduction_dependences
  in
  let adversarial =
    if Rng.int rng 3 = 0 then
      let iters = Rng.sample rng (1 + Rng.int rng 2) [| "co"; "ci"; "oh"; "ow" |] in
      [ { Poly_legality.distance =
            Array.to_list (Array.map (fun it -> (it, Rng.int rng 5 - 2)) iters);
          dep_label = "fuzz" } ]
    else []
  in
  match reductions @ adversarial with
  | [] -> Poly_legality.reduction_dependences [ "ci" ]
  | deps -> deps

let run ?max_points ~seed ~n () =
  let rng = Rng.create seed in
  let static_time = ref 0.0 and oracle_time = ref 0.0 in
  let agree_legal = ref 0 and agree_illegal = ref 0 and unknown = ref 0 in
  let disagreements = ref [] in
  for i = 0 to n - 1 do
    let case_rng = Rng.split rng in
    let nest = random_nest case_rng in
    let base = Loop_nest.baseline_schedule nest in
    let s, steps = random_plan case_rng base in
    let deps = random_deps case_rng in
    let t0 = Sys.time () in
    let static = Direction.check s deps in
    let t1 = Sys.time () in
    let oracle =
      match max_points with
      | Some m -> Poly_legality.check ~max_points:m s deps
      | None -> Poly_legality.check s deps
    in
    let t2 = Sys.time () in
    static_time := !static_time +. (t1 -. t0);
    oracle_time := !oracle_time +. (t2 -. t1);
    (match Direction.to_bool static with
    | None -> incr unknown
    | Some b when b = oracle -> if b then incr agree_legal else incr agree_illegal
    | Some _ ->
        let deps_str =
          String.concat " + "
            (List.map
               (fun (d : Poly_legality.dependence) ->
                 d.Poly_legality.dep_label ^ ":"
                 ^ String.concat ","
                     (List.map
                        (fun (it, v) -> Printf.sprintf "%s%+d" it v)
                        d.Poly_legality.distance))
               deps)
        in
        disagreements :=
          { cs_index = i;
            cs_plan = Plan_lint.plan_to_string steps;
            cs_deps = deps_str;
            cs_static = static;
            cs_oracle = oracle }
          :: !disagreements)
  done;
  { rs_total = n;
    rs_agree_legal = !agree_legal;
    rs_agree_illegal = !agree_illegal;
    rs_unknown = !unknown;
    rs_disagreements = List.rev !disagreements;
    rs_static_time = !static_time;
    rs_oracle_time = !oracle_time }

(* --- typed-vs-oracle differential fuzzer ------------------------------- *)

type typed_case = {
  tp_index : int;
  tp_plan : string;
  tp_kind : string;
  tp_detail : string;
}

type typed_report = {
  tt_total : int;
  tt_typed_lint_clean : int;
  tt_env_agree : int;
  tt_legal_agree : int;
  tt_unknown : int;
  tt_survivors_typed : int;
  tt_dirty_rejected : int;
  tt_disagreements : typed_case list;
}

let typed_unknown_rate r =
  if r.tt_total = 0 then 0.0 else float_of_int r.tt_unknown /. float_of_int r.tt_total

let typed_passed ?(max_unknown_rate = 0.2) r =
  r.tt_disagreements = [] && typed_unknown_rate r < max_unknown_rate

(* Each case fuzzes both directions of the typing judgment's exactness:
   a plan emitted by the typed generator must lint clean, predict the
   applied schedule's abstraction digit-for-digit and agree with the
   sampling oracle whenever [T-Legal] is decisive; a rejection-sampled
   random plan must be well-typed exactly when its lint is clean (zero
   diagnostics). *)
let run_typed ?max_points ~seed ~n () =
  let rng = Rng.create seed in
  let clean = ref 0 and env_agree = ref 0 and legal_agree = ref 0 in
  let unknown = ref 0 and survivors = ref 0 and dirty = ref 0 in
  let disagreements = ref [] in
  let fail i steps kind fmt =
    Printf.ksprintf
      (fun detail ->
        disagreements :=
          { tp_index = i;
            tp_plan = Plan_lint.plan_to_string steps;
            tp_kind = kind;
            tp_detail = detail }
          :: !disagreements)
      fmt
  in
  let oracle s deps =
    match max_points with
    | Some m -> Poly_legality.check ~max_points:m s deps
    | None -> Poly_legality.check s deps
  in
  for i = 0 to n - 1 do
    let case_rng = Rng.split rng in
    let nest = random_nest case_rng in
    let base = Loop_nest.baseline_schedule nest in
    let env0 = Plan_types.env_of_schedule base in
    (* Direction 1: well-typed by construction ⇒ lints clean, abstracts
       the applied schedule exactly, and [T-Legal] agrees with the
       oracle. *)
    let steps, env_t = Plan_types.sample_plan case_rng ~max_len:4 env0 in
    (match Plan_lint.lint base steps with
    | Some s, [] ->
        incr clean;
        if Plan_types.equal (Plan_types.env_of_schedule s) env_t then incr env_agree
        else fail i steps "env-mismatch" "predicted env diverges from the applied schedule";
        let deps = random_deps case_rng in
        let legal = oracle s deps in
        (match Plan_types.check ~deps env0 steps with
        | Ok _ ->
            if legal then incr legal_agree
            else fail i steps "legal-but-oracle-illegal" "T-Legal accepted an oracle-illegal plan"
        | Error ds -> (
            match ds with
            | { Diagnostic.d_code = "legality-unknown"; _ } :: _ -> incr unknown
            | { Diagnostic.d_code = "illegal-dependence"; _ } :: _ ->
                if legal then
                  fail i steps "illegal-but-oracle-legal" "T-Legal rejected an oracle-legal plan"
                else incr legal_agree
            | _ ->
                fail i steps "typed-plan-rejected" "the generator emitted an ill-typed plan"))
    | _, diags ->
        fail i steps "typed-but-lint-dirty" "lint found: %s"
          (String.concat "; " (List.map (fun d -> d.Diagnostic.d_msg) diags)));
    (* Direction 2: rejection-sampled plans are well-typed exactly when
       their lint is clean. *)
    let s_r, steps_r = random_plan case_rng base in
    (match (Plan_lint.lint base steps_r, Plan_types.check env0 steps_r) with
    | (Some s, []), Ok env ->
        if Plan_types.equal (Plan_types.env_of_schedule s) env then begin
          incr survivors;
          ignore s_r
        end
        else fail i steps_r "env-mismatch" "survivor env diverges from the applied schedule"
    | (Some _, []), Error ds ->
        fail i steps_r "survivor-ill-typed" "clean survivor rejected: %s"
          (match ds with d :: _ -> d.Diagnostic.d_msg | [] -> "")
    | (_, _ :: _), Error _ -> incr dirty
    | (_, diags), Ok _ ->
        fail i steps_r "dirty-but-well-typed" "lint found %d diagnostics yet the plan typed"
          (List.length diags)
    | (None, []), _ ->
        (* unreachable: lint only aborts with an error diagnostic *)
        fail i steps_r "lint-aborted-silently" "lint returned no schedule and no diagnostics")
  done;
  { tt_total = n;
    tt_typed_lint_clean = !clean;
    tt_env_agree = !env_agree;
    tt_legal_agree = !legal_agree;
    tt_unknown = !unknown;
    tt_survivors_typed = !survivors;
    tt_dirty_rejected = !dirty;
    tt_disagreements = List.rev !disagreements }

let pp_typed_report ppf r =
  Format.fprintf ppf
    "@[<v>typecheck-fuzz: %d cases · %d typed-lint-clean · %d env-agree · %d \
     legal-agree · %d unknown (%.1f%%) · %d survivors-typed · %d dirty-rejected \
     · %d disagreements@]"
    r.tt_total r.tt_typed_lint_clean r.tt_env_agree r.tt_legal_agree r.tt_unknown
    (100.0 *. typed_unknown_rate r)
    r.tt_survivors_typed r.tt_dirty_rejected
    (List.length r.tt_disagreements);
  List.iter
    (fun c ->
      Format.fprintf ppf "@,DISAGREEMENT #%d [%s] plan=[%s]: %s" c.tp_index c.tp_kind
        c.tp_plan c.tp_detail)
    r.tt_disagreements

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>sanitizer: %d plans · %d agree-legal · %d agree-illegal · %d unknown \
     (%.1f%%) · %d disagreements@,static %.3fs vs oracle %.3fs (%.1fx)@]"
    r.rs_total r.rs_agree_legal r.rs_agree_illegal r.rs_unknown
    (100.0 *. unknown_rate r)
    (List.length r.rs_disagreements)
    r.rs_static_time r.rs_oracle_time
    (if r.rs_static_time > 0.0 then r.rs_oracle_time /. r.rs_static_time else 0.0);
  List.iter
    (fun c ->
      Format.fprintf ppf "@,DISAGREEMENT #%d plan=[%s] deps=[%s] oracle=%b static=%a"
        c.cs_index c.cs_plan c.cs_deps c.cs_oracle Direction.pp c.cs_static)
    r.rs_disagreements
