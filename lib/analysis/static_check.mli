(** Entry points tying the static analyzers to the search stack.

    [candidate] is the pre-Fisher filter used by [Unified_search]: a purely
    static validity scan over a candidate's per-site plans that finds the
    same first-invalid site the dynamic [Site_plan.valid] sweep would.
    [analyze_model] drives the CLI's [--analyze] mode: it runs direction-
    vector legality, shape inference and access bounds checking over every
    transformable site of a model, either for the standard sequence menu
    or for one explicit plan. *)

val conv_dependences : Poly_legality.dependence list
(** The accumulation-order dependences of a convolution ([ci], [kh],
    [kw]). *)

val nest_of_site : Conv_impl.site -> Loop_nest.conv_nest
(** The convolution loop nest of a site (square output plane). *)

val candidate :
  Models.t -> Site_plan.t array -> (int * Diagnostic.t list) option
(** First site (in index order) whose plan is statically invalid for the
    model, with the diagnostics; [None] when the candidate is clean.
    Agrees exactly with [Site_plan.valid] site by site. *)

type site_report = {
  sr_site : int;  (** site index *)
  sr_label : string;  (** site label *)
  sr_subject : string;  (** what was analyzed: a sequence name or a plan *)
  sr_verdict : Direction.verdict;  (** dependence-direction legality *)
  sr_diags : Diagnostic.t list;  (** shape, lint and bounds findings *)
}

val analyze_plan :
  site:int -> label:string -> Loop_nest.conv_nest -> Plan_lint.step list -> site_report
(** Lint and analyze one explicit plan against a nest's baseline
    schedule. *)

val analyze_model : ?plan:Plan_lint.step list -> Models.t -> site_report list
(** Analyze every site of a model: with [?plan], that plan per site;
    otherwise every schedule of the site's standard sequence menu. *)

val report_errors : site_report list -> Diagnostic.t list
(** All error findings in a report, including the diagnostics of
    [Illegal] verdicts — nonempty means the CLI should exit non-zero. *)

val pp_report : Format.formatter -> site_report list -> unit
(** Render a report, one block per analyzed subject (inside an open
    vertical box). *)
