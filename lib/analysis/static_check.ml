let conv_dependences = Poly_legality.reduction_dependences [ "ci"; "kh"; "kw" ]

let nest_of_site (site : Conv_impl.site) =
  let so = Conv_impl.spatial_out site in
  { Loop_nest.nc_co = site.Conv_impl.out_channels;
    nc_ci = site.Conv_impl.in_channels;
    nc_oh = so;
    nc_ow = so;
    nc_kh = site.Conv_impl.kernel;
    nc_kw = site.Conv_impl.kernel;
    nc_stride = site.Conv_impl.stride;
    nc_groups = site.Conv_impl.groups }

(* The pre-Fisher candidate filter.  Scans sites in index order and
   returns the first one whose plan the shape analysis rejects — the same
   site the dynamic [Site_plan.valid] sweep would trip over, because
   [Shape_infer.check_impl] is diagnostically equivalent to
   [Conv_impl.valid].  [None] means the candidate passes the filter. *)
let candidate (model : Models.t) (plans : Site_plan.t array) =
  let n = Array.length plans in
  let rec scan i =
    if i >= n then None
    else
      let diags =
        Shape_infer.check_impl model.Models.sites.(i) plans.(i).Site_plan.sp_impl
      in
      if List.exists Diagnostic.is_error diags then Some (i, diags) else scan (i + 1)
  in
  scan 0

type site_report = {
  sr_site : int;
  sr_label : string;
  sr_subject : string;
  sr_verdict : Direction.verdict;
  sr_diags : Diagnostic.t list;
}

(* The nest a schedule's neural log replays over, reconstructed from the
   schedule itself: base extents are the domain extents with bottleneck
   restrictions undone, and the group count starts at 1 because
   [Loop_nest.baseline_schedule] routes baseline grouping through the log
   too.  Sequences may legitimately build over a sub-nest (Seq3 halves the
   output channels), so the caller's nest only contributes the stride. *)
let replay_nest ~stride (s : Poly.t) =
  let base it =
    let e = match List.assoc_opt it s.Poly.domain with Some e -> e | None -> 1 in
    List.fold_left
      (fun acc op ->
        match op with
        | Poly.N_bottleneck { iter; factor } when iter = it -> acc * factor
        | _ -> acc)
      e s.Poly.neural_log
  in
  { Loop_nest.nc_co = base "co";
    nc_ci = base "ci";
    nc_oh = base "oh";
    nc_ow = base "ow";
    nc_kh = base "kh";
    nc_kw = base "kw";
    nc_stride = stride;
    nc_groups = 1 }

let report_of_schedule ~site ~label ~subject nest s =
  let shape = Shape_infer.check_schedule (replay_nest ~stride:nest.Loop_nest.nc_stride s) s in
  let bounds =
    match Loop_nest.lower nest s with
    | prog -> Shape_infer.bounds_check prog
    | exception Poly.Illegal msg ->
        [ Diagnostic.error ~code:"illegal-transformation" "lowering rejected: %s" msg ]
  in
  { sr_site = site;
    sr_label = label;
    sr_subject = subject;
    sr_verdict = Direction.check s conv_dependences;
    sr_diags = shape @ bounds }

let analyze_plan ~site ~label nest steps =
  let baseline = Loop_nest.baseline_schedule nest in
  let subject = "plan " ^ Plan_lint.plan_to_string steps in
  match Plan_lint.lint baseline steps with
  | Some s, diags ->
      let r = report_of_schedule ~site ~label ~subject nest s in
      { r with sr_diags = diags @ r.sr_diags }
  | None, diags ->
      { sr_site = site;
        sr_label = label;
        sr_subject = subject;
        sr_verdict = Direction.Unknown "plan did not apply cleanly";
        sr_diags = diags }

let analyze_sequences ~site ~label nest =
  let plain_site =
    (* [Sequences.standard_menu] expects the untransformed site. *)
    { Conv_impl.site_index = site;
      in_channels = nest.Loop_nest.nc_ci;
      out_channels = nest.Loop_nest.nc_co;
      kernel = nest.Loop_nest.nc_kh;
      stride = nest.Loop_nest.nc_stride;
      groups = nest.Loop_nest.nc_groups;
      spatial_in = nest.Loop_nest.nc_oh * nest.Loop_nest.nc_stride;
      site_label = label }
  in
  let inapplicable name msg =
    [ { sr_site = site;
        sr_label = label;
        sr_subject = name;
        sr_verdict = Direction.Unknown "sequence did not apply to this nest";
        sr_diags =
          [ Diagnostic.warn ~code:"inapplicable-sequence"
              "sequence %s does not apply: %s" name msg ] } ]
  in
  (* Chains are derived over the ungrouped nest: the menu above is already
     filtered by the site's real grouping, but the literal §7.3 schedule
     derivations hardcode the ungrouped baseline's loop layout.  The
     legality of the transformation chain itself is unaffected. *)
  let derive_nest = { nest with Loop_nest.nc_groups = 1 } in
  List.concat_map
    (fun seq ->
      let name = Sequences.name seq in
      match Sequences.schedules seq derive_nest with
      | schedules ->
          List.mapi
            (fun k s ->
              let subject =
                if List.length schedules > 1 then Printf.sprintf "%s[%d]" name k
                else name
              in
              report_of_schedule ~site ~label ~subject nest s)
            schedules
      | exception Poly.Illegal msg -> inapplicable name msg
      | exception Invalid_argument msg ->
          (* Some sequence chains hardcode the ungrouped baseline's loop
             positions and trip on a pre-grouped nest; that is an
             inapplicable derivation, not an analysis failure. *)
          inapplicable name msg)
    (Sequences.standard_menu plain_site)

let analyze_model ?plan (model : Models.t) =
  Array.to_list model.Models.sites
  |> List.concat_map (fun (site : Conv_impl.site) ->
         let nest = nest_of_site site in
         let label = site.Conv_impl.site_label in
         let idx = site.Conv_impl.site_index in
         let impl_diags =
           Shape_infer.check_impl site model.Models.impls.(idx)
           @
           match Loop_nest.baseline_schedule nest with
           | s ->
               Shape_infer.check_schedule
                 (replay_nest ~stride:nest.Loop_nest.nc_stride s)
                 s
           | exception Poly.Illegal msg ->
               [ Diagnostic.error ~code:"illegal-transformation"
                   "baseline schedule rejected: %s" msg ]
         in
         let head =
           if impl_diags = [] then []
           else
             [ { sr_site = idx;
                 sr_label = label;
                 sr_subject = "site";
                 sr_verdict = Direction.Legal;
                 sr_diags = impl_diags } ]
         in
         head
         @
         match plan with
         | Some steps -> [ analyze_plan ~site:idx ~label nest steps ]
         | None -> analyze_sequences ~site:idx ~label nest)

let report_errors reports =
  List.concat_map
    (fun r ->
      (match r.sr_verdict with Direction.Illegal ds -> ds | _ -> [])
      @ Diagnostic.errors r.sr_diags)
    reports

let pp_report ppf reports =
  List.iter
    (fun r ->
      let verdict, vdiags =
        match r.sr_verdict with
        | Direction.Legal -> ("legal", [])
        | Direction.Unknown m -> ("unknown (" ^ m ^ ")", [])
        | Direction.Illegal ds -> ("illegal", ds)
      in
      Format.fprintf ppf "@[<v2>site %d (%s) · %s: %s" r.sr_site r.sr_label
        r.sr_subject verdict;
      List.iter (fun d -> Format.fprintf ppf "@,%a" Diagnostic.pp d)
        (vdiags @ r.sr_diags);
      Format.fprintf ppf "@]@,")
    reports
