(** A small plan language and linter for schedule transformations.

    A plan is a [;]-separated list of transformation steps, e.g.
    ["split@1:2;interchange@1,2;unroll@5:4"], applied left to right to a
    baseline schedule.  The linter walks the plan step by step against
    the evolving schedule and reports the diagnostic taxonomy of the
    issue: [Error] findings ([bad-dimension], [indivisible-tile],
    [degenerate-groups], [indivisible-channel], [indivisible-extent],
    [depthwise-mismatch], [illegal-transformation]) predict that the
    transformation is rejected outright; [Warn] findings ([no-op],
    [unroll-overflow]) flag steps that apply but achieve nothing. *)

type step =
  | Interchange of int * int  (** [interchange@I,J] — swap dimensions *)
  | Reorder of int list  (** [reorder@P0,P1,...] — permute dimensions *)
  | Split of int * int  (** [split@POS:FACTOR] — strip-mine in place *)
  | Tile of int * int  (** [tile@POS:FACTOR] — split and sink innermost *)
  | Fuse of int  (** [fuse@POS] — fuse with the next dimension *)
  | Unroll of int * int  (** [unroll@POS:FACTOR] *)
  | Vectorize of int  (** [vectorize@POS] *)
  | Parallelize of int  (** [parallelize@POS] *)
  | Group of int  (** [group@FACTOR] — neural grouping of co/ci *)
  | Bottleneck of string * int  (** [bottleneck@ITER:FACTOR] *)
  | Depthwise  (** [depthwise] — full grouping of co/ci *)

val of_string : string -> (step list, string) result
(** Parse a [;]-separated plan; the error names the offending step. *)

val to_string : step -> string
(** Render one step back to plan syntax. *)

val plan_to_string : step list -> string
(** Render a whole plan back to plan syntax. *)

val apply : Poly.t -> step -> Poly.t
(** Apply one step to a schedule.  Raises {!Poly.Illegal} exactly as the
    underlying transformation does. *)

val lint_step : Poly.t -> step -> Diagnostic.t list
(** Findings for one step against the current schedule, computed before
    application: errors predict {!apply} would reject it. *)

val lint : Poly.t -> step list -> Poly.t option * Diagnostic.t list
(** Walk a plan, applying each clean step and collecting findings.  Stops
    at the first error (further steps would lint against a schedule that
    cannot exist); returns the final schedule when every step applied. *)
