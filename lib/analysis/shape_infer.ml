type t = {
  sh_co : int;
  sh_ci : int;
  sh_oh : int;
  sh_ow : int;
  sh_kh : int;
  sh_kw : int;
  sh_groups : int;
}

let of_nest (n : Loop_nest.conv_nest) =
  { sh_co = n.Loop_nest.nc_co;
    sh_ci = n.Loop_nest.nc_ci;
    sh_oh = n.Loop_nest.nc_oh;
    sh_ow = n.Loop_nest.nc_ow;
    sh_kh = n.Loop_nest.nc_kh;
    sh_kw = n.Loop_nest.nc_kw;
    sh_groups = n.Loop_nest.nc_groups }

let extent_of sh = function
  | "co" -> Some sh.sh_co
  | "ci" -> Some sh.sh_ci
  | "oh" -> Some sh.sh_oh
  | "ow" -> Some sh.sh_ow
  | "kh" -> Some sh.sh_kh
  | "kw" -> Some sh.sh_kw
  | _ -> None

let with_extent sh name e =
  match name with
  | "co" -> { sh with sh_co = e }
  | "ci" -> { sh with sh_ci = e }
  | "oh" -> { sh with sh_oh = e }
  | "ow" -> { sh with sh_ow = e }
  | "kh" -> { sh with sh_kh = e }
  | "kw" -> { sh with sh_kw = e }
  | _ -> sh

let apply sh (op : Poly.neural_op) =
  match op with
  | Poly.N_bottleneck { iter; factor } -> (
      if factor <= 1 then
        Error
          (Diagnostic.error ~code:"degenerate-factor"
             "bottleneck factor %d on %s is degenerate (must exceed 1)" factor iter)
      else
        match extent_of sh iter with
        | None ->
            Error
              (Diagnostic.error ~code:"unknown-iterator"
                 "bottleneck names iterator %s, not a convolution dimension" iter)
        | Some e ->
            if e mod factor <> 0 then
              Error
                (Diagnostic.error ~code:"indivisible-extent"
                   "bottleneck factor %d does not divide the %s extent %d" factor iter e)
            else
              let e' = e / factor in
              if (iter = "co" || iter = "ci") && e' mod sh.sh_groups <> 0 then
                Error
                  (Diagnostic.error ~code:"group-divisibility"
                     "bottlenecked %s extent %d is no longer divisible by the group \
                      count %d"
                     iter e' sh.sh_groups)
              else Ok (with_extent sh iter e'))
  | Poly.N_group { factor } ->
      if factor <= 1 then
        Error
          (Diagnostic.error ~code:"degenerate-groups"
             "group count %d is degenerate (must exceed 1)" factor)
      else if sh.sh_co mod factor <> 0 then
        Error
          (Diagnostic.error ~code:"indivisible-channel"
             "group count %d does not divide the output channels %d" factor sh.sh_co)
      else if sh.sh_ci mod factor <> 0 then
        Error
          (Diagnostic.error ~code:"indivisible-channel"
             "group count %d does not divide the input channels %d" factor sh.sh_ci)
      else Ok { sh with sh_groups = sh.sh_groups * factor }
  | Poly.N_depthwise { factor } ->
      if sh.sh_co <> sh.sh_ci then
        Error
          (Diagnostic.error ~code:"depthwise-mismatch"
             "depthwise requires equal channel extents, got co=%d ci=%d" sh.sh_co
             sh.sh_ci)
      else if factor <> sh.sh_co then
        Error
          (Diagnostic.error ~code:"depthwise-mismatch"
             "depthwise factor %d differs from the channel extent %d" factor sh.sh_co)
      else Ok { sh with sh_groups = sh.sh_groups * factor }

let of_log nest ops =
  List.fold_left
    (fun (sh, diags) op ->
      match apply sh op with Ok sh' -> (sh', diags) | Error d -> (sh, diags @ [ d ]))
    (of_nest nest, [])
    ops

let check_schedule nest (s : Poly.t) =
  let sh, diags = of_log nest s.Poly.neural_log in
  let drift =
    List.filter_map
      (fun (name, e) ->
        match extent_of sh name with
        | Some e' when e' <> e && diags = [] ->
            Some
              (Diagnostic.error ~code:"shape-drift"
                 "inferred %s extent %d disagrees with the schedule's domain extent %d"
                 name e' e)
        | _ -> None)
      s.Poly.domain
  in
  diags @ drift

(* Maximum of [((v / div) mod m) * mul] over [v] in [0, extent-1]: division
   by [div] reaches [(extent-1)/div], then the modulus caps at [m-1].  This
   is tight for the digit-positional indices {!Loop_nest.build_index}
   produces, because the divisor range always covers a whole number of
   modulus periods or stays below one. *)
let term_max loops (t : Loop_nest.term) =
  let extent = loops.(t.Loop_nest.t_loop).Loop_nest.ll_extent in
  let reach = (extent - 1) / t.Loop_nest.t_div in
  let v = if t.Loop_nest.t_mod = 0 then reach else min reach (t.Loop_nest.t_mod - 1) in
  v * t.Loop_nest.t_mul

let index_max loops (idx : Loop_nest.index) =
  List.fold_left (fun acc t -> acc + term_max loops t) idx.Loop_nest.i_const
    idx.Loop_nest.terms

let bounds_check (prog : Loop_nest.program) =
  let check what idx numel =
    let hi = index_max prog.Loop_nest.loops idx in
    if hi >= numel then
      [ Diagnostic.error ~code:"out-of-range"
          "%s access reaches flat index %d but the tensor has %d elements" what hi numel ]
    else []
  in
  check "output" prog.Loop_nest.dst prog.Loop_nest.out_numel
  @ check "weight" prog.Loop_nest.acc_w prog.Loop_nest.w_numel
  @ check "input" prog.Loop_nest.acc_i prog.Loop_nest.in_numel

(* Internal consistency of a site record as emitted by the block algebra:
   every check here is independent of the implementation choice, so it
   complements [check_impl] (which judges an implementation against an
   assumed-well-formed site). *)
let check_site (site : Conv_impl.site) =
  let ci = site.Conv_impl.in_channels and co = site.Conv_impl.out_channels in
  let g0 = site.Conv_impl.groups in
  let err code fmt = Diagnostic.error ~code fmt in
  (if ci < 1 || co < 1 then
     [ err "degenerate-extent" "site %s has degenerate channels %dx%d"
         site.Conv_impl.site_label ci co ]
   else [])
  @ (if site.Conv_impl.kernel < 1 then
       [ err "degenerate-extent" "site %s has kernel %d" site.Conv_impl.site_label
           site.Conv_impl.kernel ]
     else [])
  @ (if site.Conv_impl.stride < 1 then
       [ err "degenerate-extent" "site %s has stride %d" site.Conv_impl.site_label
           site.Conv_impl.stride ]
     else [])
  @ (if g0 < 1 then
       [ err "degenerate-groups" "site %s has baseline grouping %d"
           site.Conv_impl.site_label g0 ]
     else
       (if ci mod g0 <> 0 then
          [ err "indivisible-channel"
              "site %s: baseline grouping %d does not divide the input channels %d"
              site.Conv_impl.site_label g0 ci ]
        else [])
       @
       if co mod g0 <> 0 then
         [ err "indivisible-channel"
             "site %s: baseline grouping %d does not divide the output channels %d"
             site.Conv_impl.site_label g0 co ]
       else [])
  @
  if site.Conv_impl.stride >= 1
     && (site.Conv_impl.spatial_in < 1
        || site.Conv_impl.spatial_in mod site.Conv_impl.stride <> 0
        || Conv_impl.spatial_out site < 1)
  then
    [ err "indivisible-extent"
        "site %s: stride %d does not tile the %d-wide input plane"
        site.Conv_impl.site_label site.Conv_impl.stride site.Conv_impl.spatial_in ]
  else []

(* Mirrors [Conv_impl.valid] conjunct by conjunct: this function returns []
   exactly when [valid] returns true (asserted by a test), but names the
   violated condition.  Division guards follow [valid]'s short-circuit
   order so both functions fail identically on degenerate sites. *)
let check_impl (site : Conv_impl.site) (impl : Conv_impl.t) =
  let ci = site.Conv_impl.in_channels and co = site.Conv_impl.out_channels in
  let g0 = site.Conv_impl.groups in
  match impl with
  | Conv_impl.Full -> []
  | Conv_impl.Grouped g ->
      if g <= g0 then
        [ Diagnostic.error ~code:"degenerate-groups"
            "group count %d does not refine the baseline grouping %d" g g0 ]
      else
        (if ci mod g <> 0 then
           [ Diagnostic.error ~code:"indivisible-channel"
               "group count %d does not divide the input channels %d" g ci ]
         else [])
        @
        if co mod g <> 0 then
          [ Diagnostic.error ~code:"indivisible-channel"
              "group count %d does not divide the output channels %d" g co ]
        else []
  | Conv_impl.Bottleneck b ->
      if b <= 1 then
        [ Diagnostic.error ~code:"degenerate-factor"
            "bottleneck factor %d is degenerate (must exceed 1)" b ]
      else if co mod b <> 0 then
        [ Diagnostic.error ~code:"indivisible-channel"
            "bottleneck factor %d does not divide the output channels %d" b co ]
      else
        (if co / b mod g0 <> 0 then
           [ Diagnostic.error ~code:"group-divisibility"
               "bottleneck width %d is not divisible by the baseline grouping %d"
               (co / b) g0 ]
         else [])
        @
        if co / b < g0 then
          [ Diagnostic.error ~code:"group-divisibility"
              "bottleneck width %d is narrower than the baseline grouping %d" (co / b)
              g0 ]
        else []
  | Conv_impl.Depthwise_separable ->
      (if site.Conv_impl.kernel <= 1 then
         [ Diagnostic.error ~code:"pointless-depthwise"
             "depthwise separation of a %dx%d kernel saves nothing"
             site.Conv_impl.kernel site.Conv_impl.kernel ]
       else [])
      @
      if g0 <> 1 then
        [ Diagnostic.error ~code:"degenerate-groups"
            "depthwise separation requires an ungrouped baseline, got groups=%d" g0 ]
      else []
  | Conv_impl.Spatial_bottleneck b ->
      if b <= 1 then
        [ Diagnostic.error ~code:"degenerate-factor"
            "spatial bottleneck factor %d is degenerate (must exceed 1)" b ]
      else
        let so = Conv_impl.spatial_out site in
        (if so mod b <> 0 then
           [ Diagnostic.error ~code:"indivisible-extent"
               "spatial bottleneck factor %d does not divide the output plane %d" b so ]
         else [])
        @ (if so / b < 1 then
             [ Diagnostic.error ~code:"indivisible-extent"
                 "spatial bottleneck factor %d collapses the %d-wide output plane" b so ]
           else [])
        @
        if site.Conv_impl.spatial_in mod (site.Conv_impl.stride * b) <> 0 then
          [ Diagnostic.error ~code:"indivisible-extent"
              "combined stride %d does not divide the input plane %d"
              (site.Conv_impl.stride * b)
              site.Conv_impl.spatial_in ]
        else []
  | Conv_impl.Split_grouped (g1, g2) ->
      let structural =
        (if co mod 2 <> 0 then
           [ Diagnostic.error ~code:"indivisible-channel"
               "cannot halve the odd output-channel count %d" co ]
         else [])
        @ (if g1 < g0 then
             [ Diagnostic.error ~code:"degenerate-groups"
                 "first group count %d is below the baseline grouping %d" g1 g0 ]
           else [])
        @ (if g2 < g0 then
             [ Diagnostic.error ~code:"degenerate-groups"
                 "second group count %d is below the baseline grouping %d" g2 g0 ]
           else [])
        @
        if g1 = g2 then
          [ Diagnostic.error ~code:"degenerate-groups"
              "split-grouped halves use the same group count %d (use grouped instead)"
              g1 ]
        else []
      in
      if structural <> [] then structural
      else
        let half = co / 2 in
        (if ci mod g1 <> 0 then
           [ Diagnostic.error ~code:"indivisible-channel"
               "group count %d does not divide the input channels %d" g1 ci ]
         else [])
        @ (if ci mod g2 <> 0 then
             [ Diagnostic.error ~code:"indivisible-channel"
                 "group count %d does not divide the input channels %d" g2 ci ]
           else [])
        @ (if half mod g1 <> 0 then
             [ Diagnostic.error ~code:"indivisible-channel"
                 "group count %d does not divide the half-width %d" g1 half ]
           else [])
        @
        if half mod g2 <> 0 then
          [ Diagnostic.error ~code:"indivisible-channel"
              "group count %d does not divide the half-width %d" g2 half ]
        else []
