type step =
  | Interchange of int * int
  | Reorder of int list
  | Split of int * int
  | Tile of int * int
  | Fuse of int
  | Unroll of int * int
  | Vectorize of int
  | Parallelize of int
  | Group of int
  | Bottleneck of string * int
  | Depthwise

let to_string = function
  | Interchange (i, j) -> Printf.sprintf "interchange@%d,%d" i j
  | Reorder p -> "reorder@" ^ String.concat "," (List.map string_of_int p)
  | Split (i, f) -> Printf.sprintf "split@%d:%d" i f
  | Tile (i, f) -> Printf.sprintf "tile@%d:%d" i f
  | Fuse i -> Printf.sprintf "fuse@%d" i
  | Unroll (i, f) -> Printf.sprintf "unroll@%d:%d" i f
  | Vectorize i -> Printf.sprintf "vectorize@%d" i
  | Parallelize i -> Printf.sprintf "parallelize@%d" i
  | Group f -> Printf.sprintf "group@%d" f
  | Bottleneck (it, f) -> Printf.sprintf "bottleneck@%s:%d" it f
  | Depthwise -> "depthwise"

let plan_to_string steps = String.concat ";" (List.map to_string steps)

let parse_step tok =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some i -> Ok i
    | None -> fail "'%s' is not an integer" s
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let name, args =
    match String.index_opt tok '@' with
    | Some i ->
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
    | None -> (tok, "")
  in
  let pos_factor () =
    match String.split_on_char ':' args with
    | [ p; f ] ->
        let* p = int_of p in
        let* f = int_of f in
        Ok (p, f)
    | _ -> fail "step %s: expected POS:FACTOR, got '%s'" name args
  in
  let one_int () =
    match args with "" -> fail "step %s: missing argument" name | s -> int_of s
  in
  match String.trim name with
  | "interchange" -> (
      match String.split_on_char ',' args with
      | [ i; j ] ->
          let* i = int_of i in
          let* j = int_of j in
          Ok (Interchange (i, j))
      | _ -> fail "interchange: expected I,J, got '%s'" args)
  | "reorder" ->
      let rec ints acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest ->
            let* i = int_of s in
            ints (i :: acc) rest
      in
      let* p = ints [] (String.split_on_char ',' args) in
      Ok (Reorder p)
  | "split" ->
      let* p, f = pos_factor () in
      Ok (Split (p, f))
  | "tile" ->
      let* p, f = pos_factor () in
      Ok (Tile (p, f))
  | "fuse" ->
      let* p = one_int () in
      Ok (Fuse p)
  | "unroll" ->
      let* p, f = pos_factor () in
      Ok (Unroll (p, f))
  | "vectorize" ->
      let* p = one_int () in
      Ok (Vectorize p)
  | "parallelize" ->
      let* p = one_int () in
      Ok (Parallelize p)
  | "group" ->
      let* f = one_int () in
      Ok (Group f)
  | "bottleneck" -> (
      match String.split_on_char ':' args with
      | [ it; f ] ->
          let* f = int_of f in
          Ok (Bottleneck (String.trim it, f))
      | _ -> fail "bottleneck: expected ITER:FACTOR, got '%s'" args)
  | "depthwise" -> Ok Depthwise
  | other -> fail "unknown plan step '%s'" other

let of_string s =
  let toks =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  if toks = [] then Error "empty plan"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | t :: rest -> (
          match parse_step t with Ok st -> go (st :: acc) rest | Error _ as e -> e)
    in
    go [] toks

let apply (t : Poly.t) = function
  | Interchange (i, j) -> Poly.interchange t i j
  | Reorder p -> Poly.reorder t (Array.of_list p)
  (* Factor-1 split/tile is the identity in the plan language (the linter
     flags it as a no-op); [Poly.split] itself insists on factor > 1. *)
  | Split (_, 1) | Tile (_, 1) -> t
  | Split (i, f) -> Poly.split t ~pos:i ~factor:f
  | Tile (i, f) -> Poly.tile t ~pos:i ~factor:f
  | Fuse i -> Poly.fuse t ~pos:i
  | Unroll (i, f) -> Poly.unroll t ~pos:i ~factor:f
  | Vectorize i -> Poly.vectorize t ~pos:i
  | Parallelize i -> Poly.parallelize t ~pos:i
  | Group f -> Poly.group t ~co:"co" ~ci:"ci" ~factor:f
  | Bottleneck (it, f) -> Poly.bottleneck t ~iter:it ~factor:f
  | Depthwise -> Poly.depthwise t ~co:"co" ~ci:"ci"

(* Schedule-aware per-step findings, evaluated BEFORE the step is applied:
   errors predict that [apply] will reject the step, warnings flag steps
   that succeed but do nothing useful. *)
let lint_step (t : Poly.t) step =
  let n = Poly.loop_count t in
  let bad_dim i =
    if i < 0 || i >= n then
      [ Diagnostic.error ~loop:i ~code:"bad-dimension"
          "schedule dimension %d is out of range (schedule has %d loops)" i n ]
    else []
  in
  let loop_extent i = Poly.loop_extent (List.nth t.Poly.loops i) in
  let split_like what i f =
    bad_dim i
    @
    if i < 0 || i >= n then []
    else
      let e = loop_extent i in
      if f = 1 then
        [ Diagnostic.warn ~loop:i ~code:"no-op" "%s by 1 leaves the schedule unchanged"
            what ]
      else if f <= 0 || e mod f <> 0 then
        [ Diagnostic.error ~loop:i ~code:"indivisible-tile"
            "%s size %d does not divide the loop extent %d" what f e ]
      else []
  in
  match step with
  | Interchange (i, j) ->
      bad_dim i @ bad_dim j
      @
      if i = j then
        [ Diagnostic.warn ~loop:i ~code:"no-op"
            "interchange of dimension %d with itself is a no-op" i ]
      else []
  | Reorder p ->
      if List.length p <> n || List.sort_uniq compare p <> List.init n (fun i -> i)
      then
        [ Diagnostic.error ~code:"bad-dimension"
            "reorder must be a permutation of 0..%d, got [%s]" (n - 1)
            (String.concat "," (List.map string_of_int p)) ]
      else if p = List.init n (fun i -> i) then
        [ Diagnostic.warn ~code:"no-op" "reorder by the identity permutation is a no-op" ]
      else []
  | Split (i, f) -> split_like "split" i f
  | Tile (i, f) -> split_like "tile" i f
  | Fuse i ->
      bad_dim i
      @ if i >= 0 && i + 1 >= n then
          [ Diagnostic.error ~loop:i ~code:"bad-dimension"
              "fuse needs a loop below dimension %d" i ]
        else []
  | Unroll (i, f) ->
      bad_dim i
      @
      if i < 0 || i >= n then []
      else if f <= 1 then
        [ Diagnostic.warn ~loop:i ~code:"no-op" "unroll by %d leaves the loop rolled" f ]
      else
        let e = loop_extent i in
        if f > e then
          [ Diagnostic.warn ~loop:i ~code:"unroll-overflow"
              "unroll factor %d exceeds the loop extent %d and will be clamped" f e ]
        else []
  | Vectorize i | Parallelize i -> bad_dim i
  | Group f -> (
      match (List.assoc_opt "co" t.Poly.domain, List.assoc_opt "ci" t.Poly.domain) with
      | None, _ | _, None ->
          [ Diagnostic.error ~code:"unknown-iterator"
              "group needs co and ci iterators in the domain" ]
      | Some eco, Some eci ->
      if f <= 1 then
        [ Diagnostic.error ~code:"degenerate-groups"
            "group count %d is degenerate (must exceed 1)" f ]
      else
        (if eco mod f <> 0 then
           [ Diagnostic.error ~code:"indivisible-channel"
               "group count %d does not divide the output channels %d" f eco ]
         else [])
        @
        if eci mod f <> 0 then
          [ Diagnostic.error ~code:"indivisible-channel"
              "group count %d does not divide the input channels %d" f eci ]
        else [])
  | Bottleneck (it, f) -> (
      match List.assoc_opt it t.Poly.domain with
      | None ->
          [ Diagnostic.error ~code:"unknown-iterator"
              "bottleneck names unknown iterator %s" it ]
      | Some e ->
          if f <= 1 then
            [ Diagnostic.error ~code:"degenerate-factor"
                "bottleneck factor %d is degenerate (must exceed 1)" f ]
          else if e mod f <> 0 then
            [ Diagnostic.error ~code:"indivisible-extent"
                "bottleneck factor %d does not divide the %s extent %d" f it e ]
          else [])
  | Depthwise -> (
      match (List.assoc_opt "co" t.Poly.domain, List.assoc_opt "ci" t.Poly.domain) with
      | None, _ | _, None ->
          [ Diagnostic.error ~code:"unknown-iterator"
              "depthwise needs co and ci iterators in the domain" ]
      | Some eco, Some eci ->
          if eco <> eci then
            [ Diagnostic.error ~code:"depthwise-mismatch"
                "depthwise requires equal channel extents, got co=%d ci=%d" eco eci ]
          else [])

let lint (t : Poly.t) steps =
  let rec go t diags = function
    | [] -> (Some t, diags)
    | step :: rest -> (
        let found = lint_step t step in
        let diags = diags @ found in
        if List.exists Diagnostic.is_error found then (None, diags)
        else
          match apply t step with
          | t' -> go t' diags rest
          | exception Poly.Illegal msg ->
              ( None,
                diags
                @ [ Diagnostic.error ~code:"illegal-transformation"
                      "step %s rejected: %s" (to_string step) msg ] ))
  in
  go t [] steps
