(* nas_pte: command-line driver for the unified NAS/program-transformation
   framework.

     nas_pte devices              list the modelled platforms
     nas_pte table1               print the transformation menu
     nas_pte search [opts]        run the unified search on a network
     nas_pte nas [opts]           run the BlockSwap NAS baseline
     nas_pte layers [opts]        per-layer sequence exploration (fig 6 style)
     nas_pte derive               show the spatial-bottleneck derivation
     nas_pte bench SECTION...     run evaluation sections (as bench/main.exe) *)

open Cmdliner

let ppf = Format.std_formatter

(* Bad user input must exit with a one-line diagnostic and code 2, never a
   raw Invalid_argument backtrace. *)
let die fmt = Format.kasprintf (fun msg -> prerr_endline ("nas_pte: " ^ msg); exit 2) fmt

(* Every network the CLI accepts comes from the zoo registry; there is no
   second list of names to keep in sync. *)
let config_of_name name =
  match Zoo.find name with
  | Some e -> e.Zoo.ze_spec `Search
  | None -> die "unknown network %s (valid: %s)" name Zoo.names_doc

let network_arg =
  let doc = "Network to optimize: " ^ Zoo.names_doc ^ "." in
  Arg.(value & opt string "resnet34" & info [ "n"; "network" ] ~docv:"NET" ~doc)

let device_arg =
  let doc = "Target device: CPU, GPU, mCPU or mGPU." in
  Arg.(value & opt string "CPU" & info [ "d"; "device" ] ~docv:"DEV" ~doc)

let candidates_arg =
  let doc = "Number of candidate configurations to explore." in
  Arg.(value & opt int 200 & info [ "c"; "candidates" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let resilient_arg =
  let doc =
    "Print the supervisor's failure-attribution and cache report after the \
     search (quarantined candidates are always tolerated)."
  in
  Arg.(value & flag & info [ "resilient" ] ~doc)

let fault_rate_arg =
  let doc =
    "Deterministic fault-injection rate in [0,1]: each candidate's Fisher \
     score, predicted latency and plan generation are independently \
     corrupted with this probability (testing/hardening aid; default off)."
  in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault-injection draws (default: the search seed)." in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let checkpoint_arg =
  let doc =
    "Checkpoint file: search progress is saved there periodically and an \
     interrupted run with the same parameters resumes instead of restarting."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH" ~doc)

let checkpoint_every_arg =
  let doc = "Candidates between checkpoint snapshots." in
  Arg.(value & opt int 25 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let budget_arg =
  let doc =
    "Stop (gracefully, saving a checkpoint if one is configured) after this \
     many candidate evaluations in this run."
  in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)

let workers_arg =
  let doc =
    "Evaluate candidates on N parallel worker domains (default 1; must be \
     positive).  Any worker count returns the identical best candidate, \
     rejection count and quarantine list."
  in
  Arg.(value & opt int 1 & info [ "w"; "workers" ] ~docv:"N" ~doc)

let schedule_arg =
  let doc =
    "How parallel workers claim candidates: $(b,dynamic) (idle domains pull \
     the next unclaimed index — skewed candidate costs rebalance \
     automatically) or $(b,static) (fixed contiguous chunks).  Results are \
     bit-identical either way; only wall-clock differs.  Ignored when \
     --workers is 1.  See PERFORMANCE.md."
  in
  Arg.(
    value
    & opt (enum [ ("dynamic", Parallel_eval.Dynamic); ("static", Parallel_eval.Static) ])
        Parallel_eval.Dynamic
    & info [ "schedule" ] ~docv:"SCHED" ~doc)

let cache_cap_arg =
  let doc =
    "Capacity of the workload-cost memo cache (FIFO eviction; default 8192)."
  in
  Arg.(value & opt int 8192 & info [ "cache-cap" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write a JSONL trace of the search to this file: one event per line \
     (span_begin/span_end/note) covering the baseline, generate, evaluate \
     (with per-candidate legality/fisher/cost spans) and select phases.  \
     Trace content is identical for any --workers count."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the observability report after the search: the Fisher rejection \
     fraction next to the paper's ~90% claim, the per-phase time breakdown \
     and every collected counter."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let static_filter_arg =
  let doc =
    "Vet candidate plans with the static analyzer before any Fisher \
     evaluation (default true).  The static and dynamic validity checks \
     are equivalent, so the search result is bit-identical either way; \
     the filter adds the analysis.static_reject counter to the report."
  in
  Arg.(value & opt bool true & info [ "static-filter" ] ~docv:"BOOL" ~doc)

let analyze_arg =
  let doc =
    "Do not search: run the static analyzer (dependence direction vectors, \
     shape/channel inference, access bounds) over every transformable site \
     of the network and print the diagnostics.  Exits 1 if any error-level \
     finding is reported."
  in
  Arg.(value & flag & info [ "analyze" ] ~doc)

let plan_arg =
  let doc =
    "With --analyze or --typecheck: analyze (or type-check) this explicit \
     transformation plan per site instead of the standard sequence menu.  \
     Steps separated by ';', e.g. 'split@1:2;interchange@1,2;unroll@5:4'."
  in
  Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"SPEC" ~doc)

let typecheck_arg =
  let doc =
    "With --plan: do not search — type-check the plan against every \
     distinct site shape of the network, printing the abstract schedule \
     environment after each step.  Exits 1 when the plan is ill-typed \
     anywhere, naming the violated typing rule."
  in
  Arg.(value & flag & info [ "typecheck" ] ~doc)

let strategy_arg =
  let doc =
    "Candidate-generation strategy: $(b,random) (the historical \
     rejection-sampled pool), $(b,typed) (well-typed-by-construction \
     candidates from the rule-inverted menus) or $(b,guided) (beam search \
     over the Pareto front of typed candidates)."
  in
  Arg.(value & opt string "random" & info [ "strategy" ] ~docv:"NAME" ~doc)

(* Probe a log/checkpoint destination before the search spends minutes of
   work: an unwritable path must be a usage error (exit 2) up front, not a
   warning at the first write.  The probe leaves existing files untouched
   and removes any file it had to create. *)
let ensure_writable flag path =
  let existed = Sys.file_exists path in
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
      close_out oc;
      if not existed then ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error msg -> die "%s path is not writable: %s" flag msg

let device_of_name name =
  match Device.by_name name with
  | Some d -> d
  | None ->
      die "unknown device %s (valid: %s)" name
        (String.concat ", " (List.map (fun d -> d.Device.short_name) Device.all))

let devices_cmd =
  let run () =
    List.iter (fun d -> Format.fprintf ppf "%-5s  %a@." d.Device.short_name Device.pp d) Device.all
  in
  Cmd.v (Cmd.info "devices" ~doc:"List the modelled platforms") Term.(const run $ const ())

let table1_cmd =
  let run () = Exp_table1.run ppf in
  Cmd.v (Cmd.info "table1" ~doc:"Print the unified transformation menu") Term.(const run $ const ())

let analyze_model ppf model plan_spec =
  let plan =
    match plan_spec with
    | None -> None
    | Some spec -> (
        match Plan_lint.of_string spec with
        | Ok steps -> Some steps
        | Error msg -> die "--plan: %s" msg)
  in
  let reports = Static_check.analyze_model ?plan model in
  Format.fprintf ppf "@[<v>%a@]@." Static_check.pp_report reports;
  let errors = Static_check.report_errors reports in
  let unknown =
    List.length
      (List.filter
         (fun r ->
           match r.Static_check.sr_verdict with
           | Direction.Unknown _ -> true
           | _ -> false)
         reports)
  in
  Format.fprintf ppf "analyzed %d subjects: %d error findings, %d unknown verdicts@."
    (List.length reports) (List.length errors) unknown;
  if errors <> [] then exit 1

(* The --plan --typecheck mode: replay the typing judgment step by step
   against each distinct site shape, so an ill-typed plan names both the
   violated rule and the exact abstract state it was rejected in. *)
let typecheck_model ppf model plan_spec =
  let steps =
    match Plan_lint.of_string plan_spec with
    | Ok steps -> steps
    | Error msg -> die "--plan: %s" msg
  in
  let seen = Hashtbl.create 8 in
  let failed = ref false in
  let subjects = ref 0 in
  Array.iter
    (fun site ->
      let nest = Static_check.nest_of_site site in
      let env0 = Plan_types.env_of_nest nest in
      let key = Format.asprintf "%a" Plan_types.pp env0 in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        incr subjects;
        Format.fprintf ppf "@[<v2>%s:@,start        %a@]@."
          site.Conv_impl.site_label Plan_types.pp env0;
        let rec go env = function
          | [] -> (
              (* Per-step rules passed; close with T-Legal on the final
                 environment. *)
              match
                Plan_types.check ~deps:Static_check.conv_dependences env0 steps
              with
              | Ok _ -> Format.fprintf ppf "  well-typed@."
              | Error diags ->
                  failed := true;
                  Format.fprintf ppf "  ill-typed: violates T-Legal@.";
                  List.iter
                    (fun d -> Format.fprintf ppf "    %a@." Diagnostic.pp d)
                    diags)
          | step :: rest -> (
              match Plan_types.infer env step with
              | Ok env' ->
                  Format.fprintf ppf "  %-12s %a@." (Plan_lint.to_string step)
                    Plan_types.pp env';
                  go env' rest
              | Error diags ->
                  failed := true;
                  Format.fprintf ppf "  %-12s ill-typed: violates %s@."
                    (Plan_lint.to_string step)
                    (Plan_types.rule_name step);
                  List.iter
                    (fun d -> Format.fprintf ppf "    %a@." Diagnostic.pp d)
                    diags)
        in
        go env0 steps
      end)
    model.Models.sites;
  Format.fprintf ppf "type-checked %d distinct site shapes: %s@." !subjects
    (if !failed then "ill-typed" else "well-typed");
  if !failed then exit 1

let search_cmd =
  let run network device candidates seed resilient fault_rate fault_seed checkpoint
      checkpoint_every budget workers schedule cache_cap trace metrics static_filter
      analyze plan typecheck strategy =
    let strategy =
      match Strategy.of_string strategy with
      | Some t -> t
      | None ->
          die "--strategy must be one of %s (got %s)" Strategy.names_doc strategy
    in
    let rng = Rng.create seed in
    let model = Models.build (config_of_name network) rng in
    let dev = device_of_name device in
    if typecheck then begin
      if analyze then die "--typecheck and --analyze are mutually exclusive";
      match plan with
      | None -> die "--typecheck requires --plan"
      | Some spec ->
          Format.fprintf ppf "plan typing: %s for %s@." model.Models.name
            dev.Device.dev_name;
          typecheck_model ppf model spec
    end
    else if analyze then begin
      Format.fprintf ppf "static analysis: %s for %s@." model.Models.name
        dev.Device.dev_name;
      analyze_model ppf model plan
    end
    else begin
    if plan <> None then die "--plan requires --analyze or --typecheck";
    let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
    if fault_rate < 0.0 || fault_rate > 1.0 || Float.is_nan fault_rate then
      die "--fault-rate must be a probability in [0,1] (got %g)" fault_rate;
    Option.iter (fun b -> if b <= 0 then die "--budget must be positive (got %d)" b) budget;
    if checkpoint_every <= 0 then
      die "--checkpoint-every must be positive (got %d)" checkpoint_every;
    let fault =
      if fault_rate <= 0.0 then Fault.none
      else
        Fault.make ~seed:(Option.value fault_seed ~default:seed) ~rate:fault_rate ()
    in
    if workers <= 0 then die "--workers must be positive";
    if cache_cap < 1 then die "--cache-cap must be >= 1";
    Option.iter (ensure_writable "--trace") trace;
    Option.iter (ensure_writable "--checkpoint") checkpoint;
    let obs =
      if trace <> None || metrics then Obs.create ?trace_file:trace ()
      else Obs.disabled
    in
    let ctx = Eval_ctx.create ~cache_capacity:cache_cap ~device:dev ~obs () in
    Format.fprintf ppf "unified search: %s on %s, %d candidates@." model.Models.name
      dev.Device.dev_name candidates;
    if workers > 1 then
      Format.fprintf ppf "parallel evaluation: %d worker domains (%s scheduling)@."
        workers (Parallel_eval.schedule_name schedule);
    if Fault.enabled fault then
      Format.fprintf ppf "fault injection: rate %.0f%% per oracle per candidate@."
        (100.0 *. fault_rate);
    if strategy <> Strategy.Random then
      Format.fprintf ppf "strategy:  %s@." (Strategy.to_string strategy);
    let r =
      Unified_search.search ~candidates ~static_filter ~fault ?budget ?checkpoint
        ~checkpoint_every ~workers ~schedule ~strategy ~ctx ~rng:(Rng.split rng)
        ~device:dev ~probe model
    in
    (match r.Unified_search.r_checkpoint_error with
    | Some e ->
        Format.eprintf "nas_pte: warning: checkpoint not saved (%a); resume disabled@."
          Nas_error.pp e
    | None -> ());
    if not r.Unified_search.r_complete then
      Format.fprintf ppf "stopped on budget after %d evaluations%s@."
        r.Unified_search.r_evaluated
        (match checkpoint with
        | Some path -> Printf.sprintf " (progress saved to %s)" path
        | None -> "");
    Format.fprintf ppf "baseline:  %a  (%d paper-scale conv params)@." Exp_common.pp_us
      r.Unified_search.r_baseline.Pipeline.ev_latency_s
      r.r_baseline.Pipeline.ev_params;
    Format.fprintf ppf "best:      %a  (%.2fx speedup, %d params, %.2fx compression)@."
      Exp_common.pp_us r.r_best.Unified_search.cd_latency_s (Unified_search.speedup r)
      r.r_best.cd_params
      (float_of_int r.r_baseline.Pipeline.ev_params /. float_of_int (max 1 r.r_best.cd_params));
    Format.fprintf ppf "fisher:    %d of %d candidates rejected without training (%.0f%%)@."
      r.r_rejected r.r_explored
      (100.0 *. float_of_int r.r_rejected /. float_of_int (max 1 r.r_explored));
    let quarantined = List.length r.Unified_search.r_quarantined in
    if quarantined > 0 || resilient then begin
      Format.fprintf ppf "quarantine: %d of %d candidates failed and were set aside@."
        quarantined r.r_explored;
      List.iter
        (fun (cls, n) -> Format.fprintf ppf "  %-28s %d@." cls n)
        (Unified_search.quarantine_counts r)
    end;
    if resilient then begin
      let cs = Eval_ctx.cost_stats ctx in
      Format.fprintf ppf
        "pipeline cache: %d hits, %d misses, %d/%d entries (%d evicted)@."
        cs.Bounded_cache.cs_hits cs.cs_misses cs.cs_size cs.cs_capacity cs.cs_evictions;
      let fs = Eval_ctx.fisher_stats ctx in
      Format.fprintf ppf
        "fisher cache:   %d hits, %d misses, %d/%d entries (%d evicted)@."
        fs.Bounded_cache.cs_hits fs.cs_misses fs.cs_size fs.cs_capacity fs.cs_evictions
    end;
    Format.fprintf ppf "wall:      %a@." Timing.pp_seconds r.r_wall_s;
    if metrics then
      Format.fprintf ppf "@.%a" Report.pp
        (Report.of_metrics ~wall_s:r.r_wall_s (Obs.metrics obs));
    Obs.close obs;
    (match trace with
    | Some path ->
        Format.fprintf ppf "trace:     %d events written to %s@."
          (Trace_sink.length (Obs.sink obs)) path
    | None -> ());
    Format.fprintf ppf "@.winning per-site plans (transformed sites only):@.";
    Array.iteri
      (fun i (p : Site_plan.t) ->
        if p.Site_plan.sp_name <> "baseline" then
          Format.fprintf ppf "  %-18s %s@." model.Models.sites.(i).Conv_impl.site_label
            p.Site_plan.sp_name)
      r.r_best.cd_plans
    end
  in
  Cmd.v (Cmd.info "search" ~doc:"Run the unified transformation search")
    Term.(const run $ network_arg $ device_arg $ candidates_arg $ seed_arg
          $ resilient_arg $ fault_rate_arg $ fault_seed_arg $ checkpoint_arg
          $ checkpoint_every_arg $ budget_arg $ workers_arg $ schedule_arg
          $ cache_cap_arg $ trace_arg $ metrics_arg $ static_filter_arg $ analyze_arg
          $ plan_arg $ typecheck_arg $ strategy_arg)

let nas_cmd =
  let run network device candidates seed =
    let rng = Rng.create seed in
    let model = Models.build (config_of_name network) rng in
    let dev = device_of_name device in
    let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size in
    let bs = Blockswap.search ~samples:candidates ~rng:(Rng.split rng) ~probe model in
    let plans = Array.map (fun impl -> Site_plan.make impl) bs.Blockswap.bs_impls in
    let ev = Pipeline.evaluate dev model ~plans in
    let base = Pipeline.baseline dev model in
    Format.fprintf ppf "BlockSwap NAS baseline: %s on %s@." model.Models.name dev.Device.dev_name;
    Format.fprintf ppf "baseline %a -> NAS %a (%.2fx), params %d -> %d@."
      Exp_common.pp_us base.Pipeline.ev_latency_s Exp_common.pp_us ev.Pipeline.ev_latency_s
      (base.Pipeline.ev_latency_s /. ev.Pipeline.ev_latency_s)
      base.Pipeline.ev_params ev.Pipeline.ev_params
  in
  Cmd.v (Cmd.info "nas" ~doc:"Run the BlockSwap NAS baseline")
    Term.(const run $ network_arg $ device_arg $ candidates_arg $ seed_arg)

let layers_cmd =
  let run () = ignore (Fig6.run (Exp_common.mode_of_env ()) ppf) in
  Cmd.v (Cmd.info "layers" ~doc:"Layer-wise sequence exploration (Figure 6)")
    Term.(const run $ const ())

let roofline_cmd =
  let run device =
    let dev = device_of_name device in
    Format.fprintf ppf "roofline analysis on %a@.@." Device.pp dev;
    let shapes =
      [ ("64ch 32x32 k3 (dense)", 64, 64, 32, 3, 1);
        ("64ch 32x32 k3 depthwise", 64, 64, 32, 3, 64);
        ("256ch 8x8 k3 (late stage)", 256, 256, 8, 3, 1);
        ("256ch 8x8 1x1", 256, 256, 8, 1, 1) ]
    in
    List.iter
      (fun (name, co, ci, hw, k, groups) ->
        let nest =
          Loop_nest.conv_nest_of_dims ~co ~ci ~oh:hw ~ow:hw ~k ~stride:1 ~groups
        in
        let s, b = Autotune.tune dev nest in
        Format.fprintf ppf "%-28s %a@.  %a@." name Exp_common.pp_us
          b.Cost_model.total_s Roofline.pp (Roofline.analyze dev nest s))
      shapes
  in
  Cmd.v (Cmd.info "roofline" ~doc:"Roofline analysis of representative convolutions")
    Term.(const run $ device_arg)

let derive_cmd =
  let run () =
    Format.fprintf ppf "Spatial bottleneck as a transformation chain (sec 5.3):@.";
    let nest = Loop_nest.conv_nest_of_dims ~co:8 ~ci:8 ~oh:8 ~ow:8 ~k:3 ~stride:1 ~groups:1 in
    Format.fprintf ppf "@.original:@.%a@." Loop_nest.pp
      (Loop_nest.lower nest (Loop_nest.baseline_schedule nest));
    match Sequences.schedules (Sequences.Spatial_bneck 2) nest with
    | [ s ] ->
        Format.fprintf ppf "@.after [int -> B(2) -> int -> B(2) -> int]:@.%a@."
          Loop_nest.pp (Loop_nest.lower nest s);
        Format.fprintf ppf "@.schedule:@.%a@." Poly.pp s
    | _ -> ()
  in
  Cmd.v (Cmd.info "derive" ~doc:"Show the spatial-bottleneck derivation")
    Term.(const run $ const ())

let bench_cmd =
  let sections =
    Arg.(value & pos_all string [] & info [] ~docv:"SECTION")
  in
  let run sections =
    let mode = Exp_common.mode_of_env () in
    let fig4 = lazy (Fig4.compute mode) in
    let run_one = function
      | "table1" -> Exp_table1.run ppf
      | "fig3" -> ignore (Fig3.run mode ppf)
      | "fig4" -> Fig4.print ppf (Lazy.force fig4)
      | "fig5" -> ignore (Fig5.run (Lazy.force fig4) ppf)
      | "fig6" -> ignore (Fig6.run mode ppf)
      | "fig7" -> ignore (Fig7.run mode (Lazy.force fig4) ppf)
      | "fig8" -> ignore (Fig8.run mode ppf)
      | "fig9" -> ignore (Fig9.run mode ppf)
      | "analysis" -> ignore (Exp_analysis.run mode (Lazy.force fig4) ppf)
      | "ablations" -> ignore (Ablations.run mode ppf)
      | "zoo" -> ignore (Exp_zoo.run mode ppf)
      | s -> Format.fprintf ppf "unknown section %s@." s
    in
    List.iter run_one (if sections = [] then [ "fig4" ] else sections)
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run evaluation sections") Term.(const run $ sections)

let () =
  let info = Cmd.info "nas_pte" ~doc:"Neural architecture search as program transformation exploration" in
  let group = Cmd.group info [ devices_cmd; table1_cmd; search_cmd; nas_cmd; layers_cmd; derive_cmd; roofline_cmd; bench_cmd ] in
  exit (Cmd.eval group)
