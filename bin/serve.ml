(* nas_serve: long-lived search daemon.

   Speaks the line-oriented JSON protocol of [Protocol] on stdin/stdout:
   one request per line in, one response per line out (responses may be
   reordered relative to requests — correlate on "id").  Requests are
   multiplexed onto a pool of worker domains behind the full resilience
   gauntlet (admission control, per-request deadlines, retry with backoff,
   per-workload circuit breakers); sessions share crash-safe cost/Fisher
   caches that persist across restarts via --cache-file.

     echo '{"op":"search","id":"r1","network":"resnet18","candidates":20}' | nas_serve
     nas_serve --smoke        # in-process self-test, no stdio needed *)

open Cmdliner

let die fmt = Format.kasprintf (fun msg -> prerr_endline ("nas_serve: " ^ msg); exit 2) fmt

let workers_arg =
  let doc = "Worker domains (= max in-flight sessions); must be positive." in
  Arg.(value & opt int 4 & info [ "w"; "workers" ] ~docv:"N" ~doc)

let max_queue_arg =
  let doc =
    "Admitted-but-waiting bound: a request arriving with the pool busy and \
     this many queued is rejected immediately with a retry-after hint."
  in
  Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Default per-request deadline in milliseconds, applied when a request \
     names none.  On expiry the session degrades to its best-so-far result."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let cache_file_arg =
  let doc =
    "Persist the shared cost/Fisher caches to this file (atomic writes): a \
     restarted daemon — even after kill -9 — warm-starts from the snapshot."
  in
  Arg.(value & opt (some string) None & info [ "cache-file" ] ~docv:"PATH" ~doc)

let cache_save_every_arg =
  let doc = "Sessions between cache snapshots (0 disables periodic saves; a final snapshot is always written on shutdown)." in
  Arg.(value & opt int 1 & info [ "cache-save-every" ] ~docv:"N" ~doc)

let fault_rate_arg =
  let doc =
    "Server-level transient fault-injection rate in [0,1]: each session \
     attempt aborts with this probability and is retried with backoff \
     (hardening aid; default off)."
  in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault-injection draws." in
  Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let retries_arg =
  let doc = "Total attempts per session for transient failures (1 = no retries)." in
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)

let backoff_ms_arg =
  let doc = "Base retry backoff in milliseconds (doubles per attempt, jittered)." in
  Arg.(value & opt float 50.0 & info [ "backoff-ms" ] ~docv:"MS" ~doc)

let breaker_threshold_arg =
  let doc =
    "Consecutive failures (or quarantine storms) on one network|device \
     workload before its circuit breaker opens."
  in
  Arg.(value & opt int 5 & info [ "breaker-threshold" ] ~docv:"N" ~doc)

let breaker_cooldown_arg =
  let doc = "Milliseconds an open breaker refuses a workload before letting one probe request through." in
  Arg.(value & opt float 30000.0 & info [ "breaker-cooldown-ms" ] ~docv:"MS" ~doc)

let trace_dir_arg =
  let doc = "Write one JSONL trace per session into this directory (named after the request id)." in
  Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)

let max_candidates_arg =
  let doc = "Per-request candidate-pool cap (larger requests are clamped)." in
  Arg.(value & opt int 512 & info [ "max-candidates" ] ~docv:"N" ~doc)

let schedule_arg =
  let doc =
    "How multi-worker sessions assign candidates to their domains: \
     $(b,dynamic) (idle domains pull the next unclaimed index) or \
     $(b,static) (fixed contiguous chunks).  Results are bit-identical \
     either way; see PERFORMANCE.md."
  in
  Arg.(
    value
    & opt (enum [ ("dynamic", Parallel_eval.Dynamic); ("static", Parallel_eval.Static) ])
        Parallel_eval.Dynamic
    & info [ "schedule" ] ~docv:"SCHED" ~doc)

let strategy_arg =
  let doc =
    "Default candidate-generation strategy for requests that do not name \
     one: $(b,random) (historical rejection-sampled pool), $(b,typed) \
     (well-typed-by-construction candidates) or $(b,guided) (beam search \
     over the Pareto front of typed candidates).  A request's \
     $(b,strategy) field overrides this."
  in
  Arg.(value & opt string "random" & info [ "strategy" ] ~docv:"NAME" ~doc)

let smoke_arg =
  let doc =
    "Do not serve stdio: boot an in-process server, push concurrent \
     requests through every degradation path (faults, a past deadline, an \
     overload burst), assert graceful behavior and clean shutdown, print a \
     summary and exit 0 on success."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let config_of workers max_queue deadline_ms cache_file cache_save_every fault_rate
    fault_seed retries backoff_ms breaker_threshold breaker_cooldown_ms trace_dir
    max_candidates schedule strategy =
  let strategy =
    match Strategy.of_string strategy with
    | Some t -> t
    | None -> die "--strategy must be one of %s (got %s)" Strategy.names_doc strategy
  in
  if workers <= 0 then die "--workers must be positive (got %d)" workers;
  if max_queue < 0 then die "--max-queue must be >= 0 (got %d)" max_queue;
  Option.iter
    (fun ms -> if not (ms > 0.0) then die "--deadline-ms must be positive (got %g)" ms)
    deadline_ms;
  if cache_save_every < 0 then
    die "--cache-save-every must be >= 0 (got %d)" cache_save_every;
  if fault_rate < 0.0 || fault_rate > 1.0 || Float.is_nan fault_rate then
    die "--fault-rate must be a probability in [0,1] (got %g)" fault_rate;
  if retries <= 0 then die "--retries must be positive (got %d)" retries;
  if not (backoff_ms > 0.0) then die "--backoff-ms must be positive (got %g)" backoff_ms;
  if breaker_threshold <= 0 then
    die "--breaker-threshold must be positive (got %d)" breaker_threshold;
  if breaker_cooldown_ms < 0.0 then
    die "--breaker-cooldown-ms must be >= 0 (got %g)" breaker_cooldown_ms;
  if max_candidates <= 0 then
    die "--max-candidates must be positive (got %d)" max_candidates;
  Option.iter
    (fun dir ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        die "--trace-dir %s is not an existing directory" dir)
    trace_dir;
  { Server.default_config with
    cf_workers = workers;
    cf_max_queue = max_queue;
    cf_default_deadline_ms = deadline_ms;
    cf_retry =
      { Retry.default with
        rp_max_attempts = retries;
        rp_base_delay_s = backoff_ms /. 1000.0 };
    cf_breaker_threshold = breaker_threshold;
    cf_breaker_cooldown_s = breaker_cooldown_ms /. 1000.0;
    cf_cache_file = cache_file;
    cf_cache_save_every = cache_save_every;
    cf_fault =
      (if fault_rate <= 0.0 then Fault.none
       else Fault.make ~targets:[ Fault.Plan_gen ] ~seed:fault_seed ~rate:fault_rate ());
    cf_trace_dir = trace_dir;
    cf_max_candidates = max_candidates;
    cf_schedule = schedule;
    cf_strategy = strategy }

(* --- stdio serving ------------------------------------------------------ *)

(* Worker domains answer concurrently, so every stdout write goes through
   one lock and flushes the whole line at once. *)
let out_lock = Mutex.create ()

let emit resp =
  Mutex.lock out_lock;
  print_string (Protocol.response_to_json resp);
  print_newline ();
  flush stdout;
  Mutex.unlock out_lock

let serve_stdio config =
  let srv = Server.create ~config () in
  let st = Server.stats srv in
  (match st.Server.st_cache_error with
  | Some e ->
      Format.eprintf "nas_serve: cache snapshot unusable (%a); cold start@."
        Nas_error.pp e
  | None ->
      if st.Server.st_warm_entries > 0 then
        Format.eprintf "nas_serve: warm start: %d cache entries restored@."
          st.Server.st_warm_entries);
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
        match Protocol.parse line with
        | Error msg ->
            emit
              (Protocol.Error_resp
                 { er_id = ""; er_class = "bad-request"; er_message = msg });
            loop ()
        | Ok Protocol.Ping ->
            emit Protocol.Pong;
            loop ()
        | Ok Protocol.Stats ->
            emit (Protocol.Stats_resp (Server.stats_fields (Server.stats srv)));
            loop ()
        | Ok Protocol.Shutdown -> ()
        | Ok (Protocol.Search req) ->
            Server.submit_async srv req ~reply:emit;
            loop ())
  in
  loop ();
  (* Drain: join the pool so every admitted request has answered, then
     write the final cache snapshot. *)
  let final = Server.shutdown srv in
  Format.eprintf "nas_serve: served %d sessions (%d errors, %d degraded), bye@."
    final.Server.st_completed final.Server.st_errors final.Server.st_degraded

(* --- in-process smoke --------------------------------------------------- *)

let smoke () =
  let failures = ref [] in
  let check name cond = if not cond then failures := name :: !failures in
  let tmp = Filename.temp_file "nas_serve_smoke" ".ckpt" in
  Sys.remove tmp;
  let config =
    { Server.default_config with
      cf_workers = 2;
      cf_max_queue = 2;
      cf_cache_file = Some tmp;
      cf_retry = { Retry.default with rp_base_delay_s = 0.001 };
      cf_breaker_cooldown_s = 0.05 }
  in
  let srv = Server.create ~config () in
  (* Burst of concurrent sessions: 6 healthy (2 distinct seeds, repeated),
     one under heavy search-level fault injection, one already past its
     deadline.  Everything must be answered; nothing may crash the pool. *)
  let reqs =
    Protocol.request ~candidates:6 ~seed:1 "h1"
    :: Protocol.request ~candidates:6 ~seed:2 "h2"
    :: Protocol.request ~candidates:6 ~seed:1 "h3"
    :: Protocol.request ~candidates:6 ~seed:2 "h4"
    :: Protocol.request ~candidates:6 ~seed:1 "h5"
    :: Protocol.request ~candidates:6 ~seed:2 "h6"
    :: Protocol.request ~candidates:8 ~seed:3 ~fault_rate:0.8 "faulty"
    :: [ Protocol.request ~candidates:6 ~seed:4 ~deadline_ms:0.001 "hurried" ]
  in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let replies = ref [] in
  List.iter
    (fun rq ->
      Server.submit_async srv rq ~reply:(fun resp ->
          Mutex.lock lock;
          replies := (rq.Protocol.rq_id, resp) :: !replies;
          Condition.signal cond;
          Mutex.unlock lock))
    reqs;
  Mutex.lock lock;
  while List.length !replies < List.length reqs do
    Condition.wait cond lock
  done;
  let replies = !replies in
  Mutex.unlock lock;
  let find id = List.assoc id replies in
  let healthy = [ "h1"; "h2"; "h3"; "h4"; "h5"; "h6" ] in
  List.iter
    (fun id ->
      check (id ^ " answered ok")
        (match find id with
        | Protocol.Result r -> r.Protocol.rs_complete
        | Protocol.Overloaded _ -> true (* burst > workers+queue: legal *)
        | _ -> false))
    healthy;
  check "equal seeds agree bit-identically"
    (match find "h1", find "h3", find "h5" with
    | Protocol.Result a, Protocol.Result b, Protocol.Result c ->
        a.Protocol.rs_best_plan = b.Protocol.rs_best_plan
        && a.Protocol.rs_best_latency_us = b.Protocol.rs_best_latency_us
        && b.Protocol.rs_best_plan = c.Protocol.rs_best_plan
    | _, _, _ -> true (* some were load-shed; nothing to compare *));
  check "faulted session survives via quarantine"
    (match find "faulty" with
    | Protocol.Result r -> r.Protocol.rs_complete
    | Protocol.Overloaded _ -> true
    | _ -> false);
  check "past-deadline session degrades, not crashes"
    (match find "hurried" with
    | Protocol.Result r -> r.Protocol.rs_degraded || r.Protocol.rs_complete
    | Protocol.Error_resp { er_class; _ } -> er_class = "timed-out"
    | Protocol.Overloaded _ -> true
    | _ -> false);
  (* Overload: flood far past workers + queue and demand at least one
     immediate rejection carrying a retry-after hint. *)
  let flood = List.init 12 (fun i -> Protocol.request ~candidates:4 ~seed:i ("f" ^ string_of_int i)) in
  let rejected = ref 0 in
  let flood_replies = ref 0 in
  List.iter
    (fun rq ->
      Server.submit_async srv rq ~reply:(fun resp ->
          Mutex.lock lock;
          incr flood_replies;
          (match resp with
          | Protocol.Overloaded { ov_retry_after_ms; _ } ->
              if ov_retry_after_ms > 0.0 then incr rejected
          | _ -> ());
          Condition.signal cond;
          Mutex.unlock lock))
    flood;
  Mutex.lock lock;
  while !flood_replies < List.length flood do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  check "overload burst load-shed with retry-after" (!rejected > 0);
  let final = Server.shutdown srv in
  check "clean shutdown answered everything"
    (final.Server.st_inflight = 0 && final.Server.st_queued = 0);
  check "cache snapshot written" (Sys.file_exists tmp);
  (* Warm restart: a second server over the same snapshot starts hot. *)
  let srv2 = Server.create ~config () in
  let st2 = Server.stats srv2 in
  check "restart warm-starts from snapshot" (st2.Server.st_warm_entries > 0);
  (match Server.submit srv2 (Protocol.request ~candidates:6 ~seed:1 "h1-again") with
  | Protocol.Result r ->
      check "warm session hits the shared cache" (r.Protocol.rs_cache_hits > 0);
      (match find "h1" with
      | Protocol.Result a ->
          check "warm restart is bit-identical"
            (a.Protocol.rs_best_plan = r.Protocol.rs_best_plan
            && a.Protocol.rs_best_latency_us = r.Protocol.rs_best_latency_us)
      | _ -> ())
  | _ -> check "warm session answered ok" false);
  ignore (Server.shutdown srv2);
  (try Sys.remove tmp with Sys_error _ -> ());
  match !failures with
  | [] ->
      print_endline "serve smoke OK: burst, faults, deadline, overload, warm restart";
      exit 0
  | fs ->
      List.iter (fun f -> prerr_endline ("serve smoke FAILED: " ^ f)) (List.rev fs);
      exit 1

let () =
  let run workers max_queue deadline_ms cache_file cache_save_every fault_rate
      fault_seed retries backoff_ms breaker_threshold breaker_cooldown_ms trace_dir
      max_candidates schedule strategy do_smoke =
    let config =
      config_of workers max_queue deadline_ms cache_file cache_save_every fault_rate
        fault_seed retries backoff_ms breaker_threshold breaker_cooldown_ms trace_dir
        max_candidates schedule strategy
    in
    if do_smoke then smoke () else serve_stdio config
  in
  let term =
    Term.(const run $ workers_arg $ max_queue_arg $ deadline_arg $ cache_file_arg
          $ cache_save_every_arg $ fault_rate_arg $ fault_seed_arg $ retries_arg
          $ backoff_ms_arg $ breaker_threshold_arg $ breaker_cooldown_arg
          $ trace_dir_arg $ max_candidates_arg $ schedule_arg $ strategy_arg
          $ smoke_arg)
  in
  let info =
    Cmd.info "nas_serve"
      ~doc:"Long-lived NAS/PTE search daemon (line-oriented JSON on stdio)"
  in
  exit (Cmd.eval (Cmd.v info term))
