(* Observability demo: run a small traced search, write the JSONL trace,
   read it back and pretty-print the span tree, then show the summary
   report.  (README "Observability" section points here.)

     dune exec examples/trace_demo.exe *)

let () =
  let rng = Rng.create 42 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  let trace_file = Filename.temp_file "trace_demo" ".jsonl" in
  let obs = Obs.create ~trace_file () in
  let ctx = Eval_ctx.create ~obs () in
  Printf.printf "running a traced 20-candidate search on resnet18/CPU...\n%!";
  let r =
    Unified_search.search ~candidates:20 ~ctx ~rng:(Rng.split rng)
      ~device:Device.i7 ~probe model
  in
  Obs.close obs;
  Printf.printf "wrote %d events to %s\n\n" (Trace_sink.length (Obs.sink obs))
    trace_file;
  (* Round-trip: everything below is read back from the JSONL file. *)
  let events = Trace_sink.load trace_file in
  print_endline "trace (from the JSONL file; '>' opens a span, '<' closes it):";
  List.iter (fun e -> Format.printf "  %a@." Obs_event.pp e) events;
  Format.printf "@.%a" Report.pp
    (Report.of_metrics ~wall_s:r.Unified_search.r_wall_s (Obs.metrics obs));
  Format.printf "@.best candidate: %.2fx speedup over baseline@."
    (Unified_search.speedup r);
  Sys.remove trace_file
