(* The expressive-power example of sec 5.3: spatial bottlenecking — an
   operation a recent paper hand-engineered [Peng et al. 2018] — falls out
   of the unified framework as a five-step chain of primitive
   transformations:

       [C_o, C_i, H, W, Kh, Kw]  --int-->  [H, W, ...]
                                 --B(b)--> [H(b), W, ...]
                                 --int-->  [W, H(b), ...]
                                 --B(b)--> [W(b), H(b), ...]
                                 --int-->  [C_o, C_i, H(b), W(b), Kh, Kw]

   This example replays the chain step by step, shows the loop nests,
   verifies the computed values against the reference convolution, and
   checks the capacity impact with Fisher Potential.

   Run with:  dune exec examples/spatial_bottleneck.exe *)

let ppf = Format.std_formatter

let () =
  let nest =
    Loop_nest.conv_nest_of_dims ~co:8 ~ci:8 ~oh:8 ~ow:8 ~k:3 ~stride:1 ~groups:1
  in
  let base = Loop_nest.baseline_schedule nest in
  Format.fprintf ppf "step 0 (original):@.%a@.@." Poly.pp base;
  let s1 = Poly.reorder base [| 2; 3; 0; 1; 4; 5 |] in
  Format.fprintf ppf "step 1 (interchange spatial outermost):@.%a@.@." Poly.pp s1;
  let s2 = Poly.bottleneck s1 ~iter:"oh" ~factor:2 in
  Format.fprintf ppf "step 2 (bottleneck H by 2):@.%a@.@." Poly.pp s2;
  let s3 = Poly.interchange s2 0 1 in
  let s4 = Poly.bottleneck s3 ~iter:"ow" ~factor:2 in
  Format.fprintf ppf "step 3+4 (interchange, bottleneck W by 2):@.%a@.@." Poly.pp s4;
  let s5 = Poly.reorder s4 [| 2; 3; 1; 0; 4; 5 |] in
  Format.fprintf ppf "step 5 (restore the canonical order):@.%a@.@." Poly.pp s5;
  Format.fprintf ppf "resulting loop nest:@.%a@.@." Loop_nest.pp (Loop_nest.lower nest s5);
  Format.fprintf ppf "MACs: %d -> %d (4x fewer, as sec 5.3 promises)@.@."
    (Poly.points base) (Poly.points s5);

  (* Semantics: the transformed program computes exactly the top-left
     quadrant of the reference output. *)
  let rng = Rng.create 5 in
  let input = Tensor.rand_normal rng [| 8; 8; 8 |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal rng [| 8; 8; 3; 3 |] ~mean:0.0 ~std:0.3 in
  let prog = Loop_nest.lower nest s5 in
  let padded = Loop_nest.pad_input input ~pad:1 in
  (* The restricted program reads only a (oh/2-1)+3 = 6x6 input window. *)
  let cropped = Tensor.init [| 8; 6; 6 |] (fun idx -> Tensor.get padded idx) in
  let out = Tensor.zeros [| 8; 4; 4 |] in
  Loop_nest.run prog ~output:out ~weight ~input:cropped;
  let reference =
    Ops.conv2d
      ~input:(Tensor.reshape input [| 1; 8; 8; 8 |])
      ~weight ~bias:None
      { Ops.stride = 1; pad = 1; groups = 1; dilation = 1 }
  in
  let max_diff = ref 0.0 in
  for c = 0 to 7 do
    for h = 0 to 3 do
      for w = 0 to 3 do
        let d =
          Float.abs (Tensor.get out [| c; h; w |] -. Tensor.get reference [| 0; c; h; w |])
        in
        if d > !max_diff then max_diff := d
      done
    done
  done;
  Format.fprintf ppf "max |transformed - reference| on the computed quadrant: %.2e@.@."
    !max_diff;

  (* Capacity: realize the spatial bottleneck inside ResNet-34 and check it
     with Fisher Potential. *)
  let rng = Rng.create 6 in
  let model = Models.build (Models.resnet34 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let baseline = Fisher.score (Models.rebuild model (Rng.create 9) full) probe in
  let spatial =
    Array.map
      (fun s ->
        if Conv_impl.valid s (Conv_impl.Spatial_bottleneck 2) then
          Conv_impl.Spatial_bottleneck 2
        else Conv_impl.Full)
      model.Models.sites
  in
  let candidate = Fisher.score (Models.rebuild model (Rng.create 9) spatial) probe in
  Format.fprintf ppf
    "spatial bottleneck across ResNet-34: Fisher retains %.1f%% of the original -> legal: %b@."
    (100.0 *. Fisher.clipped_total ~baseline candidate /. baseline.Fisher.total)
    (Fisher.legal_clipped ~baseline candidate)
