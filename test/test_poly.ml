(* Polyhedral schedule tests: transformation algebra, decoding, and
   dependence-based legality. *)

let small_domain = [ ("co", 4); ("ci", 6); ("oh", 5); ("ow", 5) ]

let decode_all s =
  (* Enumerate the full loop space and decode every point. *)
  let extents = List.map Poly.loop_extent s.Poly.loops in
  let n = List.length extents in
  let extents = Array.of_list extents in
  let acc = ref [] in
  let values = Array.make n 0 in
  let rec go depth =
    if depth = n then acc := Poly.decode s (Array.copy values) :: !acc
    else
      for v = 0 to extents.(depth) - 1 do
        values.(depth) <- v;
        go (depth + 1)
      done
  in
  go 0;
  !acc

let sorted_points pts = List.sort compare pts

let check_same_points msg a b =
  Alcotest.(check bool) msg true (sorted_points a = sorted_points b)

let t_identity_schedule () =
  let s = Poly.of_domain small_domain in
  Alcotest.(check int) "loops" 4 (Poly.loop_count s);
  Alcotest.(check int) "points" (4 * 6 * 5 * 5) (Poly.points s);
  Alcotest.(check bool) "preserving" true (Poly.is_semantics_preserving s)

let t_interchange_preserves_points () =
  let s = Poly.of_domain small_domain in
  let s' = Poly.interchange s 0 1 in
  check_same_points "interchange enumerates same set" (decode_all s) (decode_all s');
  (* and the loop order really changed *)
  Alcotest.(check string) "outermost" "ci" (Poly.loop_names s').(0)

let t_split_preserves_points () =
  let s = Poly.of_domain small_domain in
  let s' = Poly.split s ~pos:1 ~factor:3 in
  Alcotest.(check int) "one more loop" 5 (Poly.loop_count s');
  check_same_points "split enumerates same set" (decode_all s) (decode_all s')

let t_split_indivisible_rejected () =
  let s = Poly.of_domain small_domain in
  Alcotest.check_raises "factor must divide" (Poly.Illegal "split: factor 4 does not divide extent 6")
    (fun () -> ignore (Poly.split s ~pos:1 ~factor:4))

let t_tile_moves_inner_innermost () =
  let s = Poly.of_domain small_domain in
  let s' = Poly.tile s ~pos:0 ~factor:2 in
  let names = Poly.loop_names s' in
  Alcotest.(check int) "loops" 5 (Array.length names);
  Alcotest.(check string) "inner tile last" "co" names.(4);
  check_same_points "tile enumerates same set" (decode_all s) (decode_all s')

let t_fuse_preserves_points () =
  let s = Poly.of_domain small_domain in
  let s' = Poly.fuse s ~pos:2 in
  Alcotest.(check int) "one fewer loop" 3 (Poly.loop_count s');
  Alcotest.(check int) "points unchanged" (Poly.points s) (Poly.points s');
  check_same_points "fuse enumerates same set" (decode_all s) (decode_all s')

let t_split_then_fuse_roundtrip () =
  let s = Poly.of_domain small_domain in
  let s' = Poly.fuse (Poly.split s ~pos:1 ~factor:2) ~pos:1 in
  check_same_points "roundtrip" (decode_all s) (decode_all s')

let t_bottleneck_restricts_domain () =
  let s = Poly.of_domain small_domain in
  let s' = Poly.bottleneck s ~iter:"co" ~factor:2 in
  Alcotest.(check int) "points halved" (Poly.points s / 2) (Poly.points s');
  Alcotest.(check int) "extent halved" 2 (Poly.iter_extent s' "co");
  Alcotest.(check bool) "flagged" false (Poly.is_semantics_preserving s');
  (* Enumerated co values form the prefix [0, 2). *)
  let decoded = decode_all s' in
  List.iter
    (fun pt ->
      match List.assoc_opt "co" pt with
      | Some v -> Alcotest.(check bool) "co in prefix" true (v < 2)
      | None -> Alcotest.fail "missing co")
    decoded

let t_bottleneck_after_split_hits_leading_digit () =
  let s = Poly.split (Poly.of_domain small_domain) ~pos:0 ~factor:2 in
  let s' = Poly.bottleneck s ~iter:"co" ~factor:2 in
  (* Leading digit had extent 2 (weight 2); shrinking it keeps only co < 2. *)
  Alcotest.(check int) "points halved" (Poly.points s / 2) (Poly.points s')

let t_group_shares_slice () =
  let s = Poly.of_domain small_domain in
  let s' = Poly.group s ~co:"co" ~ci:"ci" ~factor:2 in
  Alcotest.(check int) "points reduced by G" (Poly.points s / 2) (Poly.points s');
  (* Every enumerated point satisfies the slice constraint. *)
  List.iter
    (fun pt ->
      let co = List.assoc "co" pt and ci = List.assoc "ci" pt in
      Alcotest.(check int) "same slice" (co / 2) (ci / 3))
    (decode_all s')

let t_depthwise () =
  let s = Poly.of_domain [ ("co", 6); ("ci", 6); ("oh", 4); ("ow", 4) ] in
  let s' = Poly.depthwise s ~co:"co" ~ci:"ci" in
  Alcotest.(check int) "points / co" (Poly.points s / 6) (Poly.points s');
  List.iter
    (fun pt -> Alcotest.(check int) "diagonal" (List.assoc "co" pt) (List.assoc "ci" pt))
    (decode_all s')

let t_group_requires_divisibility () =
  let s = Poly.of_domain small_domain in
  Alcotest.(check bool) "indivisible grouping rejected" true
    (match Poly.group s ~co:"co" ~ci:"ci" ~factor:5 with
    | exception Poly.Illegal _ -> true
    | _ -> false)

let t_annotations () =
  let s = Poly.of_domain small_domain in
  let s = Poly.unroll s ~pos:3 ~factor:16 in
  let s = Poly.vectorize s ~pos:3 in
  let s = Poly.bind s ~pos:0 Poly.Block_x in
  let l0 = List.nth s.Poly.loops 0 and l3 = List.nth s.Poly.loops 3 in
  Alcotest.(check bool) "bound" true (l0.Poly.bind = Some Poly.Block_x);
  Alcotest.(check bool) "vectorized" true l3.Poly.vectorized;
  (* Unroll factor is clamped to the extent. *)
  Alcotest.(check int) "unroll clamped" 5 l3.Poly.unroll

(* --- Legality --------------------------------------------------------- *)

let reduction = Poly_legality.reduction_dependences [ "ci" ]

let t_identity_legal () =
  let s = Poly.of_domain small_domain in
  Alcotest.(check bool) "identity legal" true (Poly_legality.check s reduction)

let t_interchange_legal () =
  let s = Poly.interchange (Poly.of_domain small_domain) 0 1 in
  Alcotest.(check bool) "interchange legal" true (Poly_legality.check s reduction)

let t_split_legal () =
  let s = Poly.split (Poly.of_domain small_domain) ~pos:1 ~factor:3 in
  Alcotest.(check bool) "split legal" true (Poly_legality.check s reduction)

let t_tile_legal () =
  let s = Poly.tile (Poly.of_domain small_domain) ~pos:1 ~factor:2 in
  Alcotest.(check bool) "tile legal" true (Poly_legality.check s reduction)

let t_stencil_interchange_illegal () =
  (* A forward dependence on oh combined with a backward one on ow: legal in
     the original order, violated when oh and ow are interchanged.  This is
     the classic loop-interchange counterexample. *)
  let dep = [ { Poly_legality.distance = [ ("oh", 1); ("ow", -1) ]; dep_label = "stencil" } ] in
  let s = Poly.of_domain small_domain in
  Alcotest.(check bool) "original legal" true (Poly_legality.check s dep);
  let s' = Poly.interchange s 2 3 in
  Alcotest.(check bool) "interchanged illegal" false (Poly_legality.check s' dep);
  Alcotest.(check bool) "violations reported" true
    (Poly_legality.violations s' dep <> [])

let t_violations_report_point_and_label () =
  (* The diagnostics carry enough to replay the violation: each entry is a
     violated domain point plus the label of the broken dependence. *)
  let s = Poly.split (Poly.of_domain small_domain) ~pos:1 ~factor:3 in
  let s' = Poly.interchange s 1 2 in
  let vs = Poly_legality.violations s' reduction in
  Alcotest.(check bool) "violations found" true (vs <> []);
  List.iter
    (fun (point, label) ->
      Alcotest.(check string) "dependence label" "reduction over ci" label;
      (* The reported point is a real domain point... *)
      List.iter
        (fun (it, v) ->
          let extent = List.assoc it s'.Poly.domain in
          Alcotest.(check bool) "coordinate in range" true (0 <= v && v < extent))
        point;
      (* ...whose successor along the dependence the schedule runs early:
         time(p) must not be before time(p + d). *)
      let shifted = List.map (fun (it, v) -> if it = "ci" then (it, v + 1) else (it, v)) point in
      match Poly_legality.encode s' point, Poly_legality.encode s' shifted with
      | Some tp, Some tq -> Alcotest.(check bool) "reversed in time" true (tp >= tq)
      | _ -> Alcotest.fail "violation endpoints must both be enumerated")
    vs

let t_encode_inverse_of_decode () =
  let s =
    Poly.tile (Poly.split (Poly.of_domain small_domain) ~pos:1 ~factor:2) ~pos:0 ~factor:2
  in
  List.iter
    (fun pt ->
      match Poly_legality.encode s pt with
      | None -> Alcotest.fail "point should be enumerated"
      | Some loop_values ->
          Alcotest.(check bool) "roundtrip" true (Poly.decode s loop_values = pt))
    (decode_all s)

let t_encode_rejects_out_of_range () =
  let s = Poly.bottleneck (Poly.of_domain small_domain) ~iter:"co" ~factor:2 in
  Alcotest.(check bool) "cut point rejected" true
    (Poly_legality.encode s [ ("co", 3); ("ci", 0); ("oh", 0); ("ow", 0) ] = None)

let t_encode_rejects_cross_group () =
  let s = Poly.group (Poly.of_domain small_domain) ~co:"co" ~ci:"ci" ~factor:2 in
  (* co=0 is in slice 0 but ci=5 is in slice 1. *)
  Alcotest.(check bool) "cross-slice rejected" true
    (Poly_legality.encode s [ ("co", 0); ("ci", 5); ("oh", 0); ("ow", 0) ] = None);
  Alcotest.(check bool) "in-slice accepted" true
    (Poly_legality.encode s [ ("co", 0); ("ci", 2); ("oh", 0); ("ow", 0) ] <> None)

(* Spatial bottleneck as in §5.3: a chain of interchanges and bottlenecks. *)
let t_spatial_bottleneck_derivation () =
  let s = Poly.of_domain [ ("co", 4); ("ci", 4); ("oh", 8); ("ow", 8); ("kh", 3); ("kw", 3) ] in
  (* interchange spatial loops outermost *)
  let s = Poly.reorder s [| 2; 3; 0; 1; 4; 5 |] in
  let s = Poly.bottleneck s ~iter:"oh" ~factor:2 in
  let s = Poly.interchange s 0 1 in
  let s = Poly.bottleneck s ~iter:"ow" ~factor:2 in
  let s = Poly.reorder s [| 2; 3; 1; 0; 4; 5 |] in
  Alcotest.(check int) "oh halved" 4 (Poly.iter_extent s "oh");
  Alcotest.(check int) "ow halved" 4 (Poly.iter_extent s "ow");
  Alcotest.(check int) "4x fewer points"
    ((4 * 4 * 8 * 8 * 3 * 3) / 4)
    (Poly.points s)

let qcheck_tests =
  let open QCheck in
  let transform_gen =
    (* A random short pipeline of always-applicable classical transforms. *)
    small_list (int_range 0 5)
  in
  [ Test.make ~name:"random classical pipelines preserve the point set" ~count:60
      transform_gen
      (fun ops ->
        let s0 = Poly.of_domain [ ("co", 4); ("ci", 4); ("oh", 4); ("ow", 4) ] in
        let apply s code =
          let n = Poly.loop_count s in
          match code with
          | 0 -> Poly.interchange s 0 (n - 1)
          | 1 -> (try Poly.split s ~pos:0 ~factor:2 with Poly.Illegal _ -> s)
          | 2 -> if n >= 2 then Poly.fuse s ~pos:(n - 2) else s
          | 3 -> (try Poly.tile s ~pos:(n / 2) ~factor:2 with Poly.Illegal _ -> s)
          | 4 -> Poly.unroll s ~pos:(n - 1) ~factor:4
          | _ -> Poly.interchange s 0 (n / 2)
        in
        let s = List.fold_left apply s0 ops in
        Poly.points s = Poly.points s0 && Poly.is_semantics_preserving s);
    Test.make
      ~name:"reduction legality <=> digits in weight-descending schedule order"
      ~count:60 transform_gen
      (fun ops ->
        let s0 = Poly.of_domain [ ("co", 4); ("ci", 4); ("oh", 4); ("ow", 4) ] in
        let apply s code =
          let n = Poly.loop_count s in
          try
            match code with
            | 0 -> Poly.interchange s 0 (n - 1)
            | 1 -> Poly.split s ~pos:(1 mod n) ~factor:2
            | 2 -> if n >= 2 then Poly.fuse s ~pos:(n - 2) else s
            | 3 -> Poly.tile s ~pos:(2 mod n) ~factor:2
            | 4 -> Poly.interchange s (n / 2) (n - 1)
            | _ -> Poly.split s ~pos:0 ~factor:2
          with Poly.Illegal _ -> s
        in
        let s = List.fold_left apply s0 ops in
        (* Characterization: the accumulation dependence on "ci" is preserved
           exactly when ci's digits occur in weight-descending order in the
           flattened schedule (outer loops first, digits within a fused loop
           in list order). *)
        let weights_in_order =
          List.concat_map
            (fun (l : Poly.loop) ->
              List.concat_map
                (fun (d : Poly.digit) ->
                  if d.Poly.extent = 1 then []
                  else
                    List.filter_map
                      (fun (c : Poly.contrib) ->
                        if c.Poly.src = "ci" then Some c.Poly.weight else None)
                      d.Poly.contribs)
                l.Poly.digits)
            s.Poly.loops
        in
        let rec descending = function
          | a :: (b :: _ as rest) -> a > b && descending rest
          | _ -> true
        in
        Poly_legality.check s (Poly_legality.reduction_dependences [ "ci" ])
        = descending weights_in_order) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "poly"
    [ ( "schedule",
        [ quick "identity" t_identity_schedule;
          quick "interchange" t_interchange_preserves_points;
          quick "split" t_split_preserves_points;
          quick "split indivisible" t_split_indivisible_rejected;
          quick "tile" t_tile_moves_inner_innermost;
          quick "fuse" t_fuse_preserves_points;
          quick "split-fuse roundtrip" t_split_then_fuse_roundtrip;
          quick "annotations" t_annotations ] );
      ( "neural",
        [ quick "bottleneck" t_bottleneck_restricts_domain;
          quick "bottleneck after split" t_bottleneck_after_split_hits_leading_digit;
          quick "group" t_group_shares_slice;
          quick "depthwise" t_depthwise;
          quick "group divisibility" t_group_requires_divisibility;
          quick "spatial bottleneck (sec 5.3)" t_spatial_bottleneck_derivation ] );
      ( "legality",
        [ quick "identity legal" t_identity_legal;
          quick "interchange legal" t_interchange_legal;
          quick "split legal" t_split_legal;
          quick "tile legal" t_tile_legal;
          quick "stencil interchange illegal" t_stencil_interchange_illegal;
          quick "violations report point and label" t_violations_report_point_and_label;
          quick "encode inverts decode" t_encode_inverse_of_decode;
          quick "encode rejects cut points" t_encode_rejects_out_of_range;
          quick "encode rejects cross-group" t_encode_rejects_cross_group ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
