(* Static-analysis tests: direction-vector legality against the sampling
   oracle, shape/impl inference equivalence, the plan linter, the
   differential sanitizer and the search's static pre-filter. *)

let conv_domain =
  [ ("co", 4); ("ci", 6); ("oh", 5); ("ow", 5) ]

let reduction = Poly_legality.reduction_dependences [ "ci" ]

let has_code code diags =
  List.exists (fun d -> d.Diagnostic.d_code = code) diags

(* --- Direction-vector legality ---------------------------------------- *)

let check_decisive_agreement msg s deps =
  (* The static verdict must be decisive here and match the oracle. *)
  match Direction.to_bool (Direction.check s deps) with
  | None -> Alcotest.fail (msg ^ ": verdict should be decisive")
  | Some legal ->
      Alcotest.(check bool) msg (Poly_legality.check s deps) legal

let t_direction_identity_legal () =
  let s = Poly.of_domain conv_domain in
  Alcotest.(check bool) "identity legal" true
    (Direction.check s reduction = Direction.Legal)

let t_direction_split_interchange_illegal () =
  (* Splitting ci then running the inner half before the outer reverses the
     accumulation order: the classic strip-mine + interchange violation. *)
  let s = Poly.split (Poly.of_domain conv_domain) ~pos:1 ~factor:3 in
  let s' = Poly.interchange s 1 2 in
  Alcotest.(check bool) "pre-interchange legal" true
    (Direction.check s reduction = Direction.Legal);
  (match Direction.check s' reduction with
  | Direction.Illegal diags ->
      Alcotest.(check bool) "names the violation" true
        (has_code "dependence-violation" diags);
      Alcotest.(check bool) "names the dependence" true
        (List.exists (fun d -> d.Diagnostic.d_dep = Some "reduction over ci") diags);
      Alcotest.(check bool) "names a schedule dimension" true
        (List.exists (fun d -> d.Diagnostic.d_loop <> None) diags)
  | _ -> Alcotest.fail "interchanged split must be illegal");
  Alcotest.(check bool) "oracle agrees" false (Poly_legality.check s' reduction)

let t_direction_stencil_interchange () =
  let dep =
    [ { Poly_legality.distance = [ ("oh", 1); ("ow", -1) ]; dep_label = "stencil" } ]
  in
  let s = Poly.of_domain conv_domain in
  check_decisive_agreement "original order" s dep;
  check_decisive_agreement "interchanged" (Poly.interchange s 2 3) dep;
  Alcotest.(check bool) "interchange reverses the stencil" true
    (Direction.to_bool (Direction.check (Poly.interchange s 2 3) dep) = Some false)

let t_direction_vacuous_distance () =
  (* A distance at least the iterator extent pairs no two domain points:
     vacuously legal, whatever the schedule does. *)
  let dep = [ { Poly_legality.distance = [ ("ci", 6) ]; dep_label = "huge" } ] in
  let s = Poly.interchange (Poly.of_domain conv_domain) 0 1 in
  Alcotest.(check bool) "vacuously legal" true (Direction.check s dep = Direction.Legal);
  Alcotest.(check bool) "oracle agrees" true (Poly_legality.check s dep)

let t_direction_zero_distance () =
  let dep = [ { Poly_legality.distance = []; dep_label = "self" } ] in
  let s = Poly.of_domain conv_domain in
  match Direction.check s dep with
  | Direction.Illegal diags ->
      Alcotest.(check bool) "zero-distance diagnosed" true
        (has_code "zero-distance" diags);
      Alcotest.(check bool) "oracle agrees" false (Poly_legality.check s dep)
  | _ -> Alcotest.fail "a zero-distance dependence can never be satisfied"

let t_direction_grouped_schedule () =
  (* Shared group digits are joined across iterators; the analysis must
     stay decisive and agree with the oracle on the grouped schedule. *)
  let s = Poly.group (Poly.of_domain conv_domain) ~co:"co" ~ci:"ci" ~factor:2 in
  check_decisive_agreement "grouped schedule" s reduction;
  let s' = Poly.depthwise (Poly.of_domain [ ("co", 6); ("ci", 6); ("oh", 4); ("ow", 4) ])
      ~co:"co" ~ci:"ci" in
  check_decisive_agreement "depthwise schedule" s' reduction

(* --- Shape inference --------------------------------------------------- *)

let small_nest =
  Loop_nest.conv_nest_of_dims ~co:8 ~ci:8 ~oh:6 ~ow:6 ~k:3 ~stride:1 ~groups:1

let t_shape_apply_group () =
  let sh = Shape_infer.of_nest small_nest in
  (match Shape_infer.apply sh (Poly.N_group { factor = 2 }) with
  | Ok sh' -> Alcotest.(check int) "groups doubled" 2 sh'.Shape_infer.sh_groups
  | Error _ -> Alcotest.fail "divisible grouping must apply");
  match Shape_infer.apply sh (Poly.N_group { factor = 5 }) with
  | Ok _ -> Alcotest.fail "indivisible grouping must be rejected"
  | Error d ->
      Alcotest.(check string) "taxonomy" "indivisible-channel" d.Diagnostic.d_code

let t_shape_check_schedule_clean () =
  let s = Poly.bottleneck (Loop_nest.baseline_schedule small_nest) ~iter:"co" ~factor:2 in
  Alcotest.(check (list string)) "no findings" []
    (List.map Diagnostic.to_string (Shape_infer.check_schedule small_nest s))

let t_bounds_baseline_in_range () =
  let s = Loop_nest.baseline_schedule small_nest in
  let prog = Loop_nest.lower small_nest s in
  Alcotest.(check (list string)) "accesses in range" []
    (List.map Diagnostic.to_string (Shape_infer.bounds_check prog))

let impl_corpus (site : Conv_impl.site) =
  [ Conv_impl.Full; Grouped 2; Grouped 3; Grouped 5;
    Grouped site.Conv_impl.in_channels; Grouped site.Conv_impl.groups;
    Bottleneck 0; Bottleneck 2; Bottleneck 3; Bottleneck 7;
    Bottleneck site.Conv_impl.out_channels; Depthwise_separable;
    Spatial_bottleneck 1; Spatial_bottleneck 2; Spatial_bottleneck 3;
    Spatial_bottleneck 5; Split_grouped (2, 4); Split_grouped (4, 2);
    Split_grouped (2, 2); Split_grouped (3, 6); Split_grouped (2, 8) ]

let t_check_impl_equiv_valid () =
  (* The acceptance contract: Shape_infer.check_impl is the diagnostic form
     of Conv_impl.valid — empty exactly when valid, over every site of a
     real model and a corpus of valid and invalid implementations. *)
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  Array.iter
    (fun site ->
      List.iter
        (fun impl ->
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" site.Conv_impl.site_label
               (Conv_impl.to_string impl))
            (Conv_impl.valid site impl)
            (Shape_infer.check_impl site impl = []))
        (impl_corpus site))
    model.Models.sites

(* --- Plan linter ------------------------------------------------------- *)

let parse plan =
  match Plan_lint.of_string plan with
  | Ok steps -> steps
  | Error msg -> Alcotest.fail ("parse: " ^ msg)

let t_lint_parse_roundtrip () =
  let plan = "split@1:2;interchange@1,2;tile@0:2;unroll@5:4;depthwise" in
  Alcotest.(check string) "roundtrip" plan
    (Plan_lint.plan_to_string (parse plan));
  match Plan_lint.of_string "bogus@1" with
  | Ok _ -> Alcotest.fail "unknown step must not parse"
  | Error msg -> Alcotest.(check bool) "names the step" true
      (String.length msg > 0)

let t_lint_indivisible_tile () =
  let baseline = Loop_nest.baseline_schedule small_nest in
  let s, diags = Plan_lint.lint baseline (parse "tile@2:5") in
  Alcotest.(check bool) "no schedule" true (s = None);
  Alcotest.(check bool) "indivisible-tile" true (has_code "indivisible-tile" diags)

let t_lint_warnings_still_apply () =
  let baseline = Loop_nest.baseline_schedule small_nest in
  let s, diags = Plan_lint.lint baseline (parse "split@0:1;unroll@5:64") in
  Alcotest.(check bool) "schedule produced" true (s <> None);
  Alcotest.(check bool) "no-op warned" true (has_code "no-op" diags);
  Alcotest.(check bool) "unroll-overflow warned" true
    (has_code "unroll-overflow" diags);
  Alcotest.(check bool) "warnings are not errors" true
    (Diagnostic.errors diags = [])

let t_lint_bad_dimension () =
  let baseline = Loop_nest.baseline_schedule small_nest in
  let _, diags = Plan_lint.lint baseline (parse "interchange@0,9") in
  Alcotest.(check bool) "bad-dimension" true (has_code "bad-dimension" diags)

(* --- Differential sanitizer -------------------------------------------- *)

let t_sanitizer_agrees () =
  let report = Sanitizer.run ~seed:5 ~n:60 () in
  Alcotest.(check int) "corpus size" 60 report.Sanitizer.rs_total;
  Alcotest.(check int) "no disagreements" 0
    (List.length report.Sanitizer.rs_disagreements);
  Alcotest.(check bool) "gate passes" true (Sanitizer.passed report);
  Alcotest.(check bool) "some plans were illegal" true
    (report.Sanitizer.rs_agree_illegal > 0)

(* --- Search integration ------------------------------------------------ *)

let setup () =
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  (rng, model, probe)

let t_candidate_filter_matches_dynamic_sweep () =
  (* The pre-Fisher filter must find the same first-invalid site as the
     dynamic Site_plan.valid sweep, on valid pools and corrupted ones. *)
  let rng, model, _ = setup () in
  let first_invalid plans =
    let n = Array.length plans in
    let rec scan i =
      if i >= n then None
      else if not (Site_plan.valid model.Models.sites.(i) plans.(i)) then Some i
      else scan (i + 1)
    in
    scan 0
  in
  for _ = 1 to 20 do
    let plans = Unified_search.random_plans rng model ~mutate_prob:0.5 in
    Alcotest.(check (option int)) "clean pool" (first_invalid plans)
      (Option.map fst (Static_check.candidate model plans));
    (* Corrupt one site with an implementation invalid there. *)
    let i = Rng.int rng (Array.length plans) in
    let site = model.Models.sites.(i) in
    let bad = Conv_impl.Grouped (site.Conv_impl.in_channels + 1) in
    Alcotest.(check bool) "corruption is invalid" false (Conv_impl.valid site bad);
    plans.(i) <- Site_plan.make ~name:"corrupt" bad;
    Alcotest.(check (option int)) "corrupted pool" (first_invalid plans)
      (Option.map fst (Static_check.candidate model plans))
  done

let t_static_filter_bit_identical () =
  (* Acceptance criterion: search results are bit-identical with the static
     filter on and off, for any worker count. *)
  let run ~static_filter ~workers =
    let rng, model, probe = setup () in
    Unified_search.search ~candidates:25 ~static_filter ~workers
      ~rng:(Rng.split rng) ~device:Device.i7 ~probe model
  in
  let reference = run ~static_filter:false ~workers:1 in
  List.iter
    (fun workers ->
      let r = run ~static_filter:true ~workers in
      Alcotest.(check string) "same best plans"
        (Unified_search.plans_signature reference.Unified_search.r_best.Unified_search.cd_plans)
        (Unified_search.plans_signature r.Unified_search.r_best.Unified_search.cd_plans);
      Alcotest.(check (float 0.0)) "same best latency (bit-identical)"
        reference.Unified_search.r_best.Unified_search.cd_latency_s
        r.Unified_search.r_best.Unified_search.cd_latency_s;
      Alcotest.(check int) "same rejection count"
        reference.Unified_search.r_rejected r.Unified_search.r_rejected;
      Alcotest.(check int) "same explored count"
        reference.Unified_search.r_explored r.Unified_search.r_explored;
      Alcotest.(check bool) "same quarantine" true
        (List.map fst reference.Unified_search.r_quarantined
        = List.map fst r.Unified_search.r_quarantined))
    [ 1; 2 ]

let t_analyze_model_illegal_plan () =
  (* The CLI contract behind `--analyze --plan`: a known-illegal plan yields
     error findings naming the violated dependence. *)
  let _, model, _ = setup () in
  let reports = Static_check.analyze_model ~plan:(parse "split@1:2;interchange@1,2") model in
  let errors = Static_check.report_errors reports in
  Alcotest.(check bool) "errors found" true (errors <> []);
  Alcotest.(check bool) "dependence named" true
    (List.exists (fun d -> d.Diagnostic.d_dep = Some "reduction over ci") errors);
  (* And the menu analysis of the stock model is clean of errors. *)
  let menu_errors = Static_check.report_errors (Static_check.analyze_model model) in
  Alcotest.(check (list string)) "menu clean"
    [] (List.map Diagnostic.to_string menu_errors)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"static direction verdict agrees with the sampling oracle"
      ~count:40
      (pair (int_range 0 1000) (small_list (int_range 0 6)))
      (fun (seed, ops) ->
        let rng = Rng.create seed in
        let s0 =
          Poly.of_domain [ ("co", 8); ("ci", 6); ("oh", 4); ("ow", 4) ]
        in
        let apply s code =
          let n = Poly.loop_count s in
          try
            match code with
            | 0 -> Poly.interchange s (Rng.int rng n) (Rng.int rng n)
            | 1 -> Poly.split s ~pos:(Rng.int rng n) ~factor:2
            | 2 -> if n >= 2 then Poly.fuse s ~pos:(Rng.int rng (n - 1)) else s
            | 3 -> Poly.tile s ~pos:(Rng.int rng n) ~factor:3
            | 4 -> Poly.group s ~co:"co" ~ci:"ci" ~factor:2
            | 5 -> Poly.bottleneck s ~iter:"ci" ~factor:2
            | _ -> Poly.interchange s 0 (n - 1)
          with Poly.Illegal _ -> s
        in
        let s = List.fold_left apply s0 ops in
        let deps =
          Poly_legality.reduction_dependences [ "ci" ]
          @ [ { Poly_legality.distance = [ ("oh", 1); ("ow", -1) ];
                dep_label = "stencil" } ]
        in
        Direction.agrees (Direction.check s deps) (Poly_legality.check s deps)) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "analysis"
    [ ( "direction",
        [ quick "identity legal" t_direction_identity_legal;
          quick "split+interchange illegal" t_direction_split_interchange_illegal;
          quick "stencil interchange" t_direction_stencil_interchange;
          quick "vacuous distance" t_direction_vacuous_distance;
          quick "zero distance" t_direction_zero_distance;
          quick "grouped schedules" t_direction_grouped_schedule ] );
      ( "shape",
        [ quick "apply group" t_shape_apply_group;
          quick "check schedule clean" t_shape_check_schedule_clean;
          quick "bounds in range" t_bounds_baseline_in_range;
          quick "check_impl <=> valid" t_check_impl_equiv_valid ] );
      ( "lint",
        [ quick "parse roundtrip" t_lint_parse_roundtrip;
          quick "indivisible tile" t_lint_indivisible_tile;
          quick "warnings still apply" t_lint_warnings_still_apply;
          quick "bad dimension" t_lint_bad_dimension ] );
      ("sanitizer", [ quick "agrees with oracle" t_sanitizer_agrees ]);
      ( "search",
        [ quick "filter matches dynamic sweep" t_candidate_filter_matches_dynamic_sweep;
          quick "static filter bit-identical" t_static_filter_bit_identical;
          quick "analyze finds illegal plan" t_analyze_model_illegal_plan ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
