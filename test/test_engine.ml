(* Evaluation-engine tests: the bounded memo cache, explicit evaluation
   contexts (isolation, legacy-wrapper equivalence, forks), and the
   domain-parallel evaluator (index-ordered results, workers=1 vs
   workers=N determinism on a seeded search, with and without injected
   faults and budgets). *)

let test_workload co =
  { Conv_impl.w_in_channels = 4; w_out_channels = co; w_kernel = 3; w_stride = 1;
    w_groups = 1; w_spatial = 8; w_label = Printf.sprintf "eng-co%d" co }

let setup () =
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  (rng, model, probe)

(* --- bounded cache ------------------------------------------------------ *)

let t_cache_fifo () =
  let c = Bounded_cache.create ~capacity:3 () in
  List.iter
    (fun k -> ignore (Bounded_cache.remember c k (fun () -> k)))
    [ "a"; "b"; "c"; "d"; "e" ];
  let s = Bounded_cache.stats c in
  Alcotest.(check bool) "size capped" true (s.Bounded_cache.cs_size <= 3);
  Alcotest.(check int) "five misses" 5 s.cs_misses;
  Alcotest.(check bool) "evictions happened" true (s.cs_evictions > 0);
  (* FIFO: the oldest keys are gone, the newest survive. *)
  Alcotest.(check (option string)) "oldest evicted" None (Bounded_cache.find_opt c "a");
  Alcotest.(check (option string)) "newest kept" (Some "e") (Bounded_cache.find_opt c "e")

let t_cache_stats_and_errors () =
  let c = Bounded_cache.create ~capacity:8 () in
  ignore (Bounded_cache.remember c "k" (fun () -> 1));
  ignore (Bounded_cache.remember c "k" (fun () -> 2));
  let s = Bounded_cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Bounded_cache.cs_misses;
  Alcotest.(check int) "one hit" 1 s.cs_hits;
  Alcotest.(check int) "hit returns cached value" 1
    (Bounded_cache.remember c "k" (fun () -> 3));
  (* A raising thunk counts as a miss and caches nothing. *)
  (try ignore (Bounded_cache.remember c "bad" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check (option int)) "failure not cached" None (Bounded_cache.find_opt c "bad");
  Bounded_cache.clear c;
  let s = Bounded_cache.stats c in
  Alcotest.(check int) "clear resets size" 0 s.Bounded_cache.cs_size;
  Alcotest.(check int) "clear resets hits" 0 s.cs_hits

let t_cache_set_capacity () =
  let c = Bounded_cache.create ~capacity:8 () in
  List.iter
    (fun k -> ignore (Bounded_cache.remember c k (fun () -> 0)))
    [ "a"; "b"; "c"; "d"; "e"; "f" ];
  Bounded_cache.set_capacity c 2;
  let s = Bounded_cache.stats c in
  Alcotest.(check bool) "rebound evicts immediately" true (s.Bounded_cache.cs_size <= 2);
  Alcotest.(check int) "capacity updated" 2 s.cs_capacity

let t_cache_absorb () =
  let a = Bounded_cache.create ~capacity:4 () in
  let b = Bounded_cache.create ~capacity:4 () in
  ignore (Bounded_cache.remember a "x" (fun () -> 0));
  ignore (Bounded_cache.remember b "y" (fun () -> 0));
  ignore (Bounded_cache.remember b "y" (fun () -> 0));
  Bounded_cache.absorb a (Bounded_cache.stats b);
  let s = Bounded_cache.stats a in
  Alcotest.(check int) "misses folded" 2 s.Bounded_cache.cs_misses;
  Alcotest.(check int) "hits folded" 1 s.cs_hits;
  Alcotest.(check int) "size untouched" 1 s.cs_size

(* --- context isolation & legacy equivalence ----------------------------- *)

let t_ctx_isolation () =
  let ctx1 = Eval_ctx.create () in
  let ctx2 = Eval_ctx.create () in
  let w = test_workload 5 in
  let a = Pipeline.workload_cost ~ctx:ctx1 Device.i7 w in
  let b = Pipeline.workload_cost ~ctx:ctx1 Device.i7 w in
  Alcotest.(check (float 0.0)) "memo is value-transparent" a b;
  Alcotest.(check int) "ctx1 hit" 1 (Eval_ctx.cost_stats ctx1).Bounded_cache.cs_hits;
  (* The second context must not see the first one's entries. *)
  let c = Pipeline.workload_cost ~ctx:ctx2 Device.i7 w in
  Alcotest.(check (float 1e-12)) "same value recomputed" a c;
  Alcotest.(check int) "ctx2 saw no hits" 0
    (Eval_ctx.cost_stats ctx2).Bounded_cache.cs_hits;
  Alcotest.(check int) "ctx2 missed" 1 (Eval_ctx.cost_stats ctx2).Bounded_cache.cs_misses;
  Alcotest.(check int) "ctx1 unaffected by ctx2" 1
    (Eval_ctx.cost_stats ctx1).Bounded_cache.cs_hits

let t_legacy_wrapper_equivalence () =
  let _, model, _ = setup () in
  let w = test_workload 6 in
  Pipeline.clear_cache ();
  let legacy = Pipeline.workload_cost Device.i7 w in
  let explicit = Pipeline.workload_cost ~ctx:(Eval_ctx.create ()) Device.i7 w in
  Alcotest.(check (float 1e-12)) "workload_cost matches" legacy explicit;
  let plans = Array.map (fun _ -> Site_plan.baseline) model.Models.sites in
  let ev_legacy = Pipeline.evaluate Device.i7 model ~plans in
  let ev_explicit = Pipeline.evaluate ~ctx:(Eval_ctx.create ()) Device.i7 model ~plans in
  Alcotest.(check (float 1e-12)) "evaluate latency matches"
    ev_legacy.Pipeline.ev_latency_s ev_explicit.Pipeline.ev_latency_s;
  Alcotest.(check int) "evaluate params match" ev_legacy.Pipeline.ev_params
    ev_explicit.Pipeline.ev_params;
  (* The legacy cache controls drive the default context. *)
  Pipeline.clear_cache ();
  Alcotest.(check int) "clear_cache empties the default context" 0
    (Pipeline.cache_stats ()).Pipeline.cs_size

let t_ctx_fork () =
  let parent =
    Eval_ctx.create ~cache_capacity:17 ~fisher_capacity:5
      ~fault:(Fault.make ~seed:3 ~rate:1.0 ()) ()
  in
  ignore (Pipeline.workload_cost ~ctx:parent Device.i7 (test_workload 7));
  let worker = Eval_ctx.fork parent in
  Alcotest.(check int) "fork starts empty" 0
    (Eval_ctx.cost_stats worker).Bounded_cache.cs_size;
  Alcotest.(check int) "cost capacity inherited" 17
    (Eval_ctx.cost_stats worker).Bounded_cache.cs_capacity;
  Alcotest.(check int) "fisher capacity inherited" 5
    (Eval_ctx.fisher_stats worker).Bounded_cache.cs_capacity;
  (* The forked fault plan draws identically but counts independently. *)
  Alcotest.(check bool) "fault copy trips like the parent"
    (Fault.trip (Eval_ctx.fault parent) ~key:9 Fault.Cost_oracle)
    (Fault.trip (Eval_ctx.fault worker) ~key:9 Fault.Cost_oracle);
  let parent_injected = Fault.injected (Eval_ctx.fault parent) in
  ignore (Pipeline.workload_cost ~ctx:worker Device.i7 (test_workload 7));
  Eval_ctx.absorb parent worker;
  Alcotest.(check int) "worker telemetry folded into parent" 2
    (Eval_ctx.cost_stats parent).Bounded_cache.cs_misses;
  Alcotest.(check int) "worker fault trips folded into parent"
    (parent_injected + Fault.injected (Eval_ctx.fault worker))
    (Fault.injected (Eval_ctx.fault parent))

(* --- fisher memo bounding ------------------------------------------------ *)

let t_fisher_memo_bounded () =
  let rng, model, probe = setup () in
  let ctx = Eval_ctx.create ~fisher_capacity:4 () in
  let r =
    Unified_search.search ~candidates:20 ~ctx ~rng:(Rng.split rng) ~device:Device.i7
      ~probe model
  in
  Alcotest.(check bool) "search completed" true r.Unified_search.r_complete;
  let fs = Eval_ctx.fisher_stats ctx in
  Alcotest.(check bool) "fisher memo bounded" true (fs.Bounded_cache.cs_size <= 4);
  Alcotest.(check bool) "fisher memo evicted FIFO" true (fs.cs_evictions > 0);
  Alcotest.(check bool) "fisher memo was exercised" true (fs.cs_misses > 0)

(* --- parallel evaluation ------------------------------------------------- *)

let t_map_range_order () =
  let ctx = Eval_ctx.create () in
  let out = Parallel_eval.map_range ~workers:3 ~ctx ~first:10 ~limit:23 (fun _ i -> i) in
  Alcotest.(check (list int)) "index order preserved"
    (List.init 13 (fun i -> 10 + i))
    (Array.to_list out);
  Alcotest.(check int) "empty range" 0
    (Array.length (Parallel_eval.map_range ~workers:4 ~ctx ~first:5 ~limit:5 (fun _ i -> i)))

let quarantine_fingerprint r =
  List.map
    (fun (sig_, e) -> (sig_, Nas_error.class_name e))
    r.Unified_search.r_quarantined

let run_search ?fault ?budget ?schedule ~workers () =
  let rng, model, probe = setup () in
  Unified_search.search ~candidates:16 ?fault ?budget ?schedule ~workers
    ~ctx:(Eval_ctx.create ()) ~rng:(Rng.split rng) ~device:Device.i7 ~probe model

let check_identical a b =
  Alcotest.(check string) "same best plans"
    (Unified_search.plans_signature a.Unified_search.r_best.Unified_search.cd_plans)
    (Unified_search.plans_signature b.Unified_search.r_best.Unified_search.cd_plans);
  Alcotest.(check (float 0.0)) "same best latency (bit-identical)"
    a.Unified_search.r_best.Unified_search.cd_latency_s
    b.Unified_search.r_best.Unified_search.cd_latency_s;
  Alcotest.(check (float 0.0)) "same best fisher (bit-identical)"
    a.Unified_search.r_best.Unified_search.cd_fisher
    b.Unified_search.r_best.Unified_search.cd_fisher;
  Alcotest.(check int) "same rejection count" a.Unified_search.r_rejected
    b.Unified_search.r_rejected;
  Alcotest.(check int) "same evaluated count" a.Unified_search.r_evaluated
    b.Unified_search.r_evaluated;
  Alcotest.(check (list (pair string string))) "same sorted quarantine"
    (quarantine_fingerprint a) (quarantine_fingerprint b)

let t_parallel_determinism () =
  let a = run_search ~workers:1 () in
  let b = run_search ~workers:4 () in
  check_identical a b

let t_parallel_determinism_faulted () =
  (* Fault draws are pure in (seed, candidate, target), so the quarantine
     set must also be worker-count invariant. *)
  let fault () = Fault.make ~seed:11 ~rate:0.3 () in
  let a = run_search ~fault:(fault ()) ~workers:1 () in
  let b = run_search ~fault:(fault ()) ~workers:4 () in
  Alcotest.(check bool) "faults quarantined something" true
    (a.Unified_search.r_quarantined <> []);
  check_identical a b

let t_parallel_budget () =
  let a = run_search ~budget:9 ~workers:1 () in
  let b = run_search ~budget:9 ~workers:4 () in
  Alcotest.(check bool) "budget stop reported" false a.Unified_search.r_complete;
  Alcotest.(check int) "budget respected" 9 a.Unified_search.r_evaluated;
  check_identical a b

let t_quarantine_sorted () =
  let r = run_search ~fault:(Fault.make ~seed:5 ~rate:0.5 ()) ~workers:2 () in
  let sigs = List.map fst r.Unified_search.r_quarantined in
  Alcotest.(check (list string)) "quarantine sorted by signature"
    (List.sort compare sigs) sigs

(* --- dynamic scheduler --------------------------------------------------- *)

(* Deterministic skewed per-item cost: every 3rd item burns ~20x longer.
   Whatever the timing does to the worker->item assignment, the result
   array must stay a pure function of the index. *)
let skewed_burn i =
  let reps = if i mod 3 = 0 then 20_000 else 1_000 in
  let x = ref (float_of_int (i + 1)) in
  for _ = 1 to reps do
    x := Float.rem (!x *. 1.0000001 +. sin !x) 1000.0
  done;
  !x

let map_skewed ?on_stats ~schedule ~workers ~n () =
  let ctx = Eval_ctx.create () in
  Parallel_eval.map_range ~schedule ?on_stats ~workers ~ctx ~first:0 ~limit:n
    (fun _ i -> skewed_burn i)

let t_sched_skewed_costs () =
  let serial = map_skewed ~schedule:Parallel_eval.Dynamic ~workers:1 ~n:30 () in
  List.iter
    (fun (schedule, workers) ->
      let out = map_skewed ~schedule ~workers ~n:30 () in
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "%s workers=%d bit-identical to serial"
           (Parallel_eval.schedule_name schedule) workers)
        serial out)
    [ (Parallel_eval.Static, 2); (Parallel_eval.Static, 4);
      (Parallel_eval.Dynamic, 2); (Parallel_eval.Dynamic, 4) ]

let t_sched_workers_exceed_items () =
  (* 8 workers over 3 items: the pool is clamped to the item count and
     every item still lands in its slot. *)
  let stats = ref None in
  let out =
    map_skewed ~on_stats:(fun s -> stats := Some s)
      ~schedule:Parallel_eval.Dynamic ~workers:8 ~n:3 ()
  in
  Alcotest.(check (array (float 0.0))) "3 items despite 8 workers"
    (Array.init 3 skewed_burn) out;
  match !stats with
  | None -> Alcotest.fail "scheduler stats not delivered"
  | Some s ->
      Alcotest.(check bool) "worker pool clamped to item count" true
        (s.Parallel_eval.rs_workers <= 3);
      Alcotest.(check int) "per-worker items sum to the range" 3
        (Array.fold_left
           (fun acc w -> acc + w.Parallel_eval.ws_items)
           0 s.rs_worker)

let t_sched_items_exceed_workers () =
  let serial = map_skewed ~schedule:Parallel_eval.Static ~workers:1 ~n:64 () in
  let stats = ref None in
  let out =
    map_skewed ~on_stats:(fun s -> stats := Some s)
      ~schedule:Parallel_eval.Dynamic ~workers:2 ~n:64 ()
  in
  Alcotest.(check (array (float 0.0))) "64 items on 2 workers" serial out;
  match !stats with
  | None -> Alcotest.fail "scheduler stats not delivered"
  | Some s ->
      Alcotest.(check int) "all items accounted for" 64
        (Array.fold_left
           (fun acc w -> acc + w.Parallel_eval.ws_items)
           0 s.rs_worker)

let t_sched_stats_sanity () =
  let stats = ref None in
  ignore
    (map_skewed ~on_stats:(fun s -> stats := Some s)
       ~schedule:Parallel_eval.Dynamic ~workers:4 ~n:24 ());
  (match !stats with
  | None -> Alcotest.fail "scheduler stats not delivered"
  | Some s ->
      Alcotest.(check string) "schedule recorded" "dynamic"
        (Parallel_eval.schedule_name s.Parallel_eval.rs_schedule);
      Alcotest.(check int) "one stat row per worker" s.rs_workers
        (Array.length s.rs_worker);
      Alcotest.(check bool) "wall time measured" true (s.rs_wall_s >= 0.0);
      Array.iter
        (fun w ->
          Alcotest.(check bool) "steals bounded by items" true
            (w.Parallel_eval.ws_steals <= w.ws_items))
        s.rs_worker;
      Array.iter
        (fun u ->
          Alcotest.(check bool) "utilization in [0,1]" true (u >= 0.0 && u <= 1.0))
        (Parallel_eval.utilization s));
  (* workers=1 with a stats request still reports (serial path, 1 worker,
     no steals). *)
  let solo = ref None in
  ignore
    (map_skewed ~on_stats:(fun s -> solo := Some s)
       ~schedule:Parallel_eval.Static ~workers:1 ~n:5 ());
  match !solo with
  | None -> Alcotest.fail "workers=1 stats not delivered"
  | Some s ->
      Alcotest.(check int) "one worker" 1 s.Parallel_eval.rs_workers;
      Alcotest.(check int) "serial path steals nothing" 0
        s.rs_worker.(0).Parallel_eval.ws_steals;
      Alcotest.(check int) "serial path did every item" 5
        s.rs_worker.(0).Parallel_eval.ws_items

let t_sched_search_static_dynamic () =
  let serial = run_search ~workers:1 () in
  let static = run_search ~schedule:Parallel_eval.Static ~workers:4 () in
  let dynamic = run_search ~schedule:Parallel_eval.Dynamic ~workers:4 () in
  check_identical serial static;
  check_identical serial dynamic

let t_sched_faulted_budget () =
  (* Fault injection and a budget cap compose with either schedule: the
     quarantine set and stop point stay bit-identical to serial. *)
  let fault () = Fault.make ~seed:11 ~rate:0.3 () in
  let serial = run_search ~fault:(fault ()) ~budget:9 ~workers:1 () in
  Alcotest.(check bool) "budget stop reported" false
    serial.Unified_search.r_complete;
  List.iter
    (fun schedule ->
      let r = run_search ~fault:(fault ()) ~budget:9 ~schedule ~workers:4 () in
      check_identical serial r)
    [ Parallel_eval.Static; Parallel_eval.Dynamic ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "engine"
    [ ( "bounded-cache",
        [ quick "fifo eviction" t_cache_fifo;
          quick "stats and error paths" t_cache_stats_and_errors;
          quick "set_capacity" t_cache_set_capacity;
          quick "absorb" t_cache_absorb ] );
      ( "eval-ctx",
        [ quick "isolation" t_ctx_isolation;
          quick "legacy wrappers" t_legacy_wrapper_equivalence;
          quick "fork" t_ctx_fork;
          quick "fisher memo bounded" t_fisher_memo_bounded ] );
      ( "parallel",
        [ quick "map_range order" t_map_range_order;
          quick "determinism" t_parallel_determinism;
          quick "determinism under faults" t_parallel_determinism_faulted;
          quick "determinism under budget" t_parallel_budget;
          quick "quarantine sorted" t_quarantine_sorted ] );
      ( "scheduler",
        [ quick "skewed costs stay deterministic" t_sched_skewed_costs;
          quick "workers exceed items" t_sched_workers_exceed_items;
          quick "items exceed workers" t_sched_items_exceed_workers;
          quick "stats sanity" t_sched_stats_sanity;
          quick "search static vs dynamic" t_sched_search_static_dynamic;
          quick "faulted + budget runs" t_sched_faulted_budget ] ) ]
