(* Serving-layer tests: the wire protocol codec, the resilience
   primitives (deadlines, retry, admission, breaker), crash-safe shared
   caches, cooperative search cancellation, and the server itself —
   concurrent sessions bit-identical to the one-shot CLI, admission
   rejection under overload, deadline expiry, deterministic retry of
   injected transients, breaker trips, and cold-start fallback from a
   corrupted cache snapshot. *)

let setup () =
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  (rng, model, probe)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

(* --- protocol ----------------------------------------------------------- *)

let t_request_roundtrip () =
  let rq =
    Protocol.request ~network:"resnet34" ~device:"GPU" ~candidates:17 ~seed:9
      ~mutate_prob:0.25 ~budget:12 ~deadline_ms:250.0 ~fault_rate:0.5
      ~fault_seed:3 ~workers:2 "req-1"
  in
  match Protocol.parse (Protocol.request_to_json rq) with
  | Ok (Protocol.Search rq') ->
      Alcotest.(check bool) "roundtrip preserves every field" true (rq = rq')
  | Ok _ -> Alcotest.fail "parsed as a control message"
  | Error e -> Alcotest.fail e

let t_request_defaults () =
  match Protocol.parse {|{"op":"search","id":"d"}|} with
  | Ok (Protocol.Search rq) ->
      Alcotest.(check string) "network" "resnet18" rq.Protocol.rq_network;
      Alcotest.(check string) "device" "CPU" rq.Protocol.rq_device;
      Alcotest.(check int) "seed" 42 rq.Protocol.rq_seed;
      Alcotest.(check bool) "no deadline" true (rq.Protocol.rq_deadline_ms = None)
  | _ -> Alcotest.fail "defaults did not parse"

let t_parse_rejects () =
  let bad s =
    match Protocol.parse s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "garbage" true (bad "ceci n'est pas du json");
  Alcotest.(check bool) "nested value" true (bad {|{"id":"x","meta":{"a":1}}|});
  Alcotest.(check bool) "trailing junk" true (bad {|{"op":"search","id":"x"} extra|});
  Alcotest.(check bool) "fault_rate out of range" true
    (bad {|{"op":"search","id":"x","fault_rate":1.5}|});
  Alcotest.(check bool) "non-positive deadline" true
    (bad {|{"op":"search","id":"x","deadline_ms":0}|});
  Alcotest.(check bool) "zero candidates" true
    (bad {|{"op":"search","id":"x","candidates":0}|});
  Alcotest.(check bool) "unknown op" true (bad {|{"op":"dance"}|});
  (* A line without an explicit op must never default into a search. *)
  Alcotest.(check bool) "empty object" true (bad "{}");
  Alcotest.(check bool) "missing op" true (bad {|{"id":"x"}|});
  Alcotest.(check bool) "typo'd op key" true (bad {|{"opp":"ping"}|});
  Alcotest.(check bool) "unrecognized search field" true
    (bad {|{"op":"search","id":"x","candidats":5}|})

let t_parse_ops () =
  let op s v = Protocol.parse s = Ok v in
  Alcotest.(check bool) "ping" true (op {|{"op":"ping"}|} Protocol.Ping);
  Alcotest.(check bool) "stats" true (op {|{"op":"stats"}|} Protocol.Stats);
  Alcotest.(check bool) "shutdown" true (op {|{"op":"shutdown"}|} Protocol.Shutdown)

let t_response_roundtrip () =
  let payload =
    { Protocol.rs_id = "r"; rs_best_plan = "a;b"; rs_best_latency_us = 12.5;
      rs_baseline_latency_us = 50.0; rs_speedup = 4.0; rs_explored = 10;
      rs_rejected = 3; rs_quarantined = 1; rs_evaluated = 9; rs_complete = false;
      rs_degraded = true; rs_retries = 2; rs_cache_hits = 7; rs_wall_ms = 3.25 }
  in
  let cases =
    [ Protocol.Result payload;
      Protocol.Overloaded { ov_id = "r"; ov_retry_after_ms = 125.0 };
      Protocol.Unavailable
        { un_id = "r"; un_reason = "breaker_open"; un_retry_after_ms = 50.0 };
      Protocol.Error_resp
        { er_id = "r"; er_class = "timed-out"; er_message = "late \"quoted\"" };
      Protocol.Pong;
      Protocol.Stats_resp [ ("admitted", 3.0); ("rejected", 1.0) ] ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_json (Protocol.response_to_json resp) with
      | Ok resp' -> Alcotest.(check bool) "response roundtrip" true (resp = resp')
      | Error e -> Alcotest.fail e)
    cases

(* --- taxonomy extensions ------------------------------------------------ *)

let t_unix_error_classified () =
  let e = Nas_error.of_exn (Unix.Unix_error (Unix.ENOENT, "open", "/nope")) in
  (match e with
  | Some (Nas_error.Io_error m) ->
      Alcotest.(check bool) "names the call" true
        (String.length m > 0 && String.sub m 0 4 = "open")
  | _ -> Alcotest.fail "Unix_error not classified as io-error");
  match Nas_error.of_exn (Sys_error "disk gone") with
  | Some (Nas_error.Io_error _) -> ()
  | _ -> Alcotest.fail "Sys_error not classified as io-error"

let t_transient_partition () =
  Alcotest.(check bool) "io-error retryable" true
    (Nas_error.transient (Io_error "x"));
  Alcotest.(check bool) "injected-fault retryable" true
    (Nas_error.transient (Injected_fault "x"));
  Alcotest.(check bool) "timed-out NOT retryable" false
    (Nas_error.transient (Timed_out "x"));
  Alcotest.(check bool) "invalid-plan NOT retryable" false
    (Nas_error.transient (Invalid_plan "x"))

(* --- deadline ----------------------------------------------------------- *)

let t_deadline_expiry () =
  let t = ref 0.0 in
  let clock () = !t in
  let dl = Deadline.make ~clock ~after_s:5.0 () in
  Alcotest.(check bool) "fresh deadline alive" false (Deadline.expired dl);
  Alcotest.(check (float 1e-9)) "remaining" 5.0 (Deadline.remaining_s dl);
  Deadline.guard dl ~label:"early";
  t := 5.0;
  Alcotest.(check bool) "expired at the instant" true (Deadline.expired dl);
  Alcotest.(check (float 0.0)) "no remaining" 0.0 (Deadline.remaining_s dl);
  (match Deadline.guard dl ~label:"late" with
  | () -> Alcotest.fail "guard passed an expired deadline"
  | exception Nas_error.Fail (Nas_error.Timed_out _) -> ());
  Alcotest.(check bool) "none never expires" false (Deadline.expired Deadline.none);
  Alcotest.(check bool) "none is never" true (Deadline.never Deadline.none)

let t_monotonic_clock () =
  let a = Deadline.monotonic () in
  let b = Deadline.monotonic () in
  Alcotest.(check bool) "non-decreasing" true (b >= a)

(* --- retry -------------------------------------------------------------- *)

let t_retry_deterministic_jitter () =
  let p = Retry.default in
  let d1 = Retry.delay_s p ~seed:3 ~attempt:1 in
  let d2 = Retry.delay_s p ~seed:3 ~attempt:1 in
  Alcotest.(check (float 0.0)) "pure in (seed, attempt)" d1 d2;
  Alcotest.(check bool) "within jitter band" true
    (d1 <= 0.1 && d1 >= 0.1 *. (1.0 -. p.Retry.rp_jitter));
  Alcotest.(check bool) "seeds de-synchronize" true
    (Retry.delay_s p ~seed:3 ~attempt:1 <> Retry.delay_s p ~seed:4 ~attempt:1)

let t_retry_recovers_transient () =
  let attempts = ref 0 and slept = ref 0 in
  let outcome, last =
    Retry.run ~sleep:(fun _ -> incr slept) ~seed:3 (fun ~attempt ->
        incr attempts;
        if attempt < 2 then Nas_error.fail (Nas_error.Io_error "flaky");
        42)
  in
  Alcotest.(check bool) "recovered" true (outcome = Ok 42);
  Alcotest.(check int) "three attempts" 3 !attempts;
  Alcotest.(check int) "two retries reported" 2 last;
  Alcotest.(check int) "two backoffs slept" 2 !slept

let t_retry_stops_on_permanent () =
  let attempts = ref 0 in
  let outcome, last =
    Retry.run ~sleep:(fun _ -> ()) ~seed:3 (fun ~attempt:_ ->
        incr attempts;
        Nas_error.fail (Nas_error.Invalid_plan "broken"))
  in
  Alcotest.(check bool) "failed with the error" true
    (match outcome with Error (Nas_error.Invalid_plan _) -> true | _ -> false);
  Alcotest.(check int) "single attempt" 1 !attempts;
  Alcotest.(check int) "no retries" 0 last

let t_retry_respects_deadline () =
  let dl = Deadline.make ~clock:(fun () -> 100.0) ~after_s:0.0 () in
  let attempts = ref 0 in
  let outcome, _ =
    Retry.run ~sleep:(fun _ -> ()) ~deadline:dl ~seed:3 (fun ~attempt:_ ->
        incr attempts;
        Nas_error.fail (Nas_error.Io_error "flaky"))
  in
  Alcotest.(check bool) "still an error" true (Result.is_error outcome);
  Alcotest.(check int) "no retry past the deadline" 1 !attempts

(* --- admission ---------------------------------------------------------- *)

let t_admission_bounds () =
  let a = Admission.create ~max_inflight:2 ~max_queue:1 () in
  let admitted () = Admission.admit a = Admission.Admitted in
  Alcotest.(check bool) "1st" true (admitted ());
  Alcotest.(check bool) "2nd" true (admitted ());
  Alcotest.(check bool) "3rd (queue slot)" true (admitted ());
  (match Admission.admit a with
  | Admission.Rejected retry_after ->
      Alcotest.(check bool) "retry-after positive" true (retry_after > 0.0)
  | Admission.Admitted -> Alcotest.fail "admitted past both bounds");
  Admission.started a;
  Admission.finished a ~dur_s:0.2;
  Alcotest.(check bool) "slot freed" true (admitted ());
  Alcotest.(check int) "admitted total" 4 (Admission.admitted_total a);
  Alcotest.(check int) "rejected total" 1 (Admission.rejected_total a)

(* --- breaker ------------------------------------------------------------ *)

let t_breaker_state_machine () =
  let t = ref 0.0 in
  let clock () = !t in
  let b = Breaker.create ~clock ~threshold:2 ~cooldown_s:10.0 () in
  let key = "resnet18|CPU" in
  Alcotest.(check bool) "fresh key flows" true (Breaker.allow b ~key);
  Breaker.failure b ~key;
  Alcotest.(check bool) "one failure still closed" true (Breaker.allow b ~key);
  Breaker.failure b ~key;
  Alcotest.(check string) "tripped open" "open"
    (Breaker.state_name (Breaker.state b ~key));
  Alcotest.(check bool) "open refuses" false (Breaker.allow b ~key);
  Alcotest.(check bool) "retry-after counts down" true
    (Breaker.retry_after_s b ~key > 0.0);
  t := 10.0;
  Alcotest.(check bool) "cooldown elapses: probe let through" true
    (Breaker.allow b ~key);
  Alcotest.(check bool) "second probe refused" false (Breaker.allow b ~key);
  Breaker.failure b ~key;
  Alcotest.(check bool) "failed probe re-opens" false (Breaker.allow b ~key);
  t := 20.0;
  Alcotest.(check bool) "second probe window" true (Breaker.allow b ~key);
  Breaker.success b ~key;
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_name (Breaker.state b ~key));
  Alcotest.(check bool) "closed flows again" true (Breaker.allow b ~key);
  Alcotest.(check int) "two trips recorded" 2 (Breaker.trips b);
  Alcotest.(check bool) "other keys unaffected" true
    (Breaker.allow b ~key:"resnet34|GPU")

(* A probe whose outcome never arrives must not wedge the key Half_open
   forever: an explicit [abandon] returns it to Open with a fresh
   cooldown, and even without one a stale probe is replaced after a
   cooldown's worth of silence. *)
let t_breaker_probe_cannot_wedge () =
  let t = ref 0.0 in
  let clock () = !t in
  let b = Breaker.create ~clock ~threshold:1 ~cooldown_s:10.0 () in
  let key = "resnet18|CPU" in
  Breaker.failure b ~key;
  t := 10.0;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b ~key);
  Breaker.abandon b ~key;
  Alcotest.(check string) "abandoned probe re-opens" "open"
    (Breaker.state_name (Breaker.state b ~key));
  Alcotest.(check bool) "fresh cooldown refuses" false (Breaker.allow b ~key);
  Alcotest.(check bool) "retry-after restarted" true
    (Breaker.retry_after_s b ~key > 0.0);
  Alcotest.(check int) "abandon is not a trip" 1 (Breaker.trips b);
  t := 20.0;
  Alcotest.(check bool) "re-probes after the cooldown" true (Breaker.allow b ~key);
  (* This probe simply never reports: the stale-probe escape re-admits. *)
  Alcotest.(check bool) "half-open hints a retry-after" true
    (Breaker.retry_after_s b ~key > 0.0);
  t := 30.0;
  Alcotest.(check bool) "silent probe replaced after cooldown" true
    (Breaker.allow b ~key);
  Breaker.success b ~key;
  Alcotest.(check string) "replacement probe closes the key" "closed"
    (Breaker.state_name (Breaker.state b ~key))

(* --- shared caches ------------------------------------------------------ *)

let t_cache_entries_merge () =
  let c = Bounded_cache.create ~capacity:3 () in
  ignore (Bounded_cache.remember c "a" (fun () -> 1));
  ignore (Bounded_cache.remember c "b" (fun () -> 2));
  Alcotest.(check (list (pair string int))) "entries in FIFO order"
    [ ("a", 1); ("b", 2) ] (Bounded_cache.entries c);
  let d = Bounded_cache.create ~capacity:3 () in
  ignore (Bounded_cache.remember d "b" (fun () -> 99));
  let inserted = Bounded_cache.merge_entries d (Bounded_cache.entries c) in
  Alcotest.(check int) "only absent keys inserted" 1 inserted;
  Alcotest.(check bool) "present key wins" true
    (Bounded_cache.find_opt d "b" = Some 99);
  Alcotest.(check bool) "absent key merged" true
    (Bounded_cache.find_opt d "a" = Some 1);
  let tiny = Bounded_cache.create ~capacity:1 () in
  ignore (Bounded_cache.merge_entries tiny (Bounded_cache.entries c));
  Alcotest.(check int) "merge respects capacity" 1
    (Bounded_cache.stats tiny).Bounded_cache.cs_size

let t_ctx_cache_persistence () =
  let path = tmp_path "nas_pte_test_caches.bin" in
  Checkpoint.remove ~path;
  let ctx = Eval_ctx.create () in
  ignore (Bounded_cache.remember (Eval_ctx.cost_cache ctx) "w1" (fun () -> 1.5));
  ignore (Bounded_cache.remember (Eval_ctx.cost_cache ctx) "w2" (fun () -> 2.5));
  (match Eval_ctx.save_caches ~path ctx with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Nas_error.to_string e));
  let fresh = Eval_ctx.create () in
  (match Eval_ctx.load_caches ~path fresh with
  | Ok n -> Alcotest.(check int) "entries restored" 2 n
  | Error e -> Alcotest.fail (Nas_error.to_string e));
  Alcotest.(check bool) "restored value intact" true
    (Bounded_cache.find_opt (Eval_ctx.cost_cache fresh) "w2" = Some 2.5);
  Checkpoint.remove ~path

(* Corruption drills (cache-snapshot flavor of the checkpoint tests): a
   truncated file, plain garbage, and a structurally valid checkpoint of
   the wrong type must each come back as a structured Checkpoint_error —
   the caller cold-starts; nothing crashes. *)
let t_ctx_cache_corruption () =
  let path = tmp_path "nas_pte_test_caches_bad.bin" in
  let expect_error label =
    match Eval_ctx.load_caches ~path (Eval_ctx.create ()) with
    | Error (Nas_error.Checkpoint_error _) -> ()
    | Error e ->
        Alcotest.failf "%s: wrong class %s" label (Nas_error.class_name e)
    | Ok n -> Alcotest.failf "%s: loaded %d entries from junk" label n
  in
  Checkpoint.remove ~path;
  let ctx = Eval_ctx.create () in
  ignore (Bounded_cache.remember (Eval_ctx.cost_cache ctx) "w1" (fun () -> 1.5));
  (match Eval_ctx.save_caches ~path ctx with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Nas_error.to_string e));
  let whole = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub whole 0 (String.length whole / 2)));
  expect_error "truncated snapshot";
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "NASPTE-CKPT1 but then garbage follows");
  expect_error "garbage snapshot";
  (match Checkpoint.save ~path ("some other subsystem", [ 1; 2; 3 ]) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Nas_error.to_string e));
  expect_error "foreign checkpoint type";
  Checkpoint.remove ~path

(* --- cooperative cancellation ------------------------------------------- *)

let t_search_stop_hook () =
  let _, model, probe = setup () in
  let run ?stop () =
    Unified_search.search ~candidates:12 ?stop ~rng:(Rng.create 5)
      ~ctx:(Eval_ctx.create ()) ~device:Device.i7 ~probe model
  in
  let full = run () in
  let idle = run ~stop:(fun () -> false) () in
  Alcotest.(check string) "inert hook is bit-identical"
    (Unified_search.plans_signature full.Unified_search.r_best.Unified_search.cd_plans)
    (Unified_search.plans_signature idle.Unified_search.r_best.Unified_search.cd_plans);
  Alcotest.(check bool) "inert hook completes" true idle.Unified_search.r_complete;
  let polled = ref 0 in
  let cut = run ~stop:(fun () -> incr polled; !polled > 3) () in
  Alcotest.(check bool) "stopped early" false cut.Unified_search.r_complete;
  Alcotest.(check bool) "partial progress" true
    (cut.Unified_search.r_evaluated < full.Unified_search.r_evaluated);
  Alcotest.(check bool) "best-so-far incumbent exists" true
    (cut.Unified_search.r_best.Unified_search.cd_latency_s > 0.0)

(* --- the server --------------------------------------------------------- *)

let submit_all srv reqs =
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let got = ref 0 in
  let n = List.length reqs in
  let replies = Array.make n None in
  List.iteri
    (fun i rq ->
      Server.submit_async srv rq ~reply:(fun resp ->
          Mutex.lock lock;
          replies.(i) <- Some resp;
          incr got;
          Condition.signal cond;
          Mutex.unlock lock))
    reqs;
  Mutex.lock lock;
  while !got < n do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  Array.to_list (Array.map Option.get replies)

(* The acceptance bar: >= 8 concurrent sessions, each bit-identical to a
   one-shot search with the same seed. *)
let t_server_concurrent_identical () =
  let seeds = [ 21; 22; 23; 24 ] in
  let direct =
    List.map
      (fun seed ->
        let rng = Rng.create seed in
        let model = Models.build (Models.resnet18 ()) rng in
        let probe =
          Exp_common.probe_batch (Rng.split rng)
            ~input_size:model.Models.input_size
        in
        let r =
          Unified_search.search ~candidates:6 ~ctx:(Eval_ctx.create ())
            ~rng:(Rng.split rng) ~device:Device.i7 ~probe model
        in
        ( seed,
          Unified_search.plans_signature
            r.Unified_search.r_best.Unified_search.cd_plans,
          r.Unified_search.r_best.Unified_search.cd_latency_s ))
      seeds
  in
  let srv =
    Server.create
      ~config:{ Server.default_config with cf_workers = 8; cf_max_queue = 8 }
      ()
  in
  let reqs =
    List.concat_map
      (fun seed ->
        [ Protocol.request ~candidates:6 ~seed (Printf.sprintf "s%d-a" seed);
          Protocol.request ~candidates:6 ~seed (Printf.sprintf "s%d-b" seed) ])
      seeds
  in
  Alcotest.(check int) "eight concurrent sessions" 8 (List.length reqs);
  let replies = submit_all srv reqs in
  List.iter2
    (fun rq resp ->
      match resp with
      | Protocol.Result r ->
          let _, sg, lat =
            List.find (fun (s, _, _) -> s = rq.Protocol.rq_seed) direct
          in
          Alcotest.(check string)
            (rq.Protocol.rq_id ^ " plan matches one-shot") sg
            r.Protocol.rs_best_plan;
          Alcotest.(check (float 0.0))
            (rq.Protocol.rq_id ^ " latency matches one-shot")
            (1e6 *. lat) r.Protocol.rs_best_latency_us
      | _ -> Alcotest.failf "%s was not served" rq.Protocol.rq_id)
    reqs replies;
  let st = Server.shutdown srv in
  Alcotest.(check int) "all sessions completed" 8 st.Server.st_completed;
  Alcotest.(check bool) "cross-session cache hits accrued" true
    (Server.cache_hit_rate st > 0.0)

let t_server_overload_rejects () =
  let srv =
    Server.create
      ~config:{ Server.default_config with cf_workers = 1; cf_max_queue = 0 }
      ()
  in
  (* The admission decision is taken synchronously at submit time, so with
     one worker and no queue the second submit is rejected no matter how
     the domains are scheduled. *)
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let first = ref None in
  Server.submit_async srv (Protocol.request ~candidates:6 ~seed:1 "slow")
    ~reply:(fun resp ->
      Mutex.lock lock;
      first := Some resp;
      Condition.signal cond;
      Mutex.unlock lock);
  (match Server.submit srv (Protocol.request ~candidates:4 ~seed:2 "shed") with
  | Protocol.Overloaded { ov_id; ov_retry_after_ms } ->
      Alcotest.(check string) "rejection echoes the id" "shed" ov_id;
      Alcotest.(check bool) "retry-after hint positive" true
        (ov_retry_after_ms > 0.0)
  | _ -> Alcotest.fail "second request was not load-shed");
  Mutex.lock lock;
  while !first = None do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  let st = Server.shutdown srv in
  Alcotest.(check int) "one rejection counted" 1 st.Server.st_rejected;
  Alcotest.(check int) "the admitted one finished" 1 st.Server.st_completed

let t_server_deadline_expired () =
  let srv = Server.create ~config:{ Server.default_config with cf_workers = 1 } () in
  (* A nanosecond deadline is over before the worker's first guard. *)
  let resp =
    Server.submit srv
      (Protocol.request ~candidates:6 ~seed:1 ~deadline_ms:1e-6 "late")
  in
  (match resp with
  | Protocol.Error_resp { er_class; _ } ->
      Alcotest.(check string) "classified timed-out" "timed-out" er_class
  | Protocol.Result r ->
      Alcotest.(check bool) "or degraded best-so-far" true
        r.Protocol.rs_degraded
  | _ -> Alcotest.fail "deadline produced neither error nor degraded result");
  let st = Server.shutdown srv in
  Alcotest.(check bool) "deadline expiry counted" true
    (st.Server.st_deadline_expired >= 1)

(* Fault draws are pure in (request id, attempt), so scanning ids finds one
   that fails its first attempt and recovers on retry — deterministically. *)
let flaky_plan () = Fault.make ~targets:[ Fault.Plan_gen ] ~seed:7 ~rate:0.5 ()

let find_id pred =
  let plan = flaky_plan () in
  let trips id attempt =
    Fault.trip (Fault.copy plan) ~key:(Server.fault_key ~id ~attempt) Fault.Plan_gen
  in
  let rec scan i =
    if i > 5000 then Alcotest.fail "no id with the wanted fault pattern"
    else
      let id = "r" ^ string_of_int i in
      if pred (trips id) then id else scan (i + 1)
  in
  scan 0

let t_server_retries_transient () =
  let id = find_id (fun trips -> trips 0 && not (trips 1)) in
  let srv =
    Server.create
      ~config:
        { Server.default_config with
          cf_workers = 1;
          cf_fault = flaky_plan ();
          cf_retry = { Retry.default with rp_base_delay_s = 0.001 } }
      ()
  in
  (match Server.submit srv (Protocol.request ~candidates:6 ~seed:1 id) with
  | Protocol.Result r ->
      Alcotest.(check int) "recovered on the second attempt" 1
        r.Protocol.rs_retries;
      Alcotest.(check bool) "and completed" true r.Protocol.rs_complete
  | _ -> Alcotest.fail "transient fault was not retried to success");
  let st = Server.shutdown srv in
  Alcotest.(check bool) "retry counted" true (st.Server.st_retried >= 1)

let t_server_breaker_opens () =
  (* rate 1.0: every attempt of every session faults, so each request
     exhausts its retries and fails — two failures trip the breaker. *)
  let srv =
    Server.create
      ~config:
        { Server.default_config with
          cf_workers = 1;
          cf_fault = Fault.make ~targets:[ Fault.Plan_gen ] ~seed:7 ~rate:1.0 ();
          cf_retry = Retry.no_retry;
          cf_breaker_threshold = 2;
          cf_breaker_cooldown_s = 3600.0 }
      ()
  in
  let fail_once i =
    match Server.submit srv (Protocol.request ~candidates:4 ~seed:i ("f" ^ string_of_int i)) with
    | Protocol.Error_resp { er_class; _ } ->
        Alcotest.(check string) "session faulted" "injected-fault" er_class
    | _ -> Alcotest.fail "fault rate 1.0 produced a result"
  in
  fail_once 1;
  fail_once 2;
  (match Server.submit srv (Protocol.request ~candidates:4 ~seed:3 "refused") with
  | Protocol.Unavailable { un_reason; un_retry_after_ms; _ } ->
      Alcotest.(check string) "breaker names itself" "breaker_open" un_reason;
      Alcotest.(check bool) "cooldown hint positive" true
        (un_retry_after_ms > 0.0)
  | _ -> Alcotest.fail "third request was not refused by the breaker");
  (match Server.submit srv (Protocol.request ~device:"GPU" ~candidates:4 ~seed:4 "other") with
  | Protocol.Unavailable _ -> Alcotest.fail "breaker leaked across workloads"
  | _ -> ());
  let st = Server.shutdown srv in
  Alcotest.(check bool) "trip recorded" true (st.Server.st_breaker_trips >= 1);
  Alcotest.(check bool) "refusal counted" true (st.Server.st_breaker_open >= 1)

(* The probe whose session ends in Timed_out — deliberately not a breaker
   failure — must hand the key back to Open rather than leave it wedged
   Half_open: the workload recovers once a healthy probe gets through. *)
let t_server_stuck_probe_recovers () =
  let now = Atomic.make 0.0 in
  let clock () = Atomic.get now in
  let bad = find_id (fun trips -> trips 0) in
  let good = find_id (fun trips -> not (trips 0)) in
  let srv =
    Server.create ~clock
      ~config:
        { Server.default_config with
          cf_workers = 1;
          cf_fault = flaky_plan ();
          cf_retry = Retry.no_retry;
          cf_breaker_threshold = 1;
          cf_breaker_cooldown_s = 5.0 }
      ()
  in
  (match Server.submit srv (Protocol.request ~candidates:4 ~seed:1 bad) with
  | Protocol.Error_resp { er_class; _ } ->
      Alcotest.(check string) "workload tripped" "injected-fault" er_class
  | _ -> Alcotest.fail "failing workload did not trip");
  Atomic.set now 5.0;
  (* Cooldown elapsed: this request is the probe, and it is already past
     its (submit-stamped) deadline, so it times out with no verdict. *)
  (match
     Server.submit srv
       (Protocol.request ~candidates:4 ~seed:2 ~deadline_ms:0.0 "probe")
   with
  | Protocol.Error_resp { er_class; _ } ->
      Alcotest.(check string) "probe timed out" "timed-out" er_class
  | _ -> Alcotest.fail "expired probe was not timed out");
  (* The abandoned probe re-opened the key: refused, with a hint. *)
  (match Server.submit srv (Protocol.request ~candidates:4 ~seed:3 "refused") with
  | Protocol.Unavailable { un_reason; _ } ->
      Alcotest.(check string) "cooldown restarted" "breaker_open" un_reason
  | _ -> Alcotest.fail "key was not re-opened after the lost probe");
  Atomic.set now 10.0;
  (match Server.submit srv (Protocol.request ~candidates:4 ~seed:4 good) with
  | Protocol.Result r ->
      Alcotest.(check bool) "healthy probe recovers the workload" true
        r.Protocol.rs_complete
  | _ -> Alcotest.fail "workload never recovered from the lost probe");
  ignore (Server.shutdown srv)

(* The deadline clock starts at submit: a request whose budget elapses
   while it waits in the admission queue is expired, not granted a fresh
   deadline at dequeue. *)
let t_server_queue_wait_expires_deadline () =
  let now = Atomic.make 0.0 in
  let clock () = Atomic.get now in
  let srv =
    Server.create ~clock ~config:{ Server.default_config with cf_workers = 1 } ()
  in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let pending = ref 2 in
  let queued = ref None in
  let note slot resp =
    Mutex.lock lock;
    (match slot with Some r -> r := Some resp | None -> ());
    decr pending;
    Condition.signal cond;
    Mutex.unlock lock
  in
  Server.submit_async srv (Protocol.request ~candidates:6 ~seed:1 "ahead")
    ~reply:(note None);
  Server.submit_async srv
    (Protocol.request ~candidates:6 ~seed:2 ~deadline_ms:1000.0 "queued")
    ~reply:(note (Some queued));
  (* The queued request's whole budget elapses behind "ahead". *)
  Atomic.set now 10.0;
  Mutex.lock lock;
  while !pending > 0 do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  (match !queued with
  | Some (Protocol.Error_resp { er_class; _ }) ->
      Alcotest.(check string) "expired while queued" "timed-out" er_class
  | Some (Protocol.Result r) ->
      Alcotest.(check bool) "or degraded to best-so-far" true
        r.Protocol.rs_degraded
  | _ -> Alcotest.fail "queued request was not answered");
  let st = Server.shutdown srv in
  Alcotest.(check bool) "queue-wait expiry counted" true
    (st.Server.st_deadline_expired >= 1)

let t_server_bad_requests () =
  let srv = Server.create ~config:{ Server.default_config with cf_workers = 1 } () in
  (match Server.submit srv (Protocol.request ~network:"alexnet" "unknown-net") with
  | Protocol.Error_resp { er_class; _ } ->
      Alcotest.(check string) "unknown network is bad-request" "bad-request"
        er_class
  | _ -> Alcotest.fail "unknown network accepted");
  (match Server.submit srv (Protocol.request ~device:"TPU" "unknown-dev") with
  | Protocol.Error_resp { er_class; _ } ->
      Alcotest.(check string) "unknown device is bad-request" "bad-request"
        er_class
  | _ -> Alcotest.fail "unknown device accepted");
  let st = Server.shutdown srv in
  Alcotest.(check bool) "bad requests never trip breakers" true
    (st.Server.st_breaker_trips = 0)

let t_server_cold_start_on_corrupt_snapshot () =
  let path = tmp_path "nas_pte_test_serve_corrupt.bin" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "definitely not a cache snapshot");
  let config =
    { Server.default_config with cf_workers = 1; cf_cache_file = Some path }
  in
  let srv = Server.create ~config () in
  let st0 = Server.stats srv in
  Alcotest.(check int) "no entries from junk" 0 st0.Server.st_warm_entries;
  (match st0.Server.st_cache_error with
  | Some (Nas_error.Checkpoint_error _) -> ()
  | Some e -> Alcotest.failf "wrong class %s" (Nas_error.class_name e)
  | None -> Alcotest.fail "corruption went unreported");
  (match Server.submit srv (Protocol.request ~candidates:6 ~seed:1 "after") with
  | Protocol.Result r -> Alcotest.(check bool) "still serves" true r.Protocol.rs_complete
  | _ -> Alcotest.fail "cold-started server failed to serve");
  ignore (Server.shutdown srv);
  (* The shutdown snapshot replaced the junk: the next boot is warm. *)
  let srv2 = Server.create ~config () in
  let warm = (Server.stats srv2).Server.st_warm_entries in
  ignore (Server.shutdown srv2);
  Sys.remove path;
  Alcotest.(check bool) "recovered snapshot warms the restart" true (warm > 0)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "serve"
    [ ( "protocol",
        [ quick "request roundtrip" t_request_roundtrip;
          quick "request defaults" t_request_defaults;
          quick "parse rejects" t_parse_rejects;
          quick "control ops" t_parse_ops;
          quick "response roundtrip" t_response_roundtrip ] );
      ( "taxonomy",
        [ quick "unix errors classified" t_unix_error_classified;
          quick "transient partition" t_transient_partition ] );
      ( "deadline",
        [ quick "expiry" t_deadline_expiry;
          quick "monotonic clock" t_monotonic_clock ] );
      ( "retry",
        [ quick "deterministic jitter" t_retry_deterministic_jitter;
          quick "recovers transient" t_retry_recovers_transient;
          quick "stops on permanent" t_retry_stops_on_permanent;
          quick "respects deadline" t_retry_respects_deadline ] );
      ("admission", [ quick "bounds" t_admission_bounds ]);
      ( "breaker",
        [ quick "state machine" t_breaker_state_machine;
          quick "probe cannot wedge" t_breaker_probe_cannot_wedge ] );
      ( "shared caches",
        [ quick "entries merge" t_cache_entries_merge;
          quick "persistence roundtrip" t_ctx_cache_persistence;
          quick "corruption drills" t_ctx_cache_corruption ] );
      ("cancellation", [ quick "stop hook" t_search_stop_hook ]);
      ( "server",
        [ quick "8 concurrent sessions = one-shot" t_server_concurrent_identical;
          quick "overload load-sheds" t_server_overload_rejects;
          quick "deadline expiry" t_server_deadline_expired;
          quick "retries transients" t_server_retries_transient;
          quick "breaker opens" t_server_breaker_opens;
          quick "stuck probe recovers" t_server_stuck_probe_recovers;
          quick "queue wait expires deadline" t_server_queue_wait_expires_deadline;
          quick "bad requests" t_server_bad_requests;
          quick "cold start on corrupt snapshot"
            t_server_cold_start_on_corrupt_snapshot ] ) ]
