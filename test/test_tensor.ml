(* Tensor and kernel tests: reference semantics plus finite-difference
   gradient checks for every backward kernel. *)

let rng () = Rng.create 7

let check_close ?(tol = 1e-4) msg a b =
  if Float.abs (a -. b) > tol then
    Alcotest.failf "%s: %.8f vs %.8f (tol %.2g)" msg a b tol

let t_create_get_set () =
  let t = Tensor.zeros [| 2; 3; 4 |] in
  Alcotest.(check int) "numel" 24 (Tensor.numel t);
  Tensor.set t [| 1; 2; 3 |] 5.0;
  check_close "get" 5.0 (Tensor.get t [| 1; 2; 3 |]);
  check_close "flat" 5.0 (Tensor.get1 t 23)

let t_init_index_order () =
  let t = Tensor.init [| 2; 3 |] (fun idx -> float_of_int ((idx.(0) * 10) + idx.(1))) in
  check_close "row major" 12.0 (Tensor.get1 t 5);
  check_close "first" 0.0 (Tensor.get1 t 0)

let t_map_arith () =
  let a = Tensor.of_array [| 3 |] [| 1.0; 2.0; 3.0 |] in
  let b = Tensor.of_array [| 3 |] [| 10.0; 20.0; 30.0 |] in
  check_close "add" 22.0 (Tensor.get1 (Tensor.add a b) 1);
  check_close "sub" 9.0 (Tensor.get1 (Tensor.sub b a) 0);
  check_close "mul" 90.0 (Tensor.get1 (Tensor.mul a b) 2);
  check_close "scale" 6.0 (Tensor.get1 (Tensor.scale 2.0 a) 2);
  check_close "sum" 6.0 (Tensor.sum a);
  check_close "mean" 2.0 (Tensor.mean a);
  check_close "sq_norm" 14.0 (Tensor.sq_norm a)

let t_reshape_shares () =
  let a = Tensor.zeros [| 2; 2 |] in
  let b = Tensor.reshape a [| 4 |] in
  Tensor.set1 b 3 9.0;
  check_close "shared" 9.0 (Tensor.get a [| 1; 1 |])

let t_axpy () =
  let x = Tensor.of_array [| 2 |] [| 1.0; 2.0 |] in
  let y = Tensor.of_array [| 2 |] [| 10.0; 10.0 |] in
  Tensor.axpy_ ~alpha:0.5 ~x ~y;
  check_close "axpy" 11.0 (Tensor.get1 y 1)

let t_argmax () =
  let a = Tensor.of_array [| 4 |] [| 1.0; 7.0; 3.0; 7.0 |] in
  Alcotest.(check int) "argmax first" 1 (Tensor.argmax_flat a)

let t_rand_deterministic () =
  let a = Tensor.rand_normal (rng ()) [| 8 |] ~mean:0.0 ~std:1.0 in
  let b = Tensor.rand_normal (rng ()) [| 8 |] ~mean:0.0 ~std:1.0 in
  Alcotest.(check bool) "same seed, same draw" true (Tensor.approx_equal a b)

(* Reference convolution written as directly as possible from eq. (1). *)
let naive_conv ~input ~weight ~stride ~pad ~groups =
  let is = Tensor.shape input and ws = Tensor.shape weight in
  let n = is.(0) and h = is.(2) and w = is.(3) in
  let co = ws.(0) and cig = ws.(1) and kh = ws.(2) and kw = ws.(3) in
  let oh = Ops.conv_out_dim h ~k:kh ~stride ~pad in
  let ow = Ops.conv_out_dim w ~k:kw ~stride ~pad in
  let cog = co / groups in
  Tensor.init [| n; co; oh; ow |] (fun idx ->
      let ni = idx.(0) and coi = idx.(1) and ohi = idx.(2) and owi = idx.(3) in
      let g = coi / cog in
      let acc = ref 0.0 in
      for cg = 0 to cig - 1 do
        let cii = (g * cig) + cg in
        for khi = 0 to kh - 1 do
          for kwi = 0 to kw - 1 do
            let hi = (ohi * stride) + khi - pad in
            let wi = (owi * stride) + kwi - pad in
            if hi >= 0 && hi < h && wi >= 0 && wi < w then
              acc :=
                !acc
                +. (Tensor.get input [| ni; cii; hi; wi |]
                   *. Tensor.get weight [| coi; cg; khi; kwi |])
          done
        done
      done;
      !acc)

let conv_case ~n ~ci ~co ~hw ~k ~stride ~pad ~groups () =
  let r = rng () in
  let input = Tensor.rand_normal r [| n; ci; hw; hw |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| co; ci / groups; k; k |] ~mean:0.0 ~std:1.0 in
  let fast = Ops.conv2d ~input ~weight ~bias:None { Ops.stride; pad; groups; dilation = 1 } in
  let slow = naive_conv ~input ~weight ~stride ~pad ~groups in
  Alcotest.(check bool)
    (Printf.sprintf "conv n%d ci%d co%d k%d s%d p%d g%d" n ci co k stride pad groups)
    true
    (Tensor.approx_equal ~tol:1e-4 fast slow)

let t_conv_bias () =
  let r = rng () in
  let input = Tensor.rand_normal r [| 1; 2; 4; 4 |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| 3; 2; 1; 1 |] ~mean:0.0 ~std:1.0 in
  let bias = Tensor.of_array [| 3 |] [| 1.0; 2.0; 3.0 |] in
  let with_bias =
    Ops.conv2d ~input ~weight ~bias:(Some bias) { Ops.stride = 1; pad = 0; groups = 1; dilation = 1 }
  in
  let without =
    Ops.conv2d ~input ~weight ~bias:None { Ops.stride = 1; pad = 0; groups = 1; dilation = 1 }
  in
  check_close "bias added" 2.0
    (Tensor.get with_bias [| 0; 1; 0; 0 |] -. Tensor.get without [| 0; 1; 0; 0 |])

(* Generic finite-difference check of a scalar loss through a kernel. *)
let finite_diff ~loss ~param ~grad ~samples ~tol name =
  let eps = 1e-4 in
  let r = Rng.create 123 in
  for _ = 1 to samples do
    let i = Rng.int r (Tensor.numel param) in
    let orig = Tensor.get1 param i in
    Tensor.set1 param i (orig +. eps);
    let up = loss () in
    Tensor.set1 param i (orig -. eps);
    let down = loss () in
    Tensor.set1 param i orig;
    let expected = (up -. down) /. (2.0 *. eps) in
    let got = Tensor.get1 grad i in
    if Float.abs (expected -. got) > tol *. (1.0 +. Float.abs expected) then
      Alcotest.failf "%s: fd %.6f vs grad %.6f at %d" name expected got i
  done

let t_conv_backward () =
  let r = rng () in
  let input = Tensor.rand_normal r [| 2; 4; 5; 5 |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| 6; 2; 3; 3 |] ~mean:0.0 ~std:0.5 in
  let params = { Ops.stride = 2; pad = 1; groups = 2; dilation = 1 } in
  (* Loss = weighted sum of outputs with fixed coefficients. *)
  let coeffs = Tensor.rand_normal r [| 2; 6; 3; 3 |] ~mean:0.0 ~std:1.0 in
  let loss () = Tensor.sum (Tensor.mul (Ops.conv2d ~input ~weight ~bias:None params) coeffs) in
  let gin, gw, gb = Ops.conv2d_backward ~input ~weight ~gout:coeffs params in
  finite_diff ~loss ~param:input ~grad:gin ~samples:20 ~tol:1e-2 "conv dinput";
  finite_diff ~loss ~param:weight ~grad:gw ~samples:20 ~tol:1e-2 "conv dweight";
  (* The bias gradient is the per-channel sum of coefficients. *)
  let expected_b0 = ref 0.0 in
  for ni = 0 to 1 do
    for i = 0 to 8 do
      expected_b0 := !expected_b0 +. Tensor.get1 coeffs ((ni * 54) + i)
    done
  done;
  check_close "conv dbias" !expected_b0 (Tensor.get1 gb 0)

let t_linear_backward () =
  let r = rng () in
  let input = Tensor.rand_normal r [| 3; 5 |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| 4; 5 |] ~mean:0.0 ~std:1.0 in
  let bias = Tensor.rand_normal r [| 4 |] ~mean:0.0 ~std:1.0 in
  let coeffs = Tensor.rand_normal r [| 3; 4 |] ~mean:0.0 ~std:1.0 in
  let loss () = Tensor.sum (Tensor.mul (Ops.linear ~input ~weight ~bias) coeffs) in
  let gin, gw, gb = Ops.linear_backward ~input ~weight ~gout:coeffs in
  finite_diff ~loss ~param:input ~grad:gin ~samples:15 ~tol:1e-3 "linear dinput";
  finite_diff ~loss ~param:weight ~grad:gw ~samples:15 ~tol:1e-3 "linear dweight";
  ignore gb

let t_bn_forward_stats () =
  let r = rng () in
  let input = Tensor.rand_normal r [| 4; 3; 6; 6 |] ~mean:5.0 ~std:2.0 in
  let gamma = Tensor.ones [| 3 |] and beta = Tensor.zeros [| 3 |] in
  let out, _ = Ops.batch_norm ~input ~gamma ~beta ~eps:1e-5 in
  (* Per-channel mean ~0 and variance ~1. *)
  for c = 0 to 2 do
    let acc = ref 0.0 and acc2 = ref 0.0 and count = ref 0 in
    Tensor.iteri_flat
      (fun i v ->
        if i / 36 mod 3 = c then begin
          acc := !acc +. v;
          acc2 := !acc2 +. (v *. v);
          incr count
        end)
      out;
    let m = !acc /. float_of_int !count in
    let var = (!acc2 /. float_of_int !count) -. (m *. m) in
    check_close ~tol:1e-3 "bn mean" 0.0 m;
    check_close ~tol:1e-2 "bn var" 1.0 var
  done

let t_bn_backward () =
  let r = rng () in
  let input = Tensor.rand_normal r [| 2; 2; 3; 3 |] ~mean:1.0 ~std:1.5 in
  let gamma = Tensor.rand_normal r [| 2 |] ~mean:1.0 ~std:0.2 in
  let beta = Tensor.rand_normal r [| 2 |] ~mean:0.0 ~std:0.2 in
  let coeffs = Tensor.rand_normal r [| 2; 2; 3; 3 |] ~mean:0.0 ~std:1.0 in
  let loss () =
    let out, _ = Ops.batch_norm ~input ~gamma ~beta ~eps:1e-5 in
    Tensor.sum (Tensor.mul out coeffs)
  in
  let _, cache = Ops.batch_norm ~input ~gamma ~beta ~eps:1e-5 in
  let gin, ggamma, gbeta = Ops.batch_norm_backward ~gout:coeffs ~cache in
  finite_diff ~loss ~param:input ~grad:gin ~samples:12 ~tol:1e-2 "bn dinput";
  finite_diff ~loss ~param:gamma ~grad:ggamma ~samples:2 ~tol:1e-2 "bn dgamma";
  finite_diff ~loss ~param:beta ~grad:gbeta ~samples:2 ~tol:1e-2 "bn dbeta"

let t_pool () =
  let input =
    Tensor.init [| 1; 1; 4; 4 |] (fun idx -> float_of_int ((idx.(2) * 4) + idx.(3)))
  in
  let mp, _ = Ops.max_pool2d input ~size:2 ~stride:2 ~pad:0 in
  check_close "maxpool" 5.0 (Tensor.get mp [| 0; 0; 0; 0 |]);
  check_close "maxpool br" 15.0 (Tensor.get mp [| 0; 0; 1; 1 |]);
  let ap = Ops.avg_pool2d input ~size:2 ~stride:2 ~pad:0 in
  check_close "avgpool" 2.5 (Tensor.get ap [| 0; 0; 0; 0 |])

let t_pool_backward () =
  let r = rng () in
  let input = Tensor.rand_normal r [| 1; 2; 4; 4 |] ~mean:0.0 ~std:1.0 in
  let coeffs = Tensor.rand_normal r [| 1; 2; 2; 2 |] ~mean:0.0 ~std:1.0 in
  let loss_max () =
    let out, _ = Ops.max_pool2d input ~size:2 ~stride:2 ~pad:0 in
    Tensor.sum (Tensor.mul out coeffs)
  in
  let _, indices = Ops.max_pool2d input ~size:2 ~stride:2 ~pad:0 in
  let gin = Ops.max_pool2d_backward ~input ~gout:coeffs ~indices in
  finite_diff ~loss:loss_max ~param:input ~grad:gin ~samples:12 ~tol:1e-2 "maxpool";
  let loss_avg () =
    Tensor.sum (Tensor.mul (Ops.avg_pool2d input ~size:2 ~stride:2 ~pad:0) coeffs)
  in
  let gin = Ops.avg_pool2d_backward ~input ~gout:coeffs ~size:2 ~stride:2 ~pad:0 in
  finite_diff ~loss:loss_avg ~param:input ~grad:gin ~samples:12 ~tol:1e-2 "avgpool"

let t_gap () =
  let input =
    Tensor.init [| 1; 2; 2; 2 |] (fun idx -> float_of_int (idx.(0) + idx.(1) + idx.(2) + idx.(3)))
  in
  let out = Ops.global_avg_pool input in
  check_close "gap c0" 1.0 (Tensor.get out [| 0; 0 |]);
  check_close "gap c1" 2.0 (Tensor.get out [| 0; 1 |])

let t_upsample_roundtrip () =
  let r = rng () in
  let input = Tensor.rand_normal r [| 1; 2; 3; 3 |] ~mean:0.0 ~std:1.0 in
  let up = Ops.upsample_nearest input 2 in
  Alcotest.(check (array int)) "shape" [| 1; 2; 6; 6 |] (Tensor.shape up);
  check_close "copies" (Tensor.get input [| 0; 1; 2; 1 |]) (Tensor.get up [| 0; 1; 5; 3 |]);
  let coeffs = Tensor.rand_normal r [| 1; 2; 6; 6 |] ~mean:0.0 ~std:1.0 in
  let loss () = Tensor.sum (Tensor.mul (Ops.upsample_nearest input 2) coeffs) in
  let gin = Ops.upsample_nearest_backward ~input ~gout:coeffs 2 in
  finite_diff ~loss ~param:input ~grad:gin ~samples:10 ~tol:1e-2 "upsample"

let t_concat_split () =
  let r = rng () in
  let a = Tensor.rand_normal r [| 2; 3; 2; 2 |] ~mean:0.0 ~std:1.0 in
  let b = Tensor.rand_normal r [| 2; 1; 2; 2 |] ~mean:0.0 ~std:1.0 in
  let cat = Ops.concat_channels [ a; b ] in
  Alcotest.(check (array int)) "shape" [| 2; 4; 2; 2 |] (Tensor.shape cat);
  check_close "a part" (Tensor.get a [| 1; 2; 1; 0 |]) (Tensor.get cat [| 1; 2; 1; 0 |]);
  check_close "b part" (Tensor.get b [| 1; 0; 0; 1 |]) (Tensor.get cat [| 1; 3; 0; 1 |]);
  match Ops.split_channels_backward ~gout:cat ~parts:[ 3; 1 ] with
  | [ ga; gb ] ->
      Alcotest.(check bool) "split a" true (Tensor.approx_equal ga a);
      Alcotest.(check bool) "split b" true (Tensor.approx_equal gb b)
  | _ -> Alcotest.fail "expected two parts"

let t_softmax_ce () =
  let logits = Tensor.of_array [| 2; 3 |] [| 2.0; 1.0; 0.0; 0.0; 0.0; 5.0 |] in
  let labels = [| 0; 2 |] in
  let loss, grad = Ops.softmax_cross_entropy ~logits ~labels in
  (* Both samples are confidently correct, so the loss is small. *)
  Alcotest.(check bool) "loss positive small" true (loss > 0.0 && loss < 0.6);
  (* Gradient rows sum to zero. *)
  let s0 = Tensor.get1 grad 0 +. Tensor.get1 grad 1 +. Tensor.get1 grad 2 in
  check_close ~tol:1e-6 "grad row sums to 0" 0.0 s0;
  check_close "accuracy" 1.0 (Ops.accuracy ~logits ~labels)

let t_softmax_grad_fd () =
  let r = rng () in
  let logits = Tensor.rand_normal r [| 3; 4 |] ~mean:0.0 ~std:1.0 in
  let labels = [| 1; 3; 0 |] in
  let loss () = fst (Ops.softmax_cross_entropy ~logits ~labels) in
  let _, grad = Ops.softmax_cross_entropy ~logits ~labels in
  finite_diff ~loss ~param:logits ~grad ~samples:12 ~tol:1e-3 "softmax-ce"

let t_pad_channels () =
  let r = rng () in
  let a = Tensor.rand_normal r [| 1; 2; 2; 2 |] ~mean:0.0 ~std:1.0 in
  let p = Ops.pad_channels a 5 in
  Alcotest.(check (array int)) "shape" [| 1; 5; 2; 2 |] (Tensor.shape p);
  check_close "copied" (Tensor.get a [| 0; 1; 1; 1 |]) (Tensor.get p [| 0; 1; 1; 1 |]);
  check_close "zero" 0.0 (Tensor.get p [| 0; 4; 0; 0 |])

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"conv matches naive on random shapes" ~count:25
      (quad (int_range 1 2) (int_range 1 4) (int_range 1 4) (int_range 3 7))
      (fun (n, cig, cog, hw) ->
        let groups = 1 + ((cig + cog) mod 2) in
        let ci = cig * groups and co = cog * groups in
        let k = 1 + (2 * (hw mod 2)) in
        let stride = 1 + (hw mod 2) in
        let pad = k / 2 in
        let r = Rng.create (n + (100 * ci) + (17 * hw)) in
        let input = Tensor.rand_normal r [| n; ci; hw; hw |] ~mean:0.0 ~std:1.0 in
        let weight = Tensor.rand_normal r [| co; cig; k; k |] ~mean:0.0 ~std:1.0 in
        let fast = Ops.conv2d ~input ~weight ~bias:None { Ops.stride; pad; groups; dilation = 1 } in
        let slow = naive_conv ~input ~weight ~stride ~pad ~groups in
        Tensor.approx_equal ~tol:1e-4 fast slow);
    Test.make ~name:"softmax-ce loss is non-negative" ~count:50
      (pair (int_range 1 5) (int_range 2 6))
      (fun (n, k) ->
        let r = Rng.create (n * k) in
        let logits = Tensor.rand_normal r [| n; k |] ~mean:0.0 ~std:3.0 in
        let labels = Array.init n (fun i -> i mod k) in
        fst (Ops.softmax_cross_entropy ~logits ~labels) >= 0.0);
    Test.make ~name:"upsample backward is adjoint of forward" ~count:20
      (pair (int_range 1 3) (int_range 2 3))
      (fun (c, f) ->
        (* <up(x), y> = <x, up^T(y)> *)
        let r = Rng.create (c * f) in
        let x = Tensor.rand_normal r [| 1; c; 3; 3 |] ~mean:0.0 ~std:1.0 in
        let y = Tensor.rand_normal r [| 1; c; 3 * f; 3 * f |] ~mean:0.0 ~std:1.0 in
        let lhs = Tensor.sum (Tensor.mul (Ops.upsample_nearest x f) y) in
        let rhs = Tensor.sum (Tensor.mul x (Ops.upsample_nearest_backward ~input:x ~gout:y f)) in
        Float.abs (lhs -. rhs) < 1e-6) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tensor"
    [ ( "tensor",
        [ quick "create/get/set" t_create_get_set;
          quick "init row-major" t_init_index_order;
          quick "arith" t_map_arith;
          quick "reshape shares data" t_reshape_shares;
          quick "axpy" t_axpy;
          quick "argmax" t_argmax;
          quick "deterministic rand" t_rand_deterministic ] );
      ( "conv",
        [ quick "basic 3x3" (conv_case ~n:2 ~ci:3 ~co:4 ~hw:6 ~k:3 ~stride:1 ~pad:1 ~groups:1);
          quick "stride 2" (conv_case ~n:1 ~ci:4 ~co:4 ~hw:8 ~k:3 ~stride:2 ~pad:1 ~groups:1);
          quick "1x1" (conv_case ~n:2 ~ci:8 ~co:4 ~hw:5 ~k:1 ~stride:1 ~pad:0 ~groups:1);
          quick "grouped" (conv_case ~n:1 ~ci:8 ~co:8 ~hw:6 ~k:3 ~stride:1 ~pad:1 ~groups:4);
          quick "depthwise" (conv_case ~n:1 ~ci:6 ~co:6 ~hw:5 ~k:3 ~stride:1 ~pad:1 ~groups:6);
          quick "no padding" (conv_case ~n:1 ~ci:2 ~co:3 ~hw:6 ~k:3 ~stride:1 ~pad:0 ~groups:1);
          quick "bias" t_conv_bias;
          quick "backward fd" t_conv_backward ] );
      ( "kernels",
        [ quick "linear backward fd" t_linear_backward;
          quick "bn normalizes" t_bn_forward_stats;
          quick "bn backward fd" t_bn_backward;
          quick "pooling" t_pool;
          quick "pooling backward fd" t_pool_backward;
          quick "global avg pool" t_gap;
          quick "upsample" t_upsample_roundtrip;
          quick "concat/split" t_concat_split;
          quick "softmax-ce" t_softmax_ce;
          quick "softmax-ce fd" t_softmax_grad_fd;
          quick "pad channels" t_pad_channels ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
