(* Robustness tests: the error taxonomy, numeric guards, deterministic
   fault injection, the evaluation supervisor, checkpoint round-trips, and
   the hardened unified search (NaN-guard quarantine, completion under
   injected faults, checkpoint/resume determinism). *)

let setup () =
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  (rng, model, probe)

(* --- taxonomy ---------------------------------------------------------- *)

let t_error_classes () =
  let errs =
    [ Nas_error.Invalid_plan "p"; Shape_mismatch "s";
      Non_finite Nas_error.Fisher_score; Non_finite Nas_error.Cost_model;
      Budget_exceeded "b"; Injected_fault "f"; Checkpoint_error "c";
      Eval_failure "e" ]
  in
  let classes = List.map Nas_error.class_name errs in
  Alcotest.(check int) "classes distinct" (List.length errs)
    (List.length (List.sort_uniq compare classes));
  List.iter
    (fun e -> Alcotest.(check bool) "printable" true (String.length (Nas_error.to_string e) > 0))
    errs

let t_of_exn_classification () =
  let is cls = function Some e -> Nas_error.class_name e = cls | None -> false in
  Alcotest.(check bool) "structured passes through" true
    (is "invalid-plan" (Nas_error.of_exn (Nas_error.Fail (Invalid_plan "x"))));
  Alcotest.(check bool) "Invalid_argument mapped" true
    (is "eval-failure" (Nas_error.of_exn (Invalid_argument "x")));
  Alcotest.(check bool) "Failure mapped" true
    (is "eval-failure" (Nas_error.of_exn (Failure "x")));
  Alcotest.(check bool) "Division_by_zero mapped" true
    (is "eval-failure" (Nas_error.of_exn Division_by_zero));
  Alcotest.(check bool) "Out_of_memory not swallowed" true
    (Nas_error.of_exn Out_of_memory = None)

let t_guard_wrapper () =
  (match Nas_error.guard (fun () -> 41 + 1) with
  | Ok v -> Alcotest.(check int) "ok value" 42 v
  | Error _ -> Alcotest.fail "guard failed a healthy thunk");
  (match Nas_error.guard (fun () -> Nas_error.fail (Non_finite Nas_error.Cost_model)) with
  | Ok _ -> Alcotest.fail "guard passed a failing thunk"
  | Error e ->
      Alcotest.(check string) "classified" "non-finite:cost-model" (Nas_error.class_name e));
  Alcotest.(check bool) "unclassified propagates" true
    (try ignore (Nas_error.guard (fun () -> raise Exit)); false with Exit -> true)

let t_count_classes () =
  let q =
    [ ("a", Nas_error.Non_finite Nas_error.Fisher_score);
      ("b", Nas_error.Non_finite Nas_error.Fisher_score);
      ("c", Nas_error.Invalid_plan "x") ]
  in
  Alcotest.(check (list (pair string int))) "sorted by count"
    [ ("non-finite:fisher-score", 2); ("invalid-plan", 1) ]
    (Nas_error.count_classes q)

(* --- numeric guards ----------------------------------------------------- *)

let t_guard_floats () =
  Alcotest.(check (float 0.0)) "finite passes" 1.5
    (Guard.check_float ~source:Nas_error.Cost_model 1.5);
  let rejects x =
    try ignore (Guard.check_float ~source:Nas_error.Fisher_score x); false
    with Nas_error.Fail (Non_finite Nas_error.Fisher_score) -> true
  in
  Alcotest.(check bool) "nan rejected" true (rejects Float.nan);
  Alcotest.(check bool) "inf rejected" true (rejects Float.infinity);
  Alcotest.(check bool) "neg-inf rejected" true (rejects Float.neg_infinity);
  Alcotest.(check bool) "array scan" false (Guard.all_finite [| 0.0; Float.nan |]);
  Alcotest.(check bool) "array finite" true (Guard.all_finite [| 0.0; -1.0; 3.5 |])

let t_fisher_finite () =
  Alcotest.(check bool) "finite scores" true
    (Fisher.finite { Fisher.per_site = [| 1.0; 2.0 |]; total = 3.0 });
  Alcotest.(check bool) "nan total" false
    (Fisher.finite { Fisher.per_site = [| 1.0 |]; total = Float.nan });
  Alcotest.(check bool) "nan site" false
    (Fisher.finite { Fisher.per_site = [| Float.nan |]; total = 1.0 })

(* --- fault injection ---------------------------------------------------- *)

let t_fault_deterministic () =
  let draws fault =
    List.init 50 (fun i -> Fault.trip fault ~key:i Fault.Fisher_oracle)
  in
  let a = draws (Fault.make ~seed:3 ~rate:0.4 ()) in
  let b = draws (Fault.make ~seed:3 ~rate:0.4 ()) in
  Alcotest.(check (list bool)) "same seed, same draws" a b;
  let c = draws (Fault.make ~seed:4 ~rate:0.4 ()) in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let t_fault_rates () =
  let never = Fault.make ~seed:1 ~rate:0.0 () in
  let always = Fault.make ~seed:1 ~rate:1.0 () in
  Alcotest.(check bool) "rate 0 never trips" false
    (List.exists (fun i -> Fault.trip never ~key:i Fault.Cost_oracle) (List.init 20 Fun.id));
  Alcotest.(check bool) "rate 1 always trips" true
    (List.for_all (fun i -> Fault.trip always ~key:i Fault.Cost_oracle) (List.init 20 Fun.id));
  Alcotest.(check int) "trips counted" 20 (Fault.injected always);
  Alcotest.(check bool) "none disabled" false (Fault.enabled Fault.none);
  Alcotest.(check bool) "none never trips" false (Fault.trip Fault.none ~key:0 Fault.Plan_gen)

let t_fault_targets () =
  let only_fisher = Fault.make ~targets:[ Fault.Fisher_oracle ] ~seed:5 ~rate:1.0 () in
  Alcotest.(check bool) "selected target trips" true
    (Fault.trip only_fisher ~key:0 Fault.Fisher_oracle);
  Alcotest.(check bool) "other target spared" false
    (Fault.trip only_fisher ~key:0 Fault.Cost_oracle);
  Alcotest.(check bool) "corrupt returns nan" true
    (Float.is_nan (Fault.corrupt_float only_fisher ~key:1 Fault.Fisher_oracle 1.0));
  Alcotest.(check (float 0.0)) "corrupt spares" 1.0
    (Fault.corrupt_float only_fisher ~key:1 Fault.Cost_oracle 1.0)

(* --- supervisor --------------------------------------------------------- *)

let t_supervisor_quarantine () =
  let sup = Supervisor.create () in
  (match Supervisor.run sup ~label:"good" (fun () -> 1) with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "healthy eval");
  (match Supervisor.run sup ~label:"bad" (fun () -> Nas_error.fail (Invalid_plan "x")) with
  | Error (Nas_error.Invalid_plan _) -> ()
  | _ -> Alcotest.fail "failure not classified");
  Alcotest.(check int) "evaluated" 2 (Supervisor.evaluated sup);
  Alcotest.(check (list (pair string int))) "attribution" [ ("invalid-plan", 1) ]
    (Supervisor.class_counts sup);
  match Supervisor.quarantined sup with
  | [ ("bad", Nas_error.Invalid_plan _) ] -> ()
  | _ -> Alcotest.fail "quarantine entry"

let t_supervisor_budget () =
  let sup = Supervisor.create ~budget:2 () in
  ignore (Supervisor.run sup ~label:"a" (fun () -> ()));
  ignore (Supervisor.run sup ~label:"b" (fun () -> ()));
  Alcotest.(check bool) "exhausted" true (Supervisor.budget_exhausted sup);
  Alcotest.(check bool) "not yet refused" false (Supervisor.budget_hit sup);
  let ran = ref false in
  (match Supervisor.run sup ~label:"c" (fun () -> ran := true) with
  | Error (Nas_error.Budget_exceeded _) -> ()
  | _ -> Alcotest.fail "budget not enforced");
  Alcotest.(check bool) "refused thunk never ran" false !ran;
  Alcotest.(check bool) "refusal recorded" true (Supervisor.budget_hit sup);
  Alcotest.(check int) "refusal not an evaluation" 2 (Supervisor.evaluated sup);
  Alcotest.(check int) "refusal not quarantined" 0 (List.length (Supervisor.quarantined sup))

(* --- checkpoint --------------------------------------------------------- *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let t_checkpoint_roundtrip () =
  let path = tmp_path "nas_pte_test_ckpt.bin" in
  Checkpoint.remove ~path;
  let v = ("state", [ 1; 2; 3 ], 2.5) in
  (match Checkpoint.save ~path v with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Nas_error.to_string e));
  (match Checkpoint.load ~path with
  | Ok w ->
      let (s, l, f) : string * int list * float = w in
      Alcotest.(check string) "string field" "state" s;
      Alcotest.(check (list int)) "list field" [ 1; 2; 3 ] l;
      Alcotest.(check (float 0.0)) "float field" 2.5 f
  | Error e -> Alcotest.fail (Nas_error.to_string e));
  Checkpoint.remove ~path;
  Alcotest.(check bool) "removed" false (Sys.file_exists path)

let t_checkpoint_rejects_garbage () =
  let missing =
    match Checkpoint.load ~path:(tmp_path "nas_pte_no_such_ckpt.bin") with
    | Error (Nas_error.Checkpoint_error _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing file is a structured error" true missing;
  let path = tmp_path "nas_pte_bad_ckpt.bin" in
  let oc = open_out_bin path in
  output_string oc "not a checkpoint";
  close_out oc;
  let bad =
    match Checkpoint.load ~path with
    | Error (Nas_error.Checkpoint_error _) -> true
    | _ -> false
  in
  Sys.remove path;
  Alcotest.(check bool) "bad magic is a structured error" true bad

let t_checkpoint_rejects_truncated () =
  (* A crash mid-write can leave a prefix of a valid snapshot (only via an
     external copy — the atomic writer itself never exposes one); loading
     it must be a structured error, not a crash or a half-read value. *)
  let path = tmp_path "nas_pte_trunc_ckpt.bin" in
  (match Checkpoint.save ~path ("state", [ 1; 2; 3 ], 2.5) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Nas_error.to_string e));
  let whole = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub whole 0 (String.length whole / 2)));
  let truncated =
    match Checkpoint.load ~path with
    | Error (Nas_error.Checkpoint_error _) -> true
    | _ -> false
  in
  Sys.remove path;
  Alcotest.(check bool) "truncated file is a structured error" true truncated

(* --- hardened search ---------------------------------------------------- *)

let quarantine_has r signature =
  List.exists (fun (s, _) -> s = signature) r.Unified_search.r_quarantined

let t_search_nan_fisher_quarantined () =
  (* Every candidate's Fisher score is forced to NaN: each must be
     quarantined as non-finite, never selected; the search degrades to the
     baseline fallback instead of crashing or mis-ranking. *)
  let rng, model, probe = setup () in
  let fault = Fault.make ~targets:[ Fault.Fisher_oracle ] ~seed:9 ~rate:1.0 () in
  let r =
    Unified_search.search ~candidates:15 ~fault ~rng:(Rng.split rng)
      ~device:Device.i7 ~probe model
  in
  Alcotest.(check bool) "completed" true r.Unified_search.r_complete;
  Alcotest.(check int) "all candidates quarantined" r.r_explored
    (List.length r.r_quarantined);
  List.iter
    (fun (_, e) ->
      Alcotest.(check string) "attributed to the fisher guard"
        "non-finite:fisher-score" (Nas_error.class_name e))
    r.r_quarantined;
  Alcotest.(check bool) "fallback is the baseline network" true
    (Array.for_all (fun p -> p.Site_plan.sp_name = "baseline") r.r_best.Unified_search.cd_plans);
  Alcotest.(check bool) "selected latency finite" true
    (Float.is_finite r.r_best.Unified_search.cd_latency_s)

let t_search_survives_30pct_faults () =
  let rng, model, probe = setup () in
  let fault = Fault.make ~seed:11 ~rate:0.3 () in
  let r =
    Unified_search.search ~candidates:30 ~fault ~rng:(Rng.split rng)
      ~device:Device.i7 ~probe model
  in
  Alcotest.(check bool) "completed" true r.Unified_search.r_complete;
  Alcotest.(check bool) "some faults actually fired" true (Fault.injected fault > 0);
  Alcotest.(check bool) "quarantine non-empty" true (r.r_quarantined <> []);
  Alcotest.(check bool) "attribution counts match" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Unified_search.quarantine_counts r)
    = List.length r.r_quarantined);
  (* The survivor must be a valid, non-quarantined candidate. *)
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "winner plans valid" true
        (Site_plan.valid model.Models.sites.(i) p))
    r.r_best.Unified_search.cd_plans;
  Alcotest.(check bool) "winner not quarantined" false
    (quarantine_has r (Unified_search.plans_signature r.r_best.Unified_search.cd_plans));
  Alcotest.(check bool) "winner latency finite" true
    (Float.is_finite r.r_best.Unified_search.cd_latency_s)

let t_search_fault_free_unchanged () =
  (* The supervised path with no faults must reproduce plain search results
     (same seed, same best). *)
  let run fault =
    let rng, model, probe = setup () in
    let r =
      Unified_search.search ~candidates:20 ?fault ~rng:(Rng.split rng)
        ~device:Device.i7 ~probe model
    in
    r.Unified_search.r_best.Unified_search.cd_latency_s
  in
  Alcotest.(check (float 1e-12)) "fault layer off = identity" (run None)
    (run (Some Fault.none))

let t_search_checkpoint_resume () =
  let path = tmp_path "nas_pte_search_ckpt.bin" in
  Checkpoint.remove ~path;
  let run ?budget ?checkpoint () =
    let rng, model, probe = setup () in
    Unified_search.search ~candidates:20 ?budget ?checkpoint ~checkpoint_every:5
      ~rng:(Rng.split rng) ~device:Device.i7 ~probe model
  in
  let full = run () in
  let partial = run ~budget:7 ~checkpoint:path () in
  Alcotest.(check bool) "budget stop reported" false partial.Unified_search.r_complete;
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
  let resumed = run ~checkpoint:path () in
  Alcotest.(check bool) "resumed run completes" true resumed.Unified_search.r_complete;
  Alcotest.(check bool) "resume skips the explored prefix" true
    (resumed.Unified_search.r_evaluated < full.Unified_search.r_explored);
  Alcotest.(check (float 1e-12)) "same best latency as uninterrupted"
    full.Unified_search.r_best.Unified_search.cd_latency_s
    resumed.Unified_search.r_best.Unified_search.cd_latency_s;
  Alcotest.(check string) "same best plans as uninterrupted"
    (Unified_search.plans_signature full.Unified_search.r_best.Unified_search.cd_plans)
    (Unified_search.plans_signature resumed.Unified_search.r_best.Unified_search.cd_plans);
  Alcotest.(check int) "same rejection accounting" full.Unified_search.r_rejected
    resumed.Unified_search.r_rejected;
  Checkpoint.remove ~path

(* --- bounded pipeline cache ---------------------------------------------- *)

let t_cache_bounded () =
  Pipeline.clear_cache ();
  Pipeline.set_cache_capacity 4;
  let w co =
    { Conv_impl.w_in_channels = 4; w_out_channels = co; w_kernel = 3; w_stride = 1;
      w_groups = 1; w_spatial = 8; w_label = Printf.sprintf "test-co%d" co }
  in
  List.iter (fun co -> ignore (Pipeline.workload_cost Device.i7 (w co))) [ 1; 2; 3; 4; 5; 6 ];
  let s = Pipeline.cache_stats () in
  Alcotest.(check bool) "size capped" true (s.Pipeline.cs_size <= 4);
  Alcotest.(check int) "all were misses" 6 s.cs_misses;
  Alcotest.(check bool) "evictions happened" true (s.cs_evictions > 0);
  (* Re-costing an evicted workload must reproduce the same value. *)
  let a = Pipeline.workload_cost Device.i7 (w 1) in
  Pipeline.clear_cache ();
  Pipeline.set_cache_capacity 8192;
  let b = Pipeline.workload_cost Device.i7 (w 1) in
  Alcotest.(check (float 1e-12)) "eviction is value-transparent" a b

let t_cache_stats_counts () =
  Pipeline.clear_cache ();
  let w =
    { Conv_impl.w_in_channels = 4; w_out_channels = 4; w_kernel = 3; w_stride = 1;
      w_groups = 1; w_spatial = 8; w_label = "test-stats" }
  in
  ignore (Pipeline.workload_cost Device.i7 w);
  ignore (Pipeline.workload_cost Device.i7 w);
  ignore (Pipeline.workload_cost Device.i7 w);
  let s = Pipeline.cache_stats () in
  Alcotest.(check int) "one miss" 1 s.Pipeline.cs_misses;
  Alcotest.(check int) "two hits" 2 s.cs_hits;
  Alcotest.(check int) "one entry" 1 s.cs_size

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"fault draws are pure in (seed, key, target)" ~count:100
      (pair small_nat (int_range 0 10_000))
      (fun (seed, key) ->
        let t1 = Fault.make ~seed ~rate:0.5 () in
        let t2 = Fault.make ~seed ~rate:0.5 () in
        Fault.trip t1 ~key Fault.Cost_oracle = Fault.trip t2 ~key Fault.Cost_oracle);
    Test.make ~name:"guard accepts exactly the finite floats" ~count:100
      (oneof [ float; always Float.nan; always Float.infinity ])
      (fun x ->
        let guarded =
          try Float.is_finite (Guard.check_float ~source:Nas_error.Cost_model x)
          with Nas_error.Fail (Non_finite _) -> not (Float.is_finite x)
        in
        guarded) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "robust"
    [ ( "taxonomy",
        [ quick "classes" t_error_classes;
          quick "of_exn" t_of_exn_classification;
          quick "guard wrapper" t_guard_wrapper;
          quick "count_classes" t_count_classes ] );
      ( "guards",
        [ quick "floats" t_guard_floats; quick "fisher finite" t_fisher_finite ] );
      ( "fault",
        [ quick "deterministic" t_fault_deterministic;
          quick "rates" t_fault_rates;
          quick "targets" t_fault_targets ] );
      ( "supervisor",
        [ quick "quarantine" t_supervisor_quarantine;
          quick "budget" t_supervisor_budget ] );
      ( "checkpoint",
        [ quick "roundtrip" t_checkpoint_roundtrip;
          quick "garbage" t_checkpoint_rejects_garbage;
          quick "truncated" t_checkpoint_rejects_truncated ] );
      ( "search",
        [ quick "nan fisher quarantined" t_search_nan_fisher_quarantined;
          quick "survives 30% faults" t_search_survives_30pct_faults;
          quick "fault-free identity" t_search_fault_free_unchanged;
          quick "checkpoint resume" t_search_checkpoint_resume ] );
      ( "cache",
        [ quick "bounded" t_cache_bounded; quick "stats" t_cache_stats_counts ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
