(* Observability-layer tests: span nesting against a deterministic clock,
   counter/histogram arithmetic and merging, JSONL round-trips through the
   event codec and the file sink, fork/absorb event-order determinism, and
   the end-to-end contract that a traced search produces identical
   [search.*] counters and trace content for workers=1 and workers=4. *)

let setup () =
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  (rng, model, probe)

(* --- clock -------------------------------------------------------------- *)

let t_clock_manual () =
  let c = Obs_clock.manual ~start:10.0 ~step:0.5 () in
  Alcotest.(check (float 1e-9)) "first reading is start" 10.0 (c ());
  Alcotest.(check (float 1e-9)) "advances by step" 10.5 (c ());
  Alcotest.(check (float 1e-9)) "again" 11.0 (c ())

(* --- spans -------------------------------------------------------------- *)

let kinds_names_depths events =
  List.map
    (fun e -> (Obs_event.kind_name e.Obs_event.e_kind, e.e_name, e.e_depth))
    events

let t_span_nesting () =
  let obs = Obs.create ~clock:(Obs_clock.manual ()) () in
  Obs.with_span obs "outer" (fun () ->
      Obs.with_span obs "inner" (fun () -> Obs.note obs ~detail:"x" "mark");
      Obs.with_span obs "inner2" (fun () -> ()));
  Alcotest.(check (list (triple string string int)))
    "event structure"
    [ ("span_begin", "outer", 0);
      ("span_begin", "inner", 1);
      ("note", "mark", 2);
      ("span_end", "inner", 1);
      ("span_begin", "inner2", 1);
      ("span_end", "inner2", 1);
      ("span_end", "outer", 0) ]
    (kinds_names_depths (Obs.events obs));
  (* Manual clock ticks once per reading, so durations are exact: inner
     wraps [enter; note; leave] = 2 ticks, outer wraps everything. *)
  let durations =
    List.filter_map
      (fun e ->
        match e.Obs_event.e_kind with
        | Obs_event.Span_end -> Some (e.e_name, Option.get e.e_dur_s)
        | _ -> None)
      (Obs.events obs)
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "durations from the injected clock"
    [ ("inner", 2.0); ("inner2", 1.0); ("outer", 6.0) ]
    durations;
  (* Span durations feed the per-phase histograms. *)
  let h = Option.get (Metrics.histogram (Obs.metrics obs) "span.inner") in
  Alcotest.(check int) "span.inner observed once" 1 h.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "span.inner total" 2.0 h.h_sum_s

let t_span_exception_safe () =
  let obs = Obs.create ~clock:(Obs_clock.manual ()) () in
  (try
     Obs.with_span obs "boom" (fun () -> failwith "inside")
   with Failure _ -> ());
  Alcotest.(check (list (triple string string int)))
    "span closed despite the raise"
    [ ("span_begin", "boom", 0); ("span_end", "boom", 0) ]
    (kinds_names_depths (Obs.events obs))

let t_disabled_noop () =
  let obs = Obs.disabled in
  let r = Obs.with_span obs "x" (fun () -> 42) in
  Obs.incr obs "c";
  Obs.observe obs "h" 1.0;
  Obs.note obs "n";
  Alcotest.(check int) "with_span still runs the thunk" 42 r;
  Alcotest.(check bool) "disabled" false (Obs.enabled obs);
  Alcotest.(check int) "no events" 0 (List.length (Obs.events obs));
  Alcotest.(check int) "no counters" 0 (Metrics.counter (Obs.metrics obs) "c");
  Alcotest.(check (float 0.0)) "clock reads as zero" 0.0 (Obs.now obs);
  Alcotest.(check bool) "fork is itself" true (Obs.fork obs == obs)

(* --- metrics ------------------------------------------------------------ *)

let t_metrics_math () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.add m "a" 4;
  Metrics.set m "b" 7;
  Alcotest.(check int) "incr+add" 5 (Metrics.counter m "a");
  Alcotest.(check int) "set" 7 (Metrics.counter m "b");
  Alcotest.(check int) "untouched counter reads 0" 0 (Metrics.counter m "zzz");
  List.iter (Metrics.observe m "h") [ 0.5e-6; 3e-4; 3e-4; 2.0 ];
  let h = Option.get (Metrics.histogram m "h") in
  Alcotest.(check int) "count" 4 h.Metrics.h_count;
  Alcotest.(check (float 1e-12)) "sum" (0.5e-6 +. 3e-4 +. 3e-4 +. 2.0) h.h_sum_s;
  Alcotest.(check (float 1e-12)) "min" 0.5e-6 h.h_min_s;
  Alcotest.(check (float 1e-12)) "max" 2.0 h.h_max_s;
  Alcotest.(check int) "buckets hold every observation" 4
    (Array.fold_left ( + ) 0 h.h_buckets);
  (* 0.5µs falls in the first bucket (≤1µs); 3e-4 in the ≤1e-3 bucket. *)
  Alcotest.(check int) "1µs bucket" 1 h.h_buckets.(0);
  Alcotest.(check int) "1ms bucket" 2 h.h_buckets.(3)

let t_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a "c" 2;
  Metrics.add b "c" 3;
  Metrics.add b "only_b" 1;
  Metrics.observe a "h" 1.0;
  Metrics.observe b "h" 3.0;
  Metrics.observe b "hb" 0.25;
  Metrics.merge a b;
  Alcotest.(check int) "counters add" 5 (Metrics.counter a "c");
  Alcotest.(check int) "missing counters created" 1 (Metrics.counter a "only_b");
  let h = Option.get (Metrics.histogram a "h") in
  Alcotest.(check int) "histogram counts add" 2 h.Metrics.h_count;
  Alcotest.(check (float 1e-12)) "sums add" 4.0 h.h_sum_s;
  Alcotest.(check (float 1e-12)) "min is min" 1.0 h.h_min_s;
  Alcotest.(check (float 1e-12)) "max is max" 3.0 h.h_max_s;
  Alcotest.(check bool) "missing histograms created" true
    (Metrics.histogram a "hb" <> None);
  (* merge leaves the source untouched *)
  Alcotest.(check int) "source untouched" 3 (Metrics.counter b "c")

(* --- JSONL round-trip --------------------------------------------------- *)

let sample_events =
  [ Obs_event.span_begin ~name:"search" ~depth:0 ~t:1234.5678;
    Obs_event.span_end ~name:"fisher" ~depth:2 ~t:0.001 ~dur_s:9.53e-07;
    Obs_event.note ~detail:"quote\" slash\\ tab\t nl\n ctl\001 end" ~name:"quarantine"
      ~depth:3 ~t:1e-9 ();
    Obs_event.note ~name:"bare" ~depth:0 ~t:0.0 () ]

let t_event_json_roundtrip () =
  List.iter
    (fun e ->
      match Obs_event.of_json (Obs_event.to_json e) with
      | None -> Alcotest.failf "unparseable: %s" (Obs_event.to_json e)
      | Some e' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip of %s" (Obs_event.to_json e))
            true (e = e'))
    sample_events;
  Alcotest.(check (option reject)) "garbage rejected" None
    (Obs_event.of_json "not json at all");
  Alcotest.(check (option reject)) "missing fields rejected" None
    (Obs_event.of_json "{\"kind\":\"note\"}")

let t_sink_file_roundtrip () =
  let sink = Trace_sink.memory () in
  List.iter (Trace_sink.emit sink) sample_events;
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_sink.write_to sink path;
      let back = Trace_sink.load path in
      Alcotest.(check int) "all lines parsed" (List.length sample_events)
        (List.length back);
      Alcotest.(check bool) "file round-trip is lossless" true
        (back = sample_events))

(* --- fork / absorb ------------------------------------------------------ *)

let t_fork_absorb_order () =
  let obs = Obs.create ~clock:(Obs_clock.manual ()) () in
  Obs.with_span obs "parent" (fun () ->
      let w0 = Obs.fork obs and w1 = Obs.fork obs in
      Obs.with_span w0 "w0-span" (fun () -> Obs.incr w0 "work");
      Obs.with_span w1 "w1-span" (fun () -> Obs.incr w1 "work");
      Obs.absorb obs w0;
      Obs.absorb obs w1);
  Alcotest.(check (list (triple string string int)))
    "worker events appended in absorb order, at inherited depth"
    [ ("span_begin", "parent", 0);
      ("span_begin", "w0-span", 1);
      ("span_end", "w0-span", 1);
      ("span_begin", "w1-span", 1);
      ("span_end", "w1-span", 1);
      ("span_end", "parent", 0) ]
    (kinds_names_depths (Obs.events obs));
  Alcotest.(check int) "worker counters merged" 2
    (Metrics.counter (Obs.metrics obs) "work")

(* --- traced search determinism ------------------------------------------ *)

let search_counters obs =
  List.filter
    (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "search.")
    (Metrics.counters (Obs.metrics obs))

let stripped_trace obs = List.map Obs_event.strip_times (Obs.events obs)

let run_traced ~workers =
  let rng, model, probe = setup () in
  let obs = Obs.create () in
  let ctx = Eval_ctx.create ~obs () in
  let r =
    Unified_search.search ~candidates:24 ~workers ~ctx ~rng:(Rng.split rng)
      ~device:Device.i7 ~probe model
  in
  (r, obs)

let t_traced_search_deterministic () =
  let r1, obs1 = run_traced ~workers:1 in
  let r4, obs4 = run_traced ~workers:4 in
  Alcotest.(check string) "same winner"
    (Unified_search.plans_signature r1.Unified_search.r_best.Unified_search.cd_plans)
    (Unified_search.plans_signature r4.Unified_search.r_best.Unified_search.cd_plans);
  Alcotest.(check (list (pair string int)))
    "search.* counters bit-identical across worker counts"
    (search_counters obs1) (search_counters obs4);
  Alcotest.(check bool) "counters non-trivial" true
    (List.mem_assoc "search.generated" (search_counters obs1));
  Alcotest.(check int) "trace sizes agree"
    (List.length (stripped_trace obs1))
    (List.length (stripped_trace obs4));
  Alcotest.(check bool) "trace content identical once times are stripped" true
    (stripped_trace obs1 = stripped_trace obs4);
  (* The counters agree with the search result itself. *)
  Alcotest.(check int) "fisher_rejected = r_rejected" r1.r_rejected
    (Metrics.counter (Obs.metrics obs1) "search.fisher_rejected");
  Alcotest.(check int) "generated = r_explored" r1.r_explored
    (Metrics.counter (Obs.metrics obs1) "search.generated")

(* --- report ------------------------------------------------------------- *)

let t_report () =
  let m = Metrics.create () in
  Metrics.set m "search.generated" 40;
  Metrics.set m "search.fisher_rejected" 36;
  Metrics.set m "search.cost_ranked" 4;
  Metrics.observe m "span.fisher" 0.5;
  Metrics.observe m "span.fisher" 0.25;
  Metrics.observe m "span.cost" 0.1;
  let r = Report.of_metrics ~wall_s:1.5 m in
  Alcotest.(check (float 1e-9)) "rejection fraction" 0.9 r.Report.rp_rejection_fraction;
  Alcotest.(check (float 1e-9)) "paper claim" 0.9 r.rp_paper_fraction;
  Alcotest.(check int) "phases found" 2 (List.length r.rp_phases);
  (let fisher = List.hd r.rp_phases in
   Alcotest.(check string) "slowest phase first" "fisher" fisher.Report.ph_name;
   Alcotest.(check int) "phase count" 2 fisher.ph_count;
   Alcotest.(check (float 1e-9)) "phase total" 0.75 fisher.ph_total_s);
  let json = Report.to_json r in
  let contains needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub json i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json mentions %s" needle) true
        (contains needle))
    [ "\"rejection_fraction\":0.9"; "\"paper_rejection_fraction\":0.9";
      "\"name\":\"fisher\""; "\"generated\":40" ];
  (* An empty registry must not divide by zero. *)
  let empty = Report.of_metrics (Metrics.create ()) in
  Alcotest.(check (float 0.0)) "empty fraction" 0.0 empty.rp_rejection_fraction

let () =
  Alcotest.run "obs"
    [ ( "clock",
        [ Alcotest.test_case "manual clock" `Quick t_clock_manual ] );
      ( "span",
        [ Alcotest.test_case "nesting, depths, durations" `Quick t_span_nesting;
          Alcotest.test_case "exception safety" `Quick t_span_exception_safe;
          Alcotest.test_case "disabled recorder no-ops" `Quick t_disabled_noop ] );
      ( "metrics",
        [ Alcotest.test_case "counter and histogram math" `Quick t_metrics_math;
          Alcotest.test_case "merge" `Quick t_metrics_merge ] );
      ( "jsonl",
        [ Alcotest.test_case "event round-trip" `Quick t_event_json_roundtrip;
          Alcotest.test_case "file sink round-trip" `Quick t_sink_file_roundtrip ] );
      ( "fork-absorb",
        [ Alcotest.test_case "event order and depth" `Quick t_fork_absorb_order ] );
      ( "search",
        [ Alcotest.test_case "workers=1 vs workers=4 telemetry" `Slow
            t_traced_search_deterministic ] );
      ( "report",
        [ Alcotest.test_case "summary rendering" `Quick t_report ] ) ]
