(* Registry differential tests: the block algebra must reproduce the six
   paper presets bit-identically (structure snapshots at every scale and
   seeded search results), every registered family must build and agree
   with the static analyzer on every site, and the CLI/protocol network
   validation must be driven by the registry. *)

let impl_menu =
  [ Conv_impl.Full; Grouped 2; Grouped 3; Grouped 4; Grouped 8; Grouped 16;
    Bottleneck 2; Bottleneck 3; Bottleneck 4; Depthwise_separable;
    Spatial_bottleneck 2; Spatial_bottleneck 3; Split_grouped (2, 4);
    Split_grouped (2, 8); Split_grouped (3, 5); Split_grouped (2, 2) ]

(* Golden structure of the six paper presets, recorded before the block
   algebra existed: (name, scale, sites, macs, nodes, params, mult_c,
   mult_s, digest).  Any drift here is a change to the networks the
   experiments run on and must be deliberate. *)
let legacy_golden =
  [ ("resnet18", `Search, 16, 2218624, 76, 175192, 8, 2, "07439b892cb62769d072e1bee72185c3");
    ("resnet18", `Train, 16, 555136, 76, 175192, 8, 4, "07439b892cb62769d072e1bee72185c3");
    ("resnet18", `Imagenet, 16, 2219264, 76, 175832, 8, 7, "de7d54cc47c2a49794999306b91bd71c");
    ("resnet34", `Search, 32, 4577920, 140, 333016, 8, 2, "b76a7231a11b5754b66e079325560b28");
    ("resnet34", `Train, 32, 1144960, 140, 333016, 8, 4, "b76a7231a11b5754b66e079325560b28");
    ("resnet34", `Imagenet, 32, 4578560, 140, 333656, 8, 7, "65caa7a6f63d6e633f8321896ba78ef7");
    ("resnext29", `Search, 9, 5561600, 102, 143576, 8, 2, "0f357d592289bbb7165d3c8281e17130");
    ("resnext29", `Train, 9, 1391360, 102, 143576, 8, 4, "0f357d592289bbb7165d3c8281e17130");
    ("resnext29", `Imagenet, 9, 22243840, 102, 144856, 8, 1, "cc686fe69c260f4d6efcf7d9256310d1");
    ("densenet161", `Search, 58, 5425962, 221, 143844, 6, 2, "04c75c8969a5ca6c2e88c4ae4c105a83");
    ("densenet161", `Train, 58, 1357458, 221, 143844, 6, 4, "04c75c8969a5ca6c2e88c4ae4c105a83");
    ("densenet161", `Imagenet, 58, 21701268, 221, 145134, 6, 7, "4ce98e8f90d28fbbd53441c26935858f");
    ("densenet169", `Search, 50, 2816328, 193, 63309, 5, 2, "7bbbbbb9dc4b7e7eab8123f8be334766");
    ("densenet169", `Train, 50, 704712, 193, 63309, 5, 4, "7bbbbbb9dc4b7e7eab8123f8be334766");
    ("densenet169", `Imagenet, 50, 11263632, 193, 64149, 5, 7, "40b0add166c1bb8e7db506ea84f28b7b");
    ("densenet201", `Search, 58, 3067008, 221, 80817, 5, 2, "c35cffbbdc91c3a446d45c2a3ff4bb02");
    ("densenet201", `Train, 58, 767472, 221, 80817, 5, 4, "c35cffbbdc91c3a446d45c2a3ff4bb02");
    ("densenet201", `Imagenet, 58, 12266112, 221, 81777, 5, 7, "793c29a911c43c1bb01a1acb33170026") ]

let scale_name = function
  | `Search -> "search"
  | `Train -> "train"
  | `Imagenet -> "imagenet"

let t_legacy_structure () =
  List.iter
    (fun (name, scale, sites, macs, nodes, params, mc, ms, digest) ->
      let where what = Printf.sprintf "%s/%s %s" name (scale_name scale) what in
      let spec = Option.get (Zoo.spec ~scale name) in
      let m = Models.build spec (Rng.create 42) in
      Alcotest.(check int) (where "sites") sites (Array.length m.Models.sites);
      Alcotest.(check int) (where "macs") macs (Models.total_macs m);
      Alcotest.(check int) (where "nodes") nodes (Graph.node_count m.Models.graph);
      Alcotest.(check int) (where "params") params (Models.conv_params m);
      Alcotest.(check int) (where "mult_c") mc m.Models.cost_mult_c;
      Alcotest.(check int) (where "mult_s") ms m.Models.cost_mult_s;
      Alcotest.(check string) (where "digest") digest (Models.graph_digest m))
    legacy_golden

(* Seeded 16-candidate searches on the paper presets: the winning plan
   assignment (as an MD5 of the plans signature), the predicted latency and
   the Fisher rejection count must all survive the refactor bit-for-bit. *)
let search_golden =
  [ ("resnet18", "1.685597094e-03", 1, "f11870eedd8467305008a19bef24cdfe");
    ("resnet34", "3.160694066e-03", 6, "84f5c56b7c462bbd123ea955dade6bf9");
    ("resnext29", "1.473218612e-02", 14, "5bfa6e31b28d7c32eae38c19244bb7d9");
    ("densenet161", "4.745407484e-03", 10, "d9c3725809aab60a5e9eca3ab4a46e92");
    ("densenet169", "1.782710559e-03", 8, "c2379415691a79124383c75400343608");
    ("densenet201", "1.987449201e-03", 3, "d9c3725809aab60a5e9eca3ab4a46e92") ]

let seeded_search name ~candidates =
  let rng = Rng.create 42 in
  let m = Models.build (Option.get (Zoo.spec name)) rng in
  let probe =
    Exp_common.probe_batch (Rng.split rng) ~input_size:m.Models.input_size
  in
  ( m,
    Unified_search.search ~candidates ~rng:(Rng.split rng) ~device:Device.i7
      ~probe m )

let t_legacy_search () =
  List.iter
    (fun (name, latency, rejected, sig_md5) ->
      let _, r = seeded_search name ~candidates:16 in
      Alcotest.(check string)
        (name ^ " best latency") latency
        (Printf.sprintf "%.9e" r.Unified_search.r_best.Unified_search.cd_latency_s);
      Alcotest.(check int) (name ^ " rejected") rejected r.r_rejected;
      Alcotest.(check string) (name ^ " winning plans") sig_md5
        (Digest.to_hex
           (Digest.string (Unified_search.plans_signature r.r_best.cd_plans))))
    search_golden

let t_registry_coverage () =
  Alcotest.(check bool) "registry is non-trivial" true (List.length Zoo.all >= 9);
  List.iter
    (fun (e : Zoo.entry) ->
      List.iter
        (fun scale ->
          let spec = e.ze_spec scale in
          Alcotest.(check (list string))
            (e.ze_name ^ " spec validates") [] (Block.validate spec);
          let m = Models.build spec (Rng.create 42) in
          Array.iter
            (fun s ->
              Alcotest.(check int)
                (e.ze_name ^ " site " ^ s.Conv_impl.site_label ^ " consistent")
                0
                (List.length (Shape_infer.check_site s));
              List.iter
                (fun impl ->
                  Alcotest.(check bool)
                    (e.ze_name ^ " analyzer agrees on "
                    ^ Conv_impl.to_string impl)
                    (Conv_impl.valid s impl)
                    (Shape_infer.check_impl s impl = []))
                impl_menu)
            m.Models.sites;
          let logits =
            Models.forward_logits m
              (Tensor.rand_normal (Rng.create 7)
                 [| 1; m.Models.input_channels; m.Models.input_size;
                    m.Models.input_size |]
                 ~mean:0.0 ~std:1.0)
          in
          Alcotest.(check (array int))
            (e.ze_name ^ " logits shape")
            [| 1; spec.Block.sp_num_classes |]
            (Tensor.shape logits))
        [ `Search; `Train; `Imagenet ];
      (* Pinned snapshot agrees with a fresh build. *)
      match e.ze_snapshot with
      | None -> Alcotest.fail (e.ze_name ^ " has no recorded snapshot")
      | Some s ->
          let m = Models.build (e.ze_spec `Search) (Rng.create 42) in
          Alcotest.(check int) (e.ze_name ^ " snap sites") s.Zoo.zs_sites
            (Array.length m.Models.sites);
          Alcotest.(check int) (e.ze_name ^ " snap macs") s.Zoo.zs_macs
            (Models.total_macs m);
          Alcotest.(check string) (e.ze_name ^ " snap digest") s.Zoo.zs_digest
            (Models.graph_digest m))
    Zoo.all

let t_new_families_searchable () =
  (* Every non-paper family runs the unified search end-to-end and finds a
     candidate at least as fast as the baseline. *)
  List.iter
    (fun (e : Zoo.entry) ->
      let _, r = seeded_search e.ze_name ~candidates:8 in
      Alcotest.(check bool)
        (e.ze_name ^ " explored") true
        (r.Unified_search.r_explored >= 8);
      Alcotest.(check bool)
        (e.ze_name ^ " best no slower than baseline")
        true
        (r.r_best.Unified_search.cd_latency_s
        <= r.r_baseline.Pipeline.ev_latency_s +. 1e-12))
    (List.filter (fun e -> not e.Zoo.ze_paper) Zoo.all)

let t_cost_mults_explicit () =
  (* Multipliers come from the spec's explicit paper-scale dimensions, not
     from parsing the family name: renaming a spec must not change them. *)
  List.iter
    (fun name ->
      let spec = Option.get (Zoo.spec name) in
      let renamed = { spec with Block.sp_name = "x_" ^ name ^ "_y" } in
      let mc, ms = Models.cost_mults spec in
      let mc', ms' = Models.cost_mults renamed in
      Alcotest.(check (pair int int))
        (name ^ " mults survive renaming") (mc, ms) (mc', ms'))
    Zoo.names;
  (* The densenet161 oddity that motivated this: growth 48 at paper scale
     vs 32 for the deeper variants, carried explicitly now. *)
  Alcotest.(check (pair int int))
    "densenet161 mults" (6, 2)
    (Models.cost_mults (Option.get (Zoo.spec "densenet161")));
  Alcotest.(check (pair int int))
    "densenet169 mults" (5, 2)
    (Models.cost_mults (Option.get (Zoo.spec "densenet169")))

let t_protocol_network_validation () =
  (* The protocol accepts exactly the registry. *)
  List.iter
    (fun name ->
      match
        Protocol.parse
          (Printf.sprintf "{\"op\": \"search\", \"id\": \"t\", \"network\": %S}" name)
      with
      | Ok (Protocol.Search rq) ->
          Alcotest.(check string) (name ^ " accepted") name rq.Protocol.rq_network
      | Ok _ -> Alcotest.fail (name ^ ": wrong message kind")
      | Error m -> Alcotest.fail (name ^ ": rejected: " ^ m))
    Zoo.names;
  match Protocol.parse "{\"op\": \"search\", \"id\": \"t\", \"network\": \"vgg16\"}" with
  | Ok _ -> Alcotest.fail "unknown network accepted"
  | Error m ->
      List.iter
        (fun name ->
          let has_sub =
            let ln = String.length name and lm = String.length m in
            let rec go i = i + ln <= lm && (String.sub m i ln = name || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) ("error lists " ^ name) true has_sub)
        Zoo.names

let () =
  Alcotest.run "zoo"
    [ ( "registry",
        [ Alcotest.test_case "legacy structure pinned" `Quick t_legacy_structure;
          Alcotest.test_case "legacy searches pinned" `Slow t_legacy_search;
          Alcotest.test_case "every entry builds and analyzes" `Slow t_registry_coverage;
          Alcotest.test_case "new families searchable" `Slow t_new_families_searchable;
          Alcotest.test_case "cost mults are explicit" `Quick t_cost_mults_explicit;
          Alcotest.test_case "protocol validates networks" `Quick t_protocol_network_validation ] ) ]
