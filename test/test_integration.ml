(* Cross-module integration tests: the full pipelines the experiments are
   built from, exercised end to end at miniature sizes.

   1. schedule -> lowered program -> interpreter == reference kernels, for
      the literal sec-7.3 sequences;
   2. search -> rebuild winner -> train -> accuracy;
   3. cost model <-> roofline consistency across devices;
   4. Fisher rejection statistics behave like a filter;
   5. CSV export round-trips. *)

let rng () = Rng.create 2718

(* --- 1. Named sequences execute correctly ------------------------------ *)

let t_sequences_execute () =
  let co = 8 and ci = 8 and hw = 6 and k = 3 in
  let pad = 1 in
  let nest = Loop_nest.conv_nest_of_dims ~co ~ci ~oh:hw ~ow:hw ~k ~stride:1 ~groups:1 in
  let r = rng () in
  let input = Tensor.rand_normal r [| ci; hw; hw |] ~mean:0.0 ~std:1.0 in
  let padded = Loop_nest.pad_input input ~pad in
  (* Seq2 = grouped(2) with an unroll annotation: output must equal the
     grouped convolution exactly. *)
  (match Sequences.schedules (Sequences.Seq2 { g = 2; unroll = 16 }) nest with
  | [ s ] ->
      let weight = Tensor.rand_normal r [| co; ci / 2; k; k |] ~mean:0.0 ~std:1.0 in
      let prog = Loop_nest.lower nest s in
      let out = Tensor.zeros [| co; hw; hw |] in
      Loop_nest.run prog ~output:out ~weight ~input:padded;
      let reference =
        Ops.conv2d
          ~input:(Tensor.reshape input [| 1; ci; hw; hw |])
          ~weight ~bias:None
          { Ops.stride = 1; pad; groups = 2; dilation = 1 }
      in
      Alcotest.(check bool) "seq2 == grouped conv" true
        (Tensor.approx_equal ~tol:1e-4
           (Tensor.reshape out [| 1; co; hw; hw |])
           reference)
  | _ -> Alcotest.fail "seq2: one schedule");
  (* Seq3 = two half-output nests with different grouping factors. *)
  match Sequences.schedules (Sequences.Seq3 { g1 = 2; g2 = 4 }) nest with
  | [ lo; hi ] ->
      Alcotest.(check int) "lo half points" (8 / 2 * ci * hw * hw * k * k / 2)
        (Poly.points lo);
      Alcotest.(check int) "hi half points" (8 / 2 * ci * hw * hw * k * k / 4)
        (Poly.points hi)
  | _ -> Alcotest.fail "seq3: two schedules"

(* --- 2. Search winner trains ------------------------------------------- *)

let t_search_winner_trains () =
  let r = rng () in
  let model = Models.build (Models.resnet18 ~scale:`Train ()) r in
  let data = Synthetic_data.cifar_like_small (Rng.split r) ~n:128 in
  let probe = Synthetic_data.fixed_batch (Rng.split r) data ~batch_size:16 in
  let result =
    Unified_search.search ~candidates:25 ~rng:(Rng.split r) ~device:Device.i7
      ~probe model
  in
  let impls =
    Array.map (fun p -> p.Site_plan.sp_impl) result.Unified_search.r_best.Unified_search.cd_plans
  in
  let winner = Models.rebuild model (Rng.split r) impls in
  let batch_rng = Rng.split r in
  let _ =
    Train.train winner ~steps:60
      ~batch_fn:(fun step -> Synthetic_data.batch_fn batch_rng data ~batch_size:16 step)
      ~base_lr:0.05
  in
  let acc = Train.evaluate winner (Synthetic_data.batches data ~batch_size:16) in
  Alcotest.(check bool)
    (Printf.sprintf "winner trains (acc %.2f)" acc)
    true (acc > 0.5)

(* --- 3. Roofline consistency ------------------------------------------- *)

let t_roofline_consistent () =
  let n = Loop_nest.conv_nest_of_dims ~co:64 ~ci:64 ~oh:32 ~ow:32 ~k:3 ~stride:1 ~groups:1 in
  List.iter
    (fun dev ->
      let s, _ = Autotune.tune dev n in
      let rf = Roofline.analyze dev n s in
      Alcotest.(check bool) "intensity positive" true (rf.Roofline.rf_intensity > 0.0);
      (* Achieved throughput can never beat the attainable roof by more than
         the model's bookkeeping slack. *)
      Alcotest.(check bool)
        (dev.Device.short_name ^ " under the roof")
        true
        (rf.rf_achieved_macs_per_s
        <= rf.rf_attainable_macs_per_s *. 1.05 +. 1e6))
    Device.all

let t_roofline_dw_is_memory_bound () =
  (* A depthwise convolution has tiny arithmetic intensity: on the mGPU it
     must classify as memory- or overhead-bound, never compute-bound. *)
  let n = Loop_nest.conv_nest_of_dims ~co:64 ~ci:64 ~oh:32 ~ow:32 ~k:3 ~stride:1 ~groups:64 in
  let s, _ = Autotune.tune Device.maxwell_mgpu n in
  let rf = Roofline.analyze Device.maxwell_mgpu n s in
  Alcotest.(check bool) "not compute bound" true
    (rf.Roofline.rf_bound <> Roofline.Compute_bound)

(* --- 4. Fisher filter statistics --------------------------------------- *)

let t_filter_statistics () =
  let r = rng () in
  let model = Models.build (Models.resnet18 ()) r in
  let probe = Exp_common.probe_batch (Rng.split r) ~input_size:16 in
  let result =
    Unified_search.search ~candidates:40 ~rng:(Rng.split r) ~device:Device.i7
      ~probe model
  in
  (* With aggressive random candidates a meaningful share must be rejected
     (the paper reports ~90%; we assert a loose band). *)
  let frac =
    float_of_int result.Unified_search.r_rejected
    /. float_of_int result.r_explored
  in
  Alcotest.(check bool)
    (Printf.sprintf "rejection fraction %.2f in (0, 1)" frac)
    true
    (frac > 0.0 && frac < 1.0)

(* --- 5. CSV export ------------------------------------------------------ *)

let t_csv_roundtrip () =
  let dir = Filename.temp_file "npte" "csv" in
  Sys.remove dir;
  Csv_out.results_dir := dir;
  let path =
    Csv_out.write ~name:"test" ~header:[ "a"; "b" ]
      [ [ "1"; "with,comma" ]; [ "2"; "with \"quote\"" ] ]
  in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Csv_out.results_dir := "results";
  match List.rev !lines with
  | [ header; row1; row2 ] ->
      Alcotest.(check string) "header" "a,b" header;
      Alcotest.(check string) "comma quoted" "1,\"with,comma\"" row1;
      Alcotest.(check string) "quote escaped" "2,\"with \"\"quote\"\"\"" row2
  | other -> Alcotest.failf "expected 3 lines, got %d" (List.length other)

(* --- 6. Annotations interact with the cost model ------------------------ *)

let t_prefetch_helps_memory_bound () =
  let n = Loop_nest.conv_nest_of_dims ~co:256 ~ci:256 ~oh:16 ~ow:16 ~k:3 ~stride:1 ~groups:1 in
  let base = Loop_nest.baseline_schedule n in
  let plain = Cost_model.estimate Device.arm_a57 n base in
  let pf = Cost_model.estimate Device.arm_a57 n (Poly.prefetch base ~pos:3) in
  Alcotest.(check bool) "prefetch reduces memory time" true
    (pf.Cost_model.memory_s < plain.Cost_model.memory_s)

let t_parallel_annotation_helps () =
  let n = Loop_nest.conv_nest_of_dims ~co:32 ~ci:32 ~oh:8 ~ow:8 ~k:3 ~stride:1 ~groups:1 in
  (* Put a reduction loop outermost so the implicit parallel prefix is
     empty; the explicit annotation restores multi-core speedup. *)
  let s = Poly.reorder (Loop_nest.baseline_schedule n) [| 1; 0; 2; 3; 4; 5 |] in
  let plain = Cost_model.estimate Device.i7 n s in
  let par = Cost_model.estimate Device.i7 n (Poly.parallelize s ~pos:1) in
  Alcotest.(check bool) "parallel speedup grows" true
    (par.Cost_model.parallel_speedup > plain.Cost_model.parallel_speedup)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "integration"
    [ ( "pipelines",
        [ quick "sequences execute" t_sequences_execute;
          slow "search winner trains" t_search_winner_trains;
          quick "fisher filter statistics" t_filter_statistics ] );
      ( "roofline",
        [ quick "consistency" t_roofline_consistent;
          quick "depthwise memory bound" t_roofline_dw_is_memory_bound ] );
      ( "infrastructure",
        [ quick "csv round-trip" t_csv_roundtrip;
          quick "prefetch model" t_prefetch_helps_memory_bound;
          quick "parallel annotation" t_parallel_annotation_helps ] ) ]
