(* Loop-nest lowering and interpretation tests: every semantics-preserving
   schedule must compute exactly the reference convolution, and each neural
   transformation must compute the intended reduced convolution. *)

let rng () = Rng.create 11

(* Runs a lowered program for one sample and returns the [co;oh;ow] output.
   The padded input is cropped to the program's expected footprint (a strided
   convolution can leave an unread trailing row/column). *)
let run_program nest schedule ~weight ~input_padded =
  let prog = Loop_nest.lower nest schedule in
  let co = Poly.iter_extent schedule "co" in
  let oh = Poly.iter_extent schedule "oh" and ow = Poly.iter_extent schedule "ow" in
  let ci = (Tensor.shape input_padded).(0) in
  let ihp = ((oh - 1) * nest.Loop_nest.nc_stride) + Poly.iter_extent schedule "kh" in
  let iwp = ((ow - 1) * nest.nc_stride) + Poly.iter_extent schedule "kw" in
  let input =
    if (Tensor.shape input_padded).(1) = ihp && (Tensor.shape input_padded).(2) = iwp
    then input_padded
    else Tensor.init [| ci; ihp; iwp |] (fun idx -> Tensor.get input_padded idx)
  in
  let output = Tensor.zeros [| co; oh; ow |] in
  Loop_nest.run prog ~output ~weight ~input;
  output

(* Reference through Ops.conv2d (batch of one). *)
let reference nest ~weight ~input ~pad ~groups =
  let out =
    Ops.conv2d
      ~input:(Tensor.reshape input [| 1; nest.Loop_nest.nc_ci; (Tensor.shape input).(1); (Tensor.shape input).(2) |])
      ~weight ~bias:None
      { Ops.stride = nest.nc_stride; pad; groups; dilation = 1 }
  in
  let s = Tensor.shape out in
  Tensor.reshape out [| s.(1); s.(2); s.(3) |]

let make_case ~co ~ci ~hw ~k ~stride ~groups =
  let pad = k / 2 in
  let oh = Ops.conv_out_dim hw ~k ~stride ~pad in
  let nest = Loop_nest.conv_nest_of_dims ~co ~ci ~oh ~ow:oh ~k ~stride ~groups in
  let r = rng () in
  let input = Tensor.rand_normal r [| ci; hw; hw |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| co; ci / groups; k; k |] ~mean:0.0 ~std:1.0 in
  let padded = Loop_nest.pad_input input ~pad in
  (nest, input, weight, padded, pad)

let check_matches_reference name schedule_fn ~co ~ci ~hw ~k ~stride ~groups () =
  let nest, input, weight, padded, pad = make_case ~co ~ci ~hw ~k ~stride ~groups in
  let s = schedule_fn (Loop_nest.baseline_schedule nest) in
  let got = run_program nest s ~weight ~input_padded:padded in
  let want = reference nest ~weight ~input ~pad ~groups in
  Alcotest.(check bool) name true (Tensor.approx_equal ~tol:1e-4 got want)

let id x = x

let t_identity = check_matches_reference "identity" id ~co:4 ~ci:6 ~hw:6 ~k:3 ~stride:1 ~groups:1
let t_stride2 = check_matches_reference "stride 2" id ~co:4 ~ci:4 ~hw:8 ~k:3 ~stride:2 ~groups:1
let t_1x1 = check_matches_reference "1x1" id ~co:6 ~ci:8 ~hw:5 ~k:1 ~stride:1 ~groups:1

let t_baseline_grouped =
  check_matches_reference "baseline grouped" id ~co:8 ~ci:8 ~hw:5 ~k:3 ~stride:1 ~groups:4

let t_interchange =
  check_matches_reference "interchange co/ci" (fun s -> Poly.interchange s 0 1)
    ~co:4 ~ci:6 ~hw:6 ~k:3 ~stride:1 ~groups:1

let t_reorder =
  check_matches_reference "full reorder"
    (fun s -> Poly.reorder s [| 5; 4; 3; 2; 1; 0 |])
    ~co:4 ~ci:4 ~hw:5 ~k:3 ~stride:1 ~groups:1

let t_split =
  check_matches_reference "split ci by 3"
    (fun s -> Poly.split s ~pos:1 ~factor:3)
    ~co:4 ~ci:6 ~hw:6 ~k:3 ~stride:1 ~groups:1

let t_tile =
  check_matches_reference "tile oh"
    (fun s -> Poly.tile s ~pos:2 ~factor:3)
    ~co:4 ~ci:4 ~hw:6 ~k:3 ~stride:1 ~groups:1

let t_fuse =
  check_matches_reference "fuse oh/ow"
    (fun s -> Poly.fuse s ~pos:2)
    ~co:4 ~ci:4 ~hw:6 ~k:3 ~stride:1 ~groups:1

let t_fuse_split_mix =
  check_matches_reference "split+fuse+interchange"
    (fun s ->
      let s = Poly.split s ~pos:0 ~factor:2 in
      let s = Poly.fuse s ~pos:3 in
      Poly.interchange s 1 2)
    ~co:4 ~ci:4 ~hw:6 ~k:3 ~stride:1 ~groups:1

let t_annotations_noop =
  check_matches_reference "unroll/vectorize/bind are semantic no-ops"
    (fun s ->
      let s = Poly.unroll s ~pos:0 ~factor:4 in
      let s = Poly.vectorize s ~pos:(Poly.loop_count s - 1) in
      Poly.bind s ~pos:0 Poly.Block_x)
    ~co:4 ~ci:4 ~hw:5 ~k:3 ~stride:1 ~groups:1

(* --- Neural transformations ------------------------------------------ *)

let t_group_matches_grouped_conv () =
  (* Applying the group transformation to a dense conv and executing it with
     a grouped weight tensor must equal Ops.conv2d with groups=G. *)
  let co = 8 and ci = 8 and hw = 5 and k = 3 and g = 4 in
  let pad = k / 2 in
  let oh = Ops.conv_out_dim hw ~k ~stride:1 ~pad in
  let nest = Loop_nest.conv_nest_of_dims ~co ~ci ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
  let r = rng () in
  let input = Tensor.rand_normal r [| ci; hw; hw |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| co; ci / g; k; k |] ~mean:0.0 ~std:1.0 in
  let s = Poly.group (Loop_nest.baseline_schedule nest) ~co:"co" ~ci:"ci" ~factor:g in
  let got = run_program nest s ~weight ~input_padded:(Loop_nest.pad_input input ~pad) in
  let want = reference nest ~weight ~input ~pad ~groups:g in
  Alcotest.(check bool) "group == grouped conv" true (Tensor.approx_equal ~tol:1e-4 got want)

let t_depthwise_matches () =
  let c = 6 and hw = 5 and k = 3 in
  let pad = k / 2 in
  let oh = Ops.conv_out_dim hw ~k ~stride:1 ~pad in
  let nest = Loop_nest.conv_nest_of_dims ~co:c ~ci:c ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
  let r = rng () in
  let input = Tensor.rand_normal r [| c; hw; hw |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| c; 1; k; k |] ~mean:0.0 ~std:1.0 in
  let s = Poly.depthwise (Loop_nest.baseline_schedule nest) ~co:"co" ~ci:"ci" in
  let got = run_program nest s ~weight ~input_padded:(Loop_nest.pad_input input ~pad) in
  let want = reference nest ~weight ~input ~pad ~groups:c in
  Alcotest.(check bool) "depthwise == G=C conv" true (Tensor.approx_equal ~tol:1e-4 got want)

let t_bottleneck_matches_truncated () =
  (* Bottlenecking co by B equals a convolution with the first Co/B filters. *)
  let co = 8 and ci = 4 and hw = 5 and k = 3 and b = 2 in
  let pad = k / 2 in
  let oh = Ops.conv_out_dim hw ~k ~stride:1 ~pad in
  let nest = Loop_nest.conv_nest_of_dims ~co ~ci ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
  let r = rng () in
  let input = Tensor.rand_normal r [| ci; hw; hw |] ~mean:0.0 ~std:1.0 in
  let weight_small = Tensor.rand_normal r [| co / b; ci; k; k |] ~mean:0.0 ~std:1.0 in
  let s = Poly.bottleneck (Loop_nest.baseline_schedule nest) ~iter:"co" ~factor:b in
  let got = run_program nest s ~weight:weight_small ~input_padded:(Loop_nest.pad_input input ~pad) in
  let small_nest = Loop_nest.conv_nest_of_dims ~co:(co / b) ~ci ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
  let want = reference small_nest ~weight:weight_small ~input ~pad ~groups:1 in
  Alcotest.(check bool) "bottleneck == truncated conv" true
    (Tensor.approx_equal ~tol:1e-4 got want)

let t_input_bottleneck_via_interchange () =
  (* §2.3: interchange then bottleneck gives input-channel bottlenecking —
     the result must equal a convolution that reads only the first Ci/B input
     channels. *)
  let co = 4 and ci = 8 and hw = 5 and k = 3 and b = 2 in
  let pad = k / 2 in
  let oh = Ops.conv_out_dim hw ~k ~stride:1 ~pad in
  let nest = Loop_nest.conv_nest_of_dims ~co ~ci ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
  let r = rng () in
  let input = Tensor.rand_normal r [| ci; hw; hw |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| co; ci / b; k; k |] ~mean:0.0 ~std:1.0 in
  let s = Poly.interchange (Loop_nest.baseline_schedule nest) 0 1 in
  let s = Poly.bottleneck s ~iter:"ci" ~factor:b in
  (* The transformed program only reads the first ci/b input channels. *)
  let small_input = Tensor.init [| ci / b; hw; hw |] (fun idx -> Tensor.get input idx) in
  let got =
    run_program nest s ~weight ~input_padded:(Loop_nest.pad_input small_input ~pad)
  in
  let small_nest = Loop_nest.conv_nest_of_dims ~co ~ci:(ci / b) ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
  let want = reference small_nest ~weight ~input:small_input ~pad ~groups:1 in
  Alcotest.(check bool) "input bottleneck" true (Tensor.approx_equal ~tol:1e-4 got want)

let t_spatial_bottleneck_subset () =
  (* The §5.3 spatial bottleneck computes the top-left quadrant rows/cols of
     the output exactly. *)
  let co = 4 and ci = 4 and hw = 8 and k = 3 in
  let pad = k / 2 in
  let oh = Ops.conv_out_dim hw ~k ~stride:1 ~pad in
  let nest = Loop_nest.conv_nest_of_dims ~co ~ci ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
  let r = rng () in
  let input = Tensor.rand_normal r [| ci; hw; hw |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal r [| co; ci; k; k |] ~mean:0.0 ~std:1.0 in
  let s = Loop_nest.baseline_schedule nest in
  let s = Poly.bottleneck s ~iter:"oh" ~factor:2 in
  let s = Poly.bottleneck s ~iter:"ow" ~factor:2 in
  let prog = Loop_nest.lower nest s in
  (* The lowered output extent follows the restricted domain, and so does the
     input footprint: crop the padded input to the program's extents. *)
  let padded = Loop_nest.pad_input input ~pad in
  let ihp = ((oh / 2) - 1) + k in
  let cropped = Tensor.init [| ci; ihp; ihp |] (fun idx -> Tensor.get padded idx) in
  let out = Tensor.zeros [| co; oh / 2; oh / 2 |] in
  Loop_nest.run prog ~output:out ~weight ~input:cropped;
  let full = reference nest ~weight ~input ~pad ~groups:1 in
  let ok = ref true in
  for c = 0 to co - 1 do
    for h = 0 to (oh / 2) - 1 do
      for w = 0 to (oh / 2) - 1 do
        if Float.abs (Tensor.get out [| c; h; w |] -. Tensor.get full [| c; h; w |]) > 1e-4
        then ok := false
      done
    done
  done;
  Alcotest.(check bool) "spatial prefix exact" true !ok

let contains_substring text sub =
  let n = String.length text and m = String.length sub in
  let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
  go 0

let t_printer_smoke () =
  let nest = Loop_nest.conv_nest_of_dims ~co:4 ~ci:4 ~oh:4 ~ow:4 ~k:3 ~stride:1 ~groups:1 in
  let s = Poly.tile (Loop_nest.baseline_schedule nest) ~pos:0 ~factor:2 in
  let s = Poly.unroll s ~pos:1 ~factor:2 in
  let text = Format.asprintf "%a" Loop_nest.pp (Loop_nest.lower nest s) in
  Alcotest.(check bool) "mentions loops" true (String.length text > 50);
  Alcotest.(check bool) "has statement" true (contains_substring text "O[")

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"random classical schedules compute the reference conv" ~count:30
      (pair (small_list (int_range 0 4)) (int_range 0 1000))
      (fun (ops, seed) ->
        let co = 4 and ci = 4 and hw = 5 and k = 3 in
        let pad = 1 in
        let oh = Ops.conv_out_dim hw ~k ~stride:1 ~pad in
        let nest = Loop_nest.conv_nest_of_dims ~co ~ci ~oh ~ow:oh ~k ~stride:1 ~groups:1 in
        let r = Rng.create seed in
        let input = Tensor.rand_normal r [| ci; hw; hw |] ~mean:0.0 ~std:1.0 in
        let weight = Tensor.rand_normal r [| co; ci; k; k |] ~mean:0.0 ~std:1.0 in
        let apply s code =
          let n = Poly.loop_count s in
          try
            match code with
            | 0 -> Poly.interchange s 0 (n - 1)
            | 1 -> Poly.split s ~pos:(n / 2) ~factor:2
            | 2 -> if n >= 2 then Poly.fuse s ~pos:(n - 2) else s
            | 3 -> Poly.tile s ~pos:0 ~factor:2
            | _ -> Poly.unroll s ~pos:(n - 1) ~factor:2
          with Poly.Illegal _ -> s
        in
        let s = List.fold_left apply (Loop_nest.baseline_schedule nest) ops in
        let got = run_program nest s ~weight ~input_padded:(Loop_nest.pad_input input ~pad) in
        let want = reference nest ~weight ~input ~pad ~groups:1 in
        Tensor.approx_equal ~tol:1e-4 got want) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "loop_ir"
    [ ( "classical",
        [ quick "identity" t_identity;
          quick "stride 2" t_stride2;
          quick "1x1" t_1x1;
          quick "baseline grouped" t_baseline_grouped;
          quick "interchange" t_interchange;
          quick "reorder" t_reorder;
          quick "split" t_split;
          quick "tile" t_tile;
          quick "fuse" t_fuse;
          quick "mixed" t_fuse_split_mix;
          quick "annotations no-op" t_annotations_noop ] );
      ( "neural",
        [ quick "group" t_group_matches_grouped_conv;
          quick "depthwise" t_depthwise_matches;
          quick "bottleneck" t_bottleneck_matches_truncated;
          quick "input bottleneck (sec 2.3)" t_input_bottleneck_via_interchange;
          quick "spatial bottleneck prefix" t_spatial_bottleneck_subset ] );
      ("printer", [ quick "smoke" t_printer_smoke ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
