(* Typed plan algebra tests: the plan-syntax round-trip, degenerate lint
   inputs, a table-driven typing suite (one well-typed and one ill-typed
   instance per step kind), exhaustive agreement between the typed
   enumerator and the lint-clean set at small sizes, and the typed
   differential fuzzer gate. *)

let conv_domain = [ ("co", 4); ("ci", 6); ("oh", 4); ("ow", 4) ]
let base_env () = Plan_types.env_of_schedule (Poly.of_domain conv_domain)

(* --- plan-syntax round-trip -------------------------------------------- *)

(* One generator per constructor, so shrinking a failure never changes the
   step kind and every kind is exercised (iterator names stay in the
   parser's alphabet). *)
let step_gen =
  let open QCheck.Gen in
  let dim = int_range 0 9 in
  let factor = int_range 1 64 in
  let iter = oneofl [ "co"; "ci"; "oh"; "ow"; "k0" ] in
  let perm = int_range 2 5 >>= fun n -> shuffle_l (List.init n (fun i -> i)) in
  oneof
    [ map2 (fun i j -> Plan_lint.Interchange (i, j)) dim dim;
      map (fun p -> Plan_lint.Reorder p) perm;
      map2 (fun p f -> Plan_lint.Split (p, f)) dim factor;
      map2 (fun p f -> Plan_lint.Tile (p, f)) dim factor;
      map (fun p -> Plan_lint.Fuse p) dim;
      map2 (fun p f -> Plan_lint.Unroll (p, f)) dim factor;
      map (fun p -> Plan_lint.Vectorize p) dim;
      map (fun p -> Plan_lint.Parallelize p) dim;
      map (fun f -> Plan_lint.Group f) factor;
      map2 (fun it f -> Plan_lint.Bottleneck (it, f)) iter factor;
      return Plan_lint.Depthwise ]

let plan_arb =
  QCheck.make
    ~print:(fun p -> Plan_lint.plan_to_string p)
    QCheck.Gen.(list_size (int_range 1 8) step_gen)

let roundtrip_prop plan =
  match Plan_lint.of_string (Plan_lint.plan_to_string plan) with
  | Ok plan' -> plan' = plan
  | Error e -> QCheck.Test.fail_reportf "parse error on rendered plan: %s" e

(* Every constructor also round-trips deterministically at least once. *)
let t_roundtrip_each_constructor () =
  let one_of_each =
    [ Plan_lint.Interchange (0, 1); Reorder [ 2; 0; 1 ]; Split (1, 3);
      Tile (2, 4); Fuse 0; Unroll (3, 2); Vectorize 3; Parallelize 0;
      Group 2; Bottleneck ("ci", 2); Depthwise ]
  in
  List.iter
    (fun step ->
      let s = Plan_lint.to_string step in
      match Plan_lint.of_string s with
      | Ok [ step' ] ->
          Alcotest.(check bool) (s ^ " round-trips") true (step = step')
      | Ok _ -> Alcotest.fail (s ^ ": parsed to a different arity")
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    one_of_each

(* --- degenerate lint inputs ------------------------------------------- *)

let lint_one step =
  let s = Poly.of_domain conv_domain in
  Plan_lint.lint s [ step ]

let has_error diags =
  List.exists (fun d -> d.Diagnostic.d_severity = Diagnostic.Error) diags

let t_reorder_repeated_dimension () =
  (* A repeated index is a diagnostic, never an exception. *)
  let final, diags = lint_one (Plan_lint.Reorder [ 0; 0; 1; 2 ]) in
  Alcotest.(check bool) "error reported" true (has_error diags);
  Alcotest.(check bool) "plan rejected" true (final = None)

let t_reorder_out_of_range () =
  let final, diags = lint_one (Plan_lint.Reorder [ 0; 1; 2; 7 ]) in
  Alcotest.(check bool) "error reported" true (has_error diags);
  Alcotest.(check bool) "plan rejected" true (final = None)

let t_fuse_last_dimension () =
  (* Fusing the innermost loop has no successor to fuse with. *)
  let n = Poly.loop_count (Poly.of_domain conv_domain) in
  let final, diags = lint_one (Plan_lint.Fuse (n - 1)) in
  Alcotest.(check bool) "error reported" true (has_error diags);
  Alcotest.(check bool) "plan rejected" true (final = None)

(* --- table-driven typing suite ----------------------------------------- *)

(* One well-typed and one ill-typed instance per step kind.  Each verdict
   is cross-checked against the linter, so the table re-asserts the
   exactness contract (well-typed iff zero diagnostics) case by case.
   Depthwise needs its own square domain: on conv_domain it is the
   ill-typed sample (co <> ci). *)
let square_env () =
  Plan_types.env_of_schedule
    (Poly.of_domain [ ("co", 4); ("ci", 4); ("oh", 4); ("ow", 4) ])

let typing_table () =
  [ ("interchange well", base_env (), Plan_lint.Interchange (0, 1), true);
    ("interchange self is no-op", base_env (), Interchange (1, 1), false);
    ("reorder well", base_env (), Reorder [ 1; 0; 2; 3 ], true);
    ("reorder identity is no-op", base_env (), Reorder [ 0; 1; 2; 3 ], false);
    ("split well", base_env (), Split (1, 3), true);
    ("split indivisible", base_env (), Split (1, 5), false);
    ("tile well", base_env (), Tile (2, 2), true);
    ("tile indivisible", base_env (), Tile (2, 3), false);
    ("fuse well", base_env (), Fuse 0, true);
    ("fuse at last dim", base_env (), Fuse 3, false);
    ("unroll well", base_env (), Unroll (3, 2), true);
    ("unroll overflow", base_env (), Unroll (3, 8), false);
    ("vectorize well", base_env (), Vectorize 3, true);
    ("vectorize out of range", base_env (), Vectorize 9, false);
    ("parallelize well", base_env (), Parallelize 0, true);
    ("parallelize out of range", base_env (), Parallelize 7, false);
    ("group well", base_env (), Group 2, true);
    ("group indivisible", base_env (), Group 5, false);
    ("bottleneck well", base_env (), Bottleneck ("ci", 2), true);
    ("bottleneck unknown iterator", base_env (), Bottleneck ("zz", 2), false);
    ("depthwise well", square_env (), Depthwise, true);
    ("depthwise channel mismatch", base_env (), Depthwise, false) ]

let t_typing_table () =
  List.iter
    (fun (name, env, step, expect_well) ->
      let typed =
        match Plan_types.infer env step with Ok _ -> true | Error _ -> false
      in
      Alcotest.(check bool) (name ^ ": judgment") expect_well typed;
      (* Exactness against the oracle: well-typed iff the linter records
         nothing for the step. *)
      let _, diags = Plan_lint.lint (Plan_types.schedule_of_env env) [ step ] in
      Alcotest.(check bool) (name ^ ": lint agrees") expect_well (diags = []);
      if not expect_well then
        (* Ill-typed diagnostics lead with the violated rule's name. *)
        let prefixed msg =
          let rule = Plan_types.rule_name step in
          String.length msg >= String.length rule
          && String.sub msg 0 (String.length rule) = rule
        in
        match Plan_types.infer env step with
        | Ok _ -> ()
        | Error diags ->
            Alcotest.(check bool) (name ^ ": names the rule") true
              (List.exists (fun d -> prefixed d.Diagnostic.d_msg) diags))
    (typing_table ())

(* --- exhaustiveness at small sizes ------------------------------------- *)

(* A bounded step universe built independently of the typed enumerator:
   dimensions beyond range, factors outside the divisor sets, bogus
   iterators and malformed permutations included.  Against it the
   enumerator must be exactly the lint-clean subset — soundness and
   completeness at once, with no sampling. *)
let universe env =
  let n = Plan_types.loop_count env in
  let dims = List.init (n + 2) (fun i -> i - 1) in
  (* 0..8 covers every divisor and unroll factor reachable from the
     2-loop [co=4, ci=2] start (fusing yields extent 8). *)
  let factors = List.init 9 (fun f -> f) in
  let iters = "zz" :: List.map fst env.Plan_types.te_domain in
  let perms =
    (* all permutations of 0..n-1, plus malformed lists *)
    let rec insert_everywhere x = function
      | [] -> [ [ x ] ]
      | y :: ys ->
          (x :: y :: ys)
          :: List.map (fun zs -> y :: zs) (insert_everywhere x ys)
    in
    let rec perms_of = function
      | [] -> [ [] ]
      | x :: xs -> List.concat_map (insert_everywhere x) (perms_of xs)
    in
    perms_of (List.init n (fun i -> i)) @ [ [ 0; 0 ]; [ 0; n ]; [ 0 ] ]
  in
  List.concat
    [ List.concat_map
        (fun i -> List.map (fun j -> Plan_lint.Interchange (i, j)) dims)
        dims;
      List.map (fun p -> Plan_lint.Reorder p) perms;
      List.concat_map
        (fun p -> List.map (fun f -> Plan_lint.Split (p, f)) factors)
        dims;
      List.concat_map
        (fun p -> List.map (fun f -> Plan_lint.Tile (p, f)) factors)
        dims;
      List.map (fun p -> Plan_lint.Fuse p) dims;
      List.concat_map
        (fun p -> List.map (fun f -> Plan_lint.Unroll (p, f)) factors)
        dims;
      List.map (fun p -> Plan_lint.Vectorize p) dims;
      List.map (fun p -> Plan_lint.Parallelize p) dims;
      List.map (fun f -> Plan_lint.Group f) factors;
      List.concat_map
        (fun it -> List.map (fun f -> Plan_lint.Bottleneck (it, f)) factors)
        iters;
      [ Plan_lint.Depthwise ] ]

let lint_clean env plan =
  match Plan_lint.lint (Plan_types.schedule_of_env env) plan with
  | Some _, [] -> true
  | _ -> false

let plan_set plans =
  List.sort_uniq compare (List.map Plan_lint.plan_to_string plans)

let t_enumerate_matches_lint_clean () =
  let env = Plan_types.env_of_schedule (Poly.of_domain [ ("co", 4); ("ci", 2) ]) in
  let enumerated =
    List.filter
      (fun p -> List.length p <= 2)
      (Plan_types.enumerate ~max_len:2 env)
  in
  (* Brute force: every universe step, then every universe pair (the
     second universe drawn at the intermediate environment so factor/dim
     bounds track the evolved schedule). *)
  let len1 = List.filter (fun s -> lint_clean env [ s ]) (List.map (fun s -> [ s ]) (universe env) |> List.concat) in
  let len2 =
    List.concat_map
      (fun s1 ->
        match Plan_types.infer env s1 with
        | Error _ -> []
        | Ok env' ->
            List.filter_map
              (fun s2 ->
                if lint_clean env [ s1; s2 ] then Some [ s1; s2 ] else None)
              (universe env'))
      len1
  in
  let brute = plan_set (List.map (fun s -> [ s ]) len1 @ len2) in
  let typed = plan_set enumerated in
  (* Completeness: every lint-clean universe plan is enumerated. *)
  List.iter
    (fun p ->
      if not (List.mem p typed) then
        Alcotest.failf "lint-clean but not enumerated: %s" p)
    brute;
  (* Soundness: every enumerated plan is lint-clean (and in the universe's
     argument bounds, so the sets are equal). *)
  List.iter
    (fun p ->
      if not (List.mem p brute) then
        Alcotest.failf "enumerated but not lint-clean-in-universe: %s" p)
    typed;
  Alcotest.(check int) "same count" (List.length brute) (List.length typed)

(* Soundness of the samplers at full conv size, where enumeration is too
   big: every sampled plan lints clean. *)
let t_sampled_plans_lint_clean () =
  let env = base_env () in
  let rng = Rng.create 2026 in
  for _ = 1 to 50 do
    let plan, env' = Plan_types.sample_plan rng ~max_len:4 env in
    Alcotest.(check bool)
      ("lint-clean: " ^ Plan_lint.plan_to_string plan)
      true (lint_clean env plan);
    (* The final environment matches the linted schedule's abstraction. *)
    match Plan_lint.lint (Plan_types.schedule_of_env env) plan with
    | Some s, [] ->
        Alcotest.(check bool) "env tracks schedule" true
          (Plan_types.equal env' (Plan_types.env_of_schedule s))
    | _ -> Alcotest.fail "sampled plan failed to lint"
  done

(* --- typed differential fuzzer gate ------------------------------------ *)

let t_typed_fuzzer_gate () =
  let r = Sanitizer.run_typed ~seed:2026 ~n:100 () in
  Alcotest.(check int) "all cases ran" 100 r.Sanitizer.tt_total;
  Alcotest.(check (list string)) "no disagreements" []
    (List.map
       (fun d -> d.Sanitizer.tp_kind ^ ": " ^ d.Sanitizer.tp_plan)
       r.Sanitizer.tt_disagreements);
  Alcotest.(check bool) "gate passes" true (Sanitizer.typed_passed r)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"plan syntax round-trips through of_string/to_string"
      ~count:200 plan_arb roundtrip_prop ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "plan_types"
    [ ( "roundtrip",
        [ quick "each constructor" t_roundtrip_each_constructor ] );
      ( "degenerate",
        [ quick "reorder repeated" t_reorder_repeated_dimension;
          quick "reorder out of range" t_reorder_out_of_range;
          quick "fuse last dim" t_fuse_last_dimension ] );
      ("typing", [ quick "table" t_typing_table ]);
      ( "exhaustive",
        [ quick "enumerate = lint-clean" t_enumerate_matches_lint_clean;
          quick "samples lint clean" t_sampled_plans_lint_clean ] );
      ("fuzzer", [ quick "typed gate" t_typed_fuzzer_gate ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
