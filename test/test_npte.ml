(* Core (npte) tests: site plans, the named sequences of sec 7.3 / 5.3 and
   their executable schedule chains, the compile pipeline and Table 1. *)

let model () = Models.build (Models.resnet34 ()) (Rng.create 21)

let a_site () =
  let m = model () in
  (* A mid-network site: 16 -> 16 channels, spatial 8. *)
  Models.scale_site m m.Models.sites.(8)

let t_plan_baseline () =
  let site = a_site () in
  Alcotest.(check bool) "baseline valid anywhere" true
    (Site_plan.valid site Site_plan.baseline);
  Alcotest.(check string) "name" "baseline" Site_plan.baseline.Site_plan.sp_name

let t_menu_nonempty () =
  let m = model () in
  Array.iter
    (fun site ->
      Alcotest.(check bool)
        (site.Conv_impl.site_label ^ " has options")
        true
        (Sequences.standard_menu site <> []))
    m.Models.sites

let t_sequences_have_plans () =
  let site = a_site () in
  List.iter
    (fun seq ->
      let plan = Sequences.plan seq in
      Alcotest.(check bool) (Sequences.name seq) true (Site_plan.valid site plan))
    (Sequences.standard_menu site)

let t_seq2_sets_unroll_hint () =
  let plan = Sequences.plan (Sequences.Seq2 { g = 2; unroll = 16 }) in
  Alcotest.(check bool) "unroll hint" true
    (plan.Site_plan.sp_hints.Autotune.h_unroll_co = Some 16)

let t_seq1_sets_split_hint () =
  let plan = Sequences.plan (Sequences.Seq1 { g = 2; split = 2 }) in
  Alcotest.(check bool) "split hint" true
    (plan.Site_plan.sp_hints.Autotune.h_spatial_split = Some 2)

let t_dominant_classification () =
  Alcotest.(check bool) "seq1" true (Sequences.is_dominant (Sequences.Seq1 { g = 2; split = 2 }));
  Alcotest.(check bool) "plain group" false (Sequences.is_dominant (Sequences.Plain_group 2))

(* Every named sequence's literal schedule chain must enumerate the MAC
   count its plan's impl accounting claims. *)
let t_schedules_match_mac_accounting () =
  let site =
    { Conv_impl.site_index = 0; in_channels = 16; out_channels = 16; kernel = 3;
      stride = 1; groups = 1; spatial_in = 8; site_label = "t" }
  in
  let nest =
    Loop_nest.conv_nest_of_dims ~co:16 ~ci:16 ~oh:8 ~ow:8 ~k:3 ~stride:1 ~groups:1
  in
  List.iter
    (fun seq ->
      match seq with
      | Sequences.Plain_bottleneck _ | Sequences.Plain_depthwise -> ()
      (* bottleneck adds a 1x1 expand and depthwise a pointwise conv in the
         realized network; their schedule chains cover only the main nest *)
      | _ ->
          let schedules = Sequences.schedules seq nest in
          let points = List.fold_left (fun acc s -> acc + Poly.points s) 0 schedules in
          let plan = Sequences.plan seq in
          let macs = Conv_impl.macs site plan.Site_plan.sp_impl in
          let expected =
            match seq with
            | Sequences.Seq1 _ | Sequences.Seq2 _ | Sequences.Seq3 _
            | Sequences.Plain_group _ | Sequences.Spatial_bneck _ ->
                macs
            | _ -> points
          in
          Alcotest.(check int) (Sequences.name seq) expected points)
    (Sequences.standard_menu site)

let t_spatial_bneck_chain_is_semantic_changing () =
  let nest = Loop_nest.conv_nest_of_dims ~co:8 ~ci:8 ~oh:8 ~ow:8 ~k:3 ~stride:1 ~groups:1 in
  match Sequences.schedules (Sequences.Spatial_bneck 2) nest with
  | [ s ] ->
      Alcotest.(check bool) "flagged" false (Poly.is_semantics_preserving s);
      Alcotest.(check int) "4x fewer points"
        (Poly.points (Loop_nest.baseline_schedule nest) / 4)
        (Poly.points s)
  | _ -> Alcotest.fail "one schedule expected"

(* --- Pipeline ---------------------------------------------------------- *)

let t_pipeline_baseline_positive () =
  let m = model () in
  List.iter
    (fun dev ->
      let ev = Pipeline.baseline dev m in
      Alcotest.(check bool) (dev.Device.short_name ^ " latency > 0") true
        (ev.Pipeline.ev_latency_s > 0.0);
      Alcotest.(check bool) "params > 0" true (ev.ev_params > 0))
    Device.all

let t_pipeline_grouping_faster_and_smaller () =
  let m = model () in
  let dev = Device.i7 in
  let baseline = Pipeline.baseline dev m in
  let plans =
    Array.map
      (fun site ->
        if Conv_impl.valid site (Conv_impl.Grouped 4) then
          Site_plan.make (Conv_impl.Grouped 4)
        else Site_plan.baseline)
      m.Models.sites
  in
  let ev = Pipeline.evaluate dev m ~plans in
  Alcotest.(check bool) "faster" true (ev.Pipeline.ev_latency_s < baseline.Pipeline.ev_latency_s);
  Alcotest.(check bool) "smaller" true (ev.ev_params < baseline.ev_params);
  Alcotest.(check bool) "fewer macs" true (ev.ev_macs < baseline.ev_macs)

let t_pipeline_memoization_consistent () =
  Pipeline.clear_cache ();
  let m = model () in
  let a = Pipeline.baseline Device.i7 m in
  let b = Pipeline.baseline Device.i7 m in
  Alcotest.(check (float 1e-12)) "memoized result identical"
    a.Pipeline.ev_latency_s b.Pipeline.ev_latency_s

let t_pipeline_rejects_wrong_arity () =
  let m = model () in
  Alcotest.(check bool) "arity enforced" true
    (try
       ignore (Pipeline.evaluate Device.i7 m ~plans:[| Site_plan.baseline |]);
       false
     with Nas_error.Fail (Nas_error.Shape_mismatch _) -> true)

let t_of_impls_roundtrip () =
  let m = model () in
  let plans = Pipeline.of_impls m in
  Alcotest.(check int) "arity" (Array.length m.Models.sites) (Array.length plans);
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "impl preserved" true
        (p.Site_plan.sp_impl = m.Models.impls.(i)))
    plans

(* --- Table 1 ----------------------------------------------------------- *)

let t_table1_rows () =
  Alcotest.(check int) "11 primitives" 11 (List.length Table1.rows);
  let cats =
    List.sort_uniq compare (List.map (fun r -> r.Table1.category) Table1.rows)
  in
  Alcotest.(check int) "three categories" 3 (List.length cats)

let t_table1_demonstrations () =
  List.iter
    (fun row ->
      match row.Table1.opt_name with
      | "prefetch" -> () (* annotation-only: no demo *)
      | _ ->
          Alcotest.(check bool) (row.opt_name ^ " demo") true
            (Table1.demonstrate row <> None))
    Table1.rows

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "npte"
    [ ( "plans",
        [ quick "baseline" t_plan_baseline;
          quick "menus non-empty" t_menu_nonempty;
          quick "sequence plans valid" t_sequences_have_plans;
          quick "seq2 unroll hint" t_seq2_sets_unroll_hint;
          quick "seq1 split hint" t_seq1_sets_split_hint;
          quick "dominance" t_dominant_classification ] );
      ( "sequences",
        [ quick "schedule MACs = plan MACs" t_schedules_match_mac_accounting;
          quick "spatial bottleneck chain" t_spatial_bneck_chain_is_semantic_changing ] );
      ( "pipeline",
        [ quick "baseline positive" t_pipeline_baseline_positive;
          quick "grouping faster+smaller" t_pipeline_grouping_faster_and_smaller;
          quick "memoization" t_pipeline_memoization_consistent;
          quick "arity" t_pipeline_rejects_wrong_arity;
          quick "of_impls" t_of_impls_roundtrip ] );
      ( "table1",
        [ quick "rows" t_table1_rows; quick "demonstrations" t_table1_demonstrations ] ) ]
