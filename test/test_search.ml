(* Search tests: the unified search, BlockSwap, Pareto utilities and the
   interpolation machinery.  Small candidate pools keep them fast. *)

let setup () =
  let rng = Rng.create 77 in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  (rng, model, probe)

let t_unified_improves_or_equals_baseline () =
  let rng, model, probe = setup () in
  let r =
    Unified_search.search ~candidates:40 ~rng:(Rng.split rng) ~device:Device.i7
      ~probe model
  in
  Alcotest.(check bool) "speedup >= 1" true (Unified_search.speedup r >= 1.0);
  Alcotest.(check bool) "accounting" true
    (r.Unified_search.r_rejected <= r.r_explored)

let t_unified_deterministic () =
  let run () =
    let rng, model, probe = setup () in
    let r =
      Unified_search.search ~candidates:25 ~rng:(Rng.split rng) ~device:Device.i7
        ~probe model
    in
    r.Unified_search.r_best.Unified_search.cd_latency_s
  in
  Alcotest.(check (float 1e-12)) "same seed, same result" (run ()) (run ())

let t_unified_multi_matches_single_pool () =
  let rng, model, probe = setup () in
  let results =
    Unified_search.search_multi ~candidates:25 ~rng:(Rng.split rng)
      ~devices:[ Device.i7; Device.maxwell_mgpu ] ~probe model
  in
  Alcotest.(check int) "one result per device" 2 (List.length results);
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "baseline >= best" true
        (r.Unified_search.r_baseline.Pipeline.ev_latency_s
        >= r.r_best.Unified_search.cd_latency_s))
    results;
  (* The Fisher-filter statistics are shared between devices. *)
  match results with
  | [ (_, a); (_, b) ] ->
      Alcotest.(check int) "shared rejections" a.Unified_search.r_rejected
        b.Unified_search.r_rejected
  | _ -> ()

let t_winning_plans_are_legal () =
  let rng, model, probe = setup () in
  let r =
    Unified_search.search ~candidates:30 ~rng:(Rng.split rng) ~device:Device.i7
      ~probe model
  in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "valid plan" true
        (Site_plan.valid model.Models.sites.(i) p))
    r.Unified_search.r_best.Unified_search.cd_plans

let t_blockswap_respects_budget () =
  let rng, model, probe = setup () in
  let bs = Blockswap.search ~samples:40 ~budget_ratio:0.5 ~rng:(Rng.split rng) ~probe model in
  (* Either the budget was met or the fallback (original) was returned. *)
  let site_params impls =
    Array.to_list model.Models.sites
    |> List.fold_left
         (fun acc s ->
           acc
           + Conv_impl.param_count (Models.scale_site model s)
               impls.(s.Conv_impl.site_index))
         0
  in
  let full = Array.map (fun _ -> Conv_impl.Full) model.Models.sites in
  let is_fallback = bs.Blockswap.bs_impls = full in
  Alcotest.(check bool) "budget or fallback" true
    (is_fallback
    || site_params bs.Blockswap.bs_impls
       <= int_of_float (0.5 *. float_of_int (site_params full)))

let t_blockswap_menu_excludes_sequences () =
  let _, model, _ = setup () in
  Array.iter
    (fun site ->
      List.iter
        (fun impl ->
          match impl with
          | Conv_impl.Split_grouped _ | Conv_impl.Spatial_bottleneck _ ->
              Alcotest.fail "sequence operators must not be in the NAS menu"
          | _ -> ())
        (Blockswap.menu site))
    model.Models.sites

(* --- strategies --------------------------------------------------------- *)

let result_fingerprint r =
  ( Unified_search.plans_signature r.Unified_search.r_best.Unified_search.cd_plans,
    r.Unified_search.r_best.Unified_search.cd_latency_s,
    r.Unified_search.r_explored,
    r.Unified_search.r_rejected,
    List.map fst r.Unified_search.r_quarantined )

let run_strategy ?strategy ~workers ~schedule ~candidates () =
  let rng, model, probe = setup () in
  Unified_search.search ?strategy ~candidates ~workers ~schedule
    ~rng:(Rng.split rng) ~device:Device.i7 ~probe model

let check_same_result msg a b =
  let sa, la, ea, ra, qa = result_fingerprint a in
  let sb, lb, eb, rb, qb = result_fingerprint b in
  Alcotest.(check string) (msg ^ ": best plans") sa sb;
  Alcotest.(check (float 0.0)) (msg ^ ": best latency (bit-identical)") la lb;
  Alcotest.(check int) (msg ^ ": explored") ea eb;
  Alcotest.(check int) (msg ^ ": rejected") ra rb;
  Alcotest.(check (list string)) (msg ^ ": quarantine") qa qb

let t_strategy_random_bit_identical () =
  (* The contract behind Strategy.Random: passing it explicitly changes
     nothing relative to the pre-strategy default, for any worker count or
     schedule. *)
  let reference =
    run_strategy ~workers:1 ~schedule:Parallel_eval.Dynamic ~candidates:25 ()
  in
  List.iter
    (fun (workers, schedule) ->
      let r =
        run_strategy ~strategy:Strategy.Random ~workers ~schedule
          ~candidates:25 ()
      in
      check_same_result
        (Printf.sprintf "workers=%d" workers)
        reference r)
    [ (1, Parallel_eval.Dynamic); (2, Parallel_eval.Static);
      (2, Parallel_eval.Dynamic) ]

let t_strategy_typed_parallel_identical () =
  let serial =
    run_strategy ~strategy:Strategy.Typed ~workers:1
      ~schedule:Parallel_eval.Dynamic ~candidates:25 ()
  in
  List.iter
    (fun schedule ->
      let r =
        run_strategy ~strategy:Strategy.Typed ~workers:2 ~schedule
          ~candidates:25 ()
      in
      check_same_result "typed parallel" serial r)
    [ Parallel_eval.Static; Parallel_eval.Dynamic ]

let t_strategy_guided_parallel_identical () =
  let serial =
    run_strategy ~strategy:Strategy.Guided ~workers:1
      ~schedule:Parallel_eval.Dynamic ~candidates:20 ()
  in
  Alcotest.(check bool) "guided run completes" true
    serial.Unified_search.r_complete;
  Alcotest.(check bool) "no checkpoint error" true
    (serial.Unified_search.r_checkpoint_error = None);
  List.iter
    (fun schedule ->
      let r =
        run_strategy ~strategy:Strategy.Guided ~workers:2 ~schedule
          ~candidates:20 ()
      in
      check_same_result "guided parallel" serial r)
    [ Parallel_eval.Static; Parallel_eval.Dynamic ]

let t_typed_menu_valid_by_construction () =
  (* Rule inversion must be sound (every menu entry valid for its site)
     and subsume the valid slice of the rejection-sampled menu. *)
  let _, model, _ = setup () in
  Array.iter
    (fun site ->
      let menu = Sequences.typed_menu site in
      List.iter
        (fun seq ->
          Alcotest.(check bool)
            (Printf.sprintf "site %d: %s valid" site.Conv_impl.site_index
               (Sequences.name seq))
            true (Sequences.valid site seq))
        menu;
      let names = List.map Sequences.name menu in
      List.iter
        (fun seq ->
          if Sequences.valid site seq then
            Alcotest.(check bool)
              (Printf.sprintf "site %d: standard %s covered"
                 site.Conv_impl.site_index (Sequences.name seq))
              true
              (List.mem (Sequences.name seq) names))
        (Sequences.standard_menu site))
    model.Models.sites

let t_typed_plans_valid_by_construction () =
  let _, model, _ = setup () in
  let rng = Rng.create 99 in
  for _ = 1 to 20 do
    let plans = Strategy.typed_plans rng model in
    Array.iteri
      (fun i p ->
        Alcotest.(check bool) "typed plan valid" true
          (Site_plan.valid model.Models.sites.(i) p))
      plans
  done

(* --- Pareto ------------------------------------------------------------ *)

let pt name l a = { Pareto.pt_name = name; pt_latency_s = l; pt_accuracy = a }

let t_pareto_dominance () =
  Alcotest.(check bool) "strictly better" true
    (Pareto.dominates (pt "a" 1.0 0.9) (pt "b" 2.0 0.8));
  Alcotest.(check bool) "equal does not dominate" false
    (Pareto.dominates (pt "a" 1.0 0.9) (pt "b" 1.0 0.9));
  Alcotest.(check bool) "tradeoff" false
    (Pareto.dominates (pt "a" 1.0 0.7) (pt "b" 2.0 0.9))

let t_pareto_front () =
  let points =
    [ pt "slow-acc" 4.0 0.95; pt "fast-inacc" 1.0 0.7; pt "dominated" 4.5 0.9;
      pt "mid" 2.0 0.85 ]
  in
  let front = Pareto.front points in
  let names = List.map (fun p -> p.Pareto.pt_name) front in
  Alcotest.(check (list string)) "front sorted by latency"
    [ "fast-inacc"; "mid"; "slow-acc" ] names;
  Alcotest.(check bool) "dominated excluded" true
    (not (List.mem "dominated" names));
  Alcotest.(check bool) "membership test" true
    (Pareto.is_pareto_optimal (pt "mid" 2.0 0.85) points)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"pareto front points are mutually non-dominating" ~count:50
      (list_of_size (Gen.int_range 1 12)
         (pair (float_range 0.1 10.0) (float_range 0.0 1.0)))
      (fun raw ->
        let points = List.mapi (fun i (l, a) -> pt (string_of_int i) l a) raw in
        let front = Pareto.front points in
        List.for_all
          (fun p -> not (List.exists (fun q -> q <> p && Pareto.dominates q p) front))
          front);
    Test.make ~name:"random plans are always valid for their sites" ~count:25
      (int_range 0 10000)
      (fun seed ->
        let rng = Rng.create seed in
        let model = Models.build (Models.resnet18 ()) (Rng.create 7) in
        let plans = Unified_search.random_plans rng model ~mutate_prob:0.8 in
        Array.for_all
          (fun ok -> ok)
          (Array.mapi (fun i p -> Site_plan.valid model.Models.sites.(i) p) plans)) ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "search"
    [ ( "unified",
        [ quick "improves baseline" t_unified_improves_or_equals_baseline;
          quick "deterministic" t_unified_deterministic;
          quick "multi-device" t_unified_multi_matches_single_pool;
          quick "winner legality" t_winning_plans_are_legal ] );
      ( "strategy",
        [ quick "random bit-identical" t_strategy_random_bit_identical;
          quick "typed parallel identical" t_strategy_typed_parallel_identical;
          quick "guided parallel identical" t_strategy_guided_parallel_identical;
          quick "typed menu valid" t_typed_menu_valid_by_construction;
          quick "typed plans valid" t_typed_plans_valid_by_construction ] );
      ( "blockswap",
        [ quick "budget" t_blockswap_respects_budget;
          quick "menu restricted" t_blockswap_menu_excludes_sequences ] );
      ( "pareto", [ quick "dominance" t_pareto_dominance; quick "front" t_pareto_front ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
