(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sec 7) and runs Bechamel micro-benchmarks of the kernels.

   Usage:  dune exec bench/main.exe [-- section ...]
   Sections: table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 analysis ablations zoo micro
   Default: all.  Set NPTE_MODE=full for paper-scale pool sizes. *)

let ppf = Format.std_formatter

(* Figure 5, Figure 7 and the analysis section consume the Figure 4 winners;
   compute those once on demand. *)
let fig4_data : Fig4.data option ref = ref None

let get_fig4 mode =
  match !fig4_data with
  | Some d -> d
  | None ->
      let d = Fig4.compute mode in
      fig4_data := Some d;
      d

let run_section mode name =
  let t0 = Unix.gettimeofday () in
  (try
    match name with
  | "table1" -> Exp_table1.run ppf
  | "fig3" -> ignore (Fig3.run mode ppf)
  | "fig4" ->
      let d = get_fig4 mode in
      Fig4.print ppf d
  | "fig5" -> ignore (Fig5.run (get_fig4 mode) ppf)
  | "fig6" -> ignore (Fig6.run mode ppf)
  | "fig7" -> ignore (Fig7.run mode (get_fig4 mode) ppf)
  | "fig8" -> ignore (Fig8.run mode ppf)
  | "fig9" -> ignore (Fig9.run mode ppf)
  | "analysis" -> ignore (Exp_analysis.run mode (get_fig4 mode) ppf)
  | "ablations" -> ignore (Ablations.run mode ppf)
  | "zoo" -> ignore (Exp_zoo.run mode ppf)
    | "micro" -> Micro.run ppf
    | other -> Format.fprintf ppf "unknown section %s@." other
  with exn ->
    (* A failing section must not take the rest of the harness down. *)
    Format.fprintf ppf "@.[%s FAILED: %s]@." name (Printexc.to_string exn));
  Format.fprintf ppf "@.[%s finished in %a]@." name Timing.pp_seconds
    (Unix.gettimeofday () -. t0);
  Format.pp_print_flush ppf ()

let all_sections =
  [ "table1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "analysis";
    "ablations"; "zoo"; "micro" ]

let () =
  let mode = Exp_common.mode_of_env () in
  let args = List.tl (Array.to_list Sys.argv) in
  let sections = if args = [] then all_sections else args in
  Format.fprintf ppf
    "NAS as Program Transformation Exploration - evaluation harness (%s mode)@."
    (Exp_common.mode_name mode);
  Format.fprintf ppf "Devices:@.";
  List.iter (fun d -> Format.fprintf ppf "  %a@." Device.pp d) Device.all;
  Format.pp_print_flush ppf ();
  let t0 = Unix.gettimeofday () in
  List.iter (run_section mode) sections;
  Format.fprintf ppf "@.total: %a@." Timing.pp_seconds (Unix.gettimeofday () -. t0)
