(* Bechamel micro-benchmarks of the performance-critical kernels: the
   convolution forward/backward, one Fisher Potential pass, the analytic
   cost model, the autotuner sweep and the loop-nest interpreter. *)

open Bechamel
open Toolkit

let conv_test =
  let rng = Rng.create 1 in
  let input = Tensor.rand_normal rng [| 4; 16; 16; 16 |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal rng [| 16; 16; 3; 3 |] ~mean:0.0 ~std:0.1 in
  Test.make ~name:"conv2d fwd 4x16x16x16 k3"
    (Staged.stage (fun () ->
         ignore (Ops.conv2d ~input ~weight ~bias:None { Ops.stride = 1; pad = 1; groups = 1; dilation = 1 })))

let conv_bwd_test =
  let rng = Rng.create 2 in
  let input = Tensor.rand_normal rng [| 4; 16; 16; 16 |] ~mean:0.0 ~std:1.0 in
  let weight = Tensor.rand_normal rng [| 16; 16; 3; 3 |] ~mean:0.0 ~std:0.1 in
  let gout = Tensor.rand_normal rng [| 4; 16; 16; 16 |] ~mean:0.0 ~std:1.0 in
  Test.make ~name:"conv2d bwd 4x16x16x16 k3"
    (Staged.stage (fun () ->
         ignore (Ops.conv2d_backward ~input ~weight ~gout { Ops.stride = 1; pad = 1; groups = 1; dilation = 1 })))

let fisher_test =
  let rng = Rng.create 3 in
  let model = Models.build (Models.resnet34 ()) rng in
  let probe = Exp_common.probe_batch rng ~input_size:16 in
  Test.make ~name:"fisher pass (resnet34, batch 4)"
    (Staged.stage (fun () -> ignore (Fisher.potential model probe)))

let cost_test =
  let nest = Loop_nest.conv_nest_of_dims ~co:128 ~ci:128 ~oh:16 ~ow:16 ~k:3 ~stride:1 ~groups:1 in
  let s = Autotune.default_schedule Device.i7 nest in
  Test.make ~name:"cost model estimate"
    (Staged.stage (fun () -> ignore (Cost_model.estimate Device.i7 nest s)))

let tune_test =
  let nest = Loop_nest.conv_nest_of_dims ~co:64 ~ci:64 ~oh:32 ~ow:32 ~k:3 ~stride:1 ~groups:1 in
  Test.make ~name:"autotune sweep (27 configs)"
    (Staged.stage (fun () -> ignore (Autotune.tune Device.i7 nest)))

let interp_test =
  let nest = Loop_nest.conv_nest_of_dims ~co:8 ~ci:8 ~oh:8 ~ow:8 ~k:3 ~stride:1 ~groups:1 in
  let s = Poly.tile (Loop_nest.baseline_schedule nest) ~pos:2 ~factor:4 in
  let prog = Loop_nest.lower nest s in
  let rng = Rng.create 4 in
  let weight = Tensor.rand_normal rng [| prog.Loop_nest.w_numel |] ~mean:0.0 ~std:0.1 in
  let input = Tensor.rand_normal rng [| prog.in_numel |] ~mean:0.0 ~std:1.0 in
  Test.make ~name:"loop-nest interpreter 8x8x8 k3"
    (Staged.stage (fun () ->
         let output = Tensor.zeros [| prog.Loop_nest.out_numel |] in
         Loop_nest.run prog ~output ~weight ~input))

let tests =
  Test.make_grouped ~name:"kernels"
    [ conv_test; conv_bwd_test; fisher_test; cost_test; tune_test; interp_test ]

let run ppf =
  Exp_common.section ppf "Micro-benchmarks (Bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.fprintf ppf "%-40s %12.1f ns/run@." name est
      | _ -> Format.fprintf ppf "%-40s (no estimate)@." name)
    results
