(* Serving-throughput benchmark for the daemon core.

   Boots an in-process [Server] pool, pushes two phases of concurrent
   sessions through it — phase A populates the shared caches, phase B
   repeats the same workloads so cross-session cache sharing shows up as
   a hit rate — and reports requests/sec plus the p50/p99 session-time
   percentiles.  Cross-checks the serving determinism contract (a served
   request is bit-identical to a direct [Unified_search.search] with the
   same seed) and the warm-restart contract (a second server over the
   snapshot file starts with warm cache entries).  Results land in
   BENCH_serve.json.

   Usage:  dune exec bench/serve_bench.exe [-- requests-per-phase] *)

let per_phase =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12

let candidates = 10
let seeds = [| 11; 12; 13; 14 |]
let workers = 4

let request i =
  Protocol.request ~candidates ~seed:seeds.(i mod Array.length seeds)
    ~workers:1
    (Printf.sprintf "b%d" i)

(* Push [n] requests concurrently and wait for every reply. *)
let run_phase srv ~offset n =
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let got = ref 0 in
  let results = Array.make n None in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Server.submit_async srv (request (offset + i)) ~reply:(fun resp ->
        Mutex.lock lock;
        results.(i) <- Some resp;
        incr got;
        Condition.signal cond;
        Mutex.unlock lock)
  done;
  Mutex.lock lock;
  while !got < n do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  (Unix.gettimeofday () -. t0, results)

let ok_results arr =
  Array.to_list arr
  |> List.filter_map (function
       | Some (Protocol.Result r) -> Some r
       | _ -> None)

let direct_signature seed =
  let rng = Rng.create seed in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe =
    Exp_common.probe_batch (Rng.split rng) ~input_size:model.Models.input_size
  in
  let ctx = Eval_ctx.create () in
  let r =
    Unified_search.search ~candidates ~workers:1 ~ctx ~rng:(Rng.split rng)
      ~device:Device.i7 ~probe model
  in
  ( Unified_search.plans_signature r.Unified_search.r_best.Unified_search.cd_plans,
    1e6 *. r.Unified_search.r_best.Unified_search.cd_latency_s )

let () =
  let snapshot = Filename.temp_file "serve_bench" ".ckpt" in
  Sys.remove snapshot;
  let config =
    { Server.default_config with
      cf_workers = workers;
      cf_max_queue = 4 * per_phase;
      cf_cache_file = Some snapshot }
  in
  let srv = Server.create ~config () in
  let dt_a, res_a = run_phase srv ~offset:0 per_phase in
  let dt_b, res_b = run_phase srv ~offset:0 per_phase in
  let ok_a = ok_results res_a and ok_b = ok_results res_b in
  if List.length ok_a <> per_phase || List.length ok_b <> per_phase then (
    Printf.eprintf "serve bench: %d/%d + %d/%d sessions answered ok\n"
      (List.length ok_a) per_phase (List.length ok_b) per_phase;
    exit 1);
  (* Determinism: every served result equals the one-shot search. *)
  Array.iteri
    (fun i seed ->
      let sg, lat = direct_signature seed in
      List.iteri
        (fun j r ->
          if j mod Array.length seeds = i then
            if
              r.Protocol.rs_best_plan <> sg
              || r.Protocol.rs_best_latency_us <> lat
            then (
              Printf.eprintf "SERVING DETERMINISM VIOLATION at seed=%d\n" seed;
              exit 1))
        (ok_a @ ok_b))
    seeds;
  Printf.printf "all served results are bit-identical to the one-shot CLI\n%!";
  let st = Server.shutdown srv in
  let hit_rate = Server.cache_hit_rate st in
  if not (hit_rate > 0.0) then (
    Printf.eprintf "serve bench: expected cross-session cache hits, got rate %g\n"
      hit_rate;
    exit 1);
  let times =
    Array.map (fun s -> 1000.0 *. s) st.Server.st_session_times_s
  in
  let p50 = Stats.percentile times 50.0 and p99 = Stats.percentile times 99.0 in
  let total = float_of_int (2 * per_phase) in
  let rps_a = float_of_int per_phase /. dt_a
  and rps_b = float_of_int per_phase /. dt_b in
  Printf.printf
    "phase A (cold): %d requests in %.2fs (%.2f req/s)\n\
     phase B (warm): %d requests in %.2fs (%.2f req/s)\n\
     cache hit rate %.3f, session p50 %.1fms p99 %.1fms\n%!"
    per_phase dt_a rps_a per_phase dt_b rps_b hit_rate p50 p99;
  (* Warm restart: the snapshot written at shutdown boots a hot server. *)
  let srv2 = Server.create ~config () in
  let warm = (Server.stats srv2).Server.st_warm_entries in
  ignore (Server.shutdown srv2);
  (try Sys.remove snapshot with Sys_error _ -> ());
  if warm <= 0 then (
    Printf.eprintf "serve bench: restart restored %d cache entries\n" warm;
    exit 1);
  Printf.printf "warm restart restored %d cache entries\n%!" warm;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"serve-throughput\",\n";
  Printf.fprintf oc "  \"model\": \"resnet18\",\n";
  Printf.fprintf oc "  \"candidates_per_request\": %d,\n" candidates;
  Printf.fprintf oc "  \"requests_per_phase\": %d,\n" per_phase;
  Printf.fprintf oc "  \"pool_workers\": %d,\n" workers;
  Printf.fprintf oc "  \"available_cores\": %d,\n"
    (Parallel_eval.available_workers ());
  Printf.fprintf oc "  \"requests_per_sec_cold\": %.3f,\n" rps_a;
  Printf.fprintf oc "  \"requests_per_sec_warm\": %.3f,\n" rps_b;
  Printf.fprintf oc "  \"requests_per_sec\": %.3f,\n" (total /. (dt_a +. dt_b));
  Printf.fprintf oc "  \"cross_session_cache_hit_rate\": %.4f,\n" hit_rate;
  Printf.fprintf oc "  \"session_ms_p50\": %.2f,\n" p50;
  Printf.fprintf oc "  \"session_ms_p99\": %.2f,\n" p99;
  Printf.fprintf oc "  \"sessions_served\": %d,\n" st.Server.st_completed;
  Printf.fprintf oc "  \"warm_restart_entries\": %d,\n" warm;
  Printf.fprintf oc "  \"deterministic_vs_oneshot\": true\n";
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n%!"
