(* Search-throughput benchmark for the parallel evaluation engine.

   Runs the same seeded unified search serially and with a worker pool,
   reports candidates/sec for each configuration, and cross-checks that
   every configuration converged to the identical winner (the engine's
   determinism contract).  A synthetic uneven-workload section compares
   static chunking against the dynamic (atomic next-index) scheduler
   under skewed per-item costs.  Results land in BENCH_search.json;
   every field is documented in PERFORMANCE.md.

   Usage:  dune exec bench/search_bench.exe [-- [--smoke] [candidates]]

   --smoke runs a tiny (n<=8) determinism cross-check without writing
   BENCH_search.json — the CI-fast `dune build @bench-smoke` path.

   Note: speedup over serial requires actual cores; each run row carries
   [speedup_valid] (false when the run used more workers than the box
   has cores, so its speedup number measures oversubscription, not
   scaling) and the JSON records [available_cores]. *)

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

let candidates =
  let positional =
    Array.to_list Sys.argv |> List.tl
    |> List.find_opt (fun a -> String.length a > 0 && a.[0] <> '-')
  in
  match positional with
  | Some s -> int_of_string s
  | None -> if smoke then 8 else 60

let seed = 7

let run_once ~workers ~schedule =
  let rng = Rng.create seed in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  let obs = Obs.create () in
  let ctx = Eval_ctx.create ~obs () in
  let sched_stats = ref None in
  let t0 = Unix.gettimeofday () in
  let r =
    Unified_search.search ~candidates ~workers ~schedule
      ~on_sched_stats:(fun s -> sched_stats := Some s)
      ~ctx ~rng:(Rng.split rng) ~device:Device.i7 ~probe model
  in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt, obs, !sched_stats)

(* The deterministic counter namespace (see DESIGN.md §7): these must be
   bit-identical for every worker count. *)
let search_counters obs =
  List.filter
    (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "search.")
    (Metrics.counters (Obs.metrics obs))

let json_int_array xs =
  "[" ^ String.concat ", " (List.map string_of_int (Array.to_list xs)) ^ "]"

let json_float_array xs =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%.4f") (Array.to_list xs)) ^ "]"

(* --- synthetic uneven workload ------------------------------------------ *)

(* Deterministic floating-point burn: [reps] rounds of transcendental work
   seeded by the item index, so every (schedule, workers) configuration
   computes the identical value per item.  Heavy items (every [heavy_every]th)
   burn [heavy_factor]x more — the skew static chunking cannot rebalance. *)
let burn ~reps i =
  let x = ref (float_of_int (i + 1)) in
  for _ = 1 to reps do
    x := Float.rem (!x *. 1.0000001 +. sin !x) 1000.0
  done;
  !x

let uneven_reps ~base ~heavy_every ~heavy_factor i =
  if i mod heavy_every = 0 then base * heavy_factor else base

type uneven_run = {
  ur_schedule : Parallel_eval.schedule;
  ur_workers : int;
  ur_seconds : float;
  ur_checksum : float;
  ur_stats : Parallel_eval.run_stats option;
}

let run_uneven ~items ~base ~heavy_every ~heavy_factor ~workers ~schedule =
  let ctx = Eval_ctx.create () in
  let stats = ref None in
  let t0 = Unix.gettimeofday () in
  let results =
    Parallel_eval.map_range ~schedule
      ~on_stats:(fun s -> stats := Some s)
      ~workers ~ctx ~first:0 ~limit:items
      (fun _wctx i -> burn ~reps:(uneven_reps ~base ~heavy_every ~heavy_factor i) i)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let checksum = Array.fold_left ( +. ) 0.0 results in
  { ur_schedule = schedule;
    ur_workers = workers;
    ur_seconds = dt;
    ur_checksum = checksum;
    ur_stats = !stats }

let uneven_section ~items ~base =
  let heavy_every = 4 and heavy_factor = 8 in
  let configs =
    [ (Parallel_eval.Static, 1); (Parallel_eval.Static, 2); (Parallel_eval.Static, 4);
      (Parallel_eval.Dynamic, 1); (Parallel_eval.Dynamic, 2); (Parallel_eval.Dynamic, 4) ]
  in
  let runs =
    List.map
      (fun (schedule, workers) ->
        run_uneven ~items ~base ~heavy_every ~heavy_factor ~workers ~schedule)
      configs
  in
  let reference = (List.hd runs).ur_checksum in
  List.iter
    (fun u ->
      if u.ur_checksum <> reference then (
        Printf.eprintf "UNEVEN DETERMINISM VIOLATION at %s workers=%d\n"
          (Parallel_eval.schedule_name u.ur_schedule)
          u.ur_workers;
        exit 1))
    runs;
  (heavy_every, heavy_factor, runs)

(* --- per-strategy comparison --------------------------------------------- *)

(* One serial search per strategy at the same budget/seed/device, so the
   rows differ only in candidate generation.  Survivor fraction counts
   candidates that passed both the Fisher gate and quarantine screening. *)
let strategy_run ~n strategy =
  let rng = Rng.create seed in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  let r =
    Unified_search.search ~candidates:n ~strategy ~rng:(Rng.split rng)
      ~device:Device.i7 ~probe model
  in
  let survivors =
    r.Unified_search.r_explored - r.r_rejected - List.length r.r_quarantined
  in
  (r, float_of_int survivors /. float_of_int (max 1 r.r_explored))

(* --- smoke mode ---------------------------------------------------------- *)

let run_smoke () =
  let n = min candidates 8 in
  let runs =
    List.map
      (fun (workers, schedule) ->
        let rng = Rng.create seed in
        let model = Models.build (Models.resnet18 ()) rng in
        let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
        let obs = Obs.create () in
        let ctx = Eval_ctx.create ~obs () in
        let r =
          Unified_search.search ~candidates:n ~workers ~schedule ~ctx
            ~rng:(Rng.split rng) ~device:Device.i7 ~probe model
        in
        (workers, schedule, r, obs))
      [ (1, Parallel_eval.Dynamic); (2, Parallel_eval.Static); (2, Parallel_eval.Dynamic) ]
  in
  let _, _, serial, serial_obs = List.hd runs in
  let serial_sig =
    Unified_search.plans_signature serial.Unified_search.r_best.Unified_search.cd_plans
  in
  List.iter
    (fun (workers, schedule, r, obs) ->
      let s =
        Unified_search.plans_signature r.Unified_search.r_best.Unified_search.cd_plans
      in
      if s <> serial_sig || search_counters obs <> search_counters serial_obs then (
        Printf.eprintf "bench smoke FAILED: workers=%d schedule=%s diverges\n" workers
          (Parallel_eval.schedule_name schedule);
        exit 1))
    runs;
  let _, _, uneven = uneven_section ~items:16 ~base:200 in
  ignore uneven;
  List.iter
    (fun st ->
      let r, frac = strategy_run ~n st in
      Printf.printf "strategy %-7s survivors=%.0f%% best=%.4fms\n%!"
        (Strategy.to_string st) (100.0 *. frac)
        (1000.0 *. r.Unified_search.r_best.Unified_search.cd_latency_s))
    Strategy.all;
  Printf.printf
    "bench smoke OK: %d candidates, serial/static/dynamic agree (no JSON written)\n%!"
    n;
  exit 0

(* --- full benchmark ------------------------------------------------------ *)

let () =
  if smoke then run_smoke ();
  let cores = Parallel_eval.available_workers () in
  let worker_counts = [ 1; 2; 4 ] in
  let runs =
    List.map
      (fun workers ->
        let r, dt, obs, sched = run_once ~workers ~schedule:Parallel_eval.Dynamic in
        let throughput = float_of_int r.Unified_search.r_evaluated /. dt in
        Printf.printf "workers=%d  %d candidates in %.2fs  (%.2f cand/s)\n%!"
          workers r.r_evaluated dt throughput;
        if workers > cores then
          Printf.eprintf
            "search_bench: warning: workers=%d exceeds the %d available core%s — \
             its speedup_vs_serial measures oversubscription, not scaling \
             (speedup_valid=false)\n%!"
            workers cores
            (if cores = 1 then "" else "s");
        (workers, r, dt, throughput, obs, sched))
      worker_counts
  in
  let _, serial, _, serial_tp, serial_obs, _ = List.hd runs in
  let serial_sig =
    Unified_search.plans_signature
      serial.Unified_search.r_best.Unified_search.cd_plans
  in
  List.iter
    (fun (workers, r, _, _, obs, _) ->
      let s =
        Unified_search.plans_signature r.Unified_search.r_best.Unified_search.cd_plans
      in
      if s <> serial_sig then (
        Printf.eprintf "DETERMINISM VIOLATION at workers=%d\n" workers;
        exit 1);
      if search_counters obs <> search_counters serial_obs then (
        Printf.eprintf "METRICS DETERMINISM VIOLATION at workers=%d\n" workers;
        exit 1))
    runs;
  Printf.printf "all worker counts agree on the winner and the search counters\n%!";
  let oc = open_out "BENCH_search.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"unified-search-throughput\",\n";
  Printf.fprintf oc "  \"model\": \"resnet18\",\n";
  Printf.fprintf oc "  \"candidates\": %d,\n" candidates;
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"schedule\": \"dynamic\",\n";
  Printf.fprintf oc "  \"available_cores\": %d,\n" cores;
  Printf.fprintf oc "  \"deterministic_across_workers\": true,\n";
  Printf.fprintf oc "  \"runs\": [\n";
  let n = List.length runs in
  List.iteri
    (fun i (workers, r, dt, tp, _, sched) ->
      let sched_fields =
        match sched with
        | None -> ""
        | Some (s : Parallel_eval.run_stats) ->
            Printf.sprintf
              ", \"worker_items\": %s, \"worker_steals\": %s, \
               \"worker_utilization\": %s"
              (json_int_array
                 (Array.map (fun w -> w.Parallel_eval.ws_items) s.rs_worker))
              (json_int_array
                 (Array.map (fun w -> w.Parallel_eval.ws_steals) s.rs_worker))
              (json_float_array (Parallel_eval.utilization s))
      in
      Printf.fprintf oc
        "    {\"workers\": %d, \"seconds\": %.3f, \"candidates_per_sec\": %.3f, \
         \"speedup_vs_serial\": %.3f, \"speedup_valid\": %b, \
         \"best_latency_ms\": %.4f, \"rejected\": %d, \"quarantined\": %d%s}%s\n"
        workers dt tp (tp /. serial_tp)
        (workers <= cores)
        (1000.0 *. r.Unified_search.r_best.Unified_search.cd_latency_s)
        r.r_rejected
        (List.length r.r_quarantined)
        sched_fields
        (if i = n - 1 then "" else ","))
    runs;
  Printf.fprintf oc "  ],\n";
  (* Synthetic uneven workload: every 4th item costs 8x, so a static chunk
     split leaves some domains idle while one grinds through the heavy
     tail; the dynamic scheduler rebalances automatically.  Checksums are
     cross-checked above — the rebalancing never changes results. *)
  let items = 64 and base = 20000 in
  let heavy_every, heavy_factor, uneven = uneven_section ~items ~base in
  let serial_uneven =
    List.find (fun u -> u.ur_workers = 1 && u.ur_schedule = Parallel_eval.Static) uneven
  in
  Printf.fprintf oc "  \"uneven_workload\": {\n";
  Printf.fprintf oc "    \"items\": %d,\n" items;
  Printf.fprintf oc "    \"heavy_every\": %d,\n" heavy_every;
  Printf.fprintf oc "    \"heavy_factor\": %d,\n" heavy_factor;
  Printf.fprintf oc "    \"deterministic_across_schedules\": true,\n";
  Printf.fprintf oc "    \"runs\": [\n";
  let nu = List.length uneven in
  List.iteri
    (fun i u ->
      Printf.printf "uneven %-7s workers=%d  %.3fs\n%!"
        (Parallel_eval.schedule_name u.ur_schedule)
        u.ur_workers u.ur_seconds;
      let sched_fields =
        match u.ur_stats with
        | None -> ""
        | Some s ->
            Printf.sprintf
              ", \"worker_items\": %s, \"worker_steals\": %s, \
               \"worker_utilization\": %s"
              (json_int_array
                 (Array.map (fun w -> w.Parallel_eval.ws_items) s.rs_worker))
              (json_int_array
                 (Array.map (fun w -> w.Parallel_eval.ws_steals) s.rs_worker))
              (json_float_array (Parallel_eval.utilization s))
      in
      Printf.fprintf oc
        "      {\"schedule\": \"%s\", \"workers\": %d, \"seconds\": %.4f, \
         \"speedup_vs_serial\": %.3f, \"speedup_valid\": %b%s}%s\n"
        (Parallel_eval.schedule_name u.ur_schedule)
        u.ur_workers u.ur_seconds
        (serial_uneven.ur_seconds /. u.ur_seconds)
        (u.ur_workers <= cores)
        sched_fields
        (if i = nu - 1 then "" else ","))
    uneven;
  Printf.fprintf oc "    ]\n";
  Printf.fprintf oc "  },\n";
  (* Per-family rows: the unified search run on every family the registry
     adds beyond the paper presets, at the default build seed.  Survivor
     fraction = candidates that passed Fisher and quarantine screening. *)
  let fam_candidates = 16 in
  let new_entries = List.filter (fun e -> not e.Zoo.ze_paper) Zoo.all in
  Printf.fprintf oc "  \"families\": [\n";
  let nf = List.length new_entries in
  List.iteri
    (fun i (e : Zoo.entry) ->
      let rng = Rng.create 42 in
      let model = Models.build (e.ze_spec `Search) rng in
      let probe =
        Exp_common.probe_batch (Rng.split rng)
          ~input_size:model.Models.input_size
      in
      let r =
        Unified_search.search ~candidates:fam_candidates ~rng:(Rng.split rng)
          ~device:Device.i7 ~probe model
      in
      let survivors =
        r.Unified_search.r_explored - r.r_rejected
        - List.length r.r_quarantined
      in
      let frac =
        float_of_int survivors /. float_of_int (max 1 r.r_explored)
      in
      Printf.printf "family %-16s sites=%d survivors=%d/%d best=%.4fms\n%!"
        e.ze_name
        (Array.length model.Models.sites)
        survivors r.r_explored
        (1000.0 *. r.r_best.Unified_search.cd_latency_s);
      Printf.fprintf oc
        "    {\"network\": \"%s\", \"sites\": %d, \"candidates\": %d, \
         \"survivor_fraction\": %.4f, \"best_latency_ms\": %.4f}%s\n"
        e.ze_name
        (Array.length model.Models.sites)
        fam_candidates frac
        (1000.0 *. r.Unified_search.r_best.Unified_search.cd_latency_s)
        (if i = nf - 1 then "" else ","))
    new_entries;
  Printf.fprintf oc "  ],\n";
  (* Per-strategy rows at the headline budget: identical seed, device and
     candidate count, so survivor fraction and best latency isolate the
     candidate generator.  The typed/guided generators must beat random's
     survivor fraction without giving up latency — enforced here, so a
     regression in the typed menus fails the bench. *)
  let strategy_rows = List.map (fun st -> (st, strategy_run ~n:candidates st)) Strategy.all in
  let row st =
    let _, (r, frac) =
      (st, List.assoc st strategy_rows)
    in
    (r, frac)
  in
  let random_r, random_frac = row Strategy.Random in
  let random_best = random_r.Unified_search.r_best.Unified_search.cd_latency_s in
  Printf.fprintf oc "  \"strategies\": [\n";
  let ns = List.length strategy_rows in
  List.iteri
    (fun i (st, (r, frac)) ->
      Printf.printf "strategy %-7s survivors=%.0f%% best=%.4fms\n%!"
        (Strategy.to_string st) (100.0 *. frac)
        (1000.0 *. r.Unified_search.r_best.Unified_search.cd_latency_s);
      Printf.fprintf oc
        "    {\"strategy\": \"%s\", \"candidates\": %d, \
         \"survivor_fraction\": %.4f, \"best_latency_ms\": %.4f, \
         \"speedup\": %.3f}%s\n"
        (Strategy.to_string st) candidates frac
        (1000.0 *. r.Unified_search.r_best.Unified_search.cd_latency_s)
        (Unified_search.speedup r)
        (if i = ns - 1 then "" else ","))
    strategy_rows;
  Printf.fprintf oc "  ],\n";
  List.iter
    (fun st ->
      let r, frac = row st in
      if frac <= random_frac then (
        Printf.eprintf
          "STRATEGY REGRESSION: %s survivor fraction %.4f is not above random's %.4f\n"
          (Strategy.to_string st) frac random_frac;
        exit 1);
      if r.Unified_search.r_best.Unified_search.cd_latency_s > random_best then (
        Printf.eprintf
          "STRATEGY REGRESSION: %s best latency %.6fs is worse than random's %.6fs\n"
          (Strategy.to_string st)
          r.Unified_search.r_best.Unified_search.cd_latency_s random_best;
        exit 1))
    [ Strategy.Typed; Strategy.Guided ];
  (* Differential-sanitizer agreement rate: the static legality analyzer
     against the sampling oracle over the seeded fuzz corpus (the same
     corpus `dune build @sanitize` gates CI on). *)
  let sr = Sanitizer.run ~seed:2026 ~n:200 () in
  Printf.printf "sanitizer: %d plans, %d disagreements, %.1f%% unknown\n%!"
    sr.Sanitizer.rs_total
    (List.length sr.Sanitizer.rs_disagreements)
    (100.0 *. Sanitizer.unknown_rate sr);
  if not (Sanitizer.passed sr) then (
    Printf.eprintf "SANITIZER FAILURE: static analyzer diverges from the oracle\n";
    exit 1);
  Printf.fprintf oc
    "  \"sanitizer\": {\"plans\": %d, \"agree_legal\": %d, \"agree_illegal\": %d, \
     \"unknown\": %d, \"disagreements\": %d, \"agreement_rate\": %.4f, \
     \"unknown_rate\": %.4f, \"static_seconds\": %.4f, \"oracle_seconds\": %.4f},\n"
    sr.Sanitizer.rs_total sr.Sanitizer.rs_agree_legal sr.Sanitizer.rs_agree_illegal
    sr.Sanitizer.rs_unknown
    (List.length sr.Sanitizer.rs_disagreements)
    (1.0 -. Sanitizer.unknown_rate sr)
    (Sanitizer.unknown_rate sr)
    sr.Sanitizer.rs_static_time sr.Sanitizer.rs_oracle_time;
  (* Typed-vs-oracle differential fuzzer over the same corpus seed: both
     directions of the Plan_types exactness contract (the @typecheck-fuzz
     CI gate runs 1000 cases; the bench row records 200). *)
  let tr = Sanitizer.run_typed ~seed:2026 ~n:200 () in
  Printf.printf "typed fuzzer: %d cases, %d disagreements, %.1f%% unknown\n%!"
    tr.Sanitizer.tt_total
    (List.length tr.Sanitizer.tt_disagreements)
    (100.0 *. Sanitizer.typed_unknown_rate tr);
  if not (Sanitizer.typed_passed tr) then (
    Printf.eprintf "TYPED FUZZER FAILURE: type system diverges from the linter/oracle\n";
    exit 1);
  Printf.fprintf oc
    "  \"typed_fuzzer\": {\"cases\": %d, \"typed_lint_clean\": %d, \
     \"env_agree\": %d, \"legal_agree\": %d, \"unknown\": %d, \
     \"survivors_typed\": %d, \"dirty_rejected\": %d, \"disagreements\": %d},\n"
    tr.Sanitizer.tt_total tr.tt_typed_lint_clean tr.tt_env_agree tr.tt_legal_agree
    tr.tt_unknown tr.tt_survivors_typed tr.tt_dirty_rejected
    (List.length tr.Sanitizer.tt_disagreements);
  (* The serial run's observability report: per-phase time breakdown and
     the full counter set, as rendered by Report.to_json. *)
  Printf.fprintf oc "  \"observability\": %s\n"
    (Report.to_json
       (Report.of_metrics ~wall_s:serial.Unified_search.r_wall_s
          (Obs.metrics serial_obs)));
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_search.json\n%!"
