(* Search-throughput benchmark for the parallel evaluation engine.

   Runs the same seeded unified search serially and with a worker pool,
   reports candidates/sec for each configuration, and cross-checks that
   every configuration converged to the identical winner (the engine's
   determinism contract).  Results land in BENCH_search.json.

   Usage:  dune exec bench/search_bench.exe [-- candidates]
   Note: speedup over serial requires actual cores; the JSON records
   [available_cores] so single-core CI numbers are interpretable. *)

let candidates =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 60

let seed = 7

let run_once ~workers =
  let rng = Rng.create seed in
  let model = Models.build (Models.resnet18 ()) rng in
  let probe = Exp_common.probe_batch (Rng.split rng) ~input_size:16 in
  let obs = Obs.create () in
  let ctx = Eval_ctx.create ~obs () in
  let t0 = Unix.gettimeofday () in
  let r =
    Unified_search.search ~candidates ~workers ~ctx ~rng:(Rng.split rng)
      ~device:Device.i7 ~probe model
  in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt, obs)

(* The deterministic counter namespace (see DESIGN.md §7): these must be
   bit-identical for every worker count. *)
let search_counters obs =
  List.filter
    (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "search.")
    (Metrics.counters (Obs.metrics obs))

let () =
  let worker_counts = [ 1; 2; 4 ] in
  let runs =
    List.map
      (fun workers ->
        let r, dt, obs = run_once ~workers in
        let throughput = float_of_int r.Unified_search.r_evaluated /. dt in
        Printf.printf "workers=%d  %d candidates in %.2fs  (%.2f cand/s)\n%!"
          workers r.r_evaluated dt throughput;
        (workers, r, dt, throughput, obs))
      worker_counts
  in
  let _, serial, _, serial_tp, serial_obs = List.hd runs in
  let serial_sig =
    Unified_search.plans_signature
      serial.Unified_search.r_best.Unified_search.cd_plans
  in
  List.iter
    (fun (workers, r, _, _, obs) ->
      let s =
        Unified_search.plans_signature r.Unified_search.r_best.Unified_search.cd_plans
      in
      if s <> serial_sig then (
        Printf.eprintf "DETERMINISM VIOLATION at workers=%d\n" workers;
        exit 1);
      if search_counters obs <> search_counters serial_obs then (
        Printf.eprintf "METRICS DETERMINISM VIOLATION at workers=%d\n" workers;
        exit 1))
    runs;
  Printf.printf "all worker counts agree on the winner and the search counters\n%!";
  let oc = open_out "BENCH_search.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"unified-search-throughput\",\n";
  Printf.fprintf oc "  \"model\": \"resnet18\",\n";
  Printf.fprintf oc "  \"candidates\": %d,\n" candidates;
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"available_cores\": %d,\n"
    (Parallel_eval.available_workers ());
  Printf.fprintf oc "  \"deterministic_across_workers\": true,\n";
  Printf.fprintf oc "  \"runs\": [\n";
  let n = List.length runs in
  List.iteri
    (fun i (workers, r, dt, tp, _) ->
      Printf.fprintf oc
        "    {\"workers\": %d, \"seconds\": %.3f, \"candidates_per_sec\": %.3f, \
         \"speedup_vs_serial\": %.3f, \"best_latency_ms\": %.4f, \"rejected\": %d, \
         \"quarantined\": %d}%s\n"
        workers dt tp (tp /. serial_tp)
        (1000.0 *. r.Unified_search.r_best.Unified_search.cd_latency_s)
        r.r_rejected
        (List.length r.r_quarantined)
        (if i = n - 1 then "" else ","))
    runs;
  Printf.fprintf oc "  ],\n";
  (* Per-family rows: the unified search run on every family the registry
     adds beyond the paper presets, at the default build seed.  Survivor
     fraction = candidates that passed Fisher and quarantine screening. *)
  let fam_candidates = 16 in
  let new_entries = List.filter (fun e -> not e.Zoo.ze_paper) Zoo.all in
  Printf.fprintf oc "  \"families\": [\n";
  let nf = List.length new_entries in
  List.iteri
    (fun i (e : Zoo.entry) ->
      let rng = Rng.create 42 in
      let model = Models.build (e.ze_spec `Search) rng in
      let probe =
        Exp_common.probe_batch (Rng.split rng)
          ~input_size:model.Models.input_size
      in
      let r =
        Unified_search.search ~candidates:fam_candidates ~rng:(Rng.split rng)
          ~device:Device.i7 ~probe model
      in
      let survivors =
        r.Unified_search.r_explored - r.r_rejected
        - List.length r.r_quarantined
      in
      let frac =
        float_of_int survivors /. float_of_int (max 1 r.r_explored)
      in
      Printf.printf "family %-16s sites=%d survivors=%d/%d best=%.4fms\n%!"
        e.ze_name
        (Array.length model.Models.sites)
        survivors r.r_explored
        (1000.0 *. r.r_best.Unified_search.cd_latency_s);
      Printf.fprintf oc
        "    {\"network\": \"%s\", \"sites\": %d, \"candidates\": %d, \
         \"survivor_fraction\": %.4f, \"best_latency_ms\": %.4f}%s\n"
        e.ze_name
        (Array.length model.Models.sites)
        fam_candidates frac
        (1000.0 *. r.Unified_search.r_best.Unified_search.cd_latency_s)
        (if i = nf - 1 then "" else ","))
    new_entries;
  Printf.fprintf oc "  ],\n";
  (* Differential-sanitizer agreement rate: the static legality analyzer
     against the sampling oracle over the seeded fuzz corpus (the same
     corpus `dune build @sanitize` gates CI on). *)
  let sr = Sanitizer.run ~seed:2026 ~n:200 () in
  Printf.printf "sanitizer: %d plans, %d disagreements, %.1f%% unknown\n%!"
    sr.Sanitizer.rs_total
    (List.length sr.Sanitizer.rs_disagreements)
    (100.0 *. Sanitizer.unknown_rate sr);
  if not (Sanitizer.passed sr) then (
    Printf.eprintf "SANITIZER FAILURE: static analyzer diverges from the oracle\n";
    exit 1);
  Printf.fprintf oc
    "  \"sanitizer\": {\"plans\": %d, \"agree_legal\": %d, \"agree_illegal\": %d, \
     \"unknown\": %d, \"disagreements\": %d, \"agreement_rate\": %.4f, \
     \"unknown_rate\": %.4f, \"static_seconds\": %.4f, \"oracle_seconds\": %.4f},\n"
    sr.Sanitizer.rs_total sr.Sanitizer.rs_agree_legal sr.Sanitizer.rs_agree_illegal
    sr.Sanitizer.rs_unknown
    (List.length sr.Sanitizer.rs_disagreements)
    (1.0 -. Sanitizer.unknown_rate sr)
    (Sanitizer.unknown_rate sr)
    sr.Sanitizer.rs_static_time sr.Sanitizer.rs_oracle_time;
  (* The serial run's observability report: per-phase time breakdown and
     the full counter set, as rendered by Report.to_json. *)
  Printf.fprintf oc "  \"observability\": %s\n"
    (Report.to_json
       (Report.of_metrics ~wall_s:serial.Unified_search.r_wall_s
          (Obs.metrics serial_obs)));
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_search.json\n%!"
